// Ablation: the detector-vs-learner arms race.
//
// The adversary is the ADAPTIVE middlebox (simnet/middlebox): fault hiding
// plus an online learner that promotes recurring measurement signatures
// into DPI verdicts. A detector that reuses the same twins (static source
// port, payload and pacing) trains its own adversary: after one warm-up
// visit the twins' shared signature crosses the learning horizon, the data
// twin gets exempted alongside the probe, and the differential the whole
// method rests on disappears. The randomized generator (per-round source
// ports, fresh entropy-matched payloads, pacing jitter) never recurs, so
// the learner starves and the SPRT names the AS as usual.
//
// This sweep measures post-warm-up detection/naming rates and the median
// rounds-to-decision as a function of the learning horizon (sightings
// until promotion), static vs. randomized twins. Small horizons collapse
// static detection; randomized detection must survive every horizon with
// no more median rounds than the legacy fixed-40 budget.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "core/discrimination.hpp"
#include "simnet/scenarios.hpp"

namespace {

using namespace debuglet;

constexpr topology::AsNumber kCheatAs = 3;

struct SweepPoint {
  double detection_rate = 0.0;
  double naming_rate = 0.0;  // detected AND named the cheating AS
  double median_rounds = 0.0;
};

simnet::Scenario adaptive_scenario(std::uint64_t seed,
                                   std::uint32_t promote_after) {
  simnet::Scenario s = simnet::build_chain_scenario(5, seed, 5.0);
  s.network->set_int_enabled(true);
  simnet::ClassPolicy slow;
  slow.extra_delay_ms = 25.0;
  slow.drop_pm = 60.0;
  simnet::MiddleboxPlan plan;
  plan.policy_all(slow).recognize_probe_signatures(true);
  const auto& topo = s.network->topology();
  for (topology::AsNumber as = 1; as <= 5; ++as) {
    plan.recognize(topo.address_of(topology::InterfaceKey{as, 1}));
    plan.recognize(topo.address_of(topology::InterfaceKey{as, 2}));
  }
  simnet::AdaptiveConfig adaptive;
  adaptive.enabled = true;
  adaptive.promote_after = promote_after;
  plan.adaptive(adaptive);
  if (!s.network->install_middlebox(kCheatAs, plan)) std::abort();
  return s;
}

SweepPoint run_arm(std::uint32_t promote_after, bool randomize,
                   std::uint64_t trials) {
  SweepPoint point;
  std::vector<std::uint64_t> rounds;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 17000 + trial;
    simnet::Scenario s = adaptive_scenario(seed, promote_after);

    // Warm-up visit: the naive operator's STATIC check. Within one run its
    // identical twins recur every round, feeding the learner exactly the
    // recurrence it needs.
    {
      core::DiscriminationDetector::Options opts;
      opts.randomize_twins = false;
      core::DiscriminationDetector warmup(*s.network, 1, 5, seed + 31, opts);
      if (!warmup.run()) std::abort();
    }

    // The measured visit: same seed (same static signature), static vs.
    // randomized generation.
    core::DiscriminationDetector::Options opts;
    opts.randomize_twins = randomize;
    core::DiscriminationDetector detector(*s.network, 1, 5, seed + 31, opts);
    auto twins = detector.run();
    if (!twins) std::abort();
    rounds.push_back(twins->rounds_used);
    if (twins->detected) {
      point.detection_rate += 1.0;
      if (twins->named_as() == kCheatAs) point.naming_rate += 1.0;
    }
  }
  point.detection_rate /= static_cast<double>(trials);
  point.naming_rate /= static_cast<double>(trials);
  std::sort(rounds.begin(), rounds.end());
  point.median_rounds = static_cast<double>(rounds[rounds.size() / 2]);
  return point;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation — adaptive adversary vs. randomized twin probes",
      "Debuglet (ICDCS'24), Section VI-E arms race: learning DPI vs. SPRT");
  bench::Report report("adaptive_discrimination");
  const auto trials = static_cast<std::uint64_t>(
      bench::env_scale("DEBUGLET_BENCH_TRIALS", 6.0));

  const std::uint32_t horizons[] = {4, 8, 16};
  std::printf("\n%8s %11s | %14s %12s %14s\n", "horizon", "twins",
              "detection rate", "named AS3", "median rounds");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "------");

  double static_collapsed = 1.0;
  double randomized_named = 1.0;
  double randomized_rounds = 0.0;
  for (const std::uint32_t horizon : horizons) {
    for (const bool randomize : {false, true}) {
      const SweepPoint point = run_arm(horizon, randomize, trials);
      std::printf("%8u %11s | %14.2f %12.2f %14.0f\n", horizon,
                  randomize ? "randomized" : "static", point.detection_rate,
                  point.naming_rate, point.median_rounds);
      char label[32];
      std::snprintf(label, sizeof(label), "%u", horizon);
      const obs::Labels labels{
          {"horizon", label},
          {"twins", randomize ? "randomized" : "static"}};
      report.metric("adaptive_discrimination.detection_rate",
                    point.detection_rate, labels);
      report.metric("adaptive_discrimination.naming_rate", point.naming_rate,
                    labels);
      report.metric("adaptive_discrimination.median_rounds",
                    point.median_rounds, labels);
      if (randomize) {
        randomized_named = std::min(randomized_named, point.naming_rate);
        randomized_rounds = std::max(randomized_rounds, point.median_rounds);
      } else if (horizon <= 8) {
        static_collapsed = std::min(static_collapsed,
                                    1.0 - point.detection_rate);
      }
    }
  }

  report.check(static_collapsed == 1.0,
               "post-warm-up static twins are evaded at horizons <= 8 "
               "(the learner wins the naive arms race)");
  report.check(randomized_named >= 0.9,
               "randomized twins + SPRT name the cheating AS in >= 90% of "
               "trials at every horizon");
  report.check(randomized_rounds <= 40.0,
               "sequential testing needs no more median rounds than the "
               "legacy fixed-40 budget");
  return report.summary();
}
