// Figure 2 reproduction: Frankfurt – London RTT over 24 hours.
// The paper's figure shows (a) UDP forming four clearly visible clusters
// (four load-balanced routes), (b) a multi-hour elevation of UDP and raw
// IP that ICMP and TCP do not see, and (c) ICMP's tight priority-queue
// distribution. This bench verifies all three structurally.
#include "bench_util.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"
#include "util/stats.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

}  // namespace

int main() {
  bench::banner("Figure 2 — Frankfurt–London RTT, 24 hours (UDP clusters)",
                "Debuglet (ICDCS'24), Figure 2");
  const double hours = bench::env_scale("DEBUGLET_BENCH_HOURS", 24.0);

  Scenario s = build_city_scenario(21);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  if (auto st = s.network->attach_host(server_addr, &server); !st) return 2;
  const auto client_addr =
      s.network->allocate_host_address(city_as("Frankfurt"));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = static_cast<std::uint64_t>(hours * 3600.0);
  cfg.interval = duration::seconds(1);
  cfg.record_series = true;
  ProbeClientHost client(*s.network, client_addr, cfg, 22);
  if (auto st = s.network->attach_host(client_addr, &client); !st) return 2;
  client.start();
  s.queue->run();
  const ProbeReport& report = client.report();

  if (std::FILE* csv = bench::csv_open("fig2_frankfurt_rtt.csv")) {
    std::fprintf(csv, "protocol,t_s,rtt_ms\n");
    for (Protocol p : net::kAllProtocols) {
      const Series& series = report.series.at(p);
      for (std::size_t i = 0; i < series.times_s.size(); ++i)
        std::fprintf(csv, "%s,%.3f,%.4f\n", net::protocol_name(p).c_str(),
                     series.times_s[i], series.values[i]);
    }
    std::fclose(csv);
  }

  std::printf("\nPer-protocol summary (ms):\n");
  std::printf("%-6s %8s %8s %8s %8s\n", "proto", "mean", "std", "p5", "p95");
  for (Protocol p : net::kAllProtocols) {
    const SampleSet& rtt = report.rtt_ms.at(p);
    std::printf("%-6s %8.2f %8.2f %8.2f %8.2f\n",
                net::protocol_name(p).c_str(), rtt.mean(), rtt.stddev(),
                rtt.percentile(5), rtt.percentile(95));
  }

  // Elevation episodes: fraction of hours where UDP+raw medians exceed
  // their global medians by >0.5 ms while ICMP stays flat.
  const Series& udp_series = report.series.at(Protocol::kUdp);
  const Series& raw_series = report.series.at(Protocol::kRawIp);
  const Series& icmp_series = report.series.at(Protocol::kIcmp);
  auto hour_mean = [](const Series& series, std::size_t hour) {
    RunningStats stats;
    for (std::size_t i = 0; i < series.times_s.size(); ++i) {
      if (series.times_s[i] >= static_cast<double>(hour) * 3600.0 &&
          series.times_s[i] < static_cast<double>(hour + 1) * 3600.0)
        stats.add(series.values[i]);
    }
    return stats.mean();
  };
  const auto total_hours = static_cast<std::size_t>(hours);
  std::size_t elevated_hours = 0;
  std::vector<bool> hour_elevated(total_hours, false);
  std::printf("\nHourly means (ms):\n%6s %8s %8s %8s\n", "hour", "UDP",
              "RawIP", "ICMP");
  const double udp_floor = report.rtt_ms.at(Protocol::kUdp).percentile(20);
  const double raw_floor = report.rtt_ms.at(Protocol::kRawIp).percentile(20);
  for (std::size_t h = 0; h < total_hours; ++h) {
    const double u = hour_mean(udp_series, h);
    const double r = hour_mean(raw_series, h);
    const double i = hour_mean(icmp_series, h);
    const bool elevated = (u > udp_floor + 0.45) && (r > raw_floor + 0.45);
    hour_elevated[h] = elevated;
    if (elevated) ++elevated_hours;
    std::printf("%6zu %8.2f %8.2f %8.2f%s\n", h, u, r, i,
                elevated ? "   <- UDP+RawIP elevated" : "");
  }

  // UDP cluster structure. Path elevation shifts all four route clusters
  // together, so cluster within the non-elevated hours — where the figure's
  // four bands are clearly separated.
  std::vector<double> udp_quiet;
  for (std::size_t i = 0; i < udp_series.times_s.size(); ++i) {
    const auto h = static_cast<std::size_t>(udp_series.times_s[i] / 3600.0);
    if (h < total_hours && !hour_elevated[h])
      udp_quiet.push_back(udp_series.values[i]);
  }
  if (udp_quiet.empty())
    udp_quiet = report.rtt_ms.at(Protocol::kUdp).samples();
  const std::size_t modes = estimate_mode_count(udp_quiet, 8);
  const Clusters clusters = kmeans_1d(udp_quiet, modes);
  std::printf("\nUDP route clusters detected: %zu (paper: 4)\n", modes);
  for (std::size_t i = 0; i < clusters.centers.size(); ++i) {
    std::printf("  cluster %zu: center %.2f ms, %zu samples (%.1f%%)\n", i,
                clusters.centers[i], clusters.sizes[i],
                100.0 * static_cast<double>(clusters.sizes[i]) /
                    static_cast<double>(udp_quiet.size()));
  }

  bench::ShapeChecks checks;
  checks.check(modes == 4, "UDP forms exactly 4 visible clusters");
  checks.check(elevated_hours >= 2,
               "multi-hour elevation of UDP and raw IP present");
  checks.check(report.rtt_ms.at(Protocol::kIcmp).stddev() < 0.7,
               "ICMP distribution stays tight (priority queue)");
  checks.check(report.rtt_ms.at(Protocol::kIcmp).mean() <
                   report.rtt_ms.at(Protocol::kUdp).mean(),
               "ICMP mean below UDP mean");
  checks.check(report.loss_per_mille(Protocol::kTcp) > 0.5,
               "TCP shows measurable loss while others are clean");
  return checks.summary();
}
