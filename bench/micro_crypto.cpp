// Microbenchmarks of the crypto substrate: SHA-256 throughput, HMAC,
// Schnorr signing/verification (the result-certification cost every
// executor pays), U256 modular exponentiation, and Merkle trees.
#include <benchmark/benchmark.h>

#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::crypto;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(BytesView(data.data(), data.size())));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(32, 2);
  const Bytes msg = random_bytes(1024, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(BytesView(key.data(), key.size()),
                                         BytesView(msg.data(), msg.size())));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HmacSha256);

void BM_SchnorrSign(benchmark::State& state) {
  const KeyPair kp = KeyPair::from_seed(42);
  const Bytes msg = random_bytes(256, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sign(BytesView(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const KeyPair kp = KeyPair::from_seed(43);
  const Bytes msg = random_bytes(256, 5);
  const Signature sig = kp.sign(BytesView(msg.data(), msg.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify(kp.public_key(), BytesView(msg.data(), msg.size()), sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_PowMod(benchmark::State& state) {
  Rng rng(6);
  Bytes eb(32);
  for (auto& b : eb) b = static_cast<std::uint8_t>(rng.next_u64());
  const U256 exponent = U256::from_be_bytes(BytesView(eb.data(), eb.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pow_mod(group_generator(), exponent, group_prime()));
  }
}
BENCHMARK(BM_PowMod);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i)
    leaves.push_back(random_bytes(64, 100 + static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256)->Arg(4096);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 1024; ++i)
    leaves.push_back(random_bytes(64, 200 + static_cast<std::uint64_t>(i)));
  MerkleTree tree(leaves);
  std::size_t index = 0;
  for (auto _ : state) {
    const MerkleProof proof = tree.prove(index % 1024);
    benchmark::DoNotOptimize(merkle_verify(
        tree.root(),
        BytesView(leaves[index % 1024].data(), leaves[index % 1024].size()),
        proof));
    ++index;
  }
}
BENCHMARK(BM_MerkleProveVerify);

}  // namespace

BENCHMARK_MAIN();
