// Figure 1 reproduction: New York – London RTT over a 4-hour window.
// The paper's figure shows (a) UDP and TCP consistently below ICMP and raw
// IP, (b) occasional sudden ~5 ms steps (route changes), and (c) the
// per-protocol latency density. This bench emits the windowed series
// summary, the density (histogram), and the step count.
#include "bench_util.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"
#include "util/stats.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

}  // namespace

int main() {
  bench::banner("Figure 1 — New York–London RTT, 4-hour window + density",
                "Debuglet (ICDCS'24), Figure 1");
  const double hours = bench::env_scale("DEBUGLET_BENCH_HOURS", 4.0);

  Scenario s = build_city_scenario(11);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  if (auto st = s.network->attach_host(server_addr, &server); !st) return 2;
  const auto client_addr = s.network->allocate_host_address(city_as("NewYork"));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = static_cast<std::uint64_t>(hours * 3600.0);
  cfg.interval = duration::seconds(1);
  cfg.record_series = true;
  ProbeClientHost client(*s.network, client_addr, cfg, 12);
  if (auto st = s.network->attach_host(client_addr, &client); !st) return 2;
  client.start();
  s.queue->run();
  const ProbeReport& report = client.report();

  // Raw per-probe series for external plotting (set DEBUGLET_CSV_DIR).
  if (std::FILE* csv = bench::csv_open("fig1_newyork_rtt.csv")) {
    std::fprintf(csv, "protocol,t_s,rtt_ms\n");
    for (Protocol p : net::kAllProtocols) {
      const Series& series = report.series.at(p);
      for (std::size_t i = 0; i < series.times_s.size(); ++i)
        std::fprintf(csv, "%s,%.3f,%.4f\n", net::protocol_name(p).c_str(),
                     series.times_s[i], series.values[i]);
    }
    std::fclose(csv);
  }

  // Windowed time series (10-minute buckets), the figure's left panel.
  std::printf("\nTime series (10-minute bucket means, ms):\n");
  std::printf("%8s %8s %8s %8s %8s\n", "t(min)", "UDP", "TCP", "ICMP",
              "RawIP");
  const double bucket_s = 600.0;
  const auto buckets = static_cast<std::size_t>(hours * 3600.0 / bucket_s);
  for (std::size_t b = 0; b < buckets; ++b) {
    std::printf("%8.0f", (static_cast<double>(b) * bucket_s) / 60.0);
    for (Protocol p : net::kAllProtocols) {
      const Series& series = report.series.at(p);
      RunningStats stats;
      for (std::size_t i = 0; i < series.times_s.size(); ++i) {
        if (series.times_s[i] >= static_cast<double>(b) * bucket_s &&
            series.times_s[i] < static_cast<double>(b + 1) * bucket_s)
          stats.add(series.values[i]);
      }
      std::printf(" %8.2f", stats.mean());
    }
    std::printf("\n");
  }

  // Density panels: per-protocol histogram over a shared range.
  std::printf("\nLatency density (counts per 1 ms bin, 65–95 ms):\n");
  std::printf("%8s %8s %8s %8s %8s\n", "bin(ms)", "UDP", "TCP", "ICMP",
              "RawIP");
  std::map<Protocol, std::vector<std::size_t>> histograms;
  for (Protocol p : net::kAllProtocols)
    histograms[p] = report.rtt_ms.at(p).histogram(65.0, 95.0, 30);
  for (std::size_t bin = 0; bin < 30; ++bin) {
    std::printf("%8.0f", 65.0 + static_cast<double>(bin));
    for (Protocol p : net::kAllProtocols)
      std::printf(" %8zu", histograms[p][bin]);
    std::printf("\n");
  }

  bench::ShapeChecks checks;
  auto mean = [&](Protocol p) { return report.rtt_ms.at(p).mean(); };
  checks.check(mean(Protocol::kUdp) < mean(Protocol::kIcmp) &&
                   mean(Protocol::kUdp) < mean(Protocol::kRawIp),
               "UDP consistently below ICMP and raw IP");
  checks.check(mean(Protocol::kTcp) < mean(Protocol::kIcmp) &&
                   mean(Protocol::kTcp) < mean(Protocol::kRawIp),
               "TCP consistently below ICMP and raw IP");
  // Sudden ~5 ms steps: count level shifts > 2.5 ms in 10-min medians.
  std::size_t shifts = 0;
  for (Protocol p : net::kAllProtocols)
    shifts += count_level_shifts(report.series.at(p).values, 600, 2.5);
  std::printf("\nLevel shifts (>2.5 ms between 10-min medians), all "
              "protocols: %zu\n", shifts);
  checks.check(shifts >= 1, "sudden route-change steps are visible");
  checks.check(report.loss_per_mille(Protocol::kTcp) >
                   report.loss_per_mille(Protocol::kIcmp),
               "TCP loss above ICMP loss in the window");
  return checks.summary();
}
