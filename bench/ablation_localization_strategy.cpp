// Ablation A2: initiator strategies for selecting Debuglet executions
// (paper §VI-D), extended with the in-band telemetry shortcut.
//
// The paper's example — a path over 10 consecutive ASes with a fault in
// the last inter-domain link — argues a linear scan costs long
// time-to-locate and high price, while binary search is cost- and
// time-effective. With every-router Debuglets appending INT records the
// comparison collapses further: ONE probe round localizes any single
// link, spending zero marketplace tokens. This bench runs all four
// strategies against faults at every position and reports measurements,
// tokens, time-to-locate, and the in-band header overhead, as
// BENCH_int_localization.json.
#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "telemetry/int_header.hpp"

namespace {

using namespace debuglet;
using core::Strategy;

constexpr std::size_t kAses = 10;
constexpr std::size_t kLinks = kAses - 1;

struct RunResult {
  bool located = false;
  std::size_t fault_link = 0;
  std::size_t measurements = 0;
  chain::Mist tokens = 0;
  double seconds = 0.0;
};

RunResult run_one(Strategy strategy, std::size_t fault_link,
                  std::uint64_t seed) {
  core::DebugletSystem system(simnet::build_chain_scenario(kAses, seed, 5.0));
  core::Initiator initiator(system, seed + 1, 2'000'000'000'000ULL);

  simnet::FaultSpec fault;
  fault.extra_delay_ms = 60.0;
  fault.start = 0;
  fault.end = duration::hours(100);
  (void)system.network().inject_fault(simnet::chain_egress(fault_link),
                                simnet::chain_ingress(fault_link + 1), fault);
  (void)system.network().inject_fault(simnet::chain_ingress(fault_link + 1),
                                simnet::chain_egress(fault_link), fault);

  auto path = system.network().topology().shortest_path(1, kAses);
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 6, 100);
  auto report = localizer.run(strategy);
  RunResult out;
  if (!report) return out;
  out.located = report->located;
  out.fault_link = report->fault_link;
  out.measurements = report->measurements;
  out.tokens = report->tokens_spent;
  out.seconds = duration::to_seconds(report->time_to_locate());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A2 — executor-selection strategy for localization",
                "Debuglet (ICDCS'24), Section VI-D + in-band telemetry");
  bench::Report report("int_localization");

  std::printf("\n%zu-AS path (%zu inter-domain links), fault injected per "
              "position:\n\n", kAses, kLinks);
  std::printf("%-10s %-18s | %12s %12s %12s %8s\n", "fault@", "strategy",
              "measurements", "tokens(SUI)", "time(s)", "correct");
  std::printf("%.*s\n", 84,
              "------------------------------------------------------------"
              "-----------------------------");

  double linear_total_meas = 0, binary_total_meas = 0, inband_total_meas = 0;
  double linear_last_meas = 0, binary_last_meas = 0;
  double linear_last_time = 0, binary_last_time = 0;
  double inband_last_time = 0, inband_total_tokens = 0;
  bool all_correct = true, inband_correct = true, inband_single_round = true;
  double parallel_last_time = 0;
  for (std::size_t fault_link : {0u, 2u, 4u, 6u, 8u}) {
    for (Strategy strategy :
         {Strategy::kLinearSequential, Strategy::kBinarySearch,
          Strategy::kParallelSweep, Strategy::kInband}) {
      const RunResult r = run_one(strategy, fault_link, 9000 + fault_link);
      const bool correct = r.located && r.fault_link == fault_link;
      all_correct = all_correct && correct;
      const std::string name = core::strategy_name(strategy);
      std::printf("link %-5zu %-18s | %12zu %12.4f %12.1f %8s\n", fault_link,
                  name.c_str(), r.measurements,
                  chain::mist_to_sui(r.tokens), r.seconds,
                  correct ? "yes" : "NO");
      const obs::Labels labels = {
          {"strategy", name}, {"fault_link", std::to_string(fault_link)}};
      report.metric("localization.measurements",
                    static_cast<double>(r.measurements), labels);
      report.metric("localization.tokens_sui", chain::mist_to_sui(r.tokens),
                    labels);
      report.metric("localization.time_to_locate_s", r.seconds, labels);
      report.metric("localization.correct", correct ? 1.0 : 0.0, labels);
      if (strategy == Strategy::kLinearSequential) {
        linear_total_meas += static_cast<double>(r.measurements);
        if (fault_link == 8) {
          linear_last_meas = static_cast<double>(r.measurements);
          linear_last_time = r.seconds;
        }
      } else if (strategy == Strategy::kBinarySearch) {
        binary_total_meas += static_cast<double>(r.measurements);
        if (fault_link == 8) {
          binary_last_meas = static_cast<double>(r.measurements);
          binary_last_time = r.seconds;
        }
      } else if (strategy == Strategy::kInband) {
        inband_total_meas += static_cast<double>(r.measurements);
        inband_total_tokens += chain::mist_to_sui(r.tokens);
        inband_correct = inband_correct && correct;
        inband_single_round = inband_single_round && r.measurements == 1;
        if (fault_link == 8) inband_last_time = r.seconds;
      } else if (fault_link == 8) {
        parallel_last_time = r.seconds;
      }
    }
  }

  // The in-band shortcut's two costs, made explicit in the JSON: probe
  // rounds saved versus the best out-of-band strategy, and the bytes of
  // INT header+records each probe carries for this path length.
  const double probes_saved = binary_total_meas - inband_total_meas;
  const double header_overhead =
      static_cast<double>(telemetry::IntHeader::wire_size(kLinks));
  report.metric("inband.probe_rounds_saved_vs_binary", probes_saved);
  report.metric("inband.header_overhead_bytes", header_overhead);
  report.metric("inband.tokens_sui_total", inband_total_tokens);

  std::printf("\nTotals: linear %.0f measurements, binary %.0f, in-band "
              "%.0f (saving %.0f rounds vs binary at %.0f bytes of INT "
              "header per probe)\n",
              linear_total_meas, binary_total_meas, inband_total_meas,
              probes_saved, header_overhead);
  report.check(all_correct, "all strategies localize every fault position");
  // Linear needs one measurement per link up to the fault (9 for the far
  // link); binary needs 1 end-to-end check + ceil(log2(9)) = 5 total.
  report.check(binary_last_meas <= 5.0 && linear_last_meas >= 9.0,
               "far fault (paper's example): binary O(log n) vs linear "
               "O(n) measurements");
  report.check(binary_last_time < linear_last_time,
               "far fault: binary locates faster");
  report.check(binary_total_meas < linear_total_meas,
               "binary cheaper on average across fault positions");
  report.check(parallel_last_time < binary_last_time,
               "parallel sweep is the fastest purchased strategy (but "
               "always buys all 9 measurements — the cost concern of "
               "§VI-D)");
  report.check(inband_single_round && inband_correct,
               "in-band telemetry localizes every fault position in "
               "exactly one probe round");
  report.check(inband_total_tokens == 0.0,
               "the in-band round buys no marketplace measurements");
  report.check(inband_last_time < binary_last_time,
               "far fault: in-band locates faster than binary search");
  return report.summary();
}
