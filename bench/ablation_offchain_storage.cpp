// Ablation A3: on-chain payloads vs hash-only (off-chain) storage
// (paper §V-B "Blockchain Costs" and §VI-F "Age of Information").
//
// The paper: "The cost can be significantly lowered by storing
// applications or results off-chain and only storing a link to the stored
// data and a hash of data on the chain, so that the data can be verified
// against the on-chain hash... the Sui transaction fees amount to about 1
// cent."
//
// This bench runs both designs end to end: full Debuglet applications and
// results on-chain vs 32-byte Merkle roots on-chain with payloads in an
// off-chain archive, then demonstrates that tampering with the archive is
// caught by the on-chain hash.
#include "bench_util.hpp"
#include "apps/debuglets.hpp"
#include "chain/chain.hpp"
#include "crypto/merkle.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::chain;

class BlobStore : public Contract {
 public:
  std::string name() const override { return "blob_store"; }
  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "put") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      BytesWriter w;
      w.u64(*id);
      return w.take();
    }
    return fail("unknown function");
  }
};

constexpr double kSuiUsd = 0.94;  // the paper's SUI price (May 14, 2024)

}  // namespace

int main() {
  bench::banner("Ablation A3 — on-chain payloads vs hash-only storage",
                "Debuglet (ICDCS'24), Sections V-B and VI-F");

  Blockchain chain;
  if (!chain.register_contract(std::make_unique<BlobStore>())) return 2;
  const crypto::KeyPair user = crypto::KeyPair::from_seed(31337);
  const Address addr = Address::of(user.public_key());
  chain.mint(addr, 1'000'000'000'000ULL);

  // A realistic measurement exchange: the client+server bytecode going up,
  // and a day's worth of result samples coming back.
  const Bytes client_bytecode = apps::make_probe_client_debuglet().serialize();
  const Bytes server_bytecode = apps::make_echo_server_debuglet().serialize();
  Bytes result_samples;
  for (std::uint64_t i = 0; i < 500; ++i) {  // 500 (seq, rtt) samples
    BytesWriter w;
    w.u64(i);
    w.i64(75'000'000 + static_cast<std::int64_t>(i % 997) * 1000);
    const Bytes rec = w.take();
    result_samples.insert(result_samples.end(), rec.begin(), rec.end());
  }
  std::printf("\nPayload sizes: client bytecode %zu B, server bytecode %zu "
              "B, results %zu B\n",
              client_bytecode.size(), server_bytecode.size(),
              result_samples.size());

  auto submit_cost = [&](const Bytes& payload) -> Mist {
    const Mist before = chain.balance(addr);
    auto receipt = chain.submit(
        chain.make_transaction(user, "blob_store", "put", payload));
    if (!receipt || !receipt->success) std::abort();
    return before - chain.balance(addr);
  };

  // --- Design 1: everything on-chain --------------------------------------
  const Mist onchain_cost = submit_cost(client_bytecode) +
                            submit_cost(server_bytecode) +
                            submit_cost(result_samples);

  // --- Design 2: hash-only on-chain ----------------------------------------
  // Off-chain archive (a blockchain explorer / monitoring site, §VI-F).
  std::vector<Bytes> archive = {client_bytecode, server_bytecode,
                                result_samples};
  crypto::MerkleTree tree(archive);
  const Bytes root(tree.root().bytes.begin(), tree.root().bytes.end());
  const Mist hash_only_cost = submit_cost(root);

  const double onchain_usd = mist_to_sui(onchain_cost) * kSuiUsd;
  const double hash_usd = mist_to_sui(hash_only_cost) * kSuiUsd;
  std::printf("\n%-22s | %12s %12s\n", "design", "cost (SUI)", "cost (c)");
  std::printf("%.*s\n", 52, "----------------------------------------------------");
  std::printf("%-22s | %12.5f %12.2f\n", "all on-chain",
              mist_to_sui(onchain_cost), onchain_usd * 100);
  std::printf("%-22s | %12.5f %12.2f\n", "hash-only (off-chain)",
              mist_to_sui(hash_only_cost), hash_usd * 100);
  std::printf("\nSaving: %.1fx\n",
              static_cast<double>(onchain_cost) /
                  static_cast<double>(hash_only_cost));

  // --- Verifiability is preserved ------------------------------------------
  // A third party fetches the archive, the proof, and the on-chain root.
  const crypto::MerkleProof proof = tree.prove(2);
  const bool genuine_ok = crypto::merkle_verify(
      tree.root(),
      BytesView(result_samples.data(), result_samples.size()), proof);

  // The archive operator tries to improve the published results.
  Bytes tampered = result_samples;
  tampered[20] ^= 0x01;  // one RTT sample nudged
  const bool tampered_ok = crypto::merkle_verify(
      tree.root(), BytesView(tampered.data(), tampered.size()), proof);

  std::printf("genuine archive verifies: %s; tampered archive verifies: "
              "%s\n",
              genuine_ok ? "yes" : "no", tampered_ok ? "yes" : "no");

  bench::ShapeChecks checks;
  checks.check(hash_only_cost * 5 < onchain_cost,
               "hash-only design is at least 5x cheaper");
  checks.check(hash_usd < 0.02,
               "hash-only fee is about one cent (paper claim)");
  checks.check(genuine_ok, "off-chain payload verifies against the root");
  checks.check(!tampered_ok, "a single flipped bit is detected");
  return checks.summary();
}
