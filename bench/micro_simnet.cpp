// Microbenchmarks of the network simulator: event-queue throughput, link
// traversal (the per-packet hot path), full packet transit across a chain,
// and probe round-trips — these bound how much simulated measurement a
// wall-clock second buys.
#include <benchmark/benchmark.h>

#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t sum = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule_at(i * 7 % 1000, [&sum] { ++sum; });
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void BM_LinkTraverse(benchmark::State& state) {
  LinkConfig cfg;
  cfg.propagation_ms = 10.0;
  cfg.routes = {{0.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {4.0, 1.0, 1.0}};
  cfg.policies[Protocol::kUdp] =
      ProtocolPolicy{SelectionPolicy::kPerPacket, {0, 1, 2}, 1.0, false};
  EpisodeSpec ep;
  ep.on_mean_s = 100.0;
  ep.off_mean_s = 300.0;
  ep.extra_delay_ms = 5.0;
  cfg.episodes = {ep};
  cfg.shift = {1000.0, 3.0};
  LinkModel link(cfg, Rng(1));
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.traverse(Protocol::kUdp, 42, t));
    t += duration::milliseconds(10);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkTraverse);

void BM_PacketAcrossChain(benchmark::State& state) {
  Scenario s = build_chain_scenario(static_cast<std::size_t>(state.range(0)),
                                    7);
  struct Sink : Host {
    void on_packet(const Delivery&) override { ++count; }
    std::uint64_t count = 0;
  } sink;
  const auto dst = s.network->allocate_host_address(
      static_cast<topology::AsNumber>(state.range(0)));
  (void)s.network->attach_host(dst, &sink);
  const auto src = s.network->allocate_host_address(1);
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.payload = bytes_of("bench");
  const Bytes wire = *net::build_probe(spec);
  for (auto _ : state) {
    (void)s.network->send(src, wire);
    s.queue->run();
  }
  benchmark::DoNotOptimize(sink.count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketAcrossChain)->Arg(3)->Arg(10);

void BM_ProbeRoundTripsPerSecond(benchmark::State& state) {
  // How much simulated measurement fits in a wall-clock second: full
  // probe round-trips including echo replies across a city pair.
  for (auto _ : state) {
    Scenario s = build_city_scenario(9);
    const auto server_addr = s.network->allocate_host_address(london_as());
    EchoServerHost server(*s.network, server_addr);
    (void)s.network->attach_host(server_addr, &server);
    const auto client_addr =
        s.network->allocate_host_address(city_as("Frankfurt"));
    ProbeClientConfig cfg;
    cfg.server = server_addr;
    cfg.probe_count = 1000;
    cfg.interval = duration::milliseconds(100);
    ProbeClientHost client(*s.network, client_addr, cfg, 10);
    (void)s.network->attach_host(client_addr, &client);
    client.start();
    s.queue->run();
    benchmark::DoNotOptimize(client.report().sent.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 4);
}
BENCHMARK(BM_ProbeRoundTripsPerSecond);

}  // namespace

BENCHMARK_MAIN();
