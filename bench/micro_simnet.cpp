// Microbenchmarks of the network simulator: event-queue throughput, link
// traversal (the per-packet hot path), full packet transit across a chain,
// and probe round-trips — these bound how much simulated measurement a
// wall-clock second buys.
//
// The custom main() first runs the sharded-queue scaling report — probe
// fleets on a 1000-AS ring at 1/2/4/8 event-queue shards, with a
// bit-exact cross-shard fingerprint check — and writes
// BENCH_simnet_scale.json via bench::Report before handing over to
// google-benchmark (so CI's `--benchmark_filter=-.*` run still produces
// the report). DEBUGLET_BENCH_HOURS scales the probe volume; the
// speedup check is advisory on boxes with fewer cores than shards (the
// report records the visible CPU count).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"
#include "util/flat_hash.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t sum = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule_at(i * 7 % 1000, [&sum] { ++sum; });
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void BM_LinkTraverse(benchmark::State& state) {
  LinkConfig cfg;
  cfg.propagation_ms = 10.0;
  cfg.routes = {{0.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {4.0, 1.0, 1.0}};
  cfg.policies[Protocol::kUdp] =
      ProtocolPolicy{SelectionPolicy::kPerPacket, {0, 1, 2}, 1.0, false};
  EpisodeSpec ep;
  ep.on_mean_s = 100.0;
  ep.off_mean_s = 300.0;
  ep.extra_delay_ms = 5.0;
  cfg.episodes = {ep};
  cfg.shift = {1000.0, 3.0};
  LinkModel link(cfg, Rng(1));
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.traverse(Protocol::kUdp, 42, t));
    t += duration::milliseconds(10);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkTraverse);

void BM_PacketAcrossChain(benchmark::State& state) {
  Scenario s = build_chain_scenario(static_cast<std::size_t>(state.range(0)),
                                    7);
  struct Sink : Host {
    void on_packet(const Delivery&) override { ++count; }
    std::uint64_t count = 0;
  } sink;
  const auto dst = s.network->allocate_host_address(
      static_cast<topology::AsNumber>(state.range(0)));
  (void)s.network->attach_host(dst, &sink);
  const auto src = s.network->allocate_host_address(1);
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.payload = bytes_of("bench");
  const Bytes wire = *net::build_probe(spec);
  for (auto _ : state) {
    (void)s.network->send(src, wire);
    s.queue->run();
  }
  benchmark::DoNotOptimize(sink.count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketAcrossChain)->Arg(3)->Arg(10);

void BM_ProbeRoundTripsPerSecond(benchmark::State& state) {
  // How much simulated measurement fits in a wall-clock second: full
  // probe round-trips including echo replies across a city pair.
  for (auto _ : state) {
    Scenario s = build_city_scenario(9);
    const auto server_addr = s.network->allocate_host_address(london_as());
    EchoServerHost server(*s.network, server_addr);
    (void)s.network->attach_host(server_addr, &server);
    const auto client_addr =
        s.network->allocate_host_address(city_as("Frankfurt"));
    ProbeClientConfig cfg;
    cfg.server = server_addr;
    cfg.probe_count = 1000;
    cfg.interval = duration::milliseconds(100);
    ProbeClientHost client(*s.network, client_addr, cfg, 10);
    (void)s.network->attach_host(client_addr, &client);
    client.start();
    s.queue->run();
    benchmark::DoNotOptimize(client.report().sent.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 4);
}
BENCHMARK(BM_ProbeRoundTripsPerSecond);

// --- Sharded-queue scaling report -----------------------------------------

struct ScaleRun {
  double wall_s = 0.0;
  std::size_t events = 0;
  std::uint64_t packets = 0;  // probe replies received across all clients
  std::uint64_t fingerprint = 0;
};

std::uint64_t mix_double(std::uint64_t h, double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return util::mix64(h ^ bits);
}

/// One full run of the scale workload: `pairs` probe-client/echo-server
/// pairs spread around an `ases`-AS ring, each client `span` hops from
/// its server, UDP only. The fingerprint hashes every client's exact RTT
/// sample stream and receive count — byte-for-byte shard invariance.
ScaleRun run_scale(std::size_t shards, std::size_t ases, std::size_t pairs,
                   std::size_t span, std::uint64_t probes) {
  Scenario s = build_internet_scenario(ases, 7, 5.0);
  s.queue->set_shards(shards);
  std::vector<std::unique_ptr<EchoServerHost>> servers;
  std::vector<std::unique_ptr<ProbeClientHost>> clients;
  const std::size_t stride = ases / pairs;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto client_as =
        static_cast<topology::AsNumber>(1 + (i * stride) % ases);
    const auto server_as =
        static_cast<topology::AsNumber>(1 + (i * stride + span) % ases);
    const auto server_addr = s.network->allocate_host_address(server_as);
    servers.push_back(std::make_unique<EchoServerHost>(*s.network,
                                                       server_addr));
    (void)s.network->attach_host(server_addr, servers.back().get());
    const auto client_addr = s.network->allocate_host_address(client_as);
    ProbeClientConfig cfg;
    cfg.server = server_addr;
    cfg.probe_count = probes;
    cfg.interval = duration::milliseconds(200);
    cfg.protocols = {Protocol::kUdp};
    clients.push_back(std::make_unique<ProbeClientHost>(
        *s.network, client_addr, cfg, 100 + i));
    (void)s.network->attach_host(client_addr, clients.back().get());
  }
  for (auto& c : clients) c->start();
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t events = s.queue->run();
  const auto t1 = std::chrono::steady_clock::now();

  ScaleRun out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events = events;
  std::uint64_t fp = 0x9E3779B97F4A7C15ULL;
  for (auto& c : clients) {
    const ProbeReport& r = c->report();
    for (const auto& [protocol, n] : r.received) {
      out.packets += n;
      fp = util::mix64(fp ^ n);
    }
    for (const auto& [protocol, set] : r.rtt_ms)
      for (double sample : set.samples()) fp = mix_double(fp, sample);
  }
  out.fingerprint = fp;
  return out;
}

int scale_report() {
  bench::banner("Sharded event queue: events/sec vs shard count",
                "simulator scaling substrate (1000-AS ring)");
  bench::Report report("simnet_scale");

  // DEBUGLET_BENCH_HOURS scales the probe volume (CI smoke uses 0.2 →
  // 40 probes/client; the committed baseline was taken at 1.0).
  const double scale = bench::env_scale("DEBUGLET_BENCH_HOURS", 1.0);
  const std::size_t kAses = 1000;
  const std::size_t kPairs = 50;
  const std::size_t kSpan = 7;
  const auto probes = static_cast<std::uint64_t>(
      std::max(8.0, 200.0 * scale));
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  report.metric("cpus", cpus);
  report.metric("probes_per_client", static_cast<double>(probes));

  ScaleRun base;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    const ScaleRun run = run_scale(shards, kAses, kPairs, kSpan, probes);
    const obs::Labels labels{{"shards", std::to_string(shards)}};
    const double events_per_s =
        run.wall_s > 0 ? static_cast<double>(run.events) / run.wall_s : 0;
    const double packets_per_s =
        run.wall_s > 0 ? static_cast<double>(run.packets) / run.wall_s : 0;
    report.metric("events_per_sec", events_per_s, labels);
    report.metric("packets_per_sec", packets_per_s, labels);
    report.metric("wall_s", run.wall_s, labels);
    if (shards == 1) {
      base = run;
    } else {
      report.metric("speedup_vs_1_shard",
                    base.wall_s > 0 ? base.wall_s / run.wall_s : 0, labels);
    }
    std::printf("  shards=%zu  %10.0f events/s  %8.0f packets/s  "
                "wall %.3fs%s\n",
                shards, events_per_s, packets_per_s, run.wall_s,
                shards == 1
                    ? ""
                    : (run.fingerprint == base.fingerprint ? "  (identical)"
                                                           : "  (DIVERGED)"));
    report.check(run.events == base.events,
                 "shards=" + std::to_string(shards) +
                     " processes the same event count as shards=1");
    report.check(run.fingerprint == base.fingerprint,
                 "shards=" + std::to_string(shards) +
                     " RTT streams bit-identical to shards=1");
  }
  // Scaling is only observable with real cores; on a 1-2 core CI box the
  // barrier overhead dominates, so the wall-clock comparison is reported
  // but not gated here (CI gates the single-shard figure against the
  // committed baseline instead).
  report.check(base.events > 0, "single-shard run processed events");
  return report.summary();
}

}  // namespace

int main(int argc, char** argv) {
  const int report_rc = scale_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report_rc;
}
