// Microbenchmarks of the blockchain substrate: transaction throughput
// (signature verification dominates), object storage, event dispatch, and
// chain-integrity verification.
//
// The custom main() first runs the parallel-execution scaling report —
// batches of pre-signed declared transactions executed at 1/2/4/8 workers,
// once uncontended (every transaction touches its own keys: one group per
// transaction) and once fully contended (every transaction writes one
// shared key: a single group) — and writes BENCH_chain_throughput.json via
// bench::Report before handing over to google-benchmark (so CI's
// `--benchmark_filter=-.*` run still produces the report). Every run is
// fingerprinted over the receipts and sealed block and checked
// bit-identical to the workers=1 run — the determinism contract of
// docs/CHAIN.md measured, not assumed. DEBUGLET_BENCH_HOURS scales the
// batch size; the speedup figures are reported but not gated (CI gates
// the workers=1 throughput against the committed baseline instead).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chain/chain.hpp"
#include "util/flat_hash.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::chain;

class NopContract : public Contract {
 public:
  std::string name() const override { return "nop"; }
  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "store") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      return Bytes{};
    }
    if (function == "emit") {
      ctx.emit_event("Tick", "key", Bytes{});
      return Bytes{};
    }
    if (function == "put") {
      BytesReader r(args);
      auto key = r.str();
      auto value = r.blob();
      if (!key || !value) return fail("bad put args");
      if (auto s = ctx.write_named(*key, std::move(*value)); !s)
        return s.error();
      return Bytes{};
    }
    return Bytes{};
  }
};

struct ChainState {
  ChainState() : key(crypto::KeyPair::from_seed(1)) {
    (void)chain.register_contract(std::make_unique<NopContract>());
    chain.mint(Address::of(key.public_key()), ~0ULL >> 1);
  }
  Blockchain chain;
  crypto::KeyPair key;
};

void BM_SubmitTransaction(benchmark::State& state) {
  ChainState s;
  for (auto _ : state) {
    auto receipt =
        s.chain.submit(s.chain.make_transaction(s.key, "nop", "noop", {}));
    benchmark::DoNotOptimize(receipt.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitTransaction);

void BM_SubmitWithStorage(benchmark::State& state) {
  ChainState s;
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto receipt = s.chain.submit(
        s.chain.make_transaction(s.key, "nop", "store", payload));
    benchmark::DoNotOptimize(receipt.ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitWithStorage)->Arg(100)->Arg(10000);

void BM_EventDispatch(benchmark::State& state) {
  ChainState s;
  std::uint64_t delivered = 0;
  for (int i = 0; i < state.range(0); ++i)
    s.chain.subscribe("nop", "Tick", i % 2 ? "key" : "",
                      [&delivered](const Event&) { ++delivered; });
  for (auto _ : state) {
    auto receipt =
        s.chain.submit(s.chain.make_transaction(s.key, "nop", "emit", {}));
    benchmark::DoNotOptimize(receipt.ok());
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(64);

void BM_VerifyIntegrity(benchmark::State& state) {
  ChainState s;
  for (int i = 0; i < state.range(0); ++i)
    (void)s.chain.submit(s.chain.make_transaction(s.key, "nop", "noop", {}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.chain.verify_integrity());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifyIntegrity)->Arg(100);

// --- Parallel-execution scaling report --------------------------------------

struct ThroughputRun {
  double wall_s = 0.0;
  std::size_t committed = 0;
  std::uint64_t fingerprint = 0;
};

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  for (char c : s) h = util::mix64(h ^ static_cast<std::uint8_t>(c));
  return h;
}

/// Builds one batch of `count` pre-signed declared transactions. In
/// contended mode every transaction writes the same named key (one
/// conflict group: the scheduler's serial floor); uncontended mode gives
/// every transaction its own key and sender (one group per transaction:
/// the scaling ceiling). Transactions are signed once and replayed on a
/// fresh chain per run, so the timed region measures verification +
/// scheduling + execution + commit, not signing.
struct Workload {
  std::vector<crypto::KeyPair> senders;
  std::vector<Transaction> txs;
};

Workload build_workload(std::size_t count, bool contended) {
  Workload w;
  Blockchain builder;
  for (std::size_t i = 0; i < count; ++i) {
    w.senders.push_back(crypto::KeyPair::from_seed(0xBE0C0000u + i));
    const std::string key =
        contended ? "hot" : "cold-" + std::to_string(i);
    BytesWriter args;
    args.str(key);
    args.blob(BytesView());
    AccessSet access;
    access.add_write(named_access_key("nop", key));
    w.txs.push_back(builder.make_transaction_with_nonce(
        w.senders.back(), 0, "nop", "put", args.take(), 0, 1'000'000'000,
        std::move(access)));
  }
  return w;
}

ThroughputRun run_throughput(const Workload& w, unsigned workers) {
  Blockchain chain;
  (void)chain.register_contract(std::make_unique<NopContract>());
  for (const auto& sender : w.senders)
    chain.mint(Address::of(sender.public_key()), 1'000'000'000'000ULL);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = chain.submit_batch(w.txs, BatchOptions{workers});
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputRun out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  std::uint64_t fp = 0x9E3779B97F4A7C15ULL;
  for (const auto& r : results) {
    if (!r.ok()) {
      fp = mix_str(fp, r.error_message());
      continue;
    }
    ++out.committed;
    fp = util::mix64(fp ^ (r->success ? 1 : 0));
    fp = util::mix64(fp ^ r->gas_charged);
    fp = mix_str(fp, r->transaction_digest.hex());
  }
  const Block& tip = chain.block(chain.height() - 1);
  fp = mix_str(fp, tip.transactions_root.hex());
  out.fingerprint = fp;
  return out;
}

int throughput_report() {
  bench::banner("Parallel owned-object execution: tx/sec vs worker count",
                "chain scheduling substrate (docs/CHAIN.md)");
  bench::Report report("chain_throughput");

  // DEBUGLET_BENCH_HOURS scales the batch size (CI smoke uses 0.2 → 240
  // transactions; the committed baseline was taken at 1.0).
  const double scale = bench::env_scale("DEBUGLET_BENCH_HOURS", 1.0);
  const auto count = static_cast<std::size_t>(std::max(64.0, 1200.0 * scale));
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  report.metric("cpus", cpus);
  report.metric("batch_txs", static_cast<double>(count));

  for (const bool contended : {false, true}) {
    const char* mode = contended ? "contended" : "uncontended";
    const Workload w = build_workload(count, contended);
    ThroughputRun base;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      const ThroughputRun run = run_throughput(w, workers);
      const obs::Labels labels{{"mode", mode},
                               {"workers", std::to_string(workers)}};
      const double tx_per_s =
          run.wall_s > 0 ? static_cast<double>(count) / run.wall_s : 0;
      report.metric("tx_per_sec", tx_per_s, labels);
      report.metric("wall_s", run.wall_s, labels);
      if (workers == 1) {
        base = run;
      } else {
        report.metric("speedup_vs_1_worker",
                      base.wall_s > 0 ? base.wall_s / run.wall_s : 0, labels);
      }
      std::printf("  %-12s workers=%u  %9.0f tx/s  wall %.3fs%s\n", mode,
                  workers, tx_per_s, run.wall_s,
                  workers == 1 ? ""
                               : (run.fingerprint == base.fingerprint
                                      ? "  (identical)"
                                      : "  (DIVERGED)"));
      report.check(run.committed == count,
                   std::string(mode) + " workers=" + std::to_string(workers) +
                       " commits every transaction");
      report.check(run.fingerprint == base.fingerprint,
                   std::string(mode) + " workers=" + std::to_string(workers) +
                       " receipts and block root bit-identical to workers=1");
    }
  }
  // Parallel speedup is only observable with real cores; on a 1-2 core CI
  // box the pool overhead dominates, so the wall-clock comparison is
  // reported but not gated here (CI gates the workers=1 figure against
  // the committed baseline instead).
  return report.summary();
}

}  // namespace

int main(int argc, char** argv) {
  const int report_rc = throughput_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report_rc;
}
