// Microbenchmarks of the blockchain substrate: transaction throughput
// (signature verification dominates), object storage, event dispatch, and
// chain-integrity verification.
#include <benchmark/benchmark.h>

#include "chain/chain.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::chain;

class NopContract : public Contract {
 public:
  std::string name() const override { return "nop"; }
  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "store") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      return Bytes{};
    }
    if (function == "emit") {
      ctx.emit_event("Tick", "key", Bytes{});
      return Bytes{};
    }
    return Bytes{};
  }
};

struct ChainState {
  ChainState() : key(crypto::KeyPair::from_seed(1)) {
    (void)chain.register_contract(std::make_unique<NopContract>());
    chain.mint(Address::of(key.public_key()), ~0ULL >> 1);
  }
  Blockchain chain;
  crypto::KeyPair key;
};

void BM_SubmitTransaction(benchmark::State& state) {
  ChainState s;
  for (auto _ : state) {
    auto receipt = s.chain.submit(
        s.chain.make_transaction(s.key, "nop", "noop", {}));
    benchmark::DoNotOptimize(receipt.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitTransaction);

void BM_SubmitWithStorage(benchmark::State& state) {
  ChainState s;
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto receipt = s.chain.submit(
        s.chain.make_transaction(s.key, "nop", "store", payload));
    benchmark::DoNotOptimize(receipt.ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitWithStorage)->Arg(100)->Arg(10000);

void BM_EventDispatch(benchmark::State& state) {
  ChainState s;
  std::uint64_t delivered = 0;
  for (int i = 0; i < state.range(0); ++i)
    s.chain.subscribe("nop", "Tick", i % 2 ? "key" : "",
                      [&delivered](const Event&) { ++delivered; });
  for (auto _ : state) {
    auto receipt =
        s.chain.submit(s.chain.make_transaction(s.key, "nop", "emit", {}));
    benchmark::DoNotOptimize(receipt.ok());
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1)->Arg(64);

void BM_VerifyIntegrity(benchmark::State& state) {
  ChainState s;
  for (int i = 0; i < state.range(0); ++i)
    (void)s.chain.submit(s.chain.make_transaction(s.key, "nop", "noop", {}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.chain.verify_integrity());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifyIntegrity)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
