// Ablation A7: unidirectional measurements (paper §III "Enabling
// Unidirectional Measurements").
//
// "Internet paths may not be symmetric, and load distribution on different
// directions of each link can be different... To distinguish faults on the
// forward path from the ones on the backward path, Debuglet should provide
// the ability to measure the performance of each direction."
//
// The bench congests ONLY the forward direction of a link, shows that RTT
// measurements cannot attribute the direction, and that the one-way
// sender/receiver Debuglet pair can.
#include "apps/debuglets.hpp"
#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "simnet/hosts.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

struct OneWayStats {
  double mean_ms = 0.0;
  std::size_t received = 0;
};

// Runs the one-way Debuglet pair from `sender_key` to `receiver_key`.
Result<OneWayStats> one_way(simnet::Scenario& s,
                            executor::ExecutorService& sender_exec,
                            executor::ExecutorService& receiver_exec,
                            std::uint16_t port, std::int64_t packets) {
  apps::OneWaySenderParams sp;
  sp.protocol = Protocol::kUdp;
  sp.receiver = receiver_exec.address();
  sp.receiver_port = port;
  sp.packet_count = packets;
  sp.interval_ms = 50;
  executor::DebugletApp sender;
  sender.application_id = port;
  sender.module_bytes = apps::make_oneway_sender_debuglet().serialize();
  sender.manifest = apps::client_manifest(
      Protocol::kUdp, receiver_exec.address(), packets,
      duration::seconds(60));
  sender.parameters = sp.to_parameters();

  apps::OneWayReceiverParams rp;
  rp.protocol = Protocol::kUdp;
  rp.expected_packets = packets;
  rp.idle_timeout_ms = 3000;
  executor::DebugletApp receiver;
  receiver.application_id = port + 1;
  receiver.module_bytes = apps::make_oneway_receiver_debuglet().serialize();
  receiver.manifest = apps::server_manifest(
      Protocol::kUdp, sender_exec.address(), packets, duration::seconds(60));
  receiver.parameters = rp.to_parameters();
  receiver.listen_port = port;

  std::optional<core::BilateralOutcome> outcome;
  auto status = core::run_bilateral(
      sender_exec, receiver_exec, std::move(sender), std::move(receiver),
      s.queue->now() + duration::milliseconds(10),
      [&](const core::BilateralOutcome& o) { outcome = o; });
  if (!status) return status.error();
  s.queue->run();
  if (!outcome) return fail("one-way measurement produced no outcome");

  // The receiver (the "server" slot of run_bilateral) holds the samples.
  auto samples = apps::decode_samples(BytesView(
      outcome->server.record.output.data(),
      outcome->server.record.output.size()));
  if (!samples) return samples.error();
  OneWayStats out;
  out.received = samples->size();
  RunningStats stats;
  for (const auto& sample : *samples)
    stats.add(static_cast<double>(sample.delay_ns) / 1e6);
  out.mean_ms = stats.mean();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A7 — unidirectional fault attribution",
                "Debuglet (ICDCS'24), Section III");
  bench::ShapeChecks checks;

  simnet::Scenario s = simnet::build_chain_scenario(3, 717, 5.0);
  // Congest ONLY the forward (AS1 -> AS2) direction of the first link.
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 30.0;
  fault.start = 0;
  fault.end = duration::hours(10);
  if (!s.network->inject_fault(simnet::chain_egress(0),
                               simnet::chain_ingress(1), fault))
    return 2;

  executor::ExecutorService exec_a(*s.network, simnet::chain_egress(0),
                                   crypto::KeyPair::from_seed(1), {}, 11);
  executor::ExecutorService exec_b(*s.network, simnet::chain_ingress(2),
                                   crypto::KeyPair::from_seed(2), {}, 12);

  // --- RTT view: direction-blind -------------------------------------------
  constexpr std::uint16_t kRttPort = 47100;
  apps::ProbeClientParams cp;
  cp.protocol = Protocol::kUdp;
  cp.server = exec_b.address();
  cp.server_port = kRttPort;
  cp.probe_count = 20;
  cp.interval_ms = 50;
  cp.recv_timeout_ms = 500;
  executor::DebugletApp rtt_client;
  rtt_client.application_id = 1;
  rtt_client.module_bytes = apps::make_probe_client_debuglet().serialize();
  rtt_client.manifest = apps::client_manifest(Protocol::kUdp,
                                              exec_b.address(), 20,
                                              duration::seconds(60));
  rtt_client.parameters = cp.to_parameters();
  apps::EchoServerParams ep;
  ep.protocol = Protocol::kUdp;
  ep.idle_timeout_ms = 2000;
  executor::DebugletApp rtt_server;
  rtt_server.application_id = 2;
  rtt_server.module_bytes = apps::make_echo_server_debuglet().serialize();
  rtt_server.manifest = apps::server_manifest(Protocol::kUdp,
                                              exec_a.address(), 40,
                                              duration::seconds(60));
  rtt_server.parameters = ep.to_parameters();
  rtt_server.listen_port = kRttPort;

  std::optional<core::BilateralOutcome> rtt_outcome;
  if (!core::run_bilateral(exec_a, exec_b, std::move(rtt_client),
                           std::move(rtt_server),
                           s.queue->now() + duration::milliseconds(10),
                           [&](const core::BilateralOutcome& o) {
                             rtt_outcome = o;
                           }))
    return 2;
  s.queue->run();
  if (!rtt_outcome) return 2;
  auto rtt_samples = apps::decode_samples(BytesView(
      rtt_outcome->client.record.output.data(),
      rtt_outcome->client.record.output.size()));
  RunningStats rtt;
  for (const auto& sample : *rtt_samples)
    rtt.add(static_cast<double>(sample.delay_ns) / 1e6);

  // --- One-way views: direction-resolving ----------------------------------
  auto forward = one_way(s, exec_a, exec_b, 47200, 20);   // AS1 -> AS3
  if (!forward) {
    std::printf("forward: %s\n", forward.error_message().c_str());
    return 2;
  }
  auto backward = one_way(s, exec_b, exec_a, 47300, 20);  // AS3 -> AS1
  if (!backward) {
    std::printf("backward: %s\n", backward.error_message().c_str());
    return 2;
  }

  const double healthy_oneway = 2 * 5.0 + 0.1;  // 2 links + AS2 transit
  std::printf("\nForward direction of link AS1->AS2 congested by +30 ms; "
              "healthy one-way ≈ %.1f ms.\n\n",
              healthy_oneway);
  std::printf("%-28s %10s\n", "measurement", "mean (ms)");
  std::printf("%.*s\n", 40, "----------------------------------------");
  std::printf("%-28s %10.2f\n", "RTT (direction-blind)", rtt.mean());
  std::printf("%-28s %10.2f\n", "one-way forward", forward->mean_ms);
  std::printf("%-28s %10.2f\n", "one-way backward", backward->mean_ms);

  checks.check(rtt.mean() > 2 * healthy_oneway + 25.0,
               "RTT sees the fault but cannot attribute a direction");
  checks.check(forward->mean_ms > healthy_oneway + 25.0,
               "forward one-way exposes the congested direction");
  checks.check(backward->mean_ms < healthy_oneway + 3.0,
               "backward one-way confirms the reverse path is healthy");
  checks.check(forward->received == 20 && backward->received == 20,
               "all one-way packets accounted for");
  return checks.summary();
}
