// Ablation: twin-probe discrimination detection vs. severity.
//
// The adversary is the §VI-E fault-hiding middlebox from simnet/middlebox:
// recognized measurement traffic rides clean while everything else takes a
// slow-queue detour. The counter-measurement (core/discrimination) sends
// twin probes that differ only in the port the DPI classifier keys on and
// compares per-class treatment via INT residence. This sweep measures the
// detection rate and the confidence the detector assigns as a function of
// the discrimination severity (the hidden extra delay), including the
// severity-zero control where any detection would be a false positive.
#include "bench_util.hpp"
#include "core/discrimination.hpp"
#include "simnet/scenarios.hpp"

namespace {

using namespace debuglet;

constexpr topology::AsNumber kCheatAs = 3;

struct SweepPoint {
  double detection_rate = 0.0;
  double naming_rate = 0.0;  // detected AND named the cheating AS
  double mean_confidence = 0.0;
};

SweepPoint run_severity(double severity_ms, std::uint64_t trials) {
  SweepPoint point;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 9000 + trial;
    simnet::Scenario s = simnet::build_chain_scenario(5, seed, 5.0);
    s.network->set_int_enabled(true);

    if (severity_ms > 0.0) {
      simnet::ClassPolicy slow;
      slow.extra_delay_ms = severity_ms;
      slow.drop_pm = 60.0;
      simnet::MiddleboxPlan plan;
      plan.policy_all(slow).recognize_probe_signatures(true);
      const auto& topo = s.network->topology();
      for (topology::AsNumber as = 1; as <= 5; ++as) {
        plan.recognize(topo.address_of(topology::InterfaceKey{as, 1}));
        plan.recognize(topo.address_of(topology::InterfaceKey{as, 2}));
      }
      if (!s.network->install_middlebox(kCheatAs, plan)) std::abort();
    }

    core::DiscriminationDetector detector(*s.network, 1, 5, seed + 31);
    auto twins = detector.run();
    if (!twins) std::abort();
    point.mean_confidence += twins->top_confidence();
    if (twins->detected) {
      point.detection_rate += 1.0;
      if (twins->named_as() == kCheatAs) point.naming_rate += 1.0;
    }
  }
  point.detection_rate /= static_cast<double>(trials);
  point.naming_rate /= static_cast<double>(trials);
  point.mean_confidence /= static_cast<double>(trials);
  return point;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation — twin-probe discrimination detection vs. severity",
      "Debuglet (ICDCS'24), Section VI-E adversary + DPI counter-measurement");
  bench::Report report("discrimination");
  const auto trials = static_cast<std::uint64_t>(
      bench::env_scale("DEBUGLET_BENCH_TRIALS", 6.0));

  const double severities[] = {0.0, 0.5, 1.0, 2.0, 5.0, 20.0};
  std::printf("\n%10s | %14s %12s %16s\n", "hidden ms", "detection rate",
              "named AS3", "mean confidence");
  std::printf("%.*s\n", 60,
              "------------------------------------------------------------");

  SweepPoint control, mild, clear;
  for (const double severity : severities) {
    const SweepPoint point = run_severity(severity, trials);
    std::printf("%10.1f | %14.2f %12.2f %16.3f\n", severity,
                point.detection_rate, point.naming_rate,
                point.mean_confidence);
    char label[32];
    std::snprintf(label, sizeof(label), "%g", severity);
    const obs::Labels labels{{"severity_ms", label}};
    report.metric("discrimination.detection_rate", point.detection_rate,
                  labels);
    report.metric("discrimination.naming_rate", point.naming_rate, labels);
    report.metric("discrimination.mean_confidence", point.mean_confidence,
                  labels);
    if (severity == 0.0) control = point;
    if (severity == 0.5) mild = point;
    if (severity == 5.0) clear = point;
  }

  report.check(control.detection_rate == 0.0,
               "honest network: no false positives");
  report.check(mild.detection_rate == 0.0,
               "sub-threshold discrimination (0.5 ms) stays below the "
               "minimum-effect bar");
  report.check(clear.detection_rate == 1.0,
               "clear discrimination (5 ms) detected in every trial");
  report.check(clear.naming_rate == 1.0,
               "and the cheating AS is named every time");
  return report.summary();
}
