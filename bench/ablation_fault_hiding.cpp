// Ablation A5: an ISP hiding its faults from Debuglet (paper §VI-E).
//
// The attack: the AS that owns a congested link covertly prioritizes
// packets to/from the known executor addresses, so Debuglet measurements
// look clean while real traffic suffers. The paper's defense: the attack
// is "easily cross-validated by running measurements from diverse network
// vantage points" — probes from ordinary (non-executor) prefixes still see
// the congestion, and the discrepancy exposes the lie.
#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "simnet/hosts.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

struct VantageResult {
  double mean_ms = 0.0;
  double loss_pm = 0.0;
};

VantageResult probe_between(simnet::Scenario& s, net::Ipv4Address client_addr,
                            net::Ipv4Address server_addr, std::uint64_t seed,
                            std::uint64_t probes) {
  simnet::EchoServerHost server(*s.network, server_addr);
  if (!s.network->attach_host(server_addr, &server)) std::abort();
  simnet::ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = probes;
  cfg.interval = duration::milliseconds(20);
  cfg.protocols = {Protocol::kUdp};
  simnet::ProbeClientHost client(*s.network, client_addr, cfg, seed);
  if (!s.network->attach_host(client_addr, &client)) std::abort();
  client.start();
  s.queue->run();
  VantageResult out;
  out.mean_ms = client.report().rtt_ms.at(Protocol::kUdp).mean();
  out.loss_pm = client.report().loss_per_mille(Protocol::kUdp);
  s.network->detach_host(server_addr);
  s.network->detach_host(client_addr);
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A5 — ISP fault hiding and cross-validation",
                "Debuglet (ICDCS'24), Section VI-E");
  bench::Report report("fault_hiding");
  const auto probes = static_cast<std::uint64_t>(
      bench::env_scale("DEBUGLET_BENCH_TRIALS", 3000));

  simnet::Scenario s = simnet::build_chain_scenario(3, 505, 5.0);
  const auto& topo = s.network->topology();

  // A congested middle link: a standing 20 ms queue plus 5% loss.
  simnet::LinkConfig congested;
  congested.propagation_ms = 5.0;
  congested.routes = {{0.0, 0.5, 0.0}};
  simnet::EpisodeSpec queue_episode;
  queue_episode.label = "standing congestion";
  queue_episode.on_mean_s = 1e9;  // effectively permanent once on
  queue_episode.off_mean_s = 1e-6;
  queue_episode.extra_delay_ms = 20.0;
  queue_episode.extra_loss_pm = 50.0;
  congested.episodes = {queue_episode};

  // The cheating AS prioritizes traffic involving the executor addresses
  // at both ends of the link.
  const auto exec_a = topo.address_of(simnet::chain_egress(0));
  const auto exec_b = topo.address_of(simnet::chain_ingress(1));
  simnet::LinkConfig cheating = congested;
  cheating.prioritized_addresses = {exec_a, exec_b};

  auto apply = [&](const simnet::LinkConfig& cfg) {
    if (!s.network->configure_link_symmetric(simnet::chain_egress(0),
                                             simnet::chain_ingress(1), cfg))
      std::abort();
  };

  // --- Honest AS: executors and real traffic agree -------------------------
  apply(congested);
  const VantageResult honest_exec =
      probe_between(s, exec_a, exec_b, 1, probes);
  const VantageResult honest_user =
      probe_between(s, s.network->allocate_host_address(1),
                    s.network->allocate_host_address(2), 2, probes);

  // --- Cheating AS ----------------------------------------------------------
  apply(cheating);
  const VantageResult cheat_exec = probe_between(s, exec_a, exec_b, 3, probes);
  const VantageResult cheat_user =
      probe_between(s, s.network->allocate_host_address(1),
                    s.network->allocate_host_address(2), 4, probes);

  std::printf("\n%-12s %-22s | %10s %10s\n", "operator", "vantage",
              "RTT(ms)", "loss(pm)");
  std::printf("%.*s\n", 60,
              "------------------------------------------------------------");
  std::printf("%-12s %-22s | %10.2f %10.2f\n", "honest",
              "executor pair", honest_exec.mean_ms, honest_exec.loss_pm);
  std::printf("%-12s %-22s | %10.2f %10.2f\n", "honest",
              "ordinary prefixes", honest_user.mean_ms, honest_user.loss_pm);
  std::printf("%-12s %-22s | %10.2f %10.2f\n", "cheating",
              "executor pair", cheat_exec.mean_ms, cheat_exec.loss_pm);
  std::printf("%-12s %-22s | %10.2f %10.2f\n", "cheating",
              "ordinary prefixes", cheat_user.mean_ms, cheat_user.loss_pm);

  const double discrepancy = cheat_user.mean_ms - cheat_exec.mean_ms;
  std::printf("\nCross-validation discrepancy under cheating: %.1f ms RTT, "
              "%.1f pm loss\n",
              discrepancy, cheat_user.loss_pm - cheat_exec.loss_pm);

  const struct {
    const char* op;
    const char* vantage;
    const VantageResult& r;
  } cells[] = {
      {"honest", "executor", honest_exec},
      {"honest", "user", honest_user},
      {"cheating", "executor", cheat_exec},
      {"cheating", "user", cheat_user},
  };
  for (const auto& cell : cells) {
    const obs::Labels labels{{"operator", cell.op}, {"vantage", cell.vantage}};
    report.metric("fault_hiding.rtt_ms", cell.r.mean_ms, labels);
    report.metric("fault_hiding.loss_pm", cell.r.loss_pm, labels);
  }
  report.metric("fault_hiding.discrepancy_ms", discrepancy);
  report.metric("fault_hiding.discrepancy_loss_pm",
                cheat_user.loss_pm - cheat_exec.loss_pm);

  report.check(std::abs(honest_exec.mean_ms - honest_user.mean_ms) < 2.0,
               "honest AS: executor and user vantage points agree");
  report.check(cheat_exec.mean_ms < honest_exec.mean_ms - 20.0,
               "cheating hides the standing queue from executors");
  report.check(discrepancy > 20.0,
               "cross-validation from ordinary prefixes exposes the lie");
  report.check(cheat_user.loss_pm > cheat_exec.loss_pm + 30.0,
               "loss discrepancy also visible");
  return report.summary();
}
