// Ablation A1: executor placement (paper §IV-B "Location of Executors" and
// §VI-G "Alternative Executor Locations").
//
// Question: given a performance problem around AS X, can the initiator
// tell a faulty inter-domain link from a faulty AS interior?
//
//   border           — executors co-located with border routers (the
//                      paper's choice): the A/B/C/D procedure separates
//                      link from interior exactly.
//   arbitrary        — executors somewhere inside each AS, behind an
//                      unknown intra-AS stub: measurements conflate the
//                      stub, the interior, and the link; classification
//                      degrades.
//   every-router+INT — a Debuglet on every forwarding device appends INT
//                      records in band: one probe carries per-link
//                      latencies AND per-AS residence times, so the same
//                      classification needs no purchased measurements at
//                      all — at the highest resource cost and full
//                      interior exposure.
//
// The bench runs repeated trials; each trial flips a coin between
// "link fault" and "interior fault" and asks each placement to classify.
// Results land in BENCH_placement.json.
#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "simnet/hosts.hpp"
#include "telemetry/int_header.hpp"
#include "telemetry/path_evidence.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

constexpr double kHopMs = 5.0;
constexpr double kFaultMs = 18.0;  // moderate fault: placement must resolve it

struct TrialSetup {
  simnet::Scenario scenario;
  bool fault_on_link = false;  // else: interior of AS3
};

TrialSetup make_trial(std::uint64_t seed, bool fault_on_link) {
  TrialSetup t{simnet::build_chain_scenario(5, seed, kHopMs), fault_on_link};
  if (fault_on_link) {
    simnet::FaultSpec fault;
    fault.extra_delay_ms = kFaultMs;
    fault.start = 0;
    fault.end = duration::hours(10);
    // Fault on the AS3 -> AS4 link, both directions.
    (void)t.scenario.network->inject_fault(simnet::chain_egress(2),
                                     simnet::chain_ingress(3), fault);
    (void)t.scenario.network->inject_fault(simnet::chain_ingress(3),
                                     simnet::chain_egress(2), fault);
  } else {
    // Fault inside AS3: slow interior transit (adds to through-traffic).
    t.scenario.network->configure_transit(3, {kFaultMs / 2.0, 0.2, 0.0});
  }
  return t;
}

// Simple RTT measurement between two attached probe hosts.
double measure_rtt(simnet::Scenario& s, net::Ipv4Address client_addr,
                   net::Ipv4Address server_addr, simnet::AccessConfig access,
                   std::uint64_t seed) {
  simnet::EchoServerHost server(*s.network, server_addr);
  if (!s.network->attach_host(server_addr, &server, access)) return -1.0;
  simnet::ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 10;
  cfg.interval = duration::milliseconds(50);
  cfg.protocols = {Protocol::kUdp};
  simnet::ProbeClientHost client(*s.network, client_addr, cfg, seed);
  if (!s.network->attach_host(client_addr, &client, access)) return -1.0;
  client.start();
  s.queue->run();
  const double mean = client.report().rtt_ms.at(Protocol::kUdp).mean();
  s.network->detach_host(server_addr);
  s.network->detach_host(client_addr);
  return mean;
}

// Border placement: the Fig. 6 procedure around AS3 with border hosts.
// Returns true if it classifies the trial as "link fault".
bool classify_border(TrialSetup& t, std::uint64_t seed) {
  auto& net = *t.scenario.network;
  const auto& topo = net.topology();
  // A = egress border of AS2, B = ingress AS3, C = egress AS3,
  // D = ingress AS4 (all zero-stub border positions).
  const auto a = topo.address_of(simnet::chain_egress(1));
  const auto b = topo.address_of(simnet::chain_ingress(2));
  const auto c = topo.address_of(simnet::chain_egress(2));
  const auto d = topo.address_of(simnet::chain_ingress(3));
  const double whole = measure_rtt(t.scenario, a, d, {}, seed);
  const double left = measure_rtt(t.scenario, a, b, {}, seed + 1);
  const double right = measure_rtt(t.scenario, c, d, {}, seed + 2);
  const double intra = whole - left - right;
  const double link_excess = right - (2 * kHopMs + 1.0);
  // Attribute to whichever excess dominates.
  return link_excess > intra;
}

// Arbitrary placement: one vantage point somewhere inside AS2/AS3/AS4,
// behind an unknown 0–8 ms stub. Only end-to-end style measurements are
// possible; the initiator tries the same attribution with what it has.
bool classify_arbitrary(TrialSetup& t, std::uint64_t seed, Rng& rng) {
  auto& net = *t.scenario.network;
  auto stub = [&rng] {
    return simnet::AccessConfig{rng.uniform(0.5, 8.0), 0.3};
  };
  const auto in2 = net.allocate_host_address(2);
  const auto in3 = net.allocate_host_address(3);
  const auto in4 = net.allocate_host_address(4);
  // "whole" = AS2-host to AS4-host; "left" = AS2-host to AS3-host;
  // "right" = AS3-host to AS4-host. Each measurement embeds unknown stubs,
  // and intra-AS segments ride the (possibly faulty) interior.
  const double whole = measure_rtt(t.scenario, in2, in4, stub(), seed);
  const double left = measure_rtt(t.scenario, in2, in3, stub(), seed + 1);
  const double right = measure_rtt(t.scenario, in3, in4, stub(), seed + 2);
  const double intra = whole - left - right;
  const double link_excess = right - (2 * kHopMs + 1.0);
  return link_excess > intra;
}

// Every-router + INT: one probe AS2 -> AS4 whose record stack separates
// link crossing time (ingress-to-ingress) from AS3 residence
// (ingress-to-egress) directly — no purchased measurements, no stub
// guessing.
bool classify_int(TrialSetup& t) {
  auto& net = *t.scenario.network;
  struct Collector : simnet::Host {
    std::vector<simnet::Delivery> deliveries;
    void on_packet(const simnet::Delivery& d) override {
      deliveries.push_back(d);
    }
  } collector;
  const auto src = net.allocate_host_address(2);
  const auto dst = net.allocate_host_address(4);
  if (!net.attach_host(dst, &collector)) return false;
  net.set_int_enabled(true);

  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.source_port = 46000;
  spec.destination_port = 46001;
  spec.payload = telemetry::IntHeader::reserve(2).serialize();
  auto wire = net::build_probe(spec);
  if (!wire || !net.send(src, std::move(*wire))) return false;
  t.scenario.queue->run();

  net.set_int_enabled(false);
  net.detach_host(dst);
  if (collector.deliveries.empty()) return false;
  const auto& d = collector.deliveries.front();
  auto header = telemetry::IntHeader::parse(
      BytesView(d.packet.payload.data(), d.packet.payload.size()));
  if (!header) return false;
  auto path = net.topology().shortest_path(2, 4);
  if (!path) return false;
  auto evidence = telemetry::PathEvidence::from_header(*header, *path,
                                                       d.sent_at);
  if (!evidence) return false;
  // Observation 0 carries AS3's residence; observation 1 the AS3->AS4
  // link. The same attribution rule as the out-of-band classifiers.
  const double intra = evidence->observations()[0].residence_ms;
  const double link_excess =
      evidence->observations()[1].one_way_ms - (kHopMs + 0.5);
  return link_excess > intra;
}

}  // namespace

int main() {
  bench::banner("Ablation A1 — executor placement models",
                "Debuglet (ICDCS'24), Sections IV-B and VI-G");
  bench::Report report("placement");
  const auto trials =
      static_cast<int>(bench::env_scale("DEBUGLET_BENCH_TRIALS", 40));

  Rng rng(314159);
  int border_correct = 0, arbitrary_correct = 0, int_correct = 0;
  for (int i = 0; i < trials; ++i) {
    const bool on_link = (i % 2) == 0;
    TrialSetup border_trial = make_trial(5000 + i, on_link);
    if (classify_border(border_trial, 100 + i) == on_link) ++border_correct;
    TrialSetup arb_trial = make_trial(5000 + i, on_link);
    if (classify_arbitrary(arb_trial, 200 + i, rng) == on_link)
      ++arbitrary_correct;
    TrialSetup int_trial = make_trial(5000 + i, on_link);
    if (classify_int(int_trial) == on_link) ++int_correct;
  }

  const double border_acc =
      100.0 * border_correct / static_cast<double>(trials);
  const double arbitrary_acc =
      100.0 * arbitrary_correct / static_cast<double>(trials);
  const double int_acc = 100.0 * int_correct / static_cast<double>(trials);

  // Resource / exposure accounting for a 5-AS chain with 3-router interiors.
  constexpr int kInteriorRouters = 3;
  struct PlacementRow {
    const char* name;
    double accuracy;
    int executors_per_as;
    int interior_exposed;
    int probes_per_trial;
  } rows[] = {
      {"border (paper)", border_acc, 2, 0, 30},
      {"arbitrary", arbitrary_acc, 1, 1, 30},
      {"every-router+INT", int_acc, 2 + kInteriorRouters, kInteriorRouters, 1},
  };

  std::printf("\n%-18s | %12s %14s %18s %14s\n", "placement", "accuracy(%)",
              "executors/AS", "interior exposed", "probes/trial");
  std::printf("%.*s\n", 84,
              "------------------------------------------------------------"
              "-----------------------------");
  for (const PlacementRow& row : rows) {
    std::printf("%-18s | %12.1f %14d %18d %14d\n", row.name, row.accuracy,
                row.executors_per_as, row.interior_exposed,
                row.probes_per_trial);
    const obs::Labels labels = {{"placement", row.name}};
    report.metric("placement.accuracy_pct", row.accuracy, labels);
    report.metric("placement.executors_per_as",
                  static_cast<double>(row.executors_per_as), labels);
    report.metric("placement.interior_exposed",
                  static_cast<double>(row.interior_exposed), labels);
    report.metric("placement.probes_per_trial",
                  static_cast<double>(row.probes_per_trial), labels);
  }
  std::printf("\n(link-vs-interior classification over %d trials; "
              "every-router+INT reads both quantities off one probe's "
              "record stack at %dx the resource cost plus full interior "
              "exposure)\n",
              trials, 2 + kInteriorRouters);

  report.check(border_acc >= 95.0,
               "border placement separates link from interior reliably");
  report.check(arbitrary_acc <= border_acc - 15.0,
               "arbitrary placement is substantially less accurate");
  report.check(arbitrary_acc >= 40.0,
               "arbitrary placement is roughly guessing, not inverted");
  report.check(int_acc >= 95.0,
               "every-router INT matches border accuracy from a single "
               "in-band probe");
  return report.summary();
}
