// Table II reproduction: the cost of submitting a Debuglet application to
// the blockchain, per application size, plus the storage rebate refunded
// when the stored data is freed.
//
// The bench runs REAL transactions against the chain: a marketplace-style
// contract stores one application object of each size, the sender's
// balance delta is the measured total cost, and deleting the object
// measures the refunded rebate. Prices are reported in SUI (1 SUI = 1e9
// MIST), matching the paper's units.
#include "bench_util.hpp"
#include "chain/chain.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::chain;

// Minimal contract storing and freeing application blobs, isolating the
// exact cost pattern Table II measures (one object per submission).
class AppStore : public Contract {
 public:
  std::string name() const override { return "app_store"; }
  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "submit") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      BytesWriter w;
      w.u64(*id);
      return w.take();
    }
    if (function == "free") {
      BytesReader r(args);
      auto id = r.u64();
      if (!id) return id.error();
      if (auto s = ctx.delete_object(*id); !s) return s.error();
      return Bytes{};
    }
    return fail("unknown function");
  }
};

}  // namespace

int main() {
  bench::banner("Table II — cost of submitting a Debuglet application",
                "Debuglet (ICDCS'24), Table II / Section V-B");

  Blockchain chain;
  if (auto s = chain.register_contract(std::make_unique<AppStore>()); !s)
    return 2;
  const crypto::KeyPair initiator = crypto::KeyPair::from_seed(424242);
  const Address addr = Address::of(initiator.public_key());
  chain.mint(addr, 100'000'000'000ULL);  // 100 SUI

  const struct {
    std::uint64_t size;
    const char* label;
    double paper_total;
    double paper_rebate;
  } kRows[] = {
      {0, "0 B", 0.01369, 0.00430},      {100, "100 B", 0.01585, 0.00632},
      {1000, "1 kB", 0.03527, 0.02456},  {5000, "5 kB", 0.12160, 0.10562},
      {10000, "10 kB", 0.22953, 0.20696},
  };

  std::printf("\n%-8s | %12s %14s | %12s %14s\n", "size", "total(SUI)",
              "rebate(SUI)", "paper total", "paper rebate");
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------------------");

  bench::Report checks("table2_chain_costs");
  std::vector<double> totals;
  for (const auto& row : kRows) {
    const Mist before = chain.balance(addr);
    auto receipt = chain.submit(chain.make_transaction(
        initiator, "app_store", "submit", Bytes(row.size, 0x5A)));
    if (!receipt || !receipt->success) return 2;
    const Mist total = before - chain.balance(addr);

    BytesReader r(BytesView(receipt->return_value.data(),
                            receipt->return_value.size()));
    const ObjectId id = *r.u64();
    const Mist before_free = chain.balance(addr);
    BytesWriter w;
    w.u64(id);
    auto free_receipt = chain.submit(chain.make_transaction(
        initiator, "app_store", "free", w.take()));
    if (!free_receipt || !free_receipt->success) return 2;
    const Mist rebate =
        chain.balance(addr) + free_receipt->gas_charged - before_free;

    std::printf("%-8s | %12.5f %14.5f | %12.5f %14.5f\n", row.label,
                mist_to_sui(total), mist_to_sui(rebate), row.paper_total,
                row.paper_rebate);
    totals.push_back(mist_to_sui(total));
    checks.metric("table2.total_sui", mist_to_sui(total),
                  {{"size", row.label}});
    checks.metric("table2.rebate_sui", mist_to_sui(rebate),
                  {{"size", row.label}});
    checks.check(std::abs(mist_to_sui(total) - row.paper_total) < 1e-4,
                 std::string(row.label) + " total matches Table II");
    checks.check(std::abs(mist_to_sui(rebate) - row.paper_rebate) < 1e-4,
                 std::string(row.label) + " rebate matches Table II");
  }

  // Structural properties the paper's discussion relies on.
  checks.check(totals[1] - totals[0] < 0.0025,
               "per-100-byte increment is small (linear growth)");
  const double slope1 = (totals[2] - totals[0]) / 1000.0;
  const double slope2 = (totals[4] - totals[2]) / 9000.0;
  checks.check(std::abs(slope1 - slope2) < 1e-7,
               "cost is linear in payload size");

  // The paper's off-chain optimization: storing only a 32-byte hash keeps
  // the fee near one cent.
  const Mist hash_only = chain.config().gas.submission_cost(32);
  const double usd = mist_to_sui(hash_only) * 0.94;  // paper's SUI price
  std::printf("\nHash-only submission (32 B): %.5f SUI = %.2f cents "
              "(paper: ~1 cent)\n",
              mist_to_sui(hash_only), usd * 100.0);
  checks.metric("table2.hash_only_sui", mist_to_sui(hash_only));
  checks.check(usd < 0.02, "hash-only submissions cost about a cent");
  return checks.summary();
}
