// Table I reproduction: RTT and drop rate between six sites and London for
// UDP / TCP / ICMP / raw-IP probes — one probe per protocol per second over
// a simulated day (86400 x 4 probes per pair, as in the paper).
//
// Scale with DEBUGLET_BENCH_HOURS (default 24).
#include "bench_util.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

struct PairResult {
  std::string city;
  ProbeReport report;
};

PairResult run_city(const std::string& city, double hours,
                    std::uint64_t seed) {
  Scenario s = build_city_scenario(seed);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr, 0, 0.0, seed + 1);
  if (auto st = s.network->attach_host(server_addr, &server); !st)
    throw std::runtime_error(st.error_message());
  const auto client_addr = s.network->allocate_host_address(city_as(city));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = static_cast<std::uint64_t>(hours * 3600.0);
  cfg.interval = duration::seconds(1);
  cfg.equalized_length = 64;
  ProbeClientHost client(*s.network, client_addr, cfg, seed + 2);
  if (auto st = s.network->attach_host(client_addr, &client); !st)
    throw std::runtime_error(st.error_message());
  client.start();
  s.queue->run();
  return PairResult{city, client.report()};
}

}  // namespace

int main() {
  bench::banner("Table I — RTT and drop rate vs London, per protocol",
                "Debuglet (ICDCS'24), Table I / Section II");
  const double hours = bench::env_scale("DEBUGLET_BENCH_HOURS", 24.0);
  std::printf("Simulated duration: %.1f h (%llu probes per protocol per "
              "pair)\n\n",
              hours,
              static_cast<unsigned long long>(hours * 3600.0));

  std::printf("%-14s %-6s | %8s %7s %9s | %8s %7s %9s\n", "Location",
              "Proto", "mean", "std", "loss(pm)", "paper", "p.std",
              "p.loss");
  std::printf("%.*s\n", 96,
              "--------------------------------------------------------------"
              "----------------------------------");

  bench::Report checks("table1_protocol_rtt");
  std::uint64_t seed = 20240514;
  for (const std::string& city : city_names()) {
    const PairResult result = run_city(city, hours, seed);
    seed += 101;
    for (Protocol p : net::kAllProtocols) {
      const SampleSet& rtt = result.report.rtt_ms.at(p);
      const double loss = result.report.loss_per_mille(p);
      const PaperCityRow paper = paper_table1(city, p);
      std::printf("%-14s %-6s | %8.2f %7.2f %9.2f | %8.2f %7.2f %9.2f\n",
                  city.c_str(), net::protocol_name(p).c_str(), rtt.mean(),
                  rtt.stddev(), loss, paper.mean_ms, paper.std_ms,
                  paper.loss_pm);
      const obs::Labels labels = {{"city", city},
                                  {"proto", net::protocol_name(p)}};
      checks.metric("table1.rtt_mean_ms", rtt.mean(), labels);
      checks.metric("table1.rtt_std_ms", rtt.stddev(), labels);
      checks.metric("table1.loss_per_mille", loss, labels);
    }

    const auto& r = result.report;
    auto mean = [&](Protocol p) { return r.rtt_ms.at(p).mean(); };
    auto stddev = [&](Protocol p) { return r.rtt_ms.at(p).stddev(); };
    auto loss = [&](Protocol p) { return r.loss_per_mille(p); };
    for (Protocol p : net::kAllProtocols) {
      const PaperCityRow paper = paper_table1(city, p);
      checks.check(std::abs(mean(p) - paper.mean_ms) <
                       std::max(1.5, 0.02 * paper.mean_ms),
                   city + " " + net::protocol_name(p) +
                       " mean within 2% of the paper");
    }
    // Per-city qualitative structure from the paper's discussion.
    if (city == "Frankfurt") {
      checks.check(mean(Protocol::kIcmp) < mean(Protocol::kUdp) &&
                       mean(Protocol::kIcmp) < mean(Protocol::kRawIp),
                   "Frankfurt: ICMP priority queue gives the lowest RTT");
      checks.check(stddev(Protocol::kIcmp) < stddev(Protocol::kUdp),
                   "Frankfurt: ICMP tightest distribution");
    }
    if (city == "NewYork") {
      checks.check(mean(Protocol::kUdp) < mean(Protocol::kIcmp) &&
                       mean(Protocol::kTcp) < mean(Protocol::kRawIp),
                   "New York: UDP/TCP below ICMP/raw-IP (paper Fig. 1)");
      checks.check(loss(Protocol::kTcp) > 2.0 * loss(Protocol::kUdp),
                   "New York: TCP loss dominates (deprioritization)");
      checks.check(loss(Protocol::kUdp) > 3.0 &&
                       loss(Protocol::kIcmp) < 1.0,
                   "New York: congestion hits UDP, spares ICMP");
    }
    if (city == "Bangalore") {
      checks.check(stddev(Protocol::kUdp) > stddev(Protocol::kIcmp) &&
                       stddev(Protocol::kUdp) > stddev(Protocol::kRawIp),
                   "Bangalore: UDP has the widest spread (paper Fig. 3)");
      checks.check(mean(Protocol::kTcp) - mean(Protocol::kIcmp) > 8.0,
                   "Bangalore: TCP pinned to a distinctly slower route");
    }
    if (city == "SanFrancisco") {
      checks.check(stddev(Protocol::kUdp) < 2.0 &&
                       stddev(Protocol::kTcp) < 2.0,
                   "San Francisco: everything stable");
      checks.check(loss(Protocol::kTcp) > 1.0,
                   "San Francisco: only TCP shows loss");
    }
  }

  std::printf("\nGlobal shape (across cities):\n");
  return checks.summary();
}
