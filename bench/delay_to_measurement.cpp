// Section V-B "delay-to-measurement" reproduction.
//
// The paper decomposes the delay between experiencing a fault and the
// first measurement packet into (1) blockchain operation latency (two
// transactions on the critical path: LookupSlot and PurchaseSlot, each
// sub-second on a modern chain), (2) the wait until the scheduled slot,
// and (3) the sandbox environment setup time, which they measure at a
// near-constant ~10 ms across bytecode sizes.
//
// This bench measures all three in the full system: real wall-clock DVM
// instantiation cost for growing modules, the simulated chain critical
// path, and the end-to-end purchase-to-first-packet delay.
#include <chrono>

#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "vm/builder.hpp"
#include "vm/validator.hpp"

namespace {

using namespace debuglet;

// Builds a validated module with roughly `instructions` instructions.
vm::Module synthetic_module(std::size_t instructions) {
  vm::ModuleBuilder b;
  b.memory(65536);
  auto& f = b.function(vm::kEntryPointName, 0, 1);
  for (std::size_t i = 0; i + 4 < instructions; i += 4) {
    f.constant(static_cast<std::int64_t>(i));
    f.local_get(0);
    f.emit(vm::Opcode::kAdd);
    f.local_set(0);
  }
  f.local_get(0);
  f.ret();
  return b.build();
}

}  // namespace

int main() {
  bench::banner("Delay-to-measurement decomposition",
                "Debuglet (ICDCS'24), Section V-B");
  bench::ShapeChecks checks;

  // --- (3) Environment setup time across bytecode sizes -------------------
  std::printf("\nSandbox environment setup (parse + validate + instantiate, "
              "wall clock):\n");
  std::printf("%12s %12s %14s\n", "bytecode(B)", "setup(us)", "modeled(ms)");
  // Sizes span the realistic Debuglet range: the built-in probe client is
  // ~1 kB, and a complex Debuglet stays within a few tens of kB.
  std::vector<double> setup_us;
  for (std::size_t instructions : {64u, 256u, 1024u, 4096u}) {
    const vm::Module module = synthetic_module(instructions);
    const Bytes wire = module.serialize();
    // Warm up then measure the median of several runs.
    std::vector<double> runs;
    for (int rep = 0; rep < 21; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto parsed = vm::Module::parse(BytesView(wire.data(), wire.size()));
      if (!parsed || !vm::validate(*parsed)) return 2;
      auto instance = vm::Instance::create(std::move(*parsed), {});
      if (!instance) return 2;
      const auto t1 = std::chrono::steady_clock::now();
      runs.push_back(std::chrono::duration<double, std::micro>(t1 - t0)
                         .count());
    }
    std::sort(runs.begin(), runs.end());
    const double median = runs[runs.size() / 2];
    setup_us.push_back(median);
    std::printf("%12zu %12.1f %14.1f\n", wire.size(), median, 10.0);
  }
  // The paper reports ~10 ms "almost constant setup time across all
  // executions": on their stack the fixed Wasmer environment cost
  // dominates any size dependence. Our check: across the realistic
  // Debuglet size range, setup stays well inside that 10 ms budget, so the
  // modeled constant the executor charges is an upper bound.
  checks.check(setup_us.back() < 10'000.0,
               "setup stays within the paper's ~10 ms budget across sizes");
  checks.check(setup_us.front() < 1'000.0,
               "typical Debuglet (~1 kB) instantiates in well under 1 ms");

  // --- (1) + (2): chain critical path and end-to-end ----------------------
  core::DebugletSystem system(simnet::build_chain_scenario(4, 2026, 5.0));
  core::Initiator initiator(system, 7, 500'000'000'000ULL);

  const SimTime requested_at = system.queue().now();
  auto handle = initiator.purchase_rtt_measurement({1, 2}, {4, 1},
                                                   net::Protocol::kUdp, 5,
                                                   100);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 2;
  }
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 2;
  }

  const SimDuration finality = system.chain().config().finality_latency;
  const SimTime first_packet = outcome->client.record.actual_start;
  std::printf("\nCritical path (simulated):\n");
  std::printf("  chain transactions on critical path : 2 (LookupSlot, "
              "PurchaseSlot)\n");
  std::printf("  per-transaction finality            : %s\n",
              format_duration(finality).c_str());
  std::printf("  slot window opened                  : %s\n",
              format_time(handle->window_start).c_str());
  std::printf("  sandbox ready (first packet)        : %s\n",
              format_time(first_packet).c_str());
  std::printf("  request -> first measurement packet : %s\n",
              format_duration(first_packet - requested_at).c_str());
  const SimDuration setup =
      first_packet - outcome->client.record.scheduled_start;
  std::printf("  environment setup (modeled)         : %s\n",
              format_duration(setup).c_str());

  checks.check(first_packet - requested_at < duration::seconds(1),
               "sub-second reaction to an experienced fault (paper claim)");
  checks.check(setup >= duration::milliseconds(9) &&
                   setup <= duration::milliseconds(12),
               "environment setup ~10 ms (paper Section V-B)");
  checks.check(2 * finality < duration::seconds(1),
               "two chain transactions stay sub-second");
  return checks.summary();
}
