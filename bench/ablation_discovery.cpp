// Ablation A4: centralized marketplace vs decentralized discovery
// (paper §VI-A "Alternative Channel for Discovering Executors").
//
// The marketplace integrates discovery, scheduling, verifiable publication
// and payment but is a single point of failure; the decentralized channel
// (executor addresses as route metadata) has no central party but gives up
// public verifiability. This bench measures delay-to-measurement for both
// flows on the same topology and tallies the qualitative trade-offs.
#include "bench_util.hpp"
#include "core/debuglet.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

}  // namespace

int main() {
  bench::banner("Ablation A4 — marketplace vs decentralized discovery",
                "Debuglet (ICDCS'24), Section VI-A");
  bench::ShapeChecks checks;

  // --- Centralized: the full marketplace flow ------------------------------
  core::DebugletSystem system(simnet::build_chain_scenario(6, 606, 5.0));
  core::Initiator initiator(system, 607, 500'000'000'000ULL);
  const SimTime central_requested = system.queue().now();
  auto handle = initiator.purchase_rtt_measurement({1, 2}, {6, 1},
                                                   Protocol::kUdp, 5, 100);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 2;
  }
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> central = fail("pending");
  for (int i = 0; i < 5 && !central; ++i) {
    system.queue().run_until(deadline);
    central = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  if (!central) {
    std::printf("collect failed: %s\n", central.error_message().c_str());
    return 2;
  }
  const SimDuration central_delay =
      central->client.record.actual_start - central_requested;
  const bool central_verifiable = system.chain().verify_integrity();

  // --- Decentralized: gossip discovery + bilateral execution ---------------
  simnet::Scenario s = simnet::build_chain_scenario(6, 608, 5.0);
  executor::ExecutorService client_exec(*s.network, simnet::chain_egress(0),
                                        crypto::KeyPair::from_seed(61), {},
                                        71);
  executor::ExecutorService server_exec(*s.network, simnet::chain_ingress(5),
                                        crypto::KeyPair::from_seed(62), {},
                                        72);
  // Routing metadata has (long) converged before the fault occurs; at
  // fault time the initiator only pays a bilateral negotiation round trip
  // to the two executors before deployment.
  core::DiscoveryGossip gossip(*s.network, duration::milliseconds(50));
  gossip.originate_all();
  s.queue->run();
  if (!gossip.converged()) return 2;
  const SimTime decentral_requested = s.queue->now();
  auto adv = gossip.lookup(1, 6);
  if (!adv) return 2;

  // Bilateral negotiation: one request/response with each executor over
  // the same network path (~one path RTT), then direct deployment.
  auto path = s.network->topology().shortest_path(1, 6);
  auto negotiation_rtt =
      s.network->expected_path_delay_ms(*path, Protocol::kUdp);
  const SimTime start = decentral_requested +
                        duration::from_ms(2.0 * *negotiation_rtt);

  constexpr std::uint16_t kPort = 48000;
  apps::ProbeClientParams cp;
  cp.protocol = Protocol::kUdp;
  cp.server = server_exec.address();
  cp.server_port = kPort;
  cp.probe_count = 5;
  cp.interval_ms = 100;
  cp.recv_timeout_ms = 1000;
  executor::DebugletApp client_app;
  client_app.application_id = 1;
  client_app.module_bytes = apps::make_probe_client_debuglet().serialize();
  client_app.manifest = apps::client_manifest(
      Protocol::kUdp, server_exec.address(), 5, duration::seconds(30));
  client_app.parameters = cp.to_parameters();

  apps::EchoServerParams sp;
  sp.protocol = Protocol::kUdp;
  sp.idle_timeout_ms = 2000;
  executor::DebugletApp server_app;
  server_app.application_id = 2;
  server_app.module_bytes = apps::make_echo_server_debuglet().serialize();
  server_app.manifest = apps::server_manifest(
      Protocol::kUdp, client_exec.address(), 20, duration::seconds(30));
  server_app.parameters = sp.to_parameters();
  server_app.listen_port = kPort;

  std::optional<core::BilateralOutcome> bilateral;
  if (!core::run_bilateral(client_exec, server_exec, std::move(client_app),
                           std::move(server_app), start,
                           [&](const core::BilateralOutcome& o) {
                             bilateral = o;
                           }))
    return 2;
  s.queue->run();
  if (!bilateral) return 2;
  const SimDuration decentral_delay =
      bilateral->client.record.actual_start - decentral_requested;
  // Results are AS-signed but exist nowhere publicly.
  const bool bilateral_signed =
      executor::verify_certified(bilateral->client) &&
      executor::verify_certified(bilateral->server);

  std::printf("\n%-28s | %16s %16s\n", "property", "marketplace",
              "decentralized");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  std::printf("%-28s | %16s %16s\n", "delay-to-measurement",
              format_duration(central_delay).c_str(),
              format_duration(decentral_delay).c_str());
  std::printf("%-28s | %16s %16s\n", "publicly verifiable",
              central_verifiable ? "yes (on-chain)" : "no",
              "no (bilateral)");
  std::printf("%-28s | %16s %16s\n", "AS-signed results", "yes",
              bilateral_signed ? "yes" : "no");
  std::printf("%-28s | %16s %16s\n", "single point of failure",
              "yes (market)", "no");
  std::printf("%-28s | %16s %16s\n", "integrated payment", "yes (escrow)",
              "no (bilateral)");

  checks.check(decentral_delay < central_delay,
               "decentralized flow reacts faster (no chain critical path)");
  checks.check(central_delay < duration::seconds(1) &&
                   decentral_delay < duration::seconds(1),
               "both flows stay sub-second");
  checks.check(central_verifiable, "marketplace results publicly verifiable");
  checks.check(bilateral_signed,
               "bilateral results still carry AS signatures");
  return checks.summary();
}
