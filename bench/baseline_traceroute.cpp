// Baseline comparison: traceroute vs Debuglet for inter-domain fault
// localization (paper §II's critique of today's tools, quantified).
//
// Three controlled handicaps from the paper, each reproduced and measured:
//   1. "responding with ICMP TTL exceeded message is disabled or
//      rate-limited on many routers" — silent hops lose localization
//      coverage entirely;
//   2. "routers responding with ICMP TTL exceeded message process such
//      messages on the slow path" — per-hop RTTs carry control-plane bias
//      that data packets never experience;
//   3. ICMP-based probing (ping) rides the priority queues, so it misses
//      faults that only hit the data queues (Table I's mechanism) — here
//      an ICMP end-to-end measurement reports a healthy path while UDP
//      data suffers a 100 ms round-trip penalty.
//
// Debuglet measures the same fault with real data packets between
// executor pairs and localizes it exactly.
#include "bench_util.hpp"
#include "core/debuglet.hpp"
#include "simnet/hosts.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

constexpr std::size_t kAses = 8;
constexpr double kHopMs = 5.0;
constexpr std::size_t kFaultLink = 5;  // AS6 -> AS7
constexpr double kFaultMs = 50.0;

}  // namespace

int main() {
  bench::banner("Baseline — traceroute vs Debuglet fault localization",
                "Debuglet (ICDCS'24), Section II");
  bench::ShapeChecks checks;

  core::DebugletSystem system(simnet::build_chain_scenario(kAses, 515,
                                                           kHopMs));
  auto& network = system.network();

  // The fault: +50 ms for UDP DATA only — a congested data queue whose
  // priority/control lanes are unaffected (Table I's mechanism).
  {
    auto* fwd = network.link_model(simnet::chain_egress(kFaultLink),
                                   simnet::chain_ingress(kFaultLink + 1));
    auto* rev = network.link_model(simnet::chain_ingress(kFaultLink + 1),
                                   simnet::chain_egress(kFaultLink));
    simnet::LinkConfig cfg = fwd->config();
    simnet::EpisodeSpec congestion;
    congestion.label = "data-queue congestion";
    congestion.on_mean_s = 1e9;
    congestion.off_mean_s = 1e-6;
    congestion.extra_delay_ms = kFaultMs;
    congestion.affects = {Protocol::kUdp, Protocol::kTcp};
    cfg.episodes = {congestion};
    // ICMP rides the priority/control queue on this link.
    cfg.policies[Protocol::kIcmp] = simnet::ProtocolPolicy{
        simnet::SelectionPolicy::kFixed, {0}, 1.0, /*priority=*/true};
    (void)network.configure_link_symmetric(simnet::chain_egress(kFaultLink),
                                           simnet::chain_ingress(kFaultLink + 1),
                                           cfg);
    (void)rev;
  }

  // Realistic router behaviour: some ASes mute or rate-limit ICMP.
  simnet::IcmpReplyPolicy muted;
  muted.time_exceeded_enabled = false;
  network.configure_icmp_policy(3, muted);
  simnet::IcmpReplyPolicy limited;
  limited.rate_limit_per_s = 1;
  network.configure_icmp_policy(5, limited);

  // --- Traceroute run -------------------------------------------------------
  const auto dst_addr = network.allocate_host_address(kAses);
  simnet::EchoServerHost destination(network, dst_addr);
  if (!network.attach_host(dst_addr, &destination)) return 2;
  const auto prober_addr = network.allocate_host_address(1);
  simnet::TracerouteConfig cfg;
  cfg.destination = dst_addr;
  cfg.max_ttl = static_cast<std::uint8_t>(kAses);
  cfg.probes_per_ttl = 5;
  simnet::TracerouteProber prober(network, prober_addr, cfg, 516);
  if (!network.attach_host(prober_addr, &prober)) return 2;
  prober.start();
  system.queue().run();

  const simnet::TracerouteReport& tr = prober.report();
  std::printf("\nTraceroute view (UDP probes, ICMP time-exceeded "
              "replies):\n");
  std::printf("%5s %-16s %10s %8s\n", "ttl", "responder", "rtt(ms)",
              "answers");
  double hop_delta_at_fault = 0.0;
  for (const simnet::TracerouteHop& hop : tr.hops) {
    if (hop.probes_sent == 0) continue;
    std::printf("%5u %-16s %10s %5zu/%u\n", hop.ttl,
                hop.responded ? hop.responder.to_string().c_str() : "*",
                hop.responded
                    ? std::to_string(hop.rtt_ms.mean()).substr(0, 6).c_str()
                    : "-",
                hop.rtt_ms.count(), hop.probes_sent);
  }
  // The traceroute "localization": per-hop RTT increments.
  // The fault sits between hop kFaultLink and kFaultLink+1.
  if (tr.hops[kFaultLink].responded && tr.hops[kFaultLink - 1].responded) {
    hop_delta_at_fault = tr.hops[kFaultLink].rtt_ms.mean() -
                         tr.hops[kFaultLink - 1].rtt_ms.mean();
  }
  std::printf("\nSilent hops: %.0f%%; RTT increment across the faulty link "
              "as seen by traceroute: %.1f ms\n",
              100.0 * tr.silent_hop_fraction(), hop_delta_at_fault);
  // Slow-path bias: hop 1's reply spent control-plane time that data never
  // sees (true data RTT to AS2's border is ~10.3 ms).
  const double hop1_bias =
      tr.hops[0].responded ? tr.hops[0].rtt_ms.mean() - 2 * kHopMs : 0.0;
  std::printf("Hop-1 slow-path bias: +%.1f ms over the data-plane RTT\n",
              hop1_bias);

  // --- Ping-style ICMP end-to-end view --------------------------------------
  // An ICMP measurement over the same path (priority queues): blind to the
  // data-plane fault.
  core::Initiator ping_initiator(system, 518, 2'000'000'000'000ULL);
  auto icmp_handle = ping_initiator.purchase_rtt_measurement(
      {1, 2}, {kAses, 1}, Protocol::kIcmp, 8, 100);
  if (!icmp_handle) return 2;
  system.queue().run_until(icmp_handle->window_end + duration::seconds(10));
  auto icmp_outcome = ping_initiator.collect(*icmp_handle);
  if (!icmp_outcome) {
    std::printf("icmp measurement failed: %s\n",
                icmp_outcome.error_message().c_str());
    return 2;
  }
  auto icmp_summary = core::summarize_rtt(icmp_outcome->client, 8);
  const double healthy_rtt = 2 * kHopMs * (kAses - 1) + 1.5;
  std::printf("\nICMP (ping-style) end-to-end RTT: %.1f ms — healthy "
              "baseline is %.1f ms: the fault is invisible to ICMP\n",
              icmp_summary->mean_ms, healthy_rtt);

  // --- Debuglet run ----------------------------------------------------------
  core::Initiator initiator(system, 517, 2'000'000'000'000ULL);
  auto path = network.topology().shortest_path(1, kAses);
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 2 * kHopMs + 0.5;
  criteria.slack_ms = 15.0;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 Protocol::kUdp, 8, 100);
  auto report = localizer.run(core::Strategy::kBinarySearch);
  if (!report) {
    std::printf("debuglet localization failed: %s\n",
                report.error_message().c_str());
    return 2;
  }
  std::printf("\nDebuglet (real UDP data packets between executor pairs):\n");
  std::printf("  located: %s, link %zu (truth: %zu), %zu measurements\n",
              report->located ? "yes" : "no", report->fault_link, kFaultLink,
              report->measurements);
  double measured_fault = 0.0;
  for (const core::LocalizationStep& step : report->steps) {
    if (step.from_hop == kFaultLink && step.to_hop == kFaultLink + 1)
      measured_fault = step.summary.mean_ms - (2 * kHopMs);
  }
  if (measured_fault == 0.0) {
    // Binary search may not have measured the single link; measure it.
    auto step = localizer.measure_segment(kFaultLink, kFaultLink + 1);
    if (step) measured_fault = step->summary.mean_ms - (2 * kHopMs);
  }
  // The congestion hits both directions: 2 x 50 ms per round trip.
  std::printf("  measured fault magnitude: %.1f ms per RTT (truth: %.0f "
              "ms)\n",
              measured_fault, 2 * kFaultMs);

  checks.check(tr.silent_hop_fraction() > 0.0,
               "traceroute loses hops to disabled/rate-limited ICMP");
  checks.check(hop1_bias > 3.0,
               "traceroute hop RTTs carry slow-path bias data never sees");
  checks.check(icmp_summary->mean_ms < healthy_rtt + 10.0,
               "ICMP (ping) probing is blind to the data-plane fault");
  checks.check(report->located && report->fault_link == kFaultLink,
               "Debuglet localizes the faulty link exactly");
  checks.check(std::abs(measured_fault - 2 * kFaultMs) < 8.0,
               "Debuglet measures the data-plane fault magnitude");
  return checks.summary();
}
