// Shared helpers for the reproduction benches: fixed-width table printing
// and paper-vs-measured row formatting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace debuglet::bench {

/// Prints a banner naming the experiment being reproduced.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================================\n");
}

/// Reads an environment scale knob (e.g. simulated hours) with a default.
inline double env_scale(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

/// Opens a CSV file under $DEBUGLET_CSV_DIR for figure data export, or
/// returns nullptr when the variable is unset (export disabled). The
/// caller owns the handle.
inline std::FILE* csv_open(const std::string& filename) {
  const char* dir = std::getenv("DEBUGLET_CSV_DIR");
  if (dir == nullptr) return nullptr;
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::printf("(writing %s)\n", path.c_str());
  return f;
}

/// A pass/fail shape check, printed and tallied.
class ShapeChecks {
 public:
  void check(bool ok, const std::string& description) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", description.c_str());
    ++total_;
    if (ok) ++passed_;
  }

  /// Prints the tally; returns a process exit code (0 = all passed).
  int summary() const {
    std::printf("\nShape checks: %zu/%zu passed\n", passed_, total_);
    return passed_ == total_ ? 0 : 1;
  }

 private:
  std::size_t passed_ = 0;
  std::size_t total_ = 0;
};

}  // namespace debuglet::bench
