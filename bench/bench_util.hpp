// Shared helpers for the reproduction benches: fixed-width table printing,
// paper-vs-measured row formatting, and the machine-readable Report built
// on the obs metrics registry + exporters.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace debuglet::bench {

/// Prints a banner naming the experiment being reproduced.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================================\n");
}

/// Reads an environment scale knob (e.g. simulated hours) with a default.
inline double env_scale(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

/// Opens a CSV file under $DEBUGLET_CSV_DIR for figure data export, or
/// returns nullptr when the variable is unset (export disabled). The
/// caller owns the handle.
inline std::FILE* csv_open(const std::string& filename) {
  const char* dir = std::getenv("DEBUGLET_CSV_DIR");
  if (dir == nullptr) return nullptr;
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::printf("(writing %s)\n", path.c_str());
  return f;
}

/// A pass/fail shape check, printed and tallied.
class ShapeChecks {
 public:
  void check(bool ok, const std::string& description) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", description.c_str());
    ++total_;
    if (ok) ++passed_;
  }

  /// Prints the tally; returns a process exit code (0 = all passed).
  int summary() const {
    std::printf("\nShape checks: %zu/%zu passed\n", passed_, total_);
    return passed_ == total_ ? 0 : 1;
  }

 private:
  std::size_t passed_ = 0;
  std::size_t total_ = 0;
};

/// A bench report: shape checks plus metrics collected into a private
/// (always-enabled) registry, written as BENCH_<name>.json on summary().
/// The private registry leaves the process-global one untouched, so a
/// bench can measure itself while the system under test stays
/// uninstrumented.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {
    registry_.set_enabled(true);
  }

  /// Records a scalar result (a cell of the reproduced table/figure).
  void metric(const std::string& name, double value,
              const obs::Labels& labels = {}) {
    registry_.gauge(name, labels).set(value);
  }

  /// A distribution to feed samples into; summarized in the JSON as
  /// count/mean/percentiles.
  obs::Histogram& histogram(const std::string& name,
                            const obs::Labels& labels = {}) {
    return registry_.histogram(name, labels);
  }

  void check(bool ok, const std::string& description) {
    checks_.check(ok, description);
  }

  /// Prints the tally and writes BENCH_<name>.json (to $DEBUGLET_BENCH_DIR
  /// when set, else the working directory). Returns a process exit code.
  int summary() {
    const char* dir = std::getenv("DEBUGLET_BENCH_DIR");
    const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                             "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) {
      obs::write_metrics_json(registry_.snapshot(), out);
      std::printf("(wrote %s)\n", path.c_str());
    } else {
      std::printf("(could not write %s)\n", path.c_str());
    }
    return checks_.summary();
  }

 private:
  std::string name_;
  obs::MetricsRegistry registry_;
  ShapeChecks checks_;
};

}  // namespace debuglet::bench
