// Microbenchmarks of the DVM: interpreter dispatch, memory ops, host
// calls, module parse+validate+instantiate (the paper's "environment
// setup"), and the assembler.
//
// The custom main() first runs a dispatch comparison — reference
// (decode-in-the-loop switch) vs the decode-once engine with and without
// superinstruction fusion, plus the one-time translation cost — and
// writes BENCH_vm_dispatch.json via bench::Report before handing over to
// google-benchmark. Build with -DDEBUGLET_VM_FORCE_SWITCH_DISPATCH=ON to
// measure the portable switch dispatch instead of threaded goto; the
// report labels every figure with the active mode.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include "apps/debuglets.hpp"
#include "vm/assembler.hpp"
#include "vm/builder.hpp"
#include "vm/dispatch.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::vm;

Module arithmetic_loop(std::int64_t iterations) {
  ModuleBuilder b;
  b.memory(4096);
  auto& f = b.function(kEntryPointName, 0, 2);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(iterations).emit(Opcode::kGeS);
  f.jump_if(done);
  f.local_get(1).local_get(0).emit(Opcode::kMul);
  f.constant(7).emit(Opcode::kAdd);
  f.constant(1000003).emit(Opcode::kRemS);
  f.local_set(1);
  f.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.local_get(1).ret();
  return b.build();
}

void BM_InterpreterArithmetic(benchmark::State& state) {
  const auto iterations = state.range(0);
  Module m = arithmetic_loop(iterations);
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(std::move(m), {}, limits);
  for (auto _ : state) {
    auto out = instance->run();
    benchmark::DoNotOptimize(out.value);
  }
  state.SetItemsProcessed(state.iterations() * iterations * 11);
}
BENCHMARK(BM_InterpreterArithmetic)->Arg(1000)->Arg(100000);

// One benchmark per engine configuration over the same arithmetic loop,
// so `--benchmark_filter=BM_Dispatch` shows the three dispatch costs
// side by side.
void dispatch_bench(benchmark::State& state, Engine engine, bool fuse) {
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  limits.fuse_superinstructions = fuse;
  auto instance = Instance::create(arithmetic_loop(100000), {}, limits);
  for (auto _ : state) {
    const RunOutcome out =
        instance->run_function(kEntryPointName, {}, engine);
    benchmark::DoNotOptimize(out.value);
  }
  state.SetItemsProcessed(state.iterations() * 100000 * 11);
}
void BM_DispatchReference(benchmark::State& state) {
  dispatch_bench(state, Engine::kReference, true);
}
void BM_DispatchDecodedNoFuse(benchmark::State& state) {
  dispatch_bench(state, Engine::kFast, false);
}
void BM_DispatchDecodedFused(benchmark::State& state) {
  dispatch_bench(state, Engine::kFast, true);
}
BENCHMARK(BM_DispatchReference);
BENCHMARK(BM_DispatchDecodedNoFuse);
BENCHMARK(BM_DispatchDecodedFused);

void BM_Translate(benchmark::State& state) {
  const Module m = apps::make_probe_client_debuglet();
  for (auto _ : state) {
    auto tm = translate(m);
    benchmark::DoNotOptimize(tm.ok());
  }
}
BENCHMARK(BM_Translate);

void BM_MemoryStoreLoad(benchmark::State& state) {
  ModuleBuilder b;
  b.memory(65536);
  auto& f = b.function(kEntryPointName, 0, 1);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(8192).emit(Opcode::kGeS).jump_if(done);
  f.local_get(0).local_get(0).emit(Opcode::kStore64);
  f.local_get(0).emit(Opcode::kLoad64).emit(Opcode::kDrop);
  f.local_get(0).constant(8).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.constant(0).ret();
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(b.build(), {}, limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance->run().trapped);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 2);
}
BENCHMARK(BM_MemoryStoreLoad);

void BM_HostCallDispatch(benchmark::State& state) {
  ModuleBuilder b;
  b.memory(4096);
  auto& f = b.function(kEntryPointName, 0, 1);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(10000).emit(Opcode::kGeS).jump_if(done);
  f.call_host("nop_host").emit(Opcode::kDrop);
  f.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.constant(0).ret();
  std::vector<HostFunction> host;
  host.push_back(HostFunction{
      "nop_host", 0,
      [](Instance&, std::span<const std::int64_t>) -> Result<std::int64_t> {
        return 1;
      },
      false});
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(b.build(), std::move(host), limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance->run().host_calls);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HostCallDispatch);

void BM_EnvironmentSetup(benchmark::State& state) {
  // The paper measures ~10 ms per instantiation; this benchmark reports
  // the DVM figure for a realistic Debuglet (the built-in probe client).
  const Bytes wire = apps::make_probe_client_debuglet().serialize();
  for (auto _ : state) {
    auto parsed = Module::parse(BytesView(wire.data(), wire.size()));
    if (!parsed || !validate(*parsed)) state.SkipWithError("bad module");
    auto instance = Instance::create(std::move(*parsed), {});
    benchmark::DoNotOptimize(instance.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_EnvironmentSetup);

void BM_Assemble(benchmark::State& state) {
  const std::string source = disassemble(apps::make_echo_server_debuglet());
  for (auto _ : state) {
    auto module = assemble(source);
    benchmark::DoNotOptimize(module.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Assemble);

void BM_Validate(benchmark::State& state) {
  const Module m = arithmetic_loop(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(m).ok());
  }
}
BENCHMARK(BM_Validate);

// --- Dispatch report (BENCH_vm_dispatch.json) -------------------------------

// Best-of-N wall time for one full run of the arithmetic loop under the
// given engine configuration, in nanoseconds.
double time_loop_ns(Instance& instance, Engine engine, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const RunOutcome out = instance.run_function(kEntryPointName, {}, engine);
    const auto t1 = std::chrono::steady_clock::now();
    if (out.trapped) return -1.0;
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns < best) best = ns;
  }
  return best;
}

int dispatch_report() {
  bench::banner("DVM dispatch: decode-once vs reference interpreter",
                "Debuglet sandbox overhead (Sec. 5, Fig. 8 context)");
  bench::Report report("vm_dispatch");
  const obs::Labels mode{{"dispatch", dispatch_mode()}};

  constexpr std::int64_t kIterations = 200000;
  // ~12 source instructions per loop iteration (11 in-loop + back jump).
  const double ops = static_cast<double>(kIterations) * 12.0;
  ExecutionLimits fused_limits;
  fused_limits.fuel = 1ULL << 40;
  ExecutionLimits nofuse_limits = fused_limits;
  nofuse_limits.fuse_superinstructions = false;

  auto fused = Instance::create(arithmetic_loop(kIterations), {}, fused_limits);
  auto plain =
      Instance::create(arithmetic_loop(kIterations), {}, nofuse_limits);
  if (!fused.ok() || !plain.ok()) {
    std::printf("instance creation failed\n");
    return 1;
  }

  const int kReps = 7;
  const double ref_ns = time_loop_ns(*fused, Engine::kReference, kReps);
  const double nofuse_ns = time_loop_ns(*plain, Engine::kFast, kReps);
  const double fused_ns = time_loop_ns(*fused, Engine::kFast, kReps);
  report.check(ref_ns > 0 && nofuse_ns > 0 && fused_ns > 0,
               "all engines complete the arithmetic loop");
  if (ref_ns <= 0 || nofuse_ns <= 0 || fused_ns <= 0) return report.summary();

  auto labeled = [&](const char* engine) {
    obs::Labels l = mode;
    l.emplace_back("engine", engine);
    return l;
  };
  report.metric("dispatch_ns_per_op", ref_ns / ops, labeled("reference"));
  report.metric("dispatch_ns_per_op", nofuse_ns / ops, labeled("decoded"));
  report.metric("dispatch_ns_per_op", fused_ns / ops, labeled("fused"));

  // One-time translation cost for a realistic Debuglet.
  const Module probe = apps::make_probe_client_debuglet();
  double translate_best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto tm = translate(probe);
    const auto t1 = std::chrono::steady_clock::now();
    if (!tm.ok()) return 1;
    translate_best = std::min(
        translate_best,
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  report.metric("translate_ns", translate_best, mode);

  const double speedup_decoded = ref_ns / nofuse_ns;
  const double speedup_fused = ref_ns / fused_ns;
  report.metric("speedup_vs_reference", speedup_decoded, labeled("decoded"));
  report.metric("speedup_vs_reference", speedup_fused, labeled("fused"));
  std::printf(
      "  dispatch=%s  reference %.2f ns/op | decoded %.2f ns/op (%.2fx) | "
      "fused %.2f ns/op (%.2fx) | translate %.1f us\n",
      dispatch_mode(), ref_ns / ops, nofuse_ns / ops, speedup_decoded,
      fused_ns / ops, speedup_fused, translate_best / 1000.0);

  report.check(speedup_fused >= 2.0,
               "fused decode-once dispatch is >= 2x the reference "
               "interpreter on the arithmetic loop");
  report.check(speedup_decoded > 1.0,
               "decode-once dispatch beats the reference even unfused");
  return report.summary();
}

}  // namespace

int main(int argc, char** argv) {
  const int report_rc = dispatch_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report_rc;
}
