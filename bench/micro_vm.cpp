// Microbenchmarks of the DVM: interpreter dispatch, memory ops, host
// calls, module parse+validate+instantiate (the paper's "environment
// setup"), and the assembler.
#include <benchmark/benchmark.h>

#include "apps/debuglets.hpp"
#include "vm/assembler.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::vm;

Module arithmetic_loop(std::int64_t iterations) {
  ModuleBuilder b;
  b.memory(4096);
  auto& f = b.function(kEntryPointName, 0, 2);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(iterations).emit(Opcode::kGeS);
  f.jump_if(done);
  f.local_get(1).local_get(0).emit(Opcode::kMul);
  f.constant(7).emit(Opcode::kAdd);
  f.constant(1000003).emit(Opcode::kRemS);
  f.local_set(1);
  f.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.local_get(1).ret();
  return b.build();
}

void BM_InterpreterArithmetic(benchmark::State& state) {
  const auto iterations = state.range(0);
  Module m = arithmetic_loop(iterations);
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(std::move(m), {}, limits);
  for (auto _ : state) {
    auto out = instance->run();
    benchmark::DoNotOptimize(out.value);
  }
  state.SetItemsProcessed(state.iterations() * iterations * 11);
}
BENCHMARK(BM_InterpreterArithmetic)->Arg(1000)->Arg(100000);

void BM_MemoryStoreLoad(benchmark::State& state) {
  ModuleBuilder b;
  b.memory(65536);
  auto& f = b.function(kEntryPointName, 0, 1);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(8192).emit(Opcode::kGeS).jump_if(done);
  f.local_get(0).local_get(0).emit(Opcode::kStore64);
  f.local_get(0).emit(Opcode::kLoad64).emit(Opcode::kDrop);
  f.local_get(0).constant(8).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.constant(0).ret();
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(b.build(), {}, limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance->run().trapped);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 2);
}
BENCHMARK(BM_MemoryStoreLoad);

void BM_HostCallDispatch(benchmark::State& state) {
  ModuleBuilder b;
  b.memory(4096);
  auto& f = b.function(kEntryPointName, 0, 1);
  const auto top = f.make_label();
  const auto done = f.make_label();
  f.bind(top);
  f.local_get(0).constant(10000).emit(Opcode::kGeS).jump_if(done);
  f.call_host("nop_host").emit(Opcode::kDrop);
  f.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
  f.jump(top);
  f.bind(done);
  f.constant(0).ret();
  std::vector<HostFunction> host;
  host.push_back(HostFunction{
      "nop_host", 0,
      [](Instance&, std::span<const std::int64_t>) -> Result<std::int64_t> {
        return 1;
      },
      false});
  ExecutionLimits limits;
  limits.fuel = 1ULL << 40;
  auto instance = Instance::create(b.build(), std::move(host), limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance->run().host_calls);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HostCallDispatch);

void BM_EnvironmentSetup(benchmark::State& state) {
  // The paper measures ~10 ms per instantiation; this benchmark reports
  // the DVM figure for a realistic Debuglet (the built-in probe client).
  const Bytes wire = apps::make_probe_client_debuglet().serialize();
  for (auto _ : state) {
    auto parsed = Module::parse(BytesView(wire.data(), wire.size()));
    if (!parsed || !validate(*parsed)) state.SkipWithError("bad module");
    auto instance = Instance::create(std::move(*parsed), {});
    benchmark::DoNotOptimize(instance.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_EnvironmentSetup);

void BM_Assemble(benchmark::State& state) {
  const std::string source = disassemble(apps::make_echo_server_debuglet());
  for (auto _ : state) {
    auto module = assemble(source);
    benchmark::DoNotOptimize(module.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Assemble);

void BM_Validate(benchmark::State& state) {
  const Module m = arithmetic_loop(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(m).ok());
  }
}
BENCHMARK(BM_Validate);

}  // namespace

BENCHMARK_MAIN();
