// Figure 8 reproduction: the impact of running measurement code inside the
// sandbox (the paper's WebAssembly runtime; DVM here).
//
// Four combinations run simultaneously between London and New York, one
// UDP probe per second each (paper: one day; scale with
// DEBUGLET_BENCH_HOURS):
//   D2D — Debuglet client, Debuglet server (both sandboxed)
//   A2D — native client, Debuglet server
//   D2A — Debuglet client, native server
//   A2A — native client, native server
//
// Paper results: A2A 74.81 ms < A2D 74.88 < D2A 75.01 < D2D 75.12 — an
// ~300 µs near-constant sandbox overhead — and loss 1.38–1.71 % across all
// combinations.
#include "apps/debuglets.hpp"
#include "bench_util.hpp"
#include "executor/executor.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

constexpr topology::AsNumber kLondon = 1;
constexpr topology::AsNumber kNewYork = 2;

// A dedicated two-AS world matching the Fig. 8 path: ~74.8 ms base RTT and
// ~0.82 % loss per direction (≈1.63 % round trip, the paper's 1.4–1.7 %).
Scenario build_fig8_world(std::uint64_t seed) {
  topology::Topology topo;
  if (!topo.add_as(kLondon, "London") || !topo.add_as(kNewYork, "NewYork"))
    throw std::runtime_error("topology setup");
  if (auto s = topo.add_link({kLondon, 1}, {kNewYork, 1}); !s)
    throw std::runtime_error(s.error_message());
  Scenario out;
  out.queue = std::make_unique<EventQueue>();
  out.network =
      std::make_unique<SimulatedNetwork>(*out.queue, std::move(topo), seed);
  LinkConfig link;
  link.propagation_ms = 37.3;
  link.routes = {{0.0, 1.9, 8.2}};
  if (auto s = out.network->configure_link_symmetric({kLondon, 1},
                                                     {kNewYork, 1}, link);
      !s)
    throw std::runtime_error(s.error_message());
  out.network->configure_transit(kLondon, {0.05, 0.005, 0.0});
  out.network->configure_transit(kNewYork, {0.05, 0.005, 0.0});
  return out;
}

struct ComboResult {
  std::string name;
  double mean_ms = 0.0;
  double std_ms = 0.0;
  double loss_percent = 0.0;
};

}  // namespace

int main() {
  bench::banner(
      "Figure 8 — sandbox (WA/DVM) impact on measurement accuracy",
      "Debuglet (ICDCS'24), Figure 8 / Section V-B");
  const double hours = bench::env_scale("DEBUGLET_BENCH_HOURS", 24.0);
  const auto probes = static_cast<std::int64_t>(hours * 3600.0);
  std::printf("Simulated duration: %.1f h (%lld probes per combination)\n",
              hours, static_cast<long long>(probes));

  Scenario s = build_fig8_world(888);

  // Sandboxed endpoints: executors at the two border interfaces. The
  // asymmetric I/O overheads reproduce the paper's ordering
  // (client-side sandboxing costs more than server-side).
  executor::ExecutorConfig client_cfg;
  client_cfg.io_overhead = duration::microseconds(100);
  executor::ExecutorConfig server_cfg;
  server_cfg.io_overhead = duration::microseconds(55);
  // The day-long run needs a large fuel/packet policy.
  client_cfg.policy.max_cpu_fuel = 2'000'000'000;
  client_cfg.policy.max_packets = 1'000'000;
  client_cfg.policy.max_duration = duration::hours(26);
  server_cfg.policy = client_cfg.policy;

  executor::ExecutorService d_client(*s.network, {kNewYork, 1},
                                     crypto::KeyPair::from_seed(81),
                                     client_cfg, 91);
  executor::ExecutorService d_server(*s.network, {kLondon, 1},
                                     crypto::KeyPair::from_seed(82),
                                     server_cfg, 92);

  // Native endpoints.
  const auto a_server_addr = s.network->allocate_host_address(kLondon);
  EchoServerHost a_server(*s.network, a_server_addr);
  if (auto st = s.network->attach_host(a_server_addr, &a_server); !st)
    return 2;
  const SimDuration run_duration =
      duration::seconds(probes + 10);

  // --- D2D and A2D servers are the Debuglet server; D2A/A2A use native ---
  constexpr std::uint16_t kD2dPort = 46001;
  constexpr std::uint16_t kA2dPort = 46002;

  auto make_server_app = [&](std::uint16_t port,
                             net::Ipv4Address peer) {
    apps::EchoServerParams params;
    params.protocol = Protocol::kUdp;
    params.idle_timeout_ms = 10'000;
    executor::DebugletApp app;
    app.application_id = port;
    app.module_bytes = apps::make_echo_server_debuglet().serialize();
    app.manifest = apps::server_manifest(Protocol::kUdp, peer, probes + 10,
                                         run_duration);
    app.parameters = params.to_parameters();
    app.listen_port = port;
    return app;
  };
  auto make_client_app = [&](net::Ipv4Address server,
                             std::uint16_t server_port) {
    apps::ProbeClientParams params;
    params.protocol = Protocol::kUdp;
    params.server = server;
    params.server_port = server_port;
    params.probe_count = probes;
    params.interval_ms = 1000;
    params.recv_timeout_ms = 900;
    executor::DebugletApp app;
    app.application_id = server_port + 1000;
    app.module_bytes = apps::make_probe_client_debuglet().serialize();
    app.manifest =
        apps::client_manifest(Protocol::kUdp, server, probes, run_duration);
    app.parameters = params.to_parameters();
    return app;
  };

  std::optional<executor::CertifiedResult> d2d_result, d2a_result;

  // D2D: sandboxed client -> sandboxed server.
  if (!d_server.deploy_and_schedule(
          make_server_app(kD2dPort, d_client.address()), 0,
          [](const executor::CertifiedResult&) {}))
    return 2;
  if (!d_client.deploy_and_schedule(
          make_client_app(d_server.address(), kD2dPort), 0,
          [&](const executor::CertifiedResult& r) { d2d_result = r; }))
    return 2;

  // D2A: sandboxed client -> native server.
  if (!d_client.deploy_and_schedule(
          make_client_app(a_server_addr, 40000), 0,
          [&](const executor::CertifiedResult& r) { d2a_result = r; }))
    return 2;

  // A2D: native client -> sandboxed server.
  if (!d_server.deploy_and_schedule(
          make_server_app(kA2dPort, net::Ipv4Address(10, 0, 2, 200)), 0,
          [](const executor::CertifiedResult&) {}))
    return 2;
  const auto a2d_client_addr = s.network->allocate_host_address(kNewYork);
  ProbeClientConfig a2d_cfg;
  a2d_cfg.server = d_server.address();
  a2d_cfg.server_port = kA2dPort;
  a2d_cfg.probe_count = static_cast<std::uint64_t>(probes);
  a2d_cfg.protocols = {Protocol::kUdp};
  ProbeClientHost a2d_client(*s.network, a2d_client_addr, a2d_cfg, 93);
  if (!s.network->attach_host(a2d_client_addr, &a2d_client)) return 2;
  a2d_client.start();

  // A2A: native client -> native server.
  const auto a2a_client_addr = s.network->allocate_host_address(kNewYork);
  ProbeClientConfig a2a_cfg;
  a2a_cfg.server = a_server_addr;
  a2a_cfg.probe_count = static_cast<std::uint64_t>(probes);
  a2a_cfg.protocols = {Protocol::kUdp};
  ProbeClientHost a2a_client(*s.network, a2a_client_addr, a2a_cfg, 94);
  if (!s.network->attach_host(a2a_client_addr, &a2a_client)) return 2;
  a2a_client.start();

  s.queue->run();

  auto summarize_debuglet =
      [&](const std::optional<executor::CertifiedResult>& result,
          const std::string& name) -> ComboResult {
    ComboResult out;
    out.name = name;
    if (!result) return out;
    auto samples = apps::decode_samples(BytesView(
        result->record.output.data(), result->record.output.size()));
    if (!samples) return out;
    RunningStats stats;
    for (const auto& sample : *samples)
      stats.add(static_cast<double>(sample.delay_ns) / 1e6);
    out.mean_ms = stats.mean();
    out.std_ms = stats.stddev();
    out.loss_percent = 100.0 *
                       (static_cast<double>(probes) -
                        static_cast<double>(samples->size())) /
                       static_cast<double>(probes);
    return out;
  };
  auto summarize_native = [&](ProbeClientHost& client,
                              const std::string& name) -> ComboResult {
    const ProbeReport& report = client.report();
    ComboResult out;
    out.name = name;
    out.mean_ms = report.rtt_ms.at(Protocol::kUdp).mean();
    out.std_ms = report.rtt_ms.at(Protocol::kUdp).stddev();
    out.loss_percent = report.loss_per_mille(Protocol::kUdp) / 10.0;
    return out;
  };

  const ComboResult d2d = summarize_debuglet(d2d_result, "D2D");
  const ComboResult d2a = summarize_debuglet(d2a_result, "D2A");
  const ComboResult a2d = summarize_native(a2d_client, "A2D");
  const ComboResult a2a = summarize_native(a2a_client, "A2A");

  // Paper values for side-by-side comparison.
  const std::map<std::string, std::pair<double, double>> paper = {
      {"D2D", {75.12, 1.68}},
      {"A2D", {74.88, 1.38}},
      {"D2A", {75.01, 1.66}},
      {"A2A", {74.81, 1.71}},
  };
  std::printf("\n%-5s | %9s %8s %8s | %9s %8s\n", "combo", "mean(ms)",
              "std(ms)", "loss(%)", "p.mean", "p.loss");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  for (const ComboResult& c : {d2d, a2d, d2a, a2a}) {
    const auto& [pm, pl] = paper.at(c.name);
    std::printf("%-5s | %9.2f %8.2f %8.2f | %9.2f %8.2f\n", c.name.c_str(),
                c.mean_ms, c.std_ms, c.loss_percent, pm, pl);
  }

  std::printf("\nSandbox overhead (D2D - A2A): %.0f us (paper: ~300 us)\n",
              (d2d.mean_ms - a2a.mean_ms) * 1000.0);

  bench::Report report("fig8_sandbox_overhead");
  for (const ComboResult& c : {d2d, a2d, d2a, a2a}) {
    report.metric("fig8.rtt_mean_ms", c.mean_ms, {{"combo", c.name}});
    report.metric("fig8.rtt_std_ms", c.std_ms, {{"combo", c.name}});
    report.metric("fig8.loss_percent", c.loss_percent, {{"combo", c.name}});
  }
  const double overhead_us = (d2d.mean_ms - a2a.mean_ms) * 1000.0;
  report.metric("fig8.sandbox_overhead_us", overhead_us);
  report.check(d2d.mean_ms > d2a.mean_ms && d2a.mean_ms > a2d.mean_ms &&
                   a2d.mean_ms > a2a.mean_ms,
               "ordering D2D > D2A > A2D > A2A holds");
  report.check(overhead_us > 150.0 && overhead_us < 500.0,
               "sandbox adds a few hundred microseconds");
  report.check(std::abs(d2d.std_ms - a2a.std_ms) < 0.3,
               "overhead is near-constant (negligible extra variance)");
  for (const ComboResult& c : {d2d, a2d, d2a, a2a})
    report.check(c.loss_percent > 1.0 && c.loss_percent < 2.3,
                 c.name + " loss in the paper's 1.4-1.7% band");
  const double spread =
      std::max({d2d.loss_percent, a2d.loss_percent, d2a.loss_percent,
                a2a.loss_percent}) -
      std::min({d2d.loss_percent, a2d.loss_percent, d2a.loss_percent,
                a2a.loss_percent});
  report.check(spread < 0.5,
               "loss is indistinguishable across combinations");
  return report.summary();
}
