// Figure 3 reproduction: Bangalore – London RTT over 24 hours.
// The paper's figure shows UDP distributed almost randomly over a ~30 ms
// band, while the other protocols are stable for stretches but shift
// several times a day without cross-protocol correlation.
#include "bench_util.hpp"
#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"
#include "util/stats.hpp"

namespace {

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

}  // namespace

int main() {
  bench::banner("Figure 3 — Bangalore–London RTT, 24 hours (UDP spread)",
                "Debuglet (ICDCS'24), Figure 3");
  const double hours = bench::env_scale("DEBUGLET_BENCH_HOURS", 24.0);

  Scenario s = build_city_scenario(31);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  if (auto st = s.network->attach_host(server_addr, &server); !st) return 2;
  const auto client_addr =
      s.network->allocate_host_address(city_as("Bangalore"));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = static_cast<std::uint64_t>(hours * 3600.0);
  cfg.interval = duration::seconds(1);
  cfg.record_series = true;
  ProbeClientHost client(*s.network, client_addr, cfg, 32);
  if (auto st = s.network->attach_host(client_addr, &client); !st) return 2;
  client.start();
  s.queue->run();
  const ProbeReport& report = client.report();

  if (std::FILE* csv = bench::csv_open("fig3_bangalore_rtt.csv")) {
    std::fprintf(csv, "protocol,t_s,rtt_ms\n");
    for (Protocol p : net::kAllProtocols) {
      const Series& series = report.series.at(p);
      for (std::size_t i = 0; i < series.times_s.size(); ++i)
        std::fprintf(csv, "%s,%.3f,%.4f\n", net::protocol_name(p).c_str(),
                     series.times_s[i], series.values[i]);
    }
    std::fclose(csv);
  }

  std::printf("\nPer-protocol spread (ms):\n");
  std::printf("%-6s %8s %8s %8s %8s %10s\n", "proto", "mean", "std", "p2",
              "p98", "p98-p2");
  for (Protocol p : net::kAllProtocols) {
    const SampleSet& rtt = report.rtt_ms.at(p);
    std::printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n",
                net::protocol_name(p).c_str(), rtt.mean(), rtt.stddev(),
                rtt.percentile(2), rtt.percentile(98),
                rtt.percentile(98) - rtt.percentile(2));
  }

  // Level shifts per protocol (30-minute medians, > 1.5 ms jumps).
  std::printf("\nLevel shifts per protocol (30-min medians, >1.5 ms):\n");
  std::map<Protocol, std::size_t> shifts;
  for (Protocol p : net::kAllProtocols) {
    shifts[p] = count_level_shifts(report.series.at(p).values, 1800, 1.5);
    std::printf("  %-6s %zu\n", net::protocol_name(p).c_str(), shifts[p]);
  }

  const SampleSet& udp = report.rtt_ms.at(Protocol::kUdp);
  const double udp_band = udp.percentile(99) - udp.percentile(1);
  std::printf("\nUDP band (p1..p99): %.1f ms (paper: ~30 ms)\n", udp_band);

  bench::ShapeChecks checks;
  checks.check(udp_band > 18.0 && udp_band < 40.0,
               "UDP spread over a ~20-30 ms band");
  // "Almost randomly": no dominant mode — largest cluster holds a modest
  // share of the samples.
  const Clusters clusters = kmeans_1d(udp.samples(), 8);
  std::size_t largest = 0;
  for (std::size_t size : clusters.sizes) largest = std::max(largest, size);
  checks.check(static_cast<double>(largest) /
                       static_cast<double>(udp.count()) <
                   0.35,
               "no dominant UDP mode (near-uniform band)");
  // Paper ratio: 7.01 vs 3.89 ≈ 1.8x.
  checks.check(udp.stddev() > 1.5 * report.rtt_ms.at(Protocol::kIcmp).stddev(),
               "UDP spread well above ICMP spread");
  std::size_t stable_shifts = shifts[Protocol::kIcmp] +
                              shifts[Protocol::kTcp] +
                              shifts[Protocol::kRawIp];
  checks.check(stable_shifts >= 2,
               "other protocols shift several times during the day");
  return checks.summary();
}
