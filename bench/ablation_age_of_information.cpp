// Ablation A6: age of information (paper §VI-F).
//
// Fresh results drive live debugging; archived results answer "WHEN did
// this path start degrading?". The bench runs periodic marketplace
// measurements over a path, injects a fault at a secret time, archives the
// summaries (off-chain, Merkle-anchored on-chain per A3's pattern), and
// shows the trend analysis recovering the degradation onset to within one
// measurement period — plus the anchoring cost.
#include "bench_util.hpp"
#include "chain/chain.hpp"
#include "core/debuglet.hpp"
#include "core/history.hpp"

namespace {

using namespace debuglet;
using net::Protocol;

}  // namespace

int main() {
  bench::banner("Ablation A6 — age of information / degradation onset",
                "Debuglet (ICDCS'24), Section VI-F");
  bench::ShapeChecks checks;

  core::DebugletSystem system(simnet::build_chain_scenario(5, 4242, 5.0));
  core::Initiator initiator(system, 4243, 2'000'000'000'000ULL);
  core::MeasurementArchive archive(duration::hours(24));
  const core::DiagnosticKey diagnostic{{1, 2}, {5, 1}, Protocol::kUdp};

  // The fault appears at 7 minutes into the day, +45 ms on link 3.
  const SimTime fault_time = duration::minutes(7);
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 45.0;
  fault.start = fault_time;
  fault.end = duration::hours(48);
  (void)system.network().inject_fault(simnet::chain_egress(2),
                                simnet::chain_ingress(3), fault);

  // One measurement per minute for 15 minutes (6 probes each).
  constexpr int kRounds = 15;
  std::printf("\nPeriodic diagnostic (1/min), fault injected at %s "
              "(hidden from the analysis):\n\n",
              format_time(fault_time).c_str());
  std::printf("%8s %10s %8s\n", "t", "RTT(ms)", "loss(%)");
  for (int round = 0; round < kRounds; ++round) {
    const SimTime when = duration::minutes(round);
    system.queue().run_until(when);
    auto handle = initiator.purchase_rtt_measurement(
        diagnostic.client, diagnostic.server, diagnostic.protocol, 6, 100,
        when);
    if (!handle) {
      std::printf("purchase: %s\n", handle.error_message().c_str());
      return 2;
    }
    SimTime deadline = handle->window_end + duration::seconds(2);
    Result<core::MeasurementOutcome> outcome = fail("pending");
    for (int i = 0; i < 5 && !outcome; ++i) {
      system.queue().run_until(deadline);
      outcome = initiator.collect(*handle);
      deadline += duration::seconds(5);
    }
    if (!outcome) {
      std::printf("collect: %s\n", outcome.error_message().c_str());
      return 2;
    }
    auto summary = core::summarize_rtt(outcome->client, 6);
    if (!summary) return 2;
    archive.record(diagnostic, when, *summary);
    std::printf("%8s %10.2f %8.1f\n", format_time(when).c_str(),
                summary->mean_ms, 100.0 * summary->loss_rate());
  }

  const core::DegradationReport report =
      core::detect_degradation(archive.history(diagnostic), 15.0);
  if (report.degraded) {
    std::printf("\nTrend analysis: degradation onset at %s "
                "(baseline %.1f ms -> %.1f ms)\n",
                format_time(report.onset).c_str(), report.baseline_ms,
                report.degraded_ms);
  } else {
    std::printf("\nTrend analysis: no degradation found\n");
  }

  checks.check(report.degraded, "archived trend reveals the degradation");
  const SimDuration error =
      report.onset > fault_time ? report.onset - fault_time
                                : fault_time - report.onset;
  checks.check(report.degraded && error <= duration::minutes(1),
               "onset located within one measurement period");
  checks.check(report.degraded &&
                   std::abs(report.degraded_ms - report.baseline_ms - 45.0) <
                       8.0,
               "estimated magnitude matches the injected +45 ms");

  // On-chain anchoring (A3's pattern): one 32-byte object commits to the
  // whole archive; entries stay verifiable.
  const crypto::Digest anchor = archive.anchor(diagnostic);
  const chain::Mist anchor_cost =
      system.chain().config().gas.submission_cost(32);
  std::printf("\nArchive: %zu entries; 32-byte anchor %s...\n",
              archive.total_entries(), anchor.hex().substr(0, 16).c_str());
  std::printf("Anchoring cost: %.5f SUI (vs %.5f SUI for the full archive "
              "on-chain)\n",
              chain::mist_to_sui(anchor_cost),
              chain::mist_to_sui(system.chain().config().gas.submission_cost(
                  archive.total_entries() *
                  archive.history(diagnostic)[0].serialize().size())));
  auto proof = archive.prove(diagnostic, 3);
  const Bytes leaf = archive.history(diagnostic)[3].serialize();
  checks.check(proof.ok() &&
                   crypto::merkle_verify(anchor,
                                         BytesView(leaf.data(), leaf.size()),
                                         *proof),
               "archived entries verify against the on-chain anchor");
  return checks.summary();
}
