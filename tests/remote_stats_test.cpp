// Integration tests for remote telemetry scraping (core/remote_stats):
// purchase a slot pair, deploy stats Debuglets, scrape one executor's
// registry over the simulated network from another AS, and check the
// merged remote-labelled rows equal the in-process values on the serving
// host — deterministically across identical runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/initiator.hpp"
#include "core/localization.hpp"
#include "core/remote_stats.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "simnet/link_faults.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::core {
namespace {

constexpr topology::AsNumber kChainAses = 4;

// Everything one scrape run produces, captured while the run's scoped
// registry is still installed (the values, not the registry, outlive it).
struct RunResult {
  std::string error;  // empty on success
  ScrapeReport report;
  std::vector<obs::MetricRow> merged;   // merged registry snapshot
  std::string remote_label;             // the serving executor's address
  std::uint64_t local_admitted = 0;     // in-process counter at scrape end
  std::uint64_t remote_admitted = 0;    // same counter via the scrape
  SimTime finished_at = 0;
};

// Optional wire chaos for run_scrape: the plan is installed on EVERY
// directed inter-domain link after the stats pair boots, so only the
// scrape traffic itself crosses damaged wires; `max_attempts`/`deadline`
// override the scrape budget (0 keeps the defaults).
struct ScrapeChaos {
  simnet::LinkFaultPlan plan;
  std::uint32_t max_attempts = 0;
  SimDuration deadline = 0;
};

// Builds a chain scenario, purchases a stats pair (serving executor at
// AS4#1, partner at AS1#2), scrapes AS4#1 from a host in AS1, and merges
// the result into a fresh registry.
RunResult run_scrape(std::uint64_t seed, const ScrapeChaos* chaos = nullptr) {
  RunResult out;
  obs::ScopedRegistry scoped;  // executors cache pointers into this
  DebugletSystem system(simnet::build_chain_scenario(kChainAses, seed, 5.0));
  Initiator initiator(system, seed + 1, 500'000'000'000ULL);
  const auto scraper_addr = system.network().allocate_host_address(1);

  StatsPairRequest request;
  request.first_key = topology::InterfaceKey{kChainAses, 1};
  request.second_key = topology::InterfaceKey{1, 2};
  request.scraper_address = scraper_addr;
  auto deployment = purchase_stats_pair(initiator, system, request);
  if (!deployment) {
    out.error = "purchase: " + deployment.error_message();
    return out;
  }

  // Let the serving Debuglet boot after its window opens, then scrape.
  system.queue().run_until(deployment->handle.window_start +
                           duration::seconds(1));
  SimDuration deadline = duration::seconds(4);
  ScrapeConfig config;
  config.target = deployment->first_address;
  config.target_port = deployment->first_port;
  if (chaos != nullptr) {
    for (topology::AsNumber i = 0; i + 1 < kChainAses; ++i) {
      for (const auto& [from, to] :
           {std::pair{simnet::chain_egress(i), simnet::chain_ingress(i + 1)},
            std::pair{simnet::chain_ingress(i + 1),
                      simnet::chain_egress(i)}}) {
        if (auto s = system.network().install_link_faults(from, to,
                                                          chaos->plan);
            !s) {
          out.error = "install: " + s.error_message();
          return out;
        }
      }
    }
    if (chaos->max_attempts > 0)
      config.retry.max_attempts = chaos->max_attempts;
    if (chaos->deadline > 0) deadline = chaos->deadline;
  }
  auto report = scrape_once(system, scraper_addr, config,
                            system.queue().now() + deadline);
  if (!report) {
    out.error = "scrape: " + report.error_message();
    return out;
  }
  out.report = *report;
  out.remote_label = deployment->first_address.to_string();
  out.finished_at = system.queue().now();

  obs::MetricsRegistry merged;
  if (auto s = obs::wire::merge_rows(merged, report->rows, out.remote_label);
      !s) {
    out.error = "merge: " + s.error_message();
    return out;
  }
  out.merged = merged.snapshot();

  // The serving executor's admission counter is stable once the stats
  // Debuglet is deployed, so the snapshot frozen at scrape time must match
  // the live in-process value.
  const obs::Labels local_labels{{"as", std::to_string(kChainAses)},
                                 {"intf", "1"}};
  obs::Labels remote_labels = local_labels;
  remote_labels.emplace_back(obs::wire::kRemoteHostLabel, out.remote_label);
  out.local_admitted =
      scoped.get()
          .counter("executor.deployments_admitted", local_labels)
          .value();
  out.remote_admitted =
      merged.counter("executor.deployments_admitted", remote_labels).value();
  return out;
}

TEST(RemoteStats, ScrapeMatchesInProcessRegistry) {
  RunResult run = run_scrape(7);
  ASSERT_TRUE(run.error.empty()) << run.error;
  EXPECT_TRUE(run.report.complete);
  EXPECT_GT(run.report.chunks, 1u);  // a real snapshot spans chunks
  EXPECT_GE(run.report.requests_sent, run.report.chunks);
  EXPECT_FALSE(run.report.rows.empty());

  // The serving host admitted at least the two stats Debuglets' pair-mate
  // deployments; whatever the exact count, remote must equal local.
  EXPECT_GT(run.local_admitted, 0u);
  EXPECT_EQ(run.remote_admitted, run.local_admitted);

  // Every merged row carries the remote_host label with the serving
  // executor's address.
  ASSERT_FALSE(run.merged.empty());
  for (const obs::MetricRow& row : run.merged) {
    bool labelled = false;
    for (const auto& [k, v] : row.labels)
      labelled = labelled ||
                 (k == obs::wire::kRemoteHostLabel && v == run.remote_label);
    EXPECT_TRUE(labelled) << row.name << " lacks remote_host label";
  }
}

// Two metrics profile the simulator itself with REAL clocks
// (steady_clock / wall_now_us); their recorded values legitimately differ
// between runs. Everything else — including these rows' names, labels,
// and counts, which are driven by simulated events — must be identical.
bool wall_clock_metric(const std::string& name) {
  return name == "chain.block_build_ms" ||
         name == "simnet.event_queue.pop_ns";
}

TEST(RemoteStats, DeterministicAcrossRuns) {
  RunResult a = run_scrape(21);
  RunResult b = run_scrape(21);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_TRUE(b.error.empty()) << b.error;
  EXPECT_TRUE(a.report.complete);
  EXPECT_TRUE(b.report.complete);
  EXPECT_EQ(a.remote_admitted, b.remote_admitted);

  ASSERT_EQ(a.merged.size(), b.merged.size());
  for (std::size_t i = 0; i < a.merged.size(); ++i) {
    SCOPED_TRACE(a.merged[i].name);
    EXPECT_EQ(a.merged[i].name, b.merged[i].name);
    EXPECT_EQ(a.merged[i].labels, b.merged[i].labels);
    EXPECT_EQ(a.merged[i].kind, b.merged[i].kind);
    EXPECT_EQ(a.merged[i].count, b.merged[i].count);
    if (wall_clock_metric(a.merged[i].name)) continue;
    EXPECT_EQ(a.merged[i].value, b.merged[i].value);
    EXPECT_EQ(a.merged[i].sum, b.merged[i].sum);
    EXPECT_EQ(a.merged[i].hist_buckets, b.merged[i].hist_buckets);
  }

  // Different seed → a genuinely different world (sanity that the
  // determinism check above is not vacuous).
  RunResult c = run_scrape(22);
  ASSERT_TRUE(c.error.empty()) << c.error;
  EXPECT_TRUE(c.report.complete);
}

TEST(RemoteStats, LocalizationAttachesScrapedEvidence) {
  // A fault localizer with an evidence collector that, for each FAULTY
  // step, deploys a stats pair at the segment's endpoint executors and
  // scrapes the server side — so the localization report carries the
  // remote executor's own counters as supporting evidence.
  obs::ScopedRegistry scoped;
  DebugletSystem system(simnet::build_chain_scenario(kChainAses, 777, 5.0));
  Initiator initiator(system, 31415, 2'000'000'000'000ULL);
  const auto scraper_addr = system.network().allocate_host_address(1);

  // Delay fault on link 1 (between hops 1 and 2), both directions.
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 60.0;
  fault.start = 0;
  fault.end = duration::hours(100);
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_egress(1),
                                simnet::chain_ingress(2), fault)
                  .ok());
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_ingress(2),
                                simnet::chain_egress(1), fault)
                  .ok());

  auto path = system.network().topology().shortest_path(1, kChainAses);
  ASSERT_TRUE(path.ok());
  FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  criteria.max_loss = 0.2;
  FaultLocalizer localizer(system, initiator, *path, criteria,
                           net::Protocol::kUdp, 8, 100);
  localizer.set_evidence_collector(
      [&](const LocalizationStep& step, topology::InterfaceKey client_key,
          topology::InterfaceKey server_key) -> std::vector<obs::MetricRow> {
        if (!step.faulty) return {};  // only pay for evidence on suspects
        StatsPairRequest request;
        request.first_key = server_key;
        request.second_key = client_key;
        request.scraper_address = scraper_addr;
        auto deployment = purchase_stats_pair(initiator, system, request);
        if (!deployment) return {};
        system.queue().run_until(deployment->handle.window_start +
                                 duration::seconds(1));
        ScrapeConfig config;
        config.target = deployment->first_address;
        config.target_port = deployment->first_port;
        auto scraped = scrape_once(system, scraper_addr, config,
                                   system.queue().now() +
                                       duration::seconds(4));
        if (!scraped) return {};
        return scraped->rows;
      });

  auto report = localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_EQ(report->fault_link, 1u);

  // The healthy first step carries no evidence; the faulty step does, and
  // its scraped admission counter for the segment's server executor
  // (AS3#1) matches the live in-process value.
  ASSERT_EQ(report->steps.size(), 2u);
  EXPECT_TRUE(report->steps[0].evidence.empty());
  const auto& evidence = report->steps[1].evidence;
  ASSERT_FALSE(evidence.empty());
  const obs::Labels server_labels{{"as", "3"}, {"intf", "1"}};
  bool found = false;
  for (const obs::MetricRow& row : evidence) {
    if (row.name != "executor.deployments_admitted" ||
        row.labels != server_labels)
      continue;
    found = true;
    EXPECT_EQ(row.count,
              scoped.get()
                  .counter("executor.deployments_admitted", server_labels)
                  .value());
    EXPECT_GT(row.count, 0u);
  }
  EXPECT_TRUE(found) << "no admission counter for AS3#1 in the evidence";
}

TEST(RemoteStats, ScrapeConvergesThroughDamagedLinks) {
  // Corruption + duplication on every directed link of the chain while
  // the scrape runs. Damaged chunks are rejected by the chunk digest and
  // re-requested; duplicated responses are absorbed by the assembler —
  // and the reassembled remote registry still equals the live one.
  ScrapeChaos chaos;
  chaos.plan.corrupt(80.0, 6).duplicate(150.0, 1);
  chaos.max_attempts = 10;
  chaos.deadline = duration::seconds(30);
  RunResult run = run_scrape(91, &chaos);
  ASSERT_TRUE(run.error.empty()) << run.error;
  EXPECT_TRUE(run.report.complete);
  EXPECT_GT(run.report.corrupt_rejected + run.report.duplicate_chunks, 0u)
      << "the chaos plan never touched the scrape; the test is vacuous";
  EXPECT_GT(run.local_admitted, 0u);
  EXPECT_EQ(run.remote_admitted, run.local_admitted)
      << "wire damage leaked into the reassembled snapshot";
}

TEST(RemoteStats, ScrapeFailsTypedWhenEveryFrameIsDestroyed) {
  // 100% truncation: no chunk request ever reaches the serving Debuglet.
  // The scrape must give up with a typed error within its budget, not
  // hang or return a partial snapshot as complete.
  ScrapeChaos chaos;
  chaos.plan.truncate(1000.0);
  chaos.max_attempts = 3;
  chaos.deadline = duration::seconds(8);
  RunResult run = run_scrape(92, &chaos);
  ASSERT_FALSE(run.error.empty());
  EXPECT_NE(run.error.find("scrape:"), std::string::npos) << run.error;
}

TEST(RemoteStats, ScrapeGivesUpWhenNothingListens) {
  obs::ScopedRegistry scoped;
  DebugletSystem system(simnet::build_chain_scenario(kChainAses, 5, 5.0));
  const auto scraper_addr = system.network().allocate_host_address(1);
  // A routable executor address, but no stats Debuglet was deployed: every
  // chunk request times out and the scrape reports failure, not a hang.
  ScrapeConfig config;
  config.target = system.network().allocate_host_address(kChainAses);
  config.target_port = 45000;
  config.retry.max_attempts = 3;
  auto report = scrape_once(system, scraper_addr, config,
                            system.queue().now() + duration::seconds(10));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(scoped.get().counter("core.scrapes_failed").value(), 1u);
  EXPECT_EQ(scoped.get().counter("core.scrapes_completed").value(), 0u);
}

}  // namespace
}  // namespace debuglet::core
