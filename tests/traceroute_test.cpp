// TTL expiry, ICMP time-exceeded policies, and the traceroute baseline
// (the tool whose §II limitations motivate Debuglet).
#include <gtest/gtest.h>

#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::simnet {
namespace {

using net::Protocol;

struct Collector : Host {
  void on_packet(const Delivery& delivery) override {
    deliveries.push_back(delivery);
  }
  std::vector<Delivery> deliveries;
};

Bytes probe_with_ttl(net::Ipv4Address src, net::Ipv4Address dst,
                     std::uint8_t ttl, std::uint16_t ident) {
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.destination_port = 33434;
  spec.sequence = ident;
  spec.ttl = ttl;
  spec.payload = bytes_of("ttl-probe");
  return *net::build_probe(spec);
}

TEST(Ttl, ExpiryGeneratesTimeExceeded) {
  Scenario s = build_chain_scenario(4, 1, 5.0);
  Collector prober;
  const auto src = s.network->allocate_host_address(1);
  ASSERT_TRUE(s.network->attach_host(src, &prober).ok());
  const auto dst = s.network->allocate_host_address(4);

  ASSERT_TRUE(s.network->send(src, probe_with_ttl(src, dst, 2, 77)).ok());
  s.queue->run();

  ASSERT_EQ(prober.deliveries.size(), 1u);
  const net::Packet& reply = prober.deliveries[0].packet;
  EXPECT_EQ(reply.protocol, Protocol::kIcmp);
  ASSERT_TRUE(reply.icmp.has_value());
  EXPECT_EQ(reply.icmp->type, net::kIcmpTimeExceeded);
  EXPECT_EQ(reply.ip.identification, 77);
  // TTL 2 expires arriving at AS3's ingress border router.
  EXPECT_EQ(reply.ip.source,
            s.network->topology().address_of(chain_ingress(2)));
  // Slow path: total probe-to-reply time exceeds the pure forward + back
  // propagation (20 ms). (The probe left at t = 0.)
  const double rtt = duration::to_ms(prober.deliveries[0].received_at);
  EXPECT_GT(rtt, 20.0 + 2.0);
  EXPECT_LT(rtt, 20.0 + 15.0);
}

TEST(Ttl, SufficientTtlDeliversNormally) {
  Scenario s = build_chain_scenario(3, 2, 5.0);
  Collector sink, prober;
  const auto src = s.network->allocate_host_address(1);
  const auto dst = s.network->allocate_host_address(3);
  ASSERT_TRUE(s.network->attach_host(src, &prober).ok());
  ASSERT_TRUE(s.network->attach_host(dst, &sink).ok());
  ASSERT_TRUE(s.network->send(src, probe_with_ttl(src, dst, 64, 5)).ok());
  s.queue->run();
  EXPECT_EQ(sink.deliveries.size(), 1u);
  EXPECT_TRUE(prober.deliveries.empty());
}

TEST(Ttl, DisabledPolicySilencesRouter) {
  Scenario s = build_chain_scenario(4, 3, 5.0);
  Collector prober;
  const auto src = s.network->allocate_host_address(1);
  ASSERT_TRUE(s.network->attach_host(src, &prober).ok());
  const auto dst = s.network->allocate_host_address(4);
  IcmpReplyPolicy muted;
  muted.time_exceeded_enabled = false;
  s.network->configure_icmp_policy(3, muted);
  ASSERT_TRUE(s.network->send(src, probe_with_ttl(src, dst, 2, 9)).ok());
  s.queue->run();
  EXPECT_TRUE(prober.deliveries.empty());
  // Other ASes still reply.
  ASSERT_TRUE(s.network->send(src, probe_with_ttl(src, dst, 1, 10)).ok());
  s.queue->run();
  EXPECT_EQ(prober.deliveries.size(), 1u);
}

TEST(Ttl, RateLimitCapsReplies) {
  Scenario s = build_chain_scenario(3, 4, 5.0);
  Collector prober;
  const auto src = s.network->allocate_host_address(1);
  ASSERT_TRUE(s.network->attach_host(src, &prober).ok());
  const auto dst = s.network->allocate_host_address(3);
  IcmpReplyPolicy limited;
  limited.rate_limit_per_s = 3;
  s.network->configure_icmp_policy(2, limited);
  // 10 expiring probes within one second: only 3 replies.
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(s.network
                    ->send(src, probe_with_ttl(src, dst, 1,
                                               static_cast<std::uint16_t>(i)))
                    .ok());
  s.queue->run();
  EXPECT_EQ(prober.deliveries.size(), 3u);
}

TEST(Traceroute, DiscoversChainHops) {
  Scenario s = build_chain_scenario(5, 5, 5.0);
  const auto dst_addr = s.network->allocate_host_address(5);
  EchoServerHost destination(*s.network, dst_addr);
  ASSERT_TRUE(s.network->attach_host(dst_addr, &destination).ok());

  const auto prober_addr = s.network->allocate_host_address(1);
  TracerouteConfig cfg;
  cfg.destination = dst_addr;
  cfg.max_ttl = 8;
  TracerouteProber prober(*s.network, prober_addr, cfg, 6);
  ASSERT_TRUE(s.network->attach_host(prober_addr, &prober).ok());
  prober.start();
  s.queue->run();

  const TracerouteReport& report = prober.report();
  EXPECT_TRUE(report.reached_destination);
  // Hops 1..3 are the ingress border routers of AS2..AS4; hop 4 is the
  // destination host in AS5.
  for (std::uint8_t ttl = 1; ttl <= 3; ++ttl) {
    const TracerouteHop& hop = report.hops[ttl - 1];
    EXPECT_TRUE(hop.responded) << "ttl " << int(ttl);
    EXPECT_EQ(hop.responder,
              s.network->topology().address_of(chain_ingress(ttl)))
        << "ttl " << int(ttl);
    // Per-hop RTT grows with distance.
    if (ttl > 1) {
      EXPECT_GT(hop.rtt_ms.mean(), report.hops[ttl - 2].rtt_ms.mean());
    }
  }
  ASSERT_TRUE(report.hops[3].responded);
  EXPECT_EQ(report.hops[3].responder, dst_addr);
}

TEST(Traceroute, SilentHopsUnderRestrictivePolicies) {
  Scenario s = build_chain_scenario(6, 7, 5.0);
  const auto dst_addr = s.network->allocate_host_address(6);
  EchoServerHost destination(*s.network, dst_addr);
  ASSERT_TRUE(s.network->attach_host(dst_addr, &destination).ok());

  IcmpReplyPolicy muted;
  muted.time_exceeded_enabled = false;
  s.network->configure_icmp_policy(3, muted);  // AS3 never replies
  IcmpReplyPolicy limited;
  limited.rate_limit_per_s = 1;
  s.network->configure_icmp_policy(4, limited);  // AS4 mostly silent

  const auto prober_addr = s.network->allocate_host_address(1);
  TracerouteConfig cfg;
  cfg.destination = dst_addr;
  cfg.max_ttl = 6;
  cfg.probes_per_ttl = 5;
  TracerouteProber prober(*s.network, prober_addr, cfg, 8);
  ASSERT_TRUE(s.network->attach_host(prober_addr, &prober).ok());
  prober.start();
  s.queue->run();

  const TracerouteReport& report = prober.report();
  EXPECT_TRUE(report.hops[0].responded) << "AS2 replies";
  EXPECT_FALSE(report.hops[1].responded) << "AS3 disabled -> silent hop";
  ASSERT_TRUE(report.hops[2].responded) << "AS4 rate-limited but not mute";
  EXPECT_LT(report.hops[2].rtt_ms.count(), 5u)
      << "rate limiting answered fewer than the probes sent";
  EXPECT_GT(report.silent_hop_fraction(), 0.0);
}

TEST(Traceroute, SlowPathBiasesHopRtt) {
  Scenario s = build_chain_scenario(3, 9, 5.0);
  IcmpReplyPolicy slow;
  slow.slow_path_ms = 30.0;
  slow.slow_path_jitter_ms = 0.0;
  s.network->configure_icmp_policy(2, slow);

  const auto dst_addr = s.network->allocate_host_address(3);
  EchoServerHost destination(*s.network, dst_addr);
  ASSERT_TRUE(s.network->attach_host(dst_addr, &destination).ok());
  const auto prober_addr = s.network->allocate_host_address(1);
  TracerouteConfig cfg;
  cfg.destination = dst_addr;
  cfg.max_ttl = 3;
  TracerouteProber prober(*s.network, prober_addr, cfg, 10);
  ASSERT_TRUE(s.network->attach_host(prober_addr, &prober).ok());
  prober.start();
  s.queue->run();

  // The hop-1 "RTT" includes 30 ms of control-plane slow path that data
  // packets never see: traceroute overestimates by 3x here.
  ASSERT_TRUE(prober.report().hops[0].responded);
  EXPECT_GT(prober.report().hops[0].rtt_ms.mean(), 38.0);
  // Data-plane RTT to the same router's AS is ~10 ms.
}

}  // namespace
}  // namespace debuglet::simnet
