#include <gtest/gtest.h>

#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::simnet {
namespace {

using net::Protocol;

// --- EventQueue ------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, StableOrderAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(7, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_after(5, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 6);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  EXPECT_EQ(q.run_until(15), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  q.schedule_at(100, [&] {
    q.schedule_at(50, [] {});  // in the past — must not rewind the clock
  });
  q.run();
  EXPECT_EQ(q.now(), 100);
}

// --- LinkModel ---------------------------------------------------------------

LinkConfig basic_config() {
  LinkConfig cfg;
  cfg.propagation_ms = 10.0;
  cfg.routes = {{0.0, 0.0, 0.0}};
  return cfg;
}

TEST(LinkModel, DeterministicDelay) {
  LinkModel link(basic_config(), Rng(1));
  const auto out = link.traverse(Protocol::kUdp, 1, 0);
  EXPECT_FALSE(out.dropped);
  EXPECT_EQ(out.delay, duration::milliseconds(10));
}

TEST(LinkModel, RouteOffsetsApply) {
  LinkConfig cfg = basic_config();
  cfg.routes = {{5.0, 0.0, 0.0}};
  LinkModel link(cfg, Rng(1));
  EXPECT_EQ(link.traverse(Protocol::kTcp, 1, 0).delay,
            duration::milliseconds(15));
}

TEST(LinkModel, LossRateApproximatelyHonored) {
  LinkConfig cfg = basic_config();
  cfg.routes = {{0.0, 0.0, 100.0}};  // 10%
  LinkModel link(cfg, Rng(2));
  int dropped = 0;
  for (int i = 0; i < 20000; ++i)
    dropped += link.traverse(Protocol::kUdp, 1, i).dropped;
  EXPECT_NEAR(dropped / 20000.0, 0.10, 0.01);
}

TEST(LinkModel, PerPacketSelectionSpreadsRoutes) {
  LinkConfig cfg = basic_config();
  cfg.routes = {{0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}, {10.0, 0.0, 0.0}};
  cfg.policies[Protocol::kUdp] =
      ProtocolPolicy{SelectionPolicy::kPerPacket, {0, 1, 2}, 1.0, false};
  LinkModel link(cfg, Rng(3));
  std::map<std::size_t, int> used;
  for (int i = 0; i < 3000; ++i)
    ++used[link.traverse(Protocol::kUdp, 42, 0).route];
  ASSERT_EQ(used.size(), 3u);
  for (const auto& [route, count] : used) EXPECT_GT(count, 800) << route;
}

TEST(LinkModel, PerFlowSelectionIsStable) {
  LinkConfig cfg = basic_config();
  cfg.routes = {{0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}};
  cfg.policies[Protocol::kTcp] =
      ProtocolPolicy{SelectionPolicy::kPerFlow, {0, 1}, 1.0, false};
  LinkModel link(cfg, Rng(4));
  const std::size_t first = link.traverse(Protocol::kTcp, 777, 0).route;
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(link.traverse(Protocol::kTcp, 777, 0).route, first);
  // Distinct flows can map to distinct routes.
  std::set<std::size_t> routes;
  for (std::uint64_t flow = 0; flow < 64; ++flow)
    routes.insert(link.traverse(Protocol::kTcp, flow, 0).route);
  EXPECT_EQ(routes.size(), 2u);
}

TEST(LinkModel, PriorityTrafficSkipsEpisodes) {
  LinkConfig cfg = basic_config();
  cfg.routes = {{0.0, 0.0, 0.0}};
  cfg.policies[Protocol::kIcmp] =
      ProtocolPolicy{SelectionPolicy::kFixed, {0}, 1.0, /*priority=*/true};
  EpisodeSpec episode;
  episode.label = "congestion";
  episode.on_mean_s = 1e7;   // effectively always on once started
  episode.off_mean_s = 1e-9;
  episode.extra_delay_ms = 50.0;
  cfg.episodes = {episode};
  LinkModel link(cfg, Rng(5));
  // Advance far enough that the episode has begun.
  const SimTime late = duration::hours(1);
  const auto icmp = link.traverse(Protocol::kIcmp, 1, late);
  const auto udp = link.traverse(Protocol::kUdp, 1, late);
  EXPECT_EQ(icmp.delay, duration::milliseconds(10));
  EXPECT_EQ(udp.delay, duration::milliseconds(60));
}

TEST(LinkModel, EpisodeAffectsOnlyListedProtocols) {
  LinkConfig cfg = basic_config();
  EpisodeSpec episode;
  episode.on_mean_s = 1e7;
  episode.off_mean_s = 1e-9;
  episode.extra_delay_ms = 30.0;
  episode.affects = {Protocol::kUdp, Protocol::kRawIp};
  cfg.episodes = {episode};
  LinkModel link(cfg, Rng(6));
  const SimTime late = duration::hours(1);
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, late).delay,
            duration::milliseconds(40));
  EXPECT_EQ(link.traverse(Protocol::kTcp, 1, late).delay,
            duration::milliseconds(10));
}

TEST(LinkModel, DropMultiplierAmplifiesEpisodeLoss) {
  LinkConfig cfg = basic_config();
  EpisodeSpec episode;
  episode.on_mean_s = 1e7;
  episode.off_mean_s = 1e-9;
  episode.extra_loss_pm = 50.0;  // 5%
  cfg.episodes = {episode};
  cfg.policies[Protocol::kTcp] =
      ProtocolPolicy{SelectionPolicy::kFixed, {0}, 3.0, false};
  LinkModel link(cfg, Rng(7));
  const SimTime late = duration::hours(1);
  int udp_drops = 0, tcp_drops = 0;
  for (int i = 0; i < 30000; ++i) {
    udp_drops += link.traverse(Protocol::kUdp, 1, late).dropped;
    tcp_drops += link.traverse(Protocol::kTcp, 1, late).dropped;
  }
  EXPECT_NEAR(udp_drops / 30000.0, 0.05, 0.01);
  EXPECT_NEAR(tcp_drops / 30000.0, 0.15, 0.015);
}

TEST(LinkModel, FaultInjectionWindowed) {
  LinkConfig cfg = basic_config();
  LinkModel link(cfg, Rng(8));
  FaultSpec fault;
  fault.extra_delay_ms = 100.0;
  fault.start = duration::seconds(10);
  fault.end = duration::seconds(20);
  link.inject_fault(fault);
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, duration::seconds(5)).delay,
            duration::milliseconds(10));
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, duration::seconds(15)).delay,
            duration::milliseconds(110));
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, duration::seconds(25)).delay,
            duration::milliseconds(10));
  link.clear_fault();
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, duration::seconds(15)).delay,
            duration::milliseconds(10));
}

TEST(LinkModel, SerializationDelayScalesWithSize) {
  LinkConfig cfg = basic_config();
  cfg.bandwidth_bps = 8'000'000;  // 1 byte per microsecond
  LinkModel link(cfg, Rng(9));
  const auto small = link.traverse(Protocol::kUdp, 1, 0,
                                   net::Ipv4Address(), net::Ipv4Address(),
                                   100);
  const auto big = link.traverse(Protocol::kUdp, 1, 0, net::Ipv4Address(),
                                 net::Ipv4Address(), 1500);
  EXPECT_EQ(small.delay,
            duration::milliseconds(10) + duration::microseconds(100));
  EXPECT_EQ(big.delay,
            duration::milliseconds(10) + duration::microseconds(1500));
  // Length-equalized probes see identical serialization delay — the
  // paper's reason for equalizing probe sizes.
  const auto equal_a = link.traverse(Protocol::kTcp, 1, 0,
                                     net::Ipv4Address(), net::Ipv4Address(),
                                     64);
  const auto equal_b = link.traverse(Protocol::kIcmp, 1, 0,
                                     net::Ipv4Address(), net::Ipv4Address(),
                                     64);
  EXPECT_EQ(equal_a.delay, equal_b.delay);
}

TEST(LinkModel, ZeroBandwidthMeansNoSerializationDelay) {
  LinkModel link(basic_config(), Rng(10));
  EXPECT_EQ(link.traverse(Protocol::kUdp, 1, 0, net::Ipv4Address(),
                          net::Ipv4Address(), 65535)
                .delay,
            duration::milliseconds(10));
}

TEST(LinkModel, RejectsBadConfig) {
  LinkConfig cfg;
  cfg.routes.clear();
  EXPECT_THROW(LinkModel(cfg, Rng(1)), std::invalid_argument);
  LinkConfig cfg2 = basic_config();
  cfg2.policies[Protocol::kUdp] =
      ProtocolPolicy{SelectionPolicy::kFixed, {7}, 1.0, false};
  EXPECT_THROW(LinkModel(cfg2, Rng(1)), std::invalid_argument);
}

// --- SimulatedNetwork -------------------------------------------------------

class Collector : public Host {
 public:
  void on_packet(const Delivery& delivery) override {
    deliveries.push_back(delivery);
  }
  std::vector<Delivery> deliveries;
};

TEST(Network, DeliversAcrossChain) {
  Scenario s = build_chain_scenario(4, 99, 5.0);
  Collector sink;
  const auto dst = s.network->allocate_host_address(4);
  ASSERT_TRUE(s.network->attach_host(dst, &sink).ok());
  const auto src = s.network->allocate_host_address(1);

  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.destination_port = 9;
  spec.payload = bytes_of("hello across the chain");
  auto wire = net::build_probe(spec);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(s.network->send(src, *wire).ok());
  s.queue->run();

  ASSERT_EQ(sink.deliveries.size(), 1u);
  const Delivery& d = sink.deliveries[0];
  EXPECT_EQ(d.packet.ip.source, src);
  EXPECT_EQ(string_of(BytesView(d.packet.payload.data(),
                                d.packet.payload.size())),
            "hello across the chain");
  // 3 links x 5 ms + 2 intermediate ASes transit (~0.1 ms each).
  const double ms = duration::to_ms(d.received_at - d.sent_at);
  EXPECT_NEAR(ms, 15.2, 0.5);
  EXPECT_EQ(d.path.length(), 4u);
}

TEST(Network, SourceSpoofingRejected) {
  Scenario s = build_chain_scenario(2, 1);
  const auto a = s.network->allocate_host_address(1);
  const auto b = s.network->allocate_host_address(2);
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = b;  // not the sender
  spec.destination = a;
  spec.payload = bytes_of("spoof");
  auto wire = net::build_probe(spec);
  EXPECT_FALSE(s.network->send(a, *wire).ok());
}

TEST(Network, BlackholeCountsAsDrop) {
  Scenario s = build_chain_scenario(2, 1);
  const auto src = s.network->allocate_host_address(1);
  const auto dst = s.network->allocate_host_address(2);  // nobody attached
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.payload = bytes_of("into the void");
  ASSERT_TRUE(s.network->send(src, *net::build_probe(spec)).ok());
  s.queue->run();
  EXPECT_EQ(s.network->stats().dropped.at(Protocol::kUdp), 1u);
  EXPECT_EQ(s.network->stats().sent.at(Protocol::kUdp), 1u);
}

TEST(Network, ConservationSentEqualsDeliveredPlusDropped) {
  Scenario s = build_chain_scenario(3, 5);
  // Add loss so both outcomes occur.
  LinkConfig lossy;
  lossy.propagation_ms = 2.0;
  lossy.routes = {{0.0, 0.1, 200.0}};  // 20% loss
  ASSERT_TRUE(s.network
                  ->configure_link_symmetric(chain_egress(0), chain_ingress(1),
                                             lossy)
                  .ok());
  Collector sink;
  const auto dst = s.network->allocate_host_address(3);
  ASSERT_TRUE(s.network->attach_host(dst, &sink).ok());
  const auto src = s.network->allocate_host_address(1);
  for (int i = 0; i < 500; ++i) {
    net::ProbeSpec spec;
    spec.protocol = Protocol::kUdp;
    spec.source = src;
    spec.destination = dst;
    spec.sequence = static_cast<std::uint16_t>(i);
    spec.payload = bytes_of("conservation");
    ASSERT_TRUE(s.network->send(src, *net::build_probe(spec)).ok());
  }
  s.queue->run();
  const NetworkStats& st = s.network->stats();
  EXPECT_EQ(st.sent.at(Protocol::kUdp), 500u);
  EXPECT_EQ(st.delivered.at(Protocol::kUdp) + st.dropped.at(Protocol::kUdp),
            500u);
  EXPECT_GT(st.dropped.at(Protocol::kUdp), 30u);
  EXPECT_EQ(sink.deliveries.size(), st.delivered.at(Protocol::kUdp));
}

TEST(Network, FaultInjectionRaisesPathDelay) {
  Scenario s = build_chain_scenario(4, 7);
  auto* link = s.network->link_model(chain_egress(1), chain_ingress(2));
  ASSERT_NE(link, nullptr);
  FaultSpec fault;
  fault.extra_delay_ms = 80.0;
  fault.start = 0;
  fault.end = duration::hours(1);
  ASSERT_TRUE(
      s.network->inject_fault(chain_egress(1), chain_ingress(2), fault).ok());

  auto path = s.network->topology().shortest_path(1, 4);
  ASSERT_TRUE(path.ok());
  auto faulty = s.network->expected_path_delay_ms(*path, Protocol::kUdp);
  ASSERT_TRUE(faulty.ok());
  EXPECT_NEAR(*faulty, 3 * 5.0 + 80.0 + 2 * 0.1, 1.0);
  ASSERT_TRUE(
      s.network->clear_fault(chain_egress(1), chain_ingress(2)).ok());
  EXPECT_NEAR(*s.network->expected_path_delay_ms(*path, Protocol::kUdp),
              3 * 5.0 + 0.2, 1.0);
}

TEST(Network, DetachedHostMidFlightCountsDrop) {
  Scenario s = build_chain_scenario(2, 3);
  Collector sink;
  const auto dst = s.network->allocate_host_address(2);
  ASSERT_TRUE(s.network->attach_host(dst, &sink).ok());
  const auto src = s.network->allocate_host_address(1);
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.payload = bytes_of("late");
  ASSERT_TRUE(s.network->send(src, *net::build_probe(spec)).ok());
  s.network->detach_host(dst);
  s.queue->run();
  EXPECT_TRUE(sink.deliveries.empty());
  EXPECT_EQ(s.network->stats().dropped.at(Protocol::kUdp), 1u);
}

// --- Probe hosts -------------------------------------------------------------

TEST(Hosts, EchoRoundTripMeasuresRtt) {
  Scenario s = build_chain_scenario(2, 11, 10.0);
  const auto server_addr = s.network->allocate_host_address(2);
  EchoServerHost server(*s.network, server_addr);
  ASSERT_TRUE(s.network->attach_host(server_addr, &server).ok());

  const auto client_addr = s.network->allocate_host_address(1);
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 20;
  cfg.interval = duration::milliseconds(100);
  ProbeClientHost client(*s.network, client_addr, cfg, 12);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client).ok());
  client.start();
  s.queue->run();

  const ProbeReport& report = client.report();
  for (Protocol p : net::kAllProtocols) {
    EXPECT_EQ(report.sent.at(p), 20u) << net::protocol_name(p);
    EXPECT_EQ(report.received.at(p), 20u) << net::protocol_name(p);
    EXPECT_NEAR(report.rtt_ms.at(p).mean(), 20.4, 1.0)
        << net::protocol_name(p);
  }
  EXPECT_EQ(server.packets_echoed(), 80u);
}

TEST(Hosts, ProcessingOverheadShiftsRtt) {
  Scenario s = build_chain_scenario(2, 13, 10.0);
  const auto server_addr = s.network->allocate_host_address(2);
  EchoServerHost server(*s.network, server_addr,
                        duration::microseconds(500));
  ASSERT_TRUE(s.network->attach_host(server_addr, &server).ok());
  const auto client_addr = s.network->allocate_host_address(1);
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 50;
  cfg.interval = duration::milliseconds(50);
  cfg.protocols = {Protocol::kUdp};
  cfg.processing_overhead = duration::microseconds(500);
  ProbeClientHost client(*s.network, client_addr, cfg, 14);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client).ok());
  client.start();
  s.queue->run();
  // Client + server overhead ≈ 1 ms on top of the ~20 ms network RTT.
  EXPECT_NEAR(client.report().rtt_ms.at(Protocol::kUdp).mean(), 21.0, 0.5);
}

TEST(Hosts, LossAccountedAfterTimeout) {
  Scenario s = build_chain_scenario(2, 15, 10.0);
  LinkConfig lossy;
  lossy.propagation_ms = 10.0;
  lossy.routes = {{0.0, 0.0, 300.0}};  // 30% per direction
  ASSERT_TRUE(s.network
                  ->configure_link_symmetric(chain_egress(0), chain_ingress(1),
                                             lossy)
                  .ok());
  const auto server_addr = s.network->allocate_host_address(2);
  EchoServerHost server(*s.network, server_addr);
  ASSERT_TRUE(s.network->attach_host(server_addr, &server).ok());
  const auto client_addr = s.network->allocate_host_address(1);
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 400;
  cfg.interval = duration::milliseconds(20);
  cfg.protocols = {Protocol::kUdp};
  ProbeClientHost client(*s.network, client_addr, cfg, 16);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client).ok());
  client.start();
  s.queue->run();
  // Round-trip delivery probability = 0.7^2 = 0.49 → ~51% loss.
  EXPECT_NEAR(client.report().loss_per_mille(Protocol::kUdp), 510.0, 60.0);
}

// --- City scenario calibration (spot check; full check in the benches) ------

TEST(CityScenario, FrankfurtIcmpPriorityAndUdpClusters) {
  Scenario s = build_city_scenario(2024);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  ASSERT_TRUE(s.network->attach_host(server_addr, &server).ok());
  const auto client_addr =
      s.network->allocate_host_address(city_as("Frankfurt"));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 2000;
  cfg.interval = duration::milliseconds(100);
  ProbeClientHost client(*s.network, client_addr, cfg, 17);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client).ok());
  client.start();
  s.queue->run();

  const ProbeReport& r = client.report();
  const double icmp = r.rtt_ms.at(Protocol::kIcmp).mean();
  const double udp = r.rtt_ms.at(Protocol::kUdp).mean();
  const double raw = r.rtt_ms.at(Protocol::kRawIp).mean();
  EXPECT_LT(icmp, udp) << "ICMP rides the priority queue";
  EXPECT_LT(icmp, raw);
  EXPECT_NEAR(icmp, 11.95, 1.0);
  // UDP forms 4 clusters (paper Fig. 2).
  EXPECT_EQ(estimate_mode_count(r.rtt_ms.at(Protocol::kUdp).samples(), 8),
            4u);
}

TEST(CityScenario, NewYorkTcpLossDominates) {
  Scenario s = build_city_scenario(31337);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  ASSERT_TRUE(s.network->attach_host(server_addr, &server).ok());
  const auto client_addr =
      s.network->allocate_host_address(city_as("NewYork"));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  // Congestion episodes recur on a ~2-hour cycle; span half a day so the
  // loss ratio stabilizes.
  cfg.probe_count = 43200;
  cfg.interval = duration::seconds(1);
  ProbeClientHost client(*s.network, client_addr, cfg, 18);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client).ok());
  client.start();
  s.queue->run();

  const ProbeReport& r = client.report();
  EXPECT_GT(r.loss_per_mille(Protocol::kTcp),
            2.0 * r.loss_per_mille(Protocol::kUdp))
      << "TCP deprioritized on congestion";
  EXPECT_LT(r.loss_per_mille(Protocol::kIcmp), 1.5);
  EXPECT_LT(r.rtt_ms.at(Protocol::kUdp).mean(),
            r.rtt_ms.at(Protocol::kIcmp).mean())
      << "UDP/TCP ride the faster routes in New York (paper Fig. 1)";
}

TEST(CityScenario, PaperRowsExposed) {
  const PaperCityRow row = paper_table1("Bangalore", Protocol::kTcp);
  EXPECT_DOUBLE_EQ(row.mean_ms, 158.05);
  EXPECT_DOUBLE_EQ(row.std_ms, 5.27);
  EXPECT_DOUBLE_EQ(row.loss_pm, 1.72);
  EXPECT_THROW(city_as("Atlantis"), std::invalid_argument);
}

}  // namespace
}  // namespace debuglet::simnet
