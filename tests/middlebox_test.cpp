// Adversarial-middlebox tests: DPI classification heuristics, per-class
// policies, fault hiding, determinism, and the twin-probe
// DiscriminationDetector (core/discrimination) that names the
// discriminating AS — including the end-to-end §VI-E scenario where a
// fault-hiding AS conceals its slow queue from executor probes and only
// the twin probes expose it.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/debuglet.hpp"
#include "simnet/hosts.hpp"
#include "simnet/middlebox.hpp"
#include "simnet/scenarios.hpp"
#include "telemetry/int_header.hpp"

namespace debuglet::simnet {
namespace {

using net::Protocol;

net::Packet packet_for(net::ProbeSpec spec) {
  if (spec.source.value == 0) spec.source = net::Ipv4Address(10, 0, 1, 200);
  if (spec.destination.value == 0)
    spec.destination = net::Ipv4Address(10, 0, 2, 200);
  auto wire = net::build_probe(spec);
  EXPECT_TRUE(wire.ok()) << wire.error_message();
  auto packet = net::parse_packet(BytesView(wire->data(), wire->size()));
  EXPECT_TRUE(packet.ok()) << packet.error_message();
  return *packet;
}

Bytes high_entropy(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (std::uint8_t& b : out)
    b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return out;
}

TEST(MiddleboxClassify, ProtocolAndPortFingerprints) {
  net::ProbeSpec icmp;
  icmp.protocol = Protocol::kIcmp;
  EXPECT_EQ(classify_packet(packet_for(icmp)), TrafficClass::kMeasurement);

  net::ProbeSpec raw;
  raw.protocol = Protocol::kRawIp;
  raw.payload = high_entropy(64, 1);  // even noisy payloads: protocol wins
  EXPECT_EQ(classify_packet(packet_for(raw)), TrafficClass::kMeasurement);

  net::ProbeSpec rendezvous;
  rendezvous.source_port = 51000;
  rendezvous.destination_port = 40021;  // Debuglet rendezvous range
  rendezvous.payload = high_entropy(64, 2);
  EXPECT_EQ(classify_packet(packet_for(rendezvous)),
            TrafficClass::kMeasurement);

  net::ProbeSpec traceroute;
  traceroute.source_port = 51000;
  traceroute.destination_port = 33434;  // classic traceroute base port
  traceroute.payload = high_entropy(64, 3);
  EXPECT_EQ(classify_packet(packet_for(traceroute)),
            TrafficClass::kMeasurement);

  net::ProbeSpec https;
  https.protocol = Protocol::kTcp;
  https.source_port = 51000;
  https.destination_port = 443;
  https.payload = high_entropy(64, 4);
  EXPECT_EQ(classify_packet(packet_for(https)), TrafficClass::kInteractive);
}

TEST(MiddleboxClassify, PayloadHeuristics) {
  // Large payloads on unremarkable ports read as bulk.
  net::ProbeSpec bulk;
  bulk.source_port = 51000;
  bulk.destination_port = 27101;
  bulk.payload = high_entropy(600, 5);
  EXPECT_EQ(classify_packet(packet_for(bulk)), TrafficClass::kBulk);

  // Zero-padded (equalized) payloads have near-zero entropy: the DPI
  // model reads them as measurement even on innocent ports.
  net::ProbeSpec padded;
  padded.source_port = 51000;
  padded.destination_port = 27101;
  padded.payload = Bytes(64, 0);
  EXPECT_EQ(classify_packet(packet_for(padded)), TrafficClass::kMeasurement);

  // High-entropy small payloads pass as ordinary traffic.
  net::ProbeSpec data;
  data.source_port = 51000;
  data.destination_port = 27101;
  data.payload = high_entropy(64, 6);
  EXPECT_EQ(classify_packet(packet_for(data)), TrafficClass::kOther);

  EXPECT_LT(net::payload_entropy_bits(BytesView(padded.payload.data(),
                                                padded.payload.size())),
            0.1);
  EXPECT_GT(net::payload_entropy_bits(
                BytesView(data.payload.data(), data.payload.size())),
            4.0);
}

TEST(MiddleboxClassify, IntPrefixIsSkippedBeforePayloadInspection) {
  // A leading INT block is forwarding-plane metadata: the heuristics must
  // judge only the application bytes after it.
  const Bytes prefix = telemetry::IntHeader::reserve(8).serialize();
  ASSERT_EQ(telemetry::IntHeader::prefix_size(
                BytesView(prefix.data(), prefix.size())),
            prefix.size());

  net::ProbeSpec spec;
  spec.source_port = 51000;
  spec.destination_port = 27101;
  spec.payload = prefix;
  const Bytes tail = high_entropy(48, 7);
  spec.payload.insert(spec.payload.end(), tail.begin(), tail.end());
  // 340 bytes of INT + 48 noisy bytes: still "other", not bulk, because
  // only the 48 application bytes count.
  EXPECT_EQ(classify_packet(packet_for(spec)), TrafficClass::kOther);

  spec.payload = prefix;
  spec.payload.insert(spec.payload.end(), 32, 0);
  // INT + zero padding: the padding gives it away as a probe.
  EXPECT_EQ(classify_packet(packet_for(spec)), TrafficClass::kMeasurement);
}

struct Applied {
  MiddleboxVerdict verdict;
  MiddleboxStats stats;
};

Applied apply_once(const MiddleboxPlan& plan, const net::Packet& packet,
                   SimTime now = 0, std::uint64_t seed = 99) {
  Applied out;
  Rng rng(seed);
  MiddleboxRuntime runtime;
  out.verdict = apply_middlebox(plan, packet, now, rng, runtime, out.stats);
  return out;
}

net::Packet data_packet(std::uint64_t seed = 11) {
  net::ProbeSpec spec;
  spec.source_port = 51000;
  spec.destination_port = 27101;
  spec.payload = high_entropy(48, seed);
  return packet_for(spec);
}

TEST(MiddleboxPolicy, DropDelayAndWindow) {
  ClassPolicy certain_drop;
  certain_drop.drop_pm = 1000.0;
  MiddleboxPlan dropper;
  dropper.policy(TrafficClass::kOther, certain_drop);
  const Applied dropped = apply_once(dropper, data_packet());
  EXPECT_TRUE(dropped.verdict.dropped);
  EXPECT_FALSE(dropped.verdict.throttled);
  EXPECT_EQ(dropped.stats.dropped, 1u);

  ClassPolicy slow;
  slow.extra_delay_ms = 7.5;
  MiddleboxPlan delayer;
  delayer.policy(TrafficClass::kOther, slow);
  const Applied delayed = apply_once(delayer, data_packet());
  EXPECT_FALSE(delayed.verdict.dropped);
  EXPECT_DOUBLE_EQ(delayed.verdict.extra_delay_ms, 7.5);
  EXPECT_EQ(delayed.stats.deprioritized, 1u);

  // Outside the plan's window nothing is even inspected.
  delayer.window(FaultWindow{duration::seconds(10), duration::seconds(20)});
  const Applied outside = apply_once(delayer, data_packet(), 0);
  EXPECT_FALSE(outside.verdict.inspected);
  EXPECT_EQ(outside.stats.inspected(), 0u);
  const Applied inside =
      apply_once(delayer, data_packet(), duration::seconds(15));
  EXPECT_TRUE(inside.verdict.inspected);
  EXPECT_DOUBLE_EQ(inside.verdict.extra_delay_ms, 7.5);

  // A measurement-class packet is untouched by policy_except_measurement.
  MiddleboxPlan except;
  ClassPolicy harsh;
  harsh.drop_pm = 1000.0;
  except.policy_except_measurement(harsh);
  net::ProbeSpec probe;
  probe.destination_port = 40021;
  const Applied clean = apply_once(except, packet_for(probe));
  EXPECT_TRUE(clean.verdict.inspected);
  EXPECT_FALSE(clean.verdict.dropped);
  EXPECT_EQ(clean.stats.classified[static_cast<std::size_t>(
                TrafficClass::kMeasurement)],
            1u);
}

TEST(MiddleboxPolicy, MangleDamagesOnlyApplicationBytes) {
  ClassPolicy mangle;
  mangle.mangle_pm = 1000.0;
  mangle.mangle_max_bit_flips = 3;
  MiddleboxPlan mangler;
  mangler.policy(TrafficClass::kOther, mangle);

  net::ProbeSpec spec;
  spec.source_port = 51000;
  spec.destination_port = 27101;
  spec.payload = telemetry::IntHeader::reserve(4).serialize();
  const std::size_t int_size = spec.payload.size();
  const Bytes tail = high_entropy(48, 21);
  spec.payload.insert(spec.payload.end(), tail.begin(), tail.end());
  const net::Packet packet = packet_for(spec);

  const Applied out = apply_once(mangler, packet);
  ASSERT_TRUE(out.verdict.mangled);
  EXPECT_EQ(out.verdict.damage.kind, WireDamage::Kind::kMangle);
  EXPECT_EQ(out.verdict.damage.offset,
            net::header_overhead(Protocol::kUdp) + int_size);
  EXPECT_EQ(out.stats.mangled, 1u);

  auto wire = net::build_probe(spec);
  ASSERT_TRUE(wire.ok());
  Bytes damaged = *wire;
  apply_wire_damage(damaged, out.verdict.damage);
  // Headers and the INT block are untouched; only the tail changed.
  EXPECT_TRUE(std::equal(wire->begin(),
                         wire->begin() + out.verdict.damage.offset,
                         damaged.begin()));
  EXPECT_NE(*wire, damaged);
}

TEST(MiddleboxPolicy, ThrottleBudgetResetsPerSecond) {
  ClassPolicy budget;
  budget.throttle_pps = 2;
  MiddleboxPlan throttler;
  throttler.policy(TrafficClass::kOther, budget);

  Rng rng(5);
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  const net::Packet packet = data_packet();
  for (int i = 0; i < 2; ++i) {
    const MiddleboxVerdict v =
        apply_middlebox(throttler, packet, 100, rng, runtime, stats);
    EXPECT_FALSE(v.dropped) << "packet " << i << " within budget";
  }
  const MiddleboxVerdict third =
      apply_middlebox(throttler, packet, 200, rng, runtime, stats);
  EXPECT_TRUE(third.dropped);
  EXPECT_TRUE(third.throttled);
  EXPECT_EQ(stats.throttled, 1u);
  // The next second starts a fresh budget.
  const MiddleboxVerdict next = apply_middlebox(
      throttler, packet, duration::seconds(1) + 100, rng, runtime, stats);
  EXPECT_FALSE(next.dropped);
}

TEST(MiddleboxPolicy, FaultHidingExemptsRecognizedTraffic) {
  ClassPolicy harsh;
  harsh.drop_pm = 1000.0;
  MiddleboxPlan hider;
  hider.policy_all(harsh);
  hider.recognize_probe_signatures(true);

  // Measurement-class traffic rides clean on signature alone.
  net::ProbeSpec probe;
  probe.destination_port = 40021;
  const Applied by_signature = apply_once(hider, packet_for(probe));
  EXPECT_TRUE(by_signature.verdict.exempted);
  EXPECT_FALSE(by_signature.verdict.dropped);
  EXPECT_EQ(by_signature.stats.exempted, 1u);

  // Ordinary traffic suffers.
  const Applied victim = apply_once(hider, data_packet());
  EXPECT_FALSE(victim.verdict.exempted);
  EXPECT_TRUE(victim.verdict.dropped);

  // A recognized address is clean regardless of class, either direction.
  const net::Packet data = data_packet();
  MiddleboxPlan by_addr;
  by_addr.policy_all(harsh);
  by_addr.recognize(data.ip.source);
  EXPECT_TRUE(apply_once(by_addr, data).verdict.exempted);
  MiddleboxPlan by_dst;
  by_dst.policy_all(harsh);
  by_dst.recognize(data.ip.destination);
  EXPECT_TRUE(apply_once(by_dst, data).verdict.exempted);
  EXPECT_TRUE(by_addr.hiding());
  EXPECT_FALSE(MiddleboxPlan{}.hiding());
}

/// Probe rounds through a chain with a middlebox on AS2. The client uses
/// a non-measurement server port, but its 16-byte low-entropy payloads
/// still fingerprint as measurement traffic — ports alone don't hide a
/// probe from the DPI model.
std::string middlebox_run_trace(std::uint64_t seed, const MiddleboxPlan& plan,
                                MiddleboxStats* stats_out = nullptr) {
  Scenario s = build_chain_scenario(3, seed, 5.0);
  EXPECT_TRUE(s.network->install_middlebox(2, plan).ok());
  const auto server_addr = s.network->allocate_host_address(3);
  EchoServerHost server(*s.network, server_addr);
  EXPECT_TRUE(s.network->attach_host(server_addr, &server));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.server_port = 27101;  // deliberately outside the measurement ranges
  cfg.probe_count = 30;
  cfg.interval = duration::milliseconds(50);
  cfg.protocols = {Protocol::kUdp};
  const auto client_addr = s.network->allocate_host_address(1);
  ProbeClientHost client(*s.network, client_addr, cfg, seed + 1);
  EXPECT_TRUE(s.network->attach_host(client_addr, &client));
  client.start();
  s.queue->run();
  if (stats_out != nullptr) *stats_out = s.network->middlebox_stats(2);

  std::string trace;
  char buf[32];
  for (double sample : client.report().rtt_ms.at(Protocol::kUdp).samples()) {
    std::snprintf(buf, sizeof buf, "%.17g,", sample);
    trace += buf;
  }
  const MiddleboxStats st = s.network->middlebox_stats(2);
  trace += " stats=" + std::to_string(st.inspected()) + "/" +
           std::to_string(st.dropped) + "/" +
           std::to_string(st.deprioritized) + "/" +
           std::to_string(st.mangled) + "/" + std::to_string(st.exempted);
  return trace;
}

TEST(MiddleboxNetwork, AppliesPolicyAndCountsGroundTruth) {
  ClassPolicy slow;
  slow.extra_delay_ms = 20.0;
  MiddleboxPlan plan;
  plan.policy_all(slow);
  MiddleboxStats stats;
  middlebox_run_trace(404, plan, &stats);
  // Every probe (and its echo) crossed AS2, and despite the innocent
  // port each one's low-entropy payload classified as measurement:
  // 30 each way.
  EXPECT_EQ(stats.classified[static_cast<std::size_t>(
                TrafficClass::kMeasurement)],
            60u);
  EXPECT_EQ(stats.inspected(), 60u);
  EXPECT_EQ(stats.deprioritized, 60u);
  EXPECT_EQ(stats.dropped, 0u);

  // An empty middlebox AS reports zeroed stats.
  Scenario s = build_chain_scenario(3, 1, 5.0);
  EXPECT_EQ(s.network->middlebox_stats(2).inspected(), 0u);
  // Installing on an unknown AS fails.
  EXPECT_FALSE(s.network->install_middlebox(99, plan).ok());
}

TEST(MiddleboxNetwork, DeterministicUnderEqualSeeds) {
  ClassPolicy chaos;
  chaos.drop_pm = 120.0;
  chaos.extra_delay_ms = 4.0;
  chaos.delay_jitter_ms = 1.0;
  chaos.mangle_pm = 80.0;
  MiddleboxPlan plan;
  plan.policy_all(chaos);
  const std::string first = middlebox_run_trace(777, plan);
  EXPECT_EQ(middlebox_run_trace(777, plan), first);
  EXPECT_NE(middlebox_run_trace(778, plan), first);
}

TEST(MiddleboxNetwork, ClearMiddleboxRestoresCleanForwarding) {
  Scenario s = build_chain_scenario(3, 5, 5.0);
  ClassPolicy harsh;
  harsh.drop_pm = 1000.0;
  MiddleboxPlan plan;
  plan.policy_all(harsh);
  ASSERT_TRUE(s.network->install_middlebox(2, plan).ok());
  s.network->clear_middlebox(2);

  const auto server_addr = s.network->allocate_host_address(3);
  EchoServerHost server(*s.network, server_addr);
  ASSERT_TRUE(s.network->attach_host(server_addr, &server));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 5;
  cfg.interval = duration::milliseconds(20);
  cfg.protocols = {Protocol::kUdp};
  const auto client_addr = s.network->allocate_host_address(1);
  ProbeClientHost client(*s.network, client_addr, cfg, 6);
  ASSERT_TRUE(s.network->attach_host(client_addr, &client));
  client.start();
  s.queue->run();
  EXPECT_EQ(client.report().received.at(Protocol::kUdp), 5u);
  EXPECT_EQ(s.network->middlebox_stats(2).inspected(), 0u);
}

}  // namespace
}  // namespace debuglet::simnet

namespace debuglet::core {
namespace {

simnet::MiddleboxPlan hiding_plan(const simnet::SimulatedNetwork& network,
                                  std::size_t ases, double delay_ms) {
  simnet::ClassPolicy slow;
  slow.extra_delay_ms = delay_ms;
  slow.drop_pm = 60.0;
  simnet::MiddleboxPlan plan;
  plan.policy_all(slow).recognize_probe_signatures(true);
  for (std::size_t as = 1; as <= ases; ++as) {
    const auto asn = static_cast<topology::AsNumber>(as);
    plan.recognize(
        network.topology().address_of(topology::InterfaceKey{asn, 1}));
    plan.recognize(
        network.topology().address_of(topology::InterfaceKey{asn, 2}));
  }
  return plan;
}

TEST(DiscriminationDetector, NamesTheHidingAsAndPassesHonestControl) {
  // Cheating network: AS3 gives recognized measurement traffic a clean
  // path and parks everything else in a 25 ms slow queue.
  simnet::Scenario cheat = simnet::build_chain_scenario(5, 42, 5.0);
  cheat.network->set_int_enabled(true);
  ASSERT_TRUE(cheat.network
                  ->install_middlebox(
                      3, hiding_plan(*cheat.network, 5, 25.0))
                  .ok());
  DiscriminationDetector detector(*cheat.network, 1, 5, 7);
  auto report = detector.run();
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_TRUE(report->detected);
  EXPECT_EQ(report->named_as(), 3u);
  EXPECT_GE(report->top_confidence(), 0.8);
  EXPECT_GT(report->suspects.front().residence_delta_ms, 20.0);
  EXPECT_GT(report->delay_delta_ms, 20.0);
  // The probe-like twins arrived unharmed — that is the point of hiding.
  EXPECT_EQ(report->probe_like.received, report->probe_like.sent);
  // Equal seeds render the identical trace (chaos replay contract).
  DiscriminationDetector replay_detector(*cheat.network, 1, 5, 7);
  // Note: allocate_host_address advances, so replay on a FRESH scenario.
  simnet::Scenario again = simnet::build_chain_scenario(5, 42, 5.0);
  again.network->set_int_enabled(true);
  ASSERT_TRUE(again.network
                  ->install_middlebox(
                      3, hiding_plan(*again.network, 5, 25.0))
                  .ok());
  DiscriminationDetector rerun(*again.network, 1, 5, 7);
  auto replay = rerun.run();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->trace(), report->trace());

  // Honest control: same chain, no middlebox — nothing to report.
  simnet::Scenario honest = simnet::build_chain_scenario(5, 42, 5.0);
  honest.network->set_int_enabled(true);
  DiscriminationDetector honest_detector(*honest.network, 1, 5, 7);
  auto clean = honest_detector.run();
  ASSERT_TRUE(clean.ok()) << clean.error_message();
  EXPECT_FALSE(clean->detected);
  EXPECT_LT(clean->top_confidence(), 0.5);
}

TEST(DiscriminationDetector, WithoutIntThePrefixScanStillNamesTheAs) {
  simnet::Scenario s = simnet::build_chain_scenario(5, 13, 5.0);
  // INT stays off: the sequential detector deploys twin streams to every
  // intermediate path AS, and the nearest prefix whose SPRT fires names
  // the discriminator — no residence evidence needed.
  ASSERT_TRUE(
      s.network->install_middlebox(3, hiding_plan(*s.network, 5, 25.0))
          .ok());
  DiscriminationDetector detector(*s.network, 1, 5, 7);
  auto report = detector.run();
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_TRUE(report->detected);
  EXPECT_EQ(report->named_as(), 3u);
  EXPECT_GE(report->top_confidence(), 0.8);
  EXPECT_LE(report->rounds_used, 40u);
  EXPECT_EQ(report->decision.rfind("h1", 0), 0u) << report->decision;

  // The legacy fixed-round path has no prefix scan: it proves the
  // discrimination end to end but cannot say where (asn = 0).
  simnet::Scenario legacy = simnet::build_chain_scenario(5, 13, 5.0);
  ASSERT_TRUE(legacy.network
                  ->install_middlebox(
                      3, hiding_plan(*legacy.network, 5, 25.0))
                  .ok());
  DiscriminationDetector::Options fixed;
  fixed.sequential = false;
  DiscriminationDetector legacy_detector(*legacy.network, 1, 5, 7, fixed);
  auto old_style = legacy_detector.run();
  ASSERT_TRUE(old_style.ok()) << old_style.error_message();
  EXPECT_TRUE(old_style->detected);
  EXPECT_EQ(old_style->named_as(), 0u);
  ASSERT_FALSE(old_style->suspects.empty());
  EXPECT_EQ(old_style->suspects.front().asn, 0u);
  EXPECT_GT(old_style->suspects.front().residence_delta_ms, 20.0);
  EXPECT_EQ(old_style->decision, "fixed-rounds");
}

// The ISSUE's acceptance scenario: a fault-hiding AS conceals its slow
// queue from the executor-pair localization (which sees a clean path),
// and the twin-probe discrimination pass wired into the localizer names
// that AS instead of letting it pass silently.
TEST(DiscriminationDetector, LocalizerFlagsFaultHidingAs) {
  DebugletSystem system(simnet::build_chain_scenario(6, 2024, 5.0));
  constexpr topology::AsNumber kCheat = 3;
  ASSERT_TRUE(system.network()
                  .install_middlebox(
                      kCheat, hiding_plan(system.network(), 6, 30.0))
                  .ok());
  Initiator initiator(system, 31415, 2'000'000'000'000ULL);
  auto path = system.network().topology().shortest_path(1, 6);
  ASSERT_TRUE(path.ok());
  FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  FaultLocalizer localizer(system, initiator, *path, criteria,
                           net::Protocol::kUdp, 8, 100);
  localizer.set_discrimination_probe([&]() {
    system.network().set_int_enabled(true);
    DiscriminationDetector detector(system.network(), 1, 6, 99);
    auto twins = detector.run();
    system.network().set_int_enabled(false);
    return twins;
  });
  auto report = localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(report.ok()) << report.error_message();
  // The executor probes ride the exempt fast path: no fault to see.
  EXPECT_FALSE(report->located);
  // But the twin probes caught the AS discriminating.
  ASSERT_FALSE(report->discrimination.empty());
  EXPECT_EQ(report->discrimination.front().asn, kCheat);
  EXPECT_GE(report->discrimination.front().confidence, 0.8);
  bool noted = false;
  for (const std::string& note : report->notes)
    noted |= note.find("fault hiding suspected") != std::string::npos;
  EXPECT_TRUE(noted);

  // Control: an honest network with the same probe reports nothing.
  DebugletSystem honest(simnet::build_chain_scenario(6, 2024, 5.0));
  Initiator honest_initiator(honest, 31415, 2'000'000'000'000ULL);
  FaultLocalizer honest_localizer(honest, honest_initiator, *path, criteria,
                                  net::Protocol::kUdp, 8, 100);
  honest_localizer.set_discrimination_probe([&]() {
    honest.network().set_int_enabled(true);
    DiscriminationDetector detector(honest.network(), 1, 6, 99);
    auto twins = detector.run();
    honest.network().set_int_enabled(false);
    return twins;
  });
  auto clean = honest_localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(clean.ok()) << clean.error_message();
  EXPECT_FALSE(clean->located);
  EXPECT_TRUE(clean->discrimination.empty());
  for (const std::string& note : clean->notes)
    EXPECT_EQ(note.find("discriminat"), std::string::npos) << note;
}

}  // namespace
}  // namespace debuglet::core
