#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace debuglet {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  const std::string hex = to_hex(BytesView(data.data(), data.size()));
  EXPECT_EQ(hex, "0001abff7e");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsUppercase) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(to_hex(BytesView(v->data(), v->size())), "deadbeef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").ok()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").ok()); }

TEST(Hex, EmptyIsEmpty) {
  auto v = from_hex("");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST(BytesWriterReader, FixedWidthRoundTrip) {
  BytesWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.5);

  BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0xBEEF);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.i64(), -42);
  EXPECT_EQ(*r.f64(), 3.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesWriterReader, LittleEndianLayout) {
  BytesWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(BytesWriterReader, TruncationDetected) {
  BytesWriter w;
  w.u16(7);
  BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
  EXPECT_FALSE(r.u32().ok());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  BytesWriter w;
  w.varint(GetParam());
  BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
  auto v = r.varint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 12345,
                      ~0ULL, ~0ULL - 1));

TEST(Varint, SizeIsMinimal) {
  BytesWriter w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  BytesWriter w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Blob, RoundTripsAndRejectsOverlongLength) {
  BytesWriter w;
  const Bytes payload = bytes_of("hello world");
  w.blob(BytesView(payload.data(), payload.size()));
  BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
  auto back = r.blob();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);

  // A blob whose declared length exceeds the remaining input must fail.
  BytesWriter w2;
  w2.varint(1000);
  w2.u8(1);
  BytesReader r2(BytesView(w2.bytes().data(), w2.bytes().size()));
  EXPECT_FALSE(r2.blob().ok());
}

TEST(Str, RoundTripsUtf8AndEmpty) {
  BytesWriter w;
  w.str("grüß dich");
  w.str("");
  BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(*r.str(), "grüß dich");
  EXPECT_EQ(*r.str(), "");
}

TEST(Result, ValueAndErrorAccess) {
  Result<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.error_message(), "");

  Result<int> bad = fail("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_THROW(bad.value(), std::logic_error);
  EXPECT_THROW(good.error(), std::logic_error);
}

}  // namespace
}  // namespace debuglet
