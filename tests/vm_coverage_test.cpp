// Opcode coverage audit.
//
// Walks the full Opcode enum (vm::all_opcodes) and the full decoded-op
// enum (vm::all_fused_ops) against a fixed corpus of builder programs.
// Adding an opcode to isa.hpp without exercising it here — or adding a
// superinstruction the corpus never produces — fails the audit, so the
// differential harness can never silently lose coverage of a new
// instruction. Every corpus program is also run under both engines and
// must agree.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/builder.hpp"
#include "vm/dispatch.hpp"
#include "vm/interpreter.hpp"
#include "vm/reference.hpp"
#include "vm/validator.hpp"

namespace debuglet {
namespace {

using vm::Opcode;

// One corpus entry: a named module exercising a cluster of opcodes.
struct CorpusEntry {
  std::string name;
  vm::Module module;
  bool needs_host = false;
};

std::vector<CorpusEntry> corpus() {
  std::vector<CorpusEntry> out;

  {  // Arithmetic and bitwise ops, plus const/dup/drop plumbing.
    vm::ModuleBuilder mb;
    mb.memory(64);
    auto& fb = mb.function(vm::kEntryPointName, 0, 1);
    fb.constant(1000).constant(7).emit(Opcode::kDivS);
    fb.constant(13).emit(Opcode::kRemS);
    fb.constant(3).emit(Opcode::kMul);
    fb.constant(5).emit(Opcode::kAdd);
    fb.constant(2).emit(Opcode::kSub);
    fb.constant(0xFF).emit(Opcode::kAnd);
    fb.constant(0x10).emit(Opcode::kOr);
    fb.constant(0x3).emit(Opcode::kXor);
    fb.constant(2).emit(Opcode::kShl);
    fb.constant(1).emit(Opcode::kShrS);
    fb.constant(1).emit(Opcode::kShrU);
    fb.emit(Opcode::kDup);
    fb.emit(Opcode::kDrop);
    fb.emit(Opcode::kEqz);
    fb.emit(Opcode::kNop);
    fb.ret();
    out.push_back({"arith", mb.build()});
  }

  {  // Comparisons, both fused (after local.get/const) and plain.
    vm::ModuleBuilder mb;
    mb.memory(64);
    auto& fb = mb.function(vm::kEntryPointName, 0, 2);
    const auto ops = {Opcode::kEq,  Opcode::kNe,  Opcode::kLtS,
                      Opcode::kGtS, Opcode::kLeS, Opcode::kGeS};
    for (Opcode op : ops) {
      // Plain: both operands via dup so no fusion pattern matches.
      fb.constant(4).emit(Opcode::kDup).emit(op).emit(Opcode::kDrop);
      // Fused const-arith shape: const k; cmp.
      fb.constant(9).constant(5).emit(op).emit(Opcode::kDrop);
    }
    fb.constant(0).ret();
    out.push_back({"compare", mb.build()});
  }

  {  // Memory: all load/store widths plus mem.size.
    vm::ModuleBuilder mb;
    mb.memory(128);
    auto& fb = mb.function(vm::kEntryPointName, 0, 0);
    fb.constant(8).constant(0x1122334455667788).emit(Opcode::kStore64, 0);
    fb.constant(8).constant(0xAABBCCDD).emit(Opcode::kStore32, 16);
    fb.constant(8).constant(0x5A).emit(Opcode::kStore8, 24);
    fb.constant(8).emit(Opcode::kLoad64, 0).emit(Opcode::kDrop);
    fb.constant(8).emit(Opcode::kLoad32, 16).emit(Opcode::kDrop);
    fb.constant(8).emit(Opcode::kLoad8, 24);
    fb.emit(Opcode::kMemSize).emit(Opcode::kAdd);
    fb.ret();
    out.push_back({"memory", mb.build()});
  }

  {  // Locals, globals, and the fused local/const shapes the apps emit.
    vm::ModuleBuilder mb;
    mb.memory(64);
    const auto g = mb.add_global(11);
    auto& fb = mb.function(vm::kEntryPointName, 0, 2);
    const auto top = fb.make_label();
    const auto done = fb.make_label();
    fb.bind(top);
    // kFusedLocalBranchIf: local.get; const; cmp; jump_if.
    fb.local_get(0).constant(10).emit(Opcode::kGeS).jump_if(done);
    // kFusedLocalConstArithSet: local.get; const; arith; local.set.
    fb.local_get(1).constant(3).emit(Opcode::kAdd).local_set(1);
    fb.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
    fb.jump(top);
    fb.bind(done);
    const auto tail = fb.make_label();
    // kFusedLocalBranchIfZ.
    fb.local_get(0).constant(10).emit(Opcode::kEq).jump_ifz(tail);
    fb.bind(tail);
    // kFusedLocalArith: value on stack, then local.get; arith.
    fb.global_get(g).local_get(1).emit(Opcode::kAdd);
    fb.global_set(g);
    fb.global_get(g).ret();
    out.push_back({"locals_globals", mb.build()});
  }

  {  // Control: call, call_host, conditional jumps, return.
    vm::ModuleBuilder mb;
    mb.memory(64);
    auto& helper = mb.function("helper", 2, 0);
    helper.local_get(0).local_get(1).emit(Opcode::kAdd).ret();
    auto& fb = mb.function(vm::kEntryPointName, 0, 1);
    fb.constant(20).constant(22).call("helper");
    fb.call_host("h_probe");
    fb.ret();
    out.push_back({"calls", mb.build(), true});
  }

  {  // Abort: the only trapping corpus entry (still engine-compared).
    vm::ModuleBuilder mb;
    mb.memory(64);
    auto& fb = mb.function(vm::kEntryPointName, 0, 0);
    const auto skip = fb.make_label();
    fb.constant(1).jump_ifz(skip);
    fb.emit(Opcode::kAbort, 42);
    fb.bind(skip);
    fb.constant(0).ret();
    out.push_back({"abort", mb.build()});
  }

  return out;
}

std::vector<vm::HostFunction> corpus_hosts() {
  return {{"h_probe", 1,
           [](vm::Instance&, std::span<const std::int64_t> args)
               -> Result<std::int64_t> { return args[0] + 1; },
           false}};
}

TEST(VmCoverage, EveryOpcodeIsExercisedByTheCorpus) {
  std::set<Opcode> seen;
  for (const CorpusEntry& entry : corpus()) {
    ASSERT_TRUE(vm::validate(entry.module).ok()) << entry.name;
    for (const vm::Function& f : entry.module.functions)
      for (const vm::Instruction& ins : f.code) seen.insert(ins.op);
  }
  for (Opcode op : vm::all_opcodes())
    EXPECT_TRUE(seen.contains(op))
        << "opcode '" << vm::opcode_name(op)
        << "' is not exercised by the coverage corpus; extend "
           "tests/vm_coverage_test.cpp when adding instructions";
}

TEST(VmCoverage, EveryDecodedOpIsProducedByTheCorpus) {
  // Union of decoded ops over fused AND unfused translations: base ops
  // that always fuse in real code still must appear somewhere unfused.
  std::set<vm::FusedOp> produced;
  for (const CorpusEntry& entry : corpus()) {
    for (bool fuse : {true, false}) {
      vm::TranslateOptions opts;
      opts.fuse = fuse;
      auto tm = vm::translate(entry.module, opts);
      ASSERT_TRUE(tm.ok()) << entry.name << ": " << tm.error_message();
      for (const vm::TranslatedFunction& tf : tm->functions)
        for (const vm::DecodedInst& d : tf.code) produced.insert(d.op);
    }
  }
  for (vm::FusedOp op : vm::all_fused_ops()) {
    if (op == vm::FusedOp::kCount) continue;
    EXPECT_TRUE(produced.contains(op))
        << "decoded op '" << vm::fused_op_name(op)
        << "' is never produced when translating the coverage corpus; "
           "extend tests/vm_coverage_test.cpp when adding "
           "superinstructions";
  }
}

TEST(VmCoverage, CorpusAgreesAcrossEngines) {
  for (const CorpusEntry& entry : corpus()) {
    auto hosts = entry.needs_host ? corpus_hosts()
                                  : std::vector<vm::HostFunction>{};
    auto fast_inst = vm::Instance::create(entry.module, hosts, {});
    auto ref_inst = vm::Instance::create(entry.module, hosts, {});
    ASSERT_TRUE(fast_inst.ok() && ref_inst.ok()) << entry.name;
    const vm::RunOutcome fast = fast_inst->run_function(
        vm::kEntryPointName, {}, vm::Engine::kFast);
    const vm::RunOutcome ref = ref_inst->run_function(
        vm::kEntryPointName, {}, vm::Engine::kReference);
    EXPECT_EQ(fast.trapped, ref.trapped) << entry.name;
    EXPECT_EQ(fast.trap, ref.trap) << entry.name;
    EXPECT_EQ(fast.trap_message, ref.trap_message) << entry.name;
    EXPECT_EQ(fast.trap_pc, ref.trap_pc) << entry.name;
    EXPECT_EQ(fast.value, ref.value) << entry.name;
    EXPECT_EQ(fast.fuel_used, ref.fuel_used) << entry.name;
    EXPECT_EQ(fast.host_calls, ref.host_calls) << entry.name;
  }
}

// The dispatch loop's handler table and the decoded-op enum must stay in
// lockstep; fused_op_name doubles as the existence check.
TEST(VmCoverage, DecodedOpNamesAreDistinctAndDefined) {
  std::set<std::string> names;
  for (vm::FusedOp op : vm::all_fused_ops()) {
    if (op == vm::FusedOp::kCount) continue;
    const std::string name = vm::fused_op_name(op);
    EXPECT_NE(name, "invalid") << static_cast<int>(op);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate decoded-op name '" << name << "'";
  }
  EXPECT_TRUE(vm::dispatch_mode() == std::string("threaded") ||
              vm::dispatch_mode() == std::string("switch"));
}

}  // namespace
}  // namespace debuglet
