#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace debuglet {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(SampleSet, PercentileOnEmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::invalid_argument);
}

TEST(SampleSet, HistogramClampsOutliers) {
  SampleSet s;
  s.add(-10.0);
  s.add(5.0);
  s.add(999.0);
  auto h = s.histogram(0.0, 10.0, 10);
  ASSERT_EQ(h.size(), 10u);
  EXPECT_EQ(h[0], 1u);   // clamped low
  EXPECT_EQ(h[5], 1u);
  EXPECT_EQ(h[9], 1u);   // clamped high
}

TEST(Kmeans, FindsWellSeparatedClusters) {
  Rng rng(1);
  std::vector<double> data;
  for (double center : {10.0, 20.0, 30.0, 40.0}) {
    for (int i = 0; i < 200; ++i) data.push_back(rng.normal(center, 0.4));
  }
  Clusters c = kmeans_1d(data, 4);
  ASSERT_EQ(c.centers.size(), 4u);
  EXPECT_NEAR(c.centers[0], 10.0, 0.5);
  EXPECT_NEAR(c.centers[1], 20.0, 0.5);
  EXPECT_NEAR(c.centers[2], 30.0, 0.5);
  EXPECT_NEAR(c.centers[3], 40.0, 0.5);
}

TEST(Kmeans, SingleClusterIsMean) {
  Clusters c = kmeans_1d({5.0, 5.0, 5.0}, 1);
  ASSERT_EQ(c.centers.size(), 1u);
  EXPECT_DOUBLE_EQ(c.centers[0], 5.0);
  EXPECT_EQ(c.sizes[0], 3u);
}

TEST(Kmeans, RejectsEmptyInput) {
  EXPECT_THROW(kmeans_1d({}, 2), std::invalid_argument);
}

class ModeCountCase : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModeCountCase, EstimatesClusterCount) {
  const std::size_t k = GetParam();
  Rng rng(7 + k);
  std::vector<double> data;
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 400; ++i)
      data.push_back(rng.normal(10.0 + 8.0 * static_cast<double>(c), 0.35));
  }
  EXPECT_EQ(estimate_mode_count(data, 8), k);
}

INSTANTIATE_TEST_SUITE_P(OneToFive, ModeCountCase,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LevelShifts, CountsMedianJumps) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(10.0);
  for (int i = 0; i < 100; ++i) values.push_back(20.0);
  for (int i = 0; i < 100; ++i) values.push_back(10.0);
  EXPECT_EQ(count_level_shifts(values, 50, 5.0), 2u);
  EXPECT_EQ(count_level_shifts(values, 50, 15.0), 0u);
}

TEST(LevelShifts, ShortInputIsZero) {
  EXPECT_EQ(count_level_shifts({1.0, 2.0}, 50, 0.5), 0u);
}

TEST(TimeFormat, RendersHoursMinutesSeconds) {
  EXPECT_EQ(format_time(duration::hours(2) + duration::minutes(3) +
                        duration::seconds(4) + duration::milliseconds(56)),
            "02:03:04.056");
}

TEST(DurationFormat, PicksUnits) {
  EXPECT_EQ(format_duration(500), "500 ns");
  EXPECT_EQ(format_duration(duration::microseconds(12) + 340),
            "12.34 us");
  EXPECT_EQ(format_duration(duration::milliseconds(3)), "3.00 ms");
  EXPECT_EQ(format_duration(duration::seconds(2)), "2.00 s");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, ChanceEdges) {
  Rng rng(6);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(7);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.2);
}

TEST(Rng, NextBelowUnbiasedAndGuarded) {
  Rng rng(8);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

}  // namespace
}  // namespace debuglet
