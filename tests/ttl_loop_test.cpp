// TTL / hop-limit enforcement under routing loops.
//
// A pinned two-node routing loop (AS1 <-> AS2 bouncing until the hop limit
// runs out) must terminate: the packet expires at a border router, the
// expiry is counted on `net.ttl_expired`, at most one ICMP time exceeded
// goes back (never an ICMP error about an ICMP error, RFC 1122 §3.2.2),
// and the event queue drains even when BOTH directions loop.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet {
namespace {

struct RxHost : simnet::Host {
  void on_packet(const simnet::Delivery& delivery) override {
    packets.push_back(delivery.packet);
  }
  std::vector<net::Packet> packets;
};

// A path from AS1 to AS2 that bounces over the single inter-domain link
// `links` times (odd, so it terminates at AS2). Interface numbers follow
// the chain scenario: AS1 faces AS2 on interface 2, AS2 faces back on 1.
topology::AsPath looping_path_1_to_2(std::size_t links) {
  topology::AsPath path;
  path.hops.push_back({1, 0, 2});
  for (std::size_t i = 1; i <= links; ++i) {
    if (i % 2 == 1)
      path.hops.push_back({2, 1, 1});
    else
      path.hops.push_back({1, 2, 2});
  }
  path.hops.back().egress = 0;
  return path;
}

topology::AsPath looping_path_2_to_1(std::size_t links) {
  topology::AsPath path;
  path.hops.push_back({2, 0, 1});
  for (std::size_t i = 1; i <= links; ++i) {
    if (i % 2 == 1)
      path.hops.push_back({1, 2, 2});
    else
      path.hops.push_back({2, 1, 1});
  }
  path.hops.back().egress = 0;
  return path;
}

struct TtlLoopFixture : ::testing::Test {
  TtlLoopFixture() : scenario(simnet::build_chain_scenario(2, 99, 5.0)) {
    sender_addr = scenario.network->allocate_host_address(1);
    receiver_addr = scenario.network->allocate_host_address(2);
    EXPECT_TRUE(scenario.network->attach_host(sender_addr, &sender).ok());
    EXPECT_TRUE(scenario.network->attach_host(receiver_addr, &receiver).ok());
  }

  Status send_probe(std::uint8_t ttl) {
    net::ProbeSpec spec;
    spec.source = sender_addr;
    spec.destination = receiver_addr;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.ttl = ttl;
    auto wire = net::build_probe(spec);
    if (!wire) return wire.error();
    return scenario.network->send(sender_addr, std::move(*wire));
  }

  std::uint64_t ttl_expired() {
    return scoped.get().counter("net.ttl_expired").value();
  }

  obs::ScopedRegistry scoped;  // before the network: handles are cached
  simnet::Scenario scenario;
  net::Ipv4Address sender_addr, receiver_addr;
  RxHost sender, receiver;
};

TEST_F(TtlLoopFixture, RoutingLoopExpiresCountsAndAnswers) {
  // 69 bounces over the one link; a TTL-64 probe dies at crossing 64.
  scenario.network->pin_path(1, 2, looping_path_1_to_2(69));
  ASSERT_TRUE(send_probe(64).ok());
  scenario.queue->run();

  EXPECT_TRUE(receiver.packets.empty()) << "the looped probe must not arrive";
  EXPECT_EQ(ttl_expired(), 1u);
  // The expiring border router answers with ICMP time exceeded over the
  // (healthy) reverse path.
  ASSERT_EQ(sender.packets.size(), 1u);
  ASSERT_TRUE(sender.packets[0].icmp.has_value());
  EXPECT_EQ(sender.packets[0].icmp->type, net::kIcmpTimeExceeded);
}

TEST_F(TtlLoopFixture, MutuallyLoopingPathsStillDrainTheQueue) {
  // Both directions loop: the probe expires, the time-exceeded reply then
  // expires too — and the second expiry must NOT mint an ICMP error about
  // an ICMP error, or the pair would ping-pong forever.
  scenario.network->pin_path(1, 2, looping_path_1_to_2(69));
  scenario.network->pin_path(2, 1, looping_path_2_to_1(69));
  ASSERT_TRUE(send_probe(5).ok());  // expires at an AS2 border router
  scenario.queue->run();  // pre-fix this never returned

  EXPECT_TRUE(receiver.packets.empty());
  EXPECT_TRUE(sender.packets.empty())
      << "the reply itself loops and dies; nothing arrives";
  EXPECT_EQ(ttl_expired(), 2u)
      << "exactly two expiries: the probe and its reply";
}

TEST_F(TtlLoopFixture, DeliveredPacketsCarryTheDecrementedTtl) {
  ASSERT_TRUE(send_probe(64).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.packets.size(), 1u);
  EXPECT_EQ(receiver.packets[0].ip.ttl, 63) << "one link crossed";

  // A TTL that reaches exactly zero ON the final link still delivers:
  // expiry only applies to packets that still have links ahead.
  receiver.packets.clear();
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.packets.size(), 1u);
  EXPECT_EQ(receiver.packets[0].ip.ttl, 0);
  EXPECT_EQ(ttl_expired(), 0u);
}

TEST(BuildTimeExceeded, RefusesIcmpErrorsAboutIcmpErrors) {
  net::Packet expired;
  expired.ip.source = net::Ipv4Address(10, 0, 1, 200);
  expired.ip.destination = net::Ipv4Address(10, 0, 2, 200);
  expired.ip.protocol = 1;
  expired.protocol = net::Protocol::kIcmp;
  net::IcmpEchoHeader icmp;
  icmp.type = net::kIcmpTimeExceeded;
  expired.icmp = icmp;
  EXPECT_FALSE(
      net::build_time_exceeded(expired, net::Ipv4Address(10, 0, 2, 1)).ok())
      << "RFC 1122: never build an ICMP error about an ICMP error";

  // Ordinary expired traffic still gets its reply.
  expired.icmp->type = net::kIcmpEchoRequest;
  EXPECT_TRUE(
      net::build_time_exceeded(expired, net::Ipv4Address(10, 0, 2, 1)).ok());
}

}  // namespace
}  // namespace debuglet
