#include <gtest/gtest.h>

#include "marketplace/contract.hpp"

namespace debuglet::marketplace {
namespace {

using topology::InterfaceKey;

struct MarketFixture : ::testing::Test {
  void SetUp() override {
    auto contract = std::make_unique<MarketplaceContract>();
    market = contract.get();
    ASSERT_TRUE(chain.register_contract(std::move(contract)).ok());
    for (auto* key : {&as1, &as2, &initiator})
      chain.mint(chain::Address::of(key->public_key()), 1'000'000'000'000ULL);
  }

  chain::Receipt must_submit(const crypto::KeyPair& key,
                             const std::string& function, Bytes args,
                             chain::Mist tokens = 0) {
    auto receipt = chain.submit(chain.make_transaction(
        key, kContractName, function, std::move(args), tokens));
    EXPECT_TRUE(receipt.ok()) << receipt.error_message();
    return *receipt;
  }

  void register_executor(const crypto::KeyPair& owner, InterfaceKey key) {
    auto r = must_submit(owner, "RegisterExecutor",
                         RegisterExecutorArgs{key}.serialize());
    ASSERT_TRUE(r.success) << r.error;
  }

  void register_slots(const crypto::KeyPair& owner, InterfaceKey key,
                      std::vector<TimeSlot> slots) {
    auto r = must_submit(owner, "RegisterTimeSlot",
                         RegisterTimeSlotArgs{key, std::move(slots)}
                             .serialize());
    ASSERT_TRUE(r.success) << r.error;
  }

  static TimeSlot slot(SimTime start, SimTime end, chain::Mist price) {
    TimeSlot s;
    s.start = start;
    s.end = end;
    s.price = price;
    return s;
  }

  ApplicationPayload payload(const std::string& tag) const {
    ApplicationPayload p;
    p.bytecode = bytes_of("bytecode-" + tag);
    p.manifest = bytes_of("manifest-" + tag);
    p.parameters = {1, 2, 3};
    p.listen_port = 4500;
    return p;
  }

  chain::Blockchain chain;
  MarketplaceContract* market = nullptr;
  crypto::KeyPair as1 = crypto::KeyPair::from_seed(201);
  crypto::KeyPair as2 = crypto::KeyPair::from_seed(202);
  crypto::KeyPair initiator = crypto::KeyPair::from_seed(203);
  const InterfaceKey key1{1, 2};
  const InterfaceKey key2{2, 1};
};

TEST_F(MarketFixture, RegisterExecutorIdempotentButExclusive) {
  register_executor(as1, key1);
  EXPECT_EQ(market->registered_executors(), 1u);
  // Same owner re-registering is fine.
  auto again = must_submit(as1, "RegisterExecutor",
                           RegisterExecutorArgs{key1}.serialize());
  EXPECT_TRUE(again.success);
  // A different owner claiming the same key is rejected.
  auto steal = must_submit(as2, "RegisterExecutor",
                           RegisterExecutorArgs{key1}.serialize());
  EXPECT_FALSE(steal.success);
}

TEST_F(MarketFixture, RegisterTimeSlotRequiresOwnership) {
  register_executor(as1, key1);
  auto r = must_submit(as2, "RegisterTimeSlot",
                       RegisterTimeSlotArgs{key1, {slot(0, 100, 5)}}
                           .serialize());
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("own"), std::string::npos);
}

TEST_F(MarketFixture, RejectsOverlappingAndEmptySlots) {
  register_executor(as1, key1);
  auto bad = must_submit(as1, "RegisterTimeSlot",
                         RegisterTimeSlotArgs{key1, {slot(10, 10, 5)}}
                             .serialize());
  EXPECT_FALSE(bad.success);
  register_slots(as1, key1, {slot(0, 100, 5)});
  auto overlap = must_submit(as1, "RegisterTimeSlot",
                             RegisterTimeSlotArgs{key1, {slot(50, 150, 5)}}
                                 .serialize());
  EXPECT_FALSE(overlap.success);
}

TEST_F(MarketFixture, LookupFindsEarliestCommonWindow) {
  register_executor(as1, key1);
  register_executor(as2, key2);
  register_slots(as1, key1, {slot(0, 100, 5), slot(200, 300, 5)});
  register_slots(as2, key2, {slot(150, 260, 7)});

  LookupSlotArgs query;
  query.client_key = key1;
  query.server_key = key2;
  auto r = must_submit(initiator, "LookupSlot", query.serialize());
  ASSERT_TRUE(r.success) << r.error;
  auto quote = SlotQuote::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(quote->found);
  EXPECT_EQ(quote->window_start, 200);
  EXPECT_EQ(quote->window_end, 260);
  EXPECT_EQ(quote->total_price, 12u);
}

TEST_F(MarketFixture, LookupHonorsResourcesAndEarliestStart) {
  register_executor(as1, key1);
  register_executor(as2, key2);
  TimeSlot small = slot(0, 100, 5);
  small.cores = 1;
  TimeSlot big = slot(200, 300, 9);
  big.cores = 8;
  register_slots(as1, key1, {small, big});
  TimeSlot server_slot = slot(0, 400, 3);
  server_slot.cores = 8;
  register_slots(as2, key2, {server_slot});

  LookupSlotArgs query;
  query.client_key = key1;
  query.server_key = key2;
  query.cores = 4;  // only `big` qualifies
  auto r = must_submit(initiator, "LookupSlot", query.serialize());
  auto quote = SlotQuote::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  ASSERT_TRUE(quote->found);
  EXPECT_EQ(quote->window_start, 200);

  LookupSlotArgs late = query;
  late.cores = 1;
  late.earliest_start = 150;
  auto r2 = must_submit(initiator, "LookupSlot", late.serialize());
  auto quote2 = SlotQuote::parse(
      BytesView(r2.return_value.data(), r2.return_value.size()));
  ASSERT_TRUE(quote2->found);
  EXPECT_GE(quote2->window_start, 150);
}

TEST_F(MarketFixture, LookupNotFoundCases) {
  register_executor(as1, key1);
  register_slots(as1, key1, {slot(0, 100, 5)});
  LookupSlotArgs query;
  query.client_key = key1;
  query.server_key = key2;  // never registered
  auto r = must_submit(initiator, "LookupSlot", query.serialize());
  auto quote = SlotQuote::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  EXPECT_FALSE(quote->found);
}

struct PurchasedFixture : MarketFixture {
  void SetUp() override {
    MarketFixture::SetUp();
    register_executor(as1, key1);
    register_executor(as2, key2);
    register_slots(as1, key1, {slot(1000, 2000, 50)});
    register_slots(as2, key2, {slot(1500, 2500, 70)});
  }

  chain::Receipt purchase(chain::Mist tokens) {
    PurchaseSlotArgs args;
    args.client_key = key1;
    args.server_key = key2;
    args.client_slot = slot(1000, 2000, 50);
    args.server_slot = slot(1500, 2500, 70);
    args.client_app = payload("client");
    args.server_app = payload("server");
    return must_submit(initiator, "PurchaseSlot", args.serialize(), tokens);
  }
};

TEST_F(PurchasedFixture, PurchaseCreatesApplicationsAndEmitsEvents) {
  std::vector<std::string> deployed_keys;
  chain.subscribe(kContractName, kEventDebugletDeployed, "",
                  [&](const chain::Event& e) {
                    deployed_keys.push_back(e.key);
                  });
  auto r = purchase(120);
  ASSERT_TRUE(r.success) << r.error;
  auto receipt = PurchaseReceipt::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->window_start, 1500);
  EXPECT_EQ(receipt->window_end, 2000);
  EXPECT_EQ(deployed_keys,
            (std::vector<std::string>{"AS1#2", "AS2#1"}));

  // The application objects live on-chain with the bytecode inside.
  auto obj = chain.read_object(receipt->client_application);
  ASSERT_TRUE(obj.ok());
  auto app = ApplicationObject::parse(BytesView(obj->data(), obj->size()));
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app->executor_key, key1);
  EXPECT_EQ(app->role, 0);
  EXPECT_EQ(app->embedded_tokens, 50u);
  EXPECT_EQ(string_of(BytesView(app->payload.bytecode.data(),
                                app->payload.bytecode.size())),
            "bytecode-client");

  // The purchased slots are gone.
  EXPECT_TRUE(market->available_slots(key1).empty());
  EXPECT_TRUE(market->available_slots(key2).empty());
  EXPECT_EQ(market->applications_for(key1, key2).size(), 2u);
}

TEST_F(PurchasedFixture, PurchaseRefundsExcessTokens) {
  const chain::Address addr = chain::Address::of(initiator.public_key());
  const chain::Mist before = chain.balance(addr);
  auto r = purchase(500);  // price is 120
  ASSERT_TRUE(r.success);
  // Net spend: gas + 120 (excess 380 refunded).
  EXPECT_EQ(before - chain.balance(addr), r.gas_charged + 120);
  EXPECT_EQ(chain.escrow_balance(kContractName), 120u);
}

TEST_F(PurchasedFixture, PurchaseInsufficientTokensFails) {
  auto r = purchase(100);  // needs 120
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("below slot price"), std::string::npos);
  // Slots remain available.
  EXPECT_EQ(market->available_slots(key1).size(), 1u);
}

TEST_F(PurchasedFixture, DoublePurchaseFails) {
  ASSERT_TRUE(purchase(120).success);
  auto r = purchase(120);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("not available"), std::string::npos);
}

TEST_F(PurchasedFixture, ResultReadyPaysExecutorAndPublishes) {
  auto r = purchase(120);
  ASSERT_TRUE(r.success);
  auto receipt = *PurchaseReceipt::parse(
      BytesView(r.return_value.data(), r.return_value.size()));

  std::vector<std::string> result_events;
  chain.subscribe(kContractName, kEventResultReady,
                  std::to_string(receipt.client_application),
                  [&](const chain::Event& e) {
                    result_events.push_back(e.key);
                  });

  const chain::Address as1_addr = chain::Address::of(as1.public_key());
  const chain::Mist before = chain.balance(as1_addr);
  ResultReadyArgs args;
  args.application = receipt.client_application;
  args.result = bytes_of("certified-result-bytes");
  auto rr = must_submit(as1, "ResultReady", args.serialize());
  ASSERT_TRUE(rr.success) << rr.error;
  // as1 earned the embedded 50 tokens (minus its gas for the call).
  EXPECT_EQ(chain.balance(as1_addr) + rr.gas_charged - before, 50u);
  EXPECT_EQ(result_events.size(), 1u);

  // LookupResult returns the stored result.
  LookupResultArgs lookup;
  lookup.application = receipt.client_application;
  auto view = chain.view(kContractName, "LookupResult", lookup.serialize());
  ASSERT_TRUE(view.ok());
  auto entry = ResultEntry::parse(BytesView(view->data(), view->size()));
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->found);
  EXPECT_EQ(string_of(BytesView(entry->result.data(), entry->result.size())),
            "certified-result-bytes");
  // The result object itself is on-chain.
  EXPECT_TRUE(chain.object_exists(entry->result_object));
}

TEST_F(PurchasedFixture, ResultReadyOnlyByAssignedExecutor) {
  auto r = purchase(120);
  auto receipt = *PurchaseReceipt::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  ResultReadyArgs args;
  args.application = receipt.client_application;  // assigned to as1
  args.result = bytes_of("forged");
  auto rr = must_submit(as2, "ResultReady", args.serialize());
  EXPECT_FALSE(rr.success);
  EXPECT_NE(rr.error.find("not the executor"), std::string::npos);
}

TEST_F(PurchasedFixture, ResultReadyRejectsDoubleReport) {
  auto r = purchase(120);
  auto receipt = *PurchaseReceipt::parse(
      BytesView(r.return_value.data(), r.return_value.size()));
  ResultReadyArgs args;
  args.application = receipt.client_application;
  args.result = bytes_of("first");
  ASSERT_TRUE(must_submit(as1, "ResultReady", args.serialize()).success);
  args.result = bytes_of("second, revised to look better");
  auto again = must_submit(as1, "ResultReady", args.serialize());
  EXPECT_FALSE(again.success);
  EXPECT_NE(again.error.find("already reported"), std::string::npos);
}

TEST_F(PurchasedFixture, LookupResultUnknownApplication) {
  LookupResultArgs lookup;
  lookup.application = 9999;
  auto view = chain.view(kContractName, "LookupResult", lookup.serialize());
  ASSERT_TRUE(view.ok());
  auto entry = ResultEntry::parse(BytesView(view->data(), view->size()));
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->found);
}

TEST_F(MarketFixture, UnknownFunctionRejected) {
  auto r = must_submit(initiator, "Nonsense", {});
  EXPECT_FALSE(r.success);
}

TEST(MarketplaceTypes, AllCodecsRoundTrip) {
  RegisterExecutorArgs re{InterfaceKey{64500, 9}};
  EXPECT_EQ(RegisterExecutorArgs::parse(
                BytesView(re.serialize().data(), re.serialize().size()))
                ->key,
            re.key);

  TimeSlot s;
  s.cores = 4;
  s.memory_bytes = 123456;
  s.bandwidth_bps = 999;
  s.start = -5;
  s.end = 100;
  s.price = 77;
  RegisterTimeSlotArgs rts{InterfaceKey{1, 1}, {s, s}};
  const Bytes rts_b = rts.serialize();
  auto rts_back = RegisterTimeSlotArgs::parse(
      BytesView(rts_b.data(), rts_b.size()));
  ASSERT_TRUE(rts_back.ok());
  EXPECT_EQ(rts_back->slots.size(), 2u);
  EXPECT_EQ(rts_back->slots[0], s);

  ApplicationPayload p;
  p.bytecode = bytes_of("code");
  p.manifest = bytes_of("manifest");
  p.parameters = {-1, 0, 42};
  p.listen_port = 40123;
  const Bytes pb = p.serialize();
  auto p_back = ApplicationPayload::parse(BytesView(pb.data(), pb.size()));
  ASSERT_TRUE(p_back.ok());
  EXPECT_EQ(p_back->parameters, p.parameters);
  EXPECT_EQ(p_back->listen_port, 40123);

  ApplicationObject obj;
  obj.executor_key = InterfaceKey{3, 4};
  obj.role = 1;
  obj.window_start = 10;
  obj.window_end = 20;
  obj.embedded_tokens = 5;
  obj.payload = p;
  const Bytes ob = obj.serialize();
  auto obj_back = ApplicationObject::parse(BytesView(ob.data(), ob.size()));
  ASSERT_TRUE(obj_back.ok());
  EXPECT_EQ(obj_back->executor_key, obj.executor_key);
  EXPECT_EQ(obj_back->embedded_tokens, 5u);

  // Truncation fails cleanly for every codec.
  EXPECT_FALSE(ApplicationObject::parse(BytesView(ob.data(), 3)).ok());
  EXPECT_FALSE(RegisterTimeSlotArgs::parse(BytesView(rts_b.data(), 5)).ok());
}

}  // namespace
}  // namespace debuglet::marketplace
