// System-level tests: marketplace economics end to end, slot-calendar
// behaviour over time, and asymmetric routing (pinned paths).
#include <gtest/gtest.h>

#include "core/debuglet.hpp"

namespace debuglet {
namespace {

using net::Protocol;

TEST(SystemEconomics, TokenFlowBalances) {
  core::SystemConfig config;
  config.slot_price = 5'000'000;  // 0.005 SUI per slot
  core::DebugletSystem system(simnet::build_chain_scenario(3, 11, 5.0),
                              config);
  core::Initiator initiator(system, 12, 500'000'000'000ULL);

  const chain::Address client_as =
      system.agent({1, 2}).value()->address();
  const chain::Address server_as =
      system.agent({3, 1}).value()->address();
  const chain::Mist client_before = system.chain().balance(client_as);
  const chain::Mist server_before = system.chain().balance(server_as);
  const chain::Mist initiator_before = initiator.balance();

  auto handle = initiator.purchase_rtt_measurement({1, 2}, {3, 1},
                                                   Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  EXPECT_EQ(handle->price_paid, 2 * config.slot_price);

  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  // Each hosting AS earned exactly its slot price; it also paid gas for
  // RegisterExecutor/RegisterTimeSlot (bootstrap, before the snapshot) and
  // two ResultReady calls here (AS1 and AS3 run one deployment each).
  // Compare against the known gas cost of a ResultReady: computation +
  // storage of the certified result object.
  const chain::Mist client_after = system.chain().balance(client_as);
  const chain::Mist server_after = system.chain().balance(server_as);
  // Earned slot price minus one ResultReady gas each; the result object
  // storage varies with the output size, so check the earning direction
  // and that no tokens vanished: initiator's spend covers gas + prices.
  EXPECT_GT(client_after + 1'000'000'000, client_before)
      << "client AS roughly breaks even on a cheap measurement";
  EXPECT_GT(server_after + 1'000'000'000, server_before);
  EXPECT_EQ(initiator_before - initiator.balance(), initiator.total_spent());
  // Escrow never leaks: whatever remains escrowed is the contract's.
  EXPECT_EQ(system.chain().escrow_balance(marketplace::kContractName), 0u)
      << "all embedded tokens paid out after both ResultReady calls";
}

TEST(SystemEconomics, ReclaimRefundsStorageRebate) {
  core::DebugletSystem system(simnet::build_chain_scenario(3, 15, 5.0));
  core::Initiator initiator(system, 16, 500'000'000'000ULL);
  auto handle = initiator.purchase_rtt_measurement({1, 2}, {3, 1},
                                                   Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok());

  // Too early: results not reported yet.
  EXPECT_FALSE(initiator.reclaim(*handle).ok());

  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  auto rebate = initiator.reclaim(*handle);
  ASSERT_TRUE(rebate.ok()) << rebate.error_message();
  // The application objects carried the Debuglet bytecodes (~1 kB each),
  // so the rebate exceeds two per-object minimums.
  EXPECT_GT(*rebate, 2 * system.chain().config().gas.rebate_per_object);
  EXPECT_FALSE(system.chain().object_exists(handle->client_application));
  EXPECT_FALSE(system.chain().object_exists(handle->server_application));
  // Results remain available after the applications are freed.
  EXPECT_TRUE(initiator.collect(*handle).ok())
      << "results are stored in their own objects";
  // Double reclaim fails.
  EXPECT_FALSE(initiator.reclaim(*handle).ok());
}

TEST(SystemEconomics, OnlyPurchaserMayReclaim) {
  core::DebugletSystem system(simnet::build_chain_scenario(2, 17, 5.0));
  core::Initiator buyer(system, 18, 500'000'000'000ULL);
  core::Initiator stranger(system, 19, 500'000'000'000ULL);
  auto handle = buyer.purchase_rtt_measurement({1, 2}, {2, 1},
                                               Protocol::kUdp, 3, 100);
  ASSERT_TRUE(handle.ok());
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = buyer.collect(*handle);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(outcome.ok());
  auto theft = stranger.reclaim(*handle);
  ASSERT_FALSE(theft.ok());
  EXPECT_NE(theft.error_message().find("only the purchasing initiator"),
            std::string::npos);
  EXPECT_TRUE(buyer.reclaim(*handle).ok());
}

TEST(SystemSlots, SequentialMeasurementsGetLaterWindows) {
  core::DebugletSystem system(simnet::build_chain_scenario(3, 21, 5.0));
  core::Initiator initiator(system, 22, 500'000'000'000ULL);

  auto h1 = initiator.purchase_rtt_measurement({1, 2}, {3, 1},
                                               Protocol::kUdp, 5, 100);
  ASSERT_TRUE(h1.ok());
  auto h2 = initiator.purchase_rtt_measurement({1, 2}, {3, 1},
                                               Protocol::kUdp, 5, 100);
  ASSERT_TRUE(h2.ok());
  // The first purchase consumed the earliest slot pair; the second must
  // land strictly later and not overlap.
  EXPECT_GE(h2->window_start, h1->window_end);

  // Both still complete.
  SimTime deadline = h2->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> o1 = fail("pending"), o2 = fail("pending");
  for (int i = 0; i < 6 && (!o1 || !o2); ++i) {
    system.queue().run_until(deadline);
    if (!o1) o1 = initiator.collect(*h1);
    if (!o2) o2 = initiator.collect(*h2);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(o1.ok()) << o1.error_message();
  ASSERT_TRUE(o2.ok()) << o2.error_message();
}

TEST(SystemSlots, EarliestStartRespected) {
  core::DebugletSystem system(simnet::build_chain_scenario(3, 31, 5.0));
  core::Initiator initiator(system, 32, 500'000'000'000ULL);
  const SimTime not_before = duration::minutes(30);
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {3, 1}, Protocol::kUdp, 5, 100, not_before);
  ASSERT_TRUE(handle.ok());
  EXPECT_GE(handle->window_end, not_before);
}

TEST(SystemSlots, ExhaustedCalendarFailsCleanly) {
  core::SystemConfig config;
  config.slot_horizon = duration::seconds(40);  // only two 20 s slots
  core::DebugletSystem system(simnet::build_chain_scenario(2, 41, 5.0),
                              config);
  core::Initiator initiator(system, 42, 500'000'000'000ULL);
  auto h1 = initiator.purchase_rtt_measurement({1, 2}, {2, 1},
                                               Protocol::kUdp, 3, 100);
  ASSERT_TRUE(h1.ok()) << h1.error_message();
  auto h2 = initiator.purchase_rtt_measurement({1, 2}, {2, 1},
                                               Protocol::kUdp, 3, 100);
  ASSERT_TRUE(h2.ok()) << h2.error_message();
  auto h3 = initiator.purchase_rtt_measurement({1, 2}, {2, 1},
                                               Protocol::kUdp, 3, 100);
  ASSERT_FALSE(h3.ok());
  EXPECT_NE(h3.error_message().find("no common execution slot"),
            std::string::npos);
}

// --- Asymmetric routing (paper §III: "Internet paths may not be
// symmetric") --------------------------------------------------------------

TEST(AsymmetricRouting, PinnedPathsDiverge) {
  // Diamond: 1 - {2 | 3} - 4, with AS2 fast and AS3 slow.
  topology::Topology topo;
  for (topology::AsNumber a : {1u, 2u, 3u, 4u})
    ASSERT_TRUE(topo.add_as(a, "AS" + std::to_string(a)).ok());
  ASSERT_TRUE(topo.add_link({1, 1}, {2, 1}).ok());
  ASSERT_TRUE(topo.add_link({2, 2}, {4, 1}).ok());
  ASSERT_TRUE(topo.add_link({1, 2}, {3, 1}).ok());
  ASSERT_TRUE(topo.add_link({3, 2}, {4, 2}).ok());

  simnet::EventQueue queue;
  simnet::SimulatedNetwork network(queue, std::move(topo), 51);
  simnet::LinkConfig fast;
  fast.propagation_ms = 2.0;
  simnet::LinkConfig slow;
  slow.propagation_ms = 20.0;
  ASSERT_TRUE(network.configure_link_symmetric({1, 1}, {2, 1}, fast).ok());
  ASSERT_TRUE(network.configure_link_symmetric({2, 2}, {4, 1}, fast).ok());
  ASSERT_TRUE(network.configure_link_symmetric({1, 2}, {3, 1}, slow).ok());
  ASSERT_TRUE(network.configure_link_symmetric({3, 2}, {4, 2}, slow).ok());
  for (topology::AsNumber a : {1u, 2u, 3u, 4u})
    network.configure_transit(a, {0.05, 0.0, 0.0});

  // Forward 1->4 via fast AS2; reverse 4->1 via slow AS3.
  auto via2 = network.topology().shortest_path(1, 4);
  ASSERT_TRUE(via2.ok());
  ASSERT_EQ(via2->hops[1].asn, 2u);
  auto paths_back = network.topology().find_paths(4, 1, 10);
  ASSERT_EQ(paths_back.size(), 2u);
  const topology::AsPath via3_back =
      paths_back[0].hops[1].asn == 3 ? paths_back[0] : paths_back[1];
  ASSERT_EQ(via3_back.hops[1].asn, 3u);
  network.pin_path(1, 4, *via2);
  network.pin_path(4, 1, via3_back);

  // An echoed probe sees fast out (4 ms), slow back (40 ms).
  simnet::EchoServerHost server(network, network.allocate_host_address(4));
  ASSERT_TRUE(network.attach_host(server.address(), &server).ok());
  const auto client_addr = network.allocate_host_address(1);
  simnet::ProbeClientConfig cfg;
  cfg.server = server.address();
  cfg.probe_count = 10;
  cfg.interval = duration::milliseconds(100);
  cfg.protocols = {Protocol::kUdp};
  simnet::ProbeClientHost client(network, client_addr, cfg, 52);
  ASSERT_TRUE(network.attach_host(client_addr, &client).ok());
  client.start();
  queue.run();
  // RTT ≈ 4 + 40 + transit; symmetric routing would give 8 or 80.
  EXPECT_NEAR(client.report().rtt_ms.at(Protocol::kUdp).mean(), 44.2, 1.0);
}

TEST(SystemConfig, CustomExecutorPolicyEnforcedThroughMarketplace) {
  core::SystemConfig config;
  config.executor.policy.max_packets = 4;  // very strict ASes
  core::DebugletSystem system(simnet::build_chain_scenario(2, 61, 5.0),
                              config);
  core::Initiator initiator(system, 62, 500'000'000'000ULL);
  // 10 probes exceed the policy: the purchase succeeds (the contract does
  // not inspect manifests) but the executor rejects at deployment, so no
  // result is ever published.
  auto handle = initiator.purchase_rtt_measurement({1, 2}, {2, 1},
                                                   Protocol::kUdp, 10, 100);
  ASSERT_TRUE(handle.ok());
  system.queue().run_until(handle->window_end + duration::seconds(10));
  EXPECT_FALSE(initiator.collect(*handle).ok());
}

}  // namespace
}  // namespace debuglet
