// Decentralized discovery (§VI-A) and bilateral execution tests.
#include <gtest/gtest.h>

#include "core/debuglet.hpp"

namespace debuglet::core {
namespace {

using net::Protocol;

TEST(Discovery, FloodReachesEveryAs) {
  simnet::Scenario s = simnet::build_chain_scenario(6, 55);
  DiscoveryGossip gossip(*s.network, duration::milliseconds(50));
  gossip.originate_all();
  EXPECT_FALSE(gossip.converged()) << "propagation takes simulated time";
  s.queue->run();
  EXPECT_TRUE(gossip.converged());
  // Farthest advertisement crosses 5 hops at 50 ms each.
  EXPECT_EQ(gossip.last_arrival(), duration::milliseconds(250));

  // Every AS knows every other AS's executors.
  for (topology::AsNumber viewer : s.network->topology().as_numbers()) {
    EXPECT_EQ(gossip.known_at(viewer).size(), 6u);
  }
  auto adv = gossip.lookup(1, 6);
  ASSERT_TRUE(adv.ok());
  EXPECT_EQ(adv->origin, 6u);
  ASSERT_EQ(adv->executors.size(), 1u);  // chain tail has one interface
  EXPECT_EQ(adv->executors[0], (topology::InterfaceKey{6, 1}));
  EXPECT_EQ(adv->addresses[0],
            s.network->topology().address_of({6, 1}));
}

TEST(Discovery, DuplicateSuppressionBoundsMessages) {
  simnet::Scenario s = simnet::build_chain_scenario(5, 56);
  DiscoveryGossip gossip(*s.network);
  gossip.originate_all();
  s.queue->run();
  // On a 5-node chain each advertisement traverses each directed edge at
  // most once: 5 origins x 8 directed edges = 40 messages upper bound.
  EXPECT_LE(gossip.messages_sent(), 40u);
  EXPECT_TRUE(gossip.converged());
}

TEST(Discovery, LookupBeforeArrivalFails) {
  simnet::Scenario s = simnet::build_chain_scenario(4, 57);
  DiscoveryGossip gossip(*s.network, duration::milliseconds(100));
  gossip.originate(4);
  EXPECT_FALSE(gossip.lookup(1, 4).ok());
  s.queue->run_until(duration::milliseconds(150));
  EXPECT_FALSE(gossip.lookup(1, 4).ok()) << "3 hops need 300 ms";
  EXPECT_TRUE(gossip.lookup(3, 4).ok()) << "1 hop done after 100 ms";
  s.queue->run();
  EXPECT_TRUE(gossip.lookup(1, 4).ok());
}

TEST(Discovery, ReoriginationSupersedes) {
  simnet::Scenario s = simnet::build_chain_scenario(3, 58);
  DiscoveryGossip gossip(*s.network);
  gossip.originate(1);
  s.queue->run();
  const auto first = gossip.lookup(3, 1);
  ASSERT_TRUE(first.ok());
  gossip.originate(1);
  s.queue->run();
  const auto second = gossip.lookup(3, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->sequence, first->sequence);
}

TEST(Bilateral, DirectExecutionWithoutChain) {
  simnet::Scenario s = simnet::build_chain_scenario(4, 59, 5.0);
  const crypto::KeyPair as1_key = crypto::KeyPair::from_seed(71);
  const crypto::KeyPair as4_key = crypto::KeyPair::from_seed(74);
  executor::ExecutorService client_exec(*s.network, simnet::chain_egress(0),
                                        as1_key, {}, 81);
  executor::ExecutorService server_exec(*s.network,
                                        simnet::chain_ingress(3), as4_key, {},
                                        82);

  // Discover the peer executor through routing metadata, then negotiate
  // directly (no marketplace, no chain).
  DiscoveryGossip gossip(*s.network);
  gossip.originate_all();
  s.queue->run();
  auto adv = gossip.lookup(1, 4);
  ASSERT_TRUE(adv.ok());
  const net::Ipv4Address server_addr = adv->addresses[0];
  ASSERT_EQ(server_addr, server_exec.address());

  constexpr std::uint16_t kPort = 47000;
  apps::ProbeClientParams client_params;
  client_params.protocol = Protocol::kUdp;
  client_params.server = server_addr;
  client_params.server_port = kPort;
  client_params.probe_count = 6;
  client_params.interval_ms = 100;
  client_params.recv_timeout_ms = 500;
  executor::DebugletApp client_app;
  client_app.application_id = 1;
  client_app.module_bytes = apps::make_probe_client_debuglet().serialize();
  client_app.manifest = apps::client_manifest(Protocol::kUdp, server_addr, 6,
                                              duration::seconds(30));
  client_app.parameters = client_params.to_parameters();

  apps::EchoServerParams server_params;
  server_params.protocol = Protocol::kUdp;
  server_params.idle_timeout_ms = 2000;
  executor::DebugletApp server_app;
  server_app.application_id = 2;
  server_app.module_bytes = apps::make_echo_server_debuglet().serialize();
  server_app.manifest = apps::server_manifest(
      Protocol::kUdp, client_exec.address(), 20, duration::seconds(30));
  server_app.parameters = server_params.to_parameters();
  server_app.listen_port = kPort;

  std::optional<BilateralOutcome> outcome;
  ASSERT_TRUE(run_bilateral(client_exec, server_exec, std::move(client_app),
                            std::move(server_app), duration::seconds(1),
                            [&](const BilateralOutcome& o) { outcome = o; })
                  .ok());
  s.queue->run();

  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->client.record.trapped)
      << outcome->client.record.trap_message;
  EXPECT_EQ(outcome->client.record.exit_value, 6);
  // The results are still AS-signed even though nothing is on a chain.
  EXPECT_TRUE(executor::verify_certified(outcome->client));
  EXPECT_TRUE(executor::verify_certified(outcome->server));
  const crypto::PublicKey pk1 = as1_key.public_key();
  EXPECT_TRUE(executor::verify_certified(outcome->client, &pk1));
}

TEST(Bilateral, RejectsUndeployableApp) {
  simnet::Scenario s = simnet::build_chain_scenario(2, 60);
  executor::ExecutorService a(*s.network, simnet::chain_egress(0),
                              crypto::KeyPair::from_seed(1), {}, 1);
  executor::ExecutorService b(*s.network, simnet::chain_ingress(1),
                              crypto::KeyPair::from_seed(2), {}, 2);
  executor::DebugletApp bad;
  bad.module_bytes = bytes_of("garbage");
  executor::DebugletApp also_bad = bad;
  EXPECT_FALSE(run_bilateral(a, b, std::move(bad), std::move(also_bad), 0,
                             [](const BilateralOutcome&) {})
                   .ok());
}

}  // namespace
}  // namespace debuglet::core
