#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"
#include "util/rng.hpp"

namespace debuglet::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 test vectors) ---------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i)
    data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  const Digest one_shot = sha256(BytesView(data.data(), data.size()));
  Sha256 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t n = std::min(step, data.size() - pos);
    h.update(BytesView(data.data() + pos, n));
    pos += n;
    step = (step * 7 + 3) % 977 + 1;
  }
  EXPECT_EQ(h.finalize(), one_shot);
}

TEST(Sha256, FinalizeTwiceThrows) {
  Sha256 h;
  h.update("x");
  h.finalize();
  EXPECT_THROW(h.finalize(), std::logic_error);
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = bytes_of("Hi There");
  EXPECT_EQ(hmac_sha256(BytesView(key.data(), key.size()),
                        BytesView(msg.data(), msg.size()))
                .hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = bytes_of("Jefe");
  const Bytes msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(hmac_sha256(BytesView(key.data(), key.size()),
                        BytesView(msg.data(), msg.size()))
                .hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);  // RFC 4231 case 6
  const Bytes msg = bytes_of("Test Using Larger Than Block-Size Key - "
                             "Hash Key First");
  EXPECT_EQ(hmac_sha256(BytesView(key.data(), key.size()),
                        BytesView(msg.data(), msg.size()))
                .hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- U256 ----------------------------------------------------------------

TEST(U256, HexRoundTrip) {
  auto v = U256::from_hex("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, BytesRoundTrip) {
  const U256 v(0xDEADBEEFCAFEULL);
  const Bytes b = v.to_be_bytes();
  ASSERT_EQ(b.size(), 32u);
  EXPECT_EQ(U256::from_be_bytes(BytesView(b.data(), b.size())), v);
}

TEST(U256, AddCarryPropagates) {
  auto max = *U256::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  bool carry = false;
  const U256 sum = add(max, U256(1), &carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(sum.is_zero());
}

TEST(U256, SubBorrowWraps) {
  bool borrow = false;
  const U256 diff = sub(U256(0), U256(1), &borrow);
  EXPECT_TRUE(borrow);
  EXPECT_EQ(diff.hex(),
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
}

TEST(U256, MulWideSmall) {
  const U512 p = mul_wide(U256(0xFFFFFFFFFFFFFFFFULL), U256(2));
  EXPECT_EQ(p.limbs[0], 0xFFFFFFFFFFFFFFFEULL);
  EXPECT_EQ(p.limbs[1], 1ULL);
}

TEST(U256, ModMatchesSmallArithmetic) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64() >> 1;
    const std::uint64_t b = rng.next_u64() >> 1;
    const std::uint64_t m = (rng.next_u64() >> 32) + 2;
    const U256 r = mul_mod(U256(a), U256(b), U256(m));
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % m);
    EXPECT_EQ(r, U256(expected));
  }
}

TEST(U256, PowModSmall) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401.
  EXPECT_EQ(pow_mod(U256(3), U256(20), U256(1000)), U256(401));
  // Fermat: a^(p-1) = 1 mod p for prime p = 1'000'000'007.
  const U256 p(1'000'000'007ULL);
  EXPECT_EQ(pow_mod(U256(12345), U256(1'000'000'006ULL), p), U256(1));
}

TEST(U256, PowModLargeFermat) {
  // The group prime p is prime, so g^(p-1) == 1 (mod p).
  const U256& p = group_prime();
  bool borrow = false;
  const U256 pm1 = sub(p, U256(1), &borrow);
  EXPECT_EQ(pow_mod(group_generator(), pm1, p), U256(1));
}

TEST(U256, AlgebraicIdentitiesRandomized) {
  Rng rng(33);
  const U256& m = group_prime();
  for (int i = 0; i < 50; ++i) {
    Bytes ab(32), bb(32);
    for (auto& x : ab) x = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& x : bb) x = static_cast<std::uint8_t>(rng.next_u64());
    const U256 a = mod(U256::from_be_bytes(BytesView(ab.data(), 32)), m);
    const U256 b = mod(U256::from_be_bytes(BytesView(bb.data(), 32)), m);
    // Commutativity.
    EXPECT_EQ(add_mod(a, b, m), add_mod(b, a, m));
    EXPECT_EQ(mul_mod(a, b, m), mul_mod(b, a, m));
    // a - b + b == a.
    EXPECT_EQ(add_mod(sub_mod(a, b, m), b, m), a);
    // (a*b) * 1 == a*b.
    EXPECT_EQ(mul_mod(mul_mod(a, b, m), U256(1), m), mul_mod(a, b, m));
  }
}

// --- Schnorr -------------------------------------------------------------

TEST(Schnorr, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::from_seed(1);
  const Signature sig = kp.sign("hello debuglet");
  EXPECT_TRUE(verify(kp.public_key(), "hello debuglet", sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  const KeyPair kp = KeyPair::from_seed(2);
  const Signature sig = kp.sign("original");
  EXPECT_FALSE(verify(kp.public_key(), "tampered", sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const KeyPair kp = KeyPair::from_seed(3);
  const KeyPair other = KeyPair::from_seed(4);
  const Signature sig = kp.sign("msg");
  EXPECT_FALSE(verify(other.public_key(), "msg", sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  const KeyPair kp = KeyPair::from_seed(5);
  Signature sig = kp.sign("msg");
  sig.s = add_mod(sig.s, U256(1), group_prime());
  EXPECT_FALSE(verify(kp.public_key(), "msg", sig));
}

TEST(Schnorr, DeterministicSignatures) {
  const KeyPair kp = KeyPair::from_seed(6);
  EXPECT_EQ(kp.sign("same"), kp.sign("same"));
  EXPECT_NE(kp.sign("one"), kp.sign("two"));
}

TEST(Schnorr, SignatureBytesRoundTrip) {
  const KeyPair kp = KeyPair::from_seed(7);
  const Signature sig = kp.sign("serialize me");
  const Bytes b = sig.to_bytes();
  ASSERT_EQ(b.size(), 64u);
  auto back = Signature::from_bytes(BytesView(b.data(), b.size()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, sig);
  EXPECT_FALSE(Signature::from_bytes(BytesView(b.data(), 63)).ok());
}

TEST(Schnorr, DistinctSeedsDistinctKeys) {
  EXPECT_NE(KeyPair::from_seed(8).public_key().y,
            KeyPair::from_seed(9).public_key().y);
}

class SchnorrMany : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrMany, CrossVerification) {
  const KeyPair kp = KeyPair::from_seed(GetParam());
  BytesWriter w;
  w.u64(GetParam() * 7919);
  w.str("cross-verification payload");
  const BytesView msg(w.bytes().data(), w.bytes().size());
  const Signature sig = kp.sign(msg);
  EXPECT_TRUE(verify(kp.public_key(), msg, sig));
  // A different key from an adjacent seed must not verify.
  const KeyPair other = KeyPair::from_seed(GetParam() + 1000);
  EXPECT_FALSE(verify(other.public_key(), msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrMany,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --- Merkle --------------------------------------------------------------

TEST(Merkle, SingleLeafProof) {
  const std::vector<Bytes> leaves = {bytes_of("only")};
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.leaf_count(), 1u);
  const MerkleProof proof = tree.prove(0);
  const Bytes leaf = bytes_of("only");
  EXPECT_TRUE(merkle_verify(tree.root(), BytesView(leaf.data(), leaf.size()),
                            proof));
}

TEST(Merkle, AllLeavesProve) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 13; ++i)
    leaves.push_back(bytes_of("leaf-" + std::to_string(i)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_TRUE(merkle_verify(
        tree.root(), BytesView(leaves[i].data(), leaves[i].size()),
        tree.prove(i)))
        << "leaf " << i;
  }
}

TEST(Merkle, WrongLeafFailsProof) {
  std::vector<Bytes> leaves = {bytes_of("a"), bytes_of("b"), bytes_of("c")};
  MerkleTree tree(leaves);
  const Bytes wrong = bytes_of("x");
  EXPECT_FALSE(merkle_verify(tree.root(),
                             BytesView(wrong.data(), wrong.size()),
                             tree.prove(1)));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Bytes> leaves = {bytes_of("a"), bytes_of("b"), bytes_of("c"),
                               bytes_of("d")};
  MerkleTree original(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].push_back('!');
    EXPECT_NE(MerkleTree(mutated).root(), original.root()) << "leaf " << i;
  }
}

TEST(Merkle, EmptyTreeHasSentinelRoot) {
  MerkleTree a({}), b({});
  EXPECT_EQ(a.root(), b.root());
  EXPECT_NE(a.root(), MerkleTree({bytes_of("")}).root());
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree tree({bytes_of("a")});
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(Merkle, LeafNodeDomainSeparation) {
  // A node hash of two leaf hashes must not collide with any leaf hash.
  const Bytes leaf = bytes_of("payload");
  const Digest lh = merkle_leaf_hash(BytesView(leaf.data(), leaf.size()));
  EXPECT_NE(lh, sha256(BytesView(leaf.data(), leaf.size())));
}

}  // namespace
}  // namespace debuglet::crypto
