// Shared RetryPolicy backoff semantics and the RetryObs counters.
#include <gtest/gtest.h>

#include "core/retry.hpp"

#include "core/initiator.hpp"
#include "obs/metrics.hpp"

namespace debuglet::core {
namespace {

TEST(RetryPolicy, FirstAttemptIsFree) {
  RetryPolicy policy;
  Rng rng(1);
  EXPECT_EQ(policy.delay_before(1, rng), 0);
}

TEST(RetryPolicy, ExponentialGrowthWithoutJitter) {
  RetryPolicy policy;
  policy.base_delay = duration::milliseconds(100);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(policy.delay_before(2, rng), duration::milliseconds(100));
  EXPECT_EQ(policy.delay_before(3, rng), duration::milliseconds(200));
  EXPECT_EQ(policy.delay_before(4, rng), duration::milliseconds(400));
  EXPECT_EQ(policy.delay_before(5, rng), duration::milliseconds(800));
}

TEST(RetryPolicy, FlatScheduleWithUnitMultiplier) {
  // The remote-stats scraper's historical timing: a flat per-attempt wait.
  RetryPolicy policy{6, duration::milliseconds(500), 1.0, 0.0};
  Rng rng(1);
  for (std::uint32_t attempt = 2; attempt <= 6; ++attempt)
    EXPECT_EQ(policy.delay_before(attempt, rng),
              duration::milliseconds(500));
}

TEST(RetryPolicy, ZeroJitterDoesNotPerturbRngStream) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  Rng used(42), untouched(42);
  (void)policy.delay_before(3, used);
  (void)policy.delay_before(4, used);
  // The stream must be exactly where a policy-free run would be.
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(used.uniform(0.0, 1.0), untouched.uniform(0.0, 1.0));
}

TEST(RetryPolicy, JitterStaysWithinBoundsAndIsSeedDeterministic) {
  RetryPolicy policy;
  policy.base_delay = duration::milliseconds(400);
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  Rng a(7), b(7), c(8);
  bool saw_different_from_c = false;
  for (std::uint32_t attempt = 2; attempt <= 6; ++attempt) {
    const SimDuration nominal =
        duration::milliseconds(400) *
        static_cast<SimDuration>(1 << (attempt - 2));
    const SimDuration da = policy.delay_before(attempt, a);
    EXPECT_EQ(da, policy.delay_before(attempt, b))
        << "equal seeds must give identical backoff";
    EXPECT_GE(da, static_cast<SimDuration>(0.74 * nominal));
    EXPECT_LE(da, static_cast<SimDuration>(1.26 * nominal));
    saw_different_from_c |= da != policy.delay_before(attempt, c);
  }
  EXPECT_TRUE(saw_different_from_c)
      << "different seeds should jitter differently";
}

TEST(RetryObs, CountsAttemptsRetriesAndGiveUps) {
  obs::ScopedRegistry scoped;
  RetryObs obs("unit_test_op");
  obs.attempt();
  obs.attempt();
  obs.retry(duration::milliseconds(250));
  obs.gave_up();
  const obs::Labels labels{{"op", "unit_test_op"}};
  EXPECT_EQ(scoped.get().counter("core.retry.attempts", labels).value(), 2u);
  EXPECT_EQ(scoped.get().counter("core.retry.retries", labels).value(), 1u);
  EXPECT_EQ(scoped.get().counter("core.retry.gave_up", labels).value(), 1u);
  EXPECT_EQ(scoped.get().histogram("core.retry.backoff_ms", labels).count(),
            1u);
}

TEST(CollectErrorKind, NamesAreStable) {
  // Error strings are prefixed with these names; retry logic must branch
  // on the enum, but humans grep for the prefixes.
  EXPECT_STREQ(collect_error_name(CollectErrorKind::kNone), "ok");
  EXPECT_STREQ(collect_error_name(CollectErrorKind::kNotPublished),
               "not-published");
  EXPECT_STREQ(collect_error_name(CollectErrorKind::kVerificationFailed),
               "verification-failed");
  EXPECT_STREQ(collect_error_name(CollectErrorKind::kOther), "other");
}

}  // namespace
}  // namespace debuglet::core
