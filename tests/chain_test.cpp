#include <gtest/gtest.h>

#include "chain/chain.hpp"

namespace debuglet::chain {
namespace {

// A small test contract exercising objects, escrow and events.
class CounterContract : public Contract {
 public:
  std::string name() const override { return "counter"; }

  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "increment") {
      ++count_;
      BytesWriter w;
      w.u64(count_);
      ctx.emit_event("Incremented", std::to_string(count_), Bytes{});
      return w.take();
    }
    if (function == "store") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      BytesWriter w;
      w.u64(*id);
      return w.take();
    }
    if (function == "erase") {
      BytesReader r(args);
      auto id = r.u64();
      if (!id) return id.error();
      if (auto s = ctx.delete_object(*id); !s) return s.error();
      return Bytes{};
    }
    if (function == "payout") {
      if (auto s = ctx.pay_from_escrow(ctx.sender(), ctx.attached_tokens());
          !s)
        return s.error();
      return Bytes{};
    }
    if (function == "boom") return fail("deliberate failure");
    return fail("unknown function");
  }

 private:
  std::uint64_t count_ = 0;
};

struct ChainFixture : ::testing::Test {
  void SetUp() override {
    ASSERT_TRUE(chain.register_contract(
        std::make_unique<CounterContract>()).ok());
    chain.mint(Address::of(alice.public_key()), 100'000'000'000);
    chain.mint(Address::of(bob.public_key()), 100'000'000'000);
  }

  Blockchain chain;
  crypto::KeyPair alice = crypto::KeyPair::from_seed(101);
  crypto::KeyPair bob = crypto::KeyPair::from_seed(102);
};

TEST_F(ChainFixture, SubmitExecutesAndCommits) {
  auto tx = chain.make_transaction(alice, "counter", "increment", {});
  auto receipt = chain.submit(tx);
  ASSERT_TRUE(receipt.ok()) << receipt.error_message();
  EXPECT_TRUE(receipt->success);
  BytesReader r(BytesView(receipt->return_value.data(),
                          receipt->return_value.size()));
  EXPECT_EQ(*r.u64(), 1u);
  EXPECT_EQ(chain.height(), 2u);  // genesis + 1
  EXPECT_TRUE(chain.verify_integrity());
}

TEST_F(ChainFixture, GasChargedMatchesSchedule) {
  const Mist before = chain.balance(Address::of(alice.public_key()));
  auto receipt = chain.submit(
      chain.make_transaction(alice, "counter", "increment", {}));
  ASSERT_TRUE(receipt.ok());
  const Mist after = chain.balance(Address::of(alice.public_key()));
  EXPECT_EQ(before - after, receipt->gas_charged);
  EXPECT_EQ(receipt->gas_charged, chain.config().gas.computation_fee)
      << "no storage -> computation only";
}

TEST_F(ChainFixture, StorageCostAndRebateMatchTable2Shape) {
  const GasSchedule& gas = chain.config().gas;
  const Address a = Address::of(alice.public_key());
  for (std::size_t size : {0u, 100u, 1024u, 5120u, 10240u}) {
    const Mist before = chain.balance(a);
    auto receipt = chain.submit(chain.make_transaction(
        alice, "counter", "store", Bytes(size, 0xAB)));
    ASSERT_TRUE(receipt.ok());
    ASSERT_TRUE(receipt->success);
    const Mist charged = before - chain.balance(a);
    EXPECT_EQ(charged, gas.submission_cost(size)) << "size " << size;
    EXPECT_EQ(receipt->storage_rebate_accrued, gas.storage_rebate(size));

    // Deleting the object refunds exactly the rebate.
    BytesReader r(BytesView(receipt->return_value.data(),
                            receipt->return_value.size()));
    const ObjectId id = *r.u64();
    const Mist before_erase = chain.balance(a);
    auto erase = chain.submit(chain.make_transaction(
        alice, "counter", "erase", [&] {
          BytesWriter w;
          w.u64(id);
          return w.take();
        }()));
    ASSERT_TRUE(erase.ok());
    ASSERT_TRUE(erase->success);
    const Mist delta = chain.balance(a) + erase->gas_charged - before_erase;
    EXPECT_EQ(delta, gas.storage_rebate(size)) << "size " << size;
    EXPECT_FALSE(chain.object_exists(id));
  }
}

TEST_F(ChainFixture, NonceEnforced) {
  auto tx = chain.make_transaction(alice, "counter", "increment", {});
  ASSERT_TRUE(chain.submit(tx).ok());
  // Replaying the same transaction must fail (nonce already used).
  EXPECT_FALSE(chain.submit(tx).ok());
}

TEST_F(ChainFixture, SignatureEnforced) {
  auto tx = chain.make_transaction(alice, "counter", "increment", {});
  tx.attached_tokens = 12345;  // tamper after signing
  EXPECT_FALSE(chain.submit(tx).ok());
}

TEST_F(ChainFixture, InsufficientBalanceRejected) {
  crypto::KeyPair pauper = crypto::KeyPair::from_seed(103);
  auto tx = chain.make_transaction(pauper, "counter", "increment", {});
  EXPECT_FALSE(chain.submit(tx).ok());
}

TEST_F(ChainFixture, UnknownContractRejected) {
  auto tx = chain.make_transaction(alice, "nonexistent", "f", {});
  EXPECT_FALSE(chain.submit(tx).ok());
}

TEST_F(ChainFixture, FailedCallRefundsAttachedTokens) {
  const Address a = Address::of(alice.public_key());
  const Mist before = chain.balance(a);
  auto receipt = chain.submit(
      chain.make_transaction(alice, "counter", "boom", {}, 5'000'000));
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(receipt->error, "deliberate failure");
  // Only gas is lost; the attached tokens come back.
  EXPECT_EQ(before - chain.balance(a), receipt->gas_charged);
  EXPECT_EQ(chain.escrow_balance("counter"), 0u);
}

TEST_F(ChainFixture, EscrowPayout) {
  const Address a = Address::of(alice.public_key());
  const Mist before = chain.balance(a);
  auto receipt = chain.submit(
      chain.make_transaction(alice, "counter", "payout", {}, 7'000'000));
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt->success);
  // Tokens went to escrow and straight back to alice; net cost is gas.
  EXPECT_EQ(before - chain.balance(a), receipt->gas_charged);
}

TEST_F(ChainFixture, EventsDispatchWithKeyFilter) {
  std::vector<std::string> seen_any, seen_two;
  chain.subscribe("counter", "Incremented", "",
                  [&](const Event& e) { seen_any.push_back(e.key); });
  const SubscriptionId only_two = chain.subscribe(
      "counter", "Incremented", "2",
      [&](const Event& e) { seen_two.push_back(e.key); });
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(chain.submit(
        chain.make_transaction(alice, "counter", "increment", {})).ok());
  EXPECT_EQ(seen_any, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(seen_two, (std::vector<std::string>{"2"}));
  chain.unsubscribe(only_two);
  ASSERT_TRUE(chain.submit(
      chain.make_transaction(alice, "counter", "increment", {})).ok());
  EXPECT_EQ(seen_two.size(), 1u);
  EXPECT_EQ(chain.events().size(), 4u);
}

TEST_F(ChainFixture, BlocksHashLink) {
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(chain.submit(
        chain.make_transaction(alice, "counter", "increment", {})).ok());
  EXPECT_EQ(chain.height(), 6u);
  EXPECT_TRUE(chain.verify_integrity());
  for (std::uint64_t h = 1; h < chain.height(); ++h)
    EXPECT_EQ(chain.block(h).height, h);
}

TEST_F(ChainFixture, TransactionInclusionProofs) {
  auto tx = chain.make_transaction(alice, "counter", "increment", {});
  const crypto::Digest digest = tx.digest();
  auto receipt = chain.submit(tx);
  ASSERT_TRUE(receipt.ok());
  const std::uint64_t height = receipt->block_height;

  auto proof = chain.prove_transaction(height, 0);
  ASSERT_TRUE(proof.ok()) << proof.error_message();
  EXPECT_TRUE(Blockchain::verify_transaction_inclusion(chain.block(height),
                                                       digest, *proof));
  // A different digest fails, as does the wrong block.
  crypto::Digest wrong = digest;
  wrong.bytes[0] ^= 1;
  EXPECT_FALSE(Blockchain::verify_transaction_inclusion(chain.block(height),
                                                        wrong, *proof));
  EXPECT_FALSE(Blockchain::verify_transaction_inclusion(chain.block(0),
                                                        digest, *proof));
  EXPECT_FALSE(chain.prove_transaction(height, 5).ok());
  EXPECT_FALSE(chain.prove_transaction(9999, 0).ok());
}

TEST_F(ChainFixture, SeparateAccountsSeparateNonces) {
  ASSERT_TRUE(chain.submit(
      chain.make_transaction(alice, "counter", "increment", {})).ok());
  EXPECT_EQ(chain.nonce(Address::of(alice.public_key())), 1u);
  EXPECT_EQ(chain.nonce(Address::of(bob.public_key())), 0u);
  ASSERT_TRUE(chain.submit(
      chain.make_transaction(bob, "counter", "increment", {})).ok());
  EXPECT_EQ(chain.nonce(Address::of(bob.public_key())), 1u);
}

TEST_F(ChainFixture, ViewDoesNotChargeGas) {
  const Address a = Address::of(alice.public_key());
  const Mist before = chain.balance(a);
  // view() runs with a null sender and charges nothing.
  auto v = chain.view("counter", "increment", {});
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(chain.balance(a), before);
}

TEST(GasSchedule, MatchesPublishedTable2) {
  // The paper's Table II, in SUI (each row must match to 5 decimals).
  const GasSchedule gas;
  const struct {
    std::uint64_t size;
    double total_sui;
    double rebate_sui;
  } kRows[] = {
      {0, 0.01369, 0.00430},     {100, 0.01585, 0.00632},
      {1000, 0.03527, 0.02456},  {5000, 0.12160, 0.10562},
      {10000, 0.22953, 0.20696},
  };
  for (const auto& row : kRows) {
    EXPECT_NEAR(mist_to_sui(gas.submission_cost(row.size)), row.total_sui,
                5e-5)
        << "size " << row.size;
    EXPECT_NEAR(mist_to_sui(gas.storage_rebate(row.size)), row.rebate_sui,
                5e-5)
        << "size " << row.size;
  }
}

TEST(Address, DerivedFromPublicKey) {
  const auto k1 = crypto::KeyPair::from_seed(1).public_key();
  const auto k2 = crypto::KeyPair::from_seed(2).public_key();
  EXPECT_EQ(Address::of(k1), Address::of(k1));
  EXPECT_NE(Address::of(k1), Address::of(k2));
}

TEST(TransactionDigest, CoversSignature) {
  Blockchain chain;
  const crypto::KeyPair key = crypto::KeyPair::from_seed(55);
  auto tx = chain.make_transaction(key, "c", "f", bytes_of("args"));
  const auto d1 = tx.digest();
  tx.signature.s = crypto::U256(1);
  EXPECT_NE(tx.digest(), d1);
}

}  // namespace
}  // namespace debuglet::chain
