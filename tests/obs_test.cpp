#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace debuglet::obs {
namespace {

// --- Histogram bucketing -------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Non-positive and below-range values land in the underflow bucket.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0u);
  // Values beyond the top decade land in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(1e13), Histogram::kBucketCount - 1);

  // Exact powers of ten start a fresh decade: their bucket's lower bound
  // is the value itself.
  for (double v : {1e-9, 1e-3, 1.0, 1e3, 1e9}) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GT(idx, 0u);
    EXPECT_LT(idx, Histogram::kBucketCount - 1);
    EXPECT_NEAR(Histogram::bucket_lower_bound(idx), v, v * 1e-9)
        << "value " << v;
  }

  // bucket_index is monotone in the value.
  std::size_t prev = 0;
  for (double v = 1e-9; v < 1e11; v *= 1.31) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "value " << v;
    prev = idx;
  }

  // A value inside a bucket sits within [lower_bound, next lower_bound).
  const double v = 42.0;
  const std::size_t idx = Histogram::bucket_index(v);
  EXPECT_LE(Histogram::bucket_lower_bound(idx), v);
  EXPECT_GT(Histogram::bucket_lower_bound(idx + 1), v);
}

TEST(Histogram, ExactStatsAndEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  h.record(2.0);
  h.record(8.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  // Percentiles clamp to the recorded extremes.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 8.0);
}

TEST(Histogram, PercentilesTrackExactOrderStatistics) {
  // Log-normal-ish latencies spanning several decades; compare the
  // bucket-interpolated percentiles against the exact ones from
  // util/stats' SampleSet. Bucket width is 10^(1/32) ~ 7.5%, so 10%
  // relative tolerance is the contract.
  Rng rng(7);
  Histogram h;
  SampleSet exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.normal(0.0, 1.5)) * 1e-3;
    h.record(v);
    exact.add(v);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double want = exact.percentile(p);
    const double got = h.percentile(p);
    EXPECT_NEAR(got, want, 0.10 * want) << "p" << p;
  }
  EXPECT_NEAR(h.mean(), exact.mean(), 1e-9);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Rng rng(11);
  Histogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double va = rng.uniform(0.001, 10.0);
    const double vb = rng.uniform(5.0, 500.0);
    a.record(va);
    b.record(vb);
    combined.record(va);
    combined.record(vb);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p99(), combined.p99());
}

// --- Registry, labels, enable gating -------------------------------------

TEST(Labels, CanonicalRendering) {
  EXPECT_EQ(labels_to_string({}), "");
  EXPECT_EQ(labels_to_string({{"as", "3"}}), "{as=3}");
  // Keys render sorted regardless of insertion order.
  EXPECT_EQ(labels_to_string({{"intf", "2"}, {"as", "3"}}), "{as=3,intf=2}");
}

TEST(Registry, SameNameAndLabelsIsOneMetric) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter& a = reg.counter("x.hits", {{"as", "1"}});
  Counter& b = reg.counter("x.hits", {{"as", "1"}});
  Counter& c = reg.counter("x.hits", {{"intf", "9"}, {"as", "1"}});
  Counter& other = reg.counter("x.hits", {{"as", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_NE(&a, &other);
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4u);
  EXPECT_EQ(other.value(), 0u);
  // Label order does not create a second metric.
  Counter& c2 = reg.counter("x.hits", {{"as", "1"}, {"intf", "9"}});
  EXPECT_EQ(&c, &c2);
}

TEST(Registry, DisabledMetricsRecordNothing) {
  MetricsRegistry reg;  // starts disabled
  Counter& c = reg.counter("x.count");
  Gauge& g = reg.gauge("x.depth");
  Histogram& h = reg.histogram("x.ms");
  c.add(5);
  g.set(7.0);
  h.record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_FALSE(h.enabled());

  reg.set_enabled(true);
  c.add(5);
  g.set(7.0);
  h.record(1.0);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 7.0);
  EXPECT_EQ(h.count(), 1u);

  // Disabling again freezes the values.
  reg.set_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Registry, ScopedRegistryIsolatesAndRestores) {
  MetricsRegistry& global = registry();
  {
    ScopedRegistry scoped;
    EXPECT_EQ(&registry(), &scoped.get());
    EXPECT_TRUE(registry().enabled());
    registry().counter("isolated.hits").add();
    EXPECT_EQ(scoped.get().snapshot().size(), 1u);
  }
  EXPECT_EQ(&registry(), &global);
}

TEST(Registry, SnapshotSortedAndComplete) {
  ScopedRegistry scoped;
  registry().counter("b.count").add(2);
  registry().gauge("a.depth").set(3.0);
  registry().histogram("c.ms").record(1.5);
  const std::vector<MetricRow> rows = registry().snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "a.depth");
  EXPECT_EQ(rows[1].name, "b.count");
  EXPECT_EQ(rows[2].name, "c.ms");
  EXPECT_EQ(rows[0].kind, MetricRow::Kind::kGauge);
  EXPECT_EQ(rows[1].kind, MetricRow::Kind::kCounter);
  EXPECT_EQ(rows[2].kind, MetricRow::Kind::kHistogram);
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
  EXPECT_DOUBLE_EQ(rows[1].value, 2.0);
  EXPECT_EQ(rows[2].count, 1u);
  EXPECT_DOUBLE_EQ(rows[2].min, 1.5);
}

// --- Exporters ------------------------------------------------------------

TEST(Export, JsonlRoundTrip) {
  ScopedRegistry scoped;
  registry().counter("simnet.packets_sent", {{"proto", "UDP"}}).add(42);
  registry().gauge("chain.object_store.bytes").set(1234.0);
  Histogram& h = registry().histogram("executor.sandbox_ms");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const std::vector<MetricRow> rows = registry().snapshot();
  std::ostringstream out;
  write_metrics_jsonl(rows, out);

  auto parsed = parse_metrics_jsonl(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed->size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MetricRow& want = rows[i];
    const MetricRow& got = (*parsed)[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.labels, want.labels);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_DOUBLE_EQ(got.value, want.value);
    EXPECT_EQ(got.count, want.count);
    EXPECT_DOUBLE_EQ(got.sum, want.sum);
    EXPECT_DOUBLE_EQ(got.min, want.min);
    EXPECT_DOUBLE_EQ(got.max, want.max);
    EXPECT_DOUBLE_EQ(got.p50, want.p50);
    EXPECT_DOUBLE_EQ(got.p99, want.p99);
  }
}

TEST(Export, JsonlEscapesSpecialCharacters) {
  ScopedRegistry scoped;
  registry().counter("weird.name", {{"k", "a\"b\\c\n"}}).add(1);
  std::ostringstream out;
  write_metrics_jsonl(registry().snapshot(), out);
  auto parsed = parse_metrics_jsonl(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed->size(), 1u);
  ASSERT_EQ((*parsed)[0].labels.size(), 1u);
  EXPECT_EQ((*parsed)[0].labels[0].second, "a\"b\\c\n");
}

TEST(Export, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_metrics_jsonl("{\"name\":}").ok());
  EXPECT_FALSE(parse_metrics_jsonl("not json at all").ok());
  EXPECT_TRUE(parse_metrics_jsonl("").ok());
  EXPECT_TRUE(parse_metrics_jsonl("\n\n").ok());
}

TEST(Export, CsvHasHeaderAndOneRowPerMetric) {
  ScopedRegistry scoped;
  registry().counter("a.count").add(7);
  registry().histogram("b.ms").record(2.0);
  std::ostringstream out;
  write_metrics_csv(registry().snapshot(), out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("name,labels,type,value,count,sum,min,max,p50,p90,p99"),
            0u);
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
}

TEST(Export, ChromeTraceShape) {
  Tracer t(16);
  t.set_enabled(true);
  Span s;
  s.name = "deployment#1";
  s.category = "executor AS1#2";
  s.sim_begin = 1'000'000;   // 1 ms
  s.sim_end = 3'500'000;     // 3.5 ms
  s.wall_begin_us = 10;
  s.wall_dur_us = 25;
  t.record(s);
  t.instant("marker", "test");

  std::ostringstream out;
  write_chrome_trace(t.spans(), out);
  const std::string text = out.str();
  // A JSON array of complete events on the simulated timeline.
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text[text.find_last_not_of(" \n")], ']');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"deployment#1\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1000"), std::string::npos);   // 1 ms -> 1000 us
  EXPECT_NE(text.find("\"dur\":2500"), std::string::npos);  // 2.5 ms extent
  EXPECT_NE(text.find("\"wall_us\":25"), std::string::npos);
}

// --- Tracer ring buffer ---------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(8);
  Span s;
  s.name = "x";
  t.record(s);
  t.instant("y", "z");
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, RingOverwritesOldestKeepsOrder) {
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Span s;
    s.name = "span" + std::to_string(i);
    s.sim_begin = i;
    t.record(s);
  }
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const std::vector<Span> spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first ordering of the surviving tail.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name,
              "span" + std::to_string(6 + i));
  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

TEST(Tracer, ScopedSpanUsesInjectedTracerAndSimClock) {
  Tracer local(16);
  Tracer* previous = set_tracer(&local);
  local.set_enabled(true);
  SimTime fake_now = 500;
  local.set_sim_clock([&fake_now] { return fake_now; });
  {
    ScopedSpan span("work", "test");
    fake_now = 1700;
  }
  set_tracer(previous);
  const std::vector<Span> spans = local.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].sim_begin, 500);
  EXPECT_EQ(spans[0].sim_end, 1700);
  EXPECT_GE(spans[0].wall_dur_us, 0);
}

TEST(Tracer, ScopedTimerFeedsHistogram) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Histogram& h = reg.histogram("t.ms");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  // Disabled histograms skip the clock path entirely.
  reg.set_enabled(false);
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace debuglet::obs
