// Property tests for Wald's SPRT (util/sprt.hpp): the boundary formulas,
// the freeze-at-crossing stopping rule, decision correctness on pure
// streams, and the statistical contract — seeded Bernoulli trials must
// keep both error rates within the configured alpha/beta bounds while
// deciding in far fewer observations than a comparable fixed-size test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/sprt.hpp"

namespace debuglet {
namespace {

TEST(Sprt, WaldBoundsMatchTheFormulas) {
  const Sprt t(0.05, 0.9, 0.01, 0.05);
  EXPECT_DOUBLE_EQ(t.upper_bound(), std::log((1.0 - 0.05) / 0.01));
  EXPECT_DOUBLE_EQ(t.lower_bound(), std::log(0.05 / (1.0 - 0.01)));
  EXPECT_EQ(t.decision(), Sprt::Decision::kContinue);
  EXPECT_EQ(t.llr(), 0.0);
  EXPECT_EQ(t.observations(), 0u);
}

TEST(Sprt, DecisionFreezesAtTheFirstCrossing) {
  Sprt t(0.05, 0.9, 0.01, 0.05);
  while (t.decision() == Sprt::Decision::kContinue) t.observe(true);
  ASSERT_EQ(t.decision(), Sprt::Decision::kAcceptH1);
  const double llr = t.llr();
  const std::uint64_t n = t.observations();

  // Contradicting evidence after the crossing must be ignored — the
  // stopping rule is part of the error guarantee.
  for (int i = 0; i < 10; ++i) t.observe(false);
  EXPECT_EQ(t.decision(), Sprt::Decision::kAcceptH1);
  EXPECT_EQ(t.llr(), llr);
  EXPECT_EQ(t.observations(), n);
}

TEST(Sprt, PureStreamsDecideCorrectlyAndQuickly) {
  Sprt h1(0.05, 0.9, 0.01, 0.05);
  std::uint64_t n1 = 0;
  while (h1.decision() == Sprt::Decision::kContinue && n1 < 100) {
    h1.observe(true);
    ++n1;
  }
  EXPECT_EQ(h1.decision(), Sprt::Decision::kAcceptH1);
  EXPECT_LE(n1, 5u);  // log A / log(p1/p0) ~ 4.55 / 2.89

  Sprt h0(0.05, 0.9, 0.01, 0.05);
  std::uint64_t n0 = 0;
  while (h0.decision() == Sprt::Decision::kContinue && n0 < 100) {
    h0.observe(false);
    ++n0;
  }
  EXPECT_EQ(h0.decision(), Sprt::Decision::kAcceptH0);
  EXPECT_LE(n0, 5u);
}

// Runs one seeded SPRT over Bernoulli(p) observations until it decides
// (guarded far beyond any plausible sample count).
Sprt run_trial(double p0, double p1, double alpha, double beta, double p,
               std::uint64_t seed) {
  Sprt t(p0, p1, alpha, beta);
  Rng rng(seed);
  std::uint64_t guard = 0;
  while (t.decision() == Sprt::Decision::kContinue && guard++ < 100'000)
    t.observe(rng.chance(p));
  return t;
}

TEST(SprtProperty, ErrorRatesStayWithinTheConfiguredBounds) {
  const double p0 = 0.1, p1 = 0.6, alpha = 0.05, beta = 0.05;
  const int kTrials = 2000;

  int false_h1 = 0;
  std::vector<std::uint64_t> null_rounds;
  for (int i = 0; i < kTrials; ++i) {
    const Sprt t = run_trial(p0, p1, alpha, beta, p0, 900 + i);
    ASSERT_NE(t.decision(), Sprt::Decision::kContinue);
    if (t.decision() == Sprt::Decision::kAcceptH1) ++false_h1;
    null_rounds.push_back(t.observations());
  }

  int false_h0 = 0;
  std::vector<std::uint64_t> alt_rounds;
  for (int i = 0; i < kTrials; ++i) {
    const Sprt t = run_trial(p0, p1, alpha, beta, p1, 50'000 + i);
    ASSERT_NE(t.decision(), Sprt::Decision::kContinue);
    if (t.decision() == Sprt::Decision::kAcceptH0) ++false_h0;
    alt_rounds.push_back(t.observations());
  }

  // Wald's thresholds bound the error rates by ~alpha/~beta; allow 50%
  // slack for boundary overshoot and sampling noise (the bounds are in
  // practice conservative, so the observed rates sit well below).
  EXPECT_LE(false_h1, static_cast<int>(kTrials * alpha * 1.5));
  EXPECT_LE(false_h0, static_cast<int>(kTrials * beta * 1.5));

  // Sequential efficiency: the median decision arrives in a handful of
  // observations — an order of magnitude under the legacy fixed-40 budget
  // the detector used to spend regardless of evidence.
  std::sort(null_rounds.begin(), null_rounds.end());
  std::sort(alt_rounds.begin(), alt_rounds.end());
  EXPECT_LE(null_rounds[null_rounds.size() / 2], 10u);
  EXPECT_LE(alt_rounds[alt_rounds.size() / 2], 10u);
  EXPECT_LT(null_rounds.back(), 100u);
  EXPECT_LT(alt_rounds.back(), 100u);
}

TEST(SprtProperty, TighterBoundsCostMoreObservations) {
  // Shrinking alpha/beta must (weakly) raise the expected sample count —
  // the classic SPRT trade-off, checked on the same observation streams.
  const double p0 = 0.1, p1 = 0.6;
  const int kTrials = 500;
  std::uint64_t loose_total = 0, tight_total = 0;
  for (int i = 0; i < kTrials; ++i) {
    loose_total +=
        run_trial(p0, p1, 0.1, 0.1, p1, 7000 + i).observations();
    tight_total +=
        run_trial(p0, p1, 0.001, 0.001, p1, 7000 + i).observations();
  }
  EXPECT_LT(loose_total, tight_total);
}

}  // namespace
}  // namespace debuglet
