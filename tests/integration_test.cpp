// End-to-end tests of the full Debuglet lifecycle (paper §IV-A, Fig. 7):
// request -> on-chain purchase -> executor deployment -> sandboxed
// measurement over the simulated network -> certified result publication ->
// third-party verification.
#include <gtest/gtest.h>

#include "core/debuglet.hpp"

namespace debuglet::core {
namespace {

using net::Protocol;

struct SystemFixture : ::testing::Test {
  SystemFixture()
      : system(simnet::build_chain_scenario(5, 4242, 5.0)),
        initiator(system, 9001, 500'000'000'000ULL) {}

  // Runs the queue until the measurement's results publish.
  Result<MeasurementOutcome> run_and_collect(const MeasurementHandle& h) {
    SimTime deadline = h.window_end + duration::seconds(2);
    for (int i = 0; i < 6; ++i) {
      system.queue().run_until(deadline);
      auto outcome = initiator.collect(h);
      if (outcome) return outcome;
      deadline += duration::seconds(5);
    }
    return initiator.collect(h);
  }

  DebugletSystem system;
  Initiator initiator;
};

TEST_F(SystemFixture, ExecutorsDeployedAtEveryBorderInterface) {
  // 5-AS chain: 4 links x 2 interfaces.
  EXPECT_EQ(system.executor_keys().size(), 8u);
  EXPECT_TRUE(system.agent({1, 2}).ok());
  EXPECT_TRUE(system.agent({3, 1}).ok());
  EXPECT_TRUE(system.agent({3, 2}).ok());
  EXPECT_FALSE(system.agent({1, 9}).ok());
}

TEST_F(SystemFixture, FullLifecycleRttMeasurement) {
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {5, 1}, Protocol::kUdp, 10, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  EXPECT_GT(handle->price_paid, 0u);

  auto outcome = run_and_collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  EXPECT_FALSE(outcome->client.record.trapped)
      << outcome->client.record.trap_message;
  EXPECT_FALSE(outcome->server.record.trapped)
      << outcome->server.record.trap_message;
  EXPECT_EQ(outcome->client.record.exit_value, 10);

  auto summary = summarize_rtt(outcome->client, 10);
  ASSERT_TRUE(summary.ok()) << summary.error_message();
  EXPECT_EQ(summary->probes_answered, 10u);
  EXPECT_EQ(summary->loss_rate(), 0.0);
  // 4 links x 5 ms x 2 directions + transit + sandbox I/O.
  EXPECT_NEAR(summary->mean_ms, 41.0, 2.0);

  // The chain holds a tamper-evident record.
  EXPECT_TRUE(system.chain().verify_integrity());
}

TEST_F(SystemFixture, ResultsVerifiableByThirdParty) {
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {3, 1}, Protocol::kTcp, 5, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  auto outcome = run_and_collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  // A third party only needs the chain + the AS public keys.
  const auto client_pk = system.as_public_key(1);
  ASSERT_TRUE(client_pk.ok());
  EXPECT_TRUE(executor::verify_certified(outcome->client, &*client_pk));
  const auto server_pk = system.as_public_key(3);
  ASSERT_TRUE(server_pk.ok());
  EXPECT_TRUE(executor::verify_certified(outcome->server, &*server_pk));

  // The wrong AS key must not verify (no AS can impersonate another).
  const auto other_pk = system.as_public_key(2);
  ASSERT_TRUE(other_pk.ok());
  EXPECT_FALSE(executor::verify_certified(outcome->client, &*other_pk));
}

TEST_F(SystemFixture, TamperedOnChainResultDetected) {
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {2, 1}, Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  auto outcome = run_and_collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  // Forge a better-looking result and check it cannot pass verification
  // against the AS key.
  executor::CertifiedResult forged = outcome->client;
  forged.record.output.clear();  // "no loss, no samples"
  const auto pk = system.as_public_key(1);
  EXPECT_FALSE(executor::verify_certified(forged, &*pk));

  // Re-signing with a different key changes the signer and fails the
  // expected-signer binding.
  const crypto::KeyPair attacker = crypto::KeyPair::from_seed(666);
  executor::CertifiedResult resigned = executor::certify(forged.record,
                                                         attacker);
  EXPECT_TRUE(executor::verify_certified(resigned));  // self-consistent...
  EXPECT_FALSE(executor::verify_certified(resigned, &*pk));  // ...but not AS1
}

TEST_F(SystemFixture, ExecutorsEarnTokens) {
  const chain::Mist before =
      system.chain().balance(system.agent({1, 2}).value()->address());
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {2, 1}, Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok());
  auto outcome = run_and_collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();
  // AS1 and AS2 share the operator funding; AS1's agent reported one
  // result and earned the slot price (gas costs offset part of it, so
  // compare against the exact flow recorded by the receipt).
  const chain::Mist after =
      system.chain().balance(system.agent({1, 2}).value()->address());
  EXPECT_NE(after, before);
}

TEST_F(SystemFixture, ConcurrentMeasurementsOnDisjointExecutors) {
  auto h1 = initiator.purchase_rtt_measurement({1, 2}, {2, 1},
                                               Protocol::kUdp, 5, 100);
  ASSERT_TRUE(h1.ok()) << h1.error_message();
  auto h2 = initiator.purchase_rtt_measurement({4, 2}, {5, 1},
                                               Protocol::kIcmp, 5, 100);
  ASSERT_TRUE(h2.ok()) << h2.error_message();
  auto o1 = run_and_collect(*h1);
  ASSERT_TRUE(o1.ok()) << o1.error_message();
  auto o2 = run_and_collect(*h2);
  ASSERT_TRUE(o2.ok()) << o2.error_message();
  EXPECT_EQ(o1->client.record.exit_value, 5);
  EXPECT_EQ(o2->client.record.exit_value, 5);
}

TEST_F(SystemFixture, CollectBeforeCompletionFails) {
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {2, 1}, Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok());
  auto premature = initiator.collect(*handle);
  EXPECT_FALSE(premature.ok());
  EXPECT_NE(premature.error_message().find("not yet published"),
            std::string::npos);
}

TEST_F(SystemFixture, UnknownExecutorPairFails) {
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {9, 1}, Protocol::kUdp, 5, 100);
  EXPECT_FALSE(handle.ok());
}

TEST_F(SystemFixture, InitiatorSpendsTrackedFunds) {
  const chain::Mist before = initiator.balance();
  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {2, 1}, Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok());
  EXPECT_LT(initiator.balance(), before);
  EXPECT_GE(initiator.total_spent(), handle->price_paid);
}

// --- Unidirectional (one-way) measurements (paper §III) --------------------

TEST_F(SystemFixture, OneWayMeasurementViaMarketplace) {
  const auto& topo = system.network().topology();
  const topology::InterfaceKey sender_key{1, 2};
  const topology::InterfaceKey receiver_key{4, 1};

  apps::OneWaySenderParams sender;
  sender.protocol = Protocol::kUdp;
  sender.receiver = topo.address_of(receiver_key);
  sender.receiver_port = 43210;
  sender.packet_count = 8;
  sender.interval_ms = 100;

  apps::OneWayReceiverParams receiver;
  receiver.protocol = Protocol::kUdp;
  receiver.expected_packets = 8;
  receiver.idle_timeout_ms = 3000;

  MeasurementRequest request;
  request.client_key = sender_key;
  request.server_key = receiver_key;
  request.client_app.bytecode =
      apps::make_oneway_sender_debuglet().serialize();
  request.client_app.manifest =
      apps::client_manifest(Protocol::kUdp, topo.address_of(receiver_key), 8,
                            duration::seconds(30))
          .serialize();
  request.client_app.parameters = sender.to_parameters();
  request.server_app.bytecode =
      apps::make_oneway_receiver_debuglet().serialize();
  request.server_app.manifest =
      apps::server_manifest(Protocol::kUdp, topo.address_of(sender_key), 8,
                            duration::seconds(30))
          .serialize();
  request.server_app.parameters = receiver.to_parameters();
  request.server_app.listen_port = 43210;

  auto handle = initiator.purchase(request);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  auto outcome = run_and_collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  EXPECT_FALSE(outcome->server.record.trapped)
      << outcome->server.record.trap_message;
  auto samples = apps::decode_samples(
      BytesView(outcome->server.record.output.data(),
                outcome->server.record.output.size()));
  ASSERT_TRUE(samples.ok()) << samples.error_message();
  ASSERT_EQ(samples->size(), 8u);
  // One-way delay: 3 links x 5 ms + transit + sender-side sandbox I/O.
  for (const auto& s : *samples) {
    EXPECT_NEAR(static_cast<double>(s.delay_ns) / 1e6, 15.5, 1.5)
        << "seq " << s.sequence;
  }
}

}  // namespace
}  // namespace debuglet::core
