// Differential testing of the two DVM engines.
//
// The fast decode-once engine (vm/dispatch.hpp) claims to be observably
// indistinguishable from the reference interpreter (vm/reference.hpp).
// These tests enforce the claim the only way that scales: generate seeded
// random valid modules through ModuleBuilder — biased toward the fusable
// instruction shapes real Debuglets emit, but with plenty of adversarial
// soup (stack abuse, wild addresses, division corner cases, recursion) —
// run each under the reference engine, the fast engine, and the fast
// engine with superinstructions disabled, and require bit-for-bit
// agreement on every observable: return value, trap kind/message/source
// pc/function, fuel_used, host-call count and sequence, final linear
// memory, and final globals. Suspendable step()/resume() executions are
// compared block-by-block. All seeds are fixed so CI is deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"
#include "vm/reference.hpp"
#include "vm/validator.hpp"

namespace debuglet {
namespace {

using vm::Engine;
using vm::Opcode;

// One observed host call: import name + arguments.
using HostCall = std::pair<std::string, std::vector<std::int64_t>>;

// Everything observable about one finished run.
struct Observation {
  vm::RunOutcome outcome;
  Bytes memory;
  std::vector<std::int64_t> globals;
  std::vector<HostCall> host_log;
  // For suspendable runs: the async host calls, in suspension order.
  std::vector<HostCall> block_log;
};

bool same_observation(const Observation& a, const Observation& b,
                      std::string* why) {
  const vm::RunOutcome& x = a.outcome;
  const vm::RunOutcome& y = b.outcome;
  auto mismatch = [&](const std::string& field) {
    *why = field + " differs";
    return false;
  };
  if (x.trapped != y.trapped) return mismatch("trapped");
  if (x.trap != y.trap)
    return mismatch("trap kind (" + vm::trap_name(x.trap) + " vs " +
                    vm::trap_name(y.trap) + ")");
  if (x.trap_message != y.trap_message)
    return mismatch("trap message ('" + x.trap_message + "' vs '" +
                    y.trap_message + "')");
  if (x.trap_pc != y.trap_pc)
    return mismatch("trap pc (" + std::to_string(x.trap_pc) + " vs " +
                    std::to_string(y.trap_pc) + ")");
  if (x.trap_function != y.trap_function) return mismatch("trap function");
  if (!x.trapped && x.value != y.value)
    return mismatch("return value (" + std::to_string(x.value) + " vs " +
                    std::to_string(y.value) + ")");
  if (x.fuel_used != y.fuel_used)
    return mismatch("fuel_used (" + std::to_string(x.fuel_used) + " vs " +
                    std::to_string(y.fuel_used) + ")");
  if (x.host_calls != y.host_calls) return mismatch("host_calls");
  if (a.memory != b.memory) return mismatch("final memory");
  if (a.globals != b.globals) return mismatch("final globals");
  if (a.host_log != b.host_log) return mismatch("host-call sequence");
  if (a.block_log != b.block_log) return mismatch("async block sequence");
  return true;
}

// Host functions every generated module may import. Synchronous ones
// record their calls into `log`; h_fail returns an error; h_block is
// async and driven by the suspendable runner.
std::vector<vm::HostFunction> make_hosts(std::vector<HostCall>* log,
                                         bool with_async) {
  std::vector<vm::HostFunction> hosts;
  hosts.push_back({"h_log", 1,
                   [log](vm::Instance&, std::span<const std::int64_t> args)
                       -> Result<std::int64_t> {
                     log->emplace_back(
                         "h_log", std::vector<std::int64_t>(args.begin(),
                                                            args.end()));
                     return static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(args[0]) * 2 + 1);
                   },
                   false});
  hosts.push_back({"h_add2", 2,
                   [log](vm::Instance&, std::span<const std::int64_t> args)
                       -> Result<std::int64_t> {
                     log->emplace_back(
                         "h_add2", std::vector<std::int64_t>(args.begin(),
                                                             args.end()));
                     return static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(args[0]) +
                         static_cast<std::uint64_t>(args[1]));
                   },
                   false});
  hosts.push_back({"h_fail", 0,
                   [log](vm::Instance&, std::span<const std::int64_t>)
                       -> Result<std::int64_t> {
                     log->emplace_back("h_fail",
                                       std::vector<std::int64_t>{});
                     return fail("deliberate host failure");
                   },
                   false});
  if (with_async) {
    hosts.push_back({"h_block", 1, nullptr, true});
    hosts.push_back({"h_block0", 0, nullptr, true});
  }
  return hosts;
}

// --- Random module generation -------------------------------------------

struct GenOptions {
  bool with_async = false;
};

std::int64_t interesting_const(Rng& rng) {
  switch (rng.index(8)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return std::numeric_limits<std::int64_t>::min();
    case 4: return std::numeric_limits<std::int64_t>::max();
    case 5: return static_cast<std::int64_t>(rng.index(64));
    case 6: return -static_cast<std::int64_t>(rng.index(4096));
    default: return static_cast<std::int64_t>(rng.next_u64());
  }
}

Opcode random_binop(Rng& rng) {
  static const Opcode kOps[] = {
      Opcode::kAdd,  Opcode::kSub,  Opcode::kMul, Opcode::kDivS,
      Opcode::kRemS, Opcode::kAnd,  Opcode::kOr,  Opcode::kXor,
      Opcode::kShl,  Opcode::kShrS, Opcode::kShrU};
  return kOps[rng.index(std::size(kOps))];
}

Opcode random_cmp(Rng& rng) {
  static const Opcode kOps[] = {Opcode::kEq,  Opcode::kNe,  Opcode::kLtS,
                                Opcode::kGtS, Opcode::kLeS, Opcode::kGeS};
  return kOps[rng.index(std::size(kOps))];
}

// Emits one function body as a sequence of fragments biased toward the
// shapes the translator fuses, closed with `const; return`. Stack
// discipline is intentionally not guaranteed.
void random_body(Rng& rng, vm::FunctionBuilder& fb, std::uint32_t n_locals,
                 std::uint32_t n_globals, std::uint32_t memory_size,
                 const std::vector<std::string>& callees,
                 const std::vector<std::pair<std::string, std::uint32_t>>&
                     host_imports) {
  const std::size_t n_fragments = 2 + rng.index(8);
  std::vector<vm::FunctionBuilder::Label> pending;  // forward labels

  const auto rand_local = [&] {
    return static_cast<std::uint32_t>(rng.index(n_locals));
  };

  for (std::size_t frag = 0; frag < n_fragments; ++frag) {
    switch (rng.index(10)) {
      case 0: {  // counter loop: exercises both fused branch + arith-set
        const std::uint32_t counter = rand_local();
        const std::int64_t bound = static_cast<std::int64_t>(rng.index(24));
        const auto top = fb.make_label();
        const auto done = fb.make_label();
        fb.bind(top);
        fb.local_get(counter)
            .constant(bound)
            .emit(Opcode::kGeS)
            .jump_if(done);
        if (rng.chance(0.5))
          fb.local_get(rand_local())
              .constant(interesting_const(rng))
              .emit(Opcode::kXor)
              .local_set(rand_local());
        fb.local_get(counter).constant(1).emit(Opcode::kAdd).local_set(
            counter);
        fb.jump(top);
        fb.bind(done);
        break;
      }
      case 1: {  // forward fused branch
        fb.local_get(rand_local()).constant(interesting_const(rng));
        fb.emit(random_cmp(rng));
        const auto skip = fb.make_label();
        if (rng.chance(0.5))
          fb.jump_if(skip);
        else
          fb.jump_ifz(skip);
        fb.constant(interesting_const(rng));
        pending.push_back(skip);
        break;
      }
      case 2:  // const-arith pair (fusable, incl. div/rem corner divisors)
        fb.constant(interesting_const(rng)).emit(random_binop(rng));
        break;
      case 3:  // local-arith pair
        fb.local_get(rand_local()).emit(random_binop(rng));
        break;
      case 4: {  // memory traffic, sometimes wildly out of bounds
        const bool wild = rng.chance(0.3);
        const std::int64_t addr =
            wild ? interesting_const(rng)
                 : static_cast<std::int64_t>(rng.index(memory_size));
        const std::int64_t off =
            static_cast<std::int64_t>(rng.index(memory_size));
        static const Opcode kStores[] = {Opcode::kStore8, Opcode::kStore32,
                                         Opcode::kStore64};
        static const Opcode kLoads[] = {Opcode::kLoad8, Opcode::kLoad32,
                                        Opcode::kLoad64};
        fb.constant(addr)
            .constant(interesting_const(rng))
            .emit(kStores[rng.index(3)], off);
        fb.constant(addr).emit(kLoads[rng.index(3)], off);
        break;
      }
      case 5: {  // division corner cases on the stack (not fused)
        fb.constant(interesting_const(rng))
            .constant(rng.chance(0.4) ? (rng.chance(0.5) ? 0 : -1)
                                      : interesting_const(rng))
            .emit(rng.chance(0.5) ? Opcode::kDivS : Opcode::kRemS);
        break;
      }
      case 6: {  // call (any callee; recursion bounded by depth/fuel)
        if (callees.empty()) break;
        const auto& name = callees[rng.index(callees.size())];
        // Push a plausible-but-not-guaranteed number of args.
        const std::size_t pushed = rng.index(4);
        for (std::size_t i = 0; i < pushed; ++i)
          fb.constant(interesting_const(rng));
        fb.call(name);
        break;
      }
      case 7: {  // host call
        if (host_imports.empty()) break;
        const auto& [name, arity] =
            host_imports[rng.index(host_imports.size())];
        for (std::uint32_t i = 0; i < arity; ++i)
          fb.constant(interesting_const(rng));
        fb.call_host(name);
        break;
      }
      case 8: {  // globals round trip
        if (n_globals == 0) break;
        const auto g = static_cast<std::uint32_t>(rng.index(n_globals));
        fb.global_get(g).constant(interesting_const(rng)).emit(Opcode::kAdd);
        fb.global_set(g);
        break;
      }
      default: {  // plain soup
        static const Opcode kSoup[] = {
            Opcode::kNop,  Opcode::kConst, Opcode::kDrop,    Opcode::kDup,
            Opcode::kEqz,  Opcode::kAdd,   Opcode::kMemSize, Opcode::kSub,
            Opcode::kShrU, Opcode::kLtS,   Opcode::kMul};
        const std::size_t len = 1 + rng.index(6);
        for (std::size_t i = 0; i < len; ++i) {
          const Opcode op = kSoup[rng.index(std::size(kSoup))];
          fb.emit(op, op == Opcode::kConst ? interesting_const(rng) : 0);
        }
        break;
      }
    }
  }

  for (auto label : pending) fb.bind(label);
  if (rng.chance(0.1)) {
    fb.emit(Opcode::kAbort, static_cast<std::int64_t>(rng.index(100)));
  } else {
    fb.constant(interesting_const(rng)).ret();
  }
}

vm::Module random_module(Rng& rng, const GenOptions& opts) {
  vm::ModuleBuilder mb;
  const auto memory_size = 64 + static_cast<std::uint32_t>(rng.index(1024));
  mb.memory(memory_size);
  const auto n_globals = static_cast<std::uint32_t>(rng.index(4));
  for (std::uint32_t i = 0; i < n_globals; ++i)
    mb.add_global(interesting_const(rng));

  std::vector<std::pair<std::string, std::uint32_t>> host_imports = {
      {"h_log", 1}, {"h_add2", 2}};
  if (rng.chance(0.15)) host_imports.push_back({"h_fail", 0});
  if (opts.with_async) host_imports.push_back({"h_block", 1});

  const std::size_t n_helpers = rng.index(3);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n_helpers; ++i)
    names.push_back("fn" + std::to_string(i));

  // Entry first: the validator requires a nullary run_debuglet.
  {
    const auto locals = 1 + static_cast<std::uint32_t>(rng.index(3));
    auto& fb = mb.function(vm::kEntryPointName, 0, locals);
    // Random soup usually traps within a few instructions; lead with a
    // guaranteed-reachable async call so the suspendable sweep actually
    // exercises block/resume on most seeds.
    if (opts.with_async && rng.chance(0.7))
      fb.constant(interesting_const(rng))
          .call_host("h_block")
          .local_set(0);
    random_body(rng, fb, locals, n_globals, memory_size, names,
                host_imports);
  }
  for (std::size_t i = 0; i < n_helpers; ++i) {
    const auto params = static_cast<std::uint32_t>(rng.index(3));
    const auto locals = 1 + static_cast<std::uint32_t>(rng.index(2));
    auto& fb = mb.function(names[i], params, locals);
    random_body(rng, fb, params + locals, n_globals, memory_size, names,
                host_imports);
  }
  return mb.build();
}

vm::ExecutionLimits random_limits(Rng& rng) {
  vm::ExecutionLimits limits;
  static const std::uint64_t kFuel[] = {37, 150, 999, 5'000, 20'000};
  static const std::uint32_t kStack[] = {8, 16, 32, 4096};
  static const std::uint32_t kDepth[] = {3, 8, 256};
  limits.fuel = kFuel[rng.index(std::size(kFuel))];
  limits.max_value_stack = kStack[rng.index(std::size(kStack))];
  limits.max_call_depth = kDepth[rng.index(std::size(kDepth))];
  return limits;
}

// --- Runners ------------------------------------------------------------

Observation run_sync(const vm::Module& m, vm::ExecutionLimits limits,
                     Engine engine) {
  Observation obs;
  auto instance =
      vm::Instance::create(m, make_hosts(&obs.host_log, false), limits);
  EXPECT_TRUE(instance.ok()) << instance.error_message();
  obs.outcome = instance->run_function(vm::kEntryPointName, {}, engine);
  obs.memory = *instance->read_memory(0, instance->memory_size());
  obs.globals.assign(instance->globals().begin(), instance->globals().end());
  return obs;
}

// Drives a suspendable execution, resuming each async host call with a
// value derived deterministically from its arguments and position.
Observation run_async(const vm::Module& m, vm::ExecutionLimits limits,
                      Engine engine) {
  Observation obs;
  auto instance =
      vm::Instance::create(m, make_hosts(&obs.host_log, true), limits);
  EXPECT_TRUE(instance.ok()) << instance.error_message();
  auto exec = vm::Execution::start(*instance, vm::kEntryPointName, {},
                                   engine);
  EXPECT_TRUE(exec.ok()) << exec.error_message();
  std::int64_t tick = 0;
  while (exec->step() == vm::Execution::State::kBlocked) {
    const auto& block = exec->block();
    obs.block_log.emplace_back(block.import_name, block.args);
    const std::uint64_t base =
        block.args.empty() ? 0 : static_cast<std::uint64_t>(block.args[0]);
    exec->resume(
        static_cast<std::int64_t>(base + static_cast<std::uint64_t>(++tick)));
  }
  obs.outcome = exec->outcome();
  obs.memory = *instance->read_memory(0, instance->memory_size());
  obs.globals.assign(instance->globals().begin(), instance->globals().end());
  return obs;
}

// --- The differential sweeps --------------------------------------------

TEST(VmDifferential, SyncSeededModulesNeverDiverge) {
  int traps = 0, finishes = 0;
  for (std::uint64_t seed = 0; seed < 1200; ++seed) {
    Rng rng(0xD1FF0000 + seed);
    const vm::Module m = random_module(rng, {});
    ASSERT_TRUE(vm::validate(m).ok())
        << "seed " << seed << ": generator produced invalid module";
    const vm::ExecutionLimits limits = random_limits(rng);

    const Observation ref = run_sync(m, limits, Engine::kReference);
    const Observation fast = run_sync(m, limits, Engine::kFast);
    vm::ExecutionLimits nofuse = limits;
    nofuse.fuse_superinstructions = false;
    const Observation plain = run_sync(m, nofuse, Engine::kFast);

    std::string why;
    ASSERT_TRUE(same_observation(ref, fast, &why))
        << "seed " << seed << " (fast vs reference): " << why;
    ASSERT_TRUE(same_observation(ref, plain, &why))
        << "seed " << seed << " (unfused fast vs reference): " << why;
    (ref.outcome.trapped ? traps : finishes) += 1;
  }
  // The generator must exercise both outcome shapes heavily.
  EXPECT_GE(traps, 100);
  EXPECT_GE(finishes, 100);
}

TEST(VmDifferential, SuspendableSeededModulesNeverDiverge) {
  int blocked_runs = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(0xA57C0000 + seed);
    const vm::Module m = random_module(rng, {.with_async = true});
    ASSERT_TRUE(vm::validate(m).ok()) << "seed " << seed;
    const vm::ExecutionLimits limits = random_limits(rng);

    const Observation ref = run_async(m, limits, Engine::kReference);
    const Observation fast = run_async(m, limits, Engine::kFast);

    std::string why;
    ASSERT_TRUE(same_observation(ref, fast, &why))
        << "seed " << seed << " (async, fast vs reference): " << why;
    if (!ref.block_log.empty()) ++blocked_runs;
  }
  EXPECT_GE(blocked_runs, 30);
}

// --- Targeted edge cases the sweeps could plausibly miss ----------------

// A fused compare-and-branch whose unfused expansion would overflow the
// value stack mid-pattern: the fast engine must report the same
// per-instruction trap pc and message as the reference.
TEST(VmDifferential, FusedBranchOverflowMatchesReference) {
  for (std::uint32_t max_stack : {1u, 2u, 3u}) {
    vm::ModuleBuilder mb;
    mb.memory(64);
    auto& fb = mb.function(vm::kEntryPointName, 0, 1);
    const auto done = fb.make_label();
    // Fill the stack with `max_stack - 1` values, then hit the pattern.
    for (std::uint32_t i = 0; i + 1 < max_stack; ++i) fb.constant(7);
    fb.local_get(0).constant(5).emit(Opcode::kLtS).jump_if(done);
    fb.bind(done);
    fb.constant(0).ret();
    const vm::Module m = mb.build();
    ASSERT_TRUE(vm::validate(m).ok());

    vm::ExecutionLimits limits;
    limits.max_value_stack = max_stack;
    const Observation ref = run_sync(m, limits, Engine::kReference);
    const Observation fast = run_sync(m, limits, Engine::kFast);
    std::string why;
    ASSERT_TRUE(same_observation(ref, fast, &why))
        << "max_value_stack=" << max_stack << ": " << why;
  }
}

// A const-arith pair executed against an empty stack must underflow at
// the arithmetic op (second source pc), not the const.
TEST(VmDifferential, FusedConstArithUnderflowMatchesReference) {
  vm::ModuleBuilder mb;
  mb.memory(64);
  auto& fb = mb.function(vm::kEntryPointName, 0, 1);
  fb.constant(3).emit(Opcode::kAdd);  // underflow: only one operand
  fb.constant(0).ret();
  const vm::Module m = mb.build();
  ASSERT_TRUE(vm::validate(m).ok());

  const Observation ref = run_sync(m, {}, Engine::kReference);
  const Observation fast = run_sync(m, {}, Engine::kFast);
  std::string why;
  ASSERT_TRUE(same_observation(ref, fast, &why)) << why;
  EXPECT_TRUE(ref.outcome.trapped);
  EXPECT_EQ(ref.outcome.trap, vm::TrapKind::kStackUnderflow);
  EXPECT_EQ(ref.outcome.trap_pc, 1u);  // the add, not the const
}

// Fuel exhaustion inside a batched block: the fast engine pre-charges the
// block, so it must fall back to per-instruction accounting and report
// the exact same fuel_used and trap pc as the reference for every
// possible budget of an arithmetic loop.
TEST(VmDifferential, MidBlockFuelExhaustionMatchesReference) {
  vm::ModuleBuilder mb;
  mb.memory(64);
  auto& fb = mb.function(vm::kEntryPointName, 0, 2);
  const auto top = fb.make_label();
  const auto done = fb.make_label();
  fb.bind(top);
  fb.local_get(0).constant(50).emit(Opcode::kGeS).jump_if(done);
  fb.local_get(1).local_get(0).emit(Opcode::kMul).constant(7).emit(
      Opcode::kAdd);
  fb.local_set(1);
  fb.local_get(0).constant(1).emit(Opcode::kAdd).local_set(0);
  fb.jump(top);
  fb.bind(done);
  fb.local_get(1).ret();
  const vm::Module m = mb.build();
  ASSERT_TRUE(vm::validate(m).ok());

  for (std::uint64_t fuel = 0; fuel < 160; ++fuel) {
    vm::ExecutionLimits limits;
    limits.fuel = fuel;
    const Observation ref = run_sync(m, limits, Engine::kReference);
    const Observation fast = run_sync(m, limits, Engine::kFast);
    std::string why;
    ASSERT_TRUE(same_observation(ref, fast, &why))
        << "fuel=" << fuel << ": " << why;
    if (ref.outcome.trapped) {
      EXPECT_EQ(ref.outcome.fuel_used, fuel) << "fuel=" << fuel;
    }
  }
}

// A mid-block memory trap must refund the unexecuted tail of the
// batch-charged block so fuel_used matches pay-per-instruction.
TEST(VmDifferential, MidBlockTrapRefundsBatchedFuel) {
  vm::ModuleBuilder mb;
  mb.memory(64);
  auto& fb = mb.function(vm::kEntryPointName, 0, 1);
  fb.constant(1).constant(2).emit(Opcode::kAdd);  // 3 insts execute
  fb.constant(1 << 20).emit(Opcode::kLoad64);     // 5th inst traps
  fb.emit(Opcode::kDrop);                         // never reached
  fb.constant(0).ret();
  const vm::Module m = mb.build();
  ASSERT_TRUE(vm::validate(m).ok());

  const Observation ref = run_sync(m, {}, Engine::kReference);
  const Observation fast = run_sync(m, {}, Engine::kFast);
  std::string why;
  ASSERT_TRUE(same_observation(ref, fast, &why)) << why;
  EXPECT_TRUE(fast.outcome.trapped);
  EXPECT_EQ(fast.outcome.trap, vm::TrapKind::kMemoryOutOfBounds);
  EXPECT_EQ(fast.outcome.fuel_used, 5u);  // not the whole block
  EXPECT_EQ(fast.outcome.trap_pc, 4u);
}

// resume() into a full value stack must trap identically in both engines.
// Only a zero-arity async call can block with a full stack (popping args
// frees slots), so the module parks a value and calls h_block0.
TEST(VmDifferential, ResumeOverflowMatchesReference) {
  vm::ModuleBuilder mb;
  mb.memory(64);
  auto& fb = mb.function(vm::kEntryPointName, 0, 1);
  fb.constant(1);  // occupies the whole (size-1) stack
  fb.call_host("h_block0");
  fb.emit(Opcode::kDrop);
  fb.constant(0).ret();
  const vm::Module m = mb.build();
  ASSERT_TRUE(vm::validate(m).ok());

  auto run_blocked = [&](Engine engine) {
    Observation obs;
    vm::ExecutionLimits limits;
    limits.max_value_stack = 1;
    auto instance =
        vm::Instance::create(m, make_hosts(&obs.host_log, true), limits);
    EXPECT_TRUE(instance.ok()) << instance.error_message();
    auto exec =
        vm::Execution::start(*instance, vm::kEntryPointName, {}, engine);
    EXPECT_TRUE(exec.ok());
    EXPECT_EQ(exec->step(), vm::Execution::State::kBlocked);
    obs.block_log.emplace_back(exec->block().import_name,
                               exec->block().args);
    exec->resume(42);  // stack already full: traps without running code
    EXPECT_EQ(exec->step(), vm::Execution::State::kDone);
    obs.outcome = exec->outcome();
    obs.memory = *instance->read_memory(0, instance->memory_size());
    obs.globals.assign(instance->globals().begin(),
                       instance->globals().end());
    return obs;
  };
  const Observation ref = run_blocked(Engine::kReference);
  const Observation fast = run_blocked(Engine::kFast);
  std::string why;
  ASSERT_TRUE(same_observation(ref, fast, &why)) << why;
}

// Globals persist on the instance; a second run through a DIFFERENT
// engine must observe the first run's writes (the engines share all
// instance state).
TEST(VmDifferential, EnginesShareInstanceState) {
  vm::ModuleBuilder mb;
  mb.memory(64);
  const auto g = mb.add_global(0);
  auto& fb = mb.function(vm::kEntryPointName, 0, 0);
  fb.global_get(g).constant(1).emit(Opcode::kAdd).global_set(g);
  fb.global_get(g).ret();
  const vm::Module m = mb.build();
  ASSERT_TRUE(vm::validate(m).ok());

  auto instance = vm::Instance::create(m, {}, {});
  ASSERT_TRUE(instance.ok());
  const auto first =
      instance->run_function(vm::kEntryPointName, {}, Engine::kFast);
  const auto second =
      instance->run_function(vm::kEntryPointName, {}, Engine::kReference);
  const auto third =
      instance->run_function(vm::kEntryPointName, {}, Engine::kFast);
  EXPECT_EQ(first.value, 1);
  EXPECT_EQ(second.value, 2);
  EXPECT_EQ(third.value, 3);
}

}  // namespace
}  // namespace debuglet
