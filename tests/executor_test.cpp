#include <gtest/gtest.h>

#include "apps/debuglets.hpp"
#include "executor/executor.hpp"
#include "simnet/scenarios.hpp"
#include "vm/assembler.hpp"

namespace debuglet::executor {
namespace {

using net::Protocol;

// --- Manifest --------------------------------------------------------------

TEST(Manifest, SerializeParseRoundTrip) {
  Manifest m;
  m.cpu_fuel = 123456;
  m.max_duration = duration::seconds(42);
  m.peak_memory = 8192;
  m.max_packets_sent = 10;
  m.max_packets_received = 20;
  m.allowed_addresses = {net::Ipv4Address(10, 0, 0, 1),
                         net::Ipv4Address(10, 0, 0, 2)};
  m.capabilities = {Capability::kUdp, Capability::kClock};
  const Bytes b = m.serialize();
  auto back = Manifest::parse(BytesView(b.data(), b.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(*back, m);
}

TEST(Manifest, ParseRejectsTrailing) {
  Manifest m;
  Bytes b = m.serialize();
  b.push_back(0);
  EXPECT_FALSE(Manifest::parse(BytesView(b.data(), b.size())).ok());
}

TEST(Manifest, AddressAllowlist) {
  Manifest m;
  m.allowed_addresses = {net::Ipv4Address(1, 2, 3, 4)};
  EXPECT_TRUE(m.allows_address(net::Ipv4Address(1, 2, 3, 4)));
  EXPECT_FALSE(m.allows_address(net::Ipv4Address(1, 2, 3, 5)));
}

TEST(ManifestPolicy, EachLimitEnforced) {
  ExecutorPolicy policy;
  policy.max_cpu_fuel = 1000;
  policy.max_duration = duration::seconds(10);
  policy.max_memory = 4096;
  policy.max_packets = 100;
  policy.grantable = {Capability::kUdp, Capability::kClock};

  Manifest ok;
  ok.cpu_fuel = 1000;
  ok.max_duration = duration::seconds(10);
  ok.peak_memory = 4096;
  ok.max_packets_sent = 100;
  ok.max_packets_received = 100;
  ok.allowed_addresses = {net::Ipv4Address(1, 1, 1, 1)};
  ok.capabilities = {Capability::kUdp};
  EXPECT_TRUE(evaluate_manifest(ok, policy).ok());

  Manifest fuel = ok;
  fuel.cpu_fuel = 1001;
  EXPECT_FALSE(evaluate_manifest(fuel, policy).ok());
  Manifest dur = ok;
  dur.max_duration = duration::seconds(11);
  EXPECT_FALSE(evaluate_manifest(dur, policy).ok());
  Manifest mem = ok;
  mem.peak_memory = 4097;
  EXPECT_FALSE(evaluate_manifest(mem, policy).ok());
  Manifest pkts = ok;
  pkts.max_packets_sent = 101;
  EXPECT_FALSE(evaluate_manifest(pkts, policy).ok());
  Manifest cap = ok;
  cap.capabilities = {Capability::kTcp};
  EXPECT_FALSE(evaluate_manifest(cap, policy).ok());
  Manifest noaddr = ok;
  noaddr.allowed_addresses.clear();
  EXPECT_FALSE(evaluate_manifest(noaddr, policy).ok());
}

// --- ResultRecord / certification -------------------------------------------

ResultRecord sample_record() {
  ResultRecord r;
  r.application_id = 42;
  r.executor_key = {7, 2};
  r.scheduled_start = duration::seconds(1);
  r.actual_start = duration::seconds(1) + duration::milliseconds(10);
  r.end_time = duration::seconds(3);
  r.exit_value = 99;
  r.packets_sent = 10;
  r.packets_received = 9;
  r.fuel_used = 12345;
  r.output = bytes_of("measurement-output");
  return r;
}

TEST(ResultRecord, RoundTrip) {
  const ResultRecord r = sample_record();
  const Bytes b = r.serialize();
  auto back = ResultRecord::parse(BytesView(b.data(), b.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(*back, r);
}

TEST(Certification, VerifiesAndDetectsTampering) {
  const crypto::KeyPair as_key = crypto::KeyPair::from_seed(5001);
  const CertifiedResult cert = certify(sample_record(), as_key);
  EXPECT_TRUE(verify_certified(cert));
  const crypto::PublicKey pk = as_key.public_key();
  EXPECT_TRUE(verify_certified(cert, &pk));

  // Tampering with the record invalidates the signature.
  CertifiedResult tampered = cert;
  tampered.record.exit_value = 0;
  EXPECT_FALSE(verify_certified(tampered));

  // A different AS key must not pass as the expected signer.
  const crypto::PublicKey other =
      crypto::KeyPair::from_seed(5002).public_key();
  EXPECT_FALSE(verify_certified(cert, &other));
}

TEST(Certification, SerializedRoundTrip) {
  const crypto::KeyPair as_key = crypto::KeyPair::from_seed(5003);
  const CertifiedResult cert = certify(sample_record(), as_key);
  const Bytes b = cert.serialize();
  auto back = CertifiedResult::parse(BytesView(b.data(), b.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_TRUE(verify_certified(*back));
  EXPECT_EQ(back->record, cert.record);
}

// --- ExecutorService end-to-end ---------------------------------------------

struct World {
  simnet::Scenario scenario;
  std::unique_ptr<ExecutorService> client_exec;
  std::unique_ptr<ExecutorService> server_exec;
  crypto::KeyPair client_as_key = crypto::KeyPair::from_seed(1);
  crypto::KeyPair server_as_key = crypto::KeyPair::from_seed(2);
};

World make_world(std::size_t chain_len = 3, double hop_ms = 5.0) {
  World w{simnet::build_chain_scenario(chain_len, 2718, hop_ms), nullptr,
          nullptr};
  ExecutorConfig cfg;
  w.client_exec = std::make_unique<ExecutorService>(
      *w.scenario.network, simnet::chain_egress(0), w.client_as_key, cfg, 10);
  w.server_exec = std::make_unique<ExecutorService>(
      *w.scenario.network, simnet::chain_ingress(chain_len - 1),
      w.server_as_key, cfg, 20);
  return w;
}

DebugletApp make_client_app(const World& w, std::int64_t probes,
                            std::uint16_t server_port) {
  apps::ProbeClientParams params;
  params.protocol = Protocol::kUdp;
  params.server = w.server_exec->address();
  params.server_port = server_port;
  params.probe_count = probes;
  params.interval_ms = 100;
  params.recv_timeout_ms = 80;
  DebugletApp app;
  app.application_id = 1;
  app.module_bytes = apps::make_probe_client_debuglet().serialize();
  app.manifest = apps::client_manifest(Protocol::kUdp,
                                       w.server_exec->address(), probes,
                                       duration::seconds(60));
  app.parameters = params.to_parameters();
  return app;
}

DebugletApp make_server_app(const World& w, std::uint16_t port) {
  apps::EchoServerParams params;
  params.protocol = Protocol::kUdp;
  params.idle_timeout_ms = 3000;
  DebugletApp app;
  app.application_id = 2;
  app.module_bytes = apps::make_echo_server_debuglet().serialize();
  app.manifest = apps::server_manifest(Protocol::kUdp,
                                       w.client_exec->address(), 100,
                                       duration::seconds(60));
  app.parameters = params.to_parameters();
  app.listen_port = port;
  return app;
}

TEST(Executor, DebugletPairMeasuresRtt) {
  World w = make_world();
  constexpr std::uint16_t kPort = 45000;
  std::optional<CertifiedResult> client_result, server_result;

  ASSERT_TRUE(w.server_exec
                  ->deploy_and_schedule(
                      make_server_app(w, kPort), duration::seconds(1),
                      [&](const CertifiedResult& r) { server_result = r; })
                  .ok());
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      make_client_app(w, 20, kPort), duration::seconds(1),
                      [&](const CertifiedResult& r) { client_result = r; })
                  .ok());
  w.scenario.queue->run();

  ASSERT_TRUE(client_result.has_value());
  ASSERT_TRUE(server_result.has_value());
  EXPECT_FALSE(client_result->record.trapped)
      << client_result->record.trap_message;
  EXPECT_FALSE(server_result->record.trapped)
      << server_result->record.trap_message;
  EXPECT_EQ(client_result->record.exit_value, 20) << "all probes answered";
  EXPECT_EQ(client_result->record.packets_sent, 20u);
  EXPECT_EQ(client_result->record.packets_received, 20u);
  EXPECT_EQ(server_result->record.exit_value, 20);

  // Both results carry valid AS signatures.
  EXPECT_TRUE(verify_certified(*client_result));
  EXPECT_TRUE(verify_certified(*server_result));

  // RTT ≈ 2 hops x 5 ms x 2 directions + transit + sandbox I/O overheads.
  auto samples = apps::decode_samples(
      BytesView(client_result->record.output.data(),
                client_result->record.output.size()));
  ASSERT_TRUE(samples.ok()) << samples.error_message();
  ASSERT_EQ(samples->size(), 20u);
  RunningStats stats;
  for (const auto& s : *samples)
    stats.add(static_cast<double>(s.delay_ns) / 1e6);
  EXPECT_NEAR(stats.mean(), 20.0 + 0.3 + 4 * 0.08, 0.5);

  // Setup time (~10 ms) delays the actual start (paper §V-B).
  EXPECT_GE(client_result->record.actual_start,
            duration::seconds(1) + duration::milliseconds(9));
  EXPECT_LE(client_result->record.actual_start,
            duration::seconds(1) + duration::milliseconds(12));
}

TEST(Executor, ManifestPacketBudgetTerminates) {
  World w = make_world();
  constexpr std::uint16_t kPort = 45001;
  std::optional<CertifiedResult> client_result;
  ASSERT_TRUE(w.server_exec
                  ->deploy_and_schedule(make_server_app(w, kPort),
                                        duration::seconds(1),
                                        [](const CertifiedResult&) {})
                  .ok());
  DebugletApp client = make_client_app(w, 50, kPort);
  // Only 5 sends allowed although the program wants 50.
  client.manifest.max_packets_sent = 5;
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      std::move(client), duration::seconds(1),
                      [&](const CertifiedResult& r) { client_result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(client_result.has_value());
  EXPECT_TRUE(client_result->record.trapped);
  EXPECT_NE(client_result->record.trap_message.find("budget"),
            std::string::npos);
  EXPECT_EQ(client_result->record.packets_sent, 5u);
}

TEST(Executor, ManifestAddressAllowlistEnforced) {
  World w = make_world();
  constexpr std::uint16_t kPort = 45002;
  std::optional<CertifiedResult> client_result;
  DebugletApp client = make_client_app(w, 5, kPort);
  // Allow only an unrelated address: the send must trap.
  client.manifest.allowed_addresses = {net::Ipv4Address(9, 9, 9, 9)};
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      std::move(client), duration::seconds(1),
                      [&](const CertifiedResult& r) { client_result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(client_result.has_value());
  EXPECT_TRUE(client_result->record.trapped);
  EXPECT_NE(client_result->record.trap_message.find("allowlist"),
            std::string::npos);
}

TEST(Executor, MissingCapabilityRejectedAtCallTime) {
  World w = make_world();
  std::optional<CertifiedResult> result;
  DebugletApp app = make_client_app(w, 5, 45003);
  // Strip the UDP capability but keep clock/random.
  app.manifest.capabilities = {Capability::kClock, Capability::kRandom};
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      std::move(app), duration::seconds(1),
                      [&](const CertifiedResult& r) { result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->record.trapped);
  EXPECT_NE(result->record.trap_message.find("capability"),
            std::string::npos);
}

TEST(Executor, DeployRejectsOversizedManifest) {
  World w = make_world();
  DebugletApp app = make_client_app(w, 5, 45004);
  app.manifest.cpu_fuel = 1ULL << 60;
  EXPECT_FALSE(w.client_exec->deploy(std::move(app)).ok());
}

TEST(Executor, DeployRejectsInvalidModule) {
  World w = make_world();
  DebugletApp app = make_client_app(w, 5, 45005);
  app.module_bytes = bytes_of("not a module");
  EXPECT_FALSE(w.client_exec->deploy(std::move(app)).ok());
}

TEST(Executor, DeployRejectsModuleWithoutEntry) {
  World w = make_world();
  auto module = vm::assemble(R"(
    func not_the_entry
      const 0
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  DebugletApp app = make_client_app(w, 5, 45006);
  app.module_bytes = module->serialize();
  EXPECT_FALSE(w.client_exec->deploy(std::move(app)).ok());
}

TEST(Executor, PortConflictRejected) {
  World w = make_world();
  DebugletApp a = make_server_app(w, 45100);
  DebugletApp b = make_server_app(w, 45100);
  EXPECT_TRUE(w.server_exec->deploy(std::move(a)).ok());
  EXPECT_FALSE(w.server_exec->deploy(std::move(b)).ok());
}

TEST(Executor, RecvTimeoutReturnsMinusOne) {
  World w = make_world();
  // Client probing a port where no server listens: all recv time out.
  std::optional<CertifiedResult> result;
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      make_client_app(w, 5, 45200), duration::seconds(1),
                      [&](const CertifiedResult& r) { result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->record.trapped) << result->record.trap_message;
  EXPECT_EQ(result->record.exit_value, 0) << "no probe answered";
  EXPECT_EQ(result->record.packets_sent, 5u);
  EXPECT_TRUE(result->record.output.empty());
}

TEST(Executor, DeadlineTerminatesLongSleeper) {
  World w = make_world();
  auto module = vm::assemble(R"(
    import dbg_sleep
    func run_debuglet
      const 100000
      call_host dbg_sleep
      drop
      const 7
      return
    end
  )");
  ASSERT_TRUE(module.ok()) << module.error_message();
  DebugletApp app;
  app.application_id = 77;
  app.module_bytes = module->serialize();
  app.manifest.max_duration = duration::seconds(2);
  app.manifest.capabilities = {};
  std::optional<CertifiedResult> result;
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      std::move(app), 0,
                      [&](const CertifiedResult& r) { result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->record.trapped);
  EXPECT_NE(result->record.trap_message.find("deadline"), std::string::npos);
}

TEST(Executor, OutputBufferConventionWhenNoExplicitOutput) {
  World w = make_world();
  auto module = vm::assemble(R"(
    memory 8192
    buffer output_buffer 4096 16
    func run_debuglet
      const 4096
      const 4242
      store64
      const 0
      return
    end
  )");
  ASSERT_TRUE(module.ok()) << module.error_message();
  DebugletApp app;
  app.application_id = 88;
  app.module_bytes = module->serialize();
  std::optional<CertifiedResult> result;
  ASSERT_TRUE(w.client_exec
                  ->deploy_and_schedule(
                      std::move(app), 0,
                      [&](const CertifiedResult& r) { result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->record.output.size(), 16u);
  BytesReader r(BytesView(result->record.output.data(), 8));
  EXPECT_EQ(*r.u64(), 4242u);
}

TEST(Executor, ActiveDeploymentsTracked) {
  World w = make_world();
  EXPECT_EQ(w.server_exec->active_deployments(), 0u);
  ASSERT_TRUE(w.server_exec
                  ->deploy_and_schedule(make_server_app(w, 45300),
                                        duration::seconds(1),
                                        [](const CertifiedResult&) {})
                  .ok());
  EXPECT_EQ(w.server_exec->active_deployments(), 1u);
  w.scenario.queue->run();
  EXPECT_EQ(w.server_exec->active_deployments(), 0u);
}

}  // namespace
}  // namespace debuglet::executor
