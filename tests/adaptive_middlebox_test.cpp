// Adaptive-adversary tests: the learning DPI mode of simnet/middlebox
// (signature frequency table, promotion at the learning horizon, TTL
// forgetting, the stateful flow table with idle/capacity eviction and TCP
// stream byte counting), the zero-RNG determinism contract of the learner,
// the min-event gate of the legacy loss z statistic, and the end-to-end
// arms race: a detector that repeats identical twins trains its own
// adversary and goes blind, while randomized twins starve the learner and
// keep naming the cheating AS.
#include <gtest/gtest.h>

#include <vector>

#include "core/discrimination.hpp"
#include "simnet/middlebox.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::simnet {
namespace {

using net::Protocol;

net::Packet packet_for(net::ProbeSpec spec) {
  if (spec.source.value == 0) spec.source = net::Ipv4Address(10, 0, 1, 200);
  if (spec.destination.value == 0)
    spec.destination = net::Ipv4Address(10, 0, 2, 200);
  auto wire = net::build_probe(spec);
  EXPECT_TRUE(wire.ok()) << wire.error_message();
  auto packet = net::parse_packet(BytesView(wire->data(), wire->size()));
  EXPECT_TRUE(packet.ok()) << packet.error_message();
  return *packet;
}

Bytes high_entropy(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (std::uint8_t& b : out)
    b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return out;
}

// A UDP packet with the given ports and payload — the twin shape the
// detector emits (the destination port is the one discriminating bit).
net::Packet twin(std::uint16_t sport, std::uint16_t dport,
                 const Bytes& payload) {
  net::ProbeSpec spec;
  spec.source_port = sport;
  spec.destination_port = dport;
  spec.payload = payload;
  return packet_for(spec);
}

// --- The signature feature model ---------------------------------------------

TEST(AdaptiveSignature, TwinsCollideAndEveryFeatureSplitsTheKey) {
  const Bytes payload = high_entropy(48, 11);
  const net::Packet probe = twin(51000, 40021, payload);
  const net::Packet data = twin(51000, 27101, payload);

  // The twins differ only in destination port — which is NOT part of the
  // signature, so a learned probe signature matches its data twin. This
  // collision is the whole attack.
  EXPECT_EQ(adaptive_signature_of(probe), adaptive_signature_of(data));

  // Source ports bucket by 16: 51000 and 51007 share a bucket, 51008
  // starts the next one.
  EXPECT_EQ(adaptive_signature_of(twin(51007, 40021, payload)),
            adaptive_signature_of(probe));
  EXPECT_NE(adaptive_signature_of(twin(51008, 40021, payload)),
            adaptive_signature_of(probe));

  // A fresh payload prefix changes the key (the randomized detector's
  // per-round payload mutation defeats recurrence).
  EXPECT_NE(adaptive_signature_of(twin(51000, 40021, high_entropy(48, 12))),
            adaptive_signature_of(probe));

  // Same prefix, different size bucket: still a different key.
  Bytes longer = payload;
  longer.resize(96, 0x5A);
  EXPECT_NE(adaptive_signature_of(twin(51000, 40021, longer)),
            adaptive_signature_of(probe));
}

// --- Learning and promotion --------------------------------------------------

TEST(AdaptiveLearning, PromotionAtTheHorizonExemptsTheDataTwin) {
  ClassPolicy slow;
  slow.extra_delay_ms = 25.0;
  AdaptiveConfig ad;
  ad.enabled = true;
  ad.promote_after = 4;
  MiddleboxPlan plan;
  plan.policy_all(slow).recognize_probe_signatures(true).adaptive(ad);

  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(1);
  const Bytes payload = high_entropy(48, 21);
  const net::Packet probe = twin(51000, 40021, payload);
  const net::Packet data = twin(51000, 27101, payload);

  // Before any learning: the probe rides clean, the data twin suffers —
  // the differential the detector keys on.
  SimTime now = 0;
  const MiddleboxVerdict before =
      apply_middlebox(plan, data, now, rng, runtime, stats);
  EXPECT_EQ(before.cls, TrafficClass::kOther);
  EXPECT_FALSE(before.exempted);
  EXPECT_GT(before.extra_delay_ms, 0.0);

  // Sightings below the horizon are learned but not promoted.
  for (int i = 0; i < 3; ++i) {
    now += duration::milliseconds(50);
    const MiddleboxVerdict v =
        apply_middlebox(plan, probe, now, rng, runtime, stats);
    EXPECT_EQ(v.cls, TrafficClass::kMeasurement);
    EXPECT_TRUE(v.exempted);
    EXPECT_FALSE(v.promoted_signature);
  }
  EXPECT_EQ(stats.signatures_learned, 3u);
  EXPECT_EQ(stats.signatures_promoted, 0u);
  EXPECT_EQ(stats.adaptive_matched, 0u);

  // The sighting that reaches the horizon promotes the signature.
  now += duration::milliseconds(50);
  const MiddleboxVerdict crossing =
      apply_middlebox(plan, probe, now, rng, runtime, stats);
  EXPECT_TRUE(crossing.promoted_signature);
  EXPECT_EQ(stats.signatures_promoted, 1u);

  // The data twin now matches the promoted signature: reclassified as
  // measurement, exempted alongside the probe — the differential is gone.
  now += duration::milliseconds(50);
  const MiddleboxVerdict after =
      apply_middlebox(plan, data, now, rng, runtime, stats);
  EXPECT_TRUE(after.adaptive_matched);
  EXPECT_EQ(after.cls, TrafficClass::kMeasurement);
  EXPECT_TRUE(after.exempted);
  EXPECT_EQ(after.extra_delay_ms, 0.0);
  EXPECT_EQ(stats.adaptive_matched, 1u);
}

TEST(AdaptiveLearning, SignatureTtlForgetsPromotedEntries) {
  ClassPolicy slow;
  slow.extra_delay_ms = 25.0;
  AdaptiveConfig ad;
  ad.enabled = true;
  ad.promote_after = 2;
  MiddleboxPlan plan;
  plan.policy_all(slow).recognize_probe_signatures(true).adaptive(ad);

  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(2);
  const Bytes payload = high_entropy(48, 22);
  const net::Packet probe = twin(51000, 40021, payload);
  const net::Packet data = twin(51000, 27101, payload);

  SimTime now = 0;
  for (int i = 0; i < 2; ++i) {
    now += duration::milliseconds(50);
    apply_middlebox(plan, probe, now, rng, runtime, stats);
  }
  ASSERT_EQ(stats.signatures_promoted, 1u);
  now += duration::milliseconds(50);
  ASSERT_TRUE(apply_middlebox(plan, data, now, rng, runtime, stats)
                  .adaptive_matched);

  // Past the TTL the entry is stale: the campaign ended, the middlebox
  // forgets, and the data twin is judged on its own features again.
  now += ad.signature_ttl + duration::seconds(1);
  const MiddleboxVerdict v =
      apply_middlebox(plan, data, now, rng, runtime, stats);
  EXPECT_FALSE(v.adaptive_matched);
  EXPECT_EQ(v.cls, TrafficClass::kOther);
  EXPECT_FALSE(v.exempted);
  EXPECT_GT(v.extra_delay_ms, 0.0);
}

// --- The stateful flow table -------------------------------------------------

TEST(AdaptiveFlows, IdleEvictionRestartsTheFlow) {
  AdaptiveConfig ad;
  ad.enabled = true;
  MiddleboxPlan plan;
  plan.adaptive(ad);
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(3);
  const net::Packet pkt = twin(51000, 27101, high_entropy(48, 31));
  const std::uint64_t key = middlebox_flow_key(pkt);

  apply_middlebox(plan, pkt, 0, rng, runtime, stats);
  apply_middlebox(plan, pkt, duration::milliseconds(10), rng, runtime, stats);
  EXPECT_EQ(stats.flows_tracked, 1u);
  EXPECT_EQ(stats.flows_evicted, 0u);
  EXPECT_EQ(runtime.flows.at(key).packets, 2u);

  // Idle past the timeout: the old flow ends, this packet starts a new one.
  const SimTime later =
      duration::milliseconds(10) + ad.flow_idle_timeout + duration::seconds(1);
  const MiddleboxVerdict v =
      apply_middlebox(plan, pkt, later, rng, runtime, stats);
  EXPECT_EQ(v.flows_evicted, 1u);
  EXPECT_EQ(stats.flows_evicted, 1u);
  EXPECT_EQ(stats.flows_tracked, 2u);
  EXPECT_EQ(runtime.flows.at(key).packets, 1u);
}

TEST(AdaptiveFlows, CapacityEvictsTheStalestFlow) {
  AdaptiveConfig ad;
  ad.enabled = true;
  ad.max_flows = 2;
  MiddleboxPlan plan;
  plan.adaptive(ad);
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(4);
  const net::Packet a = twin(52000, 27101, high_entropy(48, 32));
  const net::Packet b = twin(52100, 27101, high_entropy(48, 33));
  const net::Packet c = twin(52200, 27101, high_entropy(48, 34));

  apply_middlebox(plan, a, 0, rng, runtime, stats);
  apply_middlebox(plan, b, duration::milliseconds(1), rng, runtime, stats);
  // Inserting the third flow with the table at capacity evicts the stalest.
  apply_middlebox(plan, c, duration::milliseconds(2), rng, runtime, stats);
  EXPECT_EQ(stats.flows_tracked, 3u);
  EXPECT_EQ(stats.flows_evicted, 1u);
  EXPECT_EQ(runtime.flows.count(middlebox_flow_key(a)), 0u);
  EXPECT_EQ(runtime.flows.count(middlebox_flow_key(b)), 1u);
  EXPECT_EQ(runtime.flows.count(middlebox_flow_key(c)), 1u);
}

TEST(AdaptiveFlows, TcpStreamBytesCountTcpPayloadOnly) {
  AdaptiveConfig ad;
  ad.enabled = true;
  MiddleboxPlan plan;
  plan.adaptive(ad);
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(5);

  net::ProbeSpec tcp;
  tcp.protocol = Protocol::kTcp;
  tcp.source_port = 51000;
  tcp.destination_port = 443;
  tcp.payload = high_entropy(100, 41);
  const net::Packet stream = packet_for(tcp);
  const net::Packet datagram = twin(51000, 27101, high_entropy(100, 42));

  apply_middlebox(plan, stream, 0, rng, runtime, stats);
  apply_middlebox(plan, stream, duration::milliseconds(1), rng, runtime,
                  stats);
  apply_middlebox(plan, datagram, duration::milliseconds(2), rng, runtime,
                  stats);
  apply_middlebox(plan, datagram, duration::milliseconds(3), rng, runtime,
                  stats);

  const FlowState& tcp_flow = runtime.flows.at(middlebox_flow_key(stream));
  EXPECT_EQ(tcp_flow.cls, TrafficClass::kInteractive);
  EXPECT_EQ(tcp_flow.payload_bytes, 200u);
  EXPECT_EQ(tcp_flow.tcp_stream_bytes, 200u);

  const FlowState& udp_flow = runtime.flows.at(middlebox_flow_key(datagram));
  EXPECT_EQ(udp_flow.payload_bytes, 200u);
  EXPECT_EQ(udp_flow.tcp_stream_bytes, 0u);
}

TEST(AdaptiveFlows, ClassIsPinnedAtTheFirstPacket) {
  AdaptiveConfig ad;
  ad.enabled = true;
  MiddleboxPlan plan;
  plan.adaptive(ad).recognize_probe_signatures(true);
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(6);

  // Same 5-tuple, two payload styles: the zero-padded opener reads as
  // measurement, the noisy follow-up would read as "other" on its own.
  const net::Packet padded = twin(51000, 27101, Bytes(64, 0));
  const net::Packet noisy = twin(51000, 27101, high_entropy(64, 51));
  ASSERT_EQ(classify_packet(noisy), TrafficClass::kOther);

  const MiddleboxVerdict first =
      apply_middlebox(plan, padded, 0, rng, runtime, stats);
  EXPECT_EQ(first.cls, TrafficClass::kMeasurement);

  // Stateful DPI: the flow keeps the class of its first packet, so the
  // noisy packet inherits measurement treatment (and the exemption).
  const MiddleboxVerdict second = apply_middlebox(
      plan, noisy, duration::milliseconds(5), rng, runtime, stats);
  EXPECT_EQ(second.cls, TrafficClass::kMeasurement);
  EXPECT_TRUE(second.exempted);
}

// --- Determinism: learning is pure counting ----------------------------------

TEST(AdaptiveDeterminism, LearnerDrawsNothingFromTheRng) {
  AdaptiveConfig ad;
  ad.enabled = true;
  ad.promote_after = 2;
  MiddleboxPlan plan;
  plan.adaptive(ad);  // no policies configured: nothing may draw
  MiddleboxRuntime runtime;
  MiddleboxStats stats;
  Rng rng(77);
  const Bytes payload = high_entropy(48, 61);
  for (int i = 0; i < 16; ++i)
    apply_middlebox(plan, twin(51000, 40021, payload),
                    duration::milliseconds(50) * i, rng, runtime, stats);
  EXPECT_GT(stats.signatures_promoted, 0u);
  // The shard-invariance contract: learning, promotion and flow tracking
  // consumed zero draws — the stream is exactly where a fresh one starts.
  EXPECT_EQ(rng.next_u64(), Rng(77).next_u64());
}

// --- The legacy loss z statistic's min-event gate ----------------------------

TEST(LossZGate, FewLossEventsAreInconclusive) {
  core::TwinClassSummary probe;
  core::TwinClassSummary data;
  probe.sent = 40;
  probe.received = 40;
  data.sent = 40;
  data.received = 38;  // 2 losses: below the 5-event gate

  EXPECT_EQ(core::two_proportion_loss_z(probe, data, 5), 0.0);
  // Ungated, the same handful of events yields a (misleadingly) large z.
  EXPECT_GT(core::two_proportion_loss_z(probe, data, 0), 0.0);

  // With enough events the statistic counts again — and points the right
  // way (data-like loses more => positive).
  data.received = 28;
  EXPECT_GT(core::two_proportion_loss_z(probe, data, 5), 2.0);
}

// --- The arms race end to end ------------------------------------------------

// A 5-AS chain whose middle AS hides a slow queue behind fault hiding AND
// runs the learner (the bench scenario, one seed). One static detector
// visit trains the learner past the horizon; after that, static twins are
// evaded while randomized twins still name the AS.
Scenario arms_race_scenario(std::uint64_t seed, std::uint32_t promote_after) {
  Scenario s = build_chain_scenario(5, seed, 5.0);
  s.network->set_int_enabled(true);
  ClassPolicy slow;
  slow.extra_delay_ms = 25.0;
  slow.drop_pm = 60.0;
  MiddleboxPlan plan;
  plan.policy_all(slow).recognize_probe_signatures(true);
  const auto& topo = s.network->topology();
  for (topology::AsNumber as = 1; as <= 5; ++as) {
    plan.recognize(topo.address_of(topology::InterfaceKey{as, 1}));
    plan.recognize(topo.address_of(topology::InterfaceKey{as, 2}));
  }
  AdaptiveConfig adaptive;
  adaptive.enabled = true;
  adaptive.promote_after = promote_after;
  plan.adaptive(adaptive);
  EXPECT_TRUE(s.network->install_middlebox(3, plan).ok());
  return s;
}

core::DiscriminationReport run_detector(Scenario& s, std::uint64_t seed,
                                        bool randomize) {
  core::DiscriminationDetector::Options opts;
  opts.randomize_twins = randomize;
  core::DiscriminationDetector detector(*s.network, 1, 5, seed, opts);
  auto report = detector.run();
  EXPECT_TRUE(report.ok()) << report.error_message();
  return *report;
}

TEST(ArmsRace, StaticTwinsTrainTheAdversaryAndGoBlind) {
  const std::uint64_t seed = 17002;
  Scenario s = arms_race_scenario(seed, 8);

  // The naive operator's repeated static check: the first visit feeds the
  // learner the recurrence it needs...
  run_detector(s, seed + 31, /*randomize=*/false);
  const MiddleboxStats trained = s.network->middlebox_stats(3);
  EXPECT_GT(trained.signatures_promoted, 0u);

  // ...and the second identical visit is evaded: both twins match the
  // promoted signature and ride clean, so there is nothing to detect.
  const core::DiscriminationReport second =
      run_detector(s, seed + 31, /*randomize=*/false);
  EXPECT_FALSE(second.detected) << second.decision;
  EXPECT_GT(s.network->middlebox_stats(3).adaptive_matched,
            trained.adaptive_matched);
}

TEST(ArmsRace, RandomizedTwinsStarveTheLearnerAndNameTheAs) {
  const std::uint64_t seed = 17002;
  Scenario s = arms_race_scenario(seed, 8);

  // The same warm-up trains the learner identically — but the hardened
  // detector never reuses a signature, so the promoted entry matches
  // nothing it sends and the SPRT names the AS as usual.
  run_detector(s, seed + 31, /*randomize=*/false);
  ASSERT_GT(s.network->middlebox_stats(3).signatures_promoted, 0u);

  const core::DiscriminationReport report =
      run_detector(s, seed + 31, /*randomize=*/true);
  EXPECT_TRUE(report.detected) << report.decision;
  EXPECT_EQ(report.named_as(), 3u);
  EXPECT_GE(report.top_confidence(), 0.8);
  // Sequential testing beats the legacy fixed-40 budget.
  EXPECT_LE(report.rounds_used, 40u);
}

}  // namespace
}  // namespace debuglet::simnet
