// Serial-vs-parallel differential tests for Blockchain::submit_batch.
//
// The determinism contract (docs/CHAIN.md): every observable of a batch —
// receipts (including error kinds), the event log and dispatch order,
// object contents and versions, named state, balances, nonces, escrow and
// the sealed block — is a pure function of the batch contents and the
// declared access sets, NOT of the worker count. These tests run the same
// signed workload on fresh chains at 1/2/4/8 workers and compare a full
// rendering of all observables line by line, mirroring the
// vm_differential_test.cpp pattern.
//
// Workloads cover the interesting mix: conflicting and disjoint writes,
// bad signatures and bad nonces (rejected, nonce unconsumed), out-of-gas,
// access violations, contract failures, cross-group escrow overdraws, and
// the marketplace purchase race from the paper (many initiators racing for
// overlapping slots — exactly one winner per slot).
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "marketplace/contract.hpp"
#include "marketplace/reputation.hpp"
#include "util/rng.hpp"

namespace debuglet::chain {
namespace {

using topology::InterfaceKey;

// --- A promiscuous test contract ---------------------------------------------
//
// One dispatch over every CallContext capability, so random workloads
// exercise named state, objects, events and escrow together. Stateless,
// as submit_batch requires.
class KvContract : public Contract {
 public:
  std::string name() const override { return "kv"; }

  Result<Bytes> call(CallContext& ctx, const std::string& function,
                     BytesView arguments) override {
    BytesReader r(arguments);
    if (function == "put") {
      auto key = r.str();
      auto value = r.blob();
      if (!key || !value) return fail("kv: bad put args");
      if (auto s = ctx.write_named(*key, *value); !s) return s.error();
      ctx.emit_event("Put", *key, {});
      return Bytes{};
    }
    if (function == "get") {
      auto key = r.str();
      if (!key) return fail("kv: bad get args");
      BytesWriter w;
      if (ctx.has_named(*key)) {
        auto value = ctx.read_named(*key);
        if (!value) return value.error();
        w.u8(1);
        w.blob(BytesView(value->data(), value->size()));
      } else {
        w.u8(0);
      }
      return w.take();
    }
    if (function == "del") {
      auto key = r.str();
      if (!key) return fail("kv: bad del args");
      if (auto s = ctx.erase_named(*key); !s) return s.error();
      ctx.emit_event("Del", *key, {});
      return Bytes{};
    }
    if (function == "mkobj") {
      auto data = r.blob();
      if (!data) return fail("kv: bad mkobj args");
      auto id = ctx.create_object(std::move(*data));
      if (!id) return id.error();
      BytesWriter w;
      w.u64(*id);
      return w.take();
    }
    if (function == "wobj") {
      auto id = r.u64();
      auto data = r.blob();
      if (!id || !data) return fail("kv: bad wobj args");
      if (auto s = ctx.write_object(*id, std::move(*data)); !s)
        return s.error();
      return Bytes{};
    }
    if (function == "dobj") {
      auto id = r.u64();
      if (!id) return fail("kv: bad dobj args");
      if (auto s = ctx.delete_object(*id); !s) return s.error();
      return Bytes{};
    }
    if (function == "pay") {
      auto to = r.raw(32);
      auto amount = r.u64();
      if (!to || !amount) return fail("kv: bad pay args");
      Address dest;
      std::copy(to->begin(), to->end(), dest.digest.bytes.begin());
      if (auto s = ctx.pay_from_escrow(dest, *amount); !s) return s.error();
      return Bytes{};
    }
    if (function == "boom") return fail("kv: deliberate failure");
    return fail("kv: unknown function '" + function + "'");
  }
};

std::string kv_key(const std::string& key) {
  return named_access_key("kv", key);
}

// --- Snapshot: a full rendering of every chain observable --------------------

struct Snapshot {
  std::vector<std::string> lines;
};

std::string render_receipt(const Result<Receipt>& r) {
  if (!r) return "reject: " + r.error_message();
  std::string s = r->success ? "ok" : "fail";
  s += " kind=";
  s += error_kind_name(r->error_kind);
  s += " err=" + r->error;
  s += " ret=" + to_hex(BytesView(r->return_value.data(),
                                  r->return_value.size()));
  s += " gas=" + std::to_string(r->gas_charged);
  s += " rebate=" + std::to_string(r->storage_rebate_accrued);
  s += " height=" + std::to_string(r->block_height);
  s += " digest=" + r->transaction_digest.hex();
  return s;
}

struct Actor {
  std::string label;
  crypto::KeyPair key;
  Address address;
  Mist mint = 0;

  Actor(std::string l, std::uint64_t seed, Mist m)
      : label(std::move(l)),
        key(crypto::KeyPair::from_seed(seed)),
        address(Address::of(crypto::KeyPair::from_seed(seed).public_key())),
        mint(m) {}
};

Snapshot capture(const Blockchain& chain,
                 const std::vector<std::vector<Result<Receipt>>>& batches,
                 const std::vector<Actor>& actors,
                 const std::vector<std::string>& dispatched) {
  Snapshot snap;
  auto add = [&](std::string line) { snap.lines.push_back(std::move(line)); };
  for (std::size_t b = 0; b < batches.size(); ++b)
    for (std::size_t i = 0; i < batches[b].size(); ++i)
      add("receipt[" + std::to_string(b) + "][" + std::to_string(i) +
          "]: " + render_receipt(batches[b][i]));
  for (const auto& e : chain.events())
    add("event[" + std::to_string(e.sequence) + "]: " + e.contract + " " +
        e.name + " " + e.key + " " +
        to_hex(BytesView(e.payload.data(), e.payload.size())) +
        " t=" + std::to_string(e.timestamp));
  for (std::size_t i = 0; i < dispatched.size(); ++i)
    add("dispatched[" + std::to_string(i) + "]: " + dispatched[i]);
  for (const auto& [id, obj] : chain.objects())
    add("object[" + std::to_string(id) + "]: owner=" + obj.owner.hex() +
        " v" + std::to_string(obj.version) + " rebate=" +
        std::to_string(obj.rebate_credit) + " data=" +
        to_hex(BytesView(obj.data.data(), obj.data.size())));
  for (const auto& [key, entry] : chain.named_state())
    add("named[" + key + "]: v" + std::to_string(entry.version) + " data=" +
        to_hex(BytesView(entry.data.data(), entry.data.size())));
  for (const auto& actor : actors)
    add("account[" + actor.label +
        "]: balance=" + std::to_string(chain.balance(actor.address)) +
        " nonce=" + std::to_string(chain.nonce(actor.address)));
  add("escrow[kv]: " + std::to_string(chain.escrow_balance("kv")));
  add("escrow[market]: " +
      std::to_string(chain.escrow_balance(marketplace::kContractName)));
  add("height: " + std::to_string(chain.height()));
  for (std::uint64_t h = 0; h < chain.height(); ++h) {
    const Block& block = chain.block(h);
    add("block[" + std::to_string(h) + "]: prev=" + block.previous.hex() +
        " root=" + block.transactions_root.hex() + " txs=" +
        std::to_string(block.transaction_digests.size()) +
        " t=" + std::to_string(block.timestamp));
  }
  add(std::string("integrity: ") + (chain.verify_integrity() ? "ok" : "BAD"));
  return snap;
}

// Compares snapshots line by line; reports the first divergence.
void expect_same_snapshots(const std::vector<unsigned>& workers,
                           const std::vector<Snapshot>& snaps) {
  ASSERT_EQ(workers.size(), snaps.size());
  for (std::size_t w = 1; w < snaps.size(); ++w) {
    const Snapshot& a = snaps[0];
    const Snapshot& b = snaps[w];
    const std::string where = "workers=" + std::to_string(workers[0]) +
                              " vs workers=" + std::to_string(workers[w]);
    ASSERT_EQ(a.lines.size(), b.lines.size()) << where;
    for (std::size_t i = 0; i < a.lines.size(); ++i)
      ASSERT_EQ(a.lines[i], b.lines[i]) << where << " diverges at line " << i;
  }
}

// --- Workload: pre-signed batches replayed onto fresh chains -----------------

struct Workload {
  std::vector<Actor> actors;
  // Each inner vector is one submit_batch call; all but the last are
  // "setup" and run before the measured batch. Transactions are signed
  // once (signing is deterministic) and replayed verbatim on every chain.
  std::vector<std::vector<Transaction>> batches;
  bool with_marketplace = false;
  bool with_reputation = false;
};

struct RunResult {
  Snapshot snap;
  std::vector<std::vector<Result<Receipt>>> results;
};

RunResult run_workload(const Workload& w, unsigned workers) {
  Blockchain chain;
  if (w.with_marketplace) {
    auto contract = std::make_unique<marketplace::MarketplaceContract>();
    EXPECT_TRUE(chain.register_contract(std::move(contract)).ok());
  }
  if (w.with_reputation) {
    auto contract = std::make_unique<marketplace::ReputationContract>();
    EXPECT_TRUE(chain.register_contract(std::move(contract)).ok());
  }
  EXPECT_TRUE(chain.register_contract(std::make_unique<KvContract>()).ok());
  for (const auto& actor : w.actors) chain.mint(actor.address, actor.mint);

  // Record the order events are dispatched to subscribers — an observable
  // of its own (it must match the log order at any worker count).
  std::vector<std::string> dispatched;
  chain.subscribe("kv", "Put", "", [&](const Event& e) {
    dispatched.push_back("kv/Put/" + e.key);
  });
  chain.subscribe("kv", "Del", "", [&](const Event& e) {
    dispatched.push_back("kv/Del/" + e.key);
  });
  chain.subscribe(marketplace::kContractName,
                  marketplace::kEventDebugletDeployed, "",
                  [&](const Event& e) {
                    dispatched.push_back("market/Deployed/" + e.key);
                  });

  RunResult out;
  for (const auto& batch : w.batches)
    out.results.push_back(chain.submit_batch(batch, BatchOptions{workers}));
  out.snap = capture(chain, out.results, w.actors, dispatched);
  return out;
}

// Object ids are a pure function of (block height, canonical index,
// per-call counter) — the tests rely on this to pre-compute ids of
// objects created by earlier batches. The genesis block holds height 0,
// so a fresh chain's first batch seals at height 1.
ObjectId object_id_at(std::uint64_t height, std::uint64_t index,
                      std::uint64_t counter) {
  return (height << 32) | (index << 12) | counter;
}
constexpr std::uint64_t kFirstBatchHeight = 1;

const std::vector<unsigned> kWorkerCounts = {1, 2, 4, 8};

// Runs a workload at every worker count and checks bit-identity; returns
// the reference (workers=1) run for semantic assertions.
RunResult differential(const Workload& w) {
  std::vector<Snapshot> snaps;
  std::vector<RunResult> runs;
  for (unsigned workers : kWorkerCounts) {
    runs.push_back(run_workload(w, workers));
    snaps.push_back(runs.back().snap);
  }
  expect_same_snapshots(kWorkerCounts, snaps);
  return runs.front();
}

// --- Transaction builders ----------------------------------------------------

// A chain used purely to build+sign transactions (make_transaction_with_
// nonce reads no chain state; signing is deterministic).
Blockchain& builder() {
  static Blockchain b;
  return b;
}

constexpr Mist kDefaultBudget = 1'000'000'000;

Transaction kv_put(const Actor& a, std::uint64_t nonce, const std::string& key,
                   const Bytes& value, bool declare = true,
                   Mist attached = 0, Mist budget = kDefaultBudget) {
  BytesWriter w;
  w.str(key);
  w.blob(BytesView(value.data(), value.size()));
  AccessSet access;
  if (declare)
    access.add_write(kv_key(key));
  else
    access.add_read(kv_key("decoy"));  // declared mode, wrong key
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "put",
                                               w.take(), attached, budget,
                                               std::move(access));
}

Transaction kv_get(const Actor& a, std::uint64_t nonce,
                   const std::string& key) {
  BytesWriter w;
  w.str(key);
  AccessSet access;
  access.add_read(kv_key(key));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "get",
                                               w.take(), 0, kDefaultBudget,
                                               std::move(access));
}

Transaction kv_del(const Actor& a, std::uint64_t nonce,
                   const std::string& key) {
  BytesWriter w;
  w.str(key);
  AccessSet access;
  access.add_write(kv_key(key));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "del",
                                               w.take(), 0, kDefaultBudget,
                                               std::move(access));
}

Transaction kv_mkobj(const Actor& a, std::uint64_t nonce, const Bytes& data) {
  BytesWriter w;
  w.blob(BytesView(data.data(), data.size()));
  AccessSet access;
  access.add_read(kv_key("mkobj"));  // created objects need no declaration
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "mkobj",
                                               w.take(), 0, kDefaultBudget,
                                               std::move(access));
}

Transaction kv_wobj(const Actor& a, std::uint64_t nonce, ObjectId id,
                    const Bytes& data, bool declare = true) {
  BytesWriter w;
  w.u64(id);
  w.blob(BytesView(data.data(), data.size()));
  AccessSet access;
  if (declare)
    access.add_write(object_access_key(id));
  else
    access.add_read(kv_key("decoy"));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "wobj",
                                               w.take(), 0, kDefaultBudget,
                                               std::move(access));
}

Transaction kv_dobj(const Actor& a, std::uint64_t nonce, ObjectId id) {
  BytesWriter w;
  w.u64(id);
  AccessSet access;
  access.add_write(object_access_key(id));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "dobj",
                                               w.take(), 0, kDefaultBudget,
                                               std::move(access));
}

Transaction kv_pay(const Actor& a, std::uint64_t nonce, const Address& to,
                   Mist amount, Mist attached) {
  BytesWriter w;
  w.raw(to.digest.view());
  w.u64(amount);
  // Escrow is commutative (not a conflict key); declare an arbitrary read
  // so the transaction opts into declared mode without serializing.
  AccessSet access;
  access.add_read(kv_key("escrow-meter"));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "pay",
                                               w.take(), attached,
                                               kDefaultBudget,
                                               std::move(access));
}

Transaction kv_boom(const Actor& a, std::uint64_t nonce) {
  AccessSet access;
  access.add_read(kv_key("decoy"));
  return builder().make_transaction_with_nonce(a.key, nonce, "kv", "boom",
                                               Bytes{}, 0, kDefaultBudget,
                                               std::move(access));
}

// --- Random KV workloads -----------------------------------------------------

Workload random_kv_workload(std::uint64_t seed, bool disjoint) {
  Rng rng(seed);
  Workload w;
  const int kActors = 6;
  for (int i = 0; i < kActors; ++i)
    w.actors.emplace_back("actor" + std::to_string(i), 9000 + seed * 100 + i,
                          1'000'000'000'000ULL);
  w.actors.emplace_back("mallory", 9900 + seed, 1'000'000'000'000ULL);
  Actor& mallory = w.actors.back();

  // Setup block 0: pre-create one object per actor (ids predictable) and
  // fund the kv escrow so "pay" has a pot to fight over.
  std::vector<Transaction> setup;
  std::vector<ObjectId> objects;
  for (int i = 0; i < kActors; ++i) {
    objects.push_back(object_id_at(kFirstBatchHeight, setup.size(), 0));
    setup.push_back(kv_mkobj(w.actors[i], 0, bytes_of("obj" + std::to_string(i))));
  }
  setup.push_back(kv_put(mallory, 0, "escrow-funding", bytes_of("x"),
                         /*declare=*/true, /*attached=*/1000));
  w.batches.push_back(std::move(setup));

  // The measured batch: a random mix of conflicting/disjoint writes,
  // object traffic, failures, rejections and escrow payments.
  std::vector<std::uint64_t> nonces(kActors, 1);
  std::uint64_t mallory_nonce = 1;
  std::vector<Transaction> batch;
  const int kTxs = 48;
  for (int t = 0; t < kTxs; ++t) {
    const int who = static_cast<int>(rng.next_below(kActors));
    Actor& a = w.actors[static_cast<std::size_t>(who)];
    std::uint64_t& nonce = nonces[static_cast<std::size_t>(who)];
    // Disjoint workloads give every sender a private keyspace; conflicting
    // workloads share a small pool so groups actually merge.
    const std::string key =
        disjoint ? "s" + std::to_string(who) + "-k" +
                       std::to_string(rng.next_below(4))
                 : "k" + std::to_string(rng.next_below(8));
    const ObjectId obj = objects[rng.next_below(objects.size())];
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 28) {
      batch.push_back(kv_put(a, nonce++, key,
                             bytes_of("v" + std::to_string(t))));
    } else if (roll < 42) {
      batch.push_back(kv_get(a, nonce++, key));
    } else if (roll < 50) {
      batch.push_back(kv_del(a, nonce++, key));
    } else if (roll < 58) {
      batch.push_back(kv_wobj(a, nonce++, obj,
                              bytes_of("w" + std::to_string(t))));
    } else if (roll < 63) {
      batch.push_back(kv_dobj(a, nonce++, obj));
    } else if (roll < 70) {
      batch.push_back(kv_mkobj(a, nonce++, bytes_of("m" + std::to_string(t))));
    } else if (roll < 77) {
      // Undeclared write: aborts with kAccessViolation, state untouched.
      batch.push_back(kv_put(a, nonce++, key, bytes_of("viol"),
                             /*declare=*/false));
    } else if (roll < 82) {
      batch.push_back(kv_boom(a, nonce++));
    } else if (roll < 88) {
      // Escrow payments: deltas race for the committed pot; losers get a
      // deterministic kEscrowOverdraw or kContract failure.
      const Mist attached = rng.next_below(3) == 0 ? 200 : 0;
      const Mist amount = rng.next_below(400);
      const Actor& to = w.actors[rng.next_below(w.actors.size())];
      batch.push_back(kv_pay(a, nonce++, to.address, amount, attached));
    } else if (roll < 93) {
      // Out of gas: budget below the flat computation fee; committed as a
      // failed receipt charging the full budget.
      batch.push_back(kv_put(a, nonce++, key, bytes_of("oog"),
                             /*declare=*/true, 0, /*budget=*/1000));
    } else if (roll < 97) {
      // Tampered signature: rejected, nonce unconsumed (so mallory's later
      // transactions still verify — use a throwaway nonce).
      Transaction bad = kv_put(mallory, mallory_nonce, key, bytes_of("sig"));
      bad.arguments.push_back(0xFF);
      batch.push_back(std::move(bad));
    } else {
      // Wrong nonce: rejected before execution.
      batch.push_back(kv_put(mallory, mallory_nonce + 7, key,
                             bytes_of("nonce")));
    }
  }
  w.batches.push_back(std::move(batch));
  return w;
}

TEST(ChainParallelDifferential, ConflictingKvWorkloadsBitIdentical) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto run = differential(random_kv_workload(seed, /*disjoint=*/false));
    // Sanity: the workload actually commits work.
    int committed = 0;
    for (const auto& r : run.results.back())
      if (r.ok()) ++committed;
    EXPECT_GT(committed, 20) << "seed " << seed;
  }
}

TEST(ChainParallelDifferential, DisjointKvWorkloadsBitIdentical) {
  for (std::uint64_t seed : {7u, 8u}) {
    auto run = differential(random_kv_workload(seed, /*disjoint=*/true));
    int successes = 0;
    for (const auto& r : run.results.back())
      if (r.ok() && r->success) ++successes;
    EXPECT_GT(successes, 10) << "seed " << seed;
  }
}

// A hand-built batch hitting every outcome class exactly where expected,
// so the differential tests can't silently lose coverage to a shifted
// random distribution.
TEST(ChainParallelDifferential, EveryOutcomeClassAgreesAcrossWorkers) {
  Workload w;
  for (int i = 0; i < 8; ++i)
    w.actors.emplace_back("a" + std::to_string(i), 7100 + i,
                          1'000'000'000'000ULL);
  // Setup: one object for a5, and escrow funded with exactly 100 MIST so
  // two 80-MIST payouts race for it.
  std::vector<Transaction> setup;
  const ObjectId obj = object_id_at(kFirstBatchHeight, 0, 0);
  setup.push_back(kv_mkobj(w.actors[5], 0, bytes_of("payload")));
  setup.push_back(kv_put(w.actors[4], 0, "seed-escrow", bytes_of("x"),
                         true, /*attached=*/100));
  w.batches.push_back(std::move(setup));

  std::vector<Transaction> batch;
  batch.push_back(kv_put(w.actors[0], 0, "shared", bytes_of("first")));   // 0 ok
  batch.push_back(kv_put(w.actors[1], 0, "shared", bytes_of("second")));  // 1 ok
  batch.push_back(kv_put(w.actors[2], 0, "x", bytes_of("v"),
                         /*declare=*/false));                             // 2 violation
  batch.push_back(kv_boom(w.actors[3], 0));                               // 3 contract error
  batch.push_back(kv_put(w.actors[4], 1, "y", bytes_of("v"), true, 0,
                         /*budget=*/1000));                               // 4 out of gas
  Transaction bad_sig = kv_put(w.actors[0], 1, "z", bytes_of("v"));
  bad_sig.attached_tokens += 1;  // signature no longer covers the tx
  batch.push_back(std::move(bad_sig));                                    // 5 rejected
  batch.push_back(kv_put(w.actors[1], 5, "z", bytes_of("v")));            // 6 bad nonce
  batch.push_back(kv_wobj(w.actors[5], 1, obj, bytes_of("updated")));     // 7 ok
  batch.push_back(kv_dobj(w.actors[5], 2, obj));                          // 8 ok (same group as 7)
  // Escrow race from two otherwise-idle senders: their only conflict keys
  // are their own accounts, so they land in different groups. Both see the
  // committed 100 MIST at execution; the canonical-second one loses at the
  // commit-order re-check with kEscrowOverdraw.
  batch.push_back(kv_pay(w.actors[6], 0, w.actors[2].address, 80, 0));    // 9 ok
  batch.push_back(kv_pay(w.actors[7], 0, w.actors[3].address, 80, 0));    // 10 overdraw
  w.batches.push_back(std::move(batch));

  auto run = differential(w);
  const auto& results = run.results.back();
  ASSERT_EQ(results.size(), 11u);
  auto expect_kind = [&](std::size_t i, ErrorKind kind) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].error_message();
    if (kind == ErrorKind::kNone) {
      EXPECT_TRUE(results[i]->success) << i << ": " << results[i]->error;
    } else {
      EXPECT_FALSE(results[i]->success) << i;
      EXPECT_EQ(results[i]->error_kind, kind) << i << ": " << results[i]->error;
    }
  };
  expect_kind(0, ErrorKind::kNone);
  expect_kind(1, ErrorKind::kNone);
  expect_kind(2, ErrorKind::kAccessViolation);
  EXPECT_NE(results[2]->error.find("access violation"), std::string::npos);
  expect_kind(3, ErrorKind::kContract);
  expect_kind(4, ErrorKind::kOutOfGas);
  EXPECT_EQ(results[4]->gas_charged, 1000u);
  ASSERT_FALSE(results[5].ok());
  EXPECT_NE(results[5].error_message().find("signature"), std::string::npos);
  ASSERT_FALSE(results[6].ok());
  EXPECT_NE(results[6].error_message().find("nonce"), std::string::npos);
  expect_kind(7, ErrorKind::kNone);
  expect_kind(8, ErrorKind::kNone);
  expect_kind(9, ErrorKind::kNone);
  expect_kind(10, ErrorKind::kEscrowOverdraw);
  EXPECT_NE(results[10]->error.find("underfunded at commit"),
            std::string::npos)
      << results[10]->error;
}

// Mixing one legacy (empty access set) transaction into a declared batch
// serializes the whole batch — and must still be bit-identical at any
// worker count.
TEST(ChainParallelDifferential, ExclusiveModeTransactionsSerializeSafely) {
  Workload w;
  for (int i = 0; i < 4; ++i)
    w.actors.emplace_back("e" + std::to_string(i), 7300 + i,
                          1'000'000'000'000ULL);
  std::vector<Transaction> batch;
  batch.push_back(kv_put(w.actors[0], 0, "a", bytes_of("1")));
  // Legacy transaction: no declared set, exclusive over the whole batch.
  batch.push_back(builder().make_transaction_with_nonce(
      w.actors[1].key, 0, "kv", "put", [] {
        BytesWriter bw;
        bw.str("b");
        bw.blob(BytesView());
        return bw.take();
      }()));
  batch.push_back(kv_put(w.actors[2], 0, "c", bytes_of("3")));
  batch.push_back(kv_put(w.actors[3], 0, "a", bytes_of("4")));
  w.batches.push_back(std::move(batch));
  auto run = differential(w);
  for (const auto& r : run.results.back()) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->success) << r->error;
  }
}

// --- Marketplace purchase races ---------------------------------------------

marketplace::TimeSlot make_slot(SimTime start, SimTime end, Mist price) {
  marketplace::TimeSlot s;
  s.start = start;
  s.end = end;
  s.price = price;
  return s;
}

marketplace::ApplicationPayload make_payload(const std::string& tag) {
  marketplace::ApplicationPayload p;
  p.bytecode = bytes_of("bytecode-" + tag);
  p.manifest = bytes_of("manifest-" + tag);
  p.parameters = {1, 2, 3};
  p.listen_port = 4500;
  return p;
}

Transaction purchase_tx(const Actor& initiator, std::uint64_t nonce,
                        InterfaceKey client_key, InterfaceKey server_key,
                        const marketplace::TimeSlot& client_slot,
                        const marketplace::TimeSlot& server_slot,
                        Mist attached, const std::string& tag) {
  marketplace::PurchaseSlotArgs args;
  args.client_key = client_key;
  args.server_key = server_key;
  args.client_slot = client_slot;
  args.server_slot = server_slot;
  args.client_app = make_payload(tag + "-client");
  args.server_app = make_payload(tag + "-server");
  return builder().make_transaction_with_nonce(
      initiator.key, nonce, marketplace::kContractName, "PurchaseSlot",
      args.serialize(), attached, kDefaultBudget,
      marketplace::access_purchase_slot(client_key, server_key));
}

// The mass-purchase acceptance scenario: kPairs executor pairs each offer
// ONE overlapping slot window; kInitiators race for them (kInitiators /
// kPairs contenders per pair). Exactly one purchase per pair may win; no
// tokens may be lost or double-spent; and the entire outcome must be
// bit-identical at every worker count.
struct MassPurchase {
  static constexpr int kPairs = 6;
  static constexpr int kInitiators = 180;
  static constexpr Mist kPrice = 500'000'000;  // per slot; pair = 2x

  Workload workload;
  std::vector<Actor*> executors;   // 2 per pair: client then server
  std::vector<Actor*> initiators;
  std::vector<InterfaceKey> keys;  // 2 per pair

  MassPurchase() {
    Workload& w = workload;
    w.with_marketplace = true;
    for (int p = 0; p < kPairs; ++p)
      for (int side = 0; side < 2; ++side)
        w.actors.emplace_back(
            "exec" + std::to_string(p) + (side == 0 ? "c" : "s"),
            7500 + p * 2 + side, 1'000'000'000'000ULL);
    for (int j = 0; j < kInitiators; ++j)
      w.actors.emplace_back("init" + std::to_string(j), 8000 + j,
                            100'000'000'000ULL);
    for (int i = 0; i < kPairs * 2; ++i) {
      executors.push_back(&w.actors[static_cast<std::size_t>(i)]);
      keys.push_back(InterfaceKey{static_cast<topology::AsNumber>(100 + i), 1});
    }
    for (int j = 0; j < kInitiators; ++j)
      initiators.push_back(&w.actors[static_cast<std::size_t>(kPairs * 2 + j)]);

    // Setup: every executor registers itself and its single slot (batch
    // of declared, conflict-free transactions — setup parallelizes too).
    std::vector<Transaction> setup;
    for (int i = 0; i < kPairs * 2; ++i) {
      marketplace::RegisterExecutorArgs reg{keys[static_cast<std::size_t>(i)]};
      setup.push_back(builder().make_transaction_with_nonce(
          executors[static_cast<std::size_t>(i)]->key, 0,
          marketplace::kContractName, "RegisterExecutor", reg.serialize(), 0,
          kDefaultBudget,
          marketplace::access_register_executor(
              keys[static_cast<std::size_t>(i)])));
    }
    for (int i = 0; i < kPairs * 2; ++i) {
      marketplace::RegisterTimeSlotArgs slots{
          keys[static_cast<std::size_t>(i)],
          {make_slot(1000, 2000, kPrice)}};
      setup.push_back(builder().make_transaction_with_nonce(
          executors[static_cast<std::size_t>(i)]->key, 1,
          marketplace::kContractName, "RegisterTimeSlot", slots.serialize(),
          0, kDefaultBudget,
          marketplace::access_register_time_slot(
              keys[static_cast<std::size_t>(i)])));
    }
    workload.batches.push_back(std::move(setup));

    // The race: initiator j targets pair j % kPairs with the exact price.
    std::vector<Transaction> race;
    for (int j = 0; j < kInitiators; ++j) {
      const int p = j % kPairs;
      race.push_back(purchase_tx(
          *initiators[static_cast<std::size_t>(j)], 0,
          keys[static_cast<std::size_t>(2 * p)],
          keys[static_cast<std::size_t>(2 * p + 1)],
          make_slot(1000, 2000, kPrice), make_slot(1000, 2000, kPrice),
          2 * kPrice, "i" + std::to_string(j)));
    }
    workload.batches.push_back(std::move(race));
  }
};

TEST(ChainParallelAcceptance, MassPurchaseOneWinnerPerSlot) {
  MassPurchase scenario;
  auto run = differential(scenario.workload);

  const auto& race = run.results.back();
  ASSERT_EQ(race.size(),
            static_cast<std::size_t>(MassPurchase::kInitiators));
  std::vector<int> winners(MassPurchase::kPairs, 0);
  for (int j = 0; j < MassPurchase::kInitiators; ++j) {
    const auto& r = race[static_cast<std::size_t>(j)];
    ASSERT_TRUE(r.ok()) << j << ": " << r.error_message();
    if (r->success) {
      ++winners[static_cast<std::size_t>(j % MassPurchase::kPairs)];
      // Winners hold two application objects with the tokens embedded.
      auto receipt = marketplace::PurchaseReceipt::parse(
          BytesView(r->return_value.data(), r->return_value.size()));
      ASSERT_TRUE(receipt.ok());
      EXPECT_NE(receipt->client_application, 0u);
      EXPECT_NE(receipt->server_application, 0u);
    } else {
      EXPECT_NE(r->error.find("not available"), std::string::npos)
          << j << ": " << r->error;
    }
  }
  for (int p = 0; p < MassPurchase::kPairs; ++p)
    EXPECT_EQ(winners[static_cast<std::size_t>(p)], 1) << "pair " << p;

  // Token conservation on the reference chain: everything minted is still
  // accounted for as balances + contract escrow + burned gas.
  Blockchain chain;
  {
    auto contract = std::make_unique<marketplace::MarketplaceContract>();
    auto* market = contract.get();
    ASSERT_TRUE(chain.register_contract(std::move(contract)).ok());
    ASSERT_TRUE(chain.register_contract(std::make_unique<KvContract>()).ok());
    Mist minted = 0;
    for (const auto& actor : scenario.workload.actors) {
      chain.mint(actor.address, actor.mint);
      minted += actor.mint;
    }
    Mist burned = 0;
    for (const auto& batch : scenario.workload.batches)
      for (const auto& r : chain.submit_batch(batch, BatchOptions{4}))
        if (r.ok()) burned += r->gas_charged;
    Mist held = 0;
    for (const auto& actor : scenario.workload.actors)
      held += chain.balance(actor.address);
    held += chain.escrow_balance(marketplace::kContractName);
    held += chain.escrow_balance("kv");
    EXPECT_EQ(minted, held + burned);
    // Each pair's escrow holds exactly one winning purchase (2x price) —
    // no double-spend slipped through.
    EXPECT_EQ(chain.escrow_balance(marketplace::kContractName),
              static_cast<Mist>(MassPurchase::kPairs) * 2 *
                  MassPurchase::kPrice);
    // All slots are sold out.
    for (const auto key : scenario.keys)
      EXPECT_TRUE(market->available_slots(key).empty());
  }
}

// After the race, every winning pair's executor reports results — all
// ResultReady transactions touch distinct application objects and run in
// parallel; payouts drain the escrow deterministically.
TEST(ChainParallelAcceptance, ResultReadyFanOutBitIdentical) {
  MassPurchase scenario;

  // Harvest the winning application ids from a reference run (object ids
  // are worker-invariant, so these transactions replay on every chain).
  auto reference = run_workload(scenario.workload, 1);
  std::vector<Transaction> reports;
  for (int j = 0; j < MassPurchase::kInitiators; ++j) {
    const auto& r = reference.results.back()[static_cast<std::size_t>(j)];
    ASSERT_TRUE(r.ok());
    if (!r->success) continue;
    auto receipt = marketplace::PurchaseReceipt::parse(
        BytesView(r->return_value.data(), r->return_value.size()));
    ASSERT_TRUE(receipt.ok());
    const int p = j % MassPurchase::kPairs;
    const auto apps = {std::pair{2 * p, receipt->client_application},
                       std::pair{2 * p + 1, receipt->server_application}};
    for (const auto& [exec_index, app_id] : apps) {
      marketplace::ResultReadyArgs args;
      args.application = app_id;
      args.result = bytes_of("result-" + std::to_string(app_id));
      reports.push_back(builder().make_transaction_with_nonce(
          scenario.executors[static_cast<std::size_t>(exec_index)]->key, 2,
          marketplace::kContractName, "ResultReady", args.serialize(), 0,
          kDefaultBudget, marketplace::access_result_ready(app_id)));
    }
  }
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(MassPurchase::kPairs * 2));
  scenario.workload.batches.push_back(std::move(reports));

  auto run = differential(scenario.workload);
  for (const auto& r : run.results.back()) {
    ASSERT_TRUE(r.ok()) << r.error_message();
    EXPECT_TRUE(r->success) << r->error;
  }
}

// Random mixed marketplace traffic: contested and uncontested purchases
// shuffled together with lookups — the general-case differential.
TEST(ChainParallelDifferential, MixedMarketplaceTrafficBitIdentical) {
  Rng rng(0x5EED);
  Workload w;
  w.with_marketplace = true;
  const int kPairs = 4;
  for (int p = 0; p < kPairs * 2; ++p)
    w.actors.emplace_back("x" + std::to_string(p), 7700 + p,
                          1'000'000'000'000ULL);
  const int kInitiators = 12;
  for (int j = 0; j < kInitiators; ++j)
    w.actors.emplace_back("i" + std::to_string(j), 7800 + j,
                          100'000'000'000ULL);

  std::vector<InterfaceKey> keys;
  std::vector<Transaction> setup;
  for (int i = 0; i < kPairs * 2; ++i) {
    keys.push_back(InterfaceKey{static_cast<topology::AsNumber>(200 + i), 1});
    marketplace::RegisterExecutorArgs reg{keys.back()};
    setup.push_back(builder().make_transaction_with_nonce(
        w.actors[static_cast<std::size_t>(i)].key, 0,
        marketplace::kContractName, "RegisterExecutor", reg.serialize(), 0,
        kDefaultBudget, marketplace::access_register_executor(keys.back())));
  }
  for (int i = 0; i < kPairs * 2; ++i) {
    // Two slots per executor: contested traffic exhausts at most one.
    marketplace::RegisterTimeSlotArgs slots{
        keys[static_cast<std::size_t>(i)],
        {make_slot(1000, 2000, 100), make_slot(3000, 4000, 100)}};
    setup.push_back(builder().make_transaction_with_nonce(
        w.actors[static_cast<std::size_t>(i)].key, 1,
        marketplace::kContractName, "RegisterTimeSlot", slots.serialize(), 0,
        kDefaultBudget,
        marketplace::access_register_time_slot(
            keys[static_cast<std::size_t>(i)])));
  }
  w.batches.push_back(std::move(setup));

  std::vector<Transaction> batch;
  for (int j = 0; j < kInitiators; ++j) {
    Actor& init = w.actors[static_cast<std::size_t>(kPairs * 2 + j)];
    // Half the initiators pile onto pair 0; the rest spread out.
    const int p = rng.chance(0.5) ? 0 : static_cast<int>(rng.next_below(kPairs));
    const bool early = rng.chance(0.7);
    const auto slot = early ? make_slot(1000, 2000, 100)
                            : make_slot(3000, 4000, 100);
    // Overpay sometimes: the excess must come back as an escrow refund.
    const Mist attached = 200 + (rng.chance(0.3) ? 57 : 0);
    batch.push_back(purchase_tx(init, 0,
                                keys[static_cast<std::size_t>(2 * p)],
                                keys[static_cast<std::size_t>(2 * p + 1)],
                                slot, slot, attached,
                                "mix" + std::to_string(j)));
  }
  w.batches.push_back(std::move(batch));

  auto run = differential(w);
  int ok = 0, sold_out = 0;
  for (const auto& r : run.results.back()) {
    ASSERT_TRUE(r.ok());
    if (r->success)
      ++ok;
    else {
      EXPECT_NE(r->error.find("not available"), std::string::npos)
          << r->error;
      ++sold_out;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(sold_out, 0);  // the contested pair genuinely sells out
}

// --- Reputation accountability ----------------------------------------------

Transaction report_tx(const Actor& reporter, std::uint64_t nonce,
                      topology::AsNumber asn, std::uint32_t confidence) {
  marketplace::ReportArgs args;
  args.asn = asn;
  args.confidence_permille = confidence;
  args.rounds_used = 12;
  args.detail = "twin-probe evidence";
  return builder().make_transaction_with_nonce(
      reporter.key, nonce, marketplace::kReputationContractName, "Report",
      args.serialize(), 0, kDefaultBudget,
      marketplace::access_report(asn, reporter.address));
}

// Strike reports mix contention (everyone accuses one AS — serialized on
// its record key), disjoint accusations (parallelize) and duplicates
// (deduped per reporter, in-batch and across batches). The strike counts,
// dedup decisions and event order must be bit-identical at any worker
// count.
TEST(ChainParallelDifferential, ReputationReportsBitIdentical) {
  Workload w;
  w.with_reputation = true;
  const int kReporters = 6;
  for (int i = 0; i < kReporters; ++i)
    w.actors.emplace_back("rep" + std::to_string(i), 8600 + i,
                          1'000'000'000'000ULL);

  // Batch 1: every reporter accuses AS 30 (contested) and its own AS 40+i
  // (disjoint); reporter 0 files AS 30 twice — the repeat must dedup.
  std::vector<Transaction> first;
  for (int i = 0; i < kReporters; ++i) {
    const auto& reporter = w.actors[static_cast<std::size_t>(i)];
    first.push_back(report_tx(reporter, 0, 30,
                              800 + static_cast<std::uint32_t>(i)));
    first.push_back(report_tx(reporter, 1,
                              static_cast<topology::AsNumber>(40 + i), 900));
  }
  first.push_back(report_tx(w.actors[0], 2, 30, 990));
  w.batches.push_back(std::move(first));

  // Batch 2: everyone re-reports AS 30 (all dedup — strikes must not
  // move) and reporter 1 re-reports its own AS.
  std::vector<Transaction> second;
  for (int i = 0; i < kReporters; ++i)
    second.push_back(report_tx(w.actors[static_cast<std::size_t>(i)],
                               i == 0 ? 3 : 2, 30, 500));
  second.push_back(report_tx(w.actors[1], 3, 41, 400));
  w.batches.push_back(std::move(second));

  auto run = differential(w);
  for (const auto& batch : run.results)
    for (const auto& r : batch) {
      ASSERT_TRUE(r.ok()) << r.error_message();
      EXPECT_TRUE(r->success) << r->error;
    }

  // Every batch-2 report against AS 30 is a duplicate: each returns the
  // record frozen at 6 distinct strikes, with the audit trail still
  // counting and the best confidence retained.
  auto record = marketplace::ReputationRecord::parse(BytesView(
      run.results[1][0]->return_value.data(),
      run.results[1][0]->return_value.size()));
  ASSERT_TRUE(record.ok()) << record.error_message();
  EXPECT_EQ(record->strikes, 6u);
  EXPECT_GE(record->reports, 8u);
  EXPECT_EQ(record->max_confidence_permille, 990u);

  // The disjoint AS: one strike from its single reporter, dedup held.
  auto own = marketplace::ReputationRecord::parse(BytesView(
      run.results[1].back()->return_value.data(),
      run.results[1].back()->return_value.size()));
  ASSERT_TRUE(own.ok()) << own.error_message();
  EXPECT_EQ(own->strikes, 1u);
  EXPECT_EQ(own->reports, 2u);
}

// The accountability loop closed on chain: strikes against an executor's
// AS discount its quoted and charged price. The quote reads the strike
// records cross-contract, an underpayer at the penalized price minus one
// fails, and the exact penalized payment wins the slot — bit-identical at
// every worker count.
TEST(ChainParallelAcceptance, ReputationPenalizedPurchaseBitIdentical) {
  Workload w;
  w.with_marketplace = true;
  w.with_reputation = true;
  w.actors.emplace_back("execC", 8700, 1'000'000'000'000ULL);
  w.actors.emplace_back("execS", 8701, 1'000'000'000'000ULL);
  for (int i = 0; i < 3; ++i)
    w.actors.emplace_back("acc" + std::to_string(i), 8710 + i,
                          1'000'000'000'000ULL);
  w.actors.emplace_back("cheap", 8720, 100'000'000'000ULL);
  w.actors.emplace_back("buyer", 8721, 100'000'000'000ULL);
  const Actor& cheap = w.actors[w.actors.size() - 2];
  const Actor& buyer = w.actors.back();
  const InterfaceKey client_key{300, 1};
  const InterfaceKey server_key{301, 1};
  constexpr Mist kPrice = 1'000'000;

  // Setup: register the pair and one slot each; three distinct reporters
  // strike the client executor's AS (3 strikes = 30% off that side).
  std::vector<Transaction> setup;
  const std::array<InterfaceKey, 2> pair = {client_key, server_key};
  for (int side = 0; side < 2; ++side) {
    const Actor& exec = w.actors[static_cast<std::size_t>(side)];
    marketplace::RegisterExecutorArgs reg{pair[static_cast<std::size_t>(side)]};
    setup.push_back(builder().make_transaction_with_nonce(
        exec.key, 0, marketplace::kContractName, "RegisterExecutor",
        reg.serialize(), 0, kDefaultBudget,
        marketplace::access_register_executor(
            pair[static_cast<std::size_t>(side)])));
    marketplace::RegisterTimeSlotArgs slots{
        pair[static_cast<std::size_t>(side)],
        {make_slot(1000, 2000, kPrice)}};
    setup.push_back(builder().make_transaction_with_nonce(
        exec.key, 1, marketplace::kContractName, "RegisterTimeSlot",
        slots.serialize(), 0, kDefaultBudget,
        marketplace::access_register_time_slot(
            pair[static_cast<std::size_t>(side)])));
  }
  for (int i = 0; i < 3; ++i)
    setup.push_back(report_tx(w.actors[static_cast<std::size_t>(2 + i)], 0,
                              client_key.asn, 950));
  w.batches.push_back(std::move(setup));

  const Mist penalized =
      marketplace::apply_reputation_penalty(kPrice, 3) + kPrice;
  ASSERT_LT(penalized, 2 * kPrice);

  // The measured batch: a quote, an underpayment at penalized-minus-one
  // (must lose), then the exact penalized payment (must win).
  std::vector<Transaction> batch;
  marketplace::LookupSlotArgs look;
  look.client_key = client_key;
  look.server_key = server_key;
  batch.push_back(builder().make_transaction_with_nonce(
      buyer.key, 0, marketplace::kContractName, "LookupSlot",
      look.serialize(), 0, kDefaultBudget,
      marketplace::access_lookup_slot(client_key, server_key)));
  batch.push_back(purchase_tx(cheap, 0, client_key, server_key,
                              make_slot(1000, 2000, kPrice),
                              make_slot(1000, 2000, kPrice), penalized - 1,
                              "under"));
  batch.push_back(purchase_tx(buyer, 1, client_key, server_key,
                              make_slot(1000, 2000, kPrice),
                              make_slot(1000, 2000, kPrice), penalized,
                              "exact"));
  w.batches.push_back(std::move(batch));

  auto run = differential(w);
  const auto& results = run.results.back();
  ASSERT_EQ(results.size(), 3u);

  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[0]->success) << results[0]->error;
  auto quote = marketplace::SlotQuote::parse(BytesView(
      results[0]->return_value.data(), results[0]->return_value.size()));
  ASSERT_TRUE(quote.ok()) << quote.error_message();
  EXPECT_TRUE(quote->found);
  EXPECT_EQ(quote->client_strikes, 3u);
  EXPECT_EQ(quote->server_strikes, 0u);
  EXPECT_EQ(quote->list_price, 2 * kPrice);
  EXPECT_EQ(quote->total_price, penalized);

  ASSERT_TRUE(results[1].ok());
  EXPECT_FALSE(results[1]->success)
      << "one MIST under the penalized price must not win";
  ASSERT_TRUE(results[2].ok());
  EXPECT_TRUE(results[2]->success) << results[2]->error;
}

}  // namespace
}  // namespace debuglet::chain
