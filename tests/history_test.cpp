// Measurement archive and degradation-onset tests (paper §VI-F).
#include <gtest/gtest.h>

#include "core/history.hpp"

namespace debuglet::core {
namespace {

RttSummary summary(double mean_ms, std::size_t answered = 10,
                   std::size_t sent = 10) {
  RttSummary s;
  s.probes_sent = sent;
  s.probes_answered = answered;
  s.mean_ms = mean_ms;
  s.std_ms = 1.0;
  s.min_ms = mean_ms - 2;
  s.max_ms = mean_ms + 2;
  return s;
}

const DiagnosticKey kKey{{1, 2}, {4, 1}, net::Protocol::kUdp};

TEST(Archive, RecordAndHistory) {
  MeasurementArchive archive;
  archive.record(kKey, duration::seconds(1), summary(20));
  archive.record(kKey, duration::seconds(2), summary(21));
  ASSERT_EQ(archive.history(kKey).size(), 2u);
  EXPECT_EQ(archive.history(kKey)[0].measured_at, duration::seconds(1));
  EXPECT_DOUBLE_EQ(archive.history(kKey)[1].summary.mean_ms, 21.0);
  EXPECT_TRUE(archive.history({{9, 9}, {9, 9}}).empty());
  EXPECT_EQ(archive.total_entries(), 2u);
}

TEST(Archive, RetentionPrunes) {
  MeasurementArchive archive(duration::hours(1));
  archive.record(kKey, duration::minutes(0), summary(20));
  archive.record(kKey, duration::minutes(30), summary(20));
  archive.record(kKey, duration::minutes(90), summary(20));
  // The 0-minute entry fell out of the 1-hour window.
  ASSERT_EQ(archive.history(kKey).size(), 2u);
  EXPECT_EQ(archive.history(kKey)[0].measured_at, duration::minutes(30));
}

TEST(Archive, EntriesRoundTrip) {
  const ArchivedMeasurement m{duration::seconds(5), summary(33.5, 9, 10)};
  const Bytes b = m.serialize();
  auto back = ArchivedMeasurement::parse(BytesView(b.data(), b.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(back->measured_at, m.measured_at);
  EXPECT_DOUBLE_EQ(back->summary.mean_ms, 33.5);
  EXPECT_EQ(back->summary.probes_answered, 9u);
}

TEST(Archive, AnchorCommitsToContent) {
  MeasurementArchive a, b;
  a.record(kKey, 1, summary(20));
  b.record(kKey, 1, summary(20));
  EXPECT_EQ(a.anchor(kKey), b.anchor(kKey));
  b.record(kKey, 2, summary(25));
  EXPECT_NE(a.anchor(kKey), b.anchor(kKey));
}

TEST(Archive, ProofsVerifyAgainstAnchor) {
  MeasurementArchive archive;
  for (int i = 0; i < 7; ++i)
    archive.record(kKey, duration::seconds(i), summary(20.0 + i));
  const crypto::Digest root = archive.anchor(kKey);
  for (std::size_t i = 0; i < 7; ++i) {
    auto proof = archive.prove(kKey, i);
    ASSERT_TRUE(proof.ok());
    const Bytes leaf = archive.history(kKey)[i].serialize();
    EXPECT_TRUE(crypto::merkle_verify(root,
                                      BytesView(leaf.data(), leaf.size()),
                                      *proof));
  }
  EXPECT_FALSE(archive.prove(kKey, 7).ok());
}

TEST(Degradation, FindsRttOnset) {
  std::vector<ArchivedMeasurement> series;
  for (int i = 0; i < 10; ++i)
    series.push_back({duration::minutes(i), summary(20.0)});
  for (int i = 10; i < 20; ++i)
    series.push_back({duration::minutes(i), summary(55.0)});
  const DegradationReport report = detect_degradation(series, 10.0);
  ASSERT_TRUE(report.degraded);
  EXPECT_EQ(report.onset, duration::minutes(10));
  EXPECT_NEAR(report.baseline_ms, 20.0, 0.1);
  EXPECT_NEAR(report.degraded_ms, 55.0, 0.1);
}

TEST(Degradation, ToleratesNoiseBelowThreshold) {
  std::vector<ArchivedMeasurement> series;
  for (int i = 0; i < 20; ++i)
    series.push_back({duration::minutes(i), summary(20.0 + (i % 3))});
  EXPECT_FALSE(detect_degradation(series, 10.0).degraded);
}

TEST(Degradation, LossOnsetDetected) {
  std::vector<ArchivedMeasurement> series;
  for (int i = 0; i < 8; ++i)
    series.push_back({duration::minutes(i), summary(20.0, 10, 10)});
  for (int i = 8; i < 16; ++i)
    series.push_back({duration::minutes(i), summary(20.0, 5, 10)});
  const DegradationReport report = detect_degradation(series, 10.0);
  ASSERT_TRUE(report.degraded);
  EXPECT_EQ(report.onset, duration::minutes(8));
}

TEST(Degradation, ShortSeriesInconclusive) {
  std::vector<ArchivedMeasurement> series = {
      {0, summary(20)}, {1, summary(90)}, {2, summary(90)}};
  EXPECT_FALSE(detect_degradation(series, 10.0).degraded);
}

TEST(Degradation, EarliestOnsetChosen) {
  std::vector<ArchivedMeasurement> series;
  for (int i = 0; i < 6; ++i)
    series.push_back({duration::minutes(i), summary(20.0)});
  for (int i = 6; i < 12; ++i)
    series.push_back({duration::minutes(i), summary(40.0)});
  for (int i = 12; i < 18; ++i)
    series.push_back({duration::minutes(i), summary(70.0)});
  const DegradationReport report = detect_degradation(series, 10.0);
  ASSERT_TRUE(report.degraded);
  EXPECT_EQ(report.onset, duration::minutes(6)) << "first step wins";
}

}  // namespace
}  // namespace debuglet::core
