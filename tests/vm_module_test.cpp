#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet::vm {
namespace {

Module sample_module() {
  ModuleBuilder b;
  b.memory(8192);
  b.add_global(7);
  b.add_global(-3);
  b.add_buffer("udp_send_buffer", 1024, 256);
  b.add_buffer("output_buffer", 4096, 512);
  FunctionBuilder& f = b.function(kEntryPointName, 0, 2);
  const auto top = f.make_label();
  f.constant(5).local_set(0);
  f.bind(top);
  f.local_get(0).emit(Opcode::kEqz);
  const auto done = f.make_label();
  f.jump_if(done);
  f.local_get(0).constant(1).emit(Opcode::kSub).local_set(0);
  f.local_get(1).constant(2).emit(Opcode::kAdd).local_set(1);
  f.jump(top);
  f.bind(done);
  f.local_get(1).ret();
  FunctionBuilder& g = b.function("helper", 2, 0);
  g.local_get(0).local_get(1).emit(Opcode::kAdd).ret();
  return b.build();
}

TEST(ModuleCodec, RoundTripsExactly) {
  const Module m = sample_module();
  const Bytes wire = m.serialize();
  auto back = Module::parse(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(*back, m);
  // Serialization is canonical: re-serializing yields identical bytes.
  EXPECT_EQ(back->serialize(), wire);
}

TEST(ModuleCodec, RejectsBadMagic) {
  Bytes wire = sample_module().serialize();
  wire[0] ^= 0xFF;
  EXPECT_FALSE(Module::parse(BytesView(wire.data(), wire.size())).ok());
}

TEST(ModuleCodec, RejectsTruncation) {
  const Bytes wire = sample_module().serialize();
  for (std::size_t cut : {4u, 10u, 20u}) {
    ASSERT_LT(cut, wire.size());
    EXPECT_FALSE(Module::parse(BytesView(wire.data(), cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ModuleCodec, RejectsTrailingBytes) {
  Bytes wire = sample_module().serialize();
  wire.push_back(0);
  EXPECT_FALSE(Module::parse(BytesView(wire.data(), wire.size())).ok());
}

TEST(ModuleCodec, RejectsUnknownOpcode) {
  Module m = sample_module();
  m.functions[0].code[0].op = static_cast<Opcode>(0xEE);
  const Bytes wire = m.serialize();
  EXPECT_FALSE(Module::parse(BytesView(wire.data(), wire.size())).ok());
}

TEST(ModuleCodec, BuilderAndRunAgree) {
  Module m = sample_module();
  ASSERT_TRUE(validate(m).ok());
  auto inst = Instance::create(std::move(m), {});
  ASSERT_TRUE(inst.ok());
  auto out = inst->run();
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 10);  // 5 iterations adding 2
}

TEST(ModuleCodec, RunNamedFunctionWithArgs) {
  auto inst = Instance::create(sample_module(), {});
  ASSERT_TRUE(inst.ok());
  const std::int64_t args[] = {30, 12};
  auto out = inst->run_function("helper", args);
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 42);
  EXPECT_TRUE(inst->run_function("nope", {}).trapped);
  EXPECT_TRUE(inst->run_function("helper", {}).trapped) << "arity mismatch";
}

// --- Validator -----------------------------------------------------------

Module minimal_with(Function f) {
  Module m;
  m.memory_size = 128;
  m.functions.push_back(std::move(f));
  return m;
}

TEST(Validator, AcceptsSample) {
  EXPECT_TRUE(validate(sample_module()).ok());
}

TEST(Validator, RequiresEntryPoint) {
  Function f;
  f.name = "not_entry";
  f.code = {{Opcode::kConst, 0}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, EntryPointMustBeNullary) {
  Function f;
  f.name = kEntryPointName;
  f.param_count = 1;
  f.code = {{Opcode::kConst, 0}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsWildJump) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kJump, 99}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsBadLocalIndex) {
  Function f;
  f.name = kEntryPointName;
  f.local_count = 1;
  f.code = {{Opcode::kLocalGet, 5}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsBadGlobalIndex) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kGlobalGet, 0}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsBadCallIndex) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kCall, 3}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsBadImportIndex) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kCallHost, 0}, {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsStaticOffsetBeyondMemory) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kConst, 0},
            {Opcode::kLoad64, 1 << 20},
            {Opcode::kReturn, 0}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RequiresTerminatingInstruction) {
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kConst, 1}};
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsEmptyBody) {
  Function f;
  f.name = kEntryPointName;
  EXPECT_FALSE(validate(minimal_with(std::move(f))).ok());
}

TEST(Validator, RejectsDuplicateFunctionNames) {
  Module m;
  Function f;
  f.name = kEntryPointName;
  f.code = {{Opcode::kConst, 0}, {Opcode::kReturn, 0}};
  m.functions.push_back(f);
  m.functions.push_back(f);
  EXPECT_FALSE(validate(m).ok());
}

TEST(Validator, RejectsBufferOutsideMemory) {
  Module m = sample_module();
  m.buffers.push_back(BufferDecl{"huge", 8000, 1000});
  EXPECT_FALSE(validate(m).ok());
}

TEST(Validator, RejectsDuplicateBufferNames) {
  Module m = sample_module();
  m.buffers.push_back(BufferDecl{"udp_send_buffer", 0, 8});
  EXPECT_FALSE(validate(m).ok());
}

TEST(Validator, RejectsDuplicateImports) {
  Module m = sample_module();
  m.host_imports = {"a", "a"};
  EXPECT_FALSE(validate(m).ok());
}

TEST(Validator, EnforcesLimits) {
  ValidationLimits limits;
  limits.max_memory = 64;
  Module m = sample_module();  // memory 8192
  EXPECT_FALSE(validate(m, limits).ok());
}

// --- Assembler -----------------------------------------------------------

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto r = assemble("func run_debuglet\n  bogus_mnemonic\nend\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("line 2"), std::string::npos);
}

TEST(Assembler, UndefinedLabelRejected) {
  auto r = assemble(R"(
    func run_debuglet
      jump nowhere
    end
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("nowhere"), std::string::npos);
}

TEST(Assembler, DuplicateLabelRejected) {
  auto r = assemble(R"(
    func run_debuglet
    x:
    x:
      const 0
      return
    end
  )");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, MissingEndRejected) {
  EXPECT_FALSE(assemble("func run_debuglet\n  const 0\n  return\n").ok());
}

TEST(Assembler, ForwardCallsResolve) {
  auto m = assemble(R"(
    func run_debuglet
      call later
      return
    end
    func later
      const 5
      return
    end
  )");
  ASSERT_TRUE(m.ok()) << m.error_message();
  auto inst = Instance::create(std::move(*m), {});
  EXPECT_EQ(inst->run().value, 5);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  auto m = assemble(R"(
    ; leading comment
    # another comment style

    func run_debuglet   ; trailing comment
      const 3  # and here
      return
    end
  )");
  ASSERT_TRUE(m.ok()) << m.error_message();
  EXPECT_EQ(Instance::create(std::move(*m), {})->run().value, 3);
}

TEST(Assembler, DisassembleReassembleRoundTrips) {
  const Module m = sample_module();
  const std::string text = disassemble(m);
  auto back = assemble(text);
  ASSERT_TRUE(back.ok()) << back.error_message() << "\n" << text;
  EXPECT_EQ(*back, m);
}

TEST(Builder, UnboundLabelThrows) {
  ModuleBuilder b;
  FunctionBuilder& f = b.function(kEntryPointName);
  const auto label = f.make_label();
  f.jump(label);
  f.constant(0).ret();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, UnknownCalleeThrows) {
  ModuleBuilder b;
  FunctionBuilder& f = b.function(kEntryPointName);
  f.call("ghost");
  f.constant(0).ret();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, ImportDeduplication) {
  ModuleBuilder b;
  FunctionBuilder& f = b.function(kEntryPointName);
  f.call_host("dbg_now");
  f.call_host("dbg_now");
  f.ret();
  const Module m = b.build();
  EXPECT_EQ(m.host_imports.size(), 1u);
}

}  // namespace
}  // namespace debuglet::vm
