// Validator regression tests for the decode-once pipeline.
//
// Translation (vm/dispatch.hpp) consumes jump targets and call indices as
// trusted array indices, so anything out of range MUST be rejected before
// translation runs: by Module::parse for malformed bytes (truncated
// multi-byte immediates), by vm::validate for in-range-syntax but
// out-of-range-semantics code, and — belt and braces — by translate()
// itself when handed an unvalidated module.
#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"
#include "vm/dispatch.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet {
namespace {

using vm::Opcode;

vm::Module minimal_module() {
  vm::Module m;
  m.memory_size = 64;
  vm::Function f;
  f.name = vm::kEntryPointName;
  f.code = {{Opcode::kConst, 0}, {Opcode::kReturn, 0}};
  m.functions.push_back(f);
  return m;
}

// --- Jump targets -------------------------------------------------------

// Jump targets are instruction indices, never byte offsets. A target that
// would "land inside" a multi-byte immediate in the serialized form is
// simply an index >= code length after decoding, and must be rejected.
TEST(VmValidator, JumpTargetIntoImmediateBytesRejected) {
  vm::Module m = minimal_module();
  // Serialized layout of the body: [const op][8 imm bytes][jump op]
  // [8 imm bytes][return op]. Byte offset 1 lands inside const's
  // immediate; as an instruction index it is the jump itself — legal. Use
  // targets past the decoded instruction count to model byte-offset
  // confusion.
  for (std::int64_t target : {3, 4, 11, 19}) {  // code has 3 instructions
    m.functions[0].code = {{Opcode::kConst, 0x0101010101010101},
                           {Opcode::kJump, target},
                           {Opcode::kReturn, 0}};
    auto status = vm::validate(m);
    ASSERT_FALSE(status.ok()) << "target " << target;
    EXPECT_NE(status.error_message().find("jump target out of range"),
              std::string::npos)
        << status.error_message();
  }
  // The boundary cases: last instruction is fine, one past is not.
  m.functions[0].code = {{Opcode::kConst, 0},
                         {Opcode::kJump, 2},
                         {Opcode::kReturn, 0}};
  EXPECT_TRUE(vm::validate(m).ok());
  m.functions[0].code[1].imm = -1;
  EXPECT_FALSE(vm::validate(m).ok());
}

TEST(VmValidator, TranslateRejectsUnvalidatedJumpTargets) {
  vm::Module m = minimal_module();
  m.functions[0].code = {{Opcode::kJump, 99}, {Opcode::kReturn, 0}};
  auto tm = vm::translate(m);
  ASSERT_FALSE(tm.ok());
  EXPECT_NE(tm.error_message().find("jump target out of range"),
            std::string::npos);
  // Instance::create translates, so it must fail too — not misbehave.
  auto instance = vm::Instance::create(m, {}, {});
  EXPECT_FALSE(instance.ok());
}

// --- Truncated immediates -----------------------------------------------

// A function body whose trailing instruction claims an immediate but the
// byte stream ends mid-immediate must fail at parse, cleanly.
TEST(VmValidator, TruncatedTrailingImmediateFailsParse) {
  const Bytes valid = minimal_module().serialize();
  ASSERT_TRUE(vm::Module::parse(BytesView(valid.data(), valid.size())).ok());

  // The serialized stream ends with: ...[const][imm x8][return][end tag].
  // Chop from the back: every prefix that cuts into the function section
  // must be rejected without crashing. (The final byte is the end tag;
  // dropping only it already breaks section framing.)
  for (std::size_t cut = 1; cut <= 12 && cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(),
                    valid.end() - static_cast<std::ptrdiff_t>(cut));
    auto parsed =
        vm::Module::parse(BytesView(truncated.data(), truncated.size()));
    EXPECT_FALSE(parsed.ok()) << "cut " << cut << " bytes";
  }
}

// Hand-crafted bytes: a code section that declares two instructions but
// provides only `const` + 3 of its 8 immediate bytes.
TEST(VmValidator, HandCraftedTruncatedImmediateFailsParse) {
  BytesWriter w;
  w.u32(0x44564D31);  // magic "DVM1"
  w.u8(5);            // function section
  w.varint(1);        // one function
  w.str(vm::kEntryPointName);
  w.varint(0);  // params
  w.varint(0);  // locals
  w.varint(2);  // claims two instructions
  w.u8(static_cast<std::uint8_t>(Opcode::kConst));
  w.u8(0xAA);  // 3 of 8 immediate bytes, then EOF
  w.u8(0xBB);
  w.u8(0xCC);
  const Bytes data = w.take();
  auto parsed = vm::Module::parse(BytesView(data.data(), data.size()));
  ASSERT_FALSE(parsed.ok());
}

// --- Out-of-range call indices --------------------------------------------

TEST(VmValidator, OutOfRangeCallIndexRejected) {
  for (std::int64_t callee : {1, 2, 1000000, -1}) {
    vm::Module m = minimal_module();  // exactly one function: index 0
    m.functions[0].code = {{Opcode::kCall, callee},
                           {Opcode::kConst, 0},
                           {Opcode::kReturn, 0}};
    auto status = vm::validate(m);
    ASSERT_FALSE(status.ok()) << "callee " << callee;
    EXPECT_NE(status.error_message().find("function index out of range"),
              std::string::npos)
        << status.error_message();
    EXPECT_FALSE(vm::translate(m).ok()) << "callee " << callee;
    EXPECT_FALSE(vm::Instance::create(m, {}, {}).ok()) << "callee " << callee;
  }
}

TEST(VmValidator, OutOfRangeCallHostIndexRejected) {
  for (std::int64_t import : {0, 1, 77, -1}) {  // module imports nothing
    vm::Module m = minimal_module();
    m.functions[0].code = {{Opcode::kCallHost, import},
                           {Opcode::kConst, 0},
                           {Opcode::kReturn, 0}};
    auto status = vm::validate(m);
    ASSERT_FALSE(status.ok()) << "import " << import;
    EXPECT_NE(status.error_message().find("host import index out of range"),
              std::string::npos)
        << status.error_message();
    EXPECT_FALSE(vm::translate(m).ok()) << "import " << import;
    EXPECT_FALSE(vm::Instance::create(m, {}, {}).ok()) << "import " << import;
  }
  // With one import declared, index 0 is fine and index 1 is not.
  vm::Module m = minimal_module();
  m.host_imports = {"h"};
  m.functions[0].code = {{Opcode::kConst, 1},
                         {Opcode::kDrop, 0},
                         {Opcode::kCallHost, 0},
                         {Opcode::kReturn, 0}};
  EXPECT_TRUE(vm::validate(m).ok());
  m.functions[0].code[2].imm = 1;
  EXPECT_FALSE(vm::validate(m).ok());
}

// --- Local/global indices reach translation safely ------------------------

TEST(VmValidator, TranslateRejectsOutOfRangeLocalsAndGlobals) {
  {
    vm::Module m = minimal_module();
    m.functions[0].code = {{Opcode::kLocalGet, 5}, {Opcode::kReturn, 0}};
    EXPECT_FALSE(vm::validate(m).ok());
    EXPECT_FALSE(vm::translate(m).ok());
  }
  {
    vm::Module m = minimal_module();
    m.functions[0].code = {{Opcode::kGlobalGet, 0}, {Opcode::kReturn, 0}};
    EXPECT_FALSE(vm::validate(m).ok());  // no globals declared
    EXPECT_FALSE(vm::translate(m).ok());
  }
}

}  // namespace
}  // namespace debuglet
