#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace debuglet::net {
namespace {

TEST(Address, ParseAndFormat) {
  auto a = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->to_string(), "10.1.2.3");
  EXPECT_EQ(a->value, 0x0A010203u);
  EXPECT_EQ(Ipv4Address(10, 1, 2, 3), *a);
}

TEST(Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.300").ok());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4Address::parse("").ok());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").ok());
}

TEST(Checksum, Rfc1071Example) {
  // Classic example: verifying over data + checksum yields 0.
  const Bytes data = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                      0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                      0xc0, 0xa8, 0x00, 0xc7};
  const std::uint16_t sum = internet_checksum(BytesView(data.data(),
                                                        data.size()));
  Bytes with = data;
  with[10] = static_cast<std::uint8_t>(sum >> 8);
  with[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(BytesView(with.data(), with.size())), 0);
}

TEST(Checksum, OddLengthHandled) {
  const Bytes data = {0x01, 0x02, 0x03};
  EXPECT_NE(internet_checksum(BytesView(data.data(), data.size())), 0);
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.total_length = 40;
  h.identification = 777;
  h.ttl = 61;
  h.protocol = 17;
  h.source = Ipv4Address(10, 0, 1, 2);
  h.destination = Ipv4Address(10, 0, 3, 4);
  Bytes wire = h.serialize();
  wire.resize(40, 0);  // pad to the declared total length
  auto back = Ipv4Header::parse(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(back->total_length, 40);
  EXPECT_EQ(back->identification, 777);
  EXPECT_EQ(back->ttl, 61);
  EXPECT_EQ(back->protocol, 17);
  EXPECT_EQ(back->source, h.source);
  EXPECT_EQ(back->destination, h.destination);
}

TEST(Ipv4Header, CorruptionDetected) {
  Ipv4Header h;
  h.total_length = 20;
  h.protocol = 6;
  h.source = Ipv4Address(1, 2, 3, 4);
  h.destination = Ipv4Address(5, 6, 7, 8);
  Bytes wire = h.serialize();
  wire[12] ^= 0xFF;  // flip a source-address byte
  EXPECT_FALSE(Ipv4Header::parse(BytesView(wire.data(), wire.size())).ok());
}

TEST(Ipv4Header, RejectsTruncation) {
  Ipv4Header h;
  h.total_length = 20;
  Bytes wire = h.serialize();
  EXPECT_FALSE(Ipv4Header::parse(BytesView(wire.data(), 19)).ok());
}

class ProbeRoundTrip
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint16_t>> {};

TEST_P(ProbeRoundTrip, BuildsParsesAndEqualizesLength) {
  const auto [protocol, length] = GetParam();
  ProbeSpec spec;
  spec.protocol = protocol;
  spec.source = Ipv4Address(10, 0, 100, 200);
  spec.destination = Ipv4Address(10, 0, 101, 201);
  spec.source_port = 40001;
  spec.destination_port = 50001;
  spec.sequence = 321;
  spec.tcp_sequence = 0xABCD1234;
  spec.payload = bytes_of("probe-payload!!!");  // 16 bytes
  spec.equalized_length = length;

  auto wire = build_probe(spec);
  ASSERT_TRUE(wire.ok()) << wire.error_message();
  EXPECT_EQ(wire->size(), length);  // the paper's equal-length requirement

  auto packet = parse_packet(BytesView(wire->data(), wire->size()));
  ASSERT_TRUE(packet.ok()) << packet.error_message();
  EXPECT_EQ(packet->protocol, protocol);
  EXPECT_EQ(packet->ip.source, spec.source);
  EXPECT_EQ(packet->ip.destination, spec.destination);
  ASSERT_GE(packet->payload.size(), 16u);
  EXPECT_EQ(Bytes(packet->payload.begin(), packet->payload.begin() + 16),
            spec.payload);
  switch (protocol) {
    case Protocol::kUdp:
      ASSERT_TRUE(packet->udp.has_value());
      EXPECT_EQ(packet->udp->source_port, 40001);
      EXPECT_EQ(packet->udp->destination_port, 50001);
      break;
    case Protocol::kTcp:
      ASSERT_TRUE(packet->tcp.has_value());
      EXPECT_EQ(packet->tcp->sequence, 0xABCD1234u);
      EXPECT_EQ(packet->tcp->flags, 0) << "probes carry no TCP flags";
      break;
    case Protocol::kIcmp:
      ASSERT_TRUE(packet->icmp.has_value());
      EXPECT_EQ(packet->icmp->type, 8);
      // (identifier, sequence) carry (dst port, src port) by convention.
      EXPECT_EQ(packet->icmp->identifier, 50001);
      EXPECT_EQ(packet->icmp->sequence, 40001);
      EXPECT_EQ(packet->ip.identification, 321);
      break;
    case Protocol::kRawIp:
      EXPECT_EQ(packet->ip.protocol, 201);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndSizes, ProbeRoundTrip,
    ::testing::Combine(::testing::Values(Protocol::kUdp, Protocol::kTcp,
                                         Protocol::kIcmp, Protocol::kRawIp),
                       ::testing::Values<std::uint16_t>(64, 128, 512, 1400)));

TEST(Probe, EqualizedLengthTooSmallFails) {
  ProbeSpec spec;
  spec.protocol = Protocol::kTcp;
  spec.payload = bytes_of("0123456789abcdef");
  spec.equalized_length = 50;  // < 20 IP + 20 TCP + 16 payload
  EXPECT_FALSE(build_probe(spec).ok());
}

TEST(Probe, ZeroEqualizationKeepsPayload) {
  ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.payload = bytes_of("xy");
  auto wire = build_probe(spec);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->size(), 20u + 8u + 2u);
}

class EchoReply : public ::testing::TestWithParam<Protocol> {};

TEST_P(EchoReply, SwapsEndpointsAndEchoesPayload) {
  ProbeSpec spec;
  spec.protocol = GetParam();
  spec.source = Ipv4Address(10, 0, 1, 1);
  spec.destination = Ipv4Address(10, 0, 2, 2);
  spec.source_port = 1111;
  spec.destination_port = 2222;
  spec.sequence = 99;
  spec.payload = bytes_of("echo-me-please!!");
  spec.equalized_length = 96;
  auto wire = build_probe(spec);
  ASSERT_TRUE(wire.ok());
  auto request = parse_packet(BytesView(wire->data(), wire->size()));
  ASSERT_TRUE(request.ok());

  auto reply_wire = build_echo_reply(*request);
  ASSERT_TRUE(reply_wire.ok()) << reply_wire.error_message();
  auto reply = parse_packet(BytesView(reply_wire->data(), reply_wire->size()));
  ASSERT_TRUE(reply.ok()) << reply.error_message();

  EXPECT_EQ(reply->ip.source, spec.destination);
  EXPECT_EQ(reply->ip.destination, spec.source);
  EXPECT_EQ(reply->payload, request->payload);
  EXPECT_EQ(reply->wire_size(), request->wire_size())
      << "replies must stay length-equalized";
  if (GetParam() == Protocol::kUdp) {
    EXPECT_EQ(reply->udp->source_port, 2222);
    EXPECT_EQ(reply->udp->destination_port, 1111);
  }
  if (GetParam() == Protocol::kIcmp) {
    EXPECT_EQ(reply->icmp->type, 0) << "reply must be echo-reply";
    EXPECT_EQ(reply->icmp->identifier, 1111) << "ports swapped";
    EXPECT_EQ(reply->icmp->sequence, 2222);
    EXPECT_EQ(reply->ip.identification, 99) << "probe number echoed";
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, EchoReply,
                         ::testing::Values(Protocol::kUdp, Protocol::kTcp,
                                           Protocol::kIcmp,
                                           Protocol::kRawIp));

TEST(ParsePacket, RejectsUnknownProtocol) {
  Ipv4Header h;
  h.total_length = 20;
  h.protocol = 99;
  h.source = Ipv4Address(1, 1, 1, 1);
  h.destination = Ipv4Address(2, 2, 2, 2);
  const Bytes wire = h.serialize();
  EXPECT_FALSE(parse_packet(BytesView(wire.data(), wire.size())).ok());
}

TEST(ParsePacket, ValidatesIcmpChecksum) {
  ProbeSpec spec;
  spec.protocol = Protocol::kIcmp;
  spec.payload = bytes_of("0123456789abcdef");
  auto wire = build_probe(spec);
  ASSERT_TRUE(wire.ok());
  (*wire)[Ipv4Header::kSize + 5] ^= 0x55;  // corrupt ICMP body
  EXPECT_FALSE(parse_packet(BytesView(wire->data(), wire->size())).ok());
}

TEST(ProtocolNames, AreStable) {
  EXPECT_EQ(protocol_name(Protocol::kUdp), "UDP");
  EXPECT_EQ(protocol_name(Protocol::kTcp), "TCP");
  EXPECT_EQ(protocol_name(Protocol::kIcmp), "ICMP");
  EXPECT_EQ(protocol_name(Protocol::kRawIp), "RawIP");
}

// transport_header_size is defined FROM the header types' kSize constants
// (the single source of truth), so assert against those — not duplicated
// literals — and check the builder's payload accounting agrees end to end.
TEST(TransportHeaderSize, DerivedFromHeaderConstants) {
  static_assert(transport_header_size(Protocol::kUdp) == UdpHeader::kSize);
  static_assert(transport_header_size(Protocol::kTcp) == TcpHeader::kSize);
  static_assert(transport_header_size(Protocol::kIcmp) ==
                IcmpEchoHeader::kSize);
  static_assert(transport_header_size(Protocol::kRawIp) == 0);
  static_assert(header_overhead(Protocol::kUdp) ==
                Ipv4Header::kSize + UdpHeader::kSize);
  for (Protocol p : kAllProtocols)
    EXPECT_EQ(max_payload_size(p), 65535u - header_overhead(p));
}

TEST(TransportHeaderSize, BuildProbeAccountingAgrees) {
  for (Protocol p : kAllProtocols) {
    ProbeSpec spec;
    spec.protocol = p;
    spec.source = Ipv4Address(10, 0, 1, 2);
    spec.destination = Ipv4Address(10, 0, 2, 2);
    spec.source_port = 1111;
    spec.destination_port = 2222;
    spec.payload = Bytes(48, 0xAB);
    auto wire = build_probe(spec);
    ASSERT_TRUE(wire.ok()) << wire.error_message();
    // On-wire bytes = IP header + transport header + payload, exactly.
    EXPECT_EQ(wire->size(), header_overhead(p) + spec.payload.size());
    auto packet = parse_packet(BytesView(wire->data(), wire->size()));
    ASSERT_TRUE(packet.ok()) << packet.error_message();
    EXPECT_EQ(packet->payload.size(), spec.payload.size());
    EXPECT_EQ(packet->wire_size(), wire->size());
  }
}

TEST(TransportHeaderSize, BuildProbeRejectsOverlongPayload) {
  for (Protocol p : kAllProtocols) {
    ProbeSpec spec;
    spec.protocol = p;
    spec.source = Ipv4Address(10, 0, 1, 2);
    spec.destination = Ipv4Address(10, 0, 2, 2);
    spec.payload = Bytes(max_payload_size(p), 0);
    EXPECT_TRUE(build_probe(spec).ok());
    spec.payload.push_back(0);  // one byte past the u16 total_length limit
    EXPECT_FALSE(build_probe(spec).ok());
  }
}

// --- Typed parse errors ------------------------------------------------------
// The chaos receive path keys its net.parse_rejected{reason} counter off
// ParseErrorKind; these regressions pin each rejection to its type.

Bytes valid_udp_probe() {
  ProbeSpec spec;
  spec.source = Ipv4Address(10, 0, 1, 1);
  spec.destination = Ipv4Address(10, 0, 2, 2);
  spec.source_port = 7;
  spec.destination_port = 9;
  spec.sequence = 1;
  spec.payload = bytes_of("0123456789abcdef");
  auto wire = build_probe(spec);
  EXPECT_TRUE(wire.ok());
  return *wire;
}

TEST(ParseErrorKinds, NamesAreStable) {
  // Counter label values; renaming one silently forks dashboard series.
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kNone), "none");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kTruncatedHeader),
               "truncated_header");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kNotIpv4), "not_ipv4");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kOptionsUnsupported),
               "options_unsupported");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kBadChecksum),
               "bad_checksum");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kBadLength), "bad_length");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kFrameTruncated),
               "frame_truncated");
  EXPECT_STREQ(parse_error_name(ParseErrorKind::kUnsupportedProtocol),
               "unsupported_protocol");
}

TEST(ParseErrorKinds, TruncatedTransportBehindValidHeader) {
  // The link-truncation signature: the IPv4 header survives intact — its
  // checksum still verifies — but total_length claims bytes that never
  // arrived. This must be typed as truncation, NOT a checksum error.
  Bytes wire = valid_udp_probe();
  ASSERT_EQ(wire.size(), 44u);  // 20 IP + 8 UDP + 16 payload
  wire.resize(30);
  ParseErrorKind kind = ParseErrorKind::kNone;
  auto parsed = parse_packet(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(kind, ParseErrorKind::kFrameTruncated);
}

TEST(ParseErrorKinds, HeaderPhysicallyTruncated) {
  const Bytes wire = valid_udp_probe();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1},
                                 std::size_t{19}}) {
    ParseErrorKind kind = ParseErrorKind::kNone;
    auto parsed = parse_packet(BytesView(wire.data(), keep), &kind);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(kind, ParseErrorKind::kTruncatedHeader) << "keep=" << keep;
  }
}

TEST(ParseErrorKinds, TotalLengthBelowHeaderIsBadLength) {
  Ipv4Header h;
  h.total_length = 8;  // a 20-byte header cannot carry an 8-byte packet
  h.protocol = 17;
  h.source = Ipv4Address(1, 2, 3, 4);
  h.destination = Ipv4Address(5, 6, 7, 8);
  const Bytes wire = h.serialize();  // checksum is CORRECT for these fields
  ParseErrorKind kind = ParseErrorKind::kNone;
  auto parsed = Ipv4Header::parse(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(kind, ParseErrorKind::kBadLength);
}

TEST(ParseErrorKinds, ChecksumCorruptionIsTyped) {
  Bytes wire = valid_udp_probe();
  wire[13] ^= 0x01;  // source-address byte: covered by the header checksum
  ParseErrorKind kind = ParseErrorKind::kNone;
  auto parsed = parse_packet(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(kind, ParseErrorKind::kBadChecksum);
}

TEST(ParseErrorKinds, NonIpv4VersionIsTyped) {
  Bytes wire = valid_udp_probe();
  wire[0] = (wire[0] & 0x0F) | 0x60;  // claim IPv6
  ParseErrorKind kind = ParseErrorKind::kNone;
  auto parsed = parse_packet(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(kind, ParseErrorKind::kNotIpv4);
}

TEST(ParseErrorKinds, UnknownTransportIsTyped) {
  Ipv4Header h;
  h.total_length = 20;
  h.protocol = 99;
  h.source = Ipv4Address(1, 1, 1, 1);
  h.destination = Ipv4Address(2, 2, 2, 2);
  const Bytes wire = h.serialize();
  ParseErrorKind kind = ParseErrorKind::kNone;
  auto parsed = parse_packet(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(kind, ParseErrorKind::kUnsupportedProtocol);
}

TEST(ParseErrorKinds, UdpLengthFieldLies) {
  // The UDP length bytes sit at IP+4..5 and carry no validated checksum,
  // so in-flight corruption reaches them undetected; the parser itself
  // must bound-check. Shorter than its own header: bad length. Longer
  // than the transport slice actually present: truncation.
  Bytes under = valid_udp_probe();
  under[Ipv4Header::kSize + 4] = 0;
  under[Ipv4Header::kSize + 5] = 4;  // UDP length 4 < 8
  ParseErrorKind kind = ParseErrorKind::kNone;
  ASSERT_FALSE(parse_packet(BytesView(under.data(), under.size()), &kind).ok());
  EXPECT_EQ(kind, ParseErrorKind::kBadLength);

  Bytes over = valid_udp_probe();
  over[Ipv4Header::kSize + 4] = 0;
  over[Ipv4Header::kSize + 5] = 200;  // UDP length 200 > 24 present
  kind = ParseErrorKind::kNone;
  ASSERT_FALSE(parse_packet(BytesView(over.data(), over.size()), &kind).ok());
  EXPECT_EQ(kind, ParseErrorKind::kFrameTruncated);
}

TEST(ParseErrorKinds, IcmpChecksumIsTyped) {
  ProbeSpec spec;
  spec.protocol = Protocol::kIcmp;
  spec.payload = bytes_of("0123456789abcdef");
  auto wire = build_probe(spec);
  ASSERT_TRUE(wire.ok());
  (*wire)[Ipv4Header::kSize + 5] ^= 0x55;
  ParseErrorKind kind = ParseErrorKind::kNone;
  ASSERT_FALSE(parse_packet(BytesView(wire->data(), wire->size()), &kind).ok());
  EXPECT_EQ(kind, ParseErrorKind::kBadChecksum);
}

TEST(ParseErrorKinds, SuccessLeavesKindNone) {
  const Bytes wire = valid_udp_probe();
  ParseErrorKind kind = ParseErrorKind::kNone;
  EXPECT_TRUE(parse_packet(BytesView(wire.data(), wire.size()), &kind).ok());
  EXPECT_EQ(kind, ParseErrorKind::kNone);
}

}  // namespace
}  // namespace debuglet::net
