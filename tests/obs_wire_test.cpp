// Property tests for the snapshot wire format (obs/wire): encode/decode
// round trips, chunking + reassembly under reordering, duplication,
// truncation, and bit corruption. The contract under test is that a
// damaged or mixed chunk stream is REJECTED — never silently mis-merged
// into a plausible-looking snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "util/rng.hpp"

namespace debuglet::obs::wire {
namespace {

// Builds a registry with a representative mix of metrics and returns its
// snapshot. Varies with `seed` so property tests cover many shapes.
std::vector<MetricRow> sample_rows(std::uint64_t seed) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Rng rng(seed);
  reg.counter("wire.requests").add(rng.next_below(1000));
  reg.counter("wire.requests", {{"as", "3"}, {"intf", "2"}})
      .add(rng.next_below(1 << 20));
  reg.counter("wire.huge").add(rng.next_u64());  // exercises wide varints
  reg.gauge("wire.depth").set(rng.uniform(-5.0, 50.0));
  reg.gauge("wire.depth").set(rng.uniform(-5.0, 50.0));
  Histogram& h = reg.histogram("wire.latency_ms", {{"proto", "udp"}});
  const int samples = 1 + static_cast<int>(rng.next_below(400));
  for (int i = 0; i < samples; ++i)
    h.record(std::exp(rng.normal(0.0, 2.0)));
  reg.histogram("wire.empty_hist");  // zero-count histogram row
  return reg.snapshot();
}

void expect_rows_equal(const std::vector<MetricRow>& a,
                       const std::vector<MetricRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].name + labels_to_string(a[i].labels));
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].labels, b[i].labels);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_DOUBLE_EQ(a[i].sum, b[i].sum);
    EXPECT_DOUBLE_EQ(a[i].min, b[i].min);
    EXPECT_DOUBLE_EQ(a[i].max, b[i].max);
    // Percentiles are recomputed from buckets at decode; they must agree
    // exactly with the sender's interpolation, not approximately.
    EXPECT_DOUBLE_EQ(a[i].p50, b[i].p50);
    EXPECT_DOUBLE_EQ(a[i].p90, b[i].p90);
    EXPECT_DOUBLE_EQ(a[i].p99, b[i].p99);
    EXPECT_EQ(a[i].hist_buckets, b[i].hist_buckets);
  }
}

// --- Snapshot encoding ---------------------------------------------------

TEST(SnapshotCodec, RoundTripsManyShapes) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto rows = sample_rows(seed);
    const Bytes encoded = encode_snapshot(rows);
    auto decoded = decode_snapshot(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error_message();
    expect_rows_equal(rows, *decoded);
  }
}

TEST(SnapshotCodec, RoundTripsEmptySnapshot) {
  const Bytes encoded = encode_snapshot({});
  auto decoded = decode_snapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error_message();
  EXPECT_TRUE(decoded->empty());
}

TEST(SnapshotCodec, RejectsEveryTruncation) {
  const Bytes encoded = encode_snapshot(sample_rows(3));
  for (std::size_t len = 0; len < encoded.size(); ++len)
    EXPECT_FALSE(decode_snapshot(BytesView(encoded.data(), len)).ok())
        << "truncated to " << len << " of " << encoded.size() << " bytes";
}

TEST(SnapshotCodec, RejectsTrailingGarbage) {
  Bytes encoded = encode_snapshot(sample_rows(3));
  encoded.push_back(0x00);
  EXPECT_FALSE(decode_snapshot(encoded).ok());
}

TEST(SnapshotCodec, RejectsEverySingleBitFlip) {
  const Bytes encoded = encode_snapshot(sample_rows(4));
  // Flipping any one bit anywhere — header, body, or the digest itself —
  // must fail the digest check (or a structural check before it).
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes damaged = encoded;
    const std::size_t byte = rng.index(damaged.size());
    damaged[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(decode_snapshot(damaged).ok())
        << "bit flip in byte " << byte << " accepted";
  }
}

TEST(SnapshotCodec, RejectsNewerVersion) {
  Bytes encoded = encode_snapshot(sample_rows(5));
  // Bump the u16 LE version field (offset 4, after the magic) and repair
  // the trailing digest so ONLY the version is wrong.
  encoded[4] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
  const std::uint64_t fixed =
      digest(BytesView(encoded.data(), encoded.size() - 8));
  for (int i = 0; i < 8; ++i)
    encoded[encoded.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(fixed >> (8 * i));
  EXPECT_FALSE(decode_snapshot(encoded).ok());
}

// --- Chunking ------------------------------------------------------------

TEST(Chunking, CountAndBounds) {
  EXPECT_EQ(chunk_count(0, 100), 1u);  // empty snapshot still ships a chunk
  EXPECT_EQ(chunk_count(1, 100), 1u);
  EXPECT_EQ(chunk_count(100, 100), 1u);
  EXPECT_EQ(chunk_count(101, 100), 2u);
  const Bytes encoded = encode_snapshot(sample_rows(1));
  EXPECT_FALSE(build_chunk(encoded, 0, kMinChunkPayload - 1).ok());
  EXPECT_FALSE(build_chunk(encoded, 0, kMaxChunkPayload + 1).ok());
  const std::size_t n = chunk_count(encoded.size(), kMinChunkPayload);
  EXPECT_FALSE(build_chunk(encoded, n, kMinChunkPayload).ok());
}

TEST(Chunking, ChunkRoundTrip) {
  const Bytes encoded = encode_snapshot(sample_rows(2));
  const std::uint32_t payload = 64;
  const std::size_t n = chunk_count(encoded.size(), payload);
  ASSERT_GT(n, 2u);
  std::size_t reassembled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto wire = build_chunk(encoded, i, payload);
    ASSERT_TRUE(wire.ok()) << wire.error_message();
    auto chunk = parse_chunk(*wire);
    ASSERT_TRUE(chunk.ok()) << chunk.error_message();
    EXPECT_EQ(chunk->index, i);
    EXPECT_EQ(chunk->count, n);
    EXPECT_EQ(chunk->total_length, encoded.size());
    reassembled += chunk->payload.size();
  }
  EXPECT_EQ(reassembled, encoded.size());
}

TEST(Chunking, ParseRejectsCorruptChunk) {
  const Bytes encoded = encode_snapshot(sample_rows(2));
  auto wire = build_chunk(encoded, 0, 64);
  ASSERT_TRUE(wire.ok());
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes damaged = *wire;
    damaged[rng.index(damaged.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(parse_chunk(damaged).ok());
  }
  for (std::size_t len = 0; len < wire->size(); ++len)
    EXPECT_FALSE(parse_chunk(BytesView(wire->data(), len)).ok());
}

// --- Reassembly ----------------------------------------------------------

std::vector<Bytes> all_chunks(const Bytes& encoded, std::uint32_t payload) {
  std::vector<Bytes> out;
  const std::size_t n = chunk_count(encoded.size(), payload);
  for (std::size_t i = 0; i < n; ++i) {
    auto wire = build_chunk(encoded, i, payload);
    EXPECT_TRUE(wire.ok());
    out.push_back(*wire);
  }
  return out;
}

TEST(Assembler, ReassemblesAnyArrivalOrder) {
  const auto rows = sample_rows(6);
  const Bytes encoded = encode_snapshot(rows);
  auto chunks = all_chunks(encoded, 64);
  ASSERT_GE(chunks.size(), 3u);
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Random shuffle of the arrival order.
    std::vector<std::size_t> order(chunks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.index(i)]);

    SnapshotAssembler asmbl;
    for (std::size_t i : order) {
      EXPECT_FALSE(asmbl.complete());
      EXPECT_TRUE(asmbl.add_chunk(chunks[i]).ok());
    }
    ASSERT_TRUE(asmbl.complete());
    EXPECT_TRUE(asmbl.missing().empty());
    auto decoded = asmbl.finish();
    ASSERT_TRUE(decoded.ok()) << decoded.error_message();
    expect_rows_equal(rows, *decoded);
  }
}

TEST(Assembler, ToleratesDuplicatesRejectsConflicts) {
  const Bytes encoded = encode_snapshot(sample_rows(7));
  auto chunks = all_chunks(encoded, 64);
  ASSERT_GE(chunks.size(), 2u);
  SnapshotAssembler asmbl;
  EXPECT_TRUE(asmbl.add_chunk(chunks[0]).ok());
  // Identical duplicate: fine, does not double-count.
  EXPECT_TRUE(asmbl.add_chunk(chunks[0]).ok());
  EXPECT_EQ(asmbl.received_chunks(), 1u);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_TRUE(asmbl.add_chunk(chunks[i]).ok());
  EXPECT_TRUE(asmbl.complete());
  EXPECT_TRUE(asmbl.finish().ok());
}

TEST(Assembler, RejectsChunksOfADifferentSnapshot) {
  // Two different registries → different digests → different snapshot ids.
  const Bytes first = encode_snapshot(sample_rows(8));
  const Bytes second = encode_snapshot(sample_rows(9));
  auto first_chunks = all_chunks(first, 64);
  auto second_chunks = all_chunks(second, 64);
  ASSERT_GE(first_chunks.size(), 2u);
  auto first_id = parse_chunk(first_chunks[0]);
  auto second_id = parse_chunk(second_chunks[0]);
  ASSERT_TRUE(first_id.ok());
  ASSERT_TRUE(second_id.ok());
  ASSERT_NE(first_id->snapshot_id, second_id->snapshot_id);

  SnapshotAssembler asmbl;
  EXPECT_TRUE(asmbl.add_chunk(first_chunks[0]).ok());
  // A foreign chunk is refused and leaves collected state untouched.
  EXPECT_FALSE(asmbl.add_chunk(second_chunks[0]).ok());
  EXPECT_EQ(asmbl.received_chunks(), 1u);
  for (std::size_t i = 1; i < first_chunks.size(); ++i)
    EXPECT_TRUE(asmbl.add_chunk(first_chunks[i]).ok());
  auto decoded = asmbl.finish();
  ASSERT_TRUE(decoded.ok()) << decoded.error_message();
}

TEST(Assembler, IncompleteNeverFinishes) {
  const Bytes encoded = encode_snapshot(sample_rows(8));
  auto chunks = all_chunks(encoded, 64);
  ASSERT_GE(chunks.size(), 3u);
  SnapshotAssembler asmbl;
  // Feed all but one chunk — finish() must refuse, and missing() must name
  // exactly the hole.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(asmbl.add_chunk(chunks[i]).ok());
  }
  EXPECT_FALSE(asmbl.complete());
  EXPECT_FALSE(asmbl.finish().ok());
  ASSERT_EQ(asmbl.missing().size(), 1u);
  EXPECT_EQ(asmbl.missing()[0], 1u);

  asmbl.reset();
  EXPECT_EQ(asmbl.expected_chunks(), 0u);
  EXPECT_FALSE(asmbl.finish().ok());
}

// --- Merge ---------------------------------------------------------------

TEST(Merge, ImportsUnderRemoteHostLabel) {
  MetricsRegistry source;
  source.set_enabled(true);
  source.counter("m.hits", {{"as", "2"}}).add(41);
  source.gauge("m.depth").set(7.5);
  Histogram& h = source.histogram("m.rtt");
  h.record(1.0);
  h.record(10.0);
  h.record(100.0);

  // The target registry stays DISABLED: the import path must bypass the
  // enabled flag, like restore()/set_total() document.
  MetricsRegistry target;
  auto status = merge_rows(target, source.snapshot(), "10.0.2.1");
  ASSERT_TRUE(status.ok()) << status.error_message();

  EXPECT_EQ(target
                .counter("m.hits",
                         {{"as", "2"}, {kRemoteHostLabel, "10.0.2.1"}})
                .value(),
            41u);
  EXPECT_DOUBLE_EQ(
      target.gauge("m.depth", {{kRemoteHostLabel, "10.0.2.1"}}).value(), 7.5);
  Histogram& merged =
      target.histogram("m.rtt", {{kRemoteHostLabel, "10.0.2.1"}});
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.sum(), 111.0);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 100.0);
  EXPECT_DOUBLE_EQ(merged.p50(), source.histogram("m.rtt").p50());
}

TEST(Merge, RescrapeOverwritesInsteadOfDoubleCounting) {
  MetricsRegistry source;
  source.set_enabled(true);
  Counter& c = source.counter("m.hits");
  c.add(10);
  MetricsRegistry target;
  ASSERT_TRUE(merge_rows(target, source.snapshot(), "h").ok());
  c.add(5);
  ASSERT_TRUE(merge_rows(target, source.snapshot(), "h").ok());
  EXPECT_EQ(target.counter("m.hits", {{kRemoteHostLabel, "h"}}).value(), 15u);
}

TEST(Merge, RejectsRowsAlreadyCarryingARemoteHost) {
  // Scraping a scraper: its registry holds rows labelled with ANOTHER
  // host's identity; importing them must fail rather than re-label.
  MetricRow row;
  row.name = "m.hits";
  row.labels = {{kRemoteHostLabel, "10.0.9.9"}};
  row.kind = MetricRow::Kind::kCounter;
  row.count = 3;
  MetricsRegistry target;
  EXPECT_FALSE(merge_rows(target, {row}, "10.0.2.1").ok());
}

}  // namespace
}  // namespace debuglet::obs::wire
