// Host-level fault injection: HostFaultPlan resolution properties and the
// network semantics of crashed / silent / slow hosts.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/host_faults.hpp"
#include "simnet/scenarios.hpp"
#include "util/rng.hpp"

namespace debuglet::simnet {
namespace {

TEST(HostFaultPlan, SeverityResolutionOnOverlap) {
  HostFaultPlan plan;
  plan.slow(0, duration::seconds(10), 25.0)
      .silent(duration::seconds(2), duration::seconds(8))
      .crash(duration::seconds(4), duration::seconds(6));

  EXPECT_EQ(plan.state_at(duration::seconds(1)).kind,
            HostFaultKind::kSlowHost);
  EXPECT_DOUBLE_EQ(plan.state_at(duration::seconds(1)).extra_delay_ms, 25.0);
  EXPECT_EQ(plan.state_at(duration::seconds(3)).kind,
            HostFaultKind::kSilentDrop);
  EXPECT_EQ(plan.state_at(duration::seconds(5)).kind, HostFaultKind::kCrash);
  // Crash ends at 6 (exclusive): silent-drop resumes, then slow, then none.
  EXPECT_EQ(plan.state_at(duration::seconds(6)).kind,
            HostFaultKind::kSilentDrop);
  EXPECT_EQ(plan.state_at(duration::seconds(9)).kind,
            HostFaultKind::kSlowHost);
  EXPECT_EQ(plan.state_at(duration::seconds(10)).kind, HostFaultKind::kNone);
}

TEST(HostFaultPlan, ZeroLengthAndInvertedWindowsAreInert) {
  HostFaultPlan plan;
  plan.crash(duration::seconds(5), duration::seconds(5));   // zero-length
  plan.silent(duration::seconds(9), duration::seconds(3));  // inverted
  for (SimTime t = 0; t <= duration::seconds(10); t += duration::seconds(1)) {
    EXPECT_EQ(plan.state_at(t).kind, HostFaultKind::kNone) << "t=" << t;
    EXPECT_TRUE(plan.serving_at(t));
    EXPECT_EQ(plan.recovered_after(t), t);
  }
}

TEST(HostFaultPlan, ConcurrentSlowWindowsAddDelays) {
  HostFaultPlan plan;
  plan.slow(0, duration::seconds(4), 10.0)
      .slow(duration::seconds(2), duration::seconds(6), 7.5);
  EXPECT_DOUBLE_EQ(plan.state_at(duration::seconds(1)).extra_delay_ms, 10.0);
  EXPECT_DOUBLE_EQ(plan.state_at(duration::seconds(3)).extra_delay_ms, 17.5);
  EXPECT_DOUBLE_EQ(plan.state_at(duration::seconds(5)).extra_delay_ms, 7.5);
  EXPECT_TRUE(plan.serving_at(duration::seconds(3)));  // slow still serves
}

TEST(HostFaultPlan, RecoveryWalksChainedOutages) {
  // Back-to-back and overlapping outage windows: recovery is the end of
  // the LAST window in the chain, not the first.
  HostFaultPlan plan;
  plan.crash(duration::seconds(1), duration::seconds(3))
      .silent(duration::seconds(3), duration::seconds(5))
      .crash(duration::seconds(4), duration::seconds(7));
  EXPECT_EQ(plan.recovered_after(duration::seconds(2)), duration::seconds(7));
  EXPECT_EQ(plan.recovered_after(duration::seconds(6)), duration::seconds(7));
  EXPECT_EQ(plan.recovered_after(duration::seconds(7)), duration::seconds(7));
  EXPECT_EQ(plan.recovered_after(0), 0) << "not yet crashed at t=0";
}

// The headline property: however windows overlap, a host is never
// simultaneously crashed (or silenced) and serving, recovery is always at
// or after the queried time, and the host truly serves at recovery.
TEST(HostFaultPlan, RandomizedPlansNeverCrashServingContradiction) {
  Rng rng(0xFA017);
  for (int trial = 0; trial < 200; ++trial) {
    HostFaultPlan plan;
    const int windows = static_cast<int>(rng.uniform(0.0, 6.0));
    for (int w = 0; w < windows; ++w) {
      HostFaultWindow window;
      const double pick = rng.uniform(0.0, 3.0);
      window.kind = pick < 1.0   ? HostFaultKind::kSlowHost
                    : pick < 2.0 ? HostFaultKind::kSilentDrop
                                 : HostFaultKind::kCrash;
      window.start = duration::milliseconds(
          static_cast<std::int64_t>(rng.uniform(0.0, 10'000.0)));
      // Bias toward overlapping and occasionally empty/inverted windows.
      window.end = window.start +
                   duration::milliseconds(static_cast<std::int64_t>(
                       rng.uniform(-2'000.0, 8'000.0)));
      window.extra_delay_ms = rng.uniform(0.0, 50.0);
      plan.add(window);
    }
    for (int sample = 0; sample < 50; ++sample) {
      const SimTime t = duration::milliseconds(
          static_cast<std::int64_t>(rng.uniform(0.0, 20'000.0)));
      const HostFaultState state = plan.state_at(t);
      // Serving and crashed/silent are mutually exclusive by construction.
      EXPECT_EQ(plan.serving_at(t), !(state.crashed() || state.silent()));
      // Only slow hosts carry a service delay.
      if (state.kind != HostFaultKind::kSlowHost)
        EXPECT_DOUBLE_EQ(state.extra_delay_ms, 0.0);
      // The resolved severity is the max over active windows.
      HostFaultKind expected = HostFaultKind::kNone;
      for (const HostFaultWindow& window : plan.windows())
        if (window.active_at(t) && window.kind > expected)
          expected = window.kind;
      EXPECT_EQ(state.kind, expected);
      // Recovery ordering: never in the past, and actually recovered.
      const SimTime recovered = plan.recovered_after(t);
      EXPECT_GE(recovered, t);
      EXPECT_TRUE(plan.serving_at(recovered));
      if (!plan.serving_at(t)) EXPECT_GT(recovered, t);
    }
  }
}

// Network-level semantics, driven through a tiny two-host exchange.
struct CountingHost : Host {
  void on_packet(const Delivery& delivery) override {
    ++received;
    last_received_at = delivery.received_at;
  }
  int received = 0;
  SimTime last_received_at = 0;
};

struct HostFaultNetFixture : ::testing::Test {
  HostFaultNetFixture() : scenario(build_chain_scenario(3, 99, 5.0)) {
    sender_addr = scenario.network->allocate_host_address(1);
    receiver_addr = scenario.network->allocate_host_address(3);
    EXPECT_TRUE(scenario.network->attach_host(sender_addr, &sender).ok());
    EXPECT_TRUE(scenario.network->attach_host(receiver_addr, &receiver).ok());
  }

  Status send_probe(std::uint16_t sequence) {
    net::ProbeSpec spec;
    spec.source = sender_addr;
    spec.destination = receiver_addr;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.sequence = sequence;
    auto wire = net::build_probe(spec);
    if (!wire) return wire.error();
    return scenario.network->send(sender_addr, std::move(*wire));
  }

  obs::ScopedRegistry scoped;  // before the network: handles are cached
  Scenario scenario;
  net::Ipv4Address sender_addr, receiver_addr;
  CountingHost sender, receiver;
};

TEST_F(HostFaultNetFixture, CrashedSenderDropsEgressTraffic) {
  HostFaultPlan plan;
  plan.crash(0, duration::seconds(5));
  ASSERT_TRUE(
      scenario.network->install_host_faults(sender_addr, plan).ok());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 0);
  EXPECT_EQ(scoped.get()
                .counter("simnet.host_fault_drops", {{"side", "egress"}})
                .value(),
            1u);
}

TEST_F(HostFaultNetFixture, CrashedReceiverDropsAtArrival) {
  HostFaultPlan plan;
  plan.crash(0, duration::hours(1));
  ASSERT_TRUE(
      scenario.network->install_host_faults(receiver_addr, plan).ok());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 0);
  EXPECT_EQ(scoped.get()
                .counter("simnet.host_fault_drops", {{"side", "ingress"}})
                .value(),
            1u);
}

TEST_F(HostFaultNetFixture, SilentHostHearsButNeverAnswers) {
  // Silence the RECEIVER: inbound still delivers (it hears)...
  HostFaultPlan plan;
  plan.silent(0, duration::hours(1));
  ASSERT_TRUE(
      scenario.network->install_host_faults(receiver_addr, plan).ok());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 1);
  // ...but anything it tries to send is swallowed at its own interface.
  net::ProbeSpec reply;
  reply.source = receiver_addr;
  reply.destination = sender_addr;
  reply.source_port = 40002;
  reply.destination_port = 40001;
  auto wire = net::build_probe(reply);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(scenario.network->send(receiver_addr, std::move(*wire)).ok());
  scenario.queue->run();
  EXPECT_EQ(sender.received, 0);
}

TEST_F(HostFaultNetFixture, SlowHostAddsServiceDelayAndRecovers) {
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.received, 1);
  const SimTime healthy_latency = receiver.last_received_at;

  HostFaultPlan plan;
  plan.slow(scenario.queue->now(),
            scenario.queue->now() + duration::seconds(5), 40.0);
  ASSERT_TRUE(
      scenario.network->install_host_faults(receiver_addr, plan).ok());
  const SimTime slow_sent_at = scenario.queue->now();
  ASSERT_TRUE(send_probe(2).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.received, 2);
  const SimTime slow_latency = receiver.last_received_at - slow_sent_at;
  EXPECT_GE(slow_latency, healthy_latency + duration::milliseconds(40));

  // Past the window the extra delay disappears (timed recovery).
  scenario.queue->run_until(slow_sent_at + duration::seconds(6));
  const SimTime recovered_sent_at = scenario.queue->now();
  ASSERT_TRUE(send_probe(3).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.received, 3);
  EXPECT_LT(receiver.last_received_at - recovered_sent_at,
            healthy_latency + duration::milliseconds(40));
}

TEST_F(HostFaultNetFixture, InstallValidatesAndClearRestores) {
  // An address in an AS the topology does not know is rejected.
  EXPECT_FALSE(scenario.network
                   ->install_host_faults(net::Ipv4Address{10, 99, 0, 77},
                                         HostFaultPlan{}.crash(0, 100))
                   .ok());

  HostFaultPlan plan;
  plan.crash(0, duration::hours(1));
  ASSERT_TRUE(
      scenario.network->install_host_faults(receiver_addr, plan).ok());
  EXPECT_TRUE(scenario.network->host_fault_state(receiver_addr, 0).crashed());
  scenario.network->clear_host_faults(receiver_addr);
  EXPECT_FALSE(
      scenario.network->host_fault_state(receiver_addr, 0).crashed());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 1);
}

}  // namespace
}  // namespace debuglet::simnet
