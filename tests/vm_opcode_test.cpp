// Systematic per-opcode semantics: every binary/unary operator checked
// against reference C++ semantics across a grid of operands, including
// wrapping, sign, and shift-mask edge cases.
#include <gtest/gtest.h>

#include <limits>

#include "vm/builder.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet::vm {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

// Runs `a op b` through the interpreter.
RunOutcome run_binop(Opcode op, std::int64_t a, std::int64_t b) {
  ModuleBuilder builder;
  builder.memory(64);
  auto& f = builder.function(kEntryPointName);
  f.constant(a).constant(b).emit(op).ret();
  Module m = builder.build();
  EXPECT_TRUE(validate(m).ok());
  auto inst = Instance::create(std::move(m), {});
  EXPECT_TRUE(inst.ok());
  return inst->run();
}

struct BinCase {
  Opcode op;
  std::int64_t a;
  std::int64_t b;
  std::int64_t expected;
};

class BinOp : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinOp, MatchesReferenceSemantics) {
  const BinCase& c = GetParam();
  const RunOutcome out = run_binop(c.op, c.a, c.b);
  ASSERT_FALSE(out.trapped) << out.trap_message;
  EXPECT_EQ(out.value, c.expected)
      << opcode_name(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinOp,
    ::testing::Values(
        BinCase{Opcode::kAdd, 2, 3, 5},
        BinCase{Opcode::kAdd, kMax, 1, kMin},  // wrapping
        BinCase{Opcode::kAdd, -5, 5, 0},
        BinCase{Opcode::kSub, 2, 3, -1},
        BinCase{Opcode::kSub, kMin, 1, kMax},  // wrapping
        BinCase{Opcode::kMul, -4, 6, -24},
        BinCase{Opcode::kMul, kMax, 2, -2},    // wrapping
        BinCase{Opcode::kDivS, 7, 2, 3},
        BinCase{Opcode::kDivS, -7, 2, -3},     // C++ truncation toward zero
        BinCase{Opcode::kDivS, 7, -2, -3},
        BinCase{Opcode::kRemS, 7, 2, 1},
        BinCase{Opcode::kRemS, -7, 2, -1},
        BinCase{Opcode::kRemS, kMin, -1, 0}));  // defined, no trap

INSTANTIATE_TEST_SUITE_P(
    Bitwise, BinOp,
    ::testing::Values(
        BinCase{Opcode::kAnd, 0b1100, 0b1010, 0b1000},
        BinCase{Opcode::kOr, 0b1100, 0b1010, 0b1110},
        BinCase{Opcode::kXor, 0b1100, 0b1010, 0b0110},
        BinCase{Opcode::kAnd, -1, 0x7F, 0x7F},
        BinCase{Opcode::kShl, 1, 63, kMin},
        BinCase{Opcode::kShl, 1, 64, 1},       // count masked to 6 bits
        BinCase{Opcode::kShl, 1, 65, 2},
        BinCase{Opcode::kShrU, -1, 1, kMax},   // logical shift
        BinCase{Opcode::kShrS, -8, 2, -2},     // arithmetic shift
        BinCase{Opcode::kShrS, 8, 2, 2},
        BinCase{Opcode::kShrU, 8, 64, 8}));    // masked

INSTANTIATE_TEST_SUITE_P(
    Comparison, BinOp,
    ::testing::Values(
        BinCase{Opcode::kEq, 5, 5, 1}, BinCase{Opcode::kEq, 5, 6, 0},
        BinCase{Opcode::kNe, 5, 6, 1}, BinCase{Opcode::kNe, 5, 5, 0},
        BinCase{Opcode::kLtS, -1, 0, 1}, BinCase{Opcode::kLtS, 0, -1, 0},
        BinCase{Opcode::kGtS, 3, 2, 1}, BinCase{Opcode::kGtS, 2, 3, 0},
        BinCase{Opcode::kLeS, 2, 2, 1}, BinCase{Opcode::kLeS, 3, 2, 0},
        BinCase{Opcode::kGeS, 2, 2, 1}, BinCase{Opcode::kGeS, 2, 3, 0},
        BinCase{Opcode::kLtS, kMin, kMax, 1},
        BinCase{Opcode::kGtS, kMax, kMin, 1}));

TEST(UnaryOps, EqzAndDup) {
  ModuleBuilder builder;
  builder.memory(64);
  auto& f = builder.function(kEntryPointName);
  // dup(7) -> eqz(top) -> 0; add -> 7 + 0 = 7.
  f.constant(7).emit(Opcode::kDup).emit(Opcode::kEqz).emit(Opcode::kAdd);
  f.ret();
  auto inst = Instance::create(builder.build(), {});
  EXPECT_EQ(inst->run().value, 7);
}

TEST(MemoryOps, Load32ZeroExtends) {
  ModuleBuilder builder;
  builder.memory(64);
  auto& f = builder.function(kEntryPointName);
  // store64(-1) then load32 -> 0xFFFFFFFF (zero-extended, positive).
  f.constant(0).constant(-1).emit(Opcode::kStore64);
  f.constant(0).emit(Opcode::kLoad32);
  f.ret();
  auto inst = Instance::create(builder.build(), {});
  EXPECT_EQ(inst->run().value, 0xFFFFFFFFLL);
}

TEST(MemoryOps, Store32TruncatesHighBits) {
  ModuleBuilder builder;
  builder.memory(64);
  auto& f = builder.function(kEntryPointName);
  // Pre-fill 8 bytes with -1; store32 of 0 overwrites only the low 4.
  f.constant(0).constant(-1).emit(Opcode::kStore64);
  f.constant(0).constant(0).emit(Opcode::kStore32);
  f.constant(0).emit(Opcode::kLoad64);
  f.ret();
  auto inst = Instance::create(builder.build(), {});
  EXPECT_EQ(static_cast<std::uint64_t>(inst->run().value),
            0xFFFFFFFF00000000ULL);
}

TEST(MemoryOps, MemSizeReportsBytes) {
  ModuleBuilder builder;
  builder.memory(12345);
  auto& f = builder.function(kEntryPointName);
  f.emit(Opcode::kMemSize).ret();
  auto inst = Instance::create(builder.build(), {});
  EXPECT_EQ(inst->run().value, 12345);
}

TEST(MemoryOps, StaticOffsetAddsToAddress) {
  ModuleBuilder builder;
  builder.memory(64);
  auto& f = builder.function(kEntryPointName);
  f.constant(16).constant(99).emit(Opcode::kStore64, 8);  // writes at 24
  f.constant(24).emit(Opcode::kLoad64);
  f.ret();
  auto inst = Instance::create(builder.build(), {});
  EXPECT_EQ(inst->run().value, 99);
}

TEST(TrapGrid, DivRemByZeroAcrossOperands) {
  for (std::int64_t a : {0LL, 1LL, -1LL, static_cast<long long>(kMin)}) {
    auto div = run_binop(Opcode::kDivS, a, 0);
    EXPECT_TRUE(div.trapped);
    EXPECT_EQ(div.trap, TrapKind::kDivideByZero);
    auto rem = run_binop(Opcode::kRemS, a, 0);
    EXPECT_TRUE(rem.trapped);
    EXPECT_EQ(rem.trap, TrapKind::kDivideByZero);
  }
}

}  // namespace
}  // namespace debuglet::vm
