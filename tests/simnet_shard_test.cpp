// Sharded event-queue contracts: cross-shard ordering at equal
// timestamps, barrier progress for shards with no local work, and the
// bit-exact shard-count-invariance property on a real scenario under
// faults. Doubles as the TSan stress target for the worker-thread
// barrier (CI runs it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simnet/hosts.hpp"
#include "simnet/middlebox.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::simnet {
namespace {

using net::Protocol;

// Two domains, events at identical timestamps: the merged order must be
// the (time, id) total order — i.e. independent of which lane popped
// first — so any shard count produces the same interleaving. Events on
// one domain record into that domain's slot only (single-writer per
// lane); the cross-shard claim is that the per-domain sequences and the
// final clock agree with the single-lane run.
TEST(ShardedQueue, EqualTimestampCrossShardOrderIsShardInvariant) {
  auto run = [](std::size_t shards) {
    EventQueue q;
    q.set_shards(shards);
    // Domains 1 and 2 are distinct lanes at shards >= 3.
    std::vector<int> d1, d2;
    std::mutex mu;  // harmless under shards=1; required under threads
    for (int i = 0; i < 8; ++i) {
      q.schedule_on(1, 50, [&, i] {
        std::lock_guard<std::mutex> lock(mu);
        d1.push_back(i);
      });
      q.schedule_on(2, 50, [&, i] {
        std::lock_guard<std::mutex> lock(mu);
        d2.push_back(i);
      });
    }
    q.run();
    return std::make_pair(d1, d2);
  };
  const auto baseline = run(1);
  for (std::size_t shards : {2u, 3u, 4u}) {
    const auto sharded = run(shards);
    EXPECT_EQ(sharded.first, baseline.first) << "shards=" << shards;
    EXPECT_EQ(sharded.second, baseline.second) << "shards=" << shards;
  }
  // Root-scheduled equal-time events fire in scheduling order per domain.
  EXPECT_EQ(baseline.first, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// A shard whose domain has no events of its own must still advance
// through the window barrier: domain 1 keeps scheduling onto itself far
// into the future while domain 2 waits for one late event. If the empty
// lane could stall the barrier (or the busy lane could run ahead of it),
// the late event would fire at the wrong time or never.
TEST(ShardedQueue, EmptyShardStillAdvancesThroughBarrier) {
  EventQueue q;
  q.set_shards(4);
  q.note_link_floor(duration::milliseconds(1));
  int busy_fired = 0;
  bool late_fired = false;
  std::function<void(int)> chain = [&](int depth) {
    ++busy_fired;
    if (depth > 0)
      q.schedule_after(duration::milliseconds(2),
                       [&chain, depth] { chain(depth - 1); });
  };
  q.schedule_on(1, duration::milliseconds(1), [&] { chain(500); });
  const SimTime late_at = duration::milliseconds(900);
  q.schedule_on(2, late_at, [&] {
    late_fired = true;
    EXPECT_EQ(q.now(), late_at);
  });
  q.run();
  EXPECT_EQ(busy_fired, 501);
  EXPECT_TRUE(late_fired);
}

/// One deterministic "trace" of a faulted ring scenario: per-client
/// received counts and the exact RTT sample streams, formatted so a
/// mismatch prints usefully.
std::string faulted_ring_trace(std::size_t shards) {
  Scenario s = build_internet_scenario(24, 11, 4.0);
  s.queue->set_shards(shards);

  // A host fault window on one server and a lossy/duplicating wire on one
  // ring link: the property must hold under chaos, not just clean runs.
  FaultSpec fault;
  fault.extra_delay_ms = 40.0;
  fault.start = duration::milliseconds(300);
  fault.end = duration::milliseconds(1500);
  EXPECT_TRUE(s.network->inject_fault(chain_egress(4), chain_ingress(5),
                                      fault));
  LinkFaultPlan wire;
  wire.corrupt(30.0);
  wire.duplicate(30.0, 2);
  EXPECT_TRUE(s.network->install_link_faults(chain_egress(9),
                                             chain_ingress(10), wire));

  std::vector<std::unique_ptr<EchoServerHost>> servers;
  std::vector<std::unique_ptr<ProbeClientHost>> clients;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto server_as =
        static_cast<topology::AsNumber>(1 + (i * 4 + 6) % 24);
    const auto client_as = static_cast<topology::AsNumber>(1 + (i * 4) % 24);
    const auto server_addr = s.network->allocate_host_address(server_as);
    servers.push_back(
        std::make_unique<EchoServerHost>(*s.network, server_addr));
    EXPECT_TRUE(s.network->attach_host(server_addr, servers.back().get()));
    ProbeClientConfig cfg;
    cfg.server = server_addr;
    cfg.probe_count = 20;
    cfg.interval = duration::milliseconds(100);
    cfg.protocols = {Protocol::kUdp, Protocol::kIcmp};
    const auto client_addr = s.network->allocate_host_address(client_as);
    clients.push_back(std::make_unique<ProbeClientHost>(
        *s.network, client_addr, cfg, 42 + i));
    EXPECT_TRUE(s.network->attach_host(client_addr, clients.back().get()));
  }
  for (auto& c : clients) c->start();
  s.queue->run();

  std::string trace;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ProbeReport& r = clients[i]->report();
    trace += "client " + std::to_string(i) + ":";
    for (const auto& [protocol, n] : r.received)
      trace += " recv=" + std::to_string(n);
    for (const auto& [protocol, set] : r.rtt_ms) {
      trace += " [";
      for (double sample : set.samples()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g,", sample);
        trace += buf;
      }
      trace += "]";
    }
    trace += "\n";
  }
  trace += "drained at " + std::to_string(s.queue->now());
  return trace;
}

// The headline property: a faulted multi-host scenario produces a
// bit-identical observable trace at every shard count, and repeated runs
// at the same (threaded) shard count never diverge.
TEST(ShardedQueue, FaultedScenarioTraceIsShardCountInvariant) {
  const std::string baseline = faulted_ring_trace(1);
  for (std::size_t shards : {2u, 4u})
    EXPECT_EQ(faulted_ring_trace(shards), baseline) << "shards=" << shards;
}

TEST(ShardedQueue, RepeatedThreadedRunsAreIdentical) {
  const std::string first = faulted_ring_trace(4);
  for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(faulted_ring_trace(4), first);
}

/// Sink for the data-class flows below: records arrival order, times and
/// a payload digest so middlebox mangling shows up in the trace.
class RecordingSinkHost : public Host {
 public:
  void on_packet(const Delivery& delivery) override {
    std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a
    for (std::uint8_t b : delivery.packet.payload) {
      digest ^= b;
      digest *= 1099511628211ULL;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, " %lld:%016llx",
                  static_cast<long long>(delivery.received_at),
                  static_cast<unsigned long long>(digest));
    log_ += buf;
  }
  const std::string& log() const { return log_; }

 private:
  std::string log_;
};

/// Adversarial-middlebox trace: a DPI chaos box on one AS, a fault-hiding
/// box on another, measurement-class probe rounds AND data-class flows
/// (high-entropy payloads) crossing both. The per-copy middlebox RNG
/// draws, extra queueing delays, mangle damage and ground-truth stats
/// must all be independent of the shard count.
std::string middlebox_ring_trace(std::size_t shards) {
  Scenario s = build_internet_scenario(24, 19, 4.0);
  s.queue->set_shards(shards);

  ClassPolicy chaos;
  chaos.drop_pm = 80.0;
  chaos.extra_delay_ms = 6.0;
  chaos.delay_jitter_ms = 1.5;
  chaos.mangle_pm = 60.0;
  MiddleboxPlan dpi;
  dpi.policy_all(chaos);
  EXPECT_TRUE(s.network->install_middlebox(3, dpi).ok());

  ClassPolicy slow_lane;
  slow_lane.extra_delay_ms = 20.0;
  slow_lane.drop_pm = 100.0;
  MiddleboxPlan hider;
  hider.policy_all(slow_lane).recognize_probe_signatures(true);
  EXPECT_TRUE(s.network->install_middlebox(10, hider).ok());

  std::vector<std::unique_ptr<EchoServerHost>> servers;
  std::vector<std::unique_ptr<ProbeClientHost>> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto server_as =
        static_cast<topology::AsNumber>(1 + (i * 6 + 11) % 24);
    const auto client_as = static_cast<topology::AsNumber>(1 + (i * 6) % 24);
    const auto server_addr = s.network->allocate_host_address(server_as);
    servers.push_back(
        std::make_unique<EchoServerHost>(*s.network, server_addr));
    EXPECT_TRUE(s.network->attach_host(server_addr, servers.back().get()));
    ProbeClientConfig cfg;
    cfg.server = server_addr;
    cfg.probe_count = 15;
    cfg.interval = duration::milliseconds(100);
    cfg.protocols = {Protocol::kUdp, Protocol::kIcmp};
    const auto client_addr = s.network->allocate_host_address(client_as);
    clients.push_back(std::make_unique<ProbeClientHost>(
        *s.network, client_addr, cfg, 71 + i));
    EXPECT_TRUE(s.network->attach_host(client_addr, clients.back().get()));
  }

  // Two data-class flows with high-entropy payloads (classified kOther,
  // so the chaos box rolls drop/delay/mangle dice for every packet and
  // the hider parks them in its slow lane).
  std::vector<std::unique_ptr<RecordingSinkHost>> sinks;
  Rng payload_rng(909);
  for (std::size_t f = 0; f < 2; ++f) {
    const auto src_as = static_cast<topology::AsNumber>(2 + f * 12);
    const auto dst_as = static_cast<topology::AsNumber>(14 + f * 8);
    const auto src = s.network->allocate_host_address(src_as);
    const auto dst = s.network->allocate_host_address(dst_as);
    sinks.push_back(std::make_unique<RecordingSinkHost>());
    EXPECT_TRUE(s.network->attach_host(dst, sinks.back().get()));
    for (int n = 0; n < 25; ++n) {
      net::ProbeSpec spec;
      spec.source = src;
      spec.destination = dst;
      spec.source_port = 51000;
      spec.destination_port = 27101;
      spec.sequence = static_cast<std::uint16_t>(n);
      spec.payload.resize(96);
      for (std::uint8_t& b : spec.payload)
        b = static_cast<std::uint8_t>(payload_rng.next_u64() & 0xFF);
      auto wire = net::build_probe(spec);
      EXPECT_TRUE(wire.ok());
      s.queue->schedule_on(s.network->domain_of(src),
                           duration::milliseconds(40 * (n + 1)),
                           [&s, src, wire = *wire] {
                             (void)s.network->send(src, wire);
                           });
    }
  }

  for (auto& c : clients) c->start();
  s.queue->run();

  std::string trace;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ProbeReport& r = clients[i]->report();
    trace += "client " + std::to_string(i) + ":";
    for (const auto& [protocol, n] : r.received)
      trace += " recv=" + std::to_string(n);
    for (const auto& [protocol, set] : r.rtt_ms) {
      trace += " [";
      for (double sample : set.samples()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g,", sample);
        trace += buf;
      }
      trace += "]";
    }
    trace += "\n";
  }
  for (std::size_t f = 0; f < sinks.size(); ++f)
    trace += "flow " + std::to_string(f) + ":" + sinks[f]->log() + "\n";
  for (topology::AsNumber asn : {3u, 10u}) {
    const MiddleboxStats st = s.network->middlebox_stats(asn);
    trace += "mb AS" + std::to_string(asn) + ": " +
             std::to_string(st.inspected()) + "/" +
             std::to_string(st.dropped) + "/" +
             std::to_string(st.deprioritized) + "/" +
             std::to_string(st.mangled) + "/" +
             std::to_string(st.exempted) + "\n";
  }
  trace += "drained at " + std::to_string(s.queue->now());
  return trace;
}

// The same invariance contract for the adversarial-middlebox layer: DPI
// classification, policy dice, hiding exemptions and mangle damage are
// bit-identical at every shard count.
TEST(ShardedQueue, MiddleboxScenarioTraceIsShardCountInvariant) {
  const std::string baseline = middlebox_ring_trace(1);
  // The boxes saw traffic at all (otherwise this test proves nothing).
  EXPECT_NE(baseline.find("mb AS3"), std::string::npos);
  EXPECT_EQ(baseline.find("mb AS3: 0/"), std::string::npos);
  for (std::size_t shards : {2u, 4u})
    EXPECT_EQ(middlebox_ring_trace(shards), baseline) << "shards=" << shards;
}

}  // namespace
}  // namespace debuglet::simnet
