// Cross-module edge cases: gas budget caps, view-vs-transaction parity,
// real-app assembler round trips, time-exceeded codec, and initiator
// error paths.
#include <gtest/gtest.h>

#include "apps/debuglets.hpp"
#include "core/debuglet.hpp"
#include "marketplace/contract.hpp"
#include "vm/assembler.hpp"
#include "vm/validator.hpp"

namespace debuglet {
namespace {

using net::Protocol;

// --- Chain: gas budget semantics ---------------------------------------------

class SinkContract : public chain::Contract {
 public:
  std::string name() const override { return "sink"; }
  Result<Bytes> call(chain::CallContext& ctx, const std::string& function,
                     BytesView args) override {
    if (function == "store") {
      auto id = ctx.create_object(Bytes(args.begin(), args.end()));
      if (!id) return id.error();
      return Bytes{};
    }
    return Bytes{};
  }
};

TEST(ChainEdge, GasBudgetCapsTheCharge) {
  chain::Blockchain chain;
  ASSERT_TRUE(chain.register_contract(std::make_unique<SinkContract>()).ok());
  const crypto::KeyPair key = crypto::KeyPair::from_seed(1);
  const chain::Address addr = chain::Address::of(key.public_key());
  chain.mint(addr, 1'000'000'000'000ULL);

  // Storing 10 kB normally costs ~0.23 SUI; a 0.02 SUI budget caps it.
  const chain::Mist budget = 20'000'000;
  const chain::Mist before = chain.balance(addr);
  auto receipt = chain.submit(chain.make_transaction(
      key, "sink", "store", Bytes(10'000, 1), 0, budget));
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->gas_charged, budget);
  EXPECT_EQ(before - chain.balance(addr), budget);
}

TEST(ChainEdge, ViewOfUnknownContractFails) {
  chain::Blockchain chain;
  EXPECT_FALSE(chain.view("ghost", "f", {}).ok());
}

TEST(ChainEdge, MintAndBalanceArithmetic) {
  chain::Blockchain chain;
  const chain::Address a =
      chain::Address::of(crypto::KeyPair::from_seed(2).public_key());
  EXPECT_EQ(chain.balance(a), 0u);
  chain.mint(a, 5);
  chain.mint(a, 7);
  EXPECT_EQ(chain.balance(a), 12u);
}

// --- Marketplace: view parity -------------------------------------------------

TEST(MarketEdge, LookupSlotViewMatchesTransaction) {
  chain::Blockchain chain;
  auto contract = std::make_unique<marketplace::MarketplaceContract>();
  ASSERT_TRUE(chain.register_contract(std::move(contract)).ok());
  const crypto::KeyPair as_key = crypto::KeyPair::from_seed(3);
  const crypto::KeyPair user = crypto::KeyPair::from_seed(4);
  chain.mint(chain::Address::of(as_key.public_key()), 1'000'000'000'000ULL);
  chain.mint(chain::Address::of(user.public_key()), 1'000'000'000'000ULL);

  const topology::InterfaceKey k1{1, 1}, k2{2, 1};
  for (topology::InterfaceKey k : {k1, k2}) {
    auto r = chain.submit(chain.make_transaction(
        as_key, marketplace::kContractName, "RegisterExecutor",
        marketplace::RegisterExecutorArgs{k}.serialize()));
    ASSERT_TRUE(r.ok() && r->success) << r->error;
    marketplace::TimeSlot slot;
    slot.start = 100;
    slot.end = 200;
    slot.price = 9;
    auto r2 = chain.submit(chain.make_transaction(
        as_key, marketplace::kContractName, "RegisterTimeSlot",
        marketplace::RegisterTimeSlotArgs{k, {slot}}.serialize()));
    ASSERT_TRUE(r2.ok() && r2->success) << r2->error;
  }

  marketplace::LookupSlotArgs query;
  query.client_key = k1;
  query.server_key = k2;
  // Via a (free) view call:
  auto view = chain.view(marketplace::kContractName, "LookupSlot",
                         query.serialize());
  ASSERT_TRUE(view.ok());
  auto view_quote = marketplace::SlotQuote::parse(
      BytesView(view->data(), view->size()));
  // Via a transaction:
  auto tx = chain.submit(chain.make_transaction(
      user, marketplace::kContractName, "LookupSlot", query.serialize()));
  ASSERT_TRUE(tx.ok() && tx->success);
  auto tx_quote = marketplace::SlotQuote::parse(
      BytesView(tx->return_value.data(), tx->return_value.size()));
  ASSERT_TRUE(view_quote.ok());
  ASSERT_TRUE(tx_quote.ok());
  EXPECT_EQ(view_quote->found, tx_quote->found);
  EXPECT_EQ(view_quote->window_start, tx_quote->window_start);
  EXPECT_EQ(view_quote->total_price, tx_quote->total_price);
  EXPECT_EQ(view_quote->total_price, 18u);
}

// --- VM: real apps round-trip through the assembler ---------------------------

class AppRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AppRoundTrip, DisassembleReassembleIsIdentity) {
  vm::Module original;
  switch (GetParam()) {
    case 0: original = apps::make_probe_client_debuglet(); break;
    case 1: original = apps::make_echo_server_debuglet(); break;
    case 2: original = apps::make_oneway_sender_debuglet(); break;
    case 3: original = apps::make_oneway_receiver_debuglet(); break;
  }
  ASSERT_TRUE(vm::validate(original).ok());
  const std::string text = vm::disassemble(original);
  auto back = vm::assemble(text);
  ASSERT_TRUE(back.ok()) << back.error_message();
  EXPECT_EQ(*back, original);
  // And the binary codec agrees.
  const Bytes wire = original.serialize();
  auto parsed = vm::Module::parse(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

std::string app_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"probe_client", "echo_server",
                                 "oneway_sender", "oneway_receiver"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRoundTrip, ::testing::Range(0, 4),
                         app_name);

TEST(VmEdge, JumpIfZTakenOnZeroOnly) {
  auto out = [] {
    auto module = vm::assemble(R"(
      func run_debuglet
        const 0
        jump_ifz zero_path
        const 111
        return
      zero_path:
        const 222
        return
      end
    )");
    auto inst = vm::Instance::create(std::move(*module), {});
    return inst->run();
  }();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value, 222);
}

TEST(VmEdge, ParametersFlowThroughNestedCalls) {
  auto module = vm::assemble(R"(
    func run_debuglet
      const 3
      const 4
      call hyp2
      return
    end
    func hyp2 params 2
      local.get 0
      local.get 0
      mul
      local.get 1
      local.get 1
      mul
      add
      return
    end
  )");
  ASSERT_TRUE(module.ok()) << module.error_message();
  ASSERT_TRUE(vm::validate(*module).ok());
  auto inst = vm::Instance::create(std::move(*module), {});
  EXPECT_EQ(inst->run().value, 25);
}

// --- net: time-exceeded codec --------------------------------------------------

TEST(NetEdge, TimeExceededRoundTrip) {
  net::ProbeSpec spec;
  spec.protocol = Protocol::kUdp;
  spec.source = net::Ipv4Address(10, 0, 1, 200);
  spec.destination = net::Ipv4Address(10, 0, 9, 200);
  spec.sequence = 4242;
  spec.ttl = 3;
  spec.payload = bytes_of("expiring");
  auto wire = net::build_probe(spec);
  ASSERT_TRUE(wire.ok());
  auto packet = net::parse_packet(BytesView(wire->data(), wire->size()));
  ASSERT_TRUE(packet.ok());
  EXPECT_EQ(packet->ip.ttl, 3);

  const net::Ipv4Address router(10, 0, 5, 1);
  auto te_wire = net::build_time_exceeded(*packet, router);
  ASSERT_TRUE(te_wire.ok());
  auto te = net::parse_packet(BytesView(te_wire->data(), te_wire->size()));
  ASSERT_TRUE(te.ok()) << te.error_message();
  EXPECT_EQ(te->protocol, Protocol::kIcmp);
  ASSERT_TRUE(te->icmp.has_value());
  EXPECT_EQ(te->icmp->type, net::kIcmpTimeExceeded);
  EXPECT_EQ(te->ip.source, router);
  EXPECT_EQ(te->ip.destination, spec.source);
  EXPECT_EQ(te->ip.identification, 4242);
  BytesReader r(BytesView(te->payload.data(), te->payload.size()));
  EXPECT_EQ(*r.u64(), 4242u);
}

// --- Initiator error paths ------------------------------------------------------

TEST(InitiatorEdge, UnderfundedInitiatorCannotPurchase) {
  core::DebugletSystem system(simnet::build_chain_scenario(2, 71, 5.0));
  core::Initiator pauper(system, 72, /*funding=*/1000);  // dust
  auto handle = pauper.purchase_rtt_measurement({1, 2}, {2, 1},
                                                Protocol::kUdp, 5, 100);
  EXPECT_FALSE(handle.ok());
  EXPECT_NE(handle.error_message().find("insufficient balance"),
            std::string::npos);
}

TEST(InitiatorEdge, CollectOfBogusHandleFails) {
  core::DebugletSystem system(simnet::build_chain_scenario(2, 73, 5.0));
  core::Initiator initiator(system, 74, 500'000'000'000ULL);
  core::MeasurementHandle bogus;
  bogus.client_application = 999;
  bogus.server_application = 1000;
  bogus.client_key = {1, 2};
  bogus.server_key = {2, 1};
  EXPECT_FALSE(initiator.collect(bogus).ok());
}

TEST(InitiatorEdge, SummarizeRejectsCorruptOutput) {
  executor::CertifiedResult result;
  result.record.output = bytes_of("not-a-multiple-of-16b");
  EXPECT_FALSE(core::summarize_rtt(result, 5).ok());
}

}  // namespace
}  // namespace debuglet
