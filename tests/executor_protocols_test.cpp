// Executor data-plane coverage across all four probe protocols and the
// packet-queueing edge cases (inbox buffering, concurrent deployments,
// stale-reply handling).
#include <gtest/gtest.h>

#include "apps/debuglets.hpp"
#include "executor/executor.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::executor {
namespace {

using net::Protocol;

struct World {
  World()
      : scenario(simnet::build_chain_scenario(3, 99, 5.0)),
        client_exec(*scenario.network, simnet::chain_egress(0),
                    crypto::KeyPair::from_seed(1), ExecutorConfig{}, 10),
        server_exec(*scenario.network, simnet::chain_ingress(2),
                    crypto::KeyPair::from_seed(2), ExecutorConfig{}, 20) {}

  DebugletApp client_app(Protocol protocol, std::int64_t probes,
                         std::uint16_t port) {
    apps::ProbeClientParams params;
    params.protocol = protocol;
    params.server = server_exec.address();
    params.server_port = port;
    params.probe_count = probes;
    params.interval_ms = 100;
    params.recv_timeout_ms = 500;
    DebugletApp app;
    app.application_id = port;
    app.module_bytes = apps::make_probe_client_debuglet().serialize();
    app.manifest = apps::client_manifest(protocol, server_exec.address(),
                                         probes, duration::seconds(60));
    app.parameters = params.to_parameters();
    return app;
  }

  DebugletApp server_app(Protocol protocol, std::uint16_t port) {
    apps::EchoServerParams params;
    params.protocol = protocol;
    params.idle_timeout_ms = 2000;
    DebugletApp app;
    app.application_id = port + 1;
    app.module_bytes = apps::make_echo_server_debuglet().serialize();
    app.manifest = apps::server_manifest(protocol, client_exec.address(),
                                         100, duration::seconds(60));
    app.parameters = params.to_parameters();
    app.listen_port = port;
    return app;
  }

  simnet::Scenario scenario;
  ExecutorService client_exec;
  ExecutorService server_exec;
};

class ProtocolCase : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolCase, DebugletPairWorksOverProtocol) {
  const Protocol protocol = GetParam();
  World w;
  const std::uint16_t port = 45500;
  std::optional<CertifiedResult> client_result;
  ASSERT_TRUE(w.server_exec
                  .deploy_and_schedule(w.server_app(protocol, port),
                                       duration::seconds(1),
                                       [](const CertifiedResult&) {})
                  .ok());
  ASSERT_TRUE(w.client_exec
                  .deploy_and_schedule(
                      w.client_app(protocol, 10, port), duration::seconds(1),
                      [&](const CertifiedResult& r) { client_result = r; })
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(client_result.has_value());
  EXPECT_FALSE(client_result->record.trapped)
      << net::protocol_name(protocol) << ": "
      << client_result->record.trap_message;
  EXPECT_EQ(client_result->record.exit_value, 10)
      << net::protocol_name(protocol);
  auto samples = apps::decode_samples(BytesView(
      client_result->record.output.data(),
      client_result->record.output.size()));
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 10u) << net::protocol_name(protocol);
  for (const auto& sample : *samples) {
    EXPECT_NEAR(static_cast<double>(sample.delay_ns) / 1e6, 20.6, 1.5)
        << net::protocol_name(protocol);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolCase,
                         ::testing::Values(Protocol::kUdp, Protocol::kTcp,
                                           Protocol::kIcmp,
                                           Protocol::kRawIp),
                         [](const auto& info) {
                           return net::protocol_name(info.param);
                         });

TEST(ExecutorInbox, PacketsQueuedWhileBusyAreServedLater) {
  // A server Debuglet that sleeps first, then drains its inbox: packets
  // arriving during the sleep must buffer and be received afterwards.
  World w;
  const std::uint16_t port = 45600;

  // Server: sleep 2 s, then echo up to 5 packets.
  apps::EchoServerParams params;
  params.protocol = Protocol::kUdp;
  params.max_echoes = 5;
  params.idle_timeout_ms = 1500;
  DebugletApp server;
  server.application_id = 1;
  {
    // Prepend a sleep via a custom module: sleep, then delegate to the
    // standard echo loop body by just using the stock module with a large
    // idle timeout — instead, emulate "busy" with the executor's inbox by
    // scheduling the server 2 s AFTER the client starts sending.
    server.module_bytes = apps::make_echo_server_debuglet().serialize();
  }
  server.manifest = apps::server_manifest(Protocol::kUdp,
                                          w.client_exec.address(), 100,
                                          duration::seconds(60));
  server.parameters = params.to_parameters();
  server.listen_port = port;

  // Client fires 5 probes quickly, before the server's Debuglet starts;
  // the executor's inbox holds them (deployment exists once scheduled).
  DebugletApp client = w.client_app(Protocol::kUdp, 5, port);
  apps::ProbeClientParams cp;
  cp.protocol = Protocol::kUdp;
  cp.server = w.server_exec.address();
  cp.server_port = port;
  cp.probe_count = 5;
  cp.interval_ms = 20;
  cp.recv_timeout_ms = 5000;  // wait long enough for the late server
  client.parameters = cp.to_parameters();

  std::optional<CertifiedResult> server_result, client_result;
  // Deploy the server NOW (so its port matches and its inbox exists) but
  // schedule its execution 2 s later.
  ASSERT_TRUE(w.server_exec
                  .deploy_and_schedule(
                      std::move(server), duration::seconds(2),
                      [&](const CertifiedResult& r) { server_result = r; })
                  .ok());
  ASSERT_TRUE(w.client_exec
                  .deploy_and_schedule(
                      std::move(client), 0,
                      [&](const CertifiedResult& r) { client_result = r; })
                  .ok());
  w.scenario.queue->run();

  ASSERT_TRUE(server_result.has_value());
  ASSERT_TRUE(client_result.has_value());
  EXPECT_EQ(server_result->record.exit_value, 5)
      << "all 5 early packets served from the inbox";
  EXPECT_EQ(client_result->record.exit_value, 5)
      << "client eventually got all echoes";
}

TEST(ExecutorInbox, OverflowDropsExcess) {
  World w;
  ExecutorConfig tiny;
  tiny.inbox_capacity = 3;
  ExecutorService small_exec(*w.scenario.network,
                             simnet::chain_egress(1),
                             crypto::KeyPair::from_seed(3), tiny, 30);
  const std::uint16_t port = 45700;

  apps::EchoServerParams params;
  params.protocol = Protocol::kUdp;
  params.max_echoes = 0;
  params.idle_timeout_ms = 500;
  DebugletApp server;
  server.application_id = 9;
  server.module_bytes = apps::make_echo_server_debuglet().serialize();
  server.manifest = apps::server_manifest(Protocol::kUdp,
                                          w.client_exec.address(), 100,
                                          duration::seconds(60));
  server.parameters = params.to_parameters();
  server.listen_port = port;

  // 8 unpaced packets land before the server starts; only 3 fit the inbox.
  // (The one-way sender does not await replies, so all 8 are in flight
  // before the server's Debuglet begins.)
  apps::OneWaySenderParams cp;
  cp.protocol = Protocol::kUdp;
  cp.receiver = small_exec.address();
  cp.receiver_port = port;
  cp.packet_count = 8;
  cp.interval_ms = 10;
  DebugletApp client;
  client.application_id = 8;
  client.module_bytes = apps::make_oneway_sender_debuglet().serialize();
  client.manifest = apps::client_manifest(Protocol::kUdp,
                                          small_exec.address(), 8,
                                          duration::seconds(60));
  client.parameters = cp.to_parameters();

  std::optional<CertifiedResult> server_result;
  ASSERT_TRUE(small_exec
                  .deploy_and_schedule(
                      std::move(server), duration::seconds(2),
                      [&](const CertifiedResult& r) { server_result = r; })
                  .ok());
  ASSERT_TRUE(w.client_exec
                  .deploy_and_schedule(std::move(client), 0,
                                       [](const CertifiedResult&) {})
                  .ok());
  w.scenario.queue->run();
  ASSERT_TRUE(server_result.has_value());
  EXPECT_EQ(server_result->record.exit_value, 3)
      << "bounded inbox keeps exactly its capacity";
}

TEST(ExecutorConcurrency, CapacityLimitRejectsExcessDeployments) {
  World w;
  ExecutorConfig tiny;
  tiny.max_concurrent_deployments = 2;
  ExecutorService small(*w.scenario.network, simnet::chain_ingress(1),
                        crypto::KeyPair::from_seed(5), tiny, 50);
  auto make = [&](std::uint16_t port) {
    apps::EchoServerParams params;
    params.protocol = Protocol::kUdp;
    params.idle_timeout_ms = 1000;
    DebugletApp app;
    app.application_id = port;
    app.module_bytes = apps::make_echo_server_debuglet().serialize();
    app.manifest = apps::server_manifest(Protocol::kUdp,
                                         w.client_exec.address(), 10,
                                         duration::seconds(30));
    app.parameters = params.to_parameters();
    app.listen_port = port;
    return app;
  };
  EXPECT_TRUE(small.deploy(make(46000)).ok());
  EXPECT_TRUE(small.deploy(make(46001)).ok());
  auto third = small.deploy(make(46002));
  ASSERT_FALSE(third.ok());
  EXPECT_NE(third.error_message().find("capacity"), std::string::npos);
  // Finishing a deployment frees capacity: run the idle-timeout servers to
  // completion, then deploy again.
  ASSERT_TRUE(small.schedule(1, 0, [](const CertifiedResult&) {}).ok());
  ASSERT_TRUE(small.schedule(2, 0, [](const CertifiedResult&) {}).ok());
  w.scenario.queue->run();
  EXPECT_EQ(small.active_deployments(), 0u);
  EXPECT_TRUE(small.deploy(make(46003)).ok());
}

TEST(ExecutorConcurrency, TwoDeploymentsShareOneExecutor) {
  // Two independent client Debuglets on the SAME executor, probing two
  // different servers concurrently; port demultiplexing keeps the flows
  // apart.
  World w;
  ExecutorService second_server(*w.scenario.network, simnet::chain_egress(1),
                                crypto::KeyPair::from_seed(4), {}, 40);

  std::optional<CertifiedResult> r1, r2;
  ASSERT_TRUE(w.server_exec
                  .deploy_and_schedule(w.server_app(Protocol::kUdp, 45800),
                                       0, [](const CertifiedResult&) {})
                  .ok());
  apps::EchoServerParams sp;
  sp.protocol = Protocol::kUdp;
  sp.idle_timeout_ms = 2000;
  DebugletApp second;
  second.application_id = 50;
  second.module_bytes = apps::make_echo_server_debuglet().serialize();
  second.manifest = apps::server_manifest(Protocol::kUdp,
                                          w.client_exec.address(), 100,
                                          duration::seconds(60));
  second.parameters = sp.to_parameters();
  second.listen_port = 45900;
  ASSERT_TRUE(second_server
                  .deploy_and_schedule(std::move(second), 0,
                                       [](const CertifiedResult&) {})
                  .ok());

  DebugletApp c1 = w.client_app(Protocol::kUdp, 10, 45800);
  DebugletApp c2 = w.client_app(Protocol::kUdp, 10, 45900);
  {
    apps::ProbeClientParams params;
    params.protocol = Protocol::kUdp;
    params.server = second_server.address();
    params.server_port = 45900;
    params.probe_count = 10;
    params.interval_ms = 100;
    params.recv_timeout_ms = 500;
    c2.parameters = params.to_parameters();
    c2.manifest.allowed_addresses = {second_server.address()};
  }
  ASSERT_TRUE(w.client_exec
                  .deploy_and_schedule(
                      std::move(c1), 0,
                      [&](const CertifiedResult& r) { r1 = r; })
                  .ok());
  ASSERT_TRUE(w.client_exec
                  .deploy_and_schedule(
                      std::move(c2), 0,
                      [&](const CertifiedResult& r) { r2 = r; })
                  .ok());
  w.scenario.queue->run();

  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->record.exit_value, 10);
  EXPECT_EQ(r2->record.exit_value, 10);
  // The two flows measured different paths: c1 crosses two links, c2 one.
  auto s1 = apps::decode_samples(
      BytesView(r1->record.output.data(), r1->record.output.size()));
  auto s2 = apps::decode_samples(
      BytesView(r2->record.output.data(), r2->record.output.size()));
  RunningStats m1, m2;
  for (const auto& s : *s1) m1.add(static_cast<double>(s.delay_ns) / 1e6);
  for (const auto& s : *s2) m2.add(static_cast<double>(s.delay_ns) / 1e6);
  EXPECT_NEAR(m1.mean(), 20.6, 1.5);
  EXPECT_NEAR(m2.mean(), 10.5, 1.5);
}

}  // namespace
}  // namespace debuglet::executor
