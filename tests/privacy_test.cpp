// Private-results tests (paper §IV-C): stream cipher, sealed boxes, and
// the end-to-end sealed measurement flow through the marketplace.
#include <gtest/gtest.h>

#include "core/debuglet.hpp"
#include "crypto/box.hpp"
#include "crypto/stream.hpp"

namespace debuglet {
namespace {

using net::Protocol;

// --- Stream cipher ----------------------------------------------------------

TEST(StreamCipher, XorTwiceIsIdentity) {
  const Bytes key = bytes_of("a shared secret");
  const Bytes plain = bytes_of("measurement results, 1.21 gigawatts");
  const Bytes ct =
      crypto::stream_xor(BytesView(key.data(), key.size()), 7,
                         BytesView(plain.data(), plain.size()));
  EXPECT_NE(ct, plain);
  const Bytes back = crypto::stream_xor(BytesView(key.data(), key.size()), 7,
                                        BytesView(ct.data(), ct.size()));
  EXPECT_EQ(back, plain);
}

TEST(StreamCipher, DifferentNoncesDifferentStreams) {
  const Bytes key = bytes_of("key");
  const Bytes plain(64, 0x00);  // zeros expose the raw keystream
  const Bytes s1 = crypto::stream_xor(BytesView(key.data(), key.size()), 1,
                                      BytesView(plain.data(), plain.size()));
  const Bytes s2 = crypto::stream_xor(BytesView(key.data(), key.size()), 2,
                                      BytesView(plain.data(), plain.size()));
  EXPECT_NE(s1, s2);
}

TEST(StreamCipher, LongMessagesSpanBlocks) {
  const Bytes key = bytes_of("key");
  Bytes plain(1000);
  for (std::size_t i = 0; i < plain.size(); ++i)
    plain[i] = static_cast<std::uint8_t>(i);
  const Bytes ct = crypto::stream_xor(BytesView(key.data(), key.size()), 3,
                                      BytesView(plain.data(), plain.size()));
  EXPECT_EQ(crypto::stream_xor(BytesView(key.data(), key.size()), 3,
                               BytesView(ct.data(), ct.size())),
            plain);
  // Keystream blocks must not repeat (first 32 bytes vs second 32).
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 32),
            Bytes(ct.begin() + 32, ct.begin() + 64));
}

TEST(StreamSeal, RoundTripAndTamperDetection) {
  const Bytes key = bytes_of("seal key");
  const Bytes plain = bytes_of("private payload");
  const Bytes sealed = crypto::seal(BytesView(key.data(), key.size()), 9,
                                    BytesView(plain.data(), plain.size()));
  auto opened = crypto::open(BytesView(key.data(), key.size()),
                             BytesView(sealed.data(), sealed.size()));
  ASSERT_TRUE(opened.ok()) << opened.error_message();
  EXPECT_EQ(*opened, plain);

  for (std::size_t i : {0u, 9u, static_cast<unsigned>(sealed.size() - 1)}) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(crypto::open(BytesView(key.data(), key.size()),
                              BytesView(tampered.data(), tampered.size()))
                     .ok())
        << "byte " << i;
  }
  const Bytes wrong = bytes_of("other key");
  EXPECT_FALSE(crypto::open(BytesView(wrong.data(), wrong.size()),
                            BytesView(sealed.data(), sealed.size()))
                   .ok());
  EXPECT_FALSE(crypto::open(BytesView(key.data(), key.size()),
                            BytesView(sealed.data(), 10))
                   .ok());
}

TEST(StreamSeal, EmptyPlaintext) {
  const Bytes key = bytes_of("k");
  const Bytes sealed = crypto::seal(BytesView(key.data(), key.size()), 1, {});
  auto opened = crypto::open(BytesView(key.data(), key.size()),
                             BytesView(sealed.data(), sealed.size()));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

// --- Sealed boxes -----------------------------------------------------------

TEST(Box, SealForRecipientOnly) {
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(1001);
  const crypto::KeyPair eve = crypto::KeyPair::from_seed(1002);
  const Bytes plain = bytes_of("for alice's eyes only");
  const Bytes sealed = crypto::seal_for(
      alice.public_key(), BytesView(plain.data(), plain.size()), 42);
  auto opened = crypto::open_box(alice,
                                 BytesView(sealed.data(), sealed.size()));
  ASSERT_TRUE(opened.ok()) << opened.error_message();
  EXPECT_EQ(*opened, plain);
  EXPECT_FALSE(
      crypto::open_box(eve, BytesView(sealed.data(), sealed.size())).ok());
}

TEST(Box, DistinctEntropyDistinctCiphertext) {
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(1003);
  const Bytes plain = bytes_of("same message");
  const Bytes s1 = crypto::seal_for(alice.public_key(),
                                    BytesView(plain.data(), plain.size()), 1);
  const Bytes s2 = crypto::seal_for(alice.public_key(),
                                    BytesView(plain.data(), plain.size()), 2);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(*crypto::open_box(alice, BytesView(s1.data(), s1.size())), plain);
  EXPECT_EQ(*crypto::open_box(alice, BytesView(s2.data(), s2.size())), plain);
}

TEST(Box, DhAgreement) {
  const crypto::KeyPair a = crypto::KeyPair::from_seed(1004);
  const crypto::KeyPair b = crypto::KeyPair::from_seed(1005);
  EXPECT_EQ(a.shared_secret(b.public_key()), b.shared_secret(a.public_key()));
  const crypto::KeyPair c = crypto::KeyPair::from_seed(1006);
  EXPECT_NE(a.shared_secret(b.public_key()), a.shared_secret(c.public_key()));
}

TEST(Box, RejectsMalformed) {
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(1007);
  EXPECT_FALSE(crypto::open_box(alice, {}).ok());
  const Bytes junk(40, 0xAA);
  EXPECT_FALSE(
      crypto::open_box(alice, BytesView(junk.data(), junk.size())).ok());
}

// --- End-to-end private measurement ------------------------------------------

TEST(PrivateMeasurement, SealedOnChainOpenableByInitiator) {
  core::DebugletSystem system(simnet::build_chain_scenario(3, 1313, 5.0));
  core::Initiator initiator(system, 1314, 500'000'000'000ULL);

  auto handle = initiator.purchase_rtt_measurement(
      {1, 2}, {3, 1}, Protocol::kUdp, 8, 100, /*earliest_start=*/0,
      /*seal_results=*/true);
  ASSERT_TRUE(handle.ok()) << handle.error_message();

  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();

  // The published output is ciphertext: it does not decode as samples.
  const Bytes& published = outcome->client.record.output;
  ASSERT_FALSE(published.empty());
  auto as_samples =
      apps::decode_samples(BytesView(published.data(), published.size()));
  // (The sealed blob has nonce+tag overhead, so the length check fails.)
  EXPECT_FALSE(as_samples.ok());

  // The certification still verifies over the sealed bytes.
  const auto as1_pk = system.as_public_key(1);
  EXPECT_TRUE(executor::verify_certified(outcome->client, &*as1_pk));

  // A third party (another key) cannot open it.
  core::Initiator snoop(system, 6666, 1'000'000ULL);
  EXPECT_FALSE(snoop.open_result(outcome->client).ok());

  // The initiator can.
  auto plain = initiator.open_result(outcome->client);
  ASSERT_TRUE(plain.ok()) << plain.error_message();
  auto samples = apps::decode_samples(BytesView(plain->data(), plain->size()));
  ASSERT_TRUE(samples.ok()) << samples.error_message();
  EXPECT_EQ(samples->size(), 8u);
  for (const auto& sample : *samples)
    EXPECT_NEAR(static_cast<double>(sample.delay_ns) / 1e6, 20.6, 1.5);
}

TEST(PrivateMeasurement, UnsealedFlowUnaffected) {
  core::DebugletSystem system(simnet::build_chain_scenario(3, 1414, 5.0));
  core::Initiator initiator(system, 1415, 500'000'000'000ULL);
  auto handle = initiator.purchase_rtt_measurement({1, 2}, {3, 1},
                                                   Protocol::kUdp, 5, 100);
  ASSERT_TRUE(handle.ok());
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 5 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();
  auto samples = apps::decode_samples(BytesView(
      outcome->client.record.output.data(),
      outcome->client.record.output.size()));
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 5u);
  // Opening a plaintext result with the box fails cleanly.
  EXPECT_FALSE(initiator.open_result(outcome->client).ok());
}

}  // namespace
}  // namespace debuglet
