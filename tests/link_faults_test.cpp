// Wire-level chaos: LinkFaultPlan semantics, the damaged-delivery receive
// path (checksum rejection, typed parse errors, obs counters), probe-sample
// integrity filtering, and the end-to-end acceptance scenario — fault
// localization still brackets the injected link while every segment's
// frames are being corrupted, duplicated and reordered.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "core/initiator.hpp"
#include "core/localization.hpp"
#include "core/system.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/link_faults.hpp"
#include "simnet/scenarios.hpp"
#include "telemetry/int_header.hpp"

namespace debuglet {
namespace {

using simnet::FaultWindow;
using simnet::LinkFaultPlan;
using simnet::LinkIntegrityStats;
using simnet::WireDamage;

// --- WireDamage: pure, deterministic, bounded --------------------------------

TEST(WireDamage, CorruptionIsAPureFunctionOfTheRecord) {
  const Bytes original(64, 0xAA);
  WireDamage damage;
  damage.kind = WireDamage::Kind::kCorrupt;
  damage.seed = 0x1234ABCDULL;
  damage.bit_flips = 5;
  Bytes a = original, b = original;
  apply_wire_damage(a, damage);
  apply_wire_damage(b, damage);
  EXPECT_EQ(a, b) << "same record must damage identically";
  EXPECT_NE(a, original);
  // The xor-diff flips at most bit_flips bits (collisions may unflip).
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < original.size(); ++i)
    flipped += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(a[i] ^ original[i])));
  EXPECT_LE(flipped, 5u);
  EXPECT_GE(flipped, 1u);
}

TEST(WireDamage, SingleBitFlipFlipsExactlyOneBit) {
  const Bytes original(40, 0x00);
  WireDamage damage;
  damage.kind = WireDamage::Kind::kCorrupt;
  damage.seed = 99;
  damage.bit_flips = 1;
  Bytes wire = original;
  apply_wire_damage(wire, damage);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < original.size(); ++i)
    flipped += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(wire[i] ^ original[i])));
  EXPECT_EQ(flipped, 1u);
}

TEST(WireDamage, TruncationChopsAndNeverGrows) {
  Bytes wire(50, 0x11);
  WireDamage damage;
  damage.kind = WireDamage::Kind::kTruncate;
  damage.truncate_to = 7;
  apply_wire_damage(wire, damage);
  EXPECT_EQ(wire.size(), 7u);
  damage.truncate_to = 100;  // longer than the frame: no-op
  apply_wire_damage(wire, damage);
  EXPECT_EQ(wire.size(), 7u);
}

TEST(WireDamage, NoneIsANoOp) {
  Bytes wire(10, 0x42);
  const Bytes before = wire;
  apply_wire_damage(wire, WireDamage{});
  EXPECT_EQ(wire, before);
}

// --- LinkFaultPlan semantics -------------------------------------------------

TEST(LinkFaultPlan, EmptyUntilAnyFaultConfigured) {
  LinkFaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.reorder(10.0, 5.0);
  EXPECT_FALSE(plan.empty());
  LinkFaultPlan flap_only;
  flap_only.flap(0, duration::seconds(1));
  EXPECT_FALSE(flap_only.empty());
}

TEST(LinkFaultPlan, FlapWindowsAreHalfOpenAndUnioned) {
  LinkFaultPlan plan;
  plan.flap(duration::seconds(1), duration::seconds(2))
      .flap(duration::seconds(5), duration::seconds(6));
  EXPECT_FALSE(plan.flapped_at(0));
  EXPECT_TRUE(plan.flapped_at(duration::seconds(1)));
  EXPECT_FALSE(plan.flapped_at(duration::seconds(2)));  // end exclusive
  EXPECT_TRUE(plan.flapped_at(duration::milliseconds(5500)));
  EXPECT_FALSE(plan.flapped_at(duration::seconds(7)));
}

TEST(LinkFaultPlan, WindowScopesEachFault) {
  const FaultWindow early{0, duration::seconds(1)};
  LinkFaultPlan plan;
  plan.corrupt(1000.0, 4, early);
  EXPECT_TRUE(plan.corruption().window.active_at(0));
  EXPECT_FALSE(plan.corruption().window.active_at(duration::seconds(2)));
  EXPECT_EQ(plan.corruption().max_bit_flips, 4u);
}

// --- Network-level semantics through a 3-AS chain ----------------------------

struct CountingHost : simnet::Host {
  void on_packet(const simnet::Delivery& delivery) override {
    ++received;
    arrivals.push_back(delivery.received_at);
    payload_bytes += delivery.packet.payload.size();
    payloads.push_back(delivery.packet.payload);
  }
  int received = 0;
  std::size_t payload_bytes = 0;
  std::vector<SimTime> arrivals;
  std::vector<Bytes> payloads;
};

struct LinkFaultNetFixture : ::testing::Test {
  LinkFaultNetFixture() : scenario(simnet::build_chain_scenario(3, 77, 5.0)) {
    sender_addr = scenario.network->allocate_host_address(1);
    receiver_addr = scenario.network->allocate_host_address(3);
    EXPECT_TRUE(scenario.network->attach_host(sender_addr, &sender).ok());
    EXPECT_TRUE(scenario.network->attach_host(receiver_addr, &receiver).ok());
  }

  Status send_probe(std::uint16_t sequence) {
    net::ProbeSpec spec;
    spec.source = sender_addr;
    spec.destination = receiver_addr;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.sequence = sequence;
    spec.payload = bytes_of("0123456789abcdef");
    auto wire = net::build_probe(spec);
    if (!wire) return wire.error();
    return scenario.network->send(sender_addr, std::move(*wire));
  }

  Status install_first_link(const LinkFaultPlan& plan) {
    return scenario.network->install_link_faults(
        simnet::chain_egress(0), simnet::chain_ingress(1), plan);
  }
  LinkIntegrityStats first_link_integrity() const {
    return scenario.network->link_integrity(simnet::chain_egress(0),
                                            simnet::chain_ingress(1));
  }
  std::uint64_t rejected_total() const {
    std::uint64_t total = 0;
    for (const obs::MetricRow& row : obs::registry().snapshot())
      if (row.name == "net.parse_rejected")
        total += static_cast<std::uint64_t>(row.value);
    return total;
  }

  obs::ScopedRegistry scoped;  // before the network: handles are cached
  simnet::Scenario scenario;
  net::Ipv4Address sender_addr, receiver_addr;
  CountingHost sender, receiver;
};

TEST_F(LinkFaultNetFixture, CertainCorruptionIsAlwaysCaughtOrDelivered) {
  // 100% corruption on the first link: every frame is damaged. The
  // receive path re-parses the wire — header damage is rejected by the
  // checksums (typed + counted), payload-only damage still delivers.
  LinkFaultPlan plan;
  plan.corrupt(1000.0, 2);
  ASSERT_TRUE(install_first_link(plan).ok());
  const int sent = 40;
  for (int i = 0; i < sent; ++i) {
    ASSERT_TRUE(send_probe(static_cast<std::uint16_t>(i)).ok());
    scenario.queue->run();
  }
  const LinkIntegrityStats integrity = first_link_integrity();
  EXPECT_EQ(integrity.corrupted, static_cast<std::uint64_t>(sent));
  // Chain links are lossless, so every frame is either rejected at the
  // receiver or delivered (with possibly damaged payload bytes).
  EXPECT_EQ(static_cast<std::uint64_t>(receiver.received) + rejected_total(),
            static_cast<std::uint64_t>(sent));
  EXPECT_GT(rejected_total(), 0u) << "some flips must land in headers";
  EXPECT_EQ(scoped.get()
                .counter("simnet.wire_faults", {{"kind", "corrupt"}})
                .value(),
            static_cast<std::uint64_t>(sent));
}

TEST_F(LinkFaultNetFixture, TruncationYieldsTypedRejections) {
  LinkFaultPlan plan;
  plan.truncate(1000.0);
  ASSERT_TRUE(install_first_link(plan).ok());
  const int sent = 20;
  for (int i = 0; i < sent; ++i)
    ASSERT_TRUE(send_probe(static_cast<std::uint16_t>(i)).ok());
  scenario.queue->run();
  // A chopped frame can never parse: the IPv4 header is either physically
  // truncated or its total_length now exceeds the frame.
  EXPECT_EQ(receiver.received, 0);
  EXPECT_EQ(rejected_total(), static_cast<std::uint64_t>(sent));
  std::uint64_t typed = 0;
  for (const char* reason : {"truncated_header", "frame_truncated"})
    typed += static_cast<std::uint64_t>(
        scoped.get()
            .counter("net.parse_rejected", {{"reason", reason}})
            .value());
  EXPECT_EQ(typed, static_cast<std::uint64_t>(sent))
      << "truncation rejections must carry the truncation-typed reasons";
}

TEST_F(LinkFaultNetFixture, DuplicationDeliversIndependentCopies) {
  LinkFaultPlan plan;
  plan.duplicate(1000.0, 1);  // every packet: exactly one extra copy
  ASSERT_TRUE(install_first_link(plan).ok());
  const int sent = 10;
  for (int i = 0; i < sent; ++i)
    ASSERT_TRUE(send_probe(static_cast<std::uint16_t>(i)).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 2 * sent);
  EXPECT_EQ(first_link_integrity().duplicated,
            static_cast<std::uint64_t>(sent));
}

TEST_F(LinkFaultNetFixture, ReorderingDelaysButDelivers) {
  LinkFaultPlan plan;
  plan.reorder(1000.0, 50.0);
  ASSERT_TRUE(install_first_link(plan).ok());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  ASSERT_EQ(receiver.received, 1);
  EXPECT_EQ(first_link_integrity().reordered, 1u);

  // Against an un-faulted baseline the held-back frame arrives later.
  simnet::Scenario baseline = simnet::build_chain_scenario(3, 77, 5.0);
  CountingHost base_rx;
  const auto base_src = baseline.network->allocate_host_address(1);
  const auto base_dst = baseline.network->allocate_host_address(3);
  ASSERT_TRUE(baseline.network->attach_host(base_src, &base_rx).ok());
  ASSERT_TRUE(baseline.network->attach_host(base_dst, &base_rx).ok());
  net::ProbeSpec spec;
  spec.source = base_src;
  spec.destination = base_dst;
  spec.source_port = 40001;
  spec.destination_port = 40002;
  spec.sequence = 1;
  spec.payload = bytes_of("0123456789abcdef");
  auto wire = net::build_probe(spec);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(baseline.network->send(base_src, std::move(*wire)).ok());
  baseline.queue->run();
  ASSERT_EQ(base_rx.received, 1);
  EXPECT_GT(receiver.arrivals[0], base_rx.arrivals[0]);
}

TEST_F(LinkFaultNetFixture, FlapIsATimedDirectedPartition) {
  LinkFaultPlan plan;
  plan.flap(0, duration::seconds(1));
  ASSERT_TRUE(install_first_link(plan).ok());

  ASSERT_TRUE(send_probe(1).ok());  // during the flap: dropped
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 0);
  EXPECT_EQ(first_link_integrity().flap_dropped, 1u);

  // The REVERSE direction carries no plan — asymmetric partition.
  net::ProbeSpec reply;
  reply.source = receiver_addr;
  reply.destination = sender_addr;
  reply.source_port = 40002;
  reply.destination_port = 40001;
  auto wire = net::build_probe(reply);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(scenario.network->send(receiver_addr, std::move(*wire)).ok());
  scenario.queue->run();
  EXPECT_EQ(sender.received, 1);

  // Past the window the link heals.
  scenario.queue->run_until(duration::seconds(2));
  ASSERT_TRUE(send_probe(2).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 1);
  EXPECT_EQ(first_link_integrity().flap_dropped, 1u);
}

TEST_F(LinkFaultNetFixture, InstallValidatesAndClearRestores) {
  // Unconfigured links are rejected.
  EXPECT_FALSE(scenario.network
                   ->install_link_faults(topology::InterfaceKey{1, 9},
                                         topology::InterfaceKey{3, 9},
                                         LinkFaultPlan{}.truncate(1000.0))
                   .ok());
  LinkFaultPlan plan;
  plan.truncate(1000.0);
  ASSERT_TRUE(install_first_link(plan).ok());
  ASSERT_TRUE(scenario.network
                  ->clear_link_faults(simnet::chain_egress(0),
                                      simnet::chain_ingress(1))
                  .ok());
  ASSERT_TRUE(send_probe(1).ok());
  scenario.queue->run();
  EXPECT_EQ(receiver.received, 1) << "cleared plan must stop damaging";
}

// --- Determinism: equal seeds, equal damage ----------------------------------

struct ChaosRunRecord {
  std::vector<SimTime> arrivals;
  std::size_t payload_bytes = 0;
  int received = 0;
  LinkIntegrityStats forward;
};

ChaosRunRecord run_damaged_exchange(std::uint64_t seed) {
  obs::ScopedRegistry scoped;
  simnet::Scenario scenario = simnet::build_chain_scenario(3, seed, 5.0);
  CountingHost sender, receiver;
  const auto src = scenario.network->allocate_host_address(1);
  const auto dst = scenario.network->allocate_host_address(3);
  EXPECT_TRUE(scenario.network->attach_host(src, &sender).ok());
  EXPECT_TRUE(scenario.network->attach_host(dst, &receiver).ok());
  LinkFaultPlan plan;
  plan.corrupt(300.0, 6).duplicate(300.0, 2).reorder(300.0, 20.0);
  EXPECT_TRUE(scenario.network
                  ->install_link_faults(simnet::chain_egress(0),
                                        simnet::chain_ingress(1), plan)
                  .ok());
  for (int i = 0; i < 30; ++i) {
    net::ProbeSpec spec;
    spec.source = src;
    spec.destination = dst;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.sequence = static_cast<std::uint16_t>(i);
    spec.payload = bytes_of("0123456789abcdef");
    auto wire = net::build_probe(spec);
    EXPECT_TRUE(wire.ok());
    EXPECT_TRUE(scenario.network->send(src, std::move(*wire)).ok());
    scenario.queue->run();
  }
  ChaosRunRecord out;
  out.arrivals = receiver.arrivals;
  out.payload_bytes = receiver.payload_bytes;
  out.received = receiver.received;
  out.forward = scenario.network->link_integrity(simnet::chain_egress(0),
                                                 simnet::chain_ingress(1));
  return out;
}

TEST(LinkFaultDeterminism, EqualSeedsDamageIdentically) {
  const ChaosRunRecord a = run_damaged_exchange(4242);
  const ChaosRunRecord b = run_damaged_exchange(4242);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.forward.corrupted, b.forward.corrupted);
  EXPECT_EQ(a.forward.duplicated, b.forward.duplicated);
  EXPECT_EQ(a.forward.reordered, b.forward.reordered);
  EXPECT_GT(a.forward.total(), 0u) << "the chaos must actually fire";

  const ChaosRunRecord c = run_damaged_exchange(4243);
  EXPECT_NE(a.arrivals, c.arrivals)
      << "different seeds must produce different worlds";
}

TEST(LinkFaultDeterminism, EmptyPlanLeavesLegacyStreamUntouched) {
  // Installing an empty plan must not perturb the healthy delivery
  // schedule: the fault layer draws no RNG on links without live faults.
  obs::ScopedRegistry scoped;
  const auto run = [](bool install_empty_plan, CountingHost& rx) {
    simnet::Scenario scenario = simnet::build_chain_scenario(3, 5150, 5.0);
    const auto src = scenario.network->allocate_host_address(1);
    const auto dst = scenario.network->allocate_host_address(3);
    ASSERT_TRUE(scenario.network->attach_host(dst, &rx).ok());
    if (install_empty_plan) {
      ASSERT_TRUE(scenario.network
                      ->install_link_faults(simnet::chain_egress(0),
                                            simnet::chain_ingress(1),
                                            LinkFaultPlan{}.flap(5, 3))
                      .ok());
    }
    for (int i = 0; i < 10; ++i) {
      net::ProbeSpec spec;
      spec.source = src;
      spec.destination = dst;
      spec.source_port = 40001;
      spec.destination_port = 40002;
      spec.sequence = static_cast<std::uint16_t>(i);
      auto wire = net::build_probe(spec);
      ASSERT_TRUE(wire.ok());
      ASSERT_TRUE(scenario.network->send(src, std::move(*wire)).ok());
    }
    scenario.queue->run();
  };
  CountingHost rx_plain, rx_installed;
  run(false, rx_plain);
  run(true, rx_installed);
  ASSERT_EQ(rx_plain.received, 10);
  EXPECT_EQ(rx_plain.arrivals, rx_installed.arrivals);
}

// --- Probe-sample integrity filtering (core/initiator) -----------------------

apps::MeasurementSample sample(std::uint64_t seq, std::int64_t delay_ns) {
  apps::MeasurementSample s;
  s.sequence = seq;
  s.delay_ns = delay_ns;
  return s;
}

TEST(FilterProbeSamples, DeduplicatesBySequenceKeepingSmallestRtt) {
  auto out = core::filter_probe_samples(
      {sample(1, 5'000'000), sample(2, 6'000'000), sample(1, 9'000'000),
       sample(2, 6'500'000)});
  ASSERT_EQ(out.kept.size(), 2u);
  EXPECT_EQ(out.duplicates_dropped, 2u);
  EXPECT_EQ(out.kept[0].delay_ns, 5'000'000);
  EXPECT_EQ(out.kept[1].delay_ns, 6'000'000);
}

TEST(FilterProbeSamples, DropsNegativeAndImplausibleRtts) {
  // Median 5 ms; 81 ms < 16 x median survives, 100 ms does not... with a
  // 16x factor the cut is at 80 ms.
  auto out = core::filter_probe_samples(
      {sample(1, 5'000'000), sample(2, 5'000'000), sample(3, 5'000'000),
       sample(4, -2'000'000), sample(5, 100'000'000)});
  ASSERT_EQ(out.kept.size(), 3u);
  EXPECT_EQ(out.outliers_dropped, 2u);
  EXPECT_EQ(out.duplicates_dropped, 0u);
}

TEST(FilterProbeSamples, GenuineFaultShiftsTheMedianAndSurvives) {
  // Every sample is slow (a real link fault): the median moves with the
  // batch, so nothing is filtered.
  auto out = core::filter_probe_samples(
      {sample(1, 80'000'000), sample(2, 82'000'000), sample(3, 85'000'000),
       sample(4, 90'000'000)});
  EXPECT_EQ(out.kept.size(), 4u);
  EXPECT_EQ(out.outliers_dropped, 0u);
}

TEST(FilterProbeSamples, SmallBatchesKeepTheirOutliers) {
  // Under 3 samples there is no trustworthy median; only negatives drop.
  auto out = core::filter_probe_samples(
      {sample(1, 1'000'000), sample(2, 500'000'000)});
  EXPECT_EQ(out.kept.size(), 2u);
}

// --- Acceptance: localization under full wire chaos --------------------------

TEST(LinkFaultLocalization, BracketsInjectedFaultUnderWireChaos) {
  // Corruption + duplication + reordering on EVERY directed inter-domain
  // link, plus the classic 60 ms delay fault on link 1. The hardened
  // pipeline (checksum rejection, sample dedup, outlier filtering, loss
  // tolerance) must still localize the delay fault.
  obs::ScopedRegistry scoped;
  constexpr std::size_t kAses = 4;
  core::DebugletSystem system(simnet::build_chain_scenario(kAses, 909, 5.0));
  core::Initiator initiator(system, 910, 2'000'000'000'000ULL);

  simnet::FaultSpec fault;
  fault.extra_delay_ms = 60.0;
  fault.start = 0;
  fault.end = duration::hours(100);
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_egress(1),
                                simnet::chain_ingress(2), fault)
                  .ok());
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_ingress(2),
                                simnet::chain_egress(1), fault)
                  .ok());

  LinkFaultPlan plan;
  plan.corrupt(50.0, 4).duplicate(50.0, 1).reorder(80.0, 8.0);
  for (std::size_t i = 0; i + 1 < kAses; ++i) {
    ASSERT_TRUE(system.network()
                    .install_link_faults(simnet::chain_egress(i),
                                         simnet::chain_ingress(i + 1), plan)
                    .ok());
    ASSERT_TRUE(system.network()
                    .install_link_faults(simnet::chain_ingress(i + 1),
                                         simnet::chain_egress(i), plan)
                    .ok());
  }

  auto path = system.network().topology().shortest_path(1, kAses);
  ASSERT_TRUE(path.ok());
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  criteria.max_loss = 0.5;  // corruption-induced loss hits every segment
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 8, 100);
  core::FaultLocalizer::Resilience resilience;
  resilience.use_retry = true;
  localizer.set_resilience(resilience);
  auto report = localizer.run(core::Strategy::kLinearSequential);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located) << "delay fault lost in the wire chaos";
  EXPECT_LE(report->fault_link, 1u);
  EXPECT_GE(report->fault_link_hi, 1u);

  // The per-segment delivery-integrity evidence shows the chaos was real.
  LinkIntegrityStats evidence;
  for (const core::LocalizationStep& step : report->steps)
    evidence += step.wire_integrity;
  EXPECT_GT(evidence.total(), 0u)
      << "wire chaos never fired; the scenario is vacuous";
}

// --- In-band telemetry under wire chaos --------------------------------------

TEST_F(LinkFaultNetFixture, CorruptedIntStacksAreRejectedTyped) {
  // Certain corruption on the first link while INT is collecting: damage
  // the L3 checksums miss lands in the INT block, where the trailing
  // digest catches it — a typed rejection, never a crash and never
  // trusted evidence.
  scenario.network->set_int_enabled(true);
  LinkFaultPlan plan;
  plan.corrupt(1000.0, 2);
  ASSERT_TRUE(install_first_link(plan).ok());
  const int sent = 40;
  for (int i = 0; i < sent; ++i) {
    net::ProbeSpec spec;
    spec.source = sender_addr;
    spec.destination = receiver_addr;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.sequence = static_cast<std::uint16_t>(i);
    spec.payload = telemetry::IntHeader::reserve(2).serialize();
    auto wire = net::build_probe(spec);
    ASSERT_TRUE(wire.ok());
    ASSERT_TRUE(scenario.network->send(sender_addr, std::move(*wire)).ok());
    scenario.queue->run();
  }
  // Every frame carried (and accumulated) INT records before the damage.
  EXPECT_EQ(scoped.get().counter("telemetry.int_pushes").value(),
            static_cast<std::uint64_t>(2 * sent));
  int intact = 0, rejected_digest = 0, rejected_other = 0;
  for (const Bytes& payload : receiver.payloads) {
    telemetry::IntParseError kind = telemetry::IntParseError::kNone;
    auto parsed = telemetry::IntHeader::parse(
        BytesView(payload.data(), payload.size()), &kind);
    if (parsed.ok())
      ++intact;
    else if (kind == telemetry::IntParseError::kDigestMismatch)
      ++rejected_digest;
    else
      ++rejected_other;
  }
  EXPECT_GT(rejected_digest, 0)
      << "payload-only corruption must be caught by the INT digest";
  EXPECT_EQ(intact + rejected_digest + rejected_other,
            receiver.received)
      << "every delivery classifies; none crashes the parser";
}

TEST(IntChaosLocalization, InbandDegradesToBinarySearchNeverMislocalizes) {
  // The in-band round runs into certain truncation on the first link
  // (windowed over the round), so no intact evidence arrives; the
  // strategy must fall back to purchased binary search and still pin the
  // 60 ms delay fault on link 1 — degraded, never wrong.
  obs::ScopedRegistry scoped;
  constexpr std::size_t kAses = 4;
  core::DebugletSystem system(simnet::build_chain_scenario(kAses, 616, 5.0));
  core::Initiator initiator(system, 617, 2'000'000'000'000ULL);

  simnet::FaultSpec fault;
  fault.extra_delay_ms = 60.0;
  fault.start = 0;
  fault.end = duration::hours(100);
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_egress(1),
                                simnet::chain_ingress(2), fault)
                  .ok());
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_ingress(2),
                                simnet::chain_egress(1), fault)
                  .ok());
  LinkFaultPlan plan;
  plan.truncate(1000.0, FaultWindow{0, duration::milliseconds(500)});
  ASSERT_TRUE(system.network()
                  .install_link_faults(simnet::chain_egress(0),
                                       simnet::chain_ingress(1), plan)
                  .ok());

  auto path = system.network().topology().shortest_path(1, kAses);
  ASSERT_TRUE(path.ok());
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  criteria.max_loss = 0.5;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 8, 100);
  auto report = localizer.run(core::Strategy::kInband);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located) << "fallback search must still locate";
  EXPECT_EQ(report->fault_link, 1u);
  EXPECT_GE(report->measurements, 3u)
      << "the verdict must come from the purchased fallback rounds";
  bool noted_fallback = false;
  for (const std::string& note : report->notes)
    noted_fallback |= note.find("falling back") != std::string::npos;
  EXPECT_TRUE(noted_fallback)
      << "the degradation must be reported, not silent";
  EXPECT_GT(report->tokens_spent, 0u);
}

}  // namespace
}  // namespace debuglet
