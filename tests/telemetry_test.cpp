// In-band path telemetry: IntHeader wire discipline, PathEvidence
// validation, fuel-capped hop programs, record accumulation through the
// simulated network, and the O(1) in-band localization strategy.
#include <gtest/gtest.h>

#include <vector>

#include "core/initiator.hpp"
#include "core/localization.hpp"
#include "core/system.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/scenarios.hpp"
#include "telemetry/hop_program.hpp"
#include "telemetry/int_header.hpp"
#include "telemetry/path_evidence.hpp"

namespace debuglet {
namespace {

using telemetry::HopRecord;
using telemetry::IntHeader;
using telemetry::IntParseError;

HopRecord make_record(std::uint32_t asn, std::uint64_t ingress_ns,
                      std::uint64_t egress_ns) {
  HopRecord rec;
  rec.asn = asn;
  rec.ingress_interface = 1;
  rec.egress_interface = 2;
  rec.ingress_ns = ingress_ns;
  rec.egress_ns = egress_ns;
  rec.queue_depth = 3;
  rec.drops_seen = 7;
  rec.wire_faults = 11;
  return rec;
}

// --- IntHeader wire discipline -----------------------------------------------

TEST(IntHeader, RoundTripsRecordsFlagsAndRegisters) {
  IntHeader header = IntHeader::reserve(5, /*request_hop_program=*/true);
  header.registers() = {10, -20, 30, 40};
  ASSERT_TRUE(header.push(make_record(100, 1'000, 2'000)));
  ASSERT_TRUE(header.push(make_record(200, 3'000, 4'000)));
  header.raise_alarm(1);

  const Bytes wire = header.serialize();
  ASSERT_EQ(wire.size(), IntHeader::wire_size(5));

  IntParseError kind = IntParseError::kNone;
  auto parsed = IntHeader::parse(BytesView(wire.data(), wire.size()), &kind);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_EQ(kind, IntParseError::kNone);
  EXPECT_EQ(parsed->hop_count(), 2);
  EXPECT_EQ(parsed->max_hops(), 5);
  EXPECT_TRUE(parsed->hop_program_requested());
  EXPECT_TRUE(parsed->alarmed());
  EXPECT_EQ(parsed->alarm_hop(), 1);
  EXPECT_EQ(parsed->registers(), header.registers());
  EXPECT_EQ(parsed->record(0), header.record(0));
  EXPECT_EQ(parsed->record(1), header.record(1));
  EXPECT_EQ(*parsed, header);
}

TEST(IntHeader, WireSizeIsFixedRegardlessOfPushes) {
  IntHeader header = IntHeader::reserve(4);
  const std::size_t empty_size = header.serialize().size();
  header.push(make_record(1, 1, 2));
  header.push(make_record(2, 3, 4));
  EXPECT_EQ(header.serialize().size(), empty_size)
      << "pushing records must never change the frame length in flight";
}

TEST(IntHeader, TruncationLatchesInsteadOfGrowing) {
  IntHeader header = IntHeader::reserve(2);
  EXPECT_TRUE(header.push(make_record(1, 1, 2)));
  EXPECT_TRUE(header.push(make_record(2, 3, 4)));
  EXPECT_FALSE(header.truncated());
  EXPECT_FALSE(header.push(make_record(3, 5, 6)));
  EXPECT_TRUE(header.truncated());
  EXPECT_EQ(header.hop_count(), 2);
  // The latch survives serialization.
  const Bytes wire = header.serialize();
  auto parsed = IntHeader::parse(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->truncated());
}

TEST(IntHeader, ReserveClampsTheHopBudget) {
  EXPECT_EQ(IntHeader::reserve(0).max_hops(), 1);
  EXPECT_EQ(IntHeader::reserve(255).max_hops(), IntHeader::kMaxHopsLimit);
}

TEST(IntHeader, ParseRejectsWithTypedErrors) {
  IntHeader header = IntHeader::reserve(3);
  header.push(make_record(5, 10, 20));
  Bytes wire = header.serialize();

  IntParseError kind = IntParseError::kNone;
  // Truncated buffer.
  EXPECT_FALSE(
      IntHeader::parse(BytesView(wire.data(), wire.size() - 9), &kind).ok());
  EXPECT_EQ(kind, IntParseError::kTruncated);
  // Damaged record stack: flip a byte inside the first record.
  Bytes damaged = wire;
  damaged[50] ^= 0xFF;
  EXPECT_FALSE(
      IntHeader::parse(BytesView(damaged.data(), damaged.size()), &kind).ok());
  EXPECT_EQ(kind, IntParseError::kDigestMismatch);
  // Wrong magic.
  Bytes not_int = wire;
  not_int[0] ^= 0x01;
  EXPECT_FALSE(IntHeader::looks_like_int(
      BytesView(not_int.data(), not_int.size())));
  EXPECT_FALSE(
      IntHeader::parse(BytesView(not_int.data(), not_int.size()), &kind).ok());
  EXPECT_EQ(kind, IntParseError::kBadMagic);
  // Unknown version.
  Bytes bad_version = wire;
  bad_version[4] = 99;
  EXPECT_FALSE(
      IntHeader::parse(BytesView(bad_version.data(), bad_version.size()),
                       &kind)
          .ok());
  EXPECT_EQ(kind, IntParseError::kBadVersion);
  // Impossible hop accounting: hop_count > max_hops (re-digested so only
  // the bounds check can reject).
  Bytes bad_hops = wire;
  bad_hops[7] = 200;
  const std::uint64_t digest = telemetry::int_digest(
      BytesView(bad_hops.data(), bad_hops.size() - 8));
  for (int i = 0; i < 8; ++i)
    bad_hops[bad_hops.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  EXPECT_FALSE(
      IntHeader::parse(BytesView(bad_hops.data(), bad_hops.size()), &kind)
          .ok());
  EXPECT_EQ(kind, IntParseError::kBadHopCount);

  EXPECT_TRUE(IntHeader::looks_like_int(BytesView(wire.data(), wire.size())));
}

TEST(IntHeader, ParseIgnoresTrailingPayloadBytes) {
  IntHeader header = IntHeader::reserve(2);
  Bytes wire = header.serialize();
  wire.push_back(0xAB);
  wire.push_back(0xCD);
  auto parsed = IntHeader::parse(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_EQ(*parsed, header);
}

// --- PathEvidence validation -------------------------------------------------

topology::AsPath three_link_path() {
  topology::AsPath path;
  path.hops = {{1, 0, 2}, {2, 1, 2}, {3, 1, 2}, {4, 1, 0}};
  return path;
}

TEST(PathEvidence, ComputesPerLinkLatenciesFromTimestamps) {
  const topology::AsPath path = three_link_path();
  const SimTime sent_at = 1'000'000;  // 1 ms into the scenario
  IntHeader header = IntHeader::reserve(3);
  // 5 ms crossings, 0.5 ms residence inside AS2/AS3, none at the final AS.
  std::uint64_t t = static_cast<std::uint64_t>(sent_at);
  for (std::size_t k = 0; k < 3; ++k) {
    t += 5'000'000;  // link crossing
    HopRecord rec = make_record(static_cast<std::uint32_t>(k + 2), t, t);
    if (k < 2) rec.egress_ns = t + 500'000;
    t = rec.egress_ns;
    ASSERT_TRUE(header.push(rec));
  }
  auto evidence = telemetry::PathEvidence::from_header(header, path, sent_at);
  ASSERT_TRUE(evidence.ok()) << evidence.error_message();
  ASSERT_EQ(evidence->links(), 3u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(evidence->link(k).one_way_ms, 5.0, 1e-9);
  EXPECT_NEAR(evidence->link(0).residence_ms, 0.5, 1e-9);
  EXPECT_NEAR(evidence->link(2).residence_ms, 0.0, 1e-9);
  EXPECT_TRUE(evidence->links_over(6.0).empty());
  EXPECT_EQ(evidence->links_over(4.0).size(), 3u);
}

TEST(PathEvidence, RejectsMismatchedOrIncompleteStacks) {
  const topology::AsPath path = three_link_path();
  // Too few records for the path.
  IntHeader incomplete = IntHeader::reserve(3);
  incomplete.push(make_record(2, 10, 20));
  EXPECT_FALSE(
      telemetry::PathEvidence::from_header(incomplete, path, 0).ok());
  // Truncated stack: records were dropped, evidence is untrustworthy.
  IntHeader truncated = IntHeader::reserve(1);
  truncated.push(make_record(2, 10, 20));
  truncated.push(make_record(3, 30, 40));  // latches TRUNCATED
  EXPECT_FALSE(
      telemetry::PathEvidence::from_header(truncated, path, 0).ok());
  // Wrong AS order: a record stack from a different path.
  IntHeader wrong_as = IntHeader::reserve(3);
  wrong_as.push(make_record(9, 10, 20));
  wrong_as.push(make_record(3, 30, 40));
  wrong_as.push(make_record(4, 50, 60));
  EXPECT_FALSE(
      telemetry::PathEvidence::from_header(wrong_as, path, 0).ok());
}

// --- Hop programs: fuel-capped per-hop DVM snippets --------------------------

TEST(HopProgram, WatchdogAlarmsOnSlowHopsAndUpdatesRegisters) {
  auto runtime = telemetry::HopProgramRuntime::create(
      telemetry::make_latency_watchdog(duration::milliseconds(10)));
  ASSERT_TRUE(runtime.ok()) << runtime.error_message();

  IntHeader header = IntHeader::reserve(4, /*request_hop_program=*/true);
  HopRecord quick = make_record(2, 100, 200);
  header.push(quick);
  auto r0 = (*runtime)->run_hop(header, 0, quick, duration::milliseconds(5));
  EXPECT_TRUE(r0.ran);
  EXPECT_FALSE(r0.trapped);
  EXPECT_FALSE(r0.alarmed);
  EXPECT_FALSE(header.alarmed());
  EXPECT_EQ(header.registers()[0], duration::milliseconds(5));  // max latency
  EXPECT_EQ(header.registers()[1], 1);                          // hops run

  HopRecord slow = make_record(3, 300, 400);
  header.push(slow);
  auto r1 = (*runtime)->run_hop(header, 1, slow, duration::milliseconds(25));
  EXPECT_TRUE(r1.alarmed);
  EXPECT_TRUE(header.alarmed());
  EXPECT_EQ(header.alarm_hop(), 1);
  EXPECT_EQ(header.registers()[0], duration::milliseconds(25));
  EXPECT_EQ(header.registers()[1], 2);
  EXPECT_EQ(header.registers()[3], 1);  // threshold crossings
  EXPECT_GT(r1.fuel_used, 0u);
}

TEST(HopProgram, FuelBurnerTrapsAndFallsBackWithoutTouchingRegisters) {
  telemetry::HopProgramLimits limits;
  limits.fuel_per_hop = 256;
  auto runtime = telemetry::HopProgramRuntime::create(
      telemetry::make_fuel_burner(), limits);
  ASSERT_TRUE(runtime.ok()) << runtime.error_message();

  IntHeader header = IntHeader::reserve(2, /*request_hop_program=*/true);
  header.registers() = {1, 2, 3, 4};
  HopRecord rec = make_record(2, 100, 200);
  header.push(rec);
  auto result = (*runtime)->run_hop(header, 0, rec, 1'000);
  EXPECT_TRUE(result.ran);
  EXPECT_TRUE(result.trapped);
  EXPECT_FALSE(result.alarmed);
  EXPECT_TRUE(header.fell_back()) << "a trap must latch the fallback flag";
  EXPECT_FALSE(header.alarmed());
  const std::array<std::int64_t, 4> expected{1, 2, 3, 4};
  EXPECT_EQ(header.registers(), expected)
      << "a trapped hop must not half-write the carried registers";
}

TEST(HopProgram, CreateRejectsNonConformingModules) {
  // Wrong arity for the ABI entry point.
  vm::Module wrong_arity = telemetry::make_latency_watchdog(1);
  wrong_arity.functions[0].param_count = 2;
  EXPECT_FALSE(telemetry::HopProgramRuntime::create(wrong_arity).ok());
  // Too few globals to back the register file.
  vm::Module few_globals = telemetry::make_latency_watchdog(1);
  few_globals.globals.resize(2);
  EXPECT_FALSE(telemetry::HopProgramRuntime::create(few_globals).ok());
}

// --- Record accumulation through the simulated network -----------------------

struct IntCollector : simnet::Host {
  void on_packet(const simnet::Delivery& delivery) override {
    deliveries.push_back(delivery);
  }
  std::vector<simnet::Delivery> deliveries;
};

struct IntNetFixture : ::testing::Test {
  IntNetFixture() : scenario(simnet::build_chain_scenario(4, 4242, 5.0)) {
    sender_addr = scenario.network->allocate_host_address(1);
    collector_addr = scenario.network->allocate_host_address(4);
    EXPECT_TRUE(
        scenario.network->attach_host(collector_addr, &collector).ok());
  }

  Status send_int_probe(const IntHeader& header) {
    net::ProbeSpec spec;
    spec.source = sender_addr;
    spec.destination = collector_addr;
    spec.source_port = 40001;
    spec.destination_port = 40002;
    spec.payload = header.serialize();
    auto wire = net::build_probe(spec);
    if (!wire) return wire.error();
    return scenario.network->send(sender_addr, std::move(*wire));
  }

  obs::ScopedRegistry scoped;  // before the network: handles are cached
  simnet::Scenario scenario;
  net::Ipv4Address sender_addr, collector_addr;
  IntCollector collector;
};

TEST_F(IntNetFixture, AppendsOneRecordPerLinkWithCoherentTimestamps) {
  scenario.network->set_int_enabled(true);
  const SimTime sent_at = scenario.queue->now();
  ASSERT_TRUE(send_int_probe(IntHeader::reserve(3)).ok());
  scenario.queue->run();

  ASSERT_EQ(collector.deliveries.size(), 1u);
  const net::Packet& packet = collector.deliveries[0].packet;
  auto parsed = IntHeader::parse(
      BytesView(packet.payload.data(), packet.payload.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed->hop_count(), 3);
  EXPECT_FALSE(parsed->truncated());
  // One record per link, appended by ASes 2, 3, 4 in path order.
  for (std::size_t k = 0; k < 3; ++k) {
    const HopRecord& rec = parsed->record(k);
    EXPECT_EQ(rec.asn, static_cast<std::uint32_t>(k + 2));
    EXPECT_GE(rec.egress_ns, rec.ingress_ns);
    if (k > 0) {
      EXPECT_GT(rec.ingress_ns, parsed->record(k - 1).egress_ns)
          << "timestamps must advance along the path";
    }
  }
  // The path evidence distilled from the delivery matches the 5 ms chain.
  auto path = scenario.network->topology().shortest_path(1, 4);
  ASSERT_TRUE(path.ok());
  auto evidence =
      telemetry::PathEvidence::from_header(*parsed, *path, sent_at);
  ASSERT_TRUE(evidence.ok()) << evidence.error_message();
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(evidence->link(k).one_way_ms, 5.0, 1.0);
  EXPECT_EQ(scoped.get().counter("telemetry.int_pushes").value(), 3u);
  EXPECT_EQ(scoped.get().counter("telemetry.int_truncations").value(), 0u);
  // The delivered TTL carries the per-router decrements.
  EXPECT_EQ(packet.ip.ttl, 64 - 3);
}

TEST_F(IntNetFixture, TightBudgetTruncatesExplicitly) {
  scenario.network->set_int_enabled(true);
  ASSERT_TRUE(send_int_probe(IntHeader::reserve(2)).ok());
  scenario.queue->run();
  ASSERT_EQ(collector.deliveries.size(), 1u);
  auto parsed = IntHeader::parse(BytesView(
      collector.deliveries[0].packet.payload.data(),
      collector.deliveries[0].packet.payload.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_EQ(parsed->hop_count(), 2);
  EXPECT_TRUE(parsed->truncated());
  EXPECT_EQ(scoped.get().counter("telemetry.int_truncations").value(), 1u);
}

TEST_F(IntNetFixture, DisabledNetworkForwardsIntPayloadUntouched) {
  const IntHeader header = IntHeader::reserve(3);
  const Bytes original = header.serialize();
  ASSERT_TRUE(send_int_probe(header).ok());
  scenario.queue->run();
  ASSERT_EQ(collector.deliveries.size(), 1u);
  EXPECT_EQ(collector.deliveries[0].packet.payload, original)
      << "with INT off the payload must forward as opaque bytes";
  EXPECT_EQ(scoped.get().counter("telemetry.int_pushes").value(), 0u);
}

TEST_F(IntNetFixture, EnablingIntDoesNotPerturbNonIntTraffic) {
  // The same plain probe, INT on vs INT off, equal seeds: identical
  // arrival instants — the telemetry branch must not consume RNG draws.
  const auto run_plain = [](bool int_on) {
    simnet::Scenario scenario = simnet::build_chain_scenario(4, 777, 5.0);
    scenario.network->set_int_enabled(int_on);
    IntCollector rx;
    const auto src = scenario.network->allocate_host_address(1);
    const auto dst = scenario.network->allocate_host_address(4);
    EXPECT_TRUE(scenario.network->attach_host(dst, &rx).ok());
    for (int i = 0; i < 5; ++i) {
      net::ProbeSpec spec;
      spec.source = src;
      spec.destination = dst;
      spec.source_port = 40001;
      spec.destination_port = 40002;
      spec.sequence = static_cast<std::uint16_t>(i);
      spec.payload = bytes_of("plain payload");
      auto wire = net::build_probe(spec);
      EXPECT_TRUE(wire.ok());
      EXPECT_TRUE(scenario.network->send(src, std::move(*wire)).ok());
      scenario.queue->run();
    }
    std::vector<SimTime> arrivals;
    for (const auto& d : rx.deliveries) arrivals.push_back(d.received_at);
    return arrivals;
  };
  EXPECT_EQ(run_plain(false), run_plain(true));
}

TEST_F(IntNetFixture, HopProgramRunsPerHopAndAlarms) {
  scenario.network->set_int_enabled(true);
  // 2 ms watchdog on 5 ms links: the very first crossing alarms.
  ASSERT_TRUE(scenario.network
                  ->install_hop_program(telemetry::make_latency_watchdog(
                      duration::milliseconds(2)))
                  .ok());
  ASSERT_TRUE(
      send_int_probe(IntHeader::reserve(3, /*request_hop_program=*/true))
          .ok());
  scenario.queue->run();
  ASSERT_EQ(collector.deliveries.size(), 1u);
  auto parsed = IntHeader::parse(BytesView(
      collector.deliveries[0].packet.payload.data(),
      collector.deliveries[0].packet.payload.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_TRUE(parsed->alarmed());
  EXPECT_EQ(parsed->alarm_hop(), 0);
  EXPECT_FALSE(parsed->fell_back());
  EXPECT_EQ(parsed->registers()[1], 3) << "one run per traversed device";
  EXPECT_EQ(scoped.get().counter("telemetry.hop_program_runs").value(), 3u);
  EXPECT_EQ(scoped.get().counter("telemetry.hop_program_traps").value(), 0u);
}

TEST_F(IntNetFixture, TrappingHopProgramFallsBackToPlainInt) {
  scenario.network->set_int_enabled(true);
  ASSERT_TRUE(scenario.network
                  ->install_hop_program(telemetry::make_fuel_burner())
                  .ok());
  ASSERT_TRUE(
      send_int_probe(IntHeader::reserve(3, /*request_hop_program=*/true))
          .ok());
  scenario.queue->run();
  ASSERT_EQ(collector.deliveries.size(), 1u);
  auto parsed = IntHeader::parse(BytesView(
      collector.deliveries[0].packet.payload.data(),
      collector.deliveries[0].packet.payload.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_TRUE(parsed->fell_back());
  EXPECT_FALSE(parsed->alarmed());
  EXPECT_EQ(parsed->hop_count(), 3)
      << "plain INT must continue after the program traps";
  EXPECT_EQ(scoped.get().counter("telemetry.hop_program_traps").value(), 3u);
}

// --- O(1) in-band localization -----------------------------------------------

struct InbandFixture : ::testing::Test {
  InbandFixture()
      : system(simnet::build_chain_scenario(kChainLength, 1313, kHopMs)),
        initiator(system, 2718, 2'000'000'000'000ULL) {}

  static constexpr std::size_t kChainLength = 7;
  static constexpr double kHopMs = 5.0;

  void inject_fault(std::size_t link, double delay_ms) {
    simnet::FaultSpec fault;
    fault.extra_delay_ms = delay_ms;
    fault.start = 0;
    fault.end = duration::hours(100);
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_egress(link),
                                  simnet::chain_ingress(link + 1), fault)
                    .ok());
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_ingress(link + 1),
                                  simnet::chain_egress(link), fault)
                    .ok());
  }

  core::FaultLocalizer make_localizer() {
    auto path = system.network().topology().shortest_path(1, kChainLength);
    EXPECT_TRUE(path.ok());
    core::FaultCriteria criteria;
    criteria.per_link_rtt_ms = 2 * kHopMs + 0.5;
    criteria.slack_ms = 15.0;
    criteria.max_loss = 0.2;
    return core::FaultLocalizer(system, initiator, *path, criteria,
                                net::Protocol::kUdp, 8, 100);
  }

  obs::ScopedRegistry scoped;
  core::DebugletSystem system;
  core::Initiator initiator;
};

TEST_F(InbandFixture, LocalizesSingleFaultInOneProbeRound) {
  inject_fault(4, 60.0);
  core::FaultLocalizer localizer = make_localizer();

  auto inband = localizer.run(core::Strategy::kInband);
  ASSERT_TRUE(inband.ok()) << inband.error_message();
  ASSERT_TRUE(inband->located);
  EXPECT_EQ(inband->fault_link, 4u);
  EXPECT_TRUE(inband->exact);
  EXPECT_EQ(inband->measurements, 1u)
      << "in-band evidence must localize in exactly one probe round";
  EXPECT_EQ(inband->tokens_spent, 0u)
      << "the in-band round buys no marketplace measurements";

  auto binary = localizer.run(core::Strategy::kBinarySearch);
  ASSERT_TRUE(binary.ok()) << binary.error_message();
  ASSERT_TRUE(binary->located);
  EXPECT_EQ(binary->fault_link, 4u);
  EXPECT_GE(binary->measurements, 3u)
      << "binary search needs the rounds in-band telemetry saves";
}

TEST_F(InbandFixture, HealthyPathReportsCleanInOneRound) {
  core::FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(core::Strategy::kInband);
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_FALSE(report->located);
  EXPECT_EQ(report->measurements, 1u);
  EXPECT_EQ(report->tokens_spent, 0u);
}

TEST_F(InbandFixture, IntStateIsRestoredAfterTheRun) {
  core::FaultLocalizer localizer = make_localizer();
  ASSERT_FALSE(system.network().int_enabled());
  ASSERT_TRUE(localizer.run(core::Strategy::kInband).ok());
  EXPECT_FALSE(system.network().int_enabled())
      << "the strategy must restore the network's INT switch";
}

TEST_F(InbandFixture, HopProgramAlarmPinsTheLinkDirectly) {
  inject_fault(2, 60.0);
  // Alarm threshold between the healthy 5 ms and the faulted 65 ms.
  ASSERT_TRUE(system.network()
                  .install_hop_program(telemetry::make_latency_watchdog(
                      duration::milliseconds(30)))
                  .ok());
  core::FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(core::Strategy::kInband);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_EQ(report->fault_link, 2u);
  EXPECT_EQ(report->measurements, 1u);
}

}  // namespace
}  // namespace debuglet
