// Property and fuzz-style tests: the safety claims the sandbox and the
// codecs make must hold for ARBITRARY inputs, not just well-formed ones.
//
//  * Module::parse and net::parse_packet never crash and never accept
//    garbage silently — random bytes and random mutations of valid inputs
//    produce clean Result errors or equal re-serializations.
//  * Randomly generated (validated) DVM programs execute without any
//    undefined behaviour: they either finish, or trap with a defined trap
//    kind; fuel strictly bounds execution; identical programs behave
//    identically.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>

#include "chain/chain.hpp"
#include "crypto/schnorr.hpp"
#include "executor/manifest.hpp"
#include "executor/result.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "simnet/link_faults.hpp"
#include "telemetry/int_header.hpp"
#include "util/rng.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.index(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

// --- Codec fuzzing -----------------------------------------------------------

TEST(FuzzModuleParse, RandomBytesNeverCrash) {
  Rng rng(0xF00D);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    const Bytes data = random_bytes(rng, 200);
    auto parsed = vm::Module::parse(BytesView(data.data(), data.size()));
    if (parsed.ok()) ++accepted;
  }
  // Random bytes essentially never form a module (magic + sections).
  EXPECT_LE(accepted, 1);
}

TEST(FuzzModuleParse, MutatedValidModulesParseOrFailCleanly) {
  // Build a representative valid module once.
  auto source = R"(
    memory 4096
    global 3
    import dbg_now
    buffer output_buffer 1024 128
    func run_debuglet locals 2
    top:
      local.get 0
      const 50
      ge_s
      jump_if done
      local.get 0
      const 1
      add
      local.set 0
      jump top
    done:
      const 0
      return
    end
  )";
  Rng rng(0xBEEF);
  // (Assembled through the public pipeline in vm_module_test; here keep a
  // serialized copy and mutate it.)
  auto module = vm::Module::parse(BytesView());
  (void)module;
  // Build via functions already covered: serialize a valid module.
  auto parsed_src = [] {
    vm::Module m;
    m.memory_size = 4096;
    m.globals = {3};
    m.host_imports = {"dbg_now"};
    m.buffers = {{"output_buffer", 1024, 128}};
    vm::Function f;
    f.name = vm::kEntryPointName;
    f.local_count = 2;
    f.code = {{vm::Opcode::kConst, 0}, {vm::Opcode::kReturn, 0}};
    m.functions.push_back(f);
    return m;
  }();
  (void)source;
  const Bytes valid = parsed_src.serialize();
  ASSERT_TRUE(vm::Module::parse(BytesView(valid.data(), valid.size())).ok());

  for (int i = 0; i < 5000; ++i) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.index(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.index(3)) {
        case 0:  // flip a byte
          mutated[rng.index(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + rng.index(255));
          break;
        case 1:  // truncate
          mutated.resize(rng.index(mutated.size()) + 1);
          break;
        case 2:  // append junk
          mutated.push_back(static_cast<std::uint8_t>(rng.next_u64()));
          break;
      }
    }
    auto result = vm::Module::parse(BytesView(mutated.data(),
                                              mutated.size()));
    if (result.ok()) {
      // Anything accepted must re-serialize canonically and validate-or-
      // fail without crashing.
      (void)vm::validate(*result);
      auto again = vm::Module::parse(BytesView(mutated.data(),
                                               mutated.size()));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *result);
    }
  }
}

TEST(FuzzPacketParse, RandomBytesNeverCrash) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 5000; ++i) {
    const Bytes data = random_bytes(rng, 120);
    auto parsed = net::parse_packet(BytesView(data.data(), data.size()));
    // Overwhelmingly rejected; the checksum makes random acceptance
    // essentially impossible, but acceptance would not be a bug per se.
    (void)parsed;
  }
  SUCCEED();
}

TEST(FuzzPacketParse, MutatedProbesDetected) {
  Rng rng(0xD00F);
  net::ProbeSpec spec;
  spec.protocol = net::Protocol::kUdp;
  spec.source = net::Ipv4Address(10, 0, 1, 200);
  spec.destination = net::Ipv4Address(10, 0, 2, 200);
  spec.source_port = 1000;
  spec.destination_port = 2000;
  spec.payload = bytes_of("0123456789abcdef");
  spec.equalized_length = 64;
  const Bytes valid = *net::build_probe(spec);
  ASSERT_TRUE(net::parse_packet(BytesView(valid.data(), valid.size())).ok());

  int header_mutations_accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.index(net::Ipv4Header::kSize);
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.index(255));
    if (net::parse_packet(BytesView(mutated.data(), mutated.size())).ok())
      ++header_mutations_accepted;
  }
  // Single-byte IP-header corruption is caught by the header checksum
  // except when the flip lands in the checksum-neutral positions; in 2000
  // random single-byte flips essentially none should slip through.
  EXPECT_EQ(header_mutations_accepted, 0);
}

// --- Random-program execution safety -----------------------------------------

// Generates a random module that PASSES validation: indices in range, jump
// targets in range, body terminated. Stack discipline is NOT guaranteed —
// underflow/overflow must be caught at run time.
vm::Module random_program(Rng& rng) {
  vm::Module m;
  m.memory_size = 256 + static_cast<std::uint32_t>(rng.index(4096));
  const std::size_t n_globals = rng.index(4);
  for (std::size_t i = 0; i < n_globals; ++i)
    m.globals.push_back(static_cast<std::int64_t>(rng.next_u64()));

  const std::size_t n_functions = 1 + rng.index(3);
  for (std::size_t fi = 0; fi < n_functions; ++fi) {
    vm::Function f;
    f.name = fi == 0 ? vm::kEntryPointName : "fn" + std::to_string(fi);
    f.param_count = fi == 0 ? 0 : static_cast<std::uint32_t>(rng.index(3));
    f.local_count = static_cast<std::uint32_t>(rng.index(4));
    const std::size_t body = 4 + rng.index(60);
    for (std::size_t pc = 0; pc < body; ++pc) {
      static const vm::Opcode kPool[] = {
          vm::Opcode::kNop,      vm::Opcode::kConst,   vm::Opcode::kDrop,
          vm::Opcode::kDup,      vm::Opcode::kLocalGet, vm::Opcode::kLocalSet,
          vm::Opcode::kGlobalGet, vm::Opcode::kGlobalSet, vm::Opcode::kAdd,
          vm::Opcode::kSub,      vm::Opcode::kMul,     vm::Opcode::kDivS,
          vm::Opcode::kRemS,     vm::Opcode::kAnd,     vm::Opcode::kXor,
          vm::Opcode::kShl,      vm::Opcode::kShrU,    vm::Opcode::kEq,
          vm::Opcode::kLtS,      vm::Opcode::kEqz,     vm::Opcode::kLoad8,
          vm::Opcode::kLoad64,   vm::Opcode::kStore8,  vm::Opcode::kStore64,
          vm::Opcode::kMemSize,  vm::Opcode::kJump,    vm::Opcode::kJumpIf,
          vm::Opcode::kJumpIfZ,  vm::Opcode::kCall,    vm::Opcode::kReturn,
      };
      vm::Instruction ins;
      ins.op = kPool[rng.index(std::size(kPool))];
      switch (ins.op) {
        case vm::Opcode::kConst:
          ins.imm = static_cast<std::int64_t>(rng.next_u64());
          break;
        case vm::Opcode::kLocalGet:
        case vm::Opcode::kLocalSet: {
          const std::uint32_t total = f.param_count + f.local_count;
          if (total == 0) {
            ins.op = vm::Opcode::kNop;
            break;
          }
          ins.imm = static_cast<std::int64_t>(rng.index(total));
          break;
        }
        case vm::Opcode::kGlobalGet:
        case vm::Opcode::kGlobalSet:
          if (m.globals.empty()) {
            ins.op = vm::Opcode::kNop;
            break;
          }
          ins.imm = static_cast<std::int64_t>(rng.index(m.globals.size()));
          break;
        case vm::Opcode::kLoad8:
        case vm::Opcode::kLoad64:
        case vm::Opcode::kStore8:
        case vm::Opcode::kStore64:
          ins.imm = static_cast<std::int64_t>(rng.index(m.memory_size));
          break;
        case vm::Opcode::kJump:
        case vm::Opcode::kJumpIf:
        case vm::Opcode::kJumpIfZ:
          ins.imm = static_cast<std::int64_t>(rng.index(body));
          break;
        case vm::Opcode::kCall:
          ins.imm = static_cast<std::int64_t>(rng.index(n_functions));
          break;
        default:
          break;
      }
      f.code.push_back(ins);
    }
    // Ensure a terminating instruction.
    f.code.push_back({vm::Opcode::kConst, 0});
    f.code.push_back({vm::Opcode::kReturn, 0});
    m.functions.push_back(std::move(f));
  }
  return m;
}

TEST(FuzzExecution, RandomProgramsAreContained) {
  Rng rng(0x5AFE);
  int finished = 0, trapped = 0;
  for (int i = 0; i < 400; ++i) {
    vm::Module m = random_program(rng);
    ASSERT_TRUE(vm::validate(m).ok()) << "generator produced invalid module";
    vm::ExecutionLimits limits;
    limits.fuel = 20'000;
    auto instance = vm::Instance::create(std::move(m), {}, limits);
    ASSERT_TRUE(instance.ok());
    const vm::RunOutcome out = instance->run();
    if (out.trapped) {
      ++trapped;
      EXPECT_NE(out.trap, vm::TrapKind::kNone);
      EXPECT_FALSE(out.trap_message.empty());
    } else {
      ++finished;
    }
    EXPECT_LE(out.fuel_used, limits.fuel);
  }
  // Unconstrained stack programs nearly always trap (underflow within a
  // few instructions); what matters is that BOTH outcomes occur and every
  // trap is a defined kind.
  EXPECT_GE(finished, 1);
  EXPECT_GT(trapped, 300);
}

TEST(FuzzExecution, DeterministicAcrossRuns) {
  Rng rng_a(0xD373), rng_b(0xD373);
  for (int i = 0; i < 50; ++i) {
    vm::Module ma = random_program(rng_a);
    vm::Module mb = random_program(rng_b);
    ASSERT_EQ(ma, mb);
    vm::ExecutionLimits limits;
    limits.fuel = 20'000;
    auto ia = vm::Instance::create(std::move(ma), {}, limits);
    auto ib = vm::Instance::create(std::move(mb), {}, limits);
    const vm::RunOutcome oa = ia->run();
    const vm::RunOutcome ob = ib->run();
    EXPECT_EQ(oa.trapped, ob.trapped);
    EXPECT_EQ(oa.trap, ob.trap);
    EXPECT_EQ(oa.value, ob.value);
    EXPECT_EQ(oa.fuel_used, ob.fuel_used);
  }
}

TEST(FuzzExecution, FuelStrictlyBoundsWork) {
  // The same infinite loop under different fuel budgets must report
  // exactly the budget as used.
  vm::Module m;
  m.memory_size = 64;
  vm::Function f;
  f.name = vm::kEntryPointName;
  f.code = {{vm::Opcode::kJump, 0}};
  m.functions.push_back(f);
  ASSERT_TRUE(vm::validate(m).ok());
  for (std::uint64_t fuel : {1ULL, 10ULL, 1000ULL, 123456ULL}) {
    vm::ExecutionLimits limits;
    limits.fuel = fuel;
    auto instance = vm::Instance::create(m, {}, limits);
    const vm::RunOutcome out = instance->run();
    EXPECT_TRUE(out.trapped);
    EXPECT_EQ(out.trap, vm::TrapKind::kOutOfFuel);
    EXPECT_EQ(out.fuel_used, fuel);
  }
}

// --- Differential fuzzing: mutate, validate, run both engines -----------------

// A module rich enough that single-byte mutations of its serialized form
// frequently survive parse + validate and still exercise loops, fused
// shapes, memory traffic, calls and host calls in the engines.
vm::Module rich_module() {
  vm::Module m;
  m.memory_size = 256;
  m.globals = {7, -1};
  m.host_imports = {"h"};

  vm::Function helper;
  helper.name = "helper";
  helper.param_count = 2;
  helper.code = {{vm::Opcode::kLocalGet, 0},
                 {vm::Opcode::kLocalGet, 1},
                 {vm::Opcode::kAdd, 0},
                 {vm::Opcode::kReturn, 0}};
  m.functions.push_back(helper);

  vm::Function f;
  f.name = vm::kEntryPointName;
  f.local_count = 2;
  f.code = {
      // Counter loop in the canonical fused shapes.
      /* 0*/ {vm::Opcode::kLocalGet, 0},
      /* 1*/ {vm::Opcode::kConst, 12},
      /* 2*/ {vm::Opcode::kGeS, 0},
      /* 3*/ {vm::Opcode::kJumpIf, 13},
      /* 4*/ {vm::Opcode::kLocalGet, 1},
      /* 5*/ {vm::Opcode::kConst, 5},
      /* 6*/ {vm::Opcode::kMul, 0},
      /* 7*/ {vm::Opcode::kLocalSet, 1},
      /* 8*/ {vm::Opcode::kLocalGet, 0},
      /* 9*/ {vm::Opcode::kConst, 1},
      /*10*/ {vm::Opcode::kAdd, 0},
      /*11*/ {vm::Opcode::kLocalSet, 0},
      /*12*/ {vm::Opcode::kJump, 0},
      // Memory traffic, an intra-module call, and a host call.
      /*13*/ {vm::Opcode::kLocalGet, 1},
      /*14*/ {vm::Opcode::kConst, 40},
      /*15*/ {vm::Opcode::kStore64, 0},
      /*16*/ {vm::Opcode::kConst, 40},
      /*17*/ {vm::Opcode::kLoad64, 0},
      /*18*/ {vm::Opcode::kGlobalGet, 0},
      /*19*/ {vm::Opcode::kCall, 0},
      /*20*/ {vm::Opcode::kCallHost, 0},
      /*21*/ {vm::Opcode::kGlobalSet, 1},
      /*22*/ {vm::Opcode::kGlobalGet, 1},
      /*23*/ {vm::Opcode::kReturn, 0},
  };
  m.functions.push_back(f);
  return m;
}

TEST(FuzzDifferential, MutatedModulesNeverDiverge) {
  const vm::Module base = rich_module();
  ASSERT_TRUE(vm::validate(base).ok());
  const Bytes valid = base.serialize();

  // Host import: logs its calls so the sequence is comparable per engine.
  auto make_host = [](std::vector<std::int64_t>* log) {
    return std::vector<vm::HostFunction>{
        {"h", 1,
         [log](vm::Instance&,
               std::span<const std::int64_t> args) -> Result<std::int64_t> {
           log->push_back(args[0]);
           return static_cast<std::int64_t>(
               static_cast<std::uint64_t>(args[0]) ^ 0x5A5Au);
         },
         false}};
  };

  Rng rng(0xD1FFBEEF);
  int survived = 0, diverged = 0;
  for (int i = 0; i < 2500; ++i) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.index(3));
    for (int mu = 0; mu < mutations; ++mu) {
      switch (rng.index(3)) {
        case 0:
          mutated[rng.index(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + rng.index(255));
          break;
        case 1:
          mutated.resize(1 + rng.index(mutated.size()));
          break;
        case 2:
          mutated.push_back(static_cast<std::uint8_t>(rng.next_u64()));
          break;
      }
    }
    auto parsed = vm::Module::parse(BytesView(mutated.data(), mutated.size()));
    if (!parsed.ok()) continue;
    if (!vm::validate(*parsed).ok()) continue;

    vm::ExecutionLimits limits;
    limits.fuel = 50'000;
    vm::ExecutionLimits nofuse = limits;
    nofuse.fuse_superinstructions = false;
    std::vector<std::int64_t> log_fast, log_ref, log_plain;
    auto fast = vm::Instance::create(*parsed, make_host(&log_fast), limits);
    auto ref = vm::Instance::create(*parsed, make_host(&log_ref), limits);
    auto plain = vm::Instance::create(*parsed, make_host(&log_plain), nofuse);
    // A validated module must instantiate under every engine or none.
    ASSERT_EQ(fast.ok(), ref.ok()) << "mutant " << i;
    ASSERT_EQ(fast.ok(), plain.ok()) << "mutant " << i;
    if (!fast.ok()) continue;
    ++survived;

    const vm::RunOutcome of =
        fast->run_function(vm::kEntryPointName, {}, vm::Engine::kFast);
    const vm::RunOutcome orf =
        ref->run_function(vm::kEntryPointName, {}, vm::Engine::kReference);
    const vm::RunOutcome op =
        plain->run_function(vm::kEntryPointName, {}, vm::Engine::kFast);
    for (const vm::RunOutcome* other : {&orf, &op}) {
      if (of.trapped != other->trapped || of.trap != other->trap ||
          of.trap_message != other->trap_message ||
          of.trap_pc != other->trap_pc ||
          of.trap_function != other->trap_function ||
          of.value != other->value || of.fuel_used != other->fuel_used ||
          of.host_calls != other->host_calls)
        ++diverged;
    }
    EXPECT_EQ(log_fast, log_ref) << "mutant " << i;
    EXPECT_EQ(log_fast, log_plain) << "mutant " << i;
    EXPECT_EQ(diverged, 0) << "mutant " << i << " diverged: fast={"
                           << of.trap_message << ", v=" << of.value
                           << ", fuel=" << of.fuel_used << "}";
    if (diverged) break;
  }
  // The mutation loop must actually reach execution, not just parse.
  EXPECT_GE(survived, 50) << "mutation corpus too weak";
  EXPECT_EQ(diverged, 0);
}

// --- Structure-aware wire-parser fuzzing (the link-chaos corpus) --------------
//
// Rather than pure random bytes, these passes damage REAL wire frames the
// way the simnet link-fault layer does (bit flips, truncation) plus codec-
// shaped mutations (splices, junk tails). Every parser on the receive path
// must reject cleanly — typed, no crash, no silent acceptance — because
// under link chaos these exact inputs arrive in production paths.
// CI's fuzz-smoke job raises the iteration counts via DEBUGLET_FUZZ_SCALE.

int fuzz_iterations(int base) {
  const char* scale = std::getenv("DEBUGLET_FUZZ_SCALE");
  if (scale == nullptr) return base;
  const long factor = std::strtol(scale, nullptr, 10);
  return factor > 1 ? base * static_cast<int>(factor) : base;
}

// Damages a frame the way LinkFaultPlan and adversarial middleboxes do,
// plus two codec-shaped mutations the wire layer cannot produce but a
// hostile AS could.
Bytes link_damage(Rng& rng, const Bytes& valid) {
  Bytes out = valid;
  switch (rng.index(5)) {
    case 0: {  // corruption: the real chaos mutator
      simnet::WireDamage damage;
      damage.kind = simnet::WireDamage::Kind::kCorrupt;
      damage.seed = rng.next_u64();
      damage.bit_flips = 1 + static_cast<std::uint32_t>(rng.index(8));
      simnet::apply_wire_damage(out, damage);
      break;
    }
    case 1: {  // truncation: the real chaos mutator
      simnet::WireDamage damage;
      damage.kind = simnet::WireDamage::Kind::kTruncate;
      damage.truncate_to = static_cast<std::uint32_t>(1 + rng.index(out.size()));
      simnet::apply_wire_damage(out, damage);
      break;
    }
    case 2: {  // splice a random run of bytes into the middle
      const std::size_t at = rng.index(out.size());
      const std::size_t len = 1 + rng.index(16);
      Bytes junk(len);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                 junk.end());
      break;
    }
    case 3:  // junk tail
      out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      break;
    case 4: {  // DPI mangling: payload-only bit flips past a kept prefix
      simnet::WireDamage damage;
      damage.kind = simnet::WireDamage::Kind::kMangle;
      damage.seed = rng.next_u64();
      damage.bit_flips = 1 + static_cast<std::uint32_t>(rng.index(8));
      damage.offset = static_cast<std::uint32_t>(rng.index(out.size()));
      simnet::apply_wire_damage(out, damage);
      break;
    }
  }
  return out;
}

TEST(FuzzWireParsers, DamagedProbesRejectTypedOrParse) {
  // Corpus: real build_probe output across all four probe protocols and a
  // spread of payload shapes — what actually crosses faulted links.
  std::vector<Bytes> corpus;
  int sequence = 0;
  for (const net::Protocol protocol :
       {net::Protocol::kUdp, net::Protocol::kTcp, net::Protocol::kIcmp,
        net::Protocol::kRawIp}) {
    for (const std::uint16_t equalized : {std::uint16_t{0}, std::uint16_t{64},
                                          std::uint16_t{120}}) {
      net::ProbeSpec spec;
      spec.protocol = protocol;
      spec.source = net::Ipv4Address(10, 0, 1, 200);
      spec.destination = net::Ipv4Address(10, 0, 2, 200);
      spec.source_port = 1000;
      spec.destination_port = 2000;
      spec.sequence = static_cast<std::uint16_t>(++sequence);
      spec.tcp_sequence = 0xC0FFEE;
      spec.payload = bytes_of("0123456789abcdef");
      spec.equalized_length = equalized;
      auto wire = net::build_probe(spec);
      ASSERT_TRUE(wire.ok()) << protocol_name(protocol);
      ASSERT_TRUE(
          net::parse_packet(BytesView(wire->data(), wire->size())).ok());
      corpus.push_back(std::move(*wire));
    }
  }

  Rng rng(0x11CAFE);
  int rejected = 0, typed = 0;
  const int iterations = fuzz_iterations(4000);
  for (int i = 0; i < iterations; ++i) {
    const Bytes mutated = link_damage(rng, corpus[rng.index(corpus.size())]);
    net::ParseErrorKind kind = net::ParseErrorKind::kNone;
    auto parsed =
        net::parse_packet(BytesView(mutated.data(), mutated.size()), &kind);
    if (!parsed.ok()) {
      ++rejected;
      // Every rejection must carry a typed reason — the receive path keys
      // its net.parse_rejected counter off it.
      EXPECT_NE(kind, net::ParseErrorKind::kNone) << parsed.error_message();
      EXPECT_STRNE(net::parse_error_name(kind), "none");
      if (kind != net::ParseErrorKind::kNone) ++typed;
    }
  }
  EXPECT_GT(rejected, iterations / 4) << "mutator too gentle to mean much";
  EXPECT_EQ(typed, rejected);
}

TEST(FuzzWireParsers, DamagedSnapshotsNeverDecodeSilently) {
  // A realistic metrics snapshot, chunked exactly as RemoteScraper ships
  // it, then damaged in flight.
  std::vector<obs::MetricRow> rows;
  for (int i = 0; i < 24; ++i) {
    obs::MetricRow row;
    row.name = "fuzz.metric_" + std::to_string(i % 6);
    row.labels = {{"shard", std::to_string(i)}};
    row.value = static_cast<double>(i * 37);
    rows.push_back(row);
  }
  const Bytes encoded = obs::wire::encode_snapshot(rows);
  ASSERT_TRUE(obs::wire::decode_snapshot(BytesView(encoded.data(), encoded.size()))
                  .ok());
  const std::size_t chunks =
      obs::wire::chunk_count(encoded.size(), obs::wire::kDefaultChunkPayload);

  Rng rng(0x0B5C);
  const int iterations = fuzz_iterations(2500);
  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      // Whole-snapshot damage: the digest must catch any change.
      const Bytes mutated = link_damage(rng, encoded);
      if (mutated == encoded) continue;
      auto decoded =
          obs::wire::decode_snapshot(BytesView(mutated.data(), mutated.size()));
      EXPECT_FALSE(decoded.ok())
          << "damaged snapshot decoded silently at iteration " << i;
    } else {
      // Per-chunk damage: parse_chunk rejects or yields a bounded header.
      auto chunk = obs::wire::build_chunk(BytesView(encoded.data(), encoded.size()),
                                    rng.index(chunks),
                                    obs::wire::kDefaultChunkPayload);
      ASSERT_TRUE(chunk.ok());
      const Bytes mutated = link_damage(rng, *chunk);
      auto parsed = obs::wire::parse_chunk(BytesView(mutated.data(), mutated.size()));
      if (parsed.ok()) {
        EXPECT_LT(parsed->index, parsed->count);
        EXPECT_LE(parsed->payload.size(), parsed->total_length);
      }
    }
  }
}

TEST(FuzzWireParsers, DamagedIntStacksRejectTypedOrRoundTrip) {
  // Corpus: real serialized INT stacks across hop budgets and flag
  // combinations — what a collector actually receives once probes opt in.
  std::vector<Bytes> corpus;
  for (const std::uint8_t budget :
       {std::uint8_t{1}, std::uint8_t{5}, telemetry::IntHeader::kMaxHopsLimit}) {
    telemetry::IntHeader h =
        telemetry::IntHeader::reserve(budget, /*request_hop_program=*/budget == 5);
    h.registers() = {1, -2, 3, -4};
    for (std::uint8_t hop = 0; hop < budget; ++hop) {
      telemetry::HopRecord rec;
      rec.asn = 10u + hop;
      rec.ingress_interface = 1;
      rec.egress_interface = static_cast<std::uint16_t>(hop + 1 < budget ? 2 : 0);
      rec.ingress_ns = 1'000'000ULL * (hop + 1u);
      rec.egress_ns = rec.ingress_ns + 50'000;
      rec.queue_depth = hop;
      rec.drops_seen = 3u * hop;
      rec.wire_faults = hop % 2;
      ASSERT_TRUE(h.push(rec));
    }
    if (budget == 5) h.raise_alarm(2);
    if (budget == telemetry::IntHeader::kMaxHopsLimit) {
      EXPECT_FALSE(h.push(telemetry::HopRecord{}));  // latches TRUNCATED
    }
    Bytes wire = h.serialize();
    ASSERT_EQ(wire.size(), telemetry::IntHeader::wire_size(budget));
    ASSERT_TRUE(
        telemetry::IntHeader::parse(BytesView(wire.data(), wire.size())).ok());
    corpus.push_back(std::move(wire));
  }

  Rng rng(0x1D17);
  int rejected = 0, typed = 0, accepted = 0;
  bool kind_seen[6] = {};
  const int iterations = fuzz_iterations(4000);
  for (int i = 0; i < iterations; ++i) {
    Bytes mutated = corpus[rng.index(corpus.size())];
    // Structure-aware damage: alongside the generic link-chaos mutators,
    // target the fields the parser branches on so every typed rejection
    // path is exercised, not just the digest backstop.
    switch (rng.index(7)) {
      case 0:  // magic
        mutated[rng.index(4)] ^= static_cast<std::uint8_t>(1 + rng.index(255));
        break;
      case 1:  // version
        mutated[4] ^= static_cast<std::uint8_t>(1 + rng.index(255));
        break;
      case 2:  // hop bookkeeping: budget zeroed, blown past the limit, or
               // a hop_count the budget cannot hold
        if (rng.chance(0.5))
          mutated[6] = rng.chance(0.5) ? 0 : 200;
        else
          mutated[7] = static_cast<std::uint8_t>(
              mutated[6] + 1 + rng.index(50));
        break;
      case 3:  // truncate mid-stack
        mutated.resize(1 + rng.index(mutated.size()));
        break;
      case 4:  // flip inside registers/records/digest
        mutated[12 + rng.index(mutated.size() - 12)] ^=
            static_cast<std::uint8_t>(1 + rng.index(255));
        break;
      default:  // the real link-chaos mutators + codec-shaped damage
        mutated = link_damage(rng, mutated);
        break;
    }
    telemetry::IntParseError kind = telemetry::IntParseError::kNone;
    auto parsed = telemetry::IntHeader::parse(
        BytesView(mutated.data(), mutated.size()), &kind);
    if (!parsed.ok()) {
      ++rejected;
      EXPECT_NE(kind, telemetry::IntParseError::kNone)
          << parsed.error_message();
      EXPECT_STRNE(telemetry::int_parse_error_name(kind), "none");
      if (kind != telemetry::IntParseError::kNone) ++typed;
      kind_seen[static_cast<std::size_t>(kind)] = true;
      continue;
    }
    // Accepted mutants (junk tails past the digest, or untouched frames)
    // must round-trip canonically and keep every bound intact.
    ++accepted;
    EXPECT_LE(parsed->hop_count(), parsed->max_hops());
    EXPECT_LE(parsed->max_hops(), telemetry::IntHeader::kMaxHopsLimit);
    EXPECT_EQ(parsed->records().size(), parsed->hop_count());
    const Bytes again = parsed->serialize();
    auto reparsed =
        telemetry::IntHeader::parse(BytesView(again.data(), again.size()));
    ASSERT_TRUE(reparsed.ok()) << "canonical re-parse failed at " << i;
    EXPECT_EQ(*reparsed, *parsed);
  }
  EXPECT_EQ(typed, rejected);
  EXPECT_GT(rejected, iterations / 2) << "mutator too gentle to mean much";
  EXPECT_GE(accepted, 1) << "junk tails should still parse (trailing ignored)";
  // The targeted mutations must reach every typed rejection, digest
  // backstop included.
  for (const telemetry::IntParseError k :
       {telemetry::IntParseError::kTruncated, telemetry::IntParseError::kBadMagic,
        telemetry::IntParseError::kBadVersion,
        telemetry::IntParseError::kBadHopCount,
        telemetry::IntParseError::kDigestMismatch})
    EXPECT_TRUE(kind_seen[static_cast<std::size_t>(k)])
        << "never saw " << telemetry::int_parse_error_name(k);
}

TEST(FuzzExecutorCodecs, DamagedManifestsParseCanonicallyOrFail) {
  executor::Manifest manifest;
  manifest.cpu_fuel = 5'000'000;
  manifest.max_duration = duration::seconds(30);
  manifest.peak_memory = 128 * 1024;
  manifest.max_packets_sent = 64;
  manifest.max_packets_received = 64;
  manifest.allowed_addresses = {net::Ipv4Address(10, 0, 7, 1),
                                net::Ipv4Address(10, 0, 9, 2)};
  manifest.capabilities = {executor::Capability::kUdp,
                           executor::Capability::kClock,
                           executor::Capability::kHostMetrics};
  const Bytes valid = manifest.serialize();
  ASSERT_TRUE(
      executor::Manifest::parse(BytesView(valid.data(), valid.size())).ok());

  Rng rng(0x3AF3);
  const int iterations = fuzz_iterations(3000);
  for (int i = 0; i < iterations; ++i) {
    const Bytes mutated = link_damage(rng, valid);
    auto parsed =
        executor::Manifest::parse(BytesView(mutated.data(), mutated.size()));
    if (!parsed.ok()) continue;
    // Accepted mutants must round-trip canonically: re-serializing and
    // re-parsing yields the same manifest (no state escapes the codec).
    const Bytes again = parsed->serialize();
    auto reparsed =
        executor::Manifest::parse(BytesView(again.data(), again.size()));
    ASSERT_TRUE(reparsed.ok()) << "canonical re-parse failed at " << i;
    EXPECT_EQ(*reparsed, *parsed);
  }
}

TEST(FuzzExecutorCodecs, DamagedCertifiedResultsNeverVerifyAltered) {
  executor::ResultRecord record;
  record.application_id = 42;
  record.executor_key = topology::InterfaceKey{3, 1};
  record.scheduled_start = duration::seconds(5);
  record.actual_start = duration::seconds(5) + duration::milliseconds(3);
  record.end_time = duration::seconds(6);
  record.exit_value = 17;
  record.packets_sent = 8;
  record.packets_received = 7;
  record.fuel_used = 123'456;
  record.output = bytes_of("sequence/delay samples would live here");
  const crypto::KeyPair key = crypto::KeyPair::from_seed(0x51337);
  const executor::CertifiedResult certified = executor::certify(record, key);
  const Bytes valid = certified.serialize();
  {
    auto parsed = executor::CertifiedResult::parse(
        BytesView(valid.data(), valid.size()));
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(executor::verify_certified(*parsed));
  }

  Rng rng(0xC397);
  const int iterations = fuzz_iterations(2000);
  int verified_unaltered = 0;
  for (int i = 0; i < iterations; ++i) {
    const Bytes mutated = link_damage(rng, valid);
    if (mutated == valid) continue;
    auto parsed = executor::CertifiedResult::parse(
        BytesView(mutated.data(), mutated.size()));
    if (!parsed.ok()) continue;
    // The end-to-end integrity claim: whatever damage the wire (or a
    // hostile AS) applies, a record that still VERIFIES is the original.
    if (executor::verify_certified(*parsed)) {
      ++verified_unaltered;
      EXPECT_EQ(parsed->record, record)
          << "altered record passed signature verification at " << i;
    }
    // Altered-but-parsed records must also fail a bound-signer check
    // unless genuinely untouched.
    if (!(parsed->record == record)) {
      EXPECT_FALSE(executor::verify_certified(*parsed, &key.public_key()))
          << "mutant " << i;
    }
  }
  (void)verified_unaltered;  // mutations may hit only dead padding: rare, fine
}

// --- Round-trip property over random manifests -------------------------------

TEST(FuzzRoundTrip, BytesWriterReaderArbitrarySequences) {
  Rng rng(0x0DDB);
  for (int trial = 0; trial < 300; ++trial) {
    // Write a random sequence of typed fields, then read it back.
    std::vector<int> kinds;
    BytesWriter w;
    std::vector<std::uint64_t> u64s;
    std::vector<std::string> strs;
    const std::size_t n = 1 + rng.index(20);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        kinds.push_back(0);
        u64s.push_back(rng.next_u64());
        w.varint(u64s.back());
      } else {
        kinds.push_back(1);
        std::string s;
        const std::size_t len = rng.index(40);
        for (std::size_t c = 0; c < len; ++c)
          s.push_back(static_cast<char>('a' + rng.index(26)));
        strs.push_back(s);
        w.str(s);
      }
    }
    BytesReader r(BytesView(w.bytes().data(), w.bytes().size()));
    std::size_t ui = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        auto v = r.varint();
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, u64s[ui++]);
      } else {
        auto s = r.str();
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(*s, strs[si++]);
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// --- Chain access-set enforcement --------------------------------------------
//
// The parallel scheduler's safety property (docs/CHAIN.md): a declared-mode
// contract call that touches ANY key outside its declared access set aborts
// with ErrorKind::kAccessViolation and commits NOTHING — even when the
// violating touch happens mid-sequence after buffered effects have piled
// up, and even when the contract swallows the per-op error and claims
// success. Fuzzed op sequences with fuzzed declared subsets check both
// directions: compliant sequences commit, non-compliant ones roll back to
// the byte.

// Executes a fuzzer-provided op sequence, deliberately IGNORING per-op
// errors: a malicious contract that shrugs off denied accesses must still
// see its whole transaction voided by the violation latch.
class MultiKvContract : public chain::Contract {
 public:
  std::string name() const override { return "kv"; }

  Result<Bytes> call(chain::CallContext& ctx, const std::string& function,
                     BytesView arguments) override {
    if (function != "multi") return fail("kv: unknown function");
    BytesReader r(arguments);
    auto count = r.u32();
    if (!count) return fail("kv: bad args");
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto kind = r.u8();
      if (!kind) return fail("kv: bad op");
      switch (*kind) {
        case 0: {  // put
          auto key = r.str();
          auto value = r.blob();
          if (!key || !value) return fail("kv: bad put");
          (void)ctx.write_named(*key, std::move(*value));
          ctx.emit_event("Put", *key, {});
          break;
        }
        case 1: {  // get
          auto key = r.str();
          if (!key) return fail("kv: bad get");
          (void)ctx.read_named(*key);
          break;
        }
        case 2: {  // del
          auto key = r.str();
          if (!key) return fail("kv: bad del");
          (void)ctx.erase_named(*key);
          ctx.emit_event("Del", *key, {});
          break;
        }
        case 3: {  // wobj
          auto id = r.u64();
          auto value = r.blob();
          if (!id || !value) return fail("kv: bad wobj");
          (void)ctx.write_object(*id, std::move(*value));
          break;
        }
        case 4: {  // dobj
          auto id = r.u64();
          if (!id) return fail("kv: bad dobj");
          (void)ctx.delete_object(*id);
          break;
        }
        case 5: {  // mkobj
          auto value = r.blob();
          if (!value) return fail("kv: bad mkobj");
          (void)ctx.create_object(std::move(*value));
          break;
        }
        default:
          return fail("kv: unknown op");
      }
    }
    return Bytes{};
  }
};

// Renders every piece of committed contract-visible state; rollback means
// this string is unchanged by a violating transaction.
std::string render_chain_state(const chain::Blockchain& bc) {
  std::string out;
  for (const auto& [key, entry] : bc.named_state())
    out += key + "=v" + std::to_string(entry.version) + ":" +
           to_hex(BytesView(entry.data.data(), entry.data.size())) + ";";
  for (const auto& [id, obj] : bc.objects())
    out += "obj" + std::to_string(id) + "=v" + std::to_string(obj.version) +
           ":" + to_hex(BytesView(obj.data.data(), obj.data.size())) + ";";
  return out;
}

TEST(FuzzAccessEnforcement, UndeclaredTouchesAbortAndRollBack) {
  Rng rng(0xACCE55);
  const int iterations = fuzz_iterations(250);
  const std::vector<std::string> keys = {"alpha", "beta", "gamma", "delta"};
  int compliant_runs = 0;
  int violating_runs = 0;
  for (int it = 0; it < iterations; ++it) {
    chain::Blockchain bc;
    ASSERT_TRUE(
        bc.register_contract(std::make_unique<MultiKvContract>()).ok());
    auto sender = crypto::KeyPair::from_seed(0xAC00u + it);
    const chain::Address addr = chain::Address::of(sender.public_key());
    bc.mint(addr, 1'000'000'000'000ULL);

    // Seed state: two named keys and one object, fully declared. The
    // seed transaction seals the first post-genesis block, so the object
    // id is (height 1, index 0, counter 0).
    chain::AccessSet seed_access;
    seed_access.add_write(chain::named_access_key("kv", keys[0]));
    seed_access.add_write(chain::named_access_key("kv", keys[1]));
    BytesWriter seed;
    seed.u32(3);
    seed.u8(0);
    seed.str(keys[0]);
    seed.blob(BytesView());
    seed.u8(0);
    seed.str(keys[1]);
    seed.blob(BytesView());
    seed.u8(5);
    seed.blob(BytesView());
    auto seeded = bc.submit(bc.make_transaction(sender, "kv", "multi",
                                                seed.take(), 0,
                                                1'000'000'000,
                                                std::move(seed_access)));
    ASSERT_TRUE(seeded.ok()) << seeded.error_message();
    ASSERT_TRUE(seeded->success) << seeded->error;
    const chain::ObjectId obj = std::uint64_t{1} << 32;

    // Random declared subset: writes imply reads; a fixed anchor read
    // keeps the set non-empty (= declared mode) even when nothing else
    // is declared.
    chain::AccessSet access;
    access.add_read(chain::named_access_key("kv", "anchor"));
    std::set<std::string> declared_write, declared_read;
    declared_read.insert(chain::named_access_key("kv", "anchor"));
    for (const auto& key : keys) {
      const std::string full = chain::named_access_key("kv", key);
      if (rng.chance(0.55)) {
        access.add_write(full);
        declared_write.insert(full);
      } else if (rng.chance(0.3)) {
        access.add_read(full);
        declared_read.insert(full);
      }
    }
    const std::string obj_key = chain::object_access_key(obj);
    if (rng.chance(0.6)) {
      access.add_write(obj_key);
      declared_write.insert(obj_key);
    }

    // Random op sequence; track the access it requires.
    const std::uint32_t ops = 1 + static_cast<std::uint32_t>(rng.index(7));
    BytesWriter w;
    w.u32(ops);
    bool compliant = true;
    auto need_write = [&](const std::string& full) {
      if (!declared_write.contains(full)) compliant = false;
    };
    auto need_read = [&](const std::string& full) {
      if (!declared_write.contains(full) && !declared_read.contains(full))
        compliant = false;
    };
    for (std::uint32_t i = 0; i < ops; ++i) {
      const auto kind = rng.index(6);
      const std::string& key = keys[rng.index(keys.size())];
      const std::string full = chain::named_access_key("kv", key);
      switch (kind) {
        case 0:
          w.u8(0);
          w.str(key);
          w.blob(BytesView());
          need_write(full);
          break;
        case 1:
          w.u8(1);
          w.str(key);
          need_read(full);
          break;
        case 2:
          w.u8(2);
          w.str(key);
          need_write(full);
          break;
        case 3:
          w.u8(3);
          w.u64(obj);
          w.blob(BytesView());
          need_write(obj_key);
          break;
        case 4:
          w.u8(4);
          w.u64(obj);
          need_write(obj_key);
          break;
        default:
          w.u8(5);
          w.blob(BytesView());
          break;  // created objects need no declaration
      }
    }

    const std::string state_before = render_chain_state(bc);
    const std::size_t events_before = bc.events().size();
    const chain::Mist balance_before = bc.balance(addr);
    const chain::Mist escrow_before = bc.escrow_balance("kv");
    const std::uint64_t nonce_before = bc.nonce(addr);

    auto receipt = bc.submit(bc.make_transaction(sender, "kv", "multi",
                                                 w.take(), 0, 1'000'000'000,
                                                 std::move(access)));
    ASSERT_TRUE(receipt.ok()) << receipt.error_message();
    if (compliant) {
      ++compliant_runs;
      EXPECT_TRUE(receipt->success) << it << ": " << receipt->error;
    } else {
      ++violating_runs;
      ASSERT_FALSE(receipt->success) << it;
      EXPECT_EQ(receipt->error_kind, chain::ErrorKind::kAccessViolation);
      EXPECT_NE(receipt->error.find("access violation"), std::string::npos)
          << receipt->error;
      // Nothing committed besides gas and the nonce.
      EXPECT_EQ(render_chain_state(bc), state_before) << it;
      EXPECT_EQ(bc.events().size(), events_before) << it;
      EXPECT_EQ(bc.escrow_balance("kv"), escrow_before) << it;
      EXPECT_EQ(bc.balance(addr), balance_before - receipt->gas_charged);
      EXPECT_EQ(bc.nonce(addr), nonce_before + 1);
    }
  }
  // The fuzz distribution must genuinely exercise both directions.
  EXPECT_GT(compliant_runs, iterations / 10);
  EXPECT_GT(violating_runs, iterations / 10);
}

}  // namespace
}  // namespace debuglet
