// Fault-localization tests (paper §IV-B Fig. 6 and §VI-D).
#include <gtest/gtest.h>

#include "core/debuglet.hpp"

namespace debuglet::core {
namespace {

using net::Protocol;

constexpr double kHopMs = 5.0;

struct LocalizationFixture : ::testing::Test {
  LocalizationFixture()
      : system(simnet::build_chain_scenario(kChainLength, 777, kHopMs)),
        initiator(system, 31415, 2'000'000'000'000ULL) {}

  static constexpr std::size_t kChainLength = 8;

  // Injects a persistent delay fault on the link after hop `link` (both
  // directions, so RTT measurements over it are clearly elevated).
  void inject_fault(std::size_t link, double delay_ms) {
    simnet::FaultSpec fault;
    fault.extra_delay_ms = delay_ms;
    fault.start = 0;
    fault.end = duration::hours(100);
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_egress(link),
                                  simnet::chain_ingress(link + 1), fault)
                    .ok());
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_ingress(link + 1),
                                  simnet::chain_egress(link), fault)
                    .ok());
  }

  FaultLocalizer make_localizer() {
    auto path = system.network().topology().shortest_path(1, kChainLength);
    EXPECT_TRUE(path.ok());
    FaultCriteria criteria;
    criteria.per_link_rtt_ms = 2 * kHopMs + 0.5;
    criteria.slack_ms = 15.0;
    criteria.max_loss = 0.2;
    return FaultLocalizer(system, initiator, *path, criteria, Protocol::kUdp,
                          8, 100);
  }

  DebugletSystem system;
  Initiator initiator;
};

TEST_F(LocalizationFixture, SegmentMeasurementReflectsSubpath) {
  FaultLocalizer localizer = make_localizer();
  auto step = localizer.measure_segment(1, 4);
  ASSERT_TRUE(step.ok()) << step.error_message();
  EXPECT_FALSE(step->faulty);
  // 3 links x 2 x 5 ms + transit + sandbox I/O.
  EXPECT_NEAR(step->summary.mean_ms, 31.0, 2.0);
  EXPECT_EQ(step->summary.probes_answered, 8u);

  EXPECT_FALSE(localizer.measure_segment(3, 3).ok());
  EXPECT_FALSE(localizer.measure_segment(5, 99).ok());
}

class StrategyCase
    : public LocalizationFixture,
      public ::testing::WithParamInterface<std::tuple<Strategy, std::size_t>> {
};

TEST_P(StrategyCase, LocatesInjectedFault) {
  const auto [strategy, fault_link] = GetParam();
  inject_fault(fault_link, 60.0);
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(strategy);
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_TRUE(report->located);
  EXPECT_EQ(report->fault_link, fault_link)
      << strategy_name(strategy) << " misplaced the fault";
  EXPECT_GT(report->measurements, 0u);
  EXPECT_GT(report->tokens_spent, 0u);
  EXPECT_GT(report->time_to_locate(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndPositions, StrategyCase,
    ::testing::Combine(::testing::Values(Strategy::kLinearSequential,
                                         Strategy::kBinarySearch,
                                         Strategy::kParallelSweep),
                       ::testing::Values<std::size_t>(0, 3, 6)),
    [](const auto& info) {
      std::string name = strategy_name(std::get<0>(info.param)) + "_link" +
                         std::to_string(std::get<1>(info.param));
      std::erase(name, '-');  // gtest parameter names must be identifiers
      return name;
    });

TEST_F(LocalizationFixture, BinaryBeatsLinearOnFarFaults) {
  inject_fault(6, 60.0);  // last link of the 8-AS chain
  FaultLocalizer localizer = make_localizer();
  auto linear = localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(linear.ok()) << linear.error_message();
  auto binary = localizer.run(Strategy::kBinarySearch);
  ASSERT_TRUE(binary.ok()) << binary.error_message();
  ASSERT_TRUE(linear->located);
  ASSERT_TRUE(binary->located);
  EXPECT_EQ(linear->fault_link, 6u);
  EXPECT_EQ(binary->fault_link, 6u);
  // Linear probes every link up to the fault (7 measurements); binary
  // needs 1 end-to-end check + ~log2(7) ≈ 3.
  EXPECT_EQ(linear->measurements, 7u);
  EXPECT_LE(binary->measurements, 4u);
  EXPECT_LT(binary->tokens_spent, linear->tokens_spent);
}

TEST_F(LocalizationFixture, HealthyPathReportsNothing) {
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(Strategy::kBinarySearch);
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_FALSE(report->located);
  EXPECT_EQ(report->measurements, 1u) << "one end-to-end check suffices";
}

TEST_F(LocalizationFixture, LossFaultAlsoLocated) {
  simnet::FaultSpec fault;
  fault.extra_loss_pm = 600.0;  // 60% loss
  fault.start = 0;
  fault.end = duration::hours(100);
  ASSERT_TRUE(system.network()
                  .inject_fault(simnet::chain_egress(2),
                                simnet::chain_ingress(3), fault)
                  .ok());
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(Strategy::kBinarySearch);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_EQ(report->fault_link, 2u);
}

TEST_F(LocalizationFixture, IntraAsDerivation) {
  // Slow down the interior of AS4 (hop index 3) rather than a link.
  system.network().configure_transit(4, {25.0, 0.05, 0.0});
  FaultLocalizer localizer = make_localizer();
  auto derived = localizer.derive_intra_as(3);
  ASSERT_TRUE(derived.ok()) << derived.error_message();
  // Whole segment crosses AS4 twice (RTT) -> +50 ms over the two links.
  // intra_as = whole - left - right ≈ 2*25 - (small overlaps).
  EXPECT_NEAR(derived->intra_as_mean_ms(), 50.0, 15.0);
  EXPECT_FALSE(localizer.derive_intra_as(0).ok());
  EXPECT_FALSE(localizer.derive_intra_as(7).ok());
}

}  // namespace
}  // namespace debuglet::core
