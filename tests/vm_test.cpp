#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet::vm {
namespace {

// Assembles, validates, instantiates and runs a source program.
RunOutcome run_source(std::string_view source,
                      std::vector<HostFunction> host = {},
                      ExecutionLimits limits = {}) {
  auto module = assemble(source);
  EXPECT_TRUE(module.ok()) << module.error_message();
  auto valid = validate(*module);
  EXPECT_TRUE(valid.ok()) << valid.error_message();
  auto instance = Instance::create(std::move(*module), std::move(host),
                                   limits);
  EXPECT_TRUE(instance.ok()) << instance.error_message();
  return instance->run();
}

TEST(Interpreter, ConstReturn) {
  auto out = run_source(R"(
    func run_debuglet
      const 42
      return
    end
  )");
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 42);
}

TEST(Interpreter, Arithmetic) {
  auto out = run_source(R"(
    func run_debuglet
      const 10
      const 3
      mul          ; 30
      const 4
      sub          ; 26
      const 5
      div_s        ; 5
      const 2
      rem_s        ; 1
      const 7
      add          ; 8
      return
    end
  )");
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 8);
}

TEST(Interpreter, BitwiseAndShifts) {
  auto out = run_source(R"(
    func run_debuglet
      const 12
      const 10
      and          ; 8
      const 1
      or           ; 9
      const 15
      xor          ; 6
      const 2
      shl          ; 24
      const 1
      shr_u        ; 12
      return
    end
  )");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value, 12);
}

TEST(Interpreter, NegativeShrSKeepsSign) {
  auto out = run_source(R"(
    func run_debuglet
      const -8
      const 1
      shr_s
      return
    end
  )");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value, -4);
}

TEST(Interpreter, Comparisons) {
  auto out = run_source(R"(
    func run_debuglet
      const 3
      const 5
      lt_s         ; 1
      const 1
      eq           ; 1
      eqz          ; 0
      eqz          ; 1
      return
    end
  )");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value, 1);
}

TEST(Interpreter, LoopSumsOneToTen) {
  auto out = run_source(R"(
    func run_debuglet locals 2
    top:
      local.get 0
      const 10
      ge_s
      jump_if done
      local.get 0
      const 1
      add
      local.set 0
      local.get 1
      local.get 0
      add
      local.set 1
      jump top
    done:
      local.get 1
      return
    end
  )");
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 55);
}

TEST(Interpreter, FunctionCallsAndRecursion) {
  auto out = run_source(R"(
    func run_debuglet
      const 10
      call fib
      return
    end
    func fib params 1
      local.get 0
      const 2
      lt_s
      jump_if base
      local.get 0
      const 1
      sub
      call fib
      local.get 0
      const 2
      sub
      call fib
      add
      return
    base:
      local.get 0
      return
    end
  )");
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 55);
}

TEST(Interpreter, GlobalsPersistAcrossCalls) {
  auto module = assemble(R"(
    global 100
    func run_debuglet
      global.get 0
      const 1
      add
      global.set 0
      global.get 0
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  auto inst = Instance::create(std::move(*module), {});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->run().value, 101);
  EXPECT_EQ(inst->run().value, 102);
}

TEST(Interpreter, MemoryLoadStore) {
  auto out = run_source(R"(
    memory 256
    func run_debuglet
      const 16
      const -123456789
      store64
      const 8
      load64 8     ; load from 8 + 8 = 16
      return
    end
  )");
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, -123456789);
}

TEST(Interpreter, Store8Load8Masks) {
  auto out = run_source(R"(
    memory 64
    func run_debuglet
      const 0
      const 511     ; 0x1FF -> stored as 0xFF
      store8
      const 0
      load8
      return
    end
  )");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value, 0xFF);
}

// --- Traps ---------------------------------------------------------------

TEST(Traps, DivideByZero) {
  auto out = run_source(R"(
    func run_debuglet
      const 1
      const 0
      div_s
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kDivideByZero);
}

TEST(Traps, MemoryOutOfBounds) {
  auto out = run_source(R"(
    memory 64
    func run_debuglet
      const 60
      load64
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kMemoryOutOfBounds);
}

TEST(Traps, NegativeAddress) {
  auto out = run_source(R"(
    memory 64
    func run_debuglet
      const -1
      load8
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kMemoryOutOfBounds);
}

TEST(Traps, OutOfFuel) {
  ExecutionLimits limits;
  limits.fuel = 100;
  auto out = run_source(R"(
    func run_debuglet
    top:
      jump top
    end
  )",
                        {}, limits);
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kOutOfFuel);
  EXPECT_EQ(out.fuel_used, 100u);
}

TEST(Traps, CallDepthExceeded) {
  auto out = run_source(R"(
    func run_debuglet
      call f
      return
    end
    func f
      call f
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kCallDepthExceeded);
}

TEST(Traps, ExplicitAbort) {
  auto out = run_source(R"(
    func run_debuglet
      abort 7
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kAbort);
  EXPECT_NE(out.trap_message.find("7"), std::string::npos);
}

TEST(Traps, StackUnderflow) {
  auto out = run_source(R"(
    func run_debuglet
      drop
      const 0
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kStackUnderflow);
}

TEST(Traps, IntegerOverflowOnDiv) {
  auto out = run_source(R"(
    func run_debuglet
      const -9223372036854775808
      const -1
      div_s
      return
    end
  )");
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kIntegerOverflow);
}

// --- Host functions ------------------------------------------------------

TEST(Host, SyncHostFunctionCalled) {
  std::int64_t seen = 0;
  std::vector<HostFunction> host;
  host.push_back(HostFunction{
      "double_it", 1,
      [&seen](Instance&, std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        seen = args[0];
        return args[0] * 2;
      },
      false});
  auto out = run_source(R"(
    import double_it
    func run_debuglet
      const 21
      call_host double_it
      return
    end
  )",
                        std::move(host));
  ASSERT_TRUE(out.ok()) << out.trap_message;
  EXPECT_EQ(out.value, 42);
  EXPECT_EQ(seen, 21);
  EXPECT_EQ(out.host_calls, 1u);
}

TEST(Host, HostErrorTraps) {
  std::vector<HostFunction> host;
  host.push_back(HostFunction{
      "boom", 0,
      [](Instance&, std::span<const std::int64_t>) -> Result<std::int64_t> {
        return fail("kaput");
      },
      false});
  auto out = run_source(R"(
    import boom
    func run_debuglet
      call_host boom
      return
    end
  )",
                        std::move(host));
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kHostError);
  EXPECT_NE(out.trap_message.find("kaput"), std::string::npos);
}

TEST(Host, UnresolvedImportFailsInstantiation) {
  auto module = assemble(R"(
    import missing
    func run_debuglet
      const 0
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  EXPECT_FALSE(Instance::create(std::move(*module), {}).ok());
}

TEST(Host, AsyncImportSuspendsAndResumes) {
  std::vector<HostFunction> host;
  host.push_back(HostFunction{"wait_for", 1, nullptr, true});
  auto module = assemble(R"(
    import wait_for
    func run_debuglet
      const 9
      call_host wait_for
      const 1
      add
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  auto inst = Instance::create(std::move(*module), std::move(host));
  ASSERT_TRUE(inst.ok());
  auto exec = Execution::start_entry(*inst);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->step(), Execution::State::kBlocked);
  EXPECT_EQ(exec->block().import_name, "wait_for");
  ASSERT_EQ(exec->block().args.size(), 1u);
  EXPECT_EQ(exec->block().args[0], 9);
  exec->resume(100);
  EXPECT_EQ(exec->step(), Execution::State::kDone);
  ASSERT_TRUE(exec->outcome().ok());
  EXPECT_EQ(exec->outcome().value, 101);
}

TEST(Host, AsyncImportInSynchronousRunTraps) {
  std::vector<HostFunction> host;
  host.push_back(HostFunction{"sleepy", 0, nullptr, true});
  auto module = assemble(R"(
    import sleepy
    func run_debuglet
      call_host sleepy
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  auto inst = Instance::create(std::move(*module), std::move(host));
  ASSERT_TRUE(inst.ok());
  auto out = inst->run();
  ASSERT_TRUE(out.trapped);
  EXPECT_EQ(out.trap, TrapKind::kHostError);
}

TEST(Host, FailWhileBlockedTraps) {
  std::vector<HostFunction> host;
  host.push_back(HostFunction{"wait", 0, nullptr, true});
  auto module = assemble(R"(
    import wait
    func run_debuglet
      call_host wait
      return
    end
  )");
  auto inst = Instance::create(std::move(*module), std::move(host));
  auto exec = Execution::start_entry(*inst);
  ASSERT_EQ(exec->step(), Execution::State::kBlocked);
  exec->fail("deadline");
  ASSERT_EQ(exec->state(), Execution::State::kDone);
  EXPECT_TRUE(exec->outcome().trapped);
}

// --- Buffers -------------------------------------------------------------

TEST(Buffers, HostReadsAndWritesNamedBuffers) {
  auto module = assemble(R"(
    memory 4096
    buffer udp_send_buffer 1024 256
    buffer output_buffer 2048 128
    func run_debuglet
      const 1024
      const 77
      store64
      const 0
      return
    end
  )");
  ASSERT_TRUE(module.ok());
  auto inst = Instance::create(std::move(*module), {});
  ASSERT_TRUE(inst.ok());
  ASSERT_TRUE(inst->run().ok());
  auto buf = inst->read_buffer("udp_send_buffer");
  ASSERT_TRUE(buf.ok());
  ASSERT_EQ(buf->size(), 256u);
  EXPECT_EQ((*buf)[0], 77);
  EXPECT_FALSE(inst->read_buffer("nonexistent").ok());
  const Bytes data = bytes_of("result!");
  EXPECT_TRUE(inst->write_buffer("output_buffer",
                                 BytesView(data.data(), data.size())).ok());
  const Bytes too_big(4096, 1);
  EXPECT_FALSE(inst->write_buffer("output_buffer",
                                  BytesView(too_big.data(), too_big.size()))
                   .ok());
}

TEST(Buffers, MemoryAccessorsBoundsChecked) {
  auto module = assemble(R"(
    memory 128
    func run_debuglet
      const 0
      return
    end
  )");
  auto inst = Instance::create(std::move(*module), {});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst->read_memory(0, 128).ok());
  EXPECT_FALSE(inst->read_memory(1, 128).ok());
  const Bytes data(64, 0xAB);
  EXPECT_TRUE(inst->write_memory(64, BytesView(data.data(), 64)).ok());
  EXPECT_FALSE(inst->write_memory(65, BytesView(data.data(), 64)).ok());
}

}  // namespace
}  // namespace debuglet::vm
