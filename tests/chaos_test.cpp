// Chaos-hardened control plane: executor kill/restart, byzantine signers,
// resilient measurement retry/failover, and degraded-mode localization.
#include <gtest/gtest.h>

#include "core/debuglet.hpp"

namespace debuglet::core {
namespace {

using net::Protocol;

constexpr double kHopMs = 5.0;

ResilientRttRequest make_request(topology::InterfaceKey client,
                                 topology::InterfaceKey server) {
  ResilientRttRequest request;
  request.client_key = client;
  request.server_key = server;
  request.probe_count = 6;
  request.interval_ms = 100;
  return request;
}

TEST(Chaos, DeadExecutorTriggersFailoverToSameSegment) {
  DebugletSystem system(simnet::build_chain_scenario(6, 1234, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  // The server-side executor is dead before the purchase: its slots are
  // still on-chain (the chain has no liveness notion), so the first
  // attempt buys a slot nobody will serve.
  auto victim = system.agent(topology::InterfaceKey{5, 1});
  ASSERT_TRUE(victim.ok());
  (*victim)->kill();
  EXPECT_FALSE((*victim)->alive());

  auto rm = initiator.measure_rtt_resilient(
      make_request(topology::InterfaceKey{2, 2},
                   topology::InterfaceKey{5, 1}));
  ASSERT_TRUE(rm.ok()) << rm.error_message();
  EXPECT_GE(rm->attempts, 2u);
  EXPECT_GE(rm->failovers, 1u);
  // The surviving interface of the same AS serves the same segment.
  EXPECT_EQ(rm->server_key, (topology::InterfaceKey{5, 2}));
  auto summary = summarize_rtt(rm->outcome.client, 6);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->probes_answered, 6u);

  bool saw_missing = false, saw_failover = false;
  for (const MeasurementIncident& incident : rm->incidents) {
    saw_missing |= incident.kind == MeasurementIncident::Kind::kResultMissing;
    saw_failover |= incident.kind == MeasurementIncident::Kind::kFailover;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_failover);
}

TEST(Chaos, ByzantineResultIsRejectedThenRetried) {
  obs::ScopedRegistry scoped;
  DebugletSystem system(simnet::build_chain_scenario(6, 1234, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  auto liar = system.agent(topology::InterfaceKey{5, 1});
  ASSERT_TRUE(liar.ok());
  (*liar)->set_byzantine_mode(ByzantineMode::kBadSignature);

  auto rm = initiator.measure_rtt_resilient(
      make_request(topology::InterfaceKey{2, 2},
                   topology::InterfaceKey{5, 1}));
  ASSERT_TRUE(rm.ok()) << rm.error_message();
  EXPECT_GE(rm->byzantine_rejections, 1u);
  EXPECT_GE(rm->failovers, 1u);
  EXPECT_EQ(rm->server_key, (topology::InterfaceKey{5, 2}));
  EXPECT_GE(scoped.get().counter("core.results_rejected").value(), 1u);

  bool saw_rejection = false;
  for (const MeasurementIncident& incident : rm->incidents)
    saw_rejection |=
        incident.kind == MeasurementIncident::Kind::kVerificationRejected;
  EXPECT_TRUE(saw_rejection);
}

TEST(Chaos, TamperedOutputAlsoRejected) {
  DebugletSystem system(simnet::build_chain_scenario(4, 77, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  auto liar = system.agent(topology::InterfaceKey{3, 1});
  ASSERT_TRUE(liar.ok());
  (*liar)->set_byzantine_mode(ByzantineMode::kTamperedOutput);

  // Plain collect (no failover): the tampered side must classify as a
  // verification failure, NOT as "not yet published".
  auto handle = initiator.purchase_rtt_measurement(
      topology::InterfaceKey{2, 2}, topology::InterfaceKey{3, 1},
      Protocol::kUdp, 6, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  system.queue().run_until(handle->window_end + duration::seconds(2));
  CollectProbe probe = initiator.try_collect(*handle);
  EXPECT_FALSE(probe.ok());
  EXPECT_EQ(probe.server.error, CollectErrorKind::kVerificationFailed);
  EXPECT_EQ(probe.client.error, CollectErrorKind::kNone);
}

TEST(Chaos, TryCollectDistinguishesNotYetPublished) {
  DebugletSystem system(simnet::build_chain_scenario(4, 77, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  auto handle = initiator.purchase_rtt_measurement(
      topology::InterfaceKey{1, 2}, topology::InterfaceKey{4, 1},
      Protocol::kUdp, 6, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  // Before the window even starts nothing is published on either side.
  CollectProbe early = initiator.try_collect(*handle);
  EXPECT_FALSE(early.ok());
  EXPECT_EQ(early.client.error, CollectErrorKind::kNotPublished);
  EXPECT_EQ(early.server.error, CollectErrorKind::kNotPublished);
  EXPECT_TRUE(early.any(CollectErrorKind::kNotPublished));
  // After the window both publish and the probe carries the outcome.
  system.queue().run_until(handle->window_end + duration::seconds(2));
  CollectProbe late = initiator.try_collect(*handle);
  EXPECT_TRUE(late.ok());
  EXPECT_EQ(late.client.error, CollectErrorKind::kNone);
}

TEST(Chaos, KilledAgentServesAgainAfterRestart) {
  DebugletSystem system(simnet::build_chain_scenario(4, 4321, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  auto agent = system.agent(topology::InterfaceKey{3, 1});
  ASSERT_TRUE(agent.ok());
  (*agent)->kill();
  (*agent)->kill();  // idempotent
  ASSERT_TRUE((*agent)->restart().ok());
  EXPECT_TRUE((*agent)->alive());

  auto rm = initiator.measure_rtt_resilient(
      make_request(topology::InterfaceKey{2, 2},
                   topology::InterfaceKey{3, 1}));
  ASSERT_TRUE(rm.ok()) << rm.error_message();
  EXPECT_EQ(rm->attempts, 1u) << "a restarted executor serves first try";
  EXPECT_EQ(rm->failovers, 0u);
}

TEST(Chaos, SameSeedProducesIdenticalRetryFailoverTrace) {
  auto run_once = [](std::string& trace) {
    DebugletSystem system(simnet::build_chain_scenario(6, 777, kHopMs));
    Initiator initiator(system, 99, 2'000'000'000'000ULL);
    auto victim = system.agent(topology::InterfaceKey{5, 1});
    ASSERT_TRUE(victim.ok());
    (*victim)->kill();
    auto rm = initiator.measure_rtt_resilient(
        make_request(topology::InterfaceKey{2, 2},
                     topology::InterfaceKey{5, 1}));
    ASSERT_TRUE(rm.ok()) << rm.error_message();
    trace = rm->trace();
  };
  std::string first, second;
  run_once(first);
  run_once(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "chaos runs must be bit-identical under one seed";
}

TEST(Chaos, CrashedHostLosesEveryProbe) {
  // A crashed HOST (as opposed to a killed agent) still publishes results
  // — the chain is out of band — but every probe through it is dropped.
  DebugletSystem system(simnet::build_chain_scenario(4, 11, kHopMs));
  Initiator initiator(system, 99, 2'000'000'000'000ULL);
  simnet::HostFaultPlan plan;
  plan.crash(0, duration::hours(10));
  ASSERT_TRUE(system.network()
                  .install_host_faults(topology::InterfaceKey{4, 1}, plan)
                  .ok());
  auto handle = initiator.purchase_rtt_measurement(
      topology::InterfaceKey{1, 2}, topology::InterfaceKey{4, 1},
      Protocol::kUdp, 6, 100);
  ASSERT_TRUE(handle.ok()) << handle.error_message();
  system.queue().run_until(handle->window_end + duration::seconds(2));
  auto outcome = initiator.collect(*handle);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();
  auto summary = summarize_rtt(outcome->client, 6);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->probes_answered, 0u);
  EXPECT_DOUBLE_EQ(summary->loss_rate(), 1.0);
}

struct DegradedLocalizationFixture : ::testing::Test {
  DegradedLocalizationFixture()
      : system(simnet::build_chain_scenario(8, 777, kHopMs)),
        initiator(system, 31415, 4'000'000'000'000ULL) {}

  void inject_fault(std::size_t link, double delay_ms) {
    simnet::FaultSpec fault;
    fault.extra_delay_ms = delay_ms;
    fault.start = 0;
    fault.end = duration::hours(100);
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_egress(link),
                                  simnet::chain_ingress(link + 1), fault)
                    .ok());
    ASSERT_TRUE(system.network()
                    .inject_fault(simnet::chain_ingress(link + 1),
                                  simnet::chain_egress(link), fault)
                    .ok());
  }

  // Kills both border executors of `asn`: the AS goes completely dark, so
  // no failover within it can help and localization must degrade.
  void darken(topology::AsNumber asn) {
    for (topology::InterfaceId intf :
         system.network().topology().interfaces_of(asn)) {
      auto agent = system.agent(topology::InterfaceKey{asn, intf});
      ASSERT_TRUE(agent.ok());
      (*agent)->kill();
    }
  }

  FaultLocalizer make_localizer() {
    auto path = system.network().topology().shortest_path(1, 8);
    EXPECT_TRUE(path.ok());
    FaultCriteria criteria;
    criteria.per_link_rtt_ms = 2 * kHopMs + 0.5;
    criteria.slack_ms = 15.0;
    criteria.max_loss = 0.2;
    FaultLocalizer localizer(system, initiator, *path, criteria,
                             Protocol::kUdp, 8, 100);
    FaultLocalizer::Resilience resilience;
    resilience.use_retry = true;
    resilience.retry.max_attempts = 2;  // dark ASes fail fast
    localizer.set_resilience(resilience);
    return localizer;
  }

  DebugletSystem system;
  Initiator initiator;
};

TEST_F(DegradedLocalizationFixture, LinearBracketsFaultAcrossDarkAs) {
  inject_fault(5, 60.0);
  darken(6);  // path hop 5: the AS on the near side of the faulty link
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_FALSE(report->exact);
  EXPECT_LE(report->fault_link, 5u);
  EXPECT_GE(report->fault_link_hi, 5u);
  EXPECT_STREQ(report->confidence(), "bracketed");
  EXPECT_GT(report->segments_unmeasured, 0u);
  EXPECT_GT(report->links_unresolved, 0u);
  EXPECT_LT(report->coverage(), 1.0);
  EXPECT_FALSE(report->notes.empty());
}

TEST_F(DegradedLocalizationFixture, BinaryBracketsFaultAcrossDarkAs) {
  inject_fault(3, 60.0);
  darken(4);  // the preferred midpoint split for an 8-hop path
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(Strategy::kBinarySearch);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_LE(report->fault_link, 3u);
  EXPECT_GE(report->fault_link_hi, 3u);
  EXPECT_EQ(report->links_total, 7u);
}

TEST_F(DegradedLocalizationFixture, HealthyRunStaysExactAndFullCoverage) {
  inject_fault(5, 60.0);
  FaultLocalizer localizer = make_localizer();
  auto report = localizer.run(Strategy::kLinearSequential);
  ASSERT_TRUE(report.ok()) << report.error_message();
  ASSERT_TRUE(report->located);
  EXPECT_TRUE(report->exact);
  EXPECT_EQ(report->fault_link, 5u);
  EXPECT_EQ(report->fault_link_hi, 5u);
  EXPECT_STREQ(report->confidence(), "exact");
  EXPECT_DOUBLE_EQ(report->coverage(), 1.0);
  EXPECT_EQ(report->segments_unmeasured, 0u);
}

}  // namespace
}  // namespace debuglet::core
