#include <gtest/gtest.h>

#include "topology/topology.hpp"

namespace debuglet::topology {
namespace {

Topology make_chain(std::size_t n) {
  Topology t;
  for (std::size_t i = 1; i <= n; ++i)
    EXPECT_TRUE(t.add_as(static_cast<AsNumber>(i),
                         "AS" + std::to_string(i)).ok());
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_TRUE(t.add_link({static_cast<AsNumber>(i), 2},
                           {static_cast<AsNumber>(i + 1), 1}).ok());
  return t;
}

TEST(Topology, AddAsRejectsDuplicates) {
  Topology t;
  EXPECT_TRUE(t.add_as(1, "one").ok());
  EXPECT_FALSE(t.add_as(1, "one-again").ok());
  EXPECT_TRUE(t.has_as(1));
  EXPECT_FALSE(t.has_as(2));
  EXPECT_EQ(*t.as_name(1), "one");
  EXPECT_FALSE(t.as_name(2).ok());
}

TEST(Topology, AddLinkValidation) {
  Topology t;
  ASSERT_TRUE(t.add_as(1, "a").ok());
  ASSERT_TRUE(t.add_as(2, "b").ok());
  EXPECT_FALSE(t.add_link({1, 1}, {3, 1}).ok()) << "unknown AS";
  EXPECT_FALSE(t.add_link({1, 1}, {1, 2}).ok()) << "self link";
  EXPECT_FALSE(t.add_link({1, 0}, {2, 1}).ok()) << "interface 0 reserved";
  EXPECT_TRUE(t.add_link({1, 1}, {2, 1}).ok());
  EXPECT_FALSE(t.add_link({1, 1}, {2, 2}).ok()) << "interface reuse";
}

TEST(Topology, RemoteOf) {
  Topology t = make_chain(3);
  auto remote = t.remote_of({1, 2});
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(*remote, (InterfaceKey{2, 1}));
  EXPECT_FALSE(t.remote_of({1, 9}).ok());
  EXPECT_FALSE(t.remote_of({9, 1}).ok());
}

TEST(Topology, LinksReportedOnce) {
  Topology t = make_chain(4);
  const auto links = t.links();
  EXPECT_EQ(links.size(), 3u);
}

TEST(Topology, AddressMapping) {
  Topology t = make_chain(2);
  const InterfaceKey key{1, 2};
  const net::Ipv4Address addr = t.address_of(key);
  EXPECT_EQ(addr.to_string(), "10.0.1.2");
  auto back = t.key_of(addr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, key);
  EXPECT_FALSE(t.key_of(net::Ipv4Address(10, 9, 9, 9)).ok());
}

TEST(Topology, ShortestPathOnChain) {
  Topology t = make_chain(5);
  auto path = t.shortest_path(1, 5);
  ASSERT_TRUE(path.ok()) << path.error_message();
  ASSERT_EQ(path->length(), 5u);
  EXPECT_EQ(path->hops.front().asn, 1u);
  EXPECT_EQ(path->hops.front().ingress, 0);
  EXPECT_EQ(path->hops.front().egress, 2);
  EXPECT_EQ(path->hops[2].ingress, 1);
  EXPECT_EQ(path->hops[2].egress, 2);
  EXPECT_EQ(path->hops.back().asn, 5u);
  EXPECT_EQ(path->hops.back().egress, 0);
}

TEST(Topology, ShortestPathSelf) {
  Topology t = make_chain(2);
  auto path = t.shortest_path(1, 1);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->length(), 1u);
}

TEST(Topology, DisconnectedFails) {
  Topology t;
  ASSERT_TRUE(t.add_as(1, "a").ok());
  ASSERT_TRUE(t.add_as(2, "b").ok());
  EXPECT_FALSE(t.shortest_path(1, 2).ok());
}

TEST(Topology, ShortestPathPrefersFewerHops) {
  // Diamond with a shortcut: 1-2-4 (3 hops) vs 1-3a-3b-4 style longer path.
  Topology t;
  for (AsNumber a : {1u, 2u, 3u, 4u, 5u}) {
    ASSERT_TRUE(t.add_as(a, "AS" + std::to_string(a)).ok());
  }
  ASSERT_TRUE(t.add_link({1, 1}, {2, 1}).ok());
  ASSERT_TRUE(t.add_link({2, 2}, {4, 1}).ok());
  ASSERT_TRUE(t.add_link({1, 2}, {3, 1}).ok());
  ASSERT_TRUE(t.add_link({3, 2}, {5, 1}).ok());
  ASSERT_TRUE(t.add_link({5, 2}, {4, 2}).ok());
  auto path = t.shortest_path(1, 4);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->length(), 3u);
  EXPECT_EQ(path->hops[1].asn, 2u);
}

TEST(Topology, FindPathsEnumeratesAlternatives) {
  Topology t;
  for (AsNumber a : {1u, 2u, 3u, 4u}) {
    ASSERT_TRUE(t.add_as(a, "").ok());
  }
  // Two disjoint 3-hop paths 1-2-4 and 1-3-4.
  ASSERT_TRUE(t.add_link({1, 1}, {2, 1}).ok());
  ASSERT_TRUE(t.add_link({2, 2}, {4, 1}).ok());
  ASSERT_TRUE(t.add_link({1, 2}, {3, 1}).ok());
  ASSERT_TRUE(t.add_link({3, 2}, {4, 2}).ok());
  auto paths = t.find_paths(1, 4, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops[1].asn, 2u) << "deterministic tie-break";
  EXPECT_EQ(paths[1].hops[1].asn, 3u);
}

TEST(Topology, FindPathsRespectsLimitAndMaxHops) {
  Topology t = make_chain(6);
  EXPECT_EQ(t.find_paths(1, 6, 10).size(), 1u);
  EXPECT_TRUE(t.find_paths(1, 6, 10, 3).empty()) << "path needs 6 hops";
  EXPECT_TRUE(t.find_paths(1, 6, 0).empty());
}

TEST(AsPath, LinkAfter) {
  Topology t = make_chain(3);
  auto path = *t.shortest_path(1, 3);
  const auto [from, to] = path.link_after(0);
  EXPECT_EQ(from, (InterfaceKey{1, 2}));
  EXPECT_EQ(to, (InterfaceKey{2, 1}));
  EXPECT_THROW(path.link_after(2), std::out_of_range);
}

TEST(AsPath, SubpathZeroesOuterInterfaces) {
  Topology t = make_chain(5);
  auto path = *t.shortest_path(1, 5);
  auto sub = path.subpath(1, 3);
  ASSERT_EQ(sub.length(), 3u);
  EXPECT_EQ(sub.hops.front().asn, 2u);
  EXPECT_EQ(sub.hops.front().ingress, 0);
  EXPECT_NE(sub.hops.front().egress, 0);
  EXPECT_EQ(sub.hops.back().egress, 0);
  EXPECT_THROW(path.subpath(3, 1), std::out_of_range);
  EXPECT_THROW(path.subpath(0, 9), std::out_of_range);
}

TEST(AsPath, ReversePath) {
  Topology t = make_chain(4);
  auto path = *t.shortest_path(1, 4);
  auto rev = reverse_path(path);
  ASSERT_EQ(rev.length(), 4u);
  EXPECT_EQ(rev.hops.front().asn, 4u);
  EXPECT_EQ(rev.hops.front().ingress, 0);
  EXPECT_EQ(rev.hops.back().asn, 1u);
  EXPECT_EQ(rev.hops.back().egress, 0);
  // Reversing twice is the identity.
  EXPECT_EQ(reverse_path(rev), path);
}

TEST(InterfaceKey, Formatting) {
  EXPECT_EQ((InterfaceKey{64500, 3}).to_string(), "AS64500#3");
}

}  // namespace
}  // namespace debuglet::topology
