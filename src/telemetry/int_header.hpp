// In-band network telemetry (INT) header.
//
// Probe packets opt into path telemetry by carrying an IntHeader as their
// application-payload prefix. Each forwarding device the simulator walks
// appends one bounded HopRecord — AS and interface identity, ingress and
// egress timestamps (hop latency and residence time), queue depth at
// enqueue, a drop-counter snapshot, and the wire-fault tally of the link
// just crossed — TPP / P4-INT style, so ONE end-to-end probe carries
// whole-path visibility and the localizer needs a single round instead of
// a binary search (paper §VI-D collapsed to O(1)).
//
// The record stack is pre-allocated at build time: the wire size is fixed
// by max_hops and never changes in flight, so IP/UDP lengths stay stable
// and pushing records is checksum-neutral at layer 3. Pushing past the
// budget sets the TRUNCATED flag and drops the record (explicit truncation
// semantics, never reallocation). A trailing FNV-1a digest is recomputed
// on every push; receivers reject damaged stacks with a typed error,
// mirroring net::ParseErrorKind discipline.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace debuglet::telemetry {

/// Why an INT payload failed to parse. Receive paths branch on the kind
/// and export it as the `reason` label of `telemetry.parse_rejected`.
enum class IntParseError : std::uint8_t {
  kNone = 0,
  kTruncated,        // buffer shorter than the fixed layout demands
  kBadMagic,         // payload does not start with "DINT"
  kBadVersion,       // unknown header version
  kBadHopCount,      // hop_count > max_hops or max_hops out of range
  kDigestMismatch,   // in-flight damage to the record stack
};

/// Stable label text for a kind ("digest_mismatch", ...).
const char* int_parse_error_name(IntParseError kind);

/// One per-hop telemetry record, appended by the ingress border router of
/// the AS that terminates each inter-domain link crossing.
struct HopRecord {
  std::uint32_t asn = 0;                 // recording AS
  std::uint16_t ingress_interface = 0;   // interface the packet arrived on
  std::uint16_t egress_interface = 0;    // 0 at the path's final AS
  std::uint64_t ingress_ns = 0;          // arrival at this AS (sim clock)
  std::uint64_t egress_ns = 0;           // departure toward the next link
  std::uint32_t queue_depth = 0;         // active episodes on the link
  std::uint32_t drops_seen = 0;          // network drop counter snapshot
  std::uint32_t wire_faults = 0;         // LinkIntegrityStats total so far

  static constexpr std::size_t kSize = 36;
  bool operator==(const HopRecord&) const = default;
};

/// The versioned, digest-protected INT stack a probe carries.
class IntHeader {
 public:
  static constexpr std::uint32_t kMagic = 0x544E4944;  // "DINT", little-endian
  static constexpr std::uint8_t kVersion = 1;
  /// Hard hop budget: with 36-byte records this caps the INT block at
  /// 52 + 32*36 = 1204 bytes, inside any sane probe MTU.
  static constexpr std::uint8_t kMaxHopsLimit = 32;
  static constexpr std::size_t kRegisterCount = 4;
  static constexpr std::uint8_t kNoAlarmHop = 0xFF;

  // Flag bits.
  static constexpr std::uint8_t kFlagHopProgram = 0x01;  // run per-hop DVM
  static constexpr std::uint8_t kFlagTruncated = 0x02;   // budget exceeded
  static constexpr std::uint8_t kFlagFellBack = 0x04;    // program trapped
  static constexpr std::uint8_t kFlagAlarm = 0x08;       // program alarmed

  /// Builds an empty header with room for `max_hops` records (clamped to
  /// [1, kMaxHopsLimit]). `request_hop_program` asks every traversed
  /// device to run the installed hop program against this packet.
  static IntHeader reserve(std::uint8_t max_hops,
                           bool request_hop_program = false);

  /// Appends a record. Returns false — and latches the TRUNCATED flag —
  /// when the stack is full; the record is dropped, the wire size is
  /// unchanged either way.
  bool push(const HopRecord& record);

  std::uint8_t hop_count() const { return hop_count_; }
  std::uint8_t max_hops() const { return max_hops_; }
  std::span<const HopRecord> records() const {
    return {records_.data(), hop_count_};
  }
  const HopRecord& record(std::size_t i) const { return records_[i]; }

  bool hop_program_requested() const { return flags_ & kFlagHopProgram; }
  bool truncated() const { return flags_ & kFlagTruncated; }
  bool fell_back() const { return flags_ & kFlagFellBack; }
  bool alarmed() const { return flags_ & kFlagAlarm; }
  std::uint8_t flags() const { return flags_; }
  std::uint8_t alarm_hop() const { return alarm_hop_; }

  /// Latches the fell-back flag: the hop program trapped somewhere along
  /// the path and plain INT continued without it.
  void mark_fell_back() { flags_ |= kFlagFellBack; }
  /// Raises the alarm at hop `hop` (first alarm wins).
  void raise_alarm(std::uint8_t hop);

  /// The carried hop-register file the per-hop DVM program reads/writes.
  std::array<std::int64_t, kRegisterCount>& registers() { return registers_; }
  const std::array<std::int64_t, kRegisterCount>& registers() const {
    return registers_;
  }

  /// Wire size of a header with the given budget (fixed in flight).
  static constexpr std::size_t wire_size(std::uint8_t max_hops) {
    return kFixedSize + kRegisterCount * 8 +
           static_cast<std::size_t>(max_hops) * HopRecord::kSize + 8;
  }
  std::size_t wire_size() const { return wire_size(max_hops_); }

  /// Serializes with a freshly computed trailing digest.
  Bytes serialize() const;

  /// Parses an INT block from the front of `data` (trailing payload bytes
  /// are ignored), verifying magic, version, bounds, and digest. On
  /// failure `kind` (when non-null) receives the typed cause.
  static Result<IntHeader> parse(BytesView data,
                                 IntParseError* kind = nullptr);

  /// Cheap predicate: does this payload start with the INT magic? Used by
  /// the forwarding hot path to decide whether a packet opted in before
  /// paying for a full parse.
  static bool looks_like_int(BytesView payload);

  /// Bytes a leading INT block occupies in `payload` (0 when the payload
  /// does not start with a plausible block). Lets consumers that care
  /// about the APPLICATION bytes — DPI classifiers, payload manglers —
  /// skip the network-metadata prefix without a full digest-checked parse.
  static std::size_t prefix_size(BytesView payload);

  bool operator==(const IntHeader&) const = default;

 private:
  static constexpr std::size_t kFixedSize = 12;  // magic..reserved

  std::uint8_t flags_ = 0;
  std::uint8_t max_hops_ = 1;
  std::uint8_t hop_count_ = 0;
  std::uint8_t alarm_hop_ = kNoAlarmHop;
  std::array<std::int64_t, kRegisterCount> registers_{};
  std::array<HopRecord, kMaxHopsLimit> records_{};
};

/// FNV-1a 64-bit over a byte span — the digest the INT trailer carries.
std::uint64_t int_digest(BytesView data);

}  // namespace debuglet::telemetry
