#include "telemetry/hop_program.hpp"

#include "vm/validator.hpp"

namespace debuglet::telemetry {

Result<std::unique_ptr<HopProgramRuntime>> HopProgramRuntime::create(
    vm::Module module, HopProgramLimits limits) {
  if (!module.host_imports.empty())
    return fail("hop program: host imports are not allowed on the "
                "forwarding path");
  if (module.globals.size() < IntHeader::kRegisterCount)
    return fail("hop program: needs at least " +
                std::to_string(IntHeader::kRegisterCount) +
                " globals (the carried hop registers)");
  vm::ValidationLimits vl;
  vl.max_memory = limits.max_memory;
  vl.max_functions = 8;
  vl.max_code_length = limits.max_code_length;
  vl.max_locals = 32;
  vl.max_globals = 16;
  vl.entry_param_count = 4;  // (asn, hop_latency_ns, queue_depth, wire_faults)
  if (auto s = vm::validate(module, vl); !s)
    return fail("hop program: " + s.error_message());
  const int entry = module.function_index(vm::kEntryPointName);
  if (module.functions[static_cast<std::size_t>(entry)].param_count != 4)
    return fail("hop program: run_debuglet must take (asn, hop_latency_ns, "
                "queue_depth, wire_faults)");
  vm::ExecutionLimits el;
  el.fuel = limits.fuel_per_hop;
  std::vector<std::int64_t> initial_globals = module.globals;
  auto instance = vm::Instance::create(std::move(module), {}, el);
  if (!instance) return instance.error();
  return std::unique_ptr<HopProgramRuntime>(new HopProgramRuntime(
      std::move(*instance), limits, std::move(initial_globals)));
}

HopRunResult HopProgramRuntime::run_hop(IntHeader& header,
                                        std::uint8_t hop_index,
                                        const HopRecord& record,
                                        std::int64_t hop_latency_ns) {
  HopRunResult out;
  out.ran = true;
  // Model a fresh per-device instance: every global starts at its module
  // initial value; only the header's four carried registers travel between
  // hops (and at the path's first hop there is nothing to carry yet).
  for (std::size_t i = 0; i < initial_globals_.size(); ++i)
    (void)instance_.set_global(i, initial_globals_[i]);
  if (hop_index > 0)
    for (std::size_t i = 0; i < IntHeader::kRegisterCount; ++i)
      (void)instance_.set_global(i, header.registers()[i]);
  const std::int64_t args[4] = {
      static_cast<std::int64_t>(record.asn), hop_latency_ns,
      static_cast<std::int64_t>(record.queue_depth),
      static_cast<std::int64_t>(record.wire_faults)};
  const vm::RunOutcome outcome =
      instance_.run_function(vm::kEntryPointName, args);
  out.fuel_used = outcome.fuel_used;
  if (outcome.trapped) {
    // The header's registers stay at their pre-hop values (the program
    // may have half-written the globals); plain INT continues.
    out.trapped = true;
    header.mark_fell_back();
    return out;
  }
  for (std::size_t i = 0; i < IntHeader::kRegisterCount; ++i)
    header.registers()[i] = instance_.globals()[i];
  if (outcome.value != 0) {
    header.raise_alarm(hop_index);
    out.alarmed = true;
  }
  return out;
}

vm::Module make_latency_watchdog(std::int64_t threshold_ns) {
  using vm::Opcode;
  vm::Module m;
  m.memory_size = 256;
  // g0 = max hop latency, g1 = hops executed, g2 = threshold,
  // g3 = threshold crossings.
  m.globals = {0, 0, threshold_ns, 0};
  vm::Function f;
  f.name = vm::kEntryPointName;
  f.param_count = 4;  // (asn, hop_latency_ns, queue_depth, wire_faults)
  f.code = {
      {Opcode::kGlobalGet, 1},  //  0: ++g1
      {Opcode::kConst, 1},      //  1
      {Opcode::kAdd, 0},        //  2
      {Opcode::kGlobalSet, 1},  //  3
      {Opcode::kLocalGet, 1},   //  4: if (latency > g0) g0 = latency
      {Opcode::kGlobalGet, 0},  //  5
      {Opcode::kGtS, 0},        //  6
      {Opcode::kJumpIfZ, 10},   //  7
      {Opcode::kLocalGet, 1},   //  8
      {Opcode::kGlobalSet, 0},  //  9
      {Opcode::kLocalGet, 1},   // 10: if (latency > g2) { ++g3; return 1 }
      {Opcode::kGlobalGet, 2},  // 11
      {Opcode::kGtS, 0},        // 12
      {Opcode::kJumpIfZ, 20},   // 13
      {Opcode::kGlobalGet, 3},  // 14
      {Opcode::kConst, 1},      // 15
      {Opcode::kAdd, 0},        // 16
      {Opcode::kGlobalSet, 3},  // 17
      {Opcode::kConst, 1},      // 18
      {Opcode::kReturn, 0},     // 19
      {Opcode::kConst, 0},      // 20
      {Opcode::kReturn, 0},     // 21
  };
  m.functions.push_back(std::move(f));
  return m;
}

vm::Module make_fuel_burner() {
  using vm::Opcode;
  vm::Module m;
  m.memory_size = 256;
  m.globals = {0, 0, 0, 0};
  vm::Function f;
  f.name = vm::kEntryPointName;
  f.param_count = 4;
  f.code = {
      {Opcode::kConst, 0},  // 0: spin until the fuel cap traps the run
      {Opcode::kDrop, 0},   // 1
      {Opcode::kJump, 0},   // 2
  };
  m.functions.push_back(std::move(f));
  return m;
}

}  // namespace debuglet::telemetry
