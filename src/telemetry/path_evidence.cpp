#include "telemetry/path_evidence.hpp"

#include <algorithm>

namespace debuglet::telemetry {

Result<PathEvidence> PathEvidence::from_header(const IntHeader& header,
                                               const topology::AsPath& path,
                                               SimTime sent_at) {
  if (path.length() < 2)
    return fail("path evidence: path has no inter-domain links");
  const std::size_t links = path.length() - 1;
  if (header.truncated())
    return fail("path evidence: record stack truncated in flight (" +
                std::to_string(header.hop_count()) + "/" +
                std::to_string(header.max_hops()) + " hops)");
  if (header.hop_count() != links)
    return fail("path evidence: " + std::to_string(header.hop_count()) +
                " records for " + std::to_string(links) + " links");

  PathEvidence out;
  out.header_ = header;
  out.observations_.reserve(links);
  // Record k is appended by the ingress border router of path hop k+1; its
  // ingress timestamp closes link k's crossing and its egress timestamp
  // opens link k+1's.
  std::uint64_t previous_egress_ns = static_cast<std::uint64_t>(sent_at);
  for (std::size_t k = 0; k < links; ++k) {
    const HopRecord& rec = header.record(k);
    if (rec.asn != path.hops[k + 1].asn)
      return fail("path evidence: record " + std::to_string(k) + " names AS" +
                  std::to_string(rec.asn) + ", path expects AS" +
                  std::to_string(path.hops[k + 1].asn));
    if (rec.ingress_ns < previous_egress_ns || rec.egress_ns < rec.ingress_ns)
      return fail("path evidence: timestamps not monotonic at record " +
                  std::to_string(k));
    LinkObservation obs;
    obs.link = k;
    obs.one_way_ms =
        duration::to_ms(static_cast<SimTime>(rec.ingress_ns) -
                        static_cast<SimTime>(previous_egress_ns));
    obs.residence_ms = duration::to_ms(static_cast<SimTime>(rec.egress_ns) -
                                       static_cast<SimTime>(rec.ingress_ns));
    obs.queue_depth = rec.queue_depth;
    obs.wire_faults = rec.wire_faults;
    obs.record = rec;
    out.observations_.push_back(obs);
    previous_egress_ns = rec.egress_ns;
  }
  return out;
}

std::size_t PathEvidence::slowest_link() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < observations_.size(); ++i)
    if (observations_[i].one_way_ms > observations_[best].one_way_ms) best = i;
  return best;
}

std::vector<std::size_t> PathEvidence::links_over(double threshold_ms) const {
  std::vector<std::size_t> out;
  for (const LinkObservation& obs : observations_)
    if (obs.one_way_ms > threshold_ms) out.push_back(obs.link);
  return out;
}

}  // namespace debuglet::telemetry
