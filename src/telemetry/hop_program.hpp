// Per-hop DVM snippets — "millions of little minions" for the simulator.
//
// A hop program is a validated DVM mini-module installed on the network
// (the every-router Debuglet deployment of paper §VI-G). Probes whose INT
// header sets the hop-program flag get the program run ONCE PER TRAVERSED
// DEVICE against a four-slot hop-register file carried in the header
// (TPP-style): the entry point receives that hop's observations as
// arguments, reads and writes the carried registers through DVM globals
// 0..3, and its return value can raise an in-band alarm.
//
// ABI (see docs/TELEMETRY.md):
//   run_debuglet(asn, hop_latency_ns, queue_depth, wire_faults) -> i64
//     globals[0..3]  = carried hop registers (loaded before, stored after)
//     return 0       = continue quietly
//     return != 0    = raise the alarm flag, recording this hop
//
// Execution is strictly fuel-capped per hop: every run is a fresh
// Execution with HopProgramLimits::fuel_per_hop fuel, reusing the
// validator and the decode-once fast engine the executor path already
// trusts. A trap (out of fuel, memory fault, abort) latches the
// fell-back flag on the packet and plain INT continues — telemetry never
// takes the packet down with it.
#pragma once

#include <memory>
#include <vector>

#include "telemetry/int_header.hpp"
#include "util/result.hpp"
#include "vm/interpreter.hpp"

namespace debuglet::telemetry {

/// Per-hop execution budget. Deliberately tiny next to the executor's
/// default 10M: a hop program runs on the forwarding path of every device.
struct HopProgramLimits {
  std::uint64_t fuel_per_hop = 4096;
  std::uint32_t max_memory = 4096;       // bytes of linear memory
  std::uint32_t max_code_length = 512;   // instructions per function
};

/// The outcome of running the installed program for one hop.
struct HopRunResult {
  bool ran = false;      // false = no program installed / not requested
  bool trapped = false;  // program died; INT falls back to plain records
  bool alarmed = false;  // program returned non-zero
  std::uint64_t fuel_used = 0;
};

/// A validated, instantiated hop program shared by every device of one
/// simulated network. Translation (decode-once dispatch) happens at
/// install; each hop pays only a fresh fuel-capped Execution.
class HopProgramRuntime {
 public:
  /// Validates and instantiates `module`. Rejects modules with host
  /// imports (hop programs get no ambient authority at all), with fewer
  /// globals than the register file, or whose entry point does not take
  /// exactly the four ABI arguments.
  static Result<std::unique_ptr<HopProgramRuntime>> create(
      vm::Module module, HopProgramLimits limits = {});

  /// Runs the program for one hop, as if on a fresh per-device instance:
  /// globals reset to the module's initial values, then (after the first
  /// hop) globals 0..3 are overlaid with `header`'s carried registers —
  /// the ONLY state that travels between devices. Executes
  /// run_debuglet(asn, hop_latency_ns, queue_depth, wire_faults) under
  /// the per-hop fuel cap, stores globals 0..3 back into the header, and
  /// raises the header's alarm on a non-zero return. On a trap the
  /// header's registers are left as they were before the hop and the
  /// fell-back flag latches.
  HopRunResult run_hop(IntHeader& header, std::uint8_t hop_index,
                       const HopRecord& record, std::int64_t hop_latency_ns);

  const HopProgramLimits& limits() const { return limits_; }

 private:
  HopProgramRuntime(vm::Instance instance, HopProgramLimits limits,
                    std::vector<std::int64_t> initial_globals)
      : instance_(std::move(instance)),
        limits_(limits),
        initial_globals_(std::move(initial_globals)) {}

  vm::Instance instance_;
  HopProgramLimits limits_;
  /// The module's declared global values — restored before every hop so
  /// the shared simulator instance behaves like a fresh instance per
  /// device (program constants such as a watchdog threshold survive).
  std::vector<std::int64_t> initial_globals_;
};

/// A canned hop program: tracks the maximum hop latency in register 0 and
/// the hops executed in register 1, and raises the alarm when a hop's
/// latency exceeds `threshold_ns` (register 2 holds the threshold,
/// register 3 counts threshold crossings). The watchdog the CLI and the
/// tests deploy.
vm::Module make_latency_watchdog(std::int64_t threshold_ns);

/// A deliberately broken hop program: spins until the per-hop fuel cap
/// traps it. Exercises the trap -> plain-INT fallback path.
vm::Module make_fuel_burner();

}  // namespace debuglet::telemetry
