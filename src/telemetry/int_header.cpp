#include "telemetry/int_header.hpp"

#include <algorithm>

namespace debuglet::telemetry {

namespace {

// Records the typed cause (when the caller asked for it) and builds the
// human-readable error in one step, same shape as net/packet's reject().
Error reject(IntParseError* kind, IntParseError k, std::string message) {
  if (kind != nullptr) *kind = k;
  return fail(std::move(message));
}

void write_record(BytesWriter& w, const HopRecord& r) {
  w.u32(r.asn);
  w.u16(r.ingress_interface);
  w.u16(r.egress_interface);
  w.u64(r.ingress_ns);
  w.u64(r.egress_ns);
  w.u32(r.queue_depth);
  w.u32(r.drops_seen);
  w.u32(r.wire_faults);
}

}  // namespace

const char* int_parse_error_name(IntParseError kind) {
  switch (kind) {
    case IntParseError::kNone: return "none";
    case IntParseError::kTruncated: return "truncated";
    case IntParseError::kBadMagic: return "bad_magic";
    case IntParseError::kBadVersion: return "bad_version";
    case IntParseError::kBadHopCount: return "bad_hop_count";
    case IntParseError::kDigestMismatch: return "digest_mismatch";
  }
  return "unknown";
}

std::uint64_t int_digest(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

IntHeader IntHeader::reserve(std::uint8_t max_hops, bool request_hop_program) {
  IntHeader h;
  h.max_hops_ = std::clamp<std::uint8_t>(max_hops, 1, kMaxHopsLimit);
  if (request_hop_program) h.flags_ |= kFlagHopProgram;
  return h;
}

bool IntHeader::push(const HopRecord& record) {
  if (hop_count_ >= max_hops_) {
    flags_ |= kFlagTruncated;
    return false;
  }
  records_[hop_count_++] = record;
  return true;
}

void IntHeader::raise_alarm(std::uint8_t hop) {
  if (flags_ & kFlagAlarm) return;  // first alarm wins
  flags_ |= kFlagAlarm;
  alarm_hop_ = hop;
}

Bytes IntHeader::serialize() const {
  BytesWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(flags_);
  w.u8(max_hops_);
  w.u8(hop_count_);
  w.u8(alarm_hop_);
  w.u8(0);  // reserved
  w.u8(0);
  w.u8(0);
  for (std::int64_t r : registers_) w.i64(r);
  // Every slot serializes, used or not, so the wire size is a function of
  // max_hops alone and never changes as records are pushed in flight.
  for (std::size_t i = 0; i < max_hops_; ++i) write_record(w, records_[i]);
  w.u64(int_digest(BytesView(w.bytes().data(), w.bytes().size())));
  return w.take();
}

bool IntHeader::looks_like_int(BytesView payload) {
  if (payload.size() < 4) return false;
  const std::uint32_t magic = static_cast<std::uint32_t>(payload[0]) |
                              static_cast<std::uint32_t>(payload[1]) << 8 |
                              static_cast<std::uint32_t>(payload[2]) << 16 |
                              static_cast<std::uint32_t>(payload[3]) << 24;
  return magic == kMagic;
}

std::size_t IntHeader::prefix_size(BytesView payload) {
  if (payload.size() < kFixedSize || !looks_like_int(payload)) return 0;
  const std::uint8_t max_hops = payload[6];  // layout: magic,ver,flags,max
  if (max_hops == 0 || max_hops > kMaxHopsLimit) return 0;
  const std::size_t size = wire_size(max_hops);
  return size <= payload.size() ? size : 0;
}

Result<IntHeader> IntHeader::parse(BytesView data, IntParseError* kind) {
  if (kind != nullptr) *kind = IntParseError::kNone;
  if (data.size() < kFixedSize)
    return reject(kind, IntParseError::kTruncated, "INT header truncated");
  if (!looks_like_int(data))
    return reject(kind, IntParseError::kBadMagic, "INT magic mismatch");
  BytesReader r(data);
  (void)r.u32();  // magic, checked above
  const std::uint8_t version = *r.u8();
  if (version != kVersion)
    return reject(kind, IntParseError::kBadVersion,
                  "INT version " + std::to_string(version) + " unsupported");
  IntHeader h;
  h.flags_ = *r.u8();
  h.max_hops_ = *r.u8();
  h.hop_count_ = *r.u8();
  h.alarm_hop_ = *r.u8();
  (void)r.u8();
  (void)r.u8();
  (void)r.u8();
  if (h.max_hops_ == 0 || h.max_hops_ > kMaxHopsLimit ||
      h.hop_count_ > h.max_hops_)
    return reject(kind, IntParseError::kBadHopCount,
                  "INT hop counts out of range");
  const std::size_t total = wire_size(h.max_hops_);
  if (data.size() < total)
    return reject(kind, IntParseError::kTruncated,
                  "INT block shorter than its budget demands");
  for (std::size_t i = 0; i < kRegisterCount; ++i)
    h.registers_[i] = *r.i64();
  for (std::size_t i = 0; i < h.max_hops_; ++i) {
    HopRecord& rec = h.records_[i];
    rec.asn = *r.u32();
    rec.ingress_interface = *r.u16();
    rec.egress_interface = *r.u16();
    rec.ingress_ns = *r.u64();
    rec.egress_ns = *r.u64();
    rec.queue_depth = *r.u32();
    rec.drops_seen = *r.u32();
    rec.wire_faults = *r.u32();
  }
  const std::uint64_t carried = *r.u64();
  if (carried != int_digest(data.subspan(0, total - 8)))
    return reject(kind, IntParseError::kDigestMismatch,
                  "INT digest mismatch (in-flight damage)");
  return h;
}

}  // namespace debuglet::telemetry
