// Whole-path evidence distilled from one delivered INT probe.
//
// PathEvidence is the localizer-facing view of an IntHeader: it checks
// that the record stack actually covers the expected AS path (one record
// per inter-domain link, ASNs in path order, nothing truncated), then
// exposes per-link one-way latencies and per-AS residence times. A single
// intact probe therefore answers the question binary search needs O(log n)
// purchased measurement rounds for — which link is slow — in one round.
#pragma once

#include <vector>

#include "telemetry/int_header.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"

namespace debuglet::telemetry {

/// One inter-domain link's in-band measurement.
struct LinkObservation {
  std::size_t link = 0;          // index into AsPath::link_after
  double one_way_ms = 0.0;       // crossing latency of that link
  double residence_ms = 0.0;     // time spent inside the terminating AS
  std::uint32_t queue_depth = 0;
  std::uint32_t wire_faults = 0;
  HopRecord record;
};

/// Validated per-link evidence for one probe over one expected path.
class PathEvidence {
 public:
  /// Builds evidence from a parsed header. Fails when the stack was
  /// truncated, covers a different number of links than `path`, or names
  /// ASes out of path order — the caller then degrades to out-of-band
  /// localization instead of trusting partial in-band data.
  static Result<PathEvidence> from_header(const IntHeader& header,
                                          const topology::AsPath& path,
                                          SimTime sent_at);

  std::size_t links() const { return observations_.size(); }
  const LinkObservation& link(std::size_t i) const { return observations_[i]; }
  const std::vector<LinkObservation>& observations() const {
    return observations_;
  }

  /// Index of the slowest link, by one-way crossing latency.
  std::size_t slowest_link() const;

  /// Links whose one-way latency exceeds `threshold_ms` (the localizer's
  /// per-link budget), in path order.
  std::vector<std::size_t> links_over(double threshold_ms) const;

  bool alarmed() const { return header_.alarmed(); }
  std::uint8_t alarm_hop() const { return header_.alarm_hop(); }
  bool hop_program_fell_back() const { return header_.fell_back(); }
  const IntHeader& header() const { return header_; }

 private:
  IntHeader header_;
  std::vector<LinkObservation> observations_;
};

}  // namespace debuglet::telemetry
