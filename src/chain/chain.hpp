// A deterministic single-finalizer blockchain with parallel owned-object
// transaction execution.
//
// This is the repo's substitute for the Sui blockchain the paper deploys
// its Move contract on (DESIGN.md §2). It keeps the properties the
// evaluation relies on: signed transactions with account nonces, instant
// (sub-second) finality, an object store whose creation cost and deletion
// rebate follow Table II's gas schedule, hash-linked blocks over Merkle
// roots of transactions (so published results are tamper-evident), and an
// event log with subscriptions (executors subscribe to deployment events,
// initiators to result events — paper §IV-C).
//
// Contracts are native C++ objects registered by name; their entry points
// receive a CallContext granting access to objects, named contract state,
// events and escrowed token transfers. Every contract call executes
// against a buffered effect set: nothing touches committed state until the
// call succeeds, so a failed or aborted call leaves the chain untouched.
//
// Transactions may declare the state keys they touch (chain/access.hpp);
// submit_batch partitions a block of declared transactions into
// conflict-free groups and executes the groups on a worker pool, then
// commits every effect in canonical (submission) order — receipts, events,
// gas, balances and object versions are bit-identical at any worker count
// (docs/CHAIN.md spells out the determinism contract).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/access.hpp"
#include "chain/gas.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace debuglet::chain {

/// An account address: SHA-256 of the account's public key.
struct Address {
  crypto::Digest digest;
  auto operator<=>(const Address&) const = default;
  std::string hex() const { return digest.hex(); }

  static Address of(const crypto::PublicKey& pk);
};

using ObjectId = std::uint64_t;

/// A stored object. `version` starts at 1 and bumps on every
/// write_object — one of the observables the parallel scheduler must keep
/// bit-identical to serial execution.
struct StoredObject {
  ObjectId id = 0;
  Address owner;          // account credited with the rebate on deletion
  Bytes data;
  Mist rebate_credit = 0; // refunded to `owner` when deleted
  std::uint64_t version = 1;
};

/// A named contract-state entry (the marketplace's ExecutorAddressMap /
/// ExecutionSlotsMap live here). Versioned like objects.
struct NamedEntry {
  std::uint64_t version = 1;
  Bytes data;
};

/// An event emitted by a contract call.
struct Event {
  std::uint64_t sequence = 0;
  std::string contract;
  std::string name;
  std::string key;   // subscription filter key (e.g. "AS3#2", object id)
  Bytes payload;
  SimTime timestamp = 0;
};

/// A signed transaction. `access` declares the read/write sets the call
/// may touch (empty = legacy exclusive mode, see chain/access.hpp); it is
/// covered by the signature.
struct Transaction {
  crypto::PublicKey sender;
  std::uint64_t nonce = 0;
  std::string contract;
  std::string function;
  Bytes arguments;
  Mist attached_tokens = 0;  // moved to the contract escrow before the call
  Mist gas_budget = 0;
  AccessSet access;
  crypto::Signature signature;

  /// Canonical bytes covered by the signature (everything but it).
  Bytes signing_bytes() const;
  crypto::Digest digest() const;
};

/// A sealed block (a batch seals one block for all its transactions).
struct Block {
  std::uint64_t height = 0;
  crypto::Digest previous;
  crypto::Digest transactions_root;
  SimTime timestamp = 0;
  std::vector<crypto::Digest> transaction_digests;
};

/// Why a committed receipt carries success=false.
enum class ErrorKind : std::uint8_t {
  kNone = 0,
  kContract,         // the contract returned an error
  kAccessViolation,  // touched a key outside the declared access set
  kOutOfGas,         // computed gas exceeded the transaction's budget
  kEscrowOverdraw,   // commit-order escrow re-check failed (cross-group)
};

const char* error_kind_name(ErrorKind kind);

/// Receipt returned for every executed transaction.
struct Receipt {
  bool success = false;
  std::string error;        // set when !success (the tx is still recorded)
  ErrorKind error_kind = ErrorKind::kNone;
  Bytes return_value;       // contract return data on success
  Mist gas_charged = 0;
  Mist storage_rebate_accrued = 0;  // future rebate from objects created
  std::uint64_t block_height = 0;
  crypto::Digest transaction_digest;
};

class Blockchain;

namespace detail {
struct TxScratch;   // per-call buffered effects (chain/execution.hpp)
struct BatchState;  // one submit_batch invocation
}  // namespace detail

/// The authority a contract call executes with. All mutations land in a
/// per-call effect buffer; the chain commits them only when the call
/// succeeds (and, in a batch, in canonical order on the commit thread) —
/// contract code therefore never touches shared state from a worker.
class CallContext {
 public:
  const Address& sender() const { return sender_; }
  Mist attached_tokens() const { return attached_; }
  SimTime timestamp() const;

  /// Creates an object owned by the transaction sender; storage is charged
  /// to the sender and the rebate accrues to them. Object ids are a pure
  /// function of (block height, canonical tx index, per-call counter), so
  /// they are identical at any worker count. Created objects are always
  /// accessible to the creating call, declared or not.
  Result<ObjectId> create_object(Bytes data);

  Result<Bytes> read_object(ObjectId id) const;

  /// The account that created (and is rebated for) an object.
  Result<Address> object_owner(ObjectId id) const;

  /// Overwrites an object's data in place, bumping its version. The
  /// storage rebate stays as fixed at creation; no additional storage is
  /// charged (marketplace state updates are small relative to creation).
  Status write_object(ObjectId id, Bytes data);

  /// Deletes an object; its rebate is credited to its owner's balance.
  Status delete_object(ObjectId id);

  /// Named contract state, keyed within this contract's namespace (the
  /// full conflict key is "<contract>/<key>", see chain/access.hpp).
  bool has_named(const std::string& key) const;
  Result<Bytes> read_named(const std::string& key) const;
  Status write_named(const std::string& key, Bytes data);
  Status erase_named(const std::string& key);

  /// Read-only view into ANOTHER contract's named state (conflict key
  /// "<contract>/<key>", which a declared access set must list as a
  /// read). The global named store is shared, so this works whether or
  /// not the other contract is registered — a missing key simply reads as
  /// absent. Writes stay namespace-confined by design: cross-contract
  /// coupling is observation, never mutation.
  bool has_named_of(const std::string& contract, const std::string& key) const;
  Result<Bytes> read_named_of(const std::string& contract,
                              const std::string& key) const;

  /// Emits an event visible to subscribers and the permanent log
  /// (dispatched at commit time, in canonical order).
  void emit_event(std::string name, std::string key, Bytes payload);

  /// Pays tokens out of the contract's escrow balance. Escrow moves are
  /// commutative deltas re-checked at commit; they are not conflict keys.
  Status pay_from_escrow(const Address& to, Mist amount);

 private:
  friend class Blockchain;
  friend struct detail::BatchState;
  CallContext(Blockchain& chain, std::string contract, Address sender,
              Mist attached, detail::TxScratch* scratch)
      : chain_(chain),
        contract_(std::move(contract)),
        sender_(std::move(sender)),
        attached_(attached),
        scratch_(scratch) {}

  Blockchain& chain_;
  std::string contract_;
  Address sender_;
  Mist attached_;
  detail::TxScratch* scratch_;  // owned by the caller (submit/view)
};

/// A native contract: dispatches function calls.
class Contract {
 public:
  virtual ~Contract() = default;
  virtual std::string name() const = 0;
  /// Executes `function` with serialized `arguments`; returns serialized
  /// return data, or an error. All CallContext effects are buffered: an
  /// error (or an access violation) aborts the call and commits nothing.
  /// Contract member state, if any, must not be mutated by call() —
  /// conflict-free calls run concurrently; keep state in named entries
  /// and objects instead.
  virtual Result<Bytes> call(CallContext& context, const std::string& function,
                             BytesView arguments) = 0;
  /// Invoked once at registration with the owning chain — contracts that
  /// expose read-only inspection helpers keep the pointer.
  virtual void attach(Blockchain&) {}
};

/// Event subscription callback.
using EventCallback = std::function<void(const Event&)>;
using SubscriptionId = std::uint64_t;

/// Chain-level configuration.
struct ChainConfig {
  GasSchedule gas;
  /// Finality latency per transaction (Sui: <0.5 s, paper §V-B). The chain
  /// executes synchronously; orchestration code adds this to simulated
  /// schedules.
  SimDuration finality_latency = duration::milliseconds(400);
};

/// Batch execution knobs.
struct BatchOptions {
  /// Worker threads for the execute phase. 1 = serial (no threads
  /// spawned). Results are bit-identical at any value by construction.
  unsigned workers = 1;
};

/// The chain itself.
class Blockchain {
 public:
  explicit Blockchain(ChainConfig config = ChainConfig{});

  const ChainConfig& config() const { return config_; }

  /// Registers a contract instance under its name().
  Status register_contract(std::unique_ptr<Contract> contract);

  /// Credits an account (genesis/faucet; scenarios fund participants).
  void mint(const Address& account, Mist amount);

  Mist balance(const Address& account) const;
  std::uint64_t nonce(const Address& account) const;

  /// Builds and signs a transaction for `key` with the correct next nonce.
  /// `access` opts into declared (parallelizable) mode — see
  /// chain/access.hpp; the default empty set is legacy exclusive mode.
  Transaction make_transaction(const crypto::KeyPair& key,
                               std::string contract, std::string function,
                               Bytes arguments, Mist attached_tokens = 0,
                               Mist gas_budget = 1'000'000'000,
                               AccessSet access = {});

  /// Like make_transaction but with an explicit nonce — required when
  /// building several transactions from one sender for a single batch.
  Transaction make_transaction_with_nonce(
      const crypto::KeyPair& key, std::uint64_t nonce, std::string contract,
      std::string function, Bytes arguments, Mist attached_tokens = 0,
      Mist gas_budget = 1'000'000'000, AccessSet access = {});

  /// Verifies, executes and commits a transaction (instant finality).
  /// Verification failures (bad signature, wrong nonce, insufficient
  /// funds) fail the Result; contract-level failures produce a committed
  /// receipt with success=false. Equivalent to a one-transaction batch.
  Result<Receipt> submit(const Transaction& tx);

  /// Verifies, executes and commits a block of transactions. Signature
  /// checks and conflict-free groups run on `options.workers` threads;
  /// effects commit in submission order into ONE sealed block. The i-th
  /// result corresponds to the i-th transaction; a failed Result is a
  /// rejected transaction (not recorded, nonce unconsumed) exactly as for
  /// submit(). Observables are identical at every worker count.
  std::vector<Result<Receipt>> submit_batch(
      const std::vector<Transaction>& txs, const BatchOptions& options = {});

  /// Read-only contract call: no gas; all buffered effects are discarded,
  /// so views can never mutate chain state.
  Result<Bytes> view(const std::string& contract, const std::string& function,
                     BytesView arguments);

  /// Subscribes to events of (contract, name); empty key matches all keys.
  SubscriptionId subscribe(std::string contract, std::string name,
                           std::string key, EventCallback callback);
  void unsubscribe(SubscriptionId id);

  // --- Inspection ------------------------------------------------------
  std::uint64_t height() const { return blocks_.size(); }
  const Block& block(std::uint64_t height) const { return blocks_.at(height); }
  /// Recomputes every hash link and Merkle root; false if tampered.
  bool verify_integrity() const;

  /// Merkle inclusion proof of a transaction digest within its block —
  /// what a light verifier needs alongside the block header chain.
  Result<crypto::MerkleProof> prove_transaction(std::uint64_t height,
                                                std::size_t index) const;

  /// Verifies an inclusion proof against a block's transactions root.
  static bool verify_transaction_inclusion(const Block& block,
                                           const crypto::Digest& tx_digest,
                                           const crypto::MerkleProof& proof);
  const std::vector<Event>& events() const { return event_log_; }
  Result<Bytes> read_object(ObjectId id) const;
  bool object_exists(ObjectId id) const { return objects_.contains(id); }
  const std::map<ObjectId, StoredObject>& objects() const { return objects_; }
  Mist escrow_balance(const std::string& contract) const;

  /// Committed named contract state, by full key "<contract>/<key>".
  const std::map<std::string, NamedEntry>& named_state() const {
    return named_;
  }
  /// Reads one committed named entry (nullptr if absent). Used by
  /// contracts' read-only inspection helpers; consensus code goes through
  /// CallContext.
  const NamedEntry* named_entry(const std::string& full_key) const;

  /// Sets the clock used to timestamp blocks/events (wired to the
  /// simulation queue by scenarios; defaults to a constant 0).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  SimTime now() const { return clock_ ? clock_() : 0; }

 private:
  friend class CallContext;
  friend struct detail::BatchState;

  ChainConfig config_;
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
  std::map<Address, Mist> balances_;
  std::map<Address, std::uint64_t> nonces_;
  std::map<std::string, Mist> escrow_;
  std::map<ObjectId, StoredObject> objects_;
  std::map<std::string, NamedEntry> named_;
  std::vector<Block> blocks_;
  std::vector<Event> event_log_;
  std::uint64_t next_event_seq_ = 0;
  struct Subscription {
    std::string contract;
    std::string name;
    std::string key;
    EventCallback callback;
  };
  std::map<SubscriptionId, Subscription> subscriptions_;
  SubscriptionId next_subscription_ = 1;
  std::function<SimTime()> clock_;
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* tx_submitted = nullptr;
    obs::Counter* tx_rejected = nullptr;  // failed verification, not recorded
    obs::Counter* tx_failed = nullptr;    // committed with success=false
    obs::Counter* access_violations = nullptr;
    obs::Counter* batches = nullptr;
    obs::Histogram* gas_charged = nullptr;
    obs::Histogram* block_build_ms = nullptr;  // wall time to seal a block
    obs::Histogram* event_fanout = nullptr;    // subscribers hit per event
    obs::Histogram* batch_groups = nullptr;    // conflict groups per batch
    obs::Histogram* batch_group_size = nullptr;
    obs::Gauge* objects = nullptr;
    obs::Gauge* object_bytes = nullptr;
  };
  ObsHandles obs_;
  std::uint64_t object_bytes_total_ = 0;
};

}  // namespace debuglet::chain
