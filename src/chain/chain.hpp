// A deterministic single-finalizer blockchain.
//
// This is the repo's substitute for the Sui blockchain the paper deploys
// its Move contract on (DESIGN.md §2). It keeps the properties the
// evaluation relies on: signed transactions with account nonces, instant
// (sub-second) finality, an object store whose creation cost and deletion
// rebate follow Table II's gas schedule, hash-linked blocks over Merkle
// roots of transactions (so published results are tamper-evident), and an
// event log with subscriptions (executors subscribe to deployment events,
// initiators to result events — paper §IV-C).
//
// Contracts are native C++ objects registered by name; their entry points
// receive a CallContext granting access to objects, events and escrowed
// token transfers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/gas.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace debuglet::chain {

/// An account address: SHA-256 of the account's public key.
struct Address {
  crypto::Digest digest;
  auto operator<=>(const Address&) const = default;
  std::string hex() const { return digest.hex(); }

  static Address of(const crypto::PublicKey& pk);
};

using ObjectId = std::uint64_t;

/// A stored object.
struct StoredObject {
  ObjectId id = 0;
  Address owner;          // account credited with the rebate on deletion
  Bytes data;
  Mist rebate_credit = 0; // refunded to `owner` when deleted
};

/// An event emitted by a contract call.
struct Event {
  std::uint64_t sequence = 0;
  std::string contract;
  std::string name;
  std::string key;   // subscription filter key (e.g. "AS3#2", object id)
  Bytes payload;
  SimTime timestamp = 0;
};

/// A signed transaction.
struct Transaction {
  crypto::PublicKey sender;
  std::uint64_t nonce = 0;
  std::string contract;
  std::string function;
  Bytes arguments;
  Mist attached_tokens = 0;  // moved to the contract escrow before the call
  Mist gas_budget = 0;
  crypto::Signature signature;

  /// Canonical bytes covered by the signature (everything but it).
  Bytes signing_bytes() const;
  crypto::Digest digest() const;
};

/// A sealed block.
struct Block {
  std::uint64_t height = 0;
  crypto::Digest previous;
  crypto::Digest transactions_root;
  SimTime timestamp = 0;
  std::vector<crypto::Digest> transaction_digests;
};

/// Receipt returned for every executed transaction.
struct Receipt {
  bool success = false;
  std::string error;        // set when !success (the tx is still recorded)
  Bytes return_value;       // contract return data on success
  Mist gas_charged = 0;
  Mist storage_rebate_accrued = 0;  // future rebate from objects created
  std::uint64_t block_height = 0;
  crypto::Digest transaction_digest;
};

class Blockchain;

/// The authority a contract call executes with.
class CallContext {
 public:
  const Address& sender() const { return sender_; }
  Mist attached_tokens() const { return attached_; }
  SimTime timestamp() const;

  /// Creates an object owned by the transaction sender; storage is charged
  /// to the sender and the rebate accrues to them.
  Result<ObjectId> create_object(Bytes data);

  Result<Bytes> read_object(ObjectId id) const;

  /// The account that created (and is rebated for) an object.
  Result<Address> object_owner(ObjectId id) const;

  /// Deletes an object; its rebate is credited to its owner's balance.
  Status delete_object(ObjectId id);

  /// Emits an event visible to subscribers and the permanent log.
  void emit_event(std::string name, std::string key, Bytes payload);

  /// Pays tokens out of the contract's escrow balance.
  Status pay_from_escrow(const Address& to, Mist amount);

 private:
  friend class Blockchain;
  CallContext(Blockchain& chain, std::string contract, Address sender,
              Mist attached)
      : chain_(chain),
        contract_(std::move(contract)),
        sender_(std::move(sender)),
        attached_(attached) {}

  Blockchain& chain_;
  std::string contract_;
  Address sender_;
  Mist attached_;
  // Per-call accounting consumed by the gas meter.
  std::uint64_t bytes_stored = 0;
  std::uint64_t objects_created = 0;
  Mist rebate_accrued = 0;
};

/// A native contract: dispatches function calls.
class Contract {
 public:
  virtual ~Contract() = default;
  virtual std::string name() const = 0;
  /// Executes `function` with serialized `arguments`; returns serialized
  /// return data, or an error (which aborts and rolls back nothing — the
  /// chain charges gas for failed calls but contract authors are expected
  /// to validate before mutating, as the marketplace contract does).
  virtual Result<Bytes> call(CallContext& context, const std::string& function,
                             BytesView arguments) = 0;
};

/// Event subscription callback.
using EventCallback = std::function<void(const Event&)>;
using SubscriptionId = std::uint64_t;

/// Chain-level configuration.
struct ChainConfig {
  GasSchedule gas;
  /// Finality latency per transaction (Sui: <0.5 s, paper §V-B). The chain
  /// executes synchronously; orchestration code adds this to simulated
  /// schedules.
  SimDuration finality_latency = duration::milliseconds(400);
};

/// The chain itself.
class Blockchain {
 public:
  explicit Blockchain(ChainConfig config = ChainConfig{});

  const ChainConfig& config() const { return config_; }

  /// Registers a contract instance under its name().
  Status register_contract(std::unique_ptr<Contract> contract);

  /// Credits an account (genesis/faucet; scenarios fund participants).
  void mint(const Address& account, Mist amount);

  Mist balance(const Address& account) const;
  std::uint64_t nonce(const Address& account) const;

  /// Builds and signs a transaction for `key` with the correct next nonce.
  Transaction make_transaction(const crypto::KeyPair& key,
                               std::string contract, std::string function,
                               Bytes arguments, Mist attached_tokens = 0,
                               Mist gas_budget = 1'000'000'000);

  /// Verifies, executes and commits a transaction (instant finality).
  /// Verification failures (bad signature, wrong nonce, insufficient
  /// funds) fail the Result; contract-level failures produce a committed
  /// receipt with success=false.
  Result<Receipt> submit(const Transaction& tx);

  /// Read-only contract call: no gas, no state mutation permitted
  /// (enforced by convention — the marketplace routes all lookups here).
  Result<Bytes> view(const std::string& contract, const std::string& function,
                     BytesView arguments);

  /// Subscribes to events of (contract, name); empty key matches all keys.
  SubscriptionId subscribe(std::string contract, std::string name,
                           std::string key, EventCallback callback);
  void unsubscribe(SubscriptionId id);

  // --- Inspection ------------------------------------------------------
  std::uint64_t height() const { return blocks_.size(); }
  const Block& block(std::uint64_t height) const { return blocks_.at(height); }
  /// Recomputes every hash link and Merkle root; false if tampered.
  bool verify_integrity() const;

  /// Merkle inclusion proof of a transaction digest within its block —
  /// what a light verifier needs alongside the block header chain.
  Result<crypto::MerkleProof> prove_transaction(std::uint64_t height,
                                                std::size_t index) const;

  /// Verifies an inclusion proof against a block's transactions root.
  static bool verify_transaction_inclusion(const Block& block,
                                           const crypto::Digest& tx_digest,
                                           const crypto::MerkleProof& proof);
  const std::vector<Event>& events() const { return event_log_; }
  Result<Bytes> read_object(ObjectId id) const;
  bool object_exists(ObjectId id) const { return objects_.contains(id); }
  Mist escrow_balance(const std::string& contract) const;

  /// Sets the clock used to timestamp blocks/events (wired to the
  /// simulation queue by scenarios; defaults to a constant 0).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  SimTime now() const { return clock_ ? clock_() : 0; }

 private:
  friend class CallContext;

  ChainConfig config_;
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
  std::map<Address, Mist> balances_;
  std::map<Address, std::uint64_t> nonces_;
  std::map<std::string, Mist> escrow_;
  std::map<ObjectId, StoredObject> objects_;
  ObjectId next_object_id_ = 1;
  std::vector<Block> blocks_;
  std::vector<Event> event_log_;
  std::uint64_t next_event_seq_ = 0;
  struct Subscription {
    std::string contract;
    std::string name;
    std::string key;
    EventCallback callback;
  };
  std::map<SubscriptionId, Subscription> subscriptions_;
  SubscriptionId next_subscription_ = 1;
  std::function<SimTime()> clock_;
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* tx_submitted = nullptr;
    obs::Counter* tx_rejected = nullptr;  // failed verification, not recorded
    obs::Counter* tx_failed = nullptr;    // committed with success=false
    obs::Histogram* gas_charged = nullptr;
    obs::Histogram* block_build_ms = nullptr;  // wall time to seal a block
    obs::Histogram* event_fanout = nullptr;    // subscribers hit per event
    obs::Gauge* objects = nullptr;
    obs::Gauge* object_bytes = nullptr;
  };
  ObsHandles obs_;
  std::uint64_t object_bytes_total_ = 0;
};

}  // namespace debuglet::chain
