// Internal execution machinery shared by chain.cpp (CallContext) and
// parallel.cpp (the batch scheduler). Not part of the public chain API.
//
// Every contract call runs against a TxScratch: an effect buffer layered
// over a GroupView, which is itself an overlay (effects of earlier
// transactions in the same conflict group) over the committed chain state,
// which is frozen for the whole execute phase. Visibility is therefore a
// pure function of the batch contents and the declared access sets —
// never of worker count — which is what makes parallel execution
// bit-identical to serial (docs/CHAIN.md).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/chain.hpp"

namespace debuglet::chain::detail {

/// Buffered effects of one contract call. Nothing here touches the chain
/// until the commit phase applies it (and only for successful calls).
struct TxEffects {
  std::vector<StoredObject> created;        // fresh objects, ids assigned
  std::map<ObjectId, Bytes> object_writes;  // pre-existing objects updated
  std::vector<ObjectId> object_deletes;
  /// Named-state writes by full key; nullopt erases the entry.
  std::map<std::string, std::optional<Bytes>> named_writes;
  /// Balance credits to arbitrary accounts (deletion rebates and
  /// pay_from_escrow payouts). Debits only ever hit the tx sender and are
  /// tracked separately (gas / attached tokens).
  std::map<Address, Mist> credits;
  Mist escrow_out = 0;  // total paid out of this contract's escrow
  std::vector<Event> events;  // sequence + timestamp assigned at commit
  // Storage accounting for the gas charge.
  std::uint64_t bytes_stored = 0;
  std::uint64_t objects_created = 0;
  Mist rebate_accrued = 0;
};

/// Mutable overlay a conflict group maintains while executing its members
/// serially in canonical order. Owned by exactly one worker at a time.
struct GroupView {
  const Blockchain* chain = nullptr;  // committed state, frozen

  std::map<ObjectId, StoredObject> objects;  // created or rewritten
  std::set<ObjectId> deleted;
  std::map<std::string, std::optional<Bytes>> named;  // full key
  struct Delta {
    Mist credit = 0;
    Mist debit = 0;
  };
  std::map<Address, Delta> balance_delta;
  std::map<Address, std::uint64_t> nonce_bump;
  std::map<std::string, Delta> escrow_delta;  // credit = attached in
  /// Memoized committed named-entry lookups — the versioned read path
  /// that keeps hot ExecutorAddressMap reads off the std::map walk.
  mutable std::unordered_map<std::string, const NamedEntry*> named_cache;

  Mist balance_of(const Address& account) const;
  std::uint64_t nonce_of(const Address& account) const;
  Mist escrow_of(const std::string& contract) const;
  /// Committed + overlay named lookup; (entry, erased) — erased wins.
  const Bytes* named_lookup(const std::string& full_key) const;
  /// Committed + overlay object lookup (nullptr if absent/deleted).
  const StoredObject* object_lookup(ObjectId id) const;

  /// Folds a successful call's effects (and its sender debits) in, so
  /// later transactions in this group observe them.
  void absorb(const TxEffects& effects, const Address& sender, Mist gas,
              Mist attached, const std::string& contract, bool success);
};

/// Per-call state a CallContext writes through. `access == nullptr` means
/// legacy exclusive mode (no enforcement); otherwise any touch outside
/// the declared set latches `violated` and the whole call aborts.
struct TxScratch {
  bool view_mode = false;  // buffer then discard; timestamps are live
  GroupView* group = nullptr;
  const AccessSet* access = nullptr;
  ObjectId id_base = 0;  // (height << 32) | (canonical index << 12)
  std::uint32_t id_counter = 0;
  SimTime timestamp = 0;
  bool violated = false;
  std::string violation;
  TxEffects effects;
  std::set<ObjectId> created_ids;  // fresh this call — always accessible
};

/// What one transaction resolved to; produced by the execute phase,
/// consumed (in canonical order) by the commit phase.
struct TxOutcome {
  bool rejected = false;      // failed verification; nothing recorded
  std::string reject_error;   // exact legacy submit() message
  Receipt receipt;            // committed outcome (success or failure)
  bool apply_effects = false; // success only: effects land at commit
  TxEffects effects;
  Address sender;
  Mist gas = 0;       // debit at commit (charged even on failure)
  Mist attached = 0;  // escrowed at commit for successful calls
  std::string contract;
};

/// One submit_batch invocation.
struct BatchState {
  Blockchain* chain = nullptr;
  const std::vector<Transaction>* txs = nullptr;
  SimTime timestamp = 0;       // captured once; workers never call now()
  std::uint64_t block_height = 0;
  std::vector<std::uint8_t> sig_ok;  // not vector<bool>: workers write it
  std::vector<Contract*> contract_ptr;  // nullptr = unknown contract
  std::vector<Address> senders;
  std::vector<std::vector<std::size_t>> groups;  // canonical member order
  std::vector<TxOutcome> outcomes;

  void prepare(unsigned workers);  // phase 0: parallel signature checks
  void partition();                // phase 1: union-find conflict groups
  void execute(unsigned workers);  // phase 2: group execution on a pool
  std::vector<Result<Receipt>> commit();  // phase 3: canonical order

  void execute_group(const std::vector<std::size_t>& members);
  void execute_tx(GroupView& view, std::size_t index);
};

}  // namespace debuglet::chain::detail
