#include "chain/chain.hpp"

#include "obs/trace.hpp"

namespace debuglet::chain {

Address Address::of(const crypto::PublicKey& pk) {
  const Bytes b = pk.to_bytes();
  return Address{crypto::sha256(BytesView(b.data(), b.size()))};
}

Bytes Transaction::signing_bytes() const {
  BytesWriter w;
  const Bytes pk = sender.to_bytes();
  w.raw(BytesView(pk.data(), pk.size()));
  w.u64(nonce);
  w.str(contract);
  w.str(function);
  w.blob(BytesView(arguments.data(), arguments.size()));
  w.u64(attached_tokens);
  w.u64(gas_budget);
  return w.take();
}

crypto::Digest Transaction::digest() const {
  BytesWriter w;
  const Bytes body = signing_bytes();
  w.raw(BytesView(body.data(), body.size()));
  const Bytes sig = signature.to_bytes();
  w.raw(BytesView(sig.data(), sig.size()));
  return crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
}

SimTime CallContext::timestamp() const { return chain_.now(); }

Result<ObjectId> CallContext::create_object(Bytes data) {
  const ObjectId id = chain_.next_object_id_++;
  StoredObject obj;
  obj.id = id;
  obj.owner = sender_;
  obj.rebate_credit = chain_.config_.gas.storage_rebate(data.size());
  bytes_stored += data.size();
  ++objects_created;
  rebate_accrued += obj.rebate_credit;
  chain_.object_bytes_total_ += data.size();
  obj.data = std::move(data);
  chain_.objects_.emplace(id, std::move(obj));
  chain_.obs_.objects->set(static_cast<double>(chain_.objects_.size()));
  chain_.obs_.object_bytes->set(
      static_cast<double>(chain_.object_bytes_total_));
  return id;
}

Result<Bytes> CallContext::read_object(ObjectId id) const {
  return chain_.read_object(id);
}

Result<Address> CallContext::object_owner(ObjectId id) const {
  auto it = chain_.objects_.find(id);
  if (it == chain_.objects_.end())
    return fail("no object " + std::to_string(id));
  return it->second.owner;
}

Status CallContext::delete_object(ObjectId id) {
  auto it = chain_.objects_.find(id);
  if (it == chain_.objects_.end())
    return fail("no object " + std::to_string(id));
  chain_.balances_[it->second.owner] += it->second.rebate_credit;
  chain_.object_bytes_total_ -= it->second.data.size();
  chain_.objects_.erase(it);
  chain_.obs_.objects->set(static_cast<double>(chain_.objects_.size()));
  chain_.obs_.object_bytes->set(
      static_cast<double>(chain_.object_bytes_total_));
  return ok_status();
}

void CallContext::emit_event(std::string name, std::string key,
                             Bytes payload) {
  Event ev;
  ev.sequence = chain_.next_event_seq_++;
  ev.contract = contract_;
  ev.name = std::move(name);
  ev.key = std::move(key);
  ev.payload = std::move(payload);
  ev.timestamp = chain_.now();
  chain_.event_log_.push_back(ev);
  // Dispatch after appending so subscribers observe a consistent log.
  std::uint64_t fanout = 0;
  for (const auto& [_, sub] : chain_.subscriptions_) {
    if (sub.contract != ev.contract || sub.name != ev.name) continue;
    if (!sub.key.empty() && sub.key != ev.key) continue;
    ++fanout;
    sub.callback(ev);
  }
  chain_.obs_.event_fanout->record(static_cast<double>(fanout));
}

Status CallContext::pay_from_escrow(const Address& to, Mist amount) {
  Mist& escrow = chain_.escrow_[contract_];
  if (escrow < amount)
    return fail("contract escrow underfunded: have " +
                std::to_string(escrow) + ", need " + std::to_string(amount));
  escrow -= amount;
  chain_.balances_[to] += amount;
  return ok_status();
}

Blockchain::Blockchain(ChainConfig config) : config_(config) {
  Block genesis;
  genesis.height = 0;
  genesis.previous = crypto::sha256("debuglet-genesis");
  genesis.transactions_root =
      crypto::MerkleTree(std::vector<Bytes>{}).root();
  blocks_.push_back(genesis);
  obs::MetricsRegistry& reg = obs::registry();
  obs_.tx_submitted = &reg.counter("chain.tx_submitted");
  obs_.tx_rejected = &reg.counter("chain.tx_rejected");
  obs_.tx_failed = &reg.counter("chain.tx_failed");
  obs_.gas_charged = &reg.histogram("chain.gas_charged_mist");
  obs_.block_build_ms = &reg.histogram("chain.block_build_ms");
  obs_.event_fanout = &reg.histogram("chain.event_fanout");
  obs_.objects = &reg.gauge("chain.object_store.objects");
  obs_.object_bytes = &reg.gauge("chain.object_store.bytes");
}

Status Blockchain::register_contract(std::unique_ptr<Contract> contract) {
  if (contract == nullptr) return fail("null contract");
  const std::string name = contract->name();
  if (contracts_.contains(name))
    return fail("contract '" + name + "' already registered");
  contracts_.emplace(name, std::move(contract));
  return ok_status();
}

void Blockchain::mint(const Address& account, Mist amount) {
  balances_[account] += amount;
}

Mist Blockchain::balance(const Address& account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

std::uint64_t Blockchain::nonce(const Address& account) const {
  auto it = nonces_.find(account);
  return it == nonces_.end() ? 0 : it->second;
}

Transaction Blockchain::make_transaction(const crypto::KeyPair& key,
                                         std::string contract,
                                         std::string function, Bytes arguments,
                                         Mist attached_tokens,
                                         Mist gas_budget) {
  Transaction tx;
  tx.sender = key.public_key();
  tx.nonce = nonce(Address::of(tx.sender));
  tx.contract = std::move(contract);
  tx.function = std::move(function);
  tx.arguments = std::move(arguments);
  tx.attached_tokens = attached_tokens;
  tx.gas_budget = gas_budget;
  const Bytes body = tx.signing_bytes();
  tx.signature = key.sign(BytesView(body.data(), body.size()));
  return tx;
}

Result<Receipt> Blockchain::submit(const Transaction& tx) {
  obs_.tx_submitted->add();
  // 1. Authenticate.
  const Bytes body = tx.signing_bytes();
  if (!crypto::verify(tx.sender, BytesView(body.data(), body.size()),
                      tx.signature)) {
    obs_.tx_rejected->add();
    return fail("invalid transaction signature");
  }
  const Address sender = Address::of(tx.sender);
  if (tx.nonce != nonce(sender)) {
    obs_.tx_rejected->add();
    return fail("bad nonce: expected " + std::to_string(nonce(sender)) +
                ", got " + std::to_string(tx.nonce));
  }

  auto contract_it = contracts_.find(tx.contract);
  if (contract_it == contracts_.end()) {
    obs_.tx_rejected->add();
    return fail("unknown contract '" + tx.contract + "'");
  }

  // 2. Ensure the sender can cover the worst case up front.
  const Mist worst_case = tx.gas_budget + tx.attached_tokens;
  if (balance(sender) < worst_case) {
    obs_.tx_rejected->add();
    return fail("insufficient balance: have " +
                std::to_string(balance(sender)) + " MIST, need " +
                std::to_string(worst_case));
  }

  ++nonces_[sender];

  // 3. Move attached tokens into the contract's escrow.
  balances_[sender] -= tx.attached_tokens;
  escrow_[tx.contract] += tx.attached_tokens;

  // 4. Execute.
  CallContext ctx(*this, tx.contract, sender, tx.attached_tokens);
  auto result = contract_it->second->call(ctx, tx.function,
                                          BytesView(tx.arguments.data(),
                                                    tx.arguments.size()));

  // 5. Charge gas: flat computation plus storage for created objects.
  Mist gas = config_.gas.computation_fee;
  gas += config_.gas.storage_price_per_byte *
         (ctx.objects_created * config_.gas.object_overhead_bytes +
          ctx.bytes_stored);
  if (gas > tx.gas_budget) gas = tx.gas_budget;  // budget caps the charge
  if (balances_[sender] < gas) gas = balances_[sender];
  balances_[sender] -= gas;
  obs_.gas_charged->record(static_cast<double>(gas));

  // 6. Seal the block (instant finality, one transaction per block).
  const bool time_block = obs_.block_build_ms->enabled();
  const std::int64_t build_begin_us = time_block ? obs::wall_now_us() : 0;
  Receipt receipt;
  receipt.transaction_digest = tx.digest();
  Block block;
  block.height = blocks_.size();
  block.previous = [&] {
    // Hash of the previous block header.
    const Block& prev = blocks_.back();
    BytesWriter w;
    w.u64(prev.height);
    w.raw(prev.previous.view());
    w.raw(prev.transactions_root.view());
    w.i64(prev.timestamp);
    return crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
  }();
  const Bytes digest_bytes(receipt.transaction_digest.bytes.begin(),
                           receipt.transaction_digest.bytes.end());
  block.transactions_root =
      crypto::MerkleTree(std::vector<Bytes>{digest_bytes}).root();
  block.timestamp = now();
  block.transaction_digests.push_back(receipt.transaction_digest);
  blocks_.push_back(block);
  if (time_block)
    obs_.block_build_ms->record(
        static_cast<double>(obs::wall_now_us() - build_begin_us) / 1000.0);

  receipt.block_height = block.height;
  receipt.gas_charged = gas;
  receipt.storage_rebate_accrued = ctx.rebate_accrued;
  if (result) {
    receipt.success = true;
    receipt.return_value = std::move(*result);
  } else {
    receipt.success = false;
    receipt.error = result.error_message();
    // A failed call returns its attached tokens (minus nothing; gas was
    // already charged) to the sender.
    escrow_[tx.contract] -= tx.attached_tokens;
    balances_[sender] += tx.attached_tokens;
    obs_.tx_failed->add();
  }
  return receipt;
}

Result<Bytes> Blockchain::view(const std::string& contract,
                               const std::string& function,
                               BytesView arguments) {
  auto it = contracts_.find(contract);
  if (it == contracts_.end())
    return fail("unknown contract '" + contract + "'");
  CallContext ctx(*this, contract, Address{}, 0);
  return it->second->call(ctx, function, arguments);
}

SubscriptionId Blockchain::subscribe(std::string contract, std::string name,
                                     std::string key, EventCallback callback) {
  const SubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, Subscription{std::move(contract), std::move(name),
                                          std::move(key),
                                          std::move(callback)});
  return id;
}

void Blockchain::unsubscribe(SubscriptionId id) { subscriptions_.erase(id); }

bool Blockchain::verify_integrity() const {
  for (std::size_t h = 1; h < blocks_.size(); ++h) {
    const Block& prev = blocks_[h - 1];
    BytesWriter w;
    w.u64(prev.height);
    w.raw(prev.previous.view());
    w.raw(prev.transactions_root.view());
    w.i64(prev.timestamp);
    const crypto::Digest expected =
        crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
    if (!(blocks_[h].previous == expected)) return false;
    std::vector<Bytes> leaves;
    for (const crypto::Digest& d : blocks_[h].transaction_digests)
      leaves.emplace_back(d.bytes.begin(), d.bytes.end());
    if (!(crypto::MerkleTree(leaves).root() == blocks_[h].transactions_root))
      return false;
  }
  return true;
}

Result<crypto::MerkleProof> Blockchain::prove_transaction(
    std::uint64_t height, std::size_t index) const {
  if (height >= blocks_.size()) return fail("no block at that height");
  const Block& block = blocks_[height];
  if (index >= block.transaction_digests.size())
    return fail("no transaction at that index");
  std::vector<Bytes> leaves;
  for (const crypto::Digest& d : block.transaction_digests)
    leaves.emplace_back(d.bytes.begin(), d.bytes.end());
  return crypto::MerkleTree(leaves).prove(index);
}

bool Blockchain::verify_transaction_inclusion(
    const Block& block, const crypto::Digest& tx_digest,
    const crypto::MerkleProof& proof) {
  const Bytes leaf(tx_digest.bytes.begin(), tx_digest.bytes.end());
  return crypto::merkle_verify(block.transactions_root,
                               BytesView(leaf.data(), leaf.size()), proof);
}

Result<Bytes> Blockchain::read_object(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return fail("no object " + std::to_string(id));
  return it->second.data;
}

Mist Blockchain::escrow_balance(const std::string& contract) const {
  auto it = escrow_.find(contract);
  return it == escrow_.end() ? 0 : it->second;
}

}  // namespace debuglet::chain
