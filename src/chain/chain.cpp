#include "chain/chain.hpp"

#include <algorithm>

#include "chain/execution.hpp"
#include "obs/trace.hpp"

namespace debuglet::chain {

Address Address::of(const crypto::PublicKey& pk) {
  const Bytes b = pk.to_bytes();
  return Address{crypto::sha256(BytesView(b.data(), b.size()))};
}

Bytes Transaction::signing_bytes() const {
  BytesWriter w;
  const Bytes pk = sender.to_bytes();
  w.raw(BytesView(pk.data(), pk.size()));
  w.u64(nonce);
  w.str(contract);
  w.str(function);
  w.blob(BytesView(arguments.data(), arguments.size()));
  w.u64(attached_tokens);
  w.u64(gas_budget);
  access.write_to(w);
  return w.take();
}

crypto::Digest Transaction::digest() const {
  BytesWriter w;
  const Bytes body = signing_bytes();
  w.raw(BytesView(body.data(), body.size()));
  const Bytes sig = signature.to_bytes();
  w.raw(BytesView(sig.data(), sig.size()));
  return crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
}

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone:
      return "none";
    case ErrorKind::kContract:
      return "contract";
    case ErrorKind::kAccessViolation:
      return "access_violation";
    case ErrorKind::kOutOfGas:
      return "out_of_gas";
    case ErrorKind::kEscrowOverdraw:
      return "escrow_overdraw";
  }
  return "unknown";
}

// --- GroupView -----------------------------------------------------------

namespace detail {

Mist GroupView::balance_of(const Address& account) const {
  Mist base = chain->balance(account);
  auto it = balance_delta.find(account);
  if (it == balance_delta.end()) return base;
  return base + it->second.credit - it->second.debit;
}

std::uint64_t GroupView::nonce_of(const Address& account) const {
  std::uint64_t base = chain->nonce(account);
  auto it = nonce_bump.find(account);
  return it == nonce_bump.end() ? base : base + it->second;
}

Mist GroupView::escrow_of(const std::string& contract) const {
  Mist base = chain->escrow_balance(contract);
  auto it = escrow_delta.find(contract);
  if (it == escrow_delta.end()) return base;
  return base + it->second.credit - it->second.debit;
}

const Bytes* GroupView::named_lookup(const std::string& full_key) const {
  auto it = named.find(full_key);
  if (it != named.end()) return it->second ? &*it->second : nullptr;
  auto cached = named_cache.find(full_key);
  const NamedEntry* entry;
  if (cached != named_cache.end()) {
    entry = cached->second;
  } else {
    entry = chain->named_entry(full_key);
    named_cache.emplace(full_key, entry);  // negative results cached too
  }
  return entry ? &entry->data : nullptr;
}

const StoredObject* GroupView::object_lookup(ObjectId id) const {
  if (deleted.contains(id)) return nullptr;
  auto it = objects.find(id);
  if (it != objects.end()) return &it->second;
  const auto& committed = chain->objects();
  auto cit = committed.find(id);
  return cit == committed.end() ? nullptr : &cit->second;
}

void GroupView::absorb(const TxEffects& effects, const Address& sender,
                       Mist gas, Mist attached, const std::string& contract,
                       bool success) {
  balance_delta[sender].debit += gas;
  if (!success) return;  // failed calls keep only the nonce + gas debit
  balance_delta[sender].debit += attached;
  Delta& escrow = escrow_delta[contract];
  escrow.credit += attached;
  escrow.debit += effects.escrow_out;
  for (const auto& [account, amount] : effects.credits)
    balance_delta[account].credit += amount;
  for (const StoredObject& obj : effects.created) objects[obj.id] = obj;
  for (const auto& [id, data] : effects.object_writes) {
    const StoredObject* current = object_lookup(id);
    if (current == nullptr) continue;  // unreachable: write checked live
    StoredObject updated = *current;
    updated.data = data;
    ++updated.version;
    objects[id] = std::move(updated);
  }
  for (ObjectId id : effects.object_deletes) {
    objects.erase(id);
    deleted.insert(id);
  }
  for (const auto& [key, value] : effects.named_writes) named[key] = value;
}

}  // namespace detail

// --- CallContext ---------------------------------------------------------

namespace {

constexpr std::uint32_t kMaxObjectsPerCall = 1u << 12;  // id counter width

/// Latches the first access violation; the whole call aborts at return
/// even if the contract swallows the error we hand back here.
Status check_access(detail::TxScratch& scratch, const std::string& key,
                    bool write) {
  if (scratch.access == nullptr) return ok_status();  // exclusive mode
  const bool allowed = write ? scratch.access->allows_write(key)
                             : scratch.access->allows_read(key);
  if (allowed) return ok_status();
  std::string message = std::string("access violation: undeclared ") +
                        (write ? "write" : "read") + " of key '" + key + "'";
  if (!scratch.violated) {
    scratch.violated = true;
    scratch.violation = message;
  }
  return fail(std::move(message));
}

}  // namespace

SimTime CallContext::timestamp() const {
  return scratch_->view_mode ? chain_.now() : scratch_->timestamp;
}

Result<ObjectId> CallContext::create_object(Bytes data) {
  detail::TxScratch& s = *scratch_;
  if (s.id_counter >= kMaxObjectsPerCall)
    return fail("object creation limit reached for this transaction");
  const ObjectId id = s.id_base | s.id_counter++;
  StoredObject obj;
  obj.id = id;
  obj.owner = sender_;
  obj.rebate_credit = chain_.config_.gas.storage_rebate(data.size());
  s.effects.bytes_stored += data.size();
  ++s.effects.objects_created;
  s.effects.rebate_accrued += obj.rebate_credit;
  obj.data = std::move(data);
  s.created_ids.insert(id);
  s.effects.created.push_back(std::move(obj));
  return id;
}

Result<Bytes> CallContext::read_object(ObjectId id) const {
  detail::TxScratch& s = *scratch_;
  if (s.created_ids.contains(id)) {
    for (const StoredObject& obj : s.effects.created)
      if (obj.id == id) return obj.data;
  }
  if (auto st = check_access(s, object_access_key(id), /*write=*/false); !st)
    return st.error();
  if (std::find(s.effects.object_deletes.begin(),
                s.effects.object_deletes.end(),
                id) != s.effects.object_deletes.end())
    return fail("no object " + std::to_string(id));
  auto wit = s.effects.object_writes.find(id);
  if (wit != s.effects.object_writes.end()) return wit->second;
  const StoredObject* obj = s.group->object_lookup(id);
  if (obj == nullptr) return fail("no object " + std::to_string(id));
  return obj->data;
}

Result<Address> CallContext::object_owner(ObjectId id) const {
  detail::TxScratch& s = *scratch_;
  if (s.created_ids.contains(id)) return sender_;
  if (auto st = check_access(s, object_access_key(id), /*write=*/false); !st)
    return st.error();
  if (std::find(s.effects.object_deletes.begin(),
                s.effects.object_deletes.end(),
                id) != s.effects.object_deletes.end())
    return fail("no object " + std::to_string(id));
  const StoredObject* obj = s.group->object_lookup(id);
  if (obj == nullptr) return fail("no object " + std::to_string(id));
  return obj->owner;
}

Status CallContext::write_object(ObjectId id, Bytes data) {
  detail::TxScratch& s = *scratch_;
  if (s.created_ids.contains(id)) {
    for (StoredObject& obj : s.effects.created)
      if (obj.id == id) {
        obj.data = std::move(data);
        return ok_status();
      }
  }
  if (auto st = check_access(s, object_access_key(id), /*write=*/true); !st)
    return st;
  if (std::find(s.effects.object_deletes.begin(),
                s.effects.object_deletes.end(),
                id) != s.effects.object_deletes.end())
    return fail("no object " + std::to_string(id));
  if (s.effects.object_writes.contains(id) ||
      s.group->object_lookup(id) != nullptr) {
    s.effects.object_writes[id] = std::move(data);
    return ok_status();
  }
  return fail("no object " + std::to_string(id));
}

Status CallContext::delete_object(ObjectId id) {
  detail::TxScratch& s = *scratch_;
  if (s.created_ids.contains(id)) {
    // Created and deleted within one call: the storage charge stands (as
    // it always has), the rebate is credited immediately.
    for (auto it = s.effects.created.begin(); it != s.effects.created.end();
         ++it) {
      if (it->id != id) continue;
      s.effects.credits[it->owner] += it->rebate_credit;
      s.effects.created.erase(it);
      s.created_ids.erase(id);
      return ok_status();
    }
  }
  if (auto st = check_access(s, object_access_key(id), /*write=*/true); !st)
    return st;
  if (std::find(s.effects.object_deletes.begin(),
                s.effects.object_deletes.end(),
                id) != s.effects.object_deletes.end())
    return fail("no object " + std::to_string(id));
  const StoredObject* obj = s.group->object_lookup(id);
  if (obj == nullptr) return fail("no object " + std::to_string(id));
  s.effects.credits[obj->owner] += obj->rebate_credit;
  s.effects.object_writes.erase(id);
  s.effects.object_deletes.push_back(id);
  return ok_status();
}

bool CallContext::has_named(const std::string& key) const {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract_, key);
  if (auto st = check_access(s, full, /*write=*/false); !st) return false;
  auto it = s.effects.named_writes.find(full);
  if (it != s.effects.named_writes.end()) return it->second.has_value();
  return s.group->named_lookup(full) != nullptr;
}

Result<Bytes> CallContext::read_named(const std::string& key) const {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract_, key);
  if (auto st = check_access(s, full, /*write=*/false); !st)
    return st.error();
  auto it = s.effects.named_writes.find(full);
  if (it != s.effects.named_writes.end()) {
    if (it->second) return *it->second;
    return fail("no named entry '" + full + "'");
  }
  const Bytes* data = s.group->named_lookup(full);
  if (data == nullptr) return fail("no named entry '" + full + "'");
  return *data;
}

bool CallContext::has_named_of(const std::string& contract,
                               const std::string& key) const {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract, key);
  if (auto st = check_access(s, full, /*write=*/false); !st) return false;
  auto it = s.effects.named_writes.find(full);
  if (it != s.effects.named_writes.end()) return it->second.has_value();
  return s.group->named_lookup(full) != nullptr;
}

Result<Bytes> CallContext::read_named_of(const std::string& contract,
                                         const std::string& key) const {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract, key);
  if (auto st = check_access(s, full, /*write=*/false); !st)
    return st.error();
  auto it = s.effects.named_writes.find(full);
  if (it != s.effects.named_writes.end()) {
    if (it->second) return *it->second;
    return fail("no named entry '" + full + "'");
  }
  const Bytes* data = s.group->named_lookup(full);
  if (data == nullptr) return fail("no named entry '" + full + "'");
  return *data;
}

Status CallContext::write_named(const std::string& key, Bytes data) {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract_, key);
  if (auto st = check_access(s, full, /*write=*/true); !st) return st;
  s.effects.named_writes[full] = std::move(data);
  return ok_status();
}

Status CallContext::erase_named(const std::string& key) {
  detail::TxScratch& s = *scratch_;
  const std::string full = named_access_key(contract_, key);
  if (auto st = check_access(s, full, /*write=*/true); !st) return st;
  s.effects.named_writes[full] = std::nullopt;
  return ok_status();
}

void CallContext::emit_event(std::string name, std::string key,
                             Bytes payload) {
  Event ev;  // sequence + timestamp assigned at commit, canonical order
  ev.contract = contract_;
  ev.name = std::move(name);
  ev.key = std::move(key);
  ev.payload = std::move(payload);
  scratch_->effects.events.push_back(std::move(ev));
}

Status CallContext::pay_from_escrow(const Address& to, Mist amount) {
  detail::TxScratch& s = *scratch_;
  // The call's own attached tokens are already in escrow conceptually;
  // its own prior payouts are already out.
  const Mist available =
      s.group->escrow_of(contract_) + attached_ - s.effects.escrow_out;
  if (available < amount)
    return fail("contract escrow underfunded: have " +
                std::to_string(available) + ", need " +
                std::to_string(amount));
  s.effects.escrow_out += amount;
  s.effects.credits[to] += amount;
  return ok_status();
}

// --- Blockchain ----------------------------------------------------------

Blockchain::Blockchain(ChainConfig config) : config_(config) {
  Block genesis;
  genesis.height = 0;
  genesis.previous = crypto::sha256("debuglet-genesis");
  genesis.transactions_root =
      crypto::MerkleTree(std::vector<Bytes>{}).root();
  blocks_.push_back(genesis);
  obs::MetricsRegistry& reg = obs::registry();
  obs_.tx_submitted = &reg.counter("chain.tx_submitted");
  obs_.tx_rejected = &reg.counter("chain.tx_rejected");
  obs_.tx_failed = &reg.counter("chain.tx_failed");
  obs_.access_violations = &reg.counter("chain.access_violations");
  obs_.batches = &reg.counter("chain.batches");
  obs_.gas_charged = &reg.histogram("chain.gas_charged_mist");
  obs_.block_build_ms = &reg.histogram("chain.block_build_ms");
  obs_.event_fanout = &reg.histogram("chain.event_fanout");
  obs_.batch_groups = &reg.histogram("chain.batch.groups");
  obs_.batch_group_size = &reg.histogram("chain.batch.group_size");
  obs_.objects = &reg.gauge("chain.object_store.objects");
  obs_.object_bytes = &reg.gauge("chain.object_store.bytes");
}

Status Blockchain::register_contract(std::unique_ptr<Contract> contract) {
  if (contract == nullptr) return fail("null contract");
  const std::string name = contract->name();
  if (contracts_.contains(name))
    return fail("contract '" + name + "' already registered");
  auto [it, _] = contracts_.emplace(name, std::move(contract));
  it->second->attach(*this);
  return ok_status();
}

void Blockchain::mint(const Address& account, Mist amount) {
  balances_[account] += amount;
}

Mist Blockchain::balance(const Address& account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

std::uint64_t Blockchain::nonce(const Address& account) const {
  auto it = nonces_.find(account);
  return it == nonces_.end() ? 0 : it->second;
}

Transaction Blockchain::make_transaction(const crypto::KeyPair& key,
                                         std::string contract,
                                         std::string function, Bytes arguments,
                                         Mist attached_tokens, Mist gas_budget,
                                         AccessSet access) {
  return make_transaction_with_nonce(
      key, nonce(Address::of(key.public_key())), std::move(contract),
      std::move(function), std::move(arguments), attached_tokens, gas_budget,
      std::move(access));
}

Transaction Blockchain::make_transaction_with_nonce(
    const crypto::KeyPair& key, std::uint64_t nonce, std::string contract,
    std::string function, Bytes arguments, Mist attached_tokens,
    Mist gas_budget, AccessSet access) {
  Transaction tx;
  tx.sender = key.public_key();
  tx.nonce = nonce;
  tx.contract = std::move(contract);
  tx.function = std::move(function);
  tx.arguments = std::move(arguments);
  tx.attached_tokens = attached_tokens;
  tx.gas_budget = gas_budget;
  tx.access = std::move(access);
  tx.access.canonicalize();
  const Bytes body = tx.signing_bytes();
  tx.signature = key.sign(BytesView(body.data(), body.size()));
  return tx;
}

Result<Receipt> Blockchain::submit(const Transaction& tx) {
  std::vector<Transaction> batch;
  batch.push_back(tx);
  auto results = submit_batch(batch, BatchOptions{});
  return std::move(results.front());
}

Result<Bytes> Blockchain::view(const std::string& contract,
                               const std::string& function,
                               BytesView arguments) {
  auto it = contracts_.find(contract);
  if (it == contracts_.end())
    return fail("unknown contract '" + contract + "'");
  detail::GroupView group;
  group.chain = this;
  detail::TxScratch scratch;
  scratch.view_mode = true;
  scratch.group = &group;
  CallContext ctx(*this, contract, Address{}, 0, &scratch);
  // All buffered effects are discarded: a view can never mutate state.
  return it->second->call(ctx, function, arguments);
}

SubscriptionId Blockchain::subscribe(std::string contract, std::string name,
                                     std::string key, EventCallback callback) {
  const SubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, Subscription{std::move(contract), std::move(name),
                                          std::move(key),
                                          std::move(callback)});
  return id;
}

void Blockchain::unsubscribe(SubscriptionId id) { subscriptions_.erase(id); }

bool Blockchain::verify_integrity() const {
  for (std::size_t h = 1; h < blocks_.size(); ++h) {
    const Block& prev = blocks_[h - 1];
    BytesWriter w;
    w.u64(prev.height);
    w.raw(prev.previous.view());
    w.raw(prev.transactions_root.view());
    w.i64(prev.timestamp);
    const crypto::Digest expected =
        crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
    if (!(blocks_[h].previous == expected)) return false;
    std::vector<Bytes> leaves;
    for (const crypto::Digest& d : blocks_[h].transaction_digests)
      leaves.emplace_back(d.bytes.begin(), d.bytes.end());
    if (!(crypto::MerkleTree(leaves).root() == blocks_[h].transactions_root))
      return false;
  }
  return true;
}

Result<crypto::MerkleProof> Blockchain::prove_transaction(
    std::uint64_t height, std::size_t index) const {
  if (height >= blocks_.size()) return fail("no block at that height");
  const Block& block = blocks_[height];
  if (index >= block.transaction_digests.size())
    return fail("no transaction at that index");
  std::vector<Bytes> leaves;
  for (const crypto::Digest& d : block.transaction_digests)
    leaves.emplace_back(d.bytes.begin(), d.bytes.end());
  return crypto::MerkleTree(leaves).prove(index);
}

bool Blockchain::verify_transaction_inclusion(
    const Block& block, const crypto::Digest& tx_digest,
    const crypto::MerkleProof& proof) {
  const Bytes leaf(tx_digest.bytes.begin(), tx_digest.bytes.end());
  return crypto::merkle_verify(block.transactions_root,
                               BytesView(leaf.data(), leaf.size()), proof);
}

Result<Bytes> Blockchain::read_object(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return fail("no object " + std::to_string(id));
  return it->second.data;
}

Mist Blockchain::escrow_balance(const std::string& contract) const {
  auto it = escrow_.find(contract);
  return it == escrow_.end() ? 0 : it->second;
}

const NamedEntry* Blockchain::named_entry(const std::string& full_key) const {
  auto it = named_.find(full_key);
  return it == named_.end() ? nullptr : &it->second;
}

}  // namespace debuglet::chain
