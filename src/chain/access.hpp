// Declared read/write sets for owned-object transactions.
//
// The Sui-Lutris model the chain imitates parallelizes transactions that
// touch disjoint owned objects. A transaction *declares*, at signing time,
// the state keys its contract call will read and write; the batch
// scheduler (chain/parallel.cpp) partitions a block into conflict-free
// groups from these declarations alone, so grouping — and therefore every
// observable of execution — is independent of worker count.
//
// Keys are flat strings with two namespaces:
//   "obj/<id>"              — a StoredObject by id
//   "<contract>/<suffix>"   — named contract state (CallContext read_named/
//                             write_named auto-prefixes the contract name)
//
// A transaction with an EMPTY access set runs in legacy *exclusive* mode:
// it conflicts with every other transaction in its batch (whole-batch
// serialization) and no access enforcement applies. A transaction with a
// non-empty set runs *declared*: touching any undeclared key aborts the
// call with ErrorKind::kAccessViolation and none of its effects commit.
//
// Implicit keys never declared by callers:
//   - the sender account (nonce + balance) is always a write;
//   - objects created by the call are fresh (ids are a pure function of
//     the block height and canonical transaction index) and free to use;
//   - contract escrow moves are commutative deltas, re-checked in
//     canonical order at commit, so escrow is deliberately NOT a conflict
//     key — uncontended purchases do not serialize on the shared pot.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace debuglet::chain {

struct AccessSet {
  std::vector<std::string> reads;
  std::vector<std::string> writes;

  /// True when the transaction opted into declared (parallelizable) mode.
  bool declared() const { return !reads.empty() || !writes.empty(); }

  void add_read(std::string key) { reads.push_back(std::move(key)); }
  void add_write(std::string key) { writes.push_back(std::move(key)); }

  /// Sorts and dedups both sets — the canonical form covered by the
  /// transaction signature.
  void canonicalize() {
    auto tidy = [](std::vector<std::string>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    tidy(reads);
    tidy(writes);
  }

  /// True if `key` may be read (writes imply read permission).
  bool allows_read(const std::string& key) const {
    return std::binary_search(reads.begin(), reads.end(), key) ||
           allows_write(key);
  }

  bool allows_write(const std::string& key) const {
    return std::binary_search(writes.begin(), writes.end(), key);
  }

  /// Appends the canonical encoding (must be canonicalize()d first);
  /// covered by Transaction::signing_bytes.
  void write_to(BytesWriter& w) const {
    w.u32(static_cast<std::uint32_t>(reads.size()));
    for (const std::string& k : reads) w.str(k);
    w.u32(static_cast<std::uint32_t>(writes.size()));
    for (const std::string& k : writes) w.str(k);
  }

  static Result<AccessSet> read_from(BytesReader& r) {
    AccessSet out;
    auto read_list = [&r](std::vector<std::string>& into) -> Status {
      auto n = r.u32();
      if (!n) return n.error();
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto s = r.str();
        if (!s) return s.error();
        into.push_back(std::move(*s));
      }
      return ok_status();
    };
    if (auto s = read_list(out.reads); !s) return s.error();
    if (auto s = read_list(out.writes); !s) return s.error();
    return out;
  }
};

/// The access key naming a StoredObject.
inline std::string object_access_key(std::uint64_t id) {
  return "obj/" + std::to_string(id);
}

/// The full access key of a named contract-state entry.
inline std::string named_access_key(const std::string& contract,
                                    const std::string& key) {
  return contract + "/" + key;
}

}  // namespace debuglet::chain
