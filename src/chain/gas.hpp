// Gas and storage pricing.
//
// Calibrated against the paper's Table II (cost of submitting a Debuglet
// application to the Sui mainnet): total cost grows linearly in payload
// size and a storage rebate is refunded when the stored data is freed.
// Units are MIST (1 SUI = 1e9 MIST), matching Sui's convention.
//
//   Table II:  size   total (SUI)   rebate (SUI)
//              0 B    0.01369       0.00430
//              100 B  0.01585       0.00632
//              1 kB   0.03527       0.02456
//              5 kB   0.12160       0.10562
//              10 kB  0.22953       0.20696
//
// The published points are linear to within rounding:
//   total(size)  = 0.01369 + 21'584e-9 * size   [SUI]
//   rebate(size) = 0.00430 + 20'266e-9 * size   [SUI]
#pragma once

#include <cstdint>

namespace debuglet::chain {

/// MIST amounts (1e-9 SUI).
using Mist = std::uint64_t;

inline constexpr double kMistPerSui = 1e9;

/// Pricing constants for object creation and deletion.
struct GasSchedule {
  Mist computation_fee = 9'373'200;     // flat per transaction
  Mist storage_price_per_byte = 21'584; // charged per payload byte
  std::uint32_t object_overhead_bytes = 200;  // metadata charged as storage
  Mist rebate_per_object = 4'300'000;   // refunded when the object is freed
  Mist rebate_per_byte = 20'266;        // refunded per payload byte

  /// Storage charge for one object of `payload_bytes`.
  Mist storage_fee(std::uint64_t payload_bytes) const {
    return storage_price_per_byte * (object_overhead_bytes + payload_bytes);
  }

  /// Total transaction cost creating one object of `payload_bytes`
  /// (the quantity Table II reports).
  Mist submission_cost(std::uint64_t payload_bytes) const {
    return computation_fee + storage_fee(payload_bytes);
  }

  /// Rebate credited when an object of `payload_bytes` is deleted.
  Mist storage_rebate(std::uint64_t payload_bytes) const {
    return rebate_per_object + rebate_per_byte * payload_bytes;
  }
};

/// Converts MIST to SUI for reports.
inline double mist_to_sui(Mist mist) {
  return static_cast<double>(mist) / kMistPerSui;
}

}  // namespace debuglet::chain
