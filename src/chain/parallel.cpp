// The batch scheduler: verifies, partitions, executes and commits a block
// of transactions (Blockchain::submit_batch).
//
// Four phases:
//   0. prepare   — signature checks on the worker pool (embarrassingly
//                  parallel and the dominant per-tx cost).
//   1. partition — union-find over declared access sets (+ the implicit
//                  sender-account write) yields conflict-free groups.
//                  Any legacy exclusive transaction collapses the batch
//                  into a single group.
//   2. execute   — groups run on the pool; each group executes its
//                  members serially, in canonical order, against a
//                  group-local overlay of the frozen committed state.
//   3. commit    — single-threaded, canonical order: effects, balances,
//                  versions, event sequence numbers and ONE sealed block.
//
// Grouping depends only on the declared sets, and every phase consumes
// state that is a pure function of the batch contents — so receipts,
// events, gas, balances and object versions are bit-identical at any
// worker count. docs/CHAIN.md states the full determinism contract.
#include <atomic>
#include <thread>

#include "chain/execution.hpp"
#include "obs/trace.hpp"

namespace debuglet::chain {
namespace detail {
namespace {

/// Runs fn(0..count) across `workers` threads (inline when 1).
template <typename Fn>
void run_indexed(unsigned workers, std::size_t count, const Fn& fn) {
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < count;) fn(i);
  };
  const std::size_t spawn =
      std::min<std::size_t>(workers, count) - 1;  // this thread works too
  std::vector<std::thread> pool;
  pool.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

std::size_t dsu_find(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

void dsu_union(std::vector<std::size_t>& parent, std::size_t a,
               std::size_t b) {
  a = dsu_find(parent, a);
  b = dsu_find(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

crypto::Digest previous_header_hash(const Block& prev) {
  BytesWriter w;
  w.u64(prev.height);
  w.raw(prev.previous.view());
  w.raw(prev.transactions_root.view());
  w.i64(prev.timestamp);
  return crypto::sha256(BytesView(w.bytes().data(), w.bytes().size()));
}

}  // namespace

void BatchState::prepare(unsigned workers) {
  const std::vector<Transaction>& batch = *txs;
  const std::size_t n = batch.size();
  sig_ok.assign(n, 0);
  contract_ptr.assign(n, nullptr);
  senders.resize(n);
  outcomes.clear();
  outcomes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    chain->obs_.tx_submitted->add();
    senders[i] = Address::of(batch[i].sender);
    auto it = chain->contracts_.find(batch[i].contract);
    if (it != chain->contracts_.end()) contract_ptr[i] = it->second.get();
  }
  run_indexed(workers, n, [&](std::size_t i) {
    const Bytes body = batch[i].signing_bytes();
    sig_ok[i] = crypto::verify(batch[i].sender,
                               BytesView(body.data(), body.size()),
                               batch[i].signature)
                    ? 1
                    : 0;
  });
}

void BatchState::partition() {
  const std::vector<Transaction>& batch = *txs;
  const std::size_t n = batch.size();
  groups.clear();
  bool all_declared = true;
  for (const Transaction& tx : batch)
    if (!tx.access.declared()) {
      all_declared = false;
      break;
    }
  if (!all_declared || n <= 1) {
    // Exclusive mode (or trivial batch): one group, canonical order.
    groups.emplace_back();
    groups.front().resize(n);
    for (std::size_t i = 0; i < n; ++i) groups.front()[i] = i;
    return;
  }
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  struct Touch {
    std::size_t tx;
    bool write;
  };
  std::map<std::string, std::vector<Touch>> touches;
  for (std::size_t i = 0; i < n; ++i) {
    // The sender account (nonce + balance) is an implicit write.
    touches["acct/" + senders[i].hex()].push_back({i, true});
    for (const std::string& k : batch[i].access.reads)
      touches[k].push_back({i, false});
    for (const std::string& k : batch[i].access.writes)
      touches[k].push_back({i, true});
  }
  for (const auto& [key, list] : touches) {
    bool has_writer = false;
    for (const Touch& t : list)
      if (t.write) {
        has_writer = true;
        break;
      }
    if (!has_writer) continue;  // shared reads never conflict
    for (std::size_t j = 1; j < list.size(); ++j)
      dsu_union(parent, list[0].tx, list[j].tx);
  }
  std::map<std::size_t, std::size_t> root_to_group;  // first member order
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = dsu_find(parent, i);
    auto [it, inserted] = root_to_group.try_emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
}

void BatchState::execute(unsigned workers) {
  run_indexed(std::min<std::size_t>(workers, groups.size()), groups.size(),
              [&](std::size_t g) { execute_group(groups[g]); });
}

void BatchState::execute_group(const std::vector<std::size_t>& members) {
  GroupView view;
  view.chain = chain;
  for (std::size_t index : members) execute_tx(view, index);
}

void BatchState::execute_tx(GroupView& view, std::size_t index) {
  const Transaction& tx = (*txs)[index];
  TxOutcome& out = outcomes[index];
  out.sender = senders[index];
  out.contract = tx.contract;
  // Admission, with exactly the legacy submit() checks and messages.
  if (!sig_ok[index]) {
    out.rejected = true;
    out.reject_error = "invalid transaction signature";
    return;
  }
  const std::uint64_t expected = view.nonce_of(out.sender);
  if (tx.nonce != expected) {
    out.rejected = true;
    out.reject_error = "bad nonce: expected " + std::to_string(expected) +
                       ", got " + std::to_string(tx.nonce);
    return;
  }
  if (contract_ptr[index] == nullptr) {
    out.rejected = true;
    out.reject_error = "unknown contract '" + tx.contract + "'";
    return;
  }
  const Mist worst_case = tx.gas_budget + tx.attached_tokens;
  if (view.balance_of(out.sender) < worst_case) {
    out.rejected = true;
    out.reject_error =
        "insufficient balance: have " +
        std::to_string(view.balance_of(out.sender)) + " MIST, need " +
        std::to_string(worst_case);
    return;
  }
  view.nonce_bump[out.sender] += 1;
  out.attached = tx.attached_tokens;

  TxScratch scratch;
  scratch.group = &view;
  scratch.access = tx.access.declared() ? &tx.access : nullptr;
  scratch.id_base = (block_height << 32) |
                    (static_cast<ObjectId>(index) << 12);
  scratch.timestamp = timestamp;
  CallContext ctx(*chain, tx.contract, out.sender, tx.attached_tokens,
                  &scratch);
  auto result = contract_ptr[index]->call(
      ctx, tx.function, BytesView(tx.arguments.data(), tx.arguments.size()));

  // Gas: flat computation plus storage for created objects.
  Mist gas = chain->config_.gas.computation_fee;
  gas += chain->config_.gas.storage_price_per_byte *
         (scratch.effects.objects_created *
              chain->config_.gas.object_overhead_bytes +
          scratch.effects.bytes_stored);

  Receipt& receipt = out.receipt;
  receipt.transaction_digest = tx.digest();
  receipt.block_height = block_height;
  bool success = false;
  if (scratch.violated) {
    receipt.error = scratch.violation;
    receipt.error_kind = ErrorKind::kAccessViolation;
  } else if (!result) {
    receipt.error = result.error_message();
    receipt.error_kind = ErrorKind::kContract;
  } else if (gas > tx.gas_budget) {
    receipt.error = "out of gas: computed " + std::to_string(gas) +
                    " MIST exceeds budget " + std::to_string(tx.gas_budget);
    receipt.error_kind = ErrorKind::kOutOfGas;
  } else {
    success = true;
    receipt.success = true;
    receipt.return_value = std::move(*result);
  }
  if (gas > tx.gas_budget) gas = tx.gas_budget;
  // Defensive clamp; admission guarantees balance covers budget+attached.
  const Mist available = view.balance_of(out.sender) - tx.attached_tokens;
  if (gas > available) gas = available;
  receipt.gas_charged = gas;
  receipt.storage_rebate_accrued = success ? scratch.effects.rebate_accrued : 0;
  out.gas = gas;
  out.apply_effects = success;
  if (success) out.effects = std::move(scratch.effects);
  view.absorb(out.effects, out.sender, gas, tx.attached_tokens, tx.contract,
              success);
}

std::vector<Result<Receipt>> BatchState::commit() {
  const std::size_t n = outcomes.size();
  std::vector<Result<Receipt>> results;
  results.reserve(n);
  std::vector<crypto::Digest> digests;
  const bool timing = chain->obs_.block_build_ms->enabled();
  const std::int64_t begin_us = timing ? obs::wall_now_us() : 0;
  for (std::size_t i = 0; i < n; ++i) {
    TxOutcome& out = outcomes[i];
    if (out.rejected) {
      chain->obs_.tx_rejected->add();
      results.push_back(fail(out.reject_error));
      continue;
    }
    Receipt receipt = std::move(out.receipt);
    bool success = out.apply_effects;
    if (success && out.effects.escrow_out > 0) {
      // Escrow is a commutative pot shared across groups; re-check the
      // payout against live state in canonical order.
      const Mist pot = chain->escrow_[out.contract] + out.attached;
      if (pot < out.effects.escrow_out) {
        success = false;
        receipt.success = false;
        receipt.return_value.clear();
        receipt.error = "contract escrow underfunded at commit: have " +
                        std::to_string(pot) + ", need " +
                        std::to_string(out.effects.escrow_out);
        receipt.error_kind = ErrorKind::kEscrowOverdraw;
        receipt.storage_rebate_accrued = 0;
      }
    }
    ++chain->nonces_[out.sender];
    chain->balances_[out.sender] -= receipt.gas_charged;
    chain->obs_.gas_charged->record(static_cast<double>(receipt.gas_charged));
    if (success) {
      chain->balances_[out.sender] -= out.attached;
      chain->escrow_[out.contract] += out.attached;
      chain->escrow_[out.contract] -= out.effects.escrow_out;
      for (const auto& [account, amount] : out.effects.credits)
        chain->balances_[account] += amount;
      for (StoredObject& obj : out.effects.created) {
        chain->object_bytes_total_ += obj.data.size();
        const ObjectId id = obj.id;
        chain->objects_.insert_or_assign(id, std::move(obj));
      }
      for (auto& [id, data] : out.effects.object_writes) {
        auto it = chain->objects_.find(id);
        if (it == chain->objects_.end()) continue;  // unreachable
        chain->object_bytes_total_ += data.size();
        chain->object_bytes_total_ -= it->second.data.size();
        it->second.data = std::move(data);
        ++it->second.version;
      }
      for (ObjectId id : out.effects.object_deletes) {
        auto it = chain->objects_.find(id);
        if (it == chain->objects_.end()) continue;  // unreachable
        chain->object_bytes_total_ -= it->second.data.size();
        chain->objects_.erase(it);
      }
      for (auto& [key, value] : out.effects.named_writes) {
        if (value) {
          auto it = chain->named_.find(key);
          if (it == chain->named_.end()) {
            chain->named_.emplace(key, NamedEntry{1, std::move(*value)});
          } else {
            ++it->second.version;
            it->second.data = std::move(*value);
          }
        } else {
          chain->named_.erase(key);
        }
      }
      for (Event& ev : out.effects.events) {
        ev.sequence = chain->next_event_seq_++;
        ev.timestamp = timestamp;
        chain->event_log_.push_back(ev);
        std::uint64_t fanout = 0;
        for (const auto& [_, sub] : chain->subscriptions_) {
          if (sub.contract != ev.contract || sub.name != ev.name) continue;
          if (!sub.key.empty() && sub.key != ev.key) continue;
          ++fanout;
          sub.callback(ev);
        }
        chain->obs_.event_fanout->record(static_cast<double>(fanout));
      }
    } else {
      chain->obs_.tx_failed->add();
      if (receipt.error_kind == ErrorKind::kAccessViolation)
        chain->obs_.access_violations->add();
    }
    digests.push_back(receipt.transaction_digest);
    results.push_back(std::move(receipt));
  }
  if (!digests.empty()) {
    Block block;
    block.height = block_height;
    block.previous = previous_header_hash(chain->blocks_.back());
    std::vector<Bytes> leaves;
    leaves.reserve(digests.size());
    for (const crypto::Digest& d : digests)
      leaves.emplace_back(d.bytes.begin(), d.bytes.end());
    block.transactions_root = crypto::MerkleTree(leaves).root();
    block.timestamp = timestamp;
    block.transaction_digests = std::move(digests);
    chain->blocks_.push_back(std::move(block));
  }
  if (timing)
    chain->obs_.block_build_ms->record(
        static_cast<double>(obs::wall_now_us() - begin_us) / 1000.0);
  chain->obs_.batches->add();
  chain->obs_.batch_groups->record(static_cast<double>(groups.size()));
  for (const auto& group : groups)
    chain->obs_.batch_group_size->record(static_cast<double>(group.size()));
  chain->obs_.objects->set(static_cast<double>(chain->objects_.size()));
  chain->obs_.object_bytes->set(
      static_cast<double>(chain->object_bytes_total_));
  return results;
}

}  // namespace detail

std::vector<Result<Receipt>> Blockchain::submit_batch(
    const std::vector<Transaction>& txs, const BatchOptions& options) {
  if (txs.empty()) return {};
  detail::BatchState batch;
  batch.chain = this;
  batch.txs = &txs;
  batch.timestamp = now();
  batch.block_height = blocks_.size();
  const unsigned workers = options.workers == 0 ? 1 : options.workers;
  batch.prepare(workers);
  batch.partition();
  batch.execute(workers);
  return batch.commit();
}

}  // namespace debuglet::chain
