// Reputation-backed accountability for discrimination evidence.
//
// Twin-probe detection (core/discrimination.hpp) produces a verdict the
// initiator alone can see. This contract makes the verdict consequential:
// initiators submit DiscriminationEvidence-derived reports on chain, each
// distinct reporter adds one STRIKE against the implicated AS, and the
// marketplace reads the strike count when quoting/purchasing slots — an
// implicated executor's slots are price-penalized (the buyer pays, and
// the executor collects, a discounted price), so repeated discrimination
// bleeds revenue instead of passing silently.
//
// State, all chain-managed (the contract is stateless and re-entrant):
//   strike records : named entry "as/<asn>"             -> ReputationRecord
//   reporter dedup : named entry "rep/<asn>/<reporter>" -> marker
//
// The per-reporter dedup key makes Report idempotent per (AS, reporter):
// re-running the same detection and re-reporting it does not inflate the
// strike count, while independent initiators each add weight. Reports
// against DIFFERENT ASes touch disjoint keys and parallelize under
// Blockchain::submit_batch; reports against the same AS conflict on
// "as/<asn>" and serialize — exactly the ordering the strike counter
// needs to stay deterministic across worker counts.
#pragma once

#include "chain/chain.hpp"
#include "obs/metrics.hpp"
#include "topology/topology.hpp"

namespace debuglet::marketplace {

inline constexpr const char* kReputationContractName = "reputation";

/// Strike state of one AS (the value under "as/<asn>").
struct ReputationRecord {
  /// Distinct reporters that filed confirmed discrimination evidence.
  std::uint32_t strikes = 0;
  /// Total reports received, duplicates included (audit trail).
  std::uint32_t reports = 0;
  /// Highest confidence (permille, 0..1000) any report carried.
  std::uint32_t max_confidence_permille = 0;
  /// Chain timestamp of the most recent accepted report.
  SimTime last_reported_at = 0;
  Bytes serialize() const;
  static Result<ReputationRecord> parse(BytesView data);
};

/// Report(asn, evidence digest): one strike from the calling address.
struct ReportArgs {
  topology::AsNumber asn = 0;
  /// Detector confidence in permille (0..1000), clamped on write.
  std::uint32_t confidence_permille = 0;
  /// Rounds the sequential test needed (telemetry, stored as max seen).
  std::uint32_t rounds_used = 0;
  /// Free-form evidence line (e.g. the suspect's detail string).
  std::string detail;
  Bytes serialize() const;
  static Result<ReportArgs> parse(BytesView data);
};

/// Get(asn) -> ReputationRecord (zero-valued when never reported).
struct GetReputationArgs {
  topology::AsNumber asn = 0;
  Bytes serialize() const;
  static Result<GetReputationArgs> parse(BytesView data);
};

/// Declared access sets. Report writes the AS record plus its own
/// (AS, reporter) dedup marker; Get reads the record only.
chain::AccessSet access_report(topology::AsNumber asn,
                               const chain::Address& reporter);
chain::AccessSet access_get_reputation(topology::AsNumber asn);

/// The named key (within this contract's namespace) holding the strike
/// record of `asn` — exposed so other contracts can declare cross-contract
/// reads via chain::named_access_key(kReputationContractName, ...).
std::string reputation_as_key(topology::AsNumber asn);

/// Price penalty in percent for an executor whose AS carries `strikes`
/// strikes: 10% per strike, capped at 50%. Pure helper shared by the
/// marketplace quote/purchase paths and their tests.
std::uint32_t reputation_penalty_percent(std::uint32_t strikes);

/// `price` after the strike penalty (rounds down; never below zero).
chain::Mist apply_reputation_penalty(chain::Mist price, std::uint32_t strikes);

class ReputationContract : public chain::Contract {
 public:
  ReputationContract();

  std::string name() const override { return kReputationContractName; }

  Result<Bytes> call(chain::CallContext& context, const std::string& function,
                     BytesView arguments) override;

  void attach(chain::Blockchain& chain) override { chain_ = &chain; }

  // Inspection helpers (committed state only; not entry points).
  std::uint32_t strikes_for(topology::AsNumber asn) const;
  ReputationRecord record_for(topology::AsNumber asn) const;

 private:
  Result<Bytes> report(chain::CallContext& ctx, BytesView args);
  Result<Bytes> get(chain::CallContext& ctx, BytesView args);

  const chain::Blockchain* chain_ = nullptr;  // set by attach()
  struct ObsHandles {
    obs::Counter* strikes_recorded = nullptr;
    obs::Counter* reports_deduped = nullptr;
  };
  ObsHandles obs_;
};

/// Event emitted on every accepted (non-duplicate) strike; the argument is
/// the implicated AS number rendered in decimal.
inline constexpr const char* kEventReputationStrike = "ReputationStrike";

}  // namespace debuglet::marketplace
