#include "marketplace/contract.hpp"

#include <algorithm>

#include "marketplace/reputation.hpp"

namespace debuglet::marketplace {

namespace {

// Named-state keys within the contract's namespace (the chain prefixes
// the contract name, so the full conflict key is e.g.
// "debuglet_marketplace/exec/AS1#2").
std::string exec_key(topology::InterfaceKey key) {
  return "exec/" + key.to_string();
}
std::string slots_key(topology::InterfaceKey key) {
  return "slots/" + key.to_string();
}
std::string apps_key(topology::InterfaceKey client_key,
                     topology::InterfaceKey server_key) {
  return "apps/" + client_key.to_string() + "|" + server_key.to_string();
}
// Published results are indexed under named state, NOT inside the
// application object: ReclaimApplication deletes the application (for its
// storage rebate) but results must stay collectable forever.
std::string result_key(chain::ObjectId application) {
  return "result/" + std::to_string(application);
}

Bytes encode_address(const chain::Address& address) {
  BytesWriter w;
  w.raw(address.digest.view());
  return w.take();
}

Result<chain::Address> decode_address(BytesView data) {
  BytesReader r(data);
  chain::Address out;
  auto raw = r.raw(out.digest.bytes.size());
  if (!raw) return raw.error();
  std::copy(raw->begin(), raw->end(), out.digest.bytes.begin());
  return out;
}

Bytes encode_slots(const std::vector<TimeSlot>& slots) {
  BytesWriter w;
  w.u32(static_cast<std::uint32_t>(slots.size()));
  for (const TimeSlot& slot : slots) write_slot(w, slot);
  return w.take();
}

Result<std::vector<TimeSlot>> decode_slots(BytesView data) {
  BytesReader r(data);
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<TimeSlot> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto slot = read_slot(r);
    if (!slot) return slot.error();
    out.push_back(*slot);
  }
  return out;
}

Bytes encode_ids(const std::vector<chain::ObjectId>& ids) {
  BytesWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (chain::ObjectId id : ids) w.u64(id);
  return w.take();
}

Result<std::vector<chain::ObjectId>> decode_ids(BytesView data) {
  BytesReader r(data);
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<chain::ObjectId> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    out.push_back(*id);
  }
  return out;
}

/// The slot list for `key`, or empty when none have been registered.
std::vector<TimeSlot> read_slot_list(chain::CallContext& ctx,
                                     topology::InterfaceKey key) {
  auto data = ctx.read_named(slots_key(key));
  if (!data) return {};
  auto slots = decode_slots(BytesView(data->data(), data->size()));
  return slots ? std::move(*slots) : std::vector<TimeSlot>{};
}

/// On-chain strike count against `asn` (cross-contract read into the
/// reputation namespace; 0 when never reported). An undeclared read
/// latches an access violation and aborts the transaction — callers built
/// their access set via access_lookup_slot / access_purchase_slot, which
/// declare the two reputation keys.
std::uint32_t strikes_of(chain::CallContext& ctx, topology::AsNumber asn) {
  auto data =
      ctx.read_named_of(kReputationContractName, reputation_as_key(asn));
  if (!data) return 0;
  auto record = ReputationRecord::parse(BytesView(data->data(), data->size()));
  return record ? record->strikes : 0;
}

}  // namespace

chain::AccessSet access_register_executor(topology::InterfaceKey key) {
  chain::AccessSet access;
  access.add_write(chain::named_access_key(kContractName, exec_key(key)));
  return access;
}

chain::AccessSet access_register_time_slot(topology::InterfaceKey key) {
  chain::AccessSet access;
  access.add_read(chain::named_access_key(kContractName, exec_key(key)));
  access.add_write(chain::named_access_key(kContractName, slots_key(key)));
  return access;
}

chain::AccessSet access_lookup_slot(topology::InterfaceKey client_key,
                                    topology::InterfaceKey server_key) {
  chain::AccessSet access;
  access.add_read(
      chain::named_access_key(kContractName, slots_key(client_key)));
  access.add_read(
      chain::named_access_key(kContractName, slots_key(server_key)));
  // Quotes consult the reputation contract for strike penalties.
  access.add_read(chain::named_access_key(kReputationContractName,
                                          reputation_as_key(client_key.asn)));
  access.add_read(chain::named_access_key(kReputationContractName,
                                          reputation_as_key(server_key.asn)));
  return access;
}

chain::AccessSet access_purchase_slot(topology::InterfaceKey client_key,
                                      topology::InterfaceKey server_key) {
  chain::AccessSet access;
  access.add_read(
      chain::named_access_key(kContractName, exec_key(client_key)));
  access.add_read(
      chain::named_access_key(kContractName, exec_key(server_key)));
  access.add_write(
      chain::named_access_key(kContractName, slots_key(client_key)));
  access.add_write(
      chain::named_access_key(kContractName, slots_key(server_key)));
  access.add_write(
      chain::named_access_key(kContractName, apps_key(client_key, server_key)));
  // Purchases re-derive the reputation penalty at commit time.
  access.add_read(chain::named_access_key(kReputationContractName,
                                          reputation_as_key(client_key.asn)));
  access.add_read(chain::named_access_key(kReputationContractName,
                                          reputation_as_key(server_key.asn)));
  return access;
}

chain::AccessSet access_result_ready(chain::ObjectId application) {
  chain::AccessSet access;
  access.add_write(chain::object_access_key(application));
  access.add_write(chain::named_access_key(kContractName,
                                           result_key(application)));
  return access;
}

chain::AccessSet access_reclaim_application(chain::ObjectId application) {
  chain::AccessSet access;
  access.add_write(chain::object_access_key(application));
  return access;
}

MarketplaceContract::MarketplaceContract() {
  obs::MetricsRegistry& reg = obs::registry();
  obs_.executors_registered = &reg.counter("marketplace.executors_registered");
  obs_.slots_registered = &reg.counter("marketplace.slots_registered");
  obs_.slots_purchased = &reg.counter("marketplace.slots_purchased");
  obs_.results_reported = &reg.counter("marketplace.results_reported");
  obs_.escrow_volume = &reg.counter("marketplace.escrow_volume_mist");
  obs_.result_latency_ms = &reg.histogram("marketplace.result_latency_ms");
}

Result<Bytes> MarketplaceContract::call(chain::CallContext& context,
                                        const std::string& function,
                                        BytesView arguments) {
  if (function == "RegisterExecutor")
    return register_executor(context, arguments);
  if (function == "RegisterTimeSlot")
    return register_time_slot(context, arguments);
  if (function == "LookupSlot") return lookup_slot(context, arguments);
  if (function == "PurchaseSlot") return purchase_slot(context, arguments);
  if (function == "ResultReady") return result_ready(context, arguments);
  if (function == "ReclaimApplication")
    return reclaim_application(context, arguments);
  if (function == "LookupResult") return lookup_result(context, arguments);
  return fail("unknown function '" + function + "'");
}

Result<Bytes> MarketplaceContract::register_executor(chain::CallContext& ctx,
                                                     BytesView args) {
  auto parsed = RegisterExecutorArgs::parse(args);
  if (!parsed) return parsed.error();
  const std::string key = exec_key(parsed->key);
  if (auto existing = ctx.read_named(key); existing) {
    auto owner = decode_address(BytesView(existing->data(), existing->size()));
    if (!owner) return owner.error();
    if (!(*owner == ctx.sender()))
      return fail("executor " + parsed->key.to_string() +
                  " already registered to a different address");
    return Bytes{};  // idempotent re-registration
  }
  if (auto s = ctx.write_named(key, encode_address(ctx.sender())); !s)
    return s.error();
  obs_.executors_registered->add();
  ctx.emit_event(kEventExecutorRegistered, parsed->key.to_string(), Bytes{});
  return Bytes{};
}

Result<Bytes> MarketplaceContract::register_time_slot(chain::CallContext& ctx,
                                                      BytesView args) {
  auto parsed = RegisterTimeSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  auto registered = ctx.read_named(exec_key(parsed->key));
  if (!registered)
    return fail("executor " + parsed->key.to_string() + " not registered");
  auto owner =
      decode_address(BytesView(registered->data(), registered->size()));
  if (!owner) return owner.error();
  // The paper: "first checks that the provided AS number and interface ID
  // are, in fact, associated with the calling executor".
  if (!(*owner == ctx.sender()))
    return fail("caller does not own executor " + parsed->key.to_string());
  for (const TimeSlot& slot : parsed->slots) {
    if (slot.end <= slot.start)
      return fail("slot with non-positive duration");
  }
  std::vector<TimeSlot> list = read_slot_list(ctx, parsed->key);
  list.insert(list.end(), parsed->slots.begin(), parsed->slots.end());
  std::sort(list.begin(), list.end(),
            [](const TimeSlot& a, const TimeSlot& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  // Slots must be non-overlapping per the paper's ExecutionSlotsMap.
  for (std::size_t i = 0; i + 1 < list.size(); ++i) {
    if (list[i].end > list[i + 1].start)
      return fail("overlapping time slots for " + parsed->key.to_string());
  }
  if (auto s = ctx.write_named(slots_key(parsed->key), encode_slots(list)); !s)
    return s.error();
  obs_.slots_registered->add(parsed->slots.size());
  return Bytes{};
}

SlotQuote MarketplaceContract::quote(chain::CallContext& ctx,
                                     const LookupSlotArgs& q) const {
  SlotQuote out;
  const std::vector<TimeSlot> client_slots = read_slot_list(ctx, q.client_key);
  const std::vector<TimeSlot> server_slots = read_slot_list(ctx, q.server_key);
  out.client_strikes = strikes_of(ctx, q.client_key.asn);
  out.server_strikes = strikes_of(ctx, q.server_key.asn);
  // Earliest pair of slots with a nonempty common window and sufficient
  // resources on both sides.
  for (const TimeSlot& cs : client_slots) {
    if (!cs.accommodates(q.cores, q.memory_bytes, q.bandwidth_bps)) continue;
    if (cs.end <= q.earliest_start) continue;
    for (const TimeSlot& ss : server_slots) {
      if (!ss.accommodates(q.cores, q.memory_bytes, q.bandwidth_bps))
        continue;
      if (ss.end <= q.earliest_start) continue;
      const SimTime start =
          std::max({cs.start, ss.start, q.earliest_start});
      const SimTime end = std::min(cs.end, ss.end);
      if (start >= end) continue;
      if (!out.found || start < out.window_start) {
        out.found = true;
        out.client_slot = cs;
        out.server_slot = ss;
        out.window_start = start;
        out.window_end = end;
        out.list_price = cs.price + ss.price;
        // Reputation penalty: each implicated side sells at a discount
        // (10% per strike, capped at 50%) — the accountability teeth of
        // the discrimination detector's on-chain reports.
        out.total_price =
            apply_reputation_penalty(cs.price, out.client_strikes) +
            apply_reputation_penalty(ss.price, out.server_strikes);
      }
    }
  }
  return out;
}

Result<Bytes> MarketplaceContract::lookup_slot(chain::CallContext& ctx,
                                               BytesView args) {
  auto parsed = LookupSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  return quote(ctx, *parsed).serialize();
}

Result<Bytes> MarketplaceContract::purchase_slot(chain::CallContext& ctx,
                                                 BytesView args) {
  auto parsed = PurchaseSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  auto client_exec = ctx.read_named(exec_key(parsed->client_key));
  if (!client_exec)
    return fail("executor " + parsed->client_key.to_string() +
                " not registered");
  auto server_exec = ctx.read_named(exec_key(parsed->server_key));
  if (!server_exec)
    return fail("executor " + parsed->server_key.to_string() +
                " not registered");
  auto client_address =
      decode_address(BytesView(client_exec->data(), client_exec->size()));
  if (!client_address) return client_address.error();
  auto server_address =
      decode_address(BytesView(server_exec->data(), server_exec->size()));
  if (!server_address) return server_address.error();

  // Both slots must still be available exactly as quoted (no partial
  // purchase: validate both before consuming either).
  std::vector<TimeSlot> client_list = read_slot_list(ctx, parsed->client_key);
  std::vector<TimeSlot> server_list = read_slot_list(ctx, parsed->server_key);
  auto client_it =
      std::find(client_list.begin(), client_list.end(), parsed->client_slot);
  if (client_it == client_list.end())
    return fail("client slot not available at " +
                parsed->client_key.to_string());
  auto server_it =
      std::find(server_list.begin(), server_list.end(), parsed->server_slot);
  if (server_it == server_list.end())
    return fail("server slot not available at " +
                parsed->server_key.to_string());

  // The paper: "first verifies that the embedded tokens suffice for the
  // specified execution slots". Reputation penalties are re-derived at
  // commit time from the same committed strike records the quote read, so
  // quote and purchase always agree within a batch.
  const chain::Mist client_price = apply_reputation_penalty(
      parsed->client_slot.price, strikes_of(ctx, parsed->client_key.asn));
  const chain::Mist server_price = apply_reputation_penalty(
      parsed->server_slot.price, strikes_of(ctx, parsed->server_key.asn));
  const chain::Mist price = client_price + server_price;
  if (ctx.attached_tokens() < price)
    return fail("attached tokens " + std::to_string(ctx.attached_tokens()) +
                " below slot price " + std::to_string(price));

  const SimTime window_start =
      std::max(parsed->client_slot.start, parsed->server_slot.start);
  const SimTime window_end =
      std::min(parsed->client_slot.end, parsed->server_slot.end);
  if (window_start >= window_end)
    return fail("slots share no common time window");

  client_list.erase(client_it);
  server_list.erase(server_it);
  if (auto s = ctx.write_named(slots_key(parsed->client_key),
                               encode_slots(client_list));
      !s)
    return s.error();
  if (auto s = ctx.write_named(slots_key(parsed->server_key),
                               encode_slots(server_list));
      !s)
    return s.error();

  // Create the two application objects with the tokens embedded.
  auto make_app = [&](topology::InterfaceKey key, chain::Address address,
                      std::uint8_t role, const ApplicationPayload& payload,
                      chain::Mist tokens) -> Result<chain::ObjectId> {
    ApplicationObject obj;
    obj.executor_key = key;
    obj.role = role;
    obj.window_start = window_start;
    obj.window_end = window_end;
    obj.embedded_tokens = tokens;
    obj.payload = payload;
    obj.executor_address = address;
    return ctx.create_object(obj.serialize());
  };

  auto client_id = make_app(parsed->client_key, *client_address, 0,
                            parsed->client_app, client_price);
  if (!client_id) return client_id.error();
  auto server_id = make_app(parsed->server_key, *server_address, 1,
                            parsed->server_app, server_price);
  if (!server_id) return server_id.error();

  // Refund any excess attached tokens to the initiator.
  if (ctx.attached_tokens() > price) {
    if (auto s = ctx.pay_from_escrow(ctx.sender(),
                                     ctx.attached_tokens() - price);
        !s)
      return s.error();
  }

  obs_.slots_purchased->add(2);
  obs_.escrow_volume->add(price);

  const std::string applications =
      apps_key(parsed->client_key, parsed->server_key);
  std::vector<chain::ObjectId> ids;
  if (auto existing = ctx.read_named(applications); existing) {
    if (auto decoded =
            decode_ids(BytesView(existing->data(), existing->size()));
        decoded)
      ids = std::move(*decoded);
  }
  ids.push_back(*client_id);
  ids.push_back(*server_id);
  if (auto s = ctx.write_named(applications, encode_ids(ids)); !s)
    return s.error();

  // Notify the executors, which "must have subscribed to the event with
  // arguments containing their AS number and interface ID".
  BytesWriter cw;
  cw.u64(*client_id);
  ctx.emit_event(kEventDebugletDeployed, parsed->client_key.to_string(),
                 cw.take());
  BytesWriter sw;
  sw.u64(*server_id);
  ctx.emit_event(kEventDebugletDeployed, parsed->server_key.to_string(),
                 sw.take());

  PurchaseReceipt receipt;
  receipt.client_application = *client_id;
  receipt.server_application = *server_id;
  receipt.window_start = window_start;
  receipt.window_end = window_end;
  return receipt.serialize();
}

Result<Bytes> MarketplaceContract::result_ready(chain::CallContext& ctx,
                                                BytesView args) {
  auto parsed = ResultReadyArgs::parse(args);
  if (!parsed) return parsed.error();
  auto data = ctx.read_object(parsed->application);
  if (!data)
    return fail("no pending application " +
                std::to_string(parsed->application));
  auto app = ApplicationObject::parse(BytesView(data->data(), data->size()));
  if (!app) return app.error();
  if (app->reported)
    return fail("result already reported for application " +
                std::to_string(parsed->application));
  if (!(app->executor_address == ctx.sender()))
    return fail("caller is not the executor assigned to application " +
                std::to_string(parsed->application));

  // Pay the embedded tokens out to the executor.
  if (auto s = ctx.pay_from_escrow(ctx.sender(), app->embedded_tokens); !s)
    return s.error();

  auto result_object = ctx.create_object(parsed->result);
  if (!result_object) return result_object.error();
  app->reported = true;
  app->reported_at = ctx.timestamp();
  app->result_object = *result_object;
  app->result = parsed->result;
  if (auto s = ctx.write_object(parsed->application, app->serialize()); !s)
    return s.error();
  // Index the published result under named state so it outlives the
  // application object (freed by ReclaimApplication for its rebate).
  ResultEntry published;
  published.found = true;
  published.result_object = app->result_object;
  published.reported_at = app->reported_at;
  published.result = app->result;
  if (auto s = ctx.write_named(result_key(parsed->application),
                               published.serialize());
      !s)
    return s.error();

  obs_.results_reported->add();
  // Latency between the end of the purchased window and the report landing
  // on chain (clamped: early reports inside the window count as zero).
  const SimTime lag = app->reported_at - app->window_end;
  obs_.result_latency_ms->record(lag > 0 ? duration::to_ms(lag) : 0.0);

  BytesWriter w;
  w.u64(app->result_object);
  ctx.emit_event(kEventResultReady, std::to_string(parsed->application),
                 w.take());
  return Bytes{};
}

Result<Bytes> MarketplaceContract::reclaim_application(
    chain::CallContext& ctx, BytesView args) {
  auto parsed = ReclaimApplicationArgs::parse(args);
  if (!parsed) return parsed.error();
  auto data = ctx.read_object(parsed->application);
  if (!data)
    return fail("no application " + std::to_string(parsed->application));
  auto app = ApplicationObject::parse(BytesView(data->data(), data->size()));
  if (!app) return app.error();
  // Only after the result exists: freeing the bytecode earlier would leave
  // the executor unable to fetch it.
  if (!app->reported)
    return fail("application " + std::to_string(parsed->application) +
                " has no reported result yet");
  auto owner = ctx.object_owner(parsed->application);
  if (!owner) return owner.error();
  if (!(*owner == ctx.sender()))
    return fail("only the purchasing initiator may reclaim application " +
                std::to_string(parsed->application));
  // delete_object credits the storage rebate to the owner (the initiator).
  if (auto s = ctx.delete_object(parsed->application); !s) return s.error();
  return Bytes{};
}

Result<Bytes> MarketplaceContract::lookup_result(chain::CallContext& ctx,
                                                 BytesView args) {
  auto parsed = LookupResultArgs::parse(args);
  if (!parsed) return parsed.error();
  auto entry = ctx.read_named(result_key(parsed->application));
  if (!entry) return ResultEntry{}.serialize();
  return *entry;
}

std::size_t MarketplaceContract::registered_executors() const {
  if (chain_ == nullptr) return 0;
  const std::string prefix =
      chain::named_access_key(kContractName, "exec/");
  std::size_t count = 0;
  const auto& named = chain_->named_state();
  for (auto it = named.lower_bound(prefix);
       it != named.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    ++count;
  return count;
}

std::vector<TimeSlot> MarketplaceContract::available_slots(
    topology::InterfaceKey key) const {
  if (chain_ == nullptr) return {};
  const chain::NamedEntry* entry = chain_->named_entry(
      chain::named_access_key(kContractName, slots_key(key)));
  if (entry == nullptr) return {};
  auto slots = decode_slots(BytesView(entry->data.data(), entry->data.size()));
  return slots ? std::move(*slots) : std::vector<TimeSlot>{};
}

std::vector<chain::ObjectId> MarketplaceContract::applications_for(
    topology::InterfaceKey client_key, topology::InterfaceKey server_key)
    const {
  if (chain_ == nullptr) return {};
  const chain::NamedEntry* entry = chain_->named_entry(chain::named_access_key(
      kContractName, apps_key(client_key, server_key)));
  if (entry == nullptr) return {};
  auto ids = decode_ids(BytesView(entry->data.data(), entry->data.size()));
  return ids ? std::move(*ids) : std::vector<chain::ObjectId>{};
}

}  // namespace debuglet::marketplace
