#include "marketplace/contract.hpp"

#include <algorithm>

namespace debuglet::marketplace {

MarketplaceContract::MarketplaceContract() {
  obs::MetricsRegistry& reg = obs::registry();
  obs_.executors_registered = &reg.counter("marketplace.executors_registered");
  obs_.slots_registered = &reg.counter("marketplace.slots_registered");
  obs_.slots_purchased = &reg.counter("marketplace.slots_purchased");
  obs_.results_reported = &reg.counter("marketplace.results_reported");
  obs_.escrow_volume = &reg.counter("marketplace.escrow_volume_mist");
  obs_.result_latency_ms = &reg.histogram("marketplace.result_latency_ms");
}

Result<Bytes> MarketplaceContract::call(chain::CallContext& context,
                                        const std::string& function,
                                        BytesView arguments) {
  if (function == "RegisterExecutor")
    return register_executor(context, arguments);
  if (function == "RegisterTimeSlot")
    return register_time_slot(context, arguments);
  if (function == "LookupSlot") return lookup_slot(context, arguments);
  if (function == "PurchaseSlot") return purchase_slot(context, arguments);
  if (function == "ResultReady") return result_ready(context, arguments);
  if (function == "ReclaimApplication")
    return reclaim_application(context, arguments);
  if (function == "LookupResult") return lookup_result(context, arguments);
  return fail("unknown function '" + function + "'");
}

Result<Bytes> MarketplaceContract::register_executor(chain::CallContext& ctx,
                                                     BytesView args) {
  auto parsed = RegisterExecutorArgs::parse(args);
  if (!parsed) return parsed.error();
  auto [it, inserted] = executors_.emplace(parsed->key, ctx.sender());
  if (!inserted) {
    if (!(it->second == ctx.sender()))
      return fail("executor " + parsed->key.to_string() +
                  " already registered to a different address");
    return Bytes{};  // idempotent re-registration
  }
  obs_.executors_registered->add();
  ctx.emit_event(kEventExecutorRegistered, parsed->key.to_string(), Bytes{});
  return Bytes{};
}

Result<Bytes> MarketplaceContract::register_time_slot(chain::CallContext& ctx,
                                                      BytesView args) {
  auto parsed = RegisterTimeSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  auto it = executors_.find(parsed->key);
  if (it == executors_.end())
    return fail("executor " + parsed->key.to_string() + " not registered");
  // The paper: "first checks that the provided AS number and interface ID
  // are, in fact, associated with the calling executor".
  if (!(it->second == ctx.sender()))
    return fail("caller does not own executor " + parsed->key.to_string());
  for (const TimeSlot& slot : parsed->slots) {
    if (slot.end <= slot.start)
      return fail("slot with non-positive duration");
  }
  auto& list = slots_[parsed->key];
  list.insert(list.end(), parsed->slots.begin(), parsed->slots.end());
  std::sort(list.begin(), list.end(),
            [](const TimeSlot& a, const TimeSlot& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  // Slots must be non-overlapping per the paper's ExecutionSlotsMap.
  for (std::size_t i = 0; i + 1 < list.size(); ++i) {
    if (list[i].end > list[i + 1].start)
      return fail("overlapping time slots for " + parsed->key.to_string());
  }
  obs_.slots_registered->add(parsed->slots.size());
  return Bytes{};
}

SlotQuote MarketplaceContract::quote(const LookupSlotArgs& q) const {
  SlotQuote out;
  auto cit = slots_.find(q.client_key);
  auto sit = slots_.find(q.server_key);
  if (cit == slots_.end() || sit == slots_.end()) return out;
  // Earliest pair of slots with a nonempty common window and sufficient
  // resources on both sides.
  for (const TimeSlot& cs : cit->second) {
    if (!cs.accommodates(q.cores, q.memory_bytes, q.bandwidth_bps)) continue;
    if (cs.end <= q.earliest_start) continue;
    for (const TimeSlot& ss : sit->second) {
      if (!ss.accommodates(q.cores, q.memory_bytes, q.bandwidth_bps))
        continue;
      if (ss.end <= q.earliest_start) continue;
      const SimTime start =
          std::max({cs.start, ss.start, q.earliest_start});
      const SimTime end = std::min(cs.end, ss.end);
      if (start >= end) continue;
      if (!out.found || start < out.window_start) {
        out.found = true;
        out.client_slot = cs;
        out.server_slot = ss;
        out.window_start = start;
        out.window_end = end;
        out.total_price = cs.price + ss.price;
      }
    }
  }
  return out;
}

Result<Bytes> MarketplaceContract::lookup_slot(chain::CallContext&,
                                               BytesView args) {
  auto parsed = LookupSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  return quote(*parsed).serialize();
}

Result<Bytes> MarketplaceContract::purchase_slot(chain::CallContext& ctx,
                                                 BytesView args) {
  auto parsed = PurchaseSlotArgs::parse(args);
  if (!parsed) return parsed.error();
  if (!executors_.contains(parsed->client_key))
    return fail("executor " + parsed->client_key.to_string() +
                " not registered");
  if (!executors_.contains(parsed->server_key))
    return fail("executor " + parsed->server_key.to_string() +
                " not registered");

  // Both slots must still be available exactly as quoted.
  auto take_slot = [this](topology::InterfaceKey key,
                          const TimeSlot& want) -> Status {
    auto& list = slots_[key];
    auto it = std::find(list.begin(), list.end(), want);
    if (it == list.end())
      return fail("slot not available at " + key.to_string());
    list.erase(it);
    return ok_status();
  };
  // Validate availability before consuming either (no partial purchase).
  {
    const auto& clist = slots_[parsed->client_key];
    const auto& slist = slots_[parsed->server_key];
    if (std::find(clist.begin(), clist.end(), parsed->client_slot) ==
        clist.end())
      return fail("client slot not available at " +
                  parsed->client_key.to_string());
    if (std::find(slist.begin(), slist.end(), parsed->server_slot) ==
        slist.end())
      return fail("server slot not available at " +
                  parsed->server_key.to_string());
  }

  // The paper: "first verifies that the embedded tokens suffice for the
  // specified execution slots".
  const chain::Mist price =
      parsed->client_slot.price + parsed->server_slot.price;
  if (ctx.attached_tokens() < price)
    return fail("attached tokens " + std::to_string(ctx.attached_tokens()) +
                " below slot price " + std::to_string(price));

  const SimTime window_start =
      std::max(parsed->client_slot.start, parsed->server_slot.start);
  const SimTime window_end =
      std::min(parsed->client_slot.end, parsed->server_slot.end);
  if (window_start >= window_end)
    return fail("slots share no common time window");

  if (auto s = take_slot(parsed->client_key, parsed->client_slot); !s)
    return s.error();
  if (auto s = take_slot(parsed->server_key, parsed->server_slot); !s)
    return s.error();

  // Create the two application objects with the tokens embedded.
  auto make_app = [&](topology::InterfaceKey key, std::uint8_t role,
                      const ApplicationPayload& payload,
                      chain::Mist tokens) -> Result<chain::ObjectId> {
    ApplicationObject obj;
    obj.executor_key = key;
    obj.role = role;
    obj.window_start = window_start;
    obj.window_end = window_end;
    obj.embedded_tokens = tokens;
    obj.payload = payload;
    auto id = ctx.create_object(obj.serialize());
    if (!id) return id;
    pending_[*id] = PendingApplication{key, tokens, window_end, false};
    return id;
  };

  auto client_id = make_app(parsed->client_key, 0, parsed->client_app,
                            parsed->client_slot.price);
  if (!client_id) return client_id.error();
  auto server_id = make_app(parsed->server_key, 1, parsed->server_app,
                            parsed->server_slot.price);
  if (!server_id) return server_id.error();

  // Refund any excess attached tokens to the initiator.
  if (ctx.attached_tokens() > price) {
    if (auto s = ctx.pay_from_escrow(ctx.sender(),
                                     ctx.attached_tokens() - price);
        !s)
      return s.error();
  }

  obs_.slots_purchased->add(2);
  obs_.escrow_volume->add(price);

  MeasurementKey mk{parsed->client_key, parsed->server_key, window_start,
                    window_end};
  applications_[mk].push_back(*client_id);
  applications_[mk].push_back(*server_id);

  // Notify the executors, which "must have subscribed to the event with
  // arguments containing their AS number and interface ID".
  BytesWriter cw;
  cw.u64(*client_id);
  ctx.emit_event(kEventDebugletDeployed, parsed->client_key.to_string(),
                 cw.take());
  BytesWriter sw;
  sw.u64(*server_id);
  ctx.emit_event(kEventDebugletDeployed, parsed->server_key.to_string(),
                 sw.take());

  PurchaseReceipt receipt;
  receipt.client_application = *client_id;
  receipt.server_application = *server_id;
  receipt.window_start = window_start;
  receipt.window_end = window_end;
  return receipt.serialize();
}

Result<Bytes> MarketplaceContract::result_ready(chain::CallContext& ctx,
                                                BytesView args) {
  auto parsed = ResultReadyArgs::parse(args);
  if (!parsed) return parsed.error();
  auto it = pending_.find(parsed->application);
  if (it == pending_.end())
    return fail("no pending application " +
                std::to_string(parsed->application));
  PendingApplication& pending = it->second;
  if (pending.reported)
    return fail("result already reported for application " +
                std::to_string(parsed->application));
  auto exec_it = executors_.find(pending.executor_key);
  if (exec_it == executors_.end() || !(exec_it->second == ctx.sender()))
    return fail("caller is not the executor assigned to application " +
                std::to_string(parsed->application));

  // Pay the embedded tokens out to the executor.
  if (auto s = ctx.pay_from_escrow(ctx.sender(), pending.embedded_tokens); !s)
    return s.error();
  pending.reported = true;

  ResultEntry entry;
  entry.found = true;
  entry.reported_at = ctx.timestamp();
  entry.result = parsed->result;
  auto object_id = ctx.create_object(parsed->result);
  if (!object_id) return object_id.error();
  entry.result_object = *object_id;
  results_[parsed->application] = entry;

  obs_.results_reported->add();
  // Latency between the end of the purchased window and the report landing
  // on chain (clamped: early reports inside the window count as zero).
  const SimTime lag = entry.reported_at - pending.window_end;
  obs_.result_latency_ms->record(lag > 0 ? duration::to_ms(lag) : 0.0);

  BytesWriter w;
  w.u64(entry.result_object);
  ctx.emit_event(kEventResultReady, std::to_string(parsed->application),
                 w.take());
  return Bytes{};
}

Result<Bytes> MarketplaceContract::reclaim_application(
    chain::CallContext& ctx, BytesView args) {
  auto parsed = ReclaimApplicationArgs::parse(args);
  if (!parsed) return parsed.error();
  auto it = pending_.find(parsed->application);
  if (it == pending_.end())
    return fail("no application " + std::to_string(parsed->application));
  // Only after the result exists: freeing the bytecode earlier would leave
  // the executor unable to fetch it.
  if (!it->second.reported)
    return fail("application " + std::to_string(parsed->application) +
                " has no reported result yet");
  auto owner = ctx.object_owner(parsed->application);
  if (!owner) return owner.error();
  if (!(*owner == ctx.sender()))
    return fail("only the purchasing initiator may reclaim application " +
                std::to_string(parsed->application));
  // delete_object credits the storage rebate to the owner (the initiator).
  if (auto s = ctx.delete_object(parsed->application); !s) return s.error();
  pending_.erase(it);
  return Bytes{};
}

Result<Bytes> MarketplaceContract::lookup_result(chain::CallContext&,
                                                 BytesView args) {
  auto parsed = LookupResultArgs::parse(args);
  if (!parsed) return parsed.error();
  auto it = results_.find(parsed->application);
  if (it == results_.end()) return ResultEntry{}.serialize();
  return it->second.serialize();
}

std::vector<TimeSlot> MarketplaceContract::available_slots(
    topology::InterfaceKey key) const {
  auto it = slots_.find(key);
  return it == slots_.end() ? std::vector<TimeSlot>{} : it->second;
}

std::vector<chain::ObjectId> MarketplaceContract::applications_for(
    topology::InterfaceKey client_key, topology::InterfaceKey server_key)
    const {
  std::vector<chain::ObjectId> out;
  for (const auto& [mk, ids] : applications_) {
    if (mk.client == client_key && mk.server == server_key)
      out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

}  // namespace debuglet::marketplace
