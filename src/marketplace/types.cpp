#include "marketplace/types.hpp"

#include <algorithm>

namespace debuglet::marketplace {

namespace {

// Generic helpers so each codec stays a flat, readable field list.
#define DBG_TRY(var, expr)            \
  auto var = (expr);                  \
  if (!var) return var.error()

void write_params(BytesWriter& w, const std::vector<std::int64_t>& params) {
  w.varint(params.size());
  for (std::int64_t p : params) w.i64(p);
}

Result<std::vector<std::int64_t>> read_params(BytesReader& r) {
  DBG_TRY(count, r.varint());
  if (*count > 1024) return fail("too many parameters");
  std::vector<std::int64_t> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    DBG_TRY(v, r.i64());
    out.push_back(*v);
  }
  return out;
}

}  // namespace

void write_key(BytesWriter& w, topology::InterfaceKey key) {
  w.u32(key.asn);
  w.u16(key.interface);
}

Result<topology::InterfaceKey> read_key(BytesReader& r) {
  DBG_TRY(asn, r.u32());
  DBG_TRY(intf, r.u16());
  return topology::InterfaceKey{*asn, *intf};
}

void write_slot(BytesWriter& w, const TimeSlot& slot) {
  w.u32(slot.cores);
  w.u64(slot.memory_bytes);
  w.u64(slot.bandwidth_bps);
  w.i64(slot.start);
  w.i64(slot.end);
  w.u64(slot.price);
}

Result<TimeSlot> read_slot(BytesReader& r) {
  TimeSlot s;
  DBG_TRY(cores, r.u32());
  s.cores = *cores;
  DBG_TRY(memory, r.u64());
  s.memory_bytes = *memory;
  DBG_TRY(bw, r.u64());
  s.bandwidth_bps = *bw;
  DBG_TRY(start, r.i64());
  s.start = *start;
  DBG_TRY(end, r.i64());
  s.end = *end;
  DBG_TRY(price, r.u64());
  s.price = *price;
  return s;
}

Bytes RegisterExecutorArgs::serialize() const {
  BytesWriter w;
  write_key(w, key);
  return w.take();
}

Result<RegisterExecutorArgs> RegisterExecutorArgs::parse(BytesView data) {
  BytesReader r(data);
  DBG_TRY(key, read_key(r));
  if (!r.exhausted()) return fail("RegisterExecutor: trailing bytes");
  return RegisterExecutorArgs{*key};
}

Bytes RegisterTimeSlotArgs::serialize() const {
  BytesWriter w;
  write_key(w, key);
  w.varint(slots.size());
  for (const TimeSlot& s : slots) write_slot(w, s);
  return w.take();
}

Result<RegisterTimeSlotArgs> RegisterTimeSlotArgs::parse(BytesView data) {
  BytesReader r(data);
  RegisterTimeSlotArgs out;
  DBG_TRY(key, read_key(r));
  out.key = *key;
  DBG_TRY(count, r.varint());
  if (*count > 65536) return fail("RegisterTimeSlot: too many slots");
  out.slots.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    DBG_TRY(slot, read_slot(r));
    out.slots.push_back(*slot);
  }
  if (!r.exhausted()) return fail("RegisterTimeSlot: trailing bytes");
  return out;
}

Bytes LookupSlotArgs::serialize() const {
  BytesWriter w;
  write_key(w, client_key);
  write_key(w, server_key);
  w.u32(cores);
  w.u64(memory_bytes);
  w.u64(bandwidth_bps);
  w.i64(earliest_start);
  return w.take();
}

Result<LookupSlotArgs> LookupSlotArgs::parse(BytesView data) {
  BytesReader r(data);
  LookupSlotArgs out;
  DBG_TRY(ck, read_key(r));
  out.client_key = *ck;
  DBG_TRY(sk, read_key(r));
  out.server_key = *sk;
  DBG_TRY(cores, r.u32());
  out.cores = *cores;
  DBG_TRY(memory, r.u64());
  out.memory_bytes = *memory;
  DBG_TRY(bw, r.u64());
  out.bandwidth_bps = *bw;
  DBG_TRY(earliest, r.i64());
  out.earliest_start = *earliest;
  if (!r.exhausted()) return fail("LookupSlot: trailing bytes");
  return out;
}

Bytes SlotQuote::serialize() const {
  BytesWriter w;
  w.u8(found ? 1 : 0);
  write_slot(w, client_slot);
  write_slot(w, server_slot);
  w.i64(window_start);
  w.i64(window_end);
  w.u64(total_price);
  w.u64(list_price);
  w.u32(client_strikes);
  w.u32(server_strikes);
  return w.take();
}

Result<SlotQuote> SlotQuote::parse(BytesView data) {
  BytesReader r(data);
  SlotQuote out;
  DBG_TRY(found, r.u8());
  if (*found > 1) return fail("SlotQuote: bad found flag");
  out.found = *found == 1;
  DBG_TRY(cs, read_slot(r));
  out.client_slot = *cs;
  DBG_TRY(ss, read_slot(r));
  out.server_slot = *ss;
  DBG_TRY(ws, r.i64());
  out.window_start = *ws;
  DBG_TRY(we, r.i64());
  out.window_end = *we;
  DBG_TRY(price, r.u64());
  out.total_price = *price;
  DBG_TRY(list, r.u64());
  out.list_price = *list;
  DBG_TRY(cstrikes, r.u32());
  out.client_strikes = *cstrikes;
  DBG_TRY(sstrikes, r.u32());
  out.server_strikes = *sstrikes;
  if (!r.exhausted()) return fail("SlotQuote: trailing bytes");
  return out;
}

Bytes ApplicationPayload::serialize() const {
  BytesWriter w;
  w.blob(BytesView(bytecode.data(), bytecode.size()));
  w.blob(BytesView(manifest.data(), manifest.size()));
  write_params(w, parameters);
  w.u16(listen_port);
  w.blob(BytesView(seal_output_for.data(), seal_output_for.size()));
  return w.take();
}

Result<ApplicationPayload> ApplicationPayload::parse(BytesView data) {
  BytesReader r(data);
  ApplicationPayload out;
  DBG_TRY(bytecode, r.blob());
  out.bytecode = std::move(*bytecode);
  DBG_TRY(manifest, r.blob());
  out.manifest = std::move(*manifest);
  DBG_TRY(params, read_params(r));
  out.parameters = std::move(*params);
  DBG_TRY(port, r.u16());
  out.listen_port = *port;
  DBG_TRY(seal_key, r.blob());
  if (!seal_key->empty() && seal_key->size() != 32)
    return fail("ApplicationPayload: seal key must be 32 bytes");
  out.seal_output_for = std::move(*seal_key);
  if (!r.exhausted()) return fail("ApplicationPayload: trailing bytes");
  return out;
}

Bytes PurchaseSlotArgs::serialize() const {
  BytesWriter w;
  write_key(w, client_key);
  write_key(w, server_key);
  write_slot(w, client_slot);
  write_slot(w, server_slot);
  const Bytes ca = client_app.serialize();
  w.blob(BytesView(ca.data(), ca.size()));
  const Bytes sa = server_app.serialize();
  w.blob(BytesView(sa.data(), sa.size()));
  return w.take();
}

Result<PurchaseSlotArgs> PurchaseSlotArgs::parse(BytesView data) {
  BytesReader r(data);
  PurchaseSlotArgs out;
  DBG_TRY(ck, read_key(r));
  out.client_key = *ck;
  DBG_TRY(sk, read_key(r));
  out.server_key = *sk;
  DBG_TRY(cs, read_slot(r));
  out.client_slot = *cs;
  DBG_TRY(ss, read_slot(r));
  out.server_slot = *ss;
  DBG_TRY(ca, r.blob());
  DBG_TRY(capp, ApplicationPayload::parse(BytesView(ca->data(), ca->size())));
  out.client_app = std::move(*capp);
  DBG_TRY(sa, r.blob());
  DBG_TRY(sapp, ApplicationPayload::parse(BytesView(sa->data(), sa->size())));
  out.server_app = std::move(*sapp);
  if (!r.exhausted()) return fail("PurchaseSlot: trailing bytes");
  return out;
}

Bytes PurchaseReceipt::serialize() const {
  BytesWriter w;
  w.u64(client_application);
  w.u64(server_application);
  w.i64(window_start);
  w.i64(window_end);
  return w.take();
}

Result<PurchaseReceipt> PurchaseReceipt::parse(BytesView data) {
  BytesReader r(data);
  PurchaseReceipt out;
  DBG_TRY(c, r.u64());
  out.client_application = *c;
  DBG_TRY(s, r.u64());
  out.server_application = *s;
  DBG_TRY(ws, r.i64());
  out.window_start = *ws;
  DBG_TRY(we, r.i64());
  out.window_end = *we;
  if (!r.exhausted()) return fail("PurchaseReceipt: trailing bytes");
  return out;
}

Bytes ApplicationObject::serialize() const {
  BytesWriter w;
  write_key(w, executor_key);
  w.u8(role);
  w.i64(window_start);
  w.i64(window_end);
  w.u64(embedded_tokens);
  const Bytes p = payload.serialize();
  w.blob(BytesView(p.data(), p.size()));
  w.raw(executor_address.digest.view());
  w.u8(reported ? 1 : 0);
  w.i64(reported_at);
  w.u64(result_object);
  w.blob(BytesView(result.data(), result.size()));
  return w.take();
}

Result<ApplicationObject> ApplicationObject::parse(BytesView data) {
  BytesReader r(data);
  ApplicationObject out;
  DBG_TRY(key, read_key(r));
  out.executor_key = *key;
  DBG_TRY(role, r.u8());
  if (*role > 1) return fail("ApplicationObject: bad role");
  out.role = *role;
  DBG_TRY(ws, r.i64());
  out.window_start = *ws;
  DBG_TRY(we, r.i64());
  out.window_end = *we;
  DBG_TRY(tokens, r.u64());
  out.embedded_tokens = *tokens;
  DBG_TRY(p, r.blob());
  DBG_TRY(payload,
          ApplicationPayload::parse(BytesView(p->data(), p->size())));
  out.payload = std::move(*payload);
  DBG_TRY(addr, r.raw(out.executor_address.digest.bytes.size()));
  std::copy(addr->begin(), addr->end(),
            out.executor_address.digest.bytes.begin());
  DBG_TRY(reported, r.u8());
  if (*reported > 1) return fail("ApplicationObject: bad reported flag");
  out.reported = *reported == 1;
  DBG_TRY(at, r.i64());
  out.reported_at = *at;
  DBG_TRY(ro, r.u64());
  out.result_object = *ro;
  DBG_TRY(res, r.blob());
  out.result = std::move(*res);
  if (!r.exhausted()) return fail("ApplicationObject: trailing bytes");
  return out;
}

Bytes ReclaimApplicationArgs::serialize() const {
  BytesWriter w;
  w.u64(application);
  return w.take();
}

Result<ReclaimApplicationArgs> ReclaimApplicationArgs::parse(BytesView data) {
  BytesReader r(data);
  ReclaimApplicationArgs out;
  DBG_TRY(app, r.u64());
  out.application = *app;
  if (!r.exhausted()) return fail("ReclaimApplication: trailing bytes");
  return out;
}

Bytes ResultReadyArgs::serialize() const {
  BytesWriter w;
  w.u64(application);
  w.blob(BytesView(result.data(), result.size()));
  return w.take();
}

Result<ResultReadyArgs> ResultReadyArgs::parse(BytesView data) {
  BytesReader r(data);
  ResultReadyArgs out;
  DBG_TRY(app, r.u64());
  out.application = *app;
  DBG_TRY(result, r.blob());
  out.result = std::move(*result);
  if (!r.exhausted()) return fail("ResultReady: trailing bytes");
  return out;
}

Bytes LookupResultArgs::serialize() const {
  BytesWriter w;
  w.u64(application);
  return w.take();
}

Result<LookupResultArgs> LookupResultArgs::parse(BytesView data) {
  BytesReader r(data);
  LookupResultArgs out;
  DBG_TRY(app, r.u64());
  out.application = *app;
  if (!r.exhausted()) return fail("LookupResult: trailing bytes");
  return out;
}

Bytes ResultEntry::serialize() const {
  BytesWriter w;
  w.u8(found ? 1 : 0);
  w.u64(result_object);
  w.i64(reported_at);
  w.blob(BytesView(result.data(), result.size()));
  return w.take();
}

Result<ResultEntry> ResultEntry::parse(BytesView data) {
  BytesReader r(data);
  ResultEntry out;
  DBG_TRY(found, r.u8());
  if (*found > 1) return fail("ResultEntry: bad found flag");
  out.found = *found == 1;
  DBG_TRY(obj, r.u64());
  out.result_object = *obj;
  DBG_TRY(at, r.i64());
  out.reported_at = *at;
  DBG_TRY(result, r.blob());
  out.result = std::move(*result);
  if (!r.exhausted()) return fail("ResultEntry: trailing bytes");
  return out;
}

#undef DBG_TRY

}  // namespace debuglet::marketplace
