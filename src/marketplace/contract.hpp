// The Debuglet marketplace smart contract (paper §IV-C).
//
// State (names follow the paper), all of it chain-managed so the contract
// itself is stateless and re-entrant — conflict-free calls execute
// concurrently under Blockchain::submit_batch:
//   ExecutorAddressMap : named entry  "exec/⟨AS#intf⟩"  -> executor address
//   ExecutionSlotsMap  : named entry  "slots/⟨AS#intf⟩" -> sorted slots
//   ApplicationsMap    : named entry  "apps/⟨ck⟩|⟨sk⟩"  -> application ids
//   application state  : the ApplicationObject itself (executor address,
//                        embedded tokens, reported flag, result) — so
//                        ResultReady / Reclaim / LookupResult touch one
//                        owned object and parallelize across applications.
//
// Entry points: RegisterExecutor, RegisterTimeSlot, LookupSlot,
// PurchaseSlot, ResultReady, ReclaimApplication, LookupResult.
// PurchaseSlot escrows the attached tokens inside the created application
// objects; ResultReady pays them out to the reporting executor and emits
// an event for the initiator.
//
// The access_* helpers build the declared read/write sets callers attach
// to their transactions (chain/access.hpp): slots of different executors
// never conflict, so purchases against disjoint executor pairs — and all
// ResultReady calls for distinct applications — run in parallel.
#pragma once

#include "marketplace/types.hpp"
#include "obs/metrics.hpp"

namespace debuglet::marketplace {

inline constexpr const char* kContractName = "debuglet_marketplace";

/// Declared access sets for each entry point, ready to pass to
/// Blockchain::make_transaction. Omitting them (the default empty set)
/// still works — the transaction then runs in exclusive mode and
/// serializes its whole batch.
chain::AccessSet access_register_executor(topology::InterfaceKey key);
chain::AccessSet access_register_time_slot(topology::InterfaceKey key);
chain::AccessSet access_lookup_slot(topology::InterfaceKey client_key,
                                    topology::InterfaceKey server_key);
chain::AccessSet access_purchase_slot(topology::InterfaceKey client_key,
                                      topology::InterfaceKey server_key);
chain::AccessSet access_result_ready(chain::ObjectId application);
chain::AccessSet access_reclaim_application(chain::ObjectId application);

class MarketplaceContract : public chain::Contract {
 public:
  MarketplaceContract();

  std::string name() const override { return kContractName; }

  Result<Bytes> call(chain::CallContext& context, const std::string& function,
                     BytesView arguments) override;

  void attach(chain::Blockchain& chain) override { chain_ = &chain; }

  // Inspection helpers used by tests and reports (not contract entry
  // points; committed state only, reads only).
  std::size_t registered_executors() const;
  std::vector<TimeSlot> available_slots(topology::InterfaceKey key) const;
  std::vector<chain::ObjectId> applications_for(
      topology::InterfaceKey client_key, topology::InterfaceKey server_key)
      const;

 private:
  Result<Bytes> register_executor(chain::CallContext& ctx, BytesView args);
  Result<Bytes> register_time_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> lookup_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> purchase_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> result_ready(chain::CallContext& ctx, BytesView args);
  Result<Bytes> reclaim_application(chain::CallContext& ctx, BytesView args);
  Result<Bytes> lookup_result(chain::CallContext& ctx, BytesView args);

  SlotQuote quote(chain::CallContext& ctx, const LookupSlotArgs& query) const;

  const chain::Blockchain* chain_ = nullptr;  // set by attach()
  // Observability handles cached at construction (no-ops while disabled).
  // Counters only — atomics, safe to bump from scheduler worker threads.
  struct ObsHandles {
    obs::Counter* executors_registered = nullptr;
    obs::Counter* slots_registered = nullptr;
    obs::Counter* slots_purchased = nullptr;
    obs::Counter* results_reported = nullptr;
    obs::Counter* escrow_volume = nullptr;     // MIST embedded at purchase
    obs::Histogram* result_latency_ms = nullptr;  // report vs. window end
  };
  ObsHandles obs_;
};

}  // namespace debuglet::marketplace
