// The Debuglet marketplace smart contract (paper §IV-C).
//
// State (names follow the paper):
//   ExecutorAddressMap : ⟨AS, intf⟩ -> node address of the executor
//   ExecutionSlotsMap  : ⟨AS, intf⟩ -> sorted available time slots
//   ApplicationsMap    : ⟨ASc,intfc,ASs,intfs,t⟩ -> application object IDs
//   ResultsMap         : application object ID -> result entry
//
// Entry points: RegisterExecutor, RegisterTimeSlot, LookupSlot,
// PurchaseSlot, ResultReady, LookupResult. PurchaseSlot escrows the
// attached tokens inside the created application objects; ResultReady pays
// them out to the reporting executor and emits an event for the initiator.
#pragma once

#include <map>

#include "marketplace/types.hpp"
#include "obs/metrics.hpp"

namespace debuglet::marketplace {

inline constexpr const char* kContractName = "debuglet_marketplace";

class MarketplaceContract : public chain::Contract {
 public:
  MarketplaceContract();

  std::string name() const override { return kContractName; }

  Result<Bytes> call(chain::CallContext& context, const std::string& function,
                     BytesView arguments) override;

  // Inspection helpers used by tests and reports (not contract entry
  // points; reads only).
  std::size_t registered_executors() const { return executors_.size(); }
  std::vector<TimeSlot> available_slots(topology::InterfaceKey key) const;
  std::vector<chain::ObjectId> applications_for(
      topology::InterfaceKey client_key, topology::InterfaceKey server_key)
      const;

 private:
  struct MeasurementKey {
    topology::InterfaceKey client;
    topology::InterfaceKey server;
    SimTime window_start = 0;
    SimTime window_end = 0;
    auto operator<=>(const MeasurementKey&) const = default;
  };
  struct PendingApplication {
    topology::InterfaceKey executor_key;
    chain::Mist embedded_tokens = 0;
    SimTime window_end = 0;  // for result-latency accounting
    bool reported = false;
  };

  Result<Bytes> register_executor(chain::CallContext& ctx, BytesView args);
  Result<Bytes> register_time_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> lookup_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> purchase_slot(chain::CallContext& ctx, BytesView args);
  Result<Bytes> result_ready(chain::CallContext& ctx, BytesView args);
  Result<Bytes> reclaim_application(chain::CallContext& ctx, BytesView args);
  Result<Bytes> lookup_result(chain::CallContext& ctx, BytesView args);

  SlotQuote quote(const LookupSlotArgs& query) const;

  std::map<topology::InterfaceKey, chain::Address> executors_;
  std::map<topology::InterfaceKey, std::vector<TimeSlot>> slots_;
  std::map<MeasurementKey, std::vector<chain::ObjectId>> applications_;
  std::map<chain::ObjectId, PendingApplication> pending_;
  std::map<chain::ObjectId, ResultEntry> results_;
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* executors_registered = nullptr;
    obs::Counter* slots_registered = nullptr;
    obs::Counter* slots_purchased = nullptr;
    obs::Counter* results_reported = nullptr;
    obs::Counter* escrow_volume = nullptr;     // MIST embedded at purchase
    obs::Histogram* result_latency_ms = nullptr;  // report vs. window end
  };
  ObsHandles obs_;
};

}  // namespace debuglet::marketplace
