#include "marketplace/reputation.hpp"

#include <algorithm>

namespace debuglet::marketplace {

namespace {

std::string as_key(topology::AsNumber asn) {
  return "as/" + std::to_string(asn);
}

// Per-(AS, reporter) dedup marker. The reporter is rendered as the hex of
// its address digest, so the key is stable across runs and worker counts.
std::string reporter_key(topology::AsNumber asn,
                         const chain::Address& reporter) {
  return "rep/" + std::to_string(asn) + "/" + reporter.digest.hex();
}

}  // namespace

Bytes ReputationRecord::serialize() const {
  BytesWriter w;
  w.u32(strikes);
  w.u32(reports);
  w.u32(max_confidence_permille);
  w.i64(last_reported_at);
  return w.take();
}

Result<ReputationRecord> ReputationRecord::parse(BytesView data) {
  BytesReader r(data);
  ReputationRecord out;
  auto strikes = r.u32();
  if (!strikes) return strikes.error();
  out.strikes = *strikes;
  auto reports = r.u32();
  if (!reports) return reports.error();
  out.reports = *reports;
  auto confidence = r.u32();
  if (!confidence) return confidence.error();
  out.max_confidence_permille = *confidence;
  auto at = r.i64();
  if (!at) return at.error();
  out.last_reported_at = *at;
  return out;
}

Bytes ReportArgs::serialize() const {
  BytesWriter w;
  w.u32(asn);
  w.u32(confidence_permille);
  w.u32(rounds_used);
  w.str(detail);
  return w.take();
}

Result<ReportArgs> ReportArgs::parse(BytesView data) {
  BytesReader r(data);
  ReportArgs out;
  auto asn = r.u32();
  if (!asn) return asn.error();
  out.asn = *asn;
  auto confidence = r.u32();
  if (!confidence) return confidence.error();
  out.confidence_permille = *confidence;
  auto rounds = r.u32();
  if (!rounds) return rounds.error();
  out.rounds_used = *rounds;
  auto detail = r.str();
  if (!detail) return detail.error();
  out.detail = std::move(*detail);
  return out;
}

Bytes GetReputationArgs::serialize() const {
  BytesWriter w;
  w.u32(asn);
  return w.take();
}

Result<GetReputationArgs> GetReputationArgs::parse(BytesView data) {
  BytesReader r(data);
  GetReputationArgs out;
  auto asn = r.u32();
  if (!asn) return asn.error();
  out.asn = *asn;
  return out;
}

chain::AccessSet access_report(topology::AsNumber asn,
                               const chain::Address& reporter) {
  chain::AccessSet access;
  access.add_write(
      chain::named_access_key(kReputationContractName, as_key(asn)));
  access.add_write(chain::named_access_key(kReputationContractName,
                                           reporter_key(asn, reporter)));
  return access;
}

chain::AccessSet access_get_reputation(topology::AsNumber asn) {
  chain::AccessSet access;
  access.add_read(
      chain::named_access_key(kReputationContractName, as_key(asn)));
  return access;
}

std::string reputation_as_key(topology::AsNumber asn) { return as_key(asn); }

std::uint32_t reputation_penalty_percent(std::uint32_t strikes) {
  return std::min<std::uint32_t>(strikes * 10, 50);
}

chain::Mist apply_reputation_penalty(chain::Mist price,
                                     std::uint32_t strikes) {
  const std::uint32_t penalty = reputation_penalty_percent(strikes);
  return price - price * penalty / 100;
}

ReputationContract::ReputationContract() {
  obs::MetricsRegistry& reg = obs::registry();
  obs_.strikes_recorded = &reg.counter("reputation.strikes_recorded");
  obs_.reports_deduped = &reg.counter("reputation.reports_deduped");
}

Result<Bytes> ReputationContract::call(chain::CallContext& context,
                                       const std::string& function,
                                       BytesView arguments) {
  if (function == "Report") return report(context, arguments);
  if (function == "Get") return get(context, arguments);
  return fail("unknown function '" + function + "'");
}

Result<Bytes> ReputationContract::report(chain::CallContext& ctx,
                                         BytesView args) {
  auto parsed = ReportArgs::parse(args);
  if (!parsed) return parsed.error();
  if (parsed->asn == 0) return fail("cannot report AS 0");
  const std::uint32_t confidence =
      std::min<std::uint32_t>(parsed->confidence_permille, 1000);

  ReputationRecord record;
  if (auto existing = ctx.read_named(as_key(parsed->asn)); existing) {
    auto decoded =
        ReputationRecord::parse(BytesView(existing->data(), existing->size()));
    if (!decoded) return decoded.error();
    record = *decoded;
  }
  record.reports += 1;
  record.max_confidence_permille =
      std::max(record.max_confidence_permille, confidence);
  record.last_reported_at = ctx.timestamp();

  const std::string dedup = reporter_key(parsed->asn, ctx.sender());
  const bool duplicate = static_cast<bool>(ctx.read_named(dedup));
  if (!duplicate) {
    record.strikes += 1;
    if (auto s = ctx.write_named(dedup, Bytes{1}); !s) return s.error();
  }
  if (auto s = ctx.write_named(as_key(parsed->asn), record.serialize()); !s)
    return s.error();

  if (duplicate) {
    obs_.reports_deduped->add();
  } else {
    obs_.strikes_recorded->add();
    ctx.emit_event(kEventReputationStrike, std::to_string(parsed->asn),
                   record.serialize());
  }
  return record.serialize();
}

Result<Bytes> ReputationContract::get(chain::CallContext& ctx,
                                      BytesView args) {
  auto parsed = GetReputationArgs::parse(args);
  if (!parsed) return parsed.error();
  auto existing = ctx.read_named(as_key(parsed->asn));
  if (!existing) return ReputationRecord{}.serialize();
  return *existing;
}

std::uint32_t ReputationContract::strikes_for(topology::AsNumber asn) const {
  return record_for(asn).strikes;
}

ReputationRecord ReputationContract::record_for(topology::AsNumber asn) const {
  if (chain_ == nullptr) return {};
  const chain::NamedEntry* entry = chain_->named_entry(
      chain::named_access_key(kReputationContractName, as_key(asn)));
  if (entry == nullptr) return {};
  auto record =
      ReputationRecord::parse(BytesView(entry->data.data(), entry->data.size()));
  return record ? *record : ReputationRecord{};
}

}  // namespace debuglet::marketplace
