// Wire types of the Debuglet marketplace contract (paper §IV-C).
//
// The contract trades executor time slots: ASes register executors and
// their available slots (the IaaS model), initiators look up and purchase
// pairs of slots, attach Debuglet bytecode, and collect certified results.
// These structs are the serialized arguments/returns of its entry points.
#pragma once

#include <vector>

#include "chain/chain.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"

namespace debuglet::marketplace {

/// An executor time slot: the 5-tuple from the paper's ExecutionSlotsMap —
/// (1) CPU cores, (2) memory, (3) bandwidth, (4) start/end time, (5) price.
struct TimeSlot {
  std::uint32_t cores = 1;
  std::uint64_t memory_bytes = 1 << 20;
  std::uint64_t bandwidth_bps = 10'000'000;
  SimTime start = 0;
  SimTime end = 0;
  chain::Mist price = 0;

  bool operator==(const TimeSlot&) const = default;

  /// True if this slot satisfies a resource request over [start,end).
  bool accommodates(std::uint32_t want_cores, std::uint64_t want_memory,
                    std::uint64_t want_bandwidth) const {
    return cores >= want_cores && memory_bytes >= want_memory &&
           bandwidth_bps >= want_bandwidth;
  }
};

void write_key(BytesWriter& w, topology::InterfaceKey key);
Result<topology::InterfaceKey> read_key(BytesReader& r);
void write_slot(BytesWriter& w, const TimeSlot& slot);
Result<TimeSlot> read_slot(BytesReader& r);

/// RegisterExecutor(⟨AS, intf⟩).
struct RegisterExecutorArgs {
  topology::InterfaceKey key;
  Bytes serialize() const;
  static Result<RegisterExecutorArgs> parse(BytesView data);
};

/// RegisterTimeSlot(⟨AS, intf⟩, slots).
struct RegisterTimeSlotArgs {
  topology::InterfaceKey key;
  std::vector<TimeSlot> slots;
  Bytes serialize() const;
  static Result<RegisterTimeSlotArgs> parse(BytesView data);
};

/// LookupSlot(client ⟨AS,intf⟩, server ⟨AS,intf⟩, resources).
struct LookupSlotArgs {
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  std::uint32_t cores = 1;
  std::uint64_t memory_bytes = 64 * 1024;
  std::uint64_t bandwidth_bps = 1'000'000;
  SimTime earliest_start = 0;  // don't return slots starting before this
  Bytes serialize() const;
  static Result<LookupSlotArgs> parse(BytesView data);
};

/// LookupSlot return: the first time window both executors can host, and
/// the price to pay. When the reputation contract carries strikes against
/// an executor's AS (confirmed discrimination reports), that side's slot
/// price is penalized — `total_price` is what the buyer actually pays,
/// `list_price` what the executors asked for.
struct SlotQuote {
  bool found = false;
  TimeSlot client_slot;
  TimeSlot server_slot;
  SimTime window_start = 0;  // max of the two slot starts
  SimTime window_end = 0;    // min of the two slot ends
  chain::Mist total_price = 0;  // after reputation penalties
  chain::Mist list_price = 0;   // sum of the raw slot prices
  /// On-chain strike counts of the two executors' ASes at quote time.
  std::uint32_t client_strikes = 0;
  std::uint32_t server_strikes = 0;
  Bytes serialize() const;
  static Result<SlotQuote> parse(BytesView data);
};

/// One side of a purchase: the bytecode + manifest + parameters to deploy.
struct ApplicationPayload {
  Bytes bytecode;               // serialized DVM module
  Bytes manifest;               // serialized executor::Manifest
  std::vector<std::int64_t> parameters;
  /// Rendezvous port the deployment listens on (0 = executor-assigned).
  /// Initiators set this on the server side so the client knows where to
  /// aim before either application has been deployed.
  std::uint16_t listen_port = 0;
  /// When non-empty: the initiator's 32-byte public key. The executor
  /// seals the measurement output for this key before certification, so
  /// the published result is unreadable by third parties (paper §IV-C's
  /// private-results option).
  Bytes seal_output_for;
  Bytes serialize() const;
  static Result<ApplicationPayload> parse(BytesView data);
};

/// PurchaseSlot(client key/slot/app, server key/slot/app); tokens ride on
/// the transaction's attached_tokens.
struct PurchaseSlotArgs {
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  TimeSlot client_slot;
  TimeSlot server_slot;
  ApplicationPayload client_app;
  ApplicationPayload server_app;
  Bytes serialize() const;
  static Result<PurchaseSlotArgs> parse(BytesView data);
};

/// PurchaseSlot return: the two application object IDs.
struct PurchaseReceipt {
  chain::ObjectId client_application = 0;
  chain::ObjectId server_application = 0;
  SimTime window_start = 0;
  SimTime window_end = 0;
  Bytes serialize() const;
  static Result<PurchaseReceipt> parse(BytesView data);
};

/// The stored application object (what the chain charges storage for).
/// It carries the assigned executor's account address and the result
/// state, so ResultReady / ReclaimApplication / LookupResult touch only
/// this one object — which is what lets transactions against different
/// applications run in parallel (docs/CHAIN.md).
struct ApplicationObject {
  topology::InterfaceKey executor_key;  // where it must run
  std::uint8_t role = 0;                // 0 = client, 1 = server
  SimTime window_start = 0;
  SimTime window_end = 0;
  chain::Mist embedded_tokens = 0;      // paid to the executor on completion
  ApplicationPayload payload;
  chain::Address executor_address;      // the account paid on ResultReady
  bool reported = false;                // result state, set by ResultReady
  SimTime reported_at = 0;
  chain::ObjectId result_object = 0;
  Bytes result;                         // serialized executor::CertifiedResult
  Bytes serialize() const;
  static Result<ApplicationObject> parse(BytesView data);
};

/// ReclaimApplication(application object id): after the result has been
/// reported, the initiator frees the (large) application object and
/// receives its storage rebate — the mechanism behind Table II's
/// "storage rebate is refunded after the stored data is freed".
struct ReclaimApplicationArgs {
  chain::ObjectId application = 0;
  Bytes serialize() const;
  static Result<ReclaimApplicationArgs> parse(BytesView data);
};

/// ResultReady(application object id, result bytes).
struct ResultReadyArgs {
  chain::ObjectId application = 0;
  Bytes result;  // serialized executor::CertifiedResult
  Bytes serialize() const;
  static Result<ResultReadyArgs> parse(BytesView data);
};

/// LookupResult(application object id) → result object + metadata.
struct LookupResultArgs {
  chain::ObjectId application = 0;
  Bytes serialize() const;
  static Result<LookupResultArgs> parse(BytesView data);
};

struct ResultEntry {
  bool found = false;
  chain::ObjectId result_object = 0;
  SimTime reported_at = 0;
  Bytes result;
  Bytes serialize() const;
  static Result<ResultEntry> parse(BytesView data);
};

/// Event names emitted by the contract.
inline constexpr const char* kEventExecutorRegistered = "ExecutorRegistered";
inline constexpr const char* kEventDebugletDeployed = "DebugletDeployed";
inline constexpr const char* kEventResultReady = "ResultReady";

}  // namespace debuglet::marketplace
