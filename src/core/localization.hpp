// Fault localization over segment-by-segment measurements.
//
// Implements the paper's localization workflows: the A/B/C/D executor-pair
// procedure that isolates an inter-domain link or an AS interior
// (§IV-B, Fig. 6), and the initiator strategies of §VI-D — linear scans
// and binary search over a multi-AS path — with cost and time-to-locate
// accounting (the A2 ablation compares them).
#pragma once

#include <functional>

#include "core/discrimination.hpp"
#include "core/initiator.hpp"

namespace debuglet::core {

/// When is a measured segment considered faulty?
struct FaultCriteria {
  /// Expected healthy RTT per inter-domain link crossed (chain scenarios:
  /// 2 * hop propagation + transit).
  double per_link_rtt_ms = 10.0;
  /// Tolerated excess over the expected RTT before flagging.
  double slack_ms = 15.0;
  /// Tolerated loss rate before flagging.
  double max_loss = 0.05;
};

/// One measurement taken during localization.
struct LocalizationStep {
  std::size_t from_hop = 0;  // path hop indices (client side)
  std::size_t to_hop = 0;    // (server side)
  RttSummary summary;
  bool faulty = false;
  /// False when this segment could not be measured at all (its executors
  /// never produced a verifiable result); `failure` says why and
  /// `summary`/`faulty` are meaningless.
  bool measured = true;
  std::string failure;
  SimTime measured_at = 0;
  /// Remote executor counters attached as supporting evidence (scraped via
  /// core/remote_stats when an evidence collector is installed); rows
  /// carry the scraper's remote_host labels. Empty without a collector.
  std::vector<obs::MetricRow> evidence;
  /// Wire faults injected on this segment's inter-domain links (both
  /// directions, summed) WHILE this measurement ran — the per-segment
  /// delivery-integrity evidence a chaos report correlates with the
  /// verdict. All-zero when no LinkFaultPlan covers the segment.
  simnet::LinkIntegrityStats wire_integrity;
};

/// §VI-D strategies, plus the in-band telemetry shortcut.
enum class Strategy {
  kLinearSequential,  // probe link by link from the front, await each
  kBinarySearch,      // halve the suspect range each round
  kParallelSweep,     // buy every link at once: fastest, most expensive
  kInband,            // one INT probe round: per-hop records localize O(1)
};

std::string strategy_name(Strategy s);

/// Outcome of a localization run.
struct LocalizationReport {
  bool located = false;
  /// Fault lies on the inter-domain link after path hop `fault_link`.
  /// When executors died mid-run the localizer may only BRACKET the
  /// fault: it lies in [fault_link, fault_link_hi] (equal when exact).
  std::size_t fault_link = 0;
  std::size_t fault_link_hi = 0;
  /// True when the fault was pinned to a single link.
  bool exact = true;
  std::vector<LocalizationStep> steps;
  std::size_t measurements = 0;
  SimTime started = 0;
  SimTime finished = 0;
  chain::Mist tokens_spent = 0;

  // Degraded-mode accounting (all zero on a healthy run).
  std::size_t links_total = 0;
  /// Links the run could not individually resolve: links inside a
  /// multi-link fault bracket, plus links no surviving pair could cover.
  std::size_t links_unresolved = 0;
  std::size_t segments_unmeasured = 0;
  std::vector<std::string> notes;  // one line per degradation

  /// Twin-probe counter-measurement output (confidence-descending), when a
  /// discrimination probe was installed. A fault-hiding AS that showed the
  /// executor pairs a clean path is named HERE instead of passing silently
  /// — check it before trusting a "clean" verdict above.
  std::vector<DiscriminationEvidence> discrimination;

  SimDuration time_to_locate() const { return finished - started; }
  /// Fraction of the path's links individually resolved (1.0 = full).
  double coverage() const {
    return links_total == 0
               ? 1.0
               : 1.0 - static_cast<double>(links_unresolved) /
                           static_cast<double>(links_total);
  }
  /// "exact" | "bracketed" | "partial" | "clean" — how much to trust
  /// fault_link. "partial" = not located AND parts of the path went
  /// unresolved, so absence of evidence is not evidence of health.
  const char* confidence() const {
    if (located) return exact ? "exact" : "bracketed";
    return links_unresolved > 0 ? "partial" : "clean";
  }
};

/// §IV-B's intra-AS derivation: performance of the interior of an AS
/// computed from the whole-segment and adjacent-link measurements, without
/// ever measuring intra-domain traffic directly.
struct IntraAsDerivation {
  RttSummary whole;       // executor A .. executor D
  RttSummary left_link;   // A .. B
  RttSummary right_link;  // C .. D
  double intra_as_mean_ms() const {
    return whole.mean_ms - left_link.mean_ms - right_link.mean_ms;
  }
};

/// Runs Debuglet-pair measurements over sub-paths and localizes faults.
/// Operates on chain-scenario-style paths where each AS on the path has an
/// ingress-facing and an egress-facing executor.
class FaultLocalizer {
 public:
  FaultLocalizer(DebugletSystem& system, Initiator& initiator,
                 topology::AsPath path, FaultCriteria criteria,
                 net::Protocol protocol = net::Protocol::kUdp,
                 std::int64_t probes_per_measurement = 10,
                 std::int64_t probe_interval_ms = 200);

  /// Purchases a measurement between the egress-side executor of
  /// `from_hop` and the ingress-side executor of `to_hop`, runs the event
  /// queue until the results publish, and summarizes them.
  Result<LocalizationStep> measure_segment(std::size_t from_hop,
                                           std::size_t to_hop);

  /// Full localization of (at most) one faulty inter-domain link.
  Result<LocalizationReport> run(Strategy strategy);

  /// The Fig. 6 procedure around the AS at path hop `as_hop`
  /// (0 < as_hop < path length - 1).
  Result<IntraAsDerivation> derive_intra_as(std::size_t as_hop);

  /// Gathers remote-executor metric rows to attach to a step as evidence —
  /// typically a closure around a RemoteScraper aimed at the segment's
  /// executors. Called after each segment measurement with the step and
  /// the executor pair it ran on; whatever it returns lands in
  /// LocalizationStep::evidence. Keeps localization decoupled from how
  /// (and whether) stats Debuglets were deployed.
  using EvidenceCollector = std::function<std::vector<obs::MetricRow>(
      const LocalizationStep& step, topology::InterfaceKey client_key,
      topology::InterfaceKey server_key)>;
  void set_evidence_collector(EvidenceCollector collector) {
    evidence_collector_ = std::move(collector);
  }

  /// Chaos tolerance: route every segment measurement through the
  /// initiator's resilient path (retry + failover) instead of plain
  /// purchase/await. Healthy runs behave identically; runs with dead or
  /// byzantine executors degrade to bracketed / partial reports instead
  /// of erroring out.
  struct Resilience {
    bool use_retry = false;
    RetryPolicy retry;
    SimDuration grace = duration::seconds(2);
    bool allow_failover = true;
  };
  void set_resilience(Resilience resilience) { resilience_ = resilience; }

  /// Adversary tolerance: after the segment measurements conclude, run a
  /// twin-probe discrimination check (typically a closure around a
  /// DiscriminationDetector aimed at the path's endpoints). A detected
  /// discriminating AS lands in LocalizationReport::discrimination plus a
  /// note — the counter to §VI-E fault hiding, where an AS recognizes
  /// executor probes and shows them a health the rest of the traffic does
  /// not get. Probe failures degrade to a note, never an error.
  using DiscriminationProbe = std::function<Result<DiscriminationReport>()>;
  void set_discrimination_probe(DiscriminationProbe probe) {
    discrimination_probe_ = std::move(probe);
  }

  /// Accountability context: maps an AS number to its on-chain reputation
  /// strike count (typically a closure over the reputation contract's
  /// inspection helper). When the discrimination probe names an AS that
  /// already carries strikes, the report notes the prior record — fresh
  /// evidence against a repeat offender reads differently from a first
  /// accusation. Optional; absent means no note.
  using ReputationLookup = std::function<std::uint32_t(topology::AsNumber)>;
  void set_reputation_lookup(ReputationLookup lookup) {
    reputation_lookup_ = std::move(lookup);
  }

 private:
  Result<MeasurementOutcome> await(const MeasurementHandle& handle);
  bool is_faulty(std::size_t links_crossed, const RttSummary& s) const;
  /// Cumulative injected-fault counters over the segment's inter-domain
  /// links (both directions); sampled before/after a measurement to get
  /// the step's wire_integrity delta.
  simnet::LinkIntegrityStats segment_integrity(std::size_t from_hop,
                                               std::size_t to_hop) const;
  /// measure_segment that degrades instead of failing: on error, returns
  /// a step with measured=false and records the degradation in `report`.
  LocalizationStep tolerant_segment(std::size_t from_hop, std::size_t to_hop,
                                    LocalizationReport& report);
  /// The binary-search pass, shared by Strategy::kBinarySearch and the
  /// in-band strategy's degraded fallback.
  void binary_search_pass(LocalizationReport& report);
  /// One in-band INT probe round. Returns true when intact per-hop
  /// evidence produced a verdict; false (with the degradation noted in
  /// `report`) tells the caller to fall back to out-of-band search.
  bool inband_pass(LocalizationReport& report);

  DebugletSystem& system_;
  Initiator& initiator_;
  topology::AsPath path_;
  FaultCriteria criteria_;
  net::Protocol protocol_;
  std::int64_t probes_;
  std::int64_t interval_ms_;
  EvidenceCollector evidence_collector_;
  Resilience resilience_;
  DiscriminationProbe discrimination_probe_;
  ReputationLookup reputation_lookup_;
};

}  // namespace debuglet::core
