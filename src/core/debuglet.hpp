// Umbrella header: the public Debuglet API.
//
// Include this to get the whole system: scenarios, the wired
// DebugletSystem, initiators, fault localization, and decentralized
// discovery. Individual subsystem headers remain usable on their own.
#pragma once

#include "apps/debuglets.hpp"        // IWYU pragma: export
#include "core/discovery.hpp"        // IWYU pragma: export
#include "core/initiator.hpp"        // IWYU pragma: export
#include "core/localization.hpp"     // IWYU pragma: export
#include "core/remote_stats.hpp"     // IWYU pragma: export
#include "core/retry.hpp"            // IWYU pragma: export
#include "core/system.hpp"           // IWYU pragma: export
#include "simnet/host_faults.hpp"    // IWYU pragma: export
#include "simnet/scenarios.hpp"      // IWYU pragma: export
