#include "core/localization.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/int_header.hpp"
#include "telemetry/path_evidence.hpp"

namespace debuglet::core {

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kLinearSequential: return "linear-sequential";
    case Strategy::kBinarySearch: return "binary-search";
    case Strategy::kParallelSweep: return "parallel-sweep";
    case Strategy::kInband: return "inband";
  }
  return "unknown";
}

FaultLocalizer::FaultLocalizer(DebugletSystem& system, Initiator& initiator,
                               topology::AsPath path, FaultCriteria criteria,
                               net::Protocol protocol,
                               std::int64_t probes_per_measurement,
                               std::int64_t probe_interval_ms)
    : system_(system),
      initiator_(initiator),
      path_(std::move(path)),
      criteria_(criteria),
      protocol_(protocol),
      probes_(probes_per_measurement),
      interval_ms_(probe_interval_ms) {}

Result<MeasurementOutcome> FaultLocalizer::await(
    const MeasurementHandle& handle) {
  // The measurement runs inside its purchased window; allow the executors
  // time to report afterwards, extending a few times if needed.
  simnet::EventQueue& queue = system_.queue();
  SimTime deadline = handle.window_end + duration::seconds(2);
  for (int attempt = 0; attempt < 5; ++attempt) {
    queue.run_until(deadline);
    auto outcome = initiator_.collect(handle);
    if (outcome) return outcome;
    deadline += duration::seconds(5);
  }
  queue.run_until(deadline);
  return initiator_.collect(handle);
}

simnet::LinkIntegrityStats FaultLocalizer::segment_integrity(
    std::size_t from_hop, std::size_t to_hop) const {
  simnet::LinkIntegrityStats total;
  for (std::size_t i = from_hop; i < to_hop && i + 1 < path_.length(); ++i) {
    const topology::InterfaceKey a{path_.hops[i].asn, path_.hops[i].egress};
    const topology::InterfaceKey b{path_.hops[i + 1].asn,
                                   path_.hops[i + 1].ingress};
    total += system_.network().link_integrity(a, b);
    total += system_.network().link_integrity(b, a);
  }
  return total;
}

bool FaultLocalizer::is_faulty(std::size_t links_crossed,
                               const RttSummary& s) const {
  if (s.probes_answered == 0) return true;  // blackhole
  if (s.loss_rate() > criteria_.max_loss) return true;
  const double expected =
      criteria_.per_link_rtt_ms * static_cast<double>(links_crossed);
  return s.mean_ms > expected + criteria_.slack_ms;
}

Result<LocalizationStep> FaultLocalizer::measure_segment(std::size_t from_hop,
                                                         std::size_t to_hop) {
  if (from_hop >= to_hop || to_hop >= path_.length())
    return fail("measure_segment: bad hop range");
  // Client at the egress-facing border of from_hop, server at the
  // ingress-facing border of to_hop — the paper's executors A and D.
  const topology::InterfaceKey client_key{path_.hops[from_hop].asn,
                                          path_.hops[from_hop].egress};
  const topology::InterfaceKey server_key{path_.hops[to_hop].asn,
                                          path_.hops[to_hop].ingress};
  const SimTime segment_begin = system_.queue().now();
  const simnet::LinkIntegrityStats integrity_before =
      segment_integrity(from_hop, to_hop);
  Result<MeasurementOutcome> outcome = [&]() -> Result<MeasurementOutcome> {
    if (resilience_.use_retry) {
      ResilientRttRequest request;
      request.client_key = client_key;
      request.server_key = server_key;
      request.protocol = protocol_;
      request.probe_count = probes_;
      request.interval_ms = interval_ms_;
      request.earliest_start = system_.queue().now();
      request.retry = resilience_.retry;
      request.grace = resilience_.grace;
      request.allow_failover = resilience_.allow_failover;
      auto resilient = initiator_.measure_rtt_resilient(request);
      if (!resilient) return resilient.error();
      return std::move(resilient->outcome);
    }
    auto handle = initiator_.purchase_rtt_measurement(
        client_key, server_key, protocol_, probes_, interval_ms_,
        system_.queue().now());
    if (!handle) return handle.error();
    auto awaited = await(*handle);
    if (!awaited) {
      // Reclaim whatever the dead attempt allows before reporting.
      initiator_.reclaim_available(*handle);
      return awaited.error();
    }
    return awaited;
  }();
  if (!outcome) return outcome.error();
  auto summary = summarize_rtt(outcome->client,
                               static_cast<std::size_t>(probes_));
  if (!summary) return summary.error();

  obs::registry().counter("core.localization.segments_measured").add();
  if (obs::tracer().enabled()) {
    obs::Span span;
    span.name = "segment " + client_key.to_string() + ".." +
                server_key.to_string();
    span.category = "localization";
    span.sim_begin = segment_begin;
    span.sim_end = system_.queue().now();
    obs::tracer().record(std::move(span));
  }

  LocalizationStep step;
  step.from_hop = from_hop;
  step.to_hop = to_hop;
  step.summary = *summary;
  step.faulty = is_faulty(to_hop - from_hop, *summary);
  step.measured_at = system_.queue().now();
  step.wire_integrity =
      segment_integrity(from_hop, to_hop) - integrity_before;
  if (evidence_collector_)
    step.evidence = evidence_collector_(step, client_key, server_key);
  return step;
}

LocalizationStep FaultLocalizer::tolerant_segment(std::size_t from_hop,
                                                  std::size_t to_hop,
                                                  LocalizationReport& report) {
  auto measured = measure_segment(from_hop, to_hop);
  if (measured) return *measured;
  LocalizationStep step;
  step.from_hop = from_hop;
  step.to_hop = to_hop;
  step.measured = false;
  step.failure = measured.error_message();
  step.measured_at = system_.queue().now();
  ++report.segments_unmeasured;
  report.notes.push_back("segment " + std::to_string(from_hop) + ".." +
                         std::to_string(to_hop) +
                         " unmeasured: " + step.failure);
  obs::registry().counter("core.localization.segments_unmeasured").add();
  return step;
}

void FaultLocalizer::binary_search_pass(LocalizationReport& report) {
  // Confirm the path is faulty end to end, then halve. When the
  // preferred midpoint's executors are dead, slide deterministically
  // to the nearest split that still divides (lo, hi); when none is
  // measurable the fault is bracketed to [lo, hi - 1].
  const std::size_t n = path_.length();
  auto attempt = [&](std::size_t from, std::size_t to) -> LocalizationStep {
    LocalizationStep step = tolerant_segment(from, to, report);
    report.steps.push_back(step);
    if (step.measured) ++report.measurements;
    return step;
  };
  LocalizationStep whole = attempt(0, n - 1);
  if (!whole.measured) {
    report.links_unresolved = n - 1;
    report.notes.push_back(
        "whole-path check impossible: no verdict on any link");
    return;
  }
  if (!whole.faulty) return;  // nothing to localize
  std::size_t lo = 0, hi = n - 1;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    // Candidate splits strictly inside (lo, hi), nearest-to-mid
    // first; ties prefer the right (deterministic order).
    std::vector<std::size_t> splits;
    for (std::size_t d = 0; d < hi - lo; ++d) {
      if (mid + d > lo && mid + d < hi) splits.push_back(mid + d);
      if (d > 0 && mid >= lo + d + 1 && mid - d < hi)
        splits.push_back(mid - d);
    }
    bool advanced = false;
    for (std::size_t m : splits) {
      LocalizationStep step = attempt(lo, m);
      if (!step.measured) continue;
      if (step.faulty)
        hi = m;
      else
        lo = m;
      advanced = true;
      break;
    }
    if (!advanced) break;  // no measurable split: bracket [lo, hi-1]
  }
  report.located = true;
  report.fault_link = lo;
  report.fault_link_hi = hi - 1;
  report.exact = (hi - lo == 1);
  if (!report.exact) {
    report.links_unresolved += hi - lo;
    report.notes.push_back("fault bracketed to links [" +
                           std::to_string(lo) + ", " +
                           std::to_string(hi - 1) + "]");
  }
}

bool FaultLocalizer::inband_pass(LocalizationReport& report) {
  simnet::SimulatedNetwork& network = system_.network();
  simnet::EventQueue& queue = system_.queue();
  const std::size_t n = path_.length();
  const std::size_t links = n - 1;
  if (links > telemetry::IntHeader::kMaxHopsLimit) {
    report.notes.push_back("in-band: path longer than the INT hop budget");
    return false;
  }

  // Collector at the destination AS; the probe originates at the source
  // AS's egress border router, like the paper's executor A. send() needs
  // only a valid source address, not an attached sender.
  struct Collector : simnet::Host {
    std::vector<simnet::Delivery> deliveries;
    void on_packet(const simnet::Delivery& d) override {
      deliveries.push_back(d);
    }
  } collector;
  const net::Ipv4Address collector_addr =
      network.allocate_host_address(path_.hops.back().asn);
  if (Status attached = network.attach_host(collector_addr, &collector);
      !attached) {
    report.notes.push_back("in-band: " + attached.error_message());
    return false;
  }
  const net::Ipv4Address source_addr = network.topology().address_of(
      {path_.hops.front().asn, path_.hops.front().egress});

  const bool was_enabled = network.int_enabled();
  network.set_int_enabled(true);

  // One probe round: a few redundant copies of the same INT probe, sent
  // together. A single intact arrival suffices; redundancy only covers
  // wire loss, not extra measurement rounds.
  const telemetry::IntHeader prototype = telemetry::IntHeader::reserve(
      static_cast<std::uint8_t>(links), network.has_hop_program());
  constexpr int kProbesPerRound = 3;
  const SimTime round_sent_at = queue.now();
  int sent = 0;
  for (int p = 0; p < kProbesPerRound; ++p) {
    net::ProbeSpec spec;
    spec.protocol = protocol_ == net::Protocol::kRawIp
                        ? net::Protocol::kRawIp
                        : net::Protocol::kUdp;  // INT rides UDP or raw IP
    spec.source = source_addr;
    spec.destination = collector_addr;
    spec.source_port = static_cast<std::uint16_t>(45000 + p);
    spec.destination_port = 45100;
    spec.sequence = static_cast<std::uint16_t>(p);
    spec.payload = prototype.serialize();
    auto wire = net::build_probe(spec);
    if (!wire) continue;
    if (network.send(source_addr, std::move(*wire))) ++sent;
  }
  queue.run_until(queue.now() + duration::seconds(2));

  network.set_int_enabled(was_enabled);
  network.detach_host(collector_addr);

  // First delivery with intact, path-matching evidence wins; rejected
  // ones are counted by typed reason so chaos runs show WHY in-band
  // degraded instead of silently falling back.
  std::optional<telemetry::PathEvidence> evidence;
  std::size_t rejected = 0;
  for (const simnet::Delivery& d : collector.deliveries) {
    telemetry::IntParseError kind = telemetry::IntParseError::kNone;
    auto header = telemetry::IntHeader::parse(
        BytesView(d.packet.payload.data(), d.packet.payload.size()), &kind);
    if (!header) {
      obs::registry()
          .counter("telemetry.parse_rejected",
                   {{"reason", telemetry::int_parse_error_name(kind)}})
          .add();
      ++rejected;
      continue;
    }
    auto built =
        telemetry::PathEvidence::from_header(*header, path_, d.sent_at);
    if (!built) {
      obs::registry()
          .counter("telemetry.evidence_rejected")
          .add();
      report.notes.push_back("in-band evidence rejected: " +
                             built.error_message());
      ++rejected;
      continue;
    }
    evidence = std::move(*built);
    break;
  }
  if (!evidence) {
    report.notes.push_back(
        "in-band: no intact evidence (" + std::to_string(sent) +
        " probes, " + std::to_string(collector.deliveries.size()) +
        " delivered, " + std::to_string(rejected) +
        " rejected); falling back to binary search");
    obs::registry().counter("core.localization.inband_fallbacks").add();
    return false;
  }

  // Verdict from one round. The per-link RTT criterion halves into a
  // one-way budget; a hop-program alarm (when installed) pins the link
  // directly.
  const double one_way_budget_ms =
      criteria_.per_link_rtt_ms / 2.0 + criteria_.slack_ms / 2.0;
  report.measurements = 1;
  LocalizationStep step;
  step.from_hop = 0;
  step.to_hop = n - 1;
  step.summary.probes_sent = static_cast<std::size_t>(sent);
  step.summary.probes_answered = collector.deliveries.size();
  step.measured_at = queue.now();
  step.summary.mean_ms =
      duration::to_ms(queue.now() - round_sent_at);  // round wall time

  std::vector<std::size_t> over = evidence->links_over(one_way_budget_ms);
  if (evidence->alarmed() &&
      evidence->alarm_hop() < links) {
    report.located = true;
    report.fault_link = evidence->alarm_hop();
    report.fault_link_hi = evidence->alarm_hop();
    report.exact = true;
    report.notes.push_back("in-band: hop program alarm at link " +
                           std::to_string(report.fault_link));
  } else if (!over.empty()) {
    report.located = true;
    report.fault_link = over.front();
    report.fault_link_hi = over.back();
    report.exact = (over.size() == 1);
    if (!report.exact) {
      report.links_unresolved += over.size();
      report.notes.push_back("in-band: " + std::to_string(over.size()) +
                             " links over budget");
    }
  }
  step.faulty = report.located;
  if (report.located) {
    report.notes.push_back(
        "in-band: localized from one probe round, link " +
        std::to_string(report.fault_link) + " one-way " +
        std::to_string(
            evidence->link(report.fault_link).one_way_ms) +
        " ms (budget " + std::to_string(one_way_budget_ms) + " ms)");
  } else {
    report.notes.push_back("in-band: all links within one-way budget");
  }
  report.steps.push_back(std::move(step));
  obs::registry().counter("core.localization.inband_rounds").add();
  return true;
}

Result<LocalizationReport> FaultLocalizer::run(Strategy strategy) {
  LocalizationReport report;
  report.started = system_.queue().now();
  const chain::Mist spent_before = initiator_.total_spent();
  const std::size_t n = path_.length();
  if (n < 2) return fail("localization needs a path of at least 2 ASes");
  report.links_total = n - 1;

  // Every attempted segment lands in report.steps; only measured ones
  // count toward report.measurements (healthy runs: identical to before).
  auto attempt = [&](std::size_t from, std::size_t to) -> LocalizationStep {
    LocalizationStep step = tolerant_segment(from, to, report);
    report.steps.push_back(step);
    if (step.measured) ++report.measurements;
    return step;
  };

  switch (strategy) {
    case Strategy::kLinearSequential: {
      // Scan from the front. When a boundary's executors are dead, grow
      // the span past them until a surviving pair covers it; a faulty
      // widened span then only BRACKETS the fault.
      std::size_t cursor = 0;
      while (cursor + 1 < n) {
        std::size_t to = cursor + 1;
        LocalizationStep step = attempt(cursor, to);
        while (!step.measured && to + 1 < n) {
          ++to;
          step = attempt(cursor, to);
        }
        if (!step.measured) {
          // Ran off the end of the path: no surviving pair covers the
          // remaining links at all.
          report.links_unresolved += (n - 1) - cursor;
          report.notes.push_back(
              "links " + std::to_string(cursor) + ".." +
              std::to_string(n - 2) + " unresolved: no surviving pair");
          break;
        }
        if (step.faulty) {
          report.located = true;
          report.fault_link = cursor;
          report.fault_link_hi = to - 1;
          report.exact = (to == cursor + 1);
          if (!report.exact) {
            report.links_unresolved += to - cursor;
            report.notes.push_back(
                "fault bracketed to links [" + std::to_string(cursor) +
                ", " + std::to_string(to - 1) + "]");
          }
          break;
        }
        cursor = to;
      }
      break;
    }
    case Strategy::kParallelSweep: {
      // Purchase EVERY link measurement before awaiting any, so they all
      // land in the earliest windows their (disjoint) executor pairs
      // offer and run concurrently. Minimal time-to-locate, maximal cost —
      // the trade-off §VI-D says "may not address cost concerns".
      struct Pending {
        std::size_t link;
        MeasurementHandle handle;
        simnet::LinkIntegrityStats integrity_before;
      };
      std::vector<Pending> pending;
      for (std::size_t link = 0; link + 1 < n; ++link) {
        const topology::InterfaceKey client_key{path_.hops[link].asn,
                                                path_.hops[link].egress};
        const topology::InterfaceKey server_key{path_.hops[link + 1].asn,
                                                path_.hops[link + 1].ingress};
        auto handle = initiator_.purchase_rtt_measurement(
            client_key, server_key, protocol_, probes_, interval_ms_,
            system_.queue().now());
        if (!handle) return handle.error();
        pending.push_back(
            Pending{link, *handle, segment_integrity(link, link + 1)});
      }
      for (const Pending& p : pending) {
        auto fetch = [&]() -> Result<RttSummary> {
          auto outcome = await(p.handle);
          if (!outcome) {
            initiator_.reclaim_available(p.handle);
            return outcome.error();
          }
          return summarize_rtt(outcome->client,
                               static_cast<std::size_t>(probes_));
        }();
        LocalizationStep step;
        step.from_hop = p.link;
        step.to_hop = p.link + 1;
        step.measured_at = system_.queue().now();
        if (!fetch) {
          // Other links were bought independently — keep sweeping, just
          // mark this one unresolvable.
          step.measured = false;
          step.failure = fetch.error_message();
          ++report.segments_unmeasured;
          ++report.links_unresolved;
          report.notes.push_back("link " + std::to_string(p.link) +
                                 " unmeasured: " + step.failure);
          obs::registry()
              .counter("core.localization.segments_unmeasured")
              .add();
          report.steps.push_back(step);
          continue;
        }
        step.summary = *fetch;
        step.faulty = is_faulty(1, *fetch);
        step.wire_integrity =
            segment_integrity(p.link, p.link + 1) - p.integrity_before;
        if (evidence_collector_) {
          const topology::InterfaceKey client_key{path_.hops[p.link].asn,
                                                  path_.hops[p.link].egress};
          const topology::InterfaceKey server_key{
              path_.hops[p.link + 1].asn, path_.hops[p.link + 1].ingress};
          step.evidence = evidence_collector_(step, client_key, server_key);
        }
        report.steps.push_back(step);
        ++report.measurements;
        if (step.faulty && !report.located) {
          report.located = true;
          report.fault_link = p.link;
          report.fault_link_hi = p.link;
        }
      }
      break;
    }
    case Strategy::kBinarySearch:
      binary_search_pass(report);
      break;
    case Strategy::kInband:
      // One probe round of in-band per-hop records. Any failure to obtain
      // intact evidence (damaged wire, truncated stack, unexpected path)
      // degrades to purchased binary search — never a wrong verdict.
      if (!inband_pass(report)) binary_search_pass(report);
      break;
  }

  if (discrimination_probe_) {
    // Counter-measurement pass: the segment verdicts above came from
    // executor-pair probes an adversary may have recognized and treated
    // kindly (§VI-E). Twin probes from non-executor vantages check whether
    // any on-path AS discriminates; a hit is reported, never fatal.
    auto twin = discrimination_probe_();
    if (!twin) {
      report.notes.push_back("discrimination probe failed: " +
                             twin.error_message());
    } else if (twin->detected) {
      report.discrimination = twin->suspects;
      char note[160];
      if (twin->named_as() != 0)
        std::snprintf(note, sizeof(note),
                      "AS%u discriminates against unrecognized traffic "
                      "(confidence %.3f) — fault hiding suspected",
                      twin->named_as(), twin->top_confidence());
      else
        std::snprintf(note, sizeof(note),
                      "path discriminates against unrecognized traffic "
                      "(confidence %.3f, not localized)",
                      twin->top_confidence());
      report.notes.push_back(note);
      // Accountability cross-check: an accused AS that already carries
      // on-chain strikes (prior confirmed reports, marketplace/reputation)
      // is a repeat offender — say so next to the fresh evidence.
      if (reputation_lookup_ && twin->named_as() != 0) {
        const std::uint32_t strikes = reputation_lookup_(twin->named_as());
        if (strikes > 0) {
          char rep[96];
          std::snprintf(rep, sizeof(rep),
                        "AS%u carries %u prior on-chain reputation strike%s",
                        twin->named_as(), strikes, strikes == 1 ? "" : "s");
          report.notes.push_back(rep);
        }
      }
    }
  }

  report.finished = system_.queue().now();
  report.tokens_spent = initiator_.total_spent() - spent_before;
  obs::registry()
      .histogram("core.localization.measurements_per_run",
                 {{"strategy", strategy_name(strategy)}})
      .record(static_cast<double>(report.measurements));
  obs::registry()
      .histogram("core.localization.time_to_locate_s",
                 {{"strategy", strategy_name(strategy)}})
      .record(duration::to_ms(report.time_to_locate()) / 1000.0);
  return report;
}

Result<IntraAsDerivation> FaultLocalizer::derive_intra_as(std::size_t as_hop) {
  if (as_hop == 0 || as_hop + 1 >= path_.length())
    return fail("derive_intra_as: hop must be interior to the path");
  IntraAsDerivation out;
  // Whole segment: A (egress of the previous AS) .. D (ingress of the
  // next AS) — crossing the target AS as real inter-domain traffic.
  auto whole = measure_segment(as_hop - 1, as_hop + 1);
  if (!whole) return whole.error();
  out.whole = whole->summary;
  // Left link: A .. B.
  auto left = measure_segment(as_hop - 1, as_hop);
  if (!left) return left.error();
  out.left_link = left->summary;
  // Right link: C .. D.
  auto right = measure_segment(as_hop, as_hop + 1);
  if (!right) return right.error();
  out.right_link = right->summary;
  return out;
}

}  // namespace debuglet::core
