#include "core/initiator.hpp"

#include "crypto/box.hpp"
#include "util/stats.hpp"

namespace debuglet::core {

Result<RttSummary> summarize_rtt(const executor::CertifiedResult& client,
                                 std::size_t probes_sent) {
  auto samples = apps::decode_samples(
      BytesView(client.record.output.data(), client.record.output.size()));
  if (!samples) return samples.error();
  RttSummary out;
  out.probes_sent = probes_sent;
  out.probes_answered = samples->size();
  RunningStats stats;
  for (const apps::MeasurementSample& s : *samples)
    stats.add(static_cast<double>(s.delay_ns) / 1e6);
  out.mean_ms = stats.mean();
  out.std_ms = stats.stddev();
  out.min_ms = stats.min();
  out.max_ms = stats.max();
  return out;
}

Initiator::Initiator(DebugletSystem& system, std::uint64_t seed,
                     chain::Mist funding)
    : system_(system), key_(crypto::KeyPair::from_seed(seed)) {
  system_.chain().mint(address(), funding);
  obs::MetricsRegistry& reg = obs::registry();
  obs_.purchased = &reg.counter("core.measurements_purchased");
  obs_.collected = &reg.counter("core.results_collected");
  obs_.spent = &reg.counter("core.tokens_spent_mist");
}

Result<Bytes> Initiator::open_result(
    const executor::CertifiedResult& result) const {
  return crypto::open_box(key_, BytesView(result.record.output.data(),
                                          result.record.output.size()));
}

Result<chain::Mist> Initiator::reclaim(const MeasurementHandle& handle) {
  chain::Blockchain& chain = system_.chain();
  chain::Mist total_rebate = 0;
  for (chain::ObjectId application :
       {handle.client_application, handle.server_application}) {
    const chain::Mist before = chain.balance(address());
    marketplace::ReclaimApplicationArgs args;
    args.application = application;
    auto receipt = chain.submit(chain.make_transaction(
        key_, marketplace::kContractName, "ReclaimApplication",
        args.serialize()));
    if (!receipt) return receipt.error();
    if (!receipt->success)
      return fail("ReclaimApplication: " + receipt->error);
    total_spent_ += receipt->gas_charged;
    obs_.spent->add(receipt->gas_charged);
    // Balance delta = rebate - gas.
    total_rebate += chain.balance(address()) + receipt->gas_charged - before;
  }
  return total_rebate;
}

Result<MeasurementHandle> Initiator::purchase(
    const MeasurementRequest& request) {
  chain::Blockchain& chain = system_.chain();

  // Step 1: LookupSlot.
  marketplace::LookupSlotArgs lookup;
  lookup.client_key = request.client_key;
  lookup.server_key = request.server_key;
  lookup.cores = request.cores;
  lookup.memory_bytes = request.memory_bytes;
  lookup.bandwidth_bps = request.bandwidth_bps;
  lookup.earliest_start =
      std::max(request.earliest_start,
               system_.queue().now() + chain.config().finality_latency);
  auto lookup_receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kContractName, "LookupSlot", lookup.serialize()));
  if (!lookup_receipt) return lookup_receipt.error();
  if (!lookup_receipt->success)
    return fail("LookupSlot: " + lookup_receipt->error);
  total_spent_ += lookup_receipt->gas_charged;
  obs_.spent->add(lookup_receipt->gas_charged);
  auto quote = marketplace::SlotQuote::parse(
      BytesView(lookup_receipt->return_value.data(),
                lookup_receipt->return_value.size()));
  if (!quote) return quote.error();
  if (!quote->found)
    return fail("no common execution slot for " +
                request.client_key.to_string() + " / " +
                request.server_key.to_string());

  // Step 2: PurchaseSlot with the bytecode and embedded tokens.
  marketplace::PurchaseSlotArgs purchase;
  purchase.client_key = request.client_key;
  purchase.server_key = request.server_key;
  purchase.client_slot = quote->client_slot;
  purchase.server_slot = quote->server_slot;
  purchase.client_app = request.client_app;
  purchase.server_app = request.server_app;
  if (request.seal_results) {
    const Bytes pk = key_.public_key().to_bytes();
    purchase.client_app.seal_output_for = pk;
    purchase.server_app.seal_output_for = pk;
  }
  auto purchase_receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kContractName, "PurchaseSlot", purchase.serialize(),
      quote->total_price));
  if (!purchase_receipt) return purchase_receipt.error();
  if (!purchase_receipt->success)
    return fail("PurchaseSlot: " + purchase_receipt->error);
  total_spent_ += purchase_receipt->gas_charged + quote->total_price;
  obs_.spent->add(purchase_receipt->gas_charged + quote->total_price);
  obs_.purchased->add();
  auto receipt = marketplace::PurchaseReceipt::parse(
      BytesView(purchase_receipt->return_value.data(),
                purchase_receipt->return_value.size()));
  if (!receipt) return receipt.error();

  MeasurementHandle handle;
  handle.client_application = receipt->client_application;
  handle.server_application = receipt->server_application;
  handle.client_key = request.client_key;
  handle.server_key = request.server_key;
  handle.window_start = receipt->window_start;
  handle.window_end = receipt->window_end;
  handle.price_paid = quote->total_price;
  return handle;
}

Result<executor::CertifiedResult> Initiator::fetch_result(
    chain::ObjectId application, topology::InterfaceKey key) {
  chain::Blockchain& chain = system_.chain();
  marketplace::LookupResultArgs args;
  args.application = application;
  auto view = chain.view(marketplace::kContractName, "LookupResult",
                         args.serialize());
  if (!view) return view.error();
  auto entry =
      marketplace::ResultEntry::parse(BytesView(view->data(), view->size()));
  if (!entry) return entry.error();
  if (!entry->found)
    return fail("result for application " + std::to_string(application) +
                " not yet published");
  auto certified = executor::CertifiedResult::parse(
      BytesView(entry->result.data(), entry->result.size()));
  if (!certified) return certified.error();

  // Verify: the signature must check out AND belong to the AS that hosts
  // the executor the application was assigned to.
  auto expected = system_.as_public_key(key.asn);
  if (!expected) return expected.error();
  if (!executor::verify_certified(*certified, &*expected))
    return fail("result for application " + std::to_string(application) +
                " failed certification check");
  if (!(certified->record.executor_key == key))
    return fail("result reports wrong executor key");

  // Cross-check against the on-chain stored object (tamper evidence).
  auto stored = chain.read_object(entry->result_object);
  if (!stored) return stored.error();
  if (!(*stored == entry->result))
    return fail("on-chain result object mismatch");
  return certified;
}

Result<MeasurementOutcome> Initiator::collect(
    const MeasurementHandle& handle) {
  auto client = fetch_result(handle.client_application, handle.client_key);
  if (!client) return client.error();
  auto server = fetch_result(handle.server_application, handle.server_key);
  if (!server) return server.error();
  obs_.collected->add();
  return MeasurementOutcome{std::move(*client), std::move(*server)};
}

Result<MeasurementHandle> Initiator::purchase_rtt_measurement(
    topology::InterfaceKey client_key, topology::InterfaceKey server_key,
    net::Protocol protocol, std::int64_t probe_count, std::int64_t interval_ms,
    SimTime earliest_start, bool seal_results) {
  const auto& topo = system_.network().topology();
  const net::Ipv4Address client_addr = topo.address_of(client_key);
  const net::Ipv4Address server_addr = topo.address_of(server_key);

  // The probe loop awaits each reply (or its timeout) before pacing the
  // next probe, so the receive timeout may exceed the interval without
  // risking sequence confusion; it just needs to cover any plausible RTT.
  const std::int64_t recv_timeout_ms = interval_ms + 1000;
  // The echo server must come up before the client starts probing and stay
  // alive for the whole run; budget for every probe timing out.
  const SimDuration run_budget =
      duration::milliseconds(interval_ms + recv_timeout_ms) *
          (probe_count + 2) +
      duration::seconds(5);

  apps::ProbeClientParams client_params;
  client_params.protocol = protocol;
  client_params.server = server_addr;
  client_params.probe_count = probe_count;
  client_params.interval_ms = interval_ms;
  client_params.recv_timeout_ms = recv_timeout_ms;

  apps::EchoServerParams server_params;
  server_params.protocol = protocol;
  server_params.max_echoes = 0;
  server_params.idle_timeout_ms = interval_ms * 3 + 2000;

  MeasurementRequest request;
  request.client_key = client_key;
  request.server_key = server_key;
  request.earliest_start = earliest_start;
  request.seal_results = seal_results;
  request.client_app.bytecode = apps::make_probe_client_debuglet().serialize();
  request.client_app.manifest =
      apps::client_manifest(protocol, server_addr, probe_count, run_budget)
          .serialize();
  request.server_app.bytecode = apps::make_echo_server_debuglet().serialize();
  request.server_app.manifest =
      apps::server_manifest(protocol, client_addr, probe_count, run_budget)
          .serialize();

  // Rendezvous: the initiator picks the server's listen port up front and
  // aims the client at it; the executor binds the server deployment to it.
  const std::uint16_t rendezvous = next_rendezvous_port_++;
  if (next_rendezvous_port_ >= 49000) next_rendezvous_port_ = 40000;
  client_params.server_port = rendezvous;
  request.server_app.listen_port = rendezvous;
  request.client_app.parameters = client_params.to_parameters();
  request.server_app.parameters = server_params.to_parameters();
  return purchase(request);
}

}  // namespace debuglet::core
