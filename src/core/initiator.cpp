#include "core/initiator.hpp"

#include <algorithm>
#include <map>

#include "crypto/box.hpp"
#include "util/stats.hpp"

namespace debuglet::core {

const char* collect_error_name(CollectErrorKind kind) {
  switch (kind) {
    case CollectErrorKind::kNone: return "ok";
    case CollectErrorKind::kNotPublished: return "not-published";
    case CollectErrorKind::kVerificationFailed: return "verification-failed";
    case CollectErrorKind::kOther: return "other";
  }
  return "unknown";
}

namespace {

const char* incident_kind_name(MeasurementIncident::Kind kind) {
  using Kind = MeasurementIncident::Kind;
  switch (kind) {
    case Kind::kPurchaseFailed: return "purchase-failed";
    case Kind::kResultMissing: return "result-missing";
    case Kind::kVerificationRejected: return "verification-rejected";
    case Kind::kReclaimed: return "reclaimed";
    case Kind::kFailover: return "failover";
    case Kind::kBackoff: return "backoff";
    case Kind::kAllProbesLost: return "all-probes-lost";
  }
  return "unknown";
}

}  // namespace

std::string MeasurementIncident::to_string() const {
  std::string out = "attempt " + std::to_string(attempt) + " " +
                    incident_kind_name(kind) + " " + client_key.to_string() +
                    ".." + server_key.to_string();
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::string ResilientMeasurement::trace() const {
  std::string out;
  for (const MeasurementIncident& incident : incidents) {
    out += incident.to_string();
    out += '\n';
  }
  return out;
}

SampleFilterResult filter_probe_samples(
    std::vector<apps::MeasurementSample> samples) {
  SampleFilterResult out;

  // Dedup by sequence, keeping the smallest RTT per sequence: the first
  // arrival of a duplicated echo carries the true clock delta; each later
  // copy adds its duplication delay on top.
  std::map<std::uint64_t, std::int64_t> best;
  for (const apps::MeasurementSample& s : samples) {
    auto [it, inserted] = best.try_emplace(s.sequence, s.delay_ns);
    if (!inserted) {
      ++out.duplicates_dropped;
      it->second = std::min(it->second, s.delay_ns);
    }
  }

  // Corrupted timestamps produce RTTs no network could: negative, or far
  // beyond the batch median. A genuine fault delays every probe, moving
  // the median with them — so real faults pass while damage is dropped.
  std::vector<double> rtts;
  rtts.reserve(best.size());
  for (const auto& [seq, delay_ns] : best)
    if (delay_ns > 0) rtts.push_back(static_cast<double>(delay_ns));
  std::sort(rtts.begin(), rtts.end());
  const double median =
      rtts.empty() ? 0.0
                   : (rtts.size() % 2 == 1
                          ? rtts[rtts.size() / 2]
                          : 0.5 * (rtts[rtts.size() / 2 - 1] +
                                   rtts[rtts.size() / 2]));
  const double cutoff = median * kRttOutlierFactor;
  for (const auto& [seq, delay_ns] : best) {
    const bool damaged =
        delay_ns <= 0 ||
        (rtts.size() >= 3 && static_cast<double>(delay_ns) > cutoff);
    if (damaged) {
      ++out.outliers_dropped;
      continue;
    }
    out.kept.push_back(apps::MeasurementSample{seq, delay_ns});
  }
  return out;
}

Result<RttSummary> summarize_rtt(const executor::CertifiedResult& client,
                                 std::size_t probes_sent) {
  auto samples = apps::decode_samples(
      BytesView(client.record.output.data(), client.record.output.size()));
  if (!samples) return samples.error();
  SampleFilterResult filtered = filter_probe_samples(std::move(*samples));
  if (filtered.duplicates_dropped > 0)
    obs::registry()
        .counter("core.probe_duplicates_dropped")
        .add(filtered.duplicates_dropped);
  if (filtered.outliers_dropped > 0)
    obs::registry()
        .counter("core.probe_outliers_dropped")
        .add(filtered.outliers_dropped);
  RttSummary out;
  out.probes_sent = probes_sent;
  out.probes_answered = filtered.kept.size();
  out.duplicates_dropped = filtered.duplicates_dropped;
  out.outliers_dropped = filtered.outliers_dropped;
  RunningStats stats;
  for (const apps::MeasurementSample& s : filtered.kept)
    stats.add(static_cast<double>(s.delay_ns) / 1e6);
  out.mean_ms = stats.mean();
  out.std_ms = stats.stddev();
  out.min_ms = stats.min();
  out.max_ms = stats.max();
  return out;
}

Initiator::Initiator(DebugletSystem& system, std::uint64_t seed,
                     chain::Mist funding)
    : system_(system),
      key_(crypto::KeyPair::from_seed(seed)),
      chaos_rng_(Rng(seed).fork(0xC4A05)) {
  system_.chain().mint(address(), funding);
  obs::MetricsRegistry& reg = obs::registry();
  obs_.purchased = &reg.counter("core.measurements_purchased");
  obs_.collected = &reg.counter("core.results_collected");
  obs_.spent = &reg.counter("core.tokens_spent_mist");
  obs_.verification_rejected = &reg.counter("core.results_rejected");
  obs_.executor_down = &reg.counter("core.executor_down_detected");
  obs_.failovers = &reg.counter("core.measurement_failovers");
  obs_.measurements_abandoned = &reg.counter("core.measurements_abandoned");
}

Result<Bytes> Initiator::open_result(
    const executor::CertifiedResult& result) const {
  return crypto::open_box(key_, BytesView(result.record.output.data(),
                                          result.record.output.size()));
}

Status Initiator::reclaim_one(chain::ObjectId application,
                              chain::Mist& rebate) {
  chain::Blockchain& chain = system_.chain();
  const chain::Mist before = chain.balance(address());
  marketplace::ReclaimApplicationArgs args;
  args.application = application;
  auto receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kContractName, "ReclaimApplication",
      args.serialize(), 0, 1'000'000'000,
      marketplace::access_reclaim_application(application)));
  if (!receipt) return receipt.error();
  if (!receipt->success) return fail("ReclaimApplication: " + receipt->error);
  total_spent_ += receipt->gas_charged;
  obs_.spent->add(receipt->gas_charged);
  // Balance delta = rebate - gas.
  rebate += chain.balance(address()) + receipt->gas_charged - before;
  return ok_status();
}

Result<chain::Mist> Initiator::reclaim(const MeasurementHandle& handle) {
  chain::Mist total_rebate = 0;
  for (chain::ObjectId application :
       {handle.client_application, handle.server_application}) {
    if (auto s = reclaim_one(application, total_rebate); !s) return s.error();
  }
  return total_rebate;
}

chain::Mist Initiator::reclaim_available(const MeasurementHandle& handle) {
  chain::Mist total_rebate = 0;
  for (chain::ObjectId application :
       {handle.client_application, handle.server_application}) {
    // The contract refuses to reclaim before a result reported; reclaim
    // what it allows and leave the rest locked until the executor (maybe)
    // comes back.
    (void)reclaim_one(application, total_rebate);
  }
  return total_rebate;
}

Result<MeasurementHandle> Initiator::purchase(
    const MeasurementRequest& request) {
  chain::Blockchain& chain = system_.chain();

  // Step 1: LookupSlot.
  marketplace::LookupSlotArgs lookup;
  lookup.client_key = request.client_key;
  lookup.server_key = request.server_key;
  lookup.cores = request.cores;
  lookup.memory_bytes = request.memory_bytes;
  lookup.bandwidth_bps = request.bandwidth_bps;
  lookup.earliest_start =
      std::max(request.earliest_start,
               system_.queue().now() + chain.config().finality_latency);
  auto lookup_receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kContractName, "LookupSlot", lookup.serialize(), 0,
      1'000'000'000,
      marketplace::access_lookup_slot(request.client_key,
                                      request.server_key)));
  if (!lookup_receipt) return lookup_receipt.error();
  if (!lookup_receipt->success)
    return fail("LookupSlot: " + lookup_receipt->error);
  total_spent_ += lookup_receipt->gas_charged;
  obs_.spent->add(lookup_receipt->gas_charged);
  auto quote = marketplace::SlotQuote::parse(
      BytesView(lookup_receipt->return_value.data(),
                lookup_receipt->return_value.size()));
  if (!quote) return quote.error();
  if (!quote->found)
    return fail("no common execution slot for " +
                request.client_key.to_string() + " / " +
                request.server_key.to_string());

  // Step 2: PurchaseSlot with the bytecode and embedded tokens.
  marketplace::PurchaseSlotArgs purchase;
  purchase.client_key = request.client_key;
  purchase.server_key = request.server_key;
  purchase.client_slot = quote->client_slot;
  purchase.server_slot = quote->server_slot;
  purchase.client_app = request.client_app;
  purchase.server_app = request.server_app;
  if (request.seal_results) {
    const Bytes pk = key_.public_key().to_bytes();
    purchase.client_app.seal_output_for = pk;
    purchase.server_app.seal_output_for = pk;
  }
  auto purchase_receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kContractName, "PurchaseSlot", purchase.serialize(),
      quote->total_price, 1'000'000'000,
      marketplace::access_purchase_slot(request.client_key,
                                        request.server_key)));
  if (!purchase_receipt) return purchase_receipt.error();
  if (!purchase_receipt->success)
    return fail("PurchaseSlot: " + purchase_receipt->error);
  total_spent_ += purchase_receipt->gas_charged + quote->total_price;
  obs_.spent->add(purchase_receipt->gas_charged + quote->total_price);
  obs_.purchased->add();
  auto receipt = marketplace::PurchaseReceipt::parse(
      BytesView(purchase_receipt->return_value.data(),
                purchase_receipt->return_value.size()));
  if (!receipt) return receipt.error();

  MeasurementHandle handle;
  handle.client_application = receipt->client_application;
  handle.server_application = receipt->server_application;
  handle.client_key = request.client_key;
  handle.server_key = request.server_key;
  handle.window_start = receipt->window_start;
  handle.window_end = receipt->window_end;
  handle.price_paid = quote->total_price;
  return handle;
}

Initiator::FetchOutcome Initiator::fetch_result(chain::ObjectId application,
                                                topology::InterfaceKey key) {
  FetchOutcome out;
  auto failed = [&out](CollectErrorKind kind,
                       std::string message) -> FetchOutcome& {
    out.error = kind;
    // Prefix with the kind name so even the flattened collect() string is
    // unambiguous — but code should branch on the enum, not this text.
    out.message =
        std::string(collect_error_name(kind)) + ": " + std::move(message);
    return out;
  };

  chain::Blockchain& chain = system_.chain();
  marketplace::LookupResultArgs args;
  args.application = application;
  auto view = chain.view(marketplace::kContractName, "LookupResult",
                         args.serialize());
  if (!view)
    return failed(CollectErrorKind::kOther, view.error_message());
  auto entry =
      marketplace::ResultEntry::parse(BytesView(view->data(), view->size()));
  if (!entry)
    return failed(CollectErrorKind::kOther, entry.error_message());
  if (!entry->found)
    return failed(CollectErrorKind::kNotPublished,
                  "result for application " + std::to_string(application) +
                      " not yet published");
  // Everything past this point is a published-but-unacceptable result:
  // waiting longer cannot fix it, only a retry against a different
  // executor can — hence kVerificationFailed, not kOther.
  auto certified = executor::CertifiedResult::parse(
      BytesView(entry->result.data(), entry->result.size()));
  if (!certified)
    return failed(CollectErrorKind::kVerificationFailed,
                  "undecodable certified result: " +
                      certified.error_message());

  // Verify: the signature must check out AND belong to the AS that hosts
  // the executor the application was assigned to.
  auto expected = system_.as_public_key(key.asn);
  if (!expected)
    return failed(CollectErrorKind::kOther, expected.error_message());
  if (!executor::verify_certified(*certified, &*expected))
    return failed(CollectErrorKind::kVerificationFailed,
                  "result for application " + std::to_string(application) +
                      " failed certification check");
  if (!(certified->record.executor_key == key))
    return failed(CollectErrorKind::kVerificationFailed,
                  "result reports wrong executor key");

  // Cross-check against the on-chain stored object (tamper evidence).
  auto stored = chain.read_object(entry->result_object);
  if (!stored)
    return failed(CollectErrorKind::kOther, stored.error_message());
  if (!(*stored == entry->result))
    return failed(CollectErrorKind::kVerificationFailed,
                  "on-chain result object mismatch");
  out.result = std::move(*certified);
  return out;
}

CollectProbe Initiator::try_collect(const MeasurementHandle& handle) {
  CollectProbe probe;
  FetchOutcome client = fetch_result(handle.client_application,
                                     handle.client_key);
  FetchOutcome server = fetch_result(handle.server_application,
                                     handle.server_key);
  probe.client = CollectSide{client.error, client.message};
  probe.server = CollectSide{server.error, server.message};
  if (probe.any(CollectErrorKind::kVerificationFailed))
    obs_.verification_rejected->add();
  if (client.result && server.result) {
    probe.outcome = MeasurementOutcome{std::move(*client.result),
                                       std::move(*server.result)};
    obs_.collected->add();
  }
  return probe;
}

Result<MeasurementOutcome> Initiator::collect(
    const MeasurementHandle& handle) {
  CollectProbe probe = try_collect(handle);
  if (probe.ok()) return std::move(*probe.outcome);
  // Surface the first failing side, client first (matches purchase order).
  const CollectSide& side =
      probe.client.error != CollectErrorKind::kNone ? probe.client
                                                    : probe.server;
  return fail(side.message);
}

Result<MeasurementHandle> Initiator::purchase_rtt_measurement(
    topology::InterfaceKey client_key, topology::InterfaceKey server_key,
    net::Protocol protocol, std::int64_t probe_count, std::int64_t interval_ms,
    SimTime earliest_start, bool seal_results) {
  const auto& topo = system_.network().topology();
  const net::Ipv4Address client_addr = topo.address_of(client_key);
  const net::Ipv4Address server_addr = topo.address_of(server_key);

  // The probe loop awaits each reply (or its timeout) before pacing the
  // next probe, so the receive timeout may exceed the interval without
  // risking sequence confusion; it just needs to cover any plausible RTT.
  const std::int64_t recv_timeout_ms = interval_ms + 1000;
  // The echo server must come up before the client starts probing and stay
  // alive for the whole run; budget for every probe timing out.
  const SimDuration run_budget =
      duration::milliseconds(interval_ms + recv_timeout_ms) *
          (probe_count + 2) +
      duration::seconds(5);

  apps::ProbeClientParams client_params;
  client_params.protocol = protocol;
  client_params.server = server_addr;
  client_params.probe_count = probe_count;
  client_params.interval_ms = interval_ms;
  client_params.recv_timeout_ms = recv_timeout_ms;

  apps::EchoServerParams server_params;
  server_params.protocol = protocol;
  server_params.max_echoes = 0;
  server_params.idle_timeout_ms = interval_ms * 3 + 2000;

  MeasurementRequest request;
  request.client_key = client_key;
  request.server_key = server_key;
  request.earliest_start = earliest_start;
  request.seal_results = seal_results;
  request.client_app.bytecode = apps::make_probe_client_debuglet().serialize();
  request.client_app.manifest =
      apps::client_manifest(protocol, server_addr, probe_count, run_budget)
          .serialize();
  request.server_app.bytecode = apps::make_echo_server_debuglet().serialize();
  request.server_app.manifest =
      apps::server_manifest(protocol, client_addr, probe_count, run_budget)
          .serialize();

  // Rendezvous: the initiator picks the server's listen port up front and
  // aims the client at it; the executor binds the server deployment to it.
  const std::uint16_t rendezvous = next_rendezvous_port_++;
  if (next_rendezvous_port_ >= 49000) next_rendezvous_port_ = 40000;
  client_params.server_port = rendezvous;
  request.server_app.listen_port = rendezvous;
  request.client_app.parameters = client_params.to_parameters();
  request.server_app.parameters = server_params.to_parameters();
  return purchase(request);
}

Result<ResilientMeasurement> Initiator::measure_rtt_resilient(
    const ResilientRttRequest& request) {
  using Kind = MeasurementIncident::Kind;
  if (request.retry.max_attempts == 0)
    return fail("measure_rtt_resilient: max_attempts must be >= 1");
  simnet::EventQueue& queue = system_.queue();
  const auto& topo = system_.network().topology();

  // The candidate rings: the primary first, then the explicit alternates,
  // or — by default — the other border interfaces of the same AS. The
  // endpoints of a measurement never traverse their own AS interior, so
  // an alternate interface of the same AS measures the same segment.
  auto candidates_for = [&](topology::InterfaceKey primary,
                            const std::vector<topology::InterfaceKey>& extra) {
    std::vector<topology::InterfaceKey> out{primary};
    if (!extra.empty()) {
      out.insert(out.end(), extra.begin(), extra.end());
    } else if (request.allow_failover) {
      for (topology::InterfaceId intf : topo.interfaces_of(primary.asn))
        if (intf != primary.interface)
          out.push_back(topology::InterfaceKey{primary.asn, intf});
    }
    return out;
  };
  const std::vector<topology::InterfaceKey> client_candidates =
      candidates_for(request.client_key, request.client_alternates);
  const std::vector<topology::InterfaceKey> server_candidates =
      candidates_for(request.server_key, request.server_alternates);

  ResilientMeasurement rm;
  std::size_t ci = 0;
  std::size_t si = 0;
  auto note = [&](Kind kind, std::uint32_t attempt, std::string detail) {
    MeasurementIncident incident;
    incident.kind = kind;
    incident.attempt = attempt;
    incident.client_key = client_candidates[ci];
    incident.server_key = server_candidates[si];
    incident.detail = std::move(detail);
    rm.incidents.push_back(std::move(incident));
  };
  auto fail_over = [&](bool client_side, bool server_side,
                       std::uint32_t attempt) {
    if (!request.allow_failover) return;
    bool moved = false;
    if (client_side && client_candidates.size() > 1) {
      ci = (ci + 1) % client_candidates.size();
      moved = true;
    }
    if (server_side && server_candidates.size() > 1) {
      si = (si + 1) % server_candidates.size();
      moved = true;
    }
    if (moved) {
      ++rm.failovers;
      obs_.failovers->add();
      note(Kind::kFailover, attempt,
           "next pair " + client_candidates[ci].to_string() + ".." +
               server_candidates[si].to_string());
    }
  };
  RetryObs retry_obs("resilient_rtt");

  for (std::uint32_t attempt = 1; attempt <= request.retry.max_attempts;
       ++attempt) {
    retry_obs.attempt();
    rm.attempts = attempt;
    if (attempt > 1) {
      const SimDuration backoff =
          request.retry.delay_before(attempt, chaos_rng_);
      note(Kind::kBackoff, attempt, format_duration(backoff));
      retry_obs.retry(backoff);
      queue.run_until(queue.now() + backoff);
    }

    auto handle = purchase_rtt_measurement(
        client_candidates[ci], server_candidates[si], request.protocol,
        request.probe_count, request.interval_ms,
        std::max(request.earliest_start, queue.now()), request.seal_results);
    if (!handle) {
      note(Kind::kPurchaseFailed, attempt, handle.error_message());
      // A pair that cannot even trade a slot: rotate both sides.
      fail_over(true, true, attempt);
      continue;
    }

    queue.run_until(handle->window_end + request.grace);
    CollectProbe probe = try_collect(*handle);
    if (!probe.ok() && probe.any(CollectErrorKind::kNotPublished)) {
      // One grace extension covers a ResultReady still in finality flight.
      queue.run_until(queue.now() + request.grace);
      probe = try_collect(*handle);
    }
    if (probe.ok()) {
      rm.outcome = std::move(*probe.outcome);
      rm.handle = *handle;
      rm.client_key = client_candidates[ci];
      rm.server_key = server_candidates[si];
      return rm;
    }

    for (const CollectSide* side : {&probe.client, &probe.server}) {
      if (side->error == CollectErrorKind::kNone) continue;
      if (side->error == CollectErrorKind::kVerificationFailed) {
        ++rm.byzantine_rejections;
        note(Kind::kVerificationRejected, attempt, side->message);
      } else {
        // kNotPublished after window + 2x grace (or an infrastructure
        // error): treat the executor as down.
        obs_.executor_down->add();
        note(Kind::kResultMissing, attempt, side->message);
      }
    }
    const chain::Mist rebate = reclaim_available(*handle);
    if (rebate > 0) {
      rm.reclaimed += rebate;
      note(Kind::kReclaimed, attempt, std::to_string(rebate) + " mist");
    }
    fail_over(probe.client.error != CollectErrorKind::kNone,
              probe.server.error != CollectErrorKind::kNone, attempt);
  }

  obs_.measurements_abandoned->add();
  retry_obs.gave_up();
  return fail("resilient measurement abandoned after " +
              std::to_string(request.retry.max_attempts) + " attempts");
}

Result<marketplace::ReputationRecord> Initiator::report_discrimination(
    topology::AsNumber asn, double confidence, std::uint64_t rounds_used,
    const std::string& detail) {
  marketplace::ReportArgs args;
  args.asn = asn;
  const double permille = confidence * 1000.0;
  args.confidence_permille =
      permille <= 0.0 ? 0
                      : static_cast<std::uint32_t>(
                            permille >= 1000.0 ? 1000.0 : permille);
  args.rounds_used = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(rounds_used, 0xFFFFFFFFULL));
  args.detail = detail;
  chain::Blockchain& chain = system_.chain();
  auto receipt = chain.submit(chain.make_transaction(
      key_, marketplace::kReputationContractName, "Report", args.serialize(),
      0, 1'000'000'000, marketplace::access_report(asn, address())));
  if (!receipt) return receipt.error();
  if (!receipt->success) return fail(receipt->error);
  return marketplace::ReputationRecord::parse(
      BytesView(receipt->return_value.data(), receipt->return_value.size()));
}

}  // namespace debuglet::core
