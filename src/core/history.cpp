#include "core/history.hpp"

#include <algorithm>

namespace debuglet::core {

const std::vector<ArchivedMeasurement> MeasurementArchive::kEmpty;

Bytes ArchivedMeasurement::serialize() const {
  BytesWriter w;
  w.i64(measured_at);
  w.varint(summary.probes_sent);
  w.varint(summary.probes_answered);
  w.f64(summary.mean_ms);
  w.f64(summary.std_ms);
  w.f64(summary.min_ms);
  w.f64(summary.max_ms);
  return w.take();
}

Result<ArchivedMeasurement> ArchivedMeasurement::parse(BytesView data) {
  BytesReader r(data);
  ArchivedMeasurement out;
  auto at = r.i64();
  if (!at) return at.error();
  out.measured_at = *at;
  auto sent = r.varint();
  if (!sent) return sent.error();
  out.summary.probes_sent = static_cast<std::size_t>(*sent);
  auto answered = r.varint();
  if (!answered) return answered.error();
  out.summary.probes_answered = static_cast<std::size_t>(*answered);
  auto mean = r.f64();
  if (!mean) return mean.error();
  out.summary.mean_ms = *mean;
  auto std_ms = r.f64();
  if (!std_ms) return std_ms.error();
  out.summary.std_ms = *std_ms;
  auto min_ms = r.f64();
  if (!min_ms) return min_ms.error();
  out.summary.min_ms = *min_ms;
  auto max_ms = r.f64();
  if (!max_ms) return max_ms.error();
  out.summary.max_ms = *max_ms;
  if (!r.exhausted()) return fail("archived measurement: trailing bytes");
  return out;
}

MeasurementArchive::MeasurementArchive(SimDuration retention)
    : retention_(retention) {}

void MeasurementArchive::record(const DiagnosticKey& key, SimTime at,
                                const RttSummary& summary) {
  auto& series = entries_[key];
  series.push_back(ArchivedMeasurement{at, summary});
  // Entries arrive in time order from a simulation; prune from the front.
  const SimTime cutoff = at - retention_;
  auto first_kept = std::find_if(
      series.begin(), series.end(),
      [cutoff](const ArchivedMeasurement& m) { return m.measured_at >= cutoff; });
  series.erase(series.begin(), first_kept);
}

const std::vector<ArchivedMeasurement>& MeasurementArchive::history(
    const DiagnosticKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? kEmpty : it->second;
}

std::size_t MeasurementArchive::total_entries() const {
  std::size_t n = 0;
  for (const auto& [_, series] : entries_) n += series.size();
  return n;
}

crypto::Digest MeasurementArchive::anchor(const DiagnosticKey& key) const {
  std::vector<Bytes> leaves;
  for (const ArchivedMeasurement& m : history(key))
    leaves.push_back(m.serialize());
  return crypto::MerkleTree(leaves).root();
}

Result<crypto::MerkleProof> MeasurementArchive::prove(
    const DiagnosticKey& key, std::size_t index) const {
  const auto& series = history(key);
  if (index >= series.size())
    return fail("archive proof: index out of range");
  std::vector<Bytes> leaves;
  for (const ArchivedMeasurement& m : series) leaves.push_back(m.serialize());
  return crypto::MerkleTree(leaves).prove(index);
}

DegradationReport detect_degradation(
    const std::vector<ArchivedMeasurement>& series, double threshold_ms) {
  DegradationReport out;
  if (series.size() < 4) return out;

  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };

  // Baseline from the stable prefix (first quarter, at least 3 entries).
  const std::size_t prefix = std::max<std::size_t>(3, series.size() / 4);
  std::vector<double> prefix_rtt;
  double prefix_loss = 0.0;
  for (std::size_t i = 0; i < prefix && i < series.size(); ++i) {
    prefix_rtt.push_back(series[i].summary.mean_ms);
    prefix_loss += series[i].summary.loss_rate();
  }
  const double baseline = median(prefix_rtt);
  const double baseline_loss = prefix_loss / static_cast<double>(prefix);

  // Onset: the first entry above baseline + threshold (or with tripled
  // loss) such that the elevation is SUSTAINED — the median of the rest of
  // the series from that entry on is also elevated. A lone spike is noise.
  for (std::size_t i = 1; i + 1 < series.size(); ++i) {
    const bool entry_rtt_high =
        series[i].summary.mean_ms > baseline + threshold_ms;
    const bool entry_loss_high =
        series[i].summary.loss_rate() > 0.02 &&
        series[i].summary.loss_rate() > 3.0 * baseline_loss;
    if (!entry_rtt_high && !entry_loss_high) continue;

    std::vector<double> tail_rtt;
    double tail_loss = 0.0;
    for (std::size_t j = i; j < series.size(); ++j) {
      tail_rtt.push_back(series[j].summary.mean_ms);
      tail_loss += series[j].summary.loss_rate();
    }
    tail_loss /= static_cast<double>(series.size() - i);
    const double tail_median = median(tail_rtt);
    const bool sustained_rtt = tail_median > baseline + threshold_ms;
    const bool sustained_loss =
        tail_loss > 0.02 && tail_loss > 3.0 * baseline_loss;
    if ((entry_rtt_high && sustained_rtt) ||
        (entry_loss_high && sustained_loss)) {
      out.degraded = true;
      out.onset = series[i].measured_at;
      out.baseline_ms = baseline;
      out.degraded_ms = tail_median;
      return out;
    }
  }
  return out;
}

}  // namespace debuglet::core
