#include "core/remote_stats.hpp"

#include "util/log.hpp"

namespace debuglet::core {

RemoteScraper::RemoteScraper(simnet::SimulatedNetwork& network,
                             net::Ipv4Address address, ScrapeConfig config)
    : network_(network),
      address_(address),
      config_(config),
      retry_rng_(config.retry_seed),
      retry_obs_("scrape_chunk") {}

void RemoteScraper::start(DoneCallback on_done) {
  if (started_) return;
  started_ = true;
  on_done_ = std::move(on_done);
  report_.started = network_.now();
  assembler_.reset();
  // Chunk 0 first: its header carries the chunk count, and requesting it
  // makes the stats Debuglet freeze a fresh snapshot for this session.
  request_chunk(0);
}

void RemoteScraper::request_chunk(std::uint16_t index) {
  BytesWriter w;
  w.u64(index);
  net::ProbeSpec spec;
  spec.protocol = config_.protocol;
  spec.source = address_;
  spec.destination = config_.target;
  spec.source_port = source_port_;
  spec.destination_port = config_.target_port;
  spec.sequence = index;
  spec.payload = w.take();
  auto wire = net::build_probe(spec);
  if (!wire) {
    fail_scrape("request build: " + wire.error_message());
    return;
  }
  ++report_.requests_sent;
  const std::uint32_t attempt = ++attempts_[index];
  retry_obs_.attempt();
  const std::uint64_t token = next_token_++;
  pending_[index] = token;
  if (auto s = network_.send(address_, std::move(*wire)); !s) {
    fail_scrape("request send: " + s.error_message());
    return;
  }
  // The policy's backoff before attempt k doubles as attempt k-1's
  // response timeout; give up once max_attempts is exhausted. The timer
  // is homed on the scraper host's domain: deliveries (on_packet) run
  // there, so pending_/attempts_ stay single-lane under sharding.
  const SimDuration timeout =
      config_.retry.delay_before(attempt + 1, retry_rng_);
  network_.queue().schedule_on(
      network_.domain_of(address_), network_.now() + timeout,
      [this, index, token, timeout] {
    if (finished_) return;
    auto it = pending_.find(index);
    if (it == pending_.end() || it->second != token) return;
    pending_.erase(it);
    if (attempts_[index] >= config_.retry.max_attempts) {
      retry_obs_.gave_up();
      fail_scrape("chunk " + std::to_string(index) + " timed out after " +
                  std::to_string(attempts_[index]) + " attempts");
      return;
    }
    ++report_.retries;
    retry_obs_.retry(timeout);
    request_chunk(index);
  });
}

void RemoteScraper::rerequest_oldest_pending() {
  if (pending_.empty()) return;
  const std::uint16_t index = pending_.begin()->first;
  // The shared RetryPolicy still governs the budget: once this index has
  // burned its attempts, leave the timeout timer to declare failure.
  if (attempts_[index] >= config_.retry.max_attempts) return;
  pending_.erase(index);  // invalidates the old timer's token match
  ++report_.retries;
  retry_obs_.retry(0);
  obs::registry().counter("core.scrape_chunks_rereq").add();
  request_chunk(index);
}

void RemoteScraper::fill_window() {
  // The cursor visits each index exactly once (the timeout timer owns
  // re-requests), so everything between it and the window is missing.
  const std::size_t expected = assembler_.expected_chunks();
  while (pending_.size() < config_.window && next_to_request_ < expected) {
    request_chunk(next_to_request_++);
    if (finished_) return;  // a send failure ended the scrape
  }
}

void RemoteScraper::on_packet(const simnet::Delivery& delivery) {
  if (finished_ || !started_) return;
  const net::Packet& packet = delivery.packet;
  if (packet.protocol != config_.protocol) return;
  if (!(packet.ip.source == config_.target)) return;
  std::uint16_t destination_port = 0;
  if (packet.udp) destination_port = packet.udp->destination_port;
  if (packet.tcp) destination_port = packet.tcp->destination_port;
  if (packet.icmp) destination_port = packet.icmp->identifier;
  if (destination_port != source_port_) return;

  const BytesView payload(packet.payload.data(), packet.payload.size());
  auto chunk = obs::wire::parse_chunk(payload);
  if (!chunk) {
    // The per-chunk digest caught in-flight damage. The response carries
    // no usable index, so re-request the oldest outstanding chunk — the
    // one most likely to have produced this response — instead of waiting
    // out its full timeout.
    ++report_.corrupt_rejected;
    obs::registry().counter("core.scrape_chunks_corrupt").add();
    DEBUGLET_LOG(kDebug, "scrape")
        << "discarding corrupt response: " << chunk.error_message();
    rerequest_oldest_pending();
    return;
  }
  if (assembler_.has_chunk(chunk->index)) {
    // Redundant retransmission (a duplicated frame, or a retry crossing
    // its answer): note it and let the assembler verify it matches.
    ++report_.duplicate_chunks;
    obs::registry().counter("core.scrape_chunks_duplicate").add();
  }
  if (auto s = assembler_.add_chunk(payload); !s) {
    // A rejected chunk 0 usually means the server re-froze the snapshot
    // (a retried chunk-0 request): restart collection on the new snapshot
    // rather than mixing two. Any other mismatch just gets dropped — the
    // retry timer re-requests what's still missing.
    if (chunk->index != 0) {
      DEBUGLET_LOG(kDebug, "scrape")
          << "chunk rejected: " << s.error_message();
      return;
    }
    assembler_.reset();
    next_to_request_ = 0;
    pending_.clear();
    if (!assembler_.add_chunk(payload)) return;
  }
  pending_.erase(chunk->index);
  if (next_to_request_ == 0) next_to_request_ = 1;  // past chunk 0
  if (assembler_.complete()) {
    complete_scrape();
    return;
  }
  fill_window();
}

void RemoteScraper::complete_scrape() {
  auto rows = assembler_.finish();
  if (!rows) {
    fail_scrape("reassembly: " + rows.error_message());
    return;
  }
  finished_ = true;
  report_.complete = true;
  report_.chunks = assembler_.expected_chunks();
  report_.finished = network_.now();
  report_.rows = std::move(*rows);
  obs::registry().counter("core.scrapes_completed").add();
  if (on_done_) on_done_(report_);
}

void RemoteScraper::fail_scrape(const std::string& reason) {
  if (finished_) return;
  finished_ = true;
  report_.complete = false;
  report_.error = reason;
  report_.finished = network_.now();
  obs::registry().counter("core.scrapes_failed").add();
  if (on_done_) on_done_(report_);
}

Status RemoteScraper::merge_into(obs::MetricsRegistry& target,
                                 std::string label) const {
  if (!report_.complete)
    return fail("scrape incomplete" +
                (report_.error.empty() ? std::string()
                                       : ": " + report_.error));
  if (label.empty()) label = config_.target.to_string();
  return obs::wire::merge_rows(target, report_.rows, label);
}

Result<StatsDeployment> purchase_stats_pair(Initiator& initiator,
                                            DebugletSystem& system,
                                            const StatsPairRequest& request) {
  const auto& topo = system.network().topology();

  MeasurementRequest purchase;
  purchase.client_key = request.first_key;
  purchase.server_key = request.second_key;
  purchase.earliest_start = request.earliest_start;

  const Bytes bytecode = apps::make_stats_debuglet().serialize();
  const Bytes manifest =
      apps::stats_manifest(request.params.protocol, request.scraper_address,
                           request.request_budget, request.serve_budget)
          .serialize();
  purchase.client_app.bytecode = bytecode;
  purchase.client_app.manifest = manifest;
  purchase.client_app.parameters = request.params.to_parameters();
  purchase.client_app.listen_port = request.first_port;
  purchase.server_app.bytecode = bytecode;
  purchase.server_app.manifest = manifest;
  purchase.server_app.parameters = request.params.to_parameters();
  purchase.server_app.listen_port = request.second_port;

  auto handle = initiator.purchase(purchase);
  if (!handle) return handle.error();

  StatsDeployment out;
  out.handle = *handle;
  out.first_address = topo.address_of(request.first_key);
  out.second_address = topo.address_of(request.second_key);
  out.first_port = request.first_port;
  out.second_port = request.second_port;
  return out;
}

Result<ScrapeReport> scrape_once(DebugletSystem& system,
                                 net::Ipv4Address scraper_address,
                                 const ScrapeConfig& config,
                                 SimTime deadline) {
  RemoteScraper scraper(system.network(), scraper_address, config);
  if (auto s = system.network().attach_host(scraper_address, &scraper); !s)
    return s.error();
  scraper.start();
  simnet::EventQueue& queue = system.queue();
  while (!scraper.finished() && queue.now() < deadline && !queue.empty())
    queue.run_until(std::min(deadline, queue.now() + duration::seconds(1)));
  system.network().detach_host(scraper_address);
  if (!scraper.finished())
    return fail("scrape did not finish before the deadline");
  if (!scraper.report().complete)
    return fail("scrape failed: " + scraper.report().error);
  return scraper.report();
}

}  // namespace debuglet::core
