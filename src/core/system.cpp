#include "core/system.hpp"

#include "util/log.hpp"

namespace debuglet::core {

ExecutorAgent::ExecutorAgent(chain::Blockchain& chain,
                             simnet::SimulatedNetwork& network,
                             topology::InterfaceKey key,
                             crypto::KeyPair operator_key,
                             const SystemConfig& config)
    : chain_(chain),
      network_(network),
      key_(key),
      operator_key_(std::move(operator_key)),
      config_(&config) {
  service_ = std::make_unique<executor::ExecutorService>(
      network_, key_, operator_key_, config.executor,
      0xE0ECu ^ (static_cast<std::uint64_t>(key.asn) << 16) ^ key.interface);
  subscribe();
}

void ExecutorAgent::subscribe() {
  subscription_ = chain_.subscribe(
      marketplace::kContractName, marketplace::kEventDebugletDeployed,
      key_.to_string(),
      [this](const chain::Event& event) { on_deployment_event(event); });
}

Status ExecutorAgent::register_slots(SimTime from, SimTime until) {
  marketplace::RegisterTimeSlotArgs slots;
  slots.key = key_;
  for (SimTime t = from; t < until; t += config_->slot_length) {
    marketplace::TimeSlot slot;
    slot.cores = 2;
    slot.memory_bytes = 1 << 20;
    slot.bandwidth_bps = 100'000'000;
    slot.start = t;
    slot.end = t + config_->slot_length;
    slot.price = config_->slot_price;
    slots.slots.push_back(slot);
  }
  if (slots.slots.empty()) return ok_status();
  auto slot_receipt = chain_.submit(chain_.make_transaction(
      operator_key_, marketplace::kContractName, "RegisterTimeSlot",
      slots.serialize(), 0, 1'000'000'000,
      marketplace::access_register_time_slot(key_)));
  if (!slot_receipt) return slot_receipt.error();
  if (!slot_receipt->success)
    return fail("RegisterTimeSlot: " + slot_receipt->error);
  slots_registered_until_ = std::max(slots_registered_until_, until);
  return ok_status();
}

Status ExecutorAgent::bootstrap(SimTime horizon_start) {
  marketplace::RegisterExecutorArgs reg{key_};
  auto receipt = chain_.submit(chain_.make_transaction(
      operator_key_, marketplace::kContractName, "RegisterExecutor",
      reg.serialize(), 0, 1'000'000'000,
      marketplace::access_register_executor(key_)));
  if (!receipt) return receipt.error();
  if (!receipt->success) return fail("RegisterExecutor: " + receipt->error);
  return register_slots(horizon_start, horizon_start + config_->slot_horizon);
}

void ExecutorAgent::kill() {
  if (!alive_) return;
  alive_ = false;
  chain_.unsubscribe(subscription_);
  subscription_ = 0;
  service_->halt();
  obs::registry()
      .counter("core.agent_kills",
               {{"as", std::to_string(key_.asn)},
                {"intf", std::to_string(key_.interface)}})
      .add();
  DEBUGLET_LOG(kInfo, "agent") << key_.to_string() << ": killed";
}

Status ExecutorAgent::restart() {
  if (alive_) return ok_status();
  if (auto s = service_->revive(); !s) return s;
  subscribe();
  alive_ = true;
  obs::registry()
      .counter("core.agent_restarts",
               {{"as", std::to_string(key_.asn)},
                {"intf", std::to_string(key_.interface)}})
      .add();
  // The calendar registered before the kill is still on-chain (slots are
  // not liveness-aware), so only the tail past the old horizon — if the
  // outage outlasted it — needs re-registering.
  const SimTime now = network_.queue().now();
  if (slots_registered_until_ < now + config_->slot_horizon) {
    const SimTime from = std::max(slots_registered_until_, now);
    if (auto s = register_slots(from, now + config_->slot_horizon); !s)
      return s;
  }
  DEBUGLET_LOG(kInfo, "agent") << key_.to_string() << ": restarted";
  return ok_status();
}

executor::CertifiedResult ExecutorAgent::corrupt(
    executor::CertifiedResult result) const {
  switch (byzantine_) {
    case ByzantineMode::kHonest:
      break;
    case ByzantineMode::kBadSignature: {
      // Flip the low bit of the signature's response scalar: the record
      // is intact but certification no longer checks out.
      Bytes sig = result.signature.to_bytes();
      if (!sig.empty()) sig.back() ^= 0x01;
      if (auto parsed = crypto::Signature::from_bytes(
              BytesView(sig.data(), sig.size()));
          parsed)
        result.signature = *parsed;
      break;
    }
    case ByzantineMode::kTamperedOutput:
      // Mutate the measurement after signing: the signature itself is
      // genuine but no longer covers what the record now claims.
      if (result.record.output.empty())
        result.record.output.push_back(0xFF);
      else
        result.record.output.front() ^= 0xFF;
      break;
  }
  return result;
}

void ExecutorAgent::on_deployment_event(const chain::Event& event) {
  BytesReader r(BytesView(event.payload.data(), event.payload.size()));
  auto app_id = r.u64();
  if (!app_id) {
    DEBUGLET_LOG(kError, "agent") << "bad deployment event payload";
    return;
  }
  // The event fires synchronously inside the purchase transaction; the
  // executor observes it after the chain's finality latency.
  const chain::ObjectId id = *app_id;
  network_.queue().schedule_after(chain_.config().finality_latency,
                                  [this, id] { handle_application(id); });
}

void ExecutorAgent::handle_application(chain::ObjectId application_id) {
  auto data = chain_.read_object(application_id);
  if (!data) {
    DEBUGLET_LOG(kError, "agent")
        << key_.to_string() << ": " << data.error_message();
    return;
  }
  auto object = marketplace::ApplicationObject::parse(
      BytesView(data->data(), data->size()));
  if (!object) {
    DEBUGLET_LOG(kError, "agent")
        << key_.to_string() << ": " << object.error_message();
    return;
  }
  if (!(object->executor_key == key_)) return;  // not ours

  auto manifest = executor::Manifest::parse(
      BytesView(object->payload.manifest.data(),
                object->payload.manifest.size()));
  if (!manifest) {
    DEBUGLET_LOG(kError, "agent")
        << key_.to_string() << ": manifest: " << manifest.error_message();
    return;
  }

  executor::DebugletApp app;
  app.application_id = application_id;
  app.module_bytes = object->payload.bytecode;
  app.manifest = *manifest;
  app.parameters = object->payload.parameters;
  app.listen_port = object->payload.listen_port;
  app.seal_output_for = object->payload.seal_output_for;

  const SimTime start =
      std::max(object->window_start, network_.queue().now());
  auto deployment = service_->deploy_and_schedule(
      std::move(app), start,
      [this, application_id](const executor::CertifiedResult& result) {
        executor::CertifiedResult published = result;
        if (byzantine_ != ByzantineMode::kHonest) {
          published = corrupt(std::move(published));
          obs::registry()
              .counter("core.byzantine_results_published",
                       {{"as", std::to_string(key_.asn)},
                        {"intf", std::to_string(key_.interface)}})
              .add();
        }
        marketplace::ResultReadyArgs args;
        args.application = application_id;
        args.result = published.serialize();
        auto receipt = chain_.submit(chain_.make_transaction(
            operator_key_, marketplace::kContractName, "ResultReady",
            args.serialize(), 0, 1'000'000'000,
            marketplace::access_result_ready(application_id)));
        if (!receipt || !receipt->success) {
          DEBUGLET_LOG(kError, "agent")
              << key_.to_string() << ": ResultReady failed: "
              << (receipt ? receipt->error : receipt.error_message());
        }
      });
  if (!deployment) {
    DEBUGLET_LOG(kWarn, "agent")
        << key_.to_string() << ": rejected application "
        << application_id << ": " << deployment.error_message();
  }
}

DebugletSystem::DebugletSystem(simnet::Scenario scenario, SystemConfig config,
                               std::uint64_t seed)
    : scenario_(std::move(scenario)), config_(config), chain_(config.chain) {
  chain_.set_clock(
      [queue = scenario_.queue.get()] { return queue->now(); });

  auto contract = std::make_unique<marketplace::MarketplaceContract>();
  marketplace_ = contract.get();
  if (auto s = chain_.register_contract(std::move(contract)); !s)
    throw std::runtime_error(s.error_message());

  // Accountability sidecar: the marketplace quote/purchase paths read its
  // strike records cross-contract to price-penalize implicated ASes.
  auto reputation = std::make_unique<marketplace::ReputationContract>();
  reputation_ = reputation.get();
  if (auto s = chain_.register_contract(std::move(reputation)); !s)
    throw std::runtime_error(s.error_message());

  const auto& topo = scenario_.network->topology();
  for (topology::AsNumber asn : topo.as_numbers()) {
    auto key_pair = crypto::KeyPair::from_seed(seed ^ (0xA5ULL << 32) ^ asn);
    chain_.mint(chain::Address::of(key_pair.public_key()),
                config_.operator_funding);
    operator_keys_.emplace(asn, key_pair);
    for (topology::InterfaceId intf : topo.interfaces_of(asn)) {
      const topology::InterfaceKey key{asn, intf};
      auto agent = std::make_unique<ExecutorAgent>(chain_, *scenario_.network,
                                                   key, key_pair, config_);
      if (auto s = agent->bootstrap(scenario_.queue->now()); !s)
        throw std::runtime_error("bootstrap " + key.to_string() + ": " +
                                 s.error_message());
      agents_.emplace(key, std::move(agent));
    }
  }
}

Result<ExecutorAgent*> DebugletSystem::agent(topology::InterfaceKey key) {
  auto it = agents_.find(key);
  if (it == agents_.end())
    return fail("no executor at " + key.to_string());
  return it->second.get();
}

std::vector<topology::InterfaceKey> DebugletSystem::executor_keys() const {
  std::vector<topology::InterfaceKey> out;
  out.reserve(agents_.size());
  for (const auto& [key, _] : agents_) out.push_back(key);
  return out;
}

Result<crypto::PublicKey> DebugletSystem::as_public_key(
    topology::AsNumber asn) const {
  auto it = operator_keys_.find(asn);
  if (it == operator_keys_.end())
    return fail("unknown AS" + std::to_string(asn));
  return it->second.public_key();
}

}  // namespace debuglet::core
