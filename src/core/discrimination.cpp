#include "core/discrimination.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "telemetry/int_header.hpp"
#include "util/rng.hpp"
#include "util/sprt.hpp"

namespace debuglet::core {

namespace {

constexpr std::uint64_t kTwinPayloadSalt = 0x7719A3ULL;
constexpr std::uint64_t kTwinPacingSalt = 0x7719B4ULL;
constexpr std::uint64_t kTwinPortSalt = 0x7719C5ULL;

// Maps a nonnegative separation score into [0, 1); 4.0 is the score at
// which confidence crosses 0.5. Genuine fault hiding scores far higher.
double score_to_confidence(double score) {
  return score <= 0.0 ? 0.0 : score / (score + 4.0);
}

// Maps an SPRT log-likelihood ratio into [0, 1): an LLR at Wald's H1
// bound (log((1-beta)/alpha), ~4.55 at the defaults) maps to ~0.99.
double llr_confidence(double llr) {
  return llr <= 0.0 ? 0.0 : 1.0 - std::exp(-llr);
}

// Welch-style separation between two sample sets (positive = b slower).
// The standard error is floored at 0.05 ms so jitter-free scenarios
// (sample variance exactly zero) yield a large finite score rather than a
// division by zero.
double separation_score(const SampleSet& a, const SampleSet& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double var_a = a.stddev() * a.stddev();
  const double var_b = b.stddev() * b.stddev();
  double se = std::sqrt(var_a / static_cast<double>(a.count()) +
                        var_b / static_cast<double>(b.count()));
  se = std::max(se, 0.05);
  return (b.mean() - a.mean()) / se;
}

double mean_or_zero(const SampleSet& s) { return s.empty() ? 0.0 : s.mean(); }

// An ephemeral source port outside every fingerprinted range, drawn from
// the detector's own seeded RNG (fixed constants would collide across
// detectors and hand the adversary a free invariant).
std::uint16_t ephemeral_source_port(Rng& rng) {
  return static_cast<std::uint16_t>(51000 + rng.next_below(10000));
}

/// Delivery record of one twin round at one collector.
struct RoundOutcome {
  bool probe = false;
  bool data = false;
  double probe_ms = 0.0;
  double data_ms = 0.0;
};

// Receiving twin endpoint: tallies per-class one-way delay and, when the
// payload still carries an intact INT stack, per-AS residence and drop
// snapshots. With a round table attached it also records which twin of
// each round arrived (the probe sequence rides in IP identification).
class TwinCollector final : public simnet::Host {
 public:
  TwinCollector(std::uint16_t probe_port, std::uint16_t data_port,
                TwinClassSummary& probe_like, TwinClassSummary& data_like,
                std::vector<RoundOutcome>* rounds = nullptr)
      : probe_port_(probe_port),
        data_port_(data_port),
        probe_like_(probe_like),
        data_like_(data_like),
        rounds_(rounds) {}

  void on_packet(const simnet::Delivery& delivery) override {
    if (!delivery.packet.udp) return;
    const std::uint16_t port = delivery.packet.udp->destination_port;
    const bool is_probe = port == probe_port_;
    if (!is_probe && port != data_port_) return;
    TwinClassSummary& summary = is_probe ? probe_like_ : data_like_;
    summary.received += 1;
    const double one_way_ms =
        duration::to_ms(delivery.received_at - delivery.sent_at);
    summary.one_way_ms.add(one_way_ms);
    record_residence(delivery, summary);
    if (rounds_ != nullptr) {
      const std::uint16_t seq = delivery.packet.ip.identification;
      if (seq < rounds_->size()) {
        RoundOutcome& o = (*rounds_)[seq];
        if (is_probe) {
          o.probe = true;
          o.probe_ms = one_way_ms;
        } else {
          o.data = true;
          o.data_ms = one_way_ms;
        }
      }
    }
  }

 private:
  static void record_residence(const simnet::Delivery& delivery,
                               TwinClassSummary& summary) {
    const Bytes& payload = delivery.packet.payload;
    const BytesView view(payload.data(), payload.size());
    if (!telemetry::IntHeader::looks_like_int(view)) return;
    auto header = telemetry::IntHeader::parse(view);
    if (!header) return;  // mangled in flight; the damage shows elsewhere
    for (const telemetry::HopRecord& rec : header->records()) {
      summary.residence_ms[rec.asn].add(
          static_cast<double>(rec.egress_ns - rec.ingress_ns) / 1e6);
      std::uint32_t& seen = summary.drops_seen[rec.asn];
      seen = std::max(seen, rec.drops_seen);
    }
  }

  std::uint16_t probe_port_;
  std::uint16_t data_port_;
  TwinClassSummary& probe_like_;
  TwinClassSummary& data_like_;
  std::vector<RoundOutcome>* rounds_;
};

/// Loss evidence that compounds with (or substitutes for) the residence
/// evidence: where the missing twins most likely died and how sure.
struct LossSignal {
  bool significant = false;
  topology::AsNumber loss_as = 0;
  double confidence = 0.0;
  std::string detail;  // appended to the matching suspect's detail
};

topology::AsNumber max_drop_as(const TwinClassSummary& data_like) {
  topology::AsNumber loss_as = 0;
  std::uint32_t max_drops = 0;
  for (const auto& [asn, drops] : data_like.drops_seen) {
    if (drops > max_drops) {
      max_drops = drops;
      loss_as = asn;
    }
  }
  return loss_as;
}

// Residence-stack suspects: one per AS with samples in both arms; the
// loss signal compounds into its AS (independent evidence).
void build_residence_suspects(DiscriminationReport& report,
                              const LossSignal& loss) {
  char buf[192];
  for (const auto& [asn, data_set] : report.data_like.residence_ms) {
    auto it = report.probe_like.residence_ms.find(asn);
    if (it == report.probe_like.residence_ms.end()) continue;
    const SampleSet& probe_set = it->second;
    DiscriminationEvidence ev;
    ev.asn = asn;
    ev.residence_delta_ms = mean_or_zero(data_set) - mean_or_zero(probe_set);
    ev.score = separation_score(probe_set, data_set);
    ev.confidence = score_to_confidence(ev.score);
    std::snprintf(buf, sizeof(buf),
                  "residence data %.3f ms vs probe %.3f ms, n=%zu/%zu",
                  mean_or_zero(data_set), mean_or_zero(probe_set),
                  data_set.count(), probe_set.count());
    ev.detail = buf;
    if (loss.significant && asn == loss.loss_as) {
      ev.confidence = 1.0 - (1.0 - ev.confidence) * (1.0 - loss.confidence);
      ev.detail += loss.detail;
    }
    report.suspects.push_back(std::move(ev));
  }
}

void sort_suspects(DiscriminationReport& report) {
  std::sort(report.suspects.begin(), report.suspects.end(),
            [](const DiscriminationEvidence& a,
               const DiscriminationEvidence& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              return a.asn < b.asn;
            });
}

void count_decision(const DiscriminationReport& report) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.counter("core.discrimination.runs").add();
  reg.counter("core.discrimination.rounds").add(report.rounds_used);
  reg.counter("core.discrimination.decisions", {{"outcome", report.decision}})
      .add();
}

}  // namespace

double two_proportion_loss_z(const TwinClassSummary& probe_like,
                             const TwinClassSummary& data_like,
                             std::uint64_t min_loss_events) {
  // Small-sample gate: the normal approximation behind the z statistic is
  // unstable on a handful of losses, so it only counts once the arms saw
  // at least `min_loss_events` loss events combined.
  const std::uint64_t events = (probe_like.sent - probe_like.received) +
                               (data_like.sent - data_like.received);
  if (events < min_loss_events) return 0.0;
  const double np = static_cast<double>(probe_like.sent);
  const double nd = static_cast<double>(data_like.sent);
  if (np <= 0.0 || nd <= 0.0) return 0.0;
  const double pp = probe_like.loss_rate();
  const double pd = data_like.loss_rate();
  const double pool = (np * pp + nd * pd) / (np + nd);
  const double se = std::sqrt(pool * (1.0 - pool) * (1.0 / np + 1.0 / nd));
  return se > 0.0 ? (pd - pp) / se : 0.0;
}

std::string DiscriminationReport::trace() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "twins: probe-like %llu/%llu mean %.3f ms | data-like "
                "%llu/%llu mean %.3f ms | delta %.3f ms loss-gap %.4f\n",
                static_cast<unsigned long long>(probe_like.received),
                static_cast<unsigned long long>(probe_like.sent),
                mean_or_zero(probe_like.one_way_ms),
                static_cast<unsigned long long>(data_like.received),
                static_cast<unsigned long long>(data_like.sent),
                mean_or_zero(data_like.one_way_ms), delay_delta_ms,
                loss_delta);
  out += line;
  std::snprintf(line, sizeof(line),
                "rounds: %llu decision %s delay-llr %.2f loss-llr %.2f\n",
                static_cast<unsigned long long>(rounds_used),
                decision.empty() ? "none" : decision.c_str(), delay_llr,
                loss_llr);
  out += line;
  for (const DiscriminationEvidence& ev : suspects) {
    if (ev.asn == 0)
      std::snprintf(line, sizeof(line),
                    "  end-to-end: confidence %.3f delta %.3f ms score %.2f "
                    "(%s)\n",
                    ev.confidence, ev.residence_delta_ms, ev.score,
                    ev.detail.c_str());
    else
      std::snprintf(line, sizeof(line),
                    "  AS%u: confidence %.3f residence-delta %.3f ms score "
                    "%.2f (%s)\n",
                    ev.asn, ev.confidence, ev.residence_delta_ms, ev.score,
                    ev.detail.c_str());
    out += line;
  }
  if (detected && !suspects.empty() && suspects.front().asn != 0)
    std::snprintf(line, sizeof(line),
                  "discrimination: AS%u named (confidence %.3f)\n",
                  suspects.front().asn, suspects.front().confidence);
  else if (detected)
    std::snprintf(line, sizeof(line),
                  "discrimination: detected end-to-end, not localized "
                  "(confidence %.3f)\n",
                  top_confidence());
  else
    std::snprintf(line, sizeof(line),
                  "discrimination: none (top confidence %.3f)\n",
                  top_confidence());
  out += line;
  return out;
}

DiscriminationDetector::DiscriminationDetector(
    simnet::SimulatedNetwork& network, topology::AsNumber client_as,
    topology::AsNumber server_as, std::uint64_t seed)
    : DiscriminationDetector(network, client_as, server_as, seed, Options{}) {}

DiscriminationDetector::DiscriminationDetector(
    simnet::SimulatedNetwork& network, topology::AsNumber client_as,
    topology::AsNumber server_as, std::uint64_t seed, Options options)
    : network_(network),
      client_as_(client_as),
      server_as_(server_as),
      seed_(seed),
      options_(options) {}

Result<DiscriminationReport> DiscriminationDetector::run() {
  if (options_.interval <= 0)
    return fail("discrimination: interval must be positive");
  if (options_.probe_port == options_.data_port)
    return fail("discrimination: twin ports must differ");
  if (options_.sequential) {
    if (options_.max_rounds == 0 || options_.max_rounds > 1024)
      return fail("discrimination: max_rounds must be in [1, 1024]");
    if (options_.min_rounds > options_.max_rounds)
      return fail("discrimination: min_rounds exceeds max_rounds");
    return run_sequential();
  }
  if (options_.rounds == 0) return fail("discrimination: rounds must be > 0");
  return run_fixed();
}

// --- Legacy fixed-round path: schedule every round up front, analyze the
// --- pooled samples once. Kept for ablations and as the z-test baseline.
Result<DiscriminationReport> DiscriminationDetector::run_fixed() {
  DiscriminationReport report;
  const net::Ipv4Address client = network_.allocate_host_address(client_as_);
  const net::Ipv4Address collector =
      network_.allocate_host_address(server_as_);
  TwinCollector sink(options_.probe_port, options_.data_port,
                     report.probe_like, report.data_like);
  if (auto attached = network_.attach_host(collector, &sink); !attached)
    return fail("discrimination: " + attached.error_message());

  // Twin payloads: both carry the identical INT reservation (when the
  // network forwards with telemetry) plus an identical high-entropy tail,
  // so size and payload statistics give the classifier nothing — the
  // destination port is the only differing bit.
  Rng payload_rng = Rng(seed_).fork(kTwinPayloadSalt);
  Rng pacing_rng = Rng(seed_).fork(kTwinPacingSalt);
  Rng port_rng = Rng(seed_).fork(kTwinPortSalt);
  const std::uint16_t source_port = ephemeral_source_port(port_rng);
  const std::uint32_t domain = network_.domain_of(client);
  const SimTime start = network_.now();
  const std::uint64_t max_jitter =
      static_cast<std::uint64_t>(options_.interval / 5) + 1;

  for (std::uint64_t r = 0; r < options_.rounds; ++r) {
    Bytes payload;
    if (network_.int_enabled())
      payload =
          telemetry::IntHeader::reserve(options_.int_max_hops).serialize();
    const std::size_t base = payload.size();
    payload.resize(base + options_.payload_tail_bytes);
    for (std::size_t i = base; i < payload.size(); ++i)
      payload[i] = static_cast<std::uint8_t>(payload_rng.next_u64() & 0xFF);

    net::ProbeSpec spec;
    spec.protocol = net::Protocol::kUdp;
    spec.source = client;
    spec.destination = collector;
    spec.source_port = source_port;
    spec.sequence = static_cast<std::uint16_t>(r);
    spec.payload = payload;
    spec.destination_port = options_.probe_port;
    auto probe_wire = net::build_probe(spec);
    spec.destination_port = options_.data_port;
    auto data_wire = net::build_probe(spec);
    if (!probe_wire || !data_wire) {
      network_.detach_host(collector);
      return fail("discrimination: " + (probe_wire ? data_wire : probe_wire)
                                           .error_message());
    }

    // Deterministic pacing jitter keeps rounds from phase-locking with
    // periodic network processes; twin order alternates so neither class
    // systematically rides first in the back-to-back pair.
    const SimTime at =
        start + options_.interval * static_cast<SimDuration>(r + 1) +
        static_cast<SimDuration>(pacing_rng.next_below(max_jitter));
    const bool probe_first = (r % 2) == 0;
    Bytes first = probe_first ? std::move(*probe_wire) : std::move(*data_wire);
    Bytes second =
        probe_first ? std::move(*data_wire) : std::move(*probe_wire);
    std::uint64_t* first_sent =
        probe_first ? &report.probe_like.sent : &report.data_like.sent;
    std::uint64_t* second_sent =
        probe_first ? &report.data_like.sent : &report.probe_like.sent;
    network_.queue().schedule_on(
        domain, at, [this, client, wire = std::move(first), first_sent,
                     next = std::move(second), second_sent]() mutable {
          if (network_.send(client, std::move(wire))) *first_sent += 1;
          if (network_.send(client, std::move(next))) *second_sent += 1;
        });
  }

  network_.queue().run();
  network_.detach_host(collector);

  // --- Analysis: a pure function of the delivered samples. ---
  report.rounds_used = options_.rounds;
  report.decision = "fixed-rounds";
  report.delay_delta_ms = mean_or_zero(report.data_like.one_way_ms) -
                          mean_or_zero(report.probe_like.one_way_ms);
  report.loss_delta =
      report.data_like.loss_rate() - report.probe_like.loss_rate();

  const double loss_z = two_proportion_loss_z(
      report.probe_like, report.data_like, options_.min_loss_events);
  LossSignal loss;
  loss.significant = loss_z >= 3.0 && report.loss_delta > 0.0;
  loss.loss_as = max_drop_as(report.data_like);
  if (loss.significant) {
    loss.confidence = score_to_confidence(loss_z);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "; loss gap z=%.2f", loss_z);
    loss.detail = buf;
  }

  build_residence_suspects(report, loss);

  if (report.suspects.empty() &&
      (!report.probe_like.one_way_ms.empty() ||
       !report.data_like.one_way_ms.empty())) {
    // No INT evidence survived — fall back to the end-to-end comparison,
    // which still proves discrimination exists, just not where.
    DiscriminationEvidence ev;
    ev.asn = 0;
    ev.residence_delta_ms = report.delay_delta_ms;
    ev.score = separation_score(report.probe_like.one_way_ms,
                                report.data_like.one_way_ms);
    ev.confidence = score_to_confidence(ev.score);
    ev.detail = "one-way delay, no INT evidence";
    if (loss.significant) {
      ev.confidence = 1.0 - (1.0 - ev.confidence) * (1.0 - loss.confidence);
      ev.detail += loss.detail;
    }
    report.suspects.push_back(std::move(ev));
  }

  sort_suspects(report);

  if (!report.suspects.empty()) {
    const DiscriminationEvidence& top = report.suspects.front();
    const bool loss_case =
        loss.significant && (top.asn == loss.loss_as || top.asn == 0);
    report.detected =
        top.confidence >= options_.confidence_threshold &&
        (top.residence_delta_ms >= options_.min_effect_ms || loss_case);
  }
  count_decision(report);
  return report;
}

// --- Sequential path: one round at a time, stop at the SPRT bounds. ---
Result<DiscriminationReport> DiscriminationDetector::run_sequential() {
  using Decision = Sprt::Decision;
  DiscriminationReport report;
  const net::Ipv4Address client = network_.allocate_host_address(client_as_);

  // One collector per observation point. Without INT, every intermediate
  // path AS gets its own twin stream (the prefix scan that localizes
  // loss-only discrimination); the final collector is always last.
  struct Target {
    explicit Target(const Options& o)
        : delay(o.delay_p0, o.delay_p1, o.alpha, o.beta),
          loss(0.5, o.loss_p1, o.alpha, o.beta) {}
    topology::AsNumber asn = 0;
    bool is_final = false;
    net::Ipv4Address addr;
    TwinClassSummary local_probe;  // used by prefix targets only
    TwinClassSummary local_data;
    TwinClassSummary* probe_like = nullptr;
    TwinClassSummary* data_like = nullptr;
    std::vector<RoundOutcome> rounds;
    std::unique_ptr<TwinCollector> sink;
    Sprt delay;
    Sprt loss;
  };
  std::vector<std::unique_ptr<Target>> targets;

  auto add_target = [&](topology::AsNumber asn,
                        bool is_final) -> Result<bool> {
    auto t = std::make_unique<Target>(options_);
    t->asn = asn;
    t->is_final = is_final;
    t->addr = network_.allocate_host_address(asn);
    t->probe_like = is_final ? &report.probe_like : &t->local_probe;
    t->data_like = is_final ? &report.data_like : &t->local_data;
    t->rounds.resize(options_.max_rounds);
    t->sink = std::make_unique<TwinCollector>(
        options_.probe_port, options_.data_port, *t->probe_like,
        *t->data_like, &t->rounds);
    if (auto attached = network_.attach_host(t->addr, t->sink.get());
        !attached)
      return fail("discrimination: " + attached.error_message());
    targets.push_back(std::move(t));
    return true;
  };
  auto detach_all = [&]() {
    for (const auto& t : targets) network_.detach_host(t->addr);
  };

  if (!network_.int_enabled()) {
    if (auto path = network_.topology().shortest_path(client_as_, server_as_);
        path.ok() && path->length() > 2) {
      for (std::size_t i = 1; i + 1 < path->length(); ++i) {
        if (auto added = add_target(path->hops[i].asn, false); !added) {
          detach_all();
          return fail(added.error_message());
        }
      }
    }
  }
  if (auto added = add_target(server_as_, true); !added) {
    detach_all();
    return fail(added.error_message());
  }
  Target& fin = *targets.back();

  // Randomized mode draws from mode-distinct streams: a randomized run
  // must never replay the ports/payloads an earlier static run with the
  // same seed already taught a learning middlebox (the first randomized
  // round would otherwise collide with the promoted static signature).
  const std::uint64_t mode_salt =
      options_.randomize_twins ? 0x52414E44ULL << 24 : 0;
  Rng payload_rng = Rng(seed_).fork(kTwinPayloadSalt ^ mode_salt);
  Rng pacing_rng = Rng(seed_).fork(kTwinPacingSalt ^ mode_salt);
  Rng port_rng = Rng(seed_).fork(kTwinPortSalt ^ mode_salt);
  const std::uint32_t domain = network_.domain_of(client);
  const SimTime start = network_.now();

  std::uint16_t source_port = ephemeral_source_port(port_rng);
  Bytes static_tail;
  bool h1_seen = false;
  std::uint64_t first_h1_round = 0;
  std::uint64_t rounds_done = 0;
  bool stopped_early = false;

  for (std::uint64_t r = 0; r < options_.max_rounds; ++r) {
    // Randomized twins defeat the learning middlebox: a fresh source
    // port and payload tail every round keeps the signature novel, and
    // pacing jitter drawn from an app-like (exponential) mimicry profile
    // breaks the metronome. Static twins reuse everything — the learnable
    // baseline the arms-race tests need.
    if (options_.randomize_twins && r > 0)
      source_port = ephemeral_source_port(port_rng);
    Bytes payload;
    if (network_.int_enabled())
      payload =
          telemetry::IntHeader::reserve(options_.int_max_hops).serialize();
    const std::size_t base = payload.size();
    if (options_.randomize_twins) {
      payload.resize(base + options_.payload_tail_bytes);
      for (std::size_t i = base; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(payload_rng.next_u64() & 0xFF);
    } else {
      if (static_tail.empty()) {
        static_tail.resize(options_.payload_tail_bytes);
        for (std::uint8_t& b : static_tail)
          b = static_cast<std::uint8_t>(payload_rng.next_u64() & 0xFF);
      }
      payload.insert(payload.end(), static_tail.begin(), static_tail.end());
    }

    SimTime at = start + options_.interval * static_cast<SimDuration>(r + 1);
    if (options_.randomize_twins) {
      const double mean_ms =
          duration::to_ms(options_.interval) / 6.0;
      const SimDuration jitter = std::min<SimDuration>(
          duration::from_ms(pacing_rng.exponential(mean_ms)),
          options_.interval / 2);
      at += jitter;
    }
    // Rounds run to completion before the next is scheduled, so never
    // schedule into the past.
    at = std::max<SimTime>(at, network_.now() + 1);

    std::vector<std::pair<Bytes, std::uint64_t*>> sends;
    const bool probe_first = (r % 2) == 0;
    for (const auto& t : targets) {
      net::ProbeSpec spec;
      spec.protocol = net::Protocol::kUdp;
      spec.source = client;
      spec.destination = t->addr;
      spec.source_port = source_port;
      spec.sequence = static_cast<std::uint16_t>(r);
      spec.payload = payload;
      spec.destination_port = options_.probe_port;
      auto probe_wire = net::build_probe(spec);
      spec.destination_port = options_.data_port;
      auto data_wire = net::build_probe(spec);
      if (!probe_wire || !data_wire) {
        detach_all();
        return fail("discrimination: " +
                    (probe_wire ? data_wire : probe_wire).error_message());
      }
      if (probe_first) {
        sends.emplace_back(std::move(*probe_wire), &t->probe_like->sent);
        sends.emplace_back(std::move(*data_wire), &t->data_like->sent);
      } else {
        sends.emplace_back(std::move(*data_wire), &t->data_like->sent);
        sends.emplace_back(std::move(*probe_wire), &t->probe_like->sent);
      }
    }
    network_.queue().schedule_on(
        domain, at, [this, client, batch = std::move(sends)]() mutable {
          for (auto& [wire, sent] : batch)
            if (network_.send(client, std::move(wire))) *sent += 1;
        });
    network_.queue().run();
    rounds_done = r + 1;

    // Feed the per-target SPRTs: a delivered pair is a delay observation
    // (did the data twin trail by at least min_effect?), a discordant
    // pair is a loss observation (did the loss hit the data twin?).
    for (const auto& t : targets) {
      const RoundOutcome& o = t->rounds[r];
      if (o.probe && o.data)
        t->delay.observe(o.data_ms - o.probe_ms >= options_.min_effect_ms);
      else if (o.probe != o.data)
        t->loss.observe(!o.data);
    }

    if (rounds_done < options_.min_rounds) continue;
    const bool delay_h1 = fin.delay.decision() == Decision::kAcceptH1;
    const bool loss_h1 = fin.loss.decision() == Decision::kAcceptH1;
    if (delay_h1 || loss_h1) {
      if (!h1_seen) {
        h1_seen = true;
        first_h1_round = rounds_done;
      }
      // With INT the residence stacks localize; without it, wait (within
      // the grace budget) for a prefix to confirm so the naming holds.
      bool named = network_.int_enabled() || targets.size() == 1;
      for (std::size_t i = 0; !named && i + 1 < targets.size(); ++i) {
        const Target& t = *targets[i];
        named = (delay_h1 && t.delay.decision() == Decision::kAcceptH1) ||
                (loss_h1 && t.loss.decision() == Decision::kAcceptH1);
      }
      if (named || rounds_done - first_h1_round >= options_.grace_rounds) {
        stopped_early = true;
        break;
      }
    } else {
      const bool delay_resolved =
          fin.delay.decision() != Decision::kContinue;
      const bool loss_quiet =
          fin.loss.decision() == Decision::kAcceptH0 ||
          fin.loss.observations() == 0;
      if (delay_resolved && loss_quiet) {
        stopped_early = true;
        break;
      }
    }
  }
  detach_all();

  // --- Analysis. ---
  const bool delay_h1 = fin.delay.decision() == Decision::kAcceptH1;
  const bool loss_h1 = fin.loss.decision() == Decision::kAcceptH1;
  const bool h1 = delay_h1 || loss_h1;
  report.rounds_used = rounds_done;
  report.delay_llr = fin.delay.llr();
  report.loss_llr = fin.loss.llr();
  if (delay_h1 && loss_h1)
    report.decision = "h1-both";
  else if (delay_h1)
    report.decision = "h1-delay";
  else if (loss_h1)
    report.decision = "h1-loss";
  else
    report.decision = stopped_early ? "h0" : "exhausted";
  report.delay_delta_ms = mean_or_zero(report.data_like.one_way_ms) -
                          mean_or_zero(report.probe_like.one_way_ms);
  report.loss_delta =
      report.data_like.loss_rate() - report.probe_like.loss_rate();

  LossSignal loss;
  loss.significant = loss_h1;
  loss.loss_as = max_drop_as(report.data_like);
  if (loss.significant) {
    loss.confidence = llr_confidence(fin.loss.llr());
    char buf[64];
    std::snprintf(buf, sizeof(buf), "; loss sprt llr=%.2f", fin.loss.llr());
    loss.detail = buf;
  }

  build_residence_suspects(report, loss);

  // Prefix localization: the target nearest the client whose fired arm
  // carries at least half the decision bound names the AS — everything
  // before it tested clean, so the discrimination enters there.
  if (report.suspects.empty() && h1 && targets.size() > 1) {
    char buf[128];
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const Target& t = *targets[i];
      const bool delay_hit =
          delay_h1 && t.delay.llr() >= t.delay.upper_bound() / 2.0;
      const bool loss_hit =
          loss_h1 && t.loss.llr() >= t.loss.upper_bound() / 2.0;
      if (!delay_hit && !loss_hit) continue;
      DiscriminationEvidence ev;
      ev.asn = t.asn;
      ev.score = std::max(delay_hit ? t.delay.llr() : 0.0,
                          loss_hit ? t.loss.llr() : 0.0);
      ev.confidence = llr_confidence(ev.score);
      const double here = mean_or_zero(t.data_like->one_way_ms) -
                          mean_or_zero(t.probe_like->one_way_ms);
      const double before =
          i == 0 ? 0.0
                 : mean_or_zero(targets[i - 1]->data_like->one_way_ms) -
                       mean_or_zero(targets[i - 1]->probe_like->one_way_ms);
      ev.residence_delta_ms = here - before;
      std::snprintf(buf, sizeof(buf),
                    "prefix sprt %s llr=%.2f over %llu rounds",
                    delay_hit && loss_hit ? "delay+loss"
                    : delay_hit          ? "delay"
                                         : "loss",
                    ev.score,
                    static_cast<unsigned long long>(rounds_done));
      ev.detail = buf;
      report.suspects.push_back(std::move(ev));
      break;  // the first (closest) crossing is the accusation
    }
  }

  if (report.suspects.empty() &&
      (!report.probe_like.one_way_ms.empty() ||
       !report.data_like.one_way_ms.empty())) {
    DiscriminationEvidence ev;
    ev.asn = 0;
    ev.residence_delta_ms = report.delay_delta_ms;
    ev.score = std::max(fin.delay.llr(), fin.loss.llr());
    ev.confidence = h1 ? llr_confidence(ev.score) : 0.0;
    ev.detail = "one-way delay, no INT or prefix evidence";
    report.suspects.push_back(std::move(ev));
  }

  sort_suspects(report);
  report.detected =
      h1 && report.top_confidence() >= options_.confidence_threshold;
  count_decision(report);
  return report;
}

}  // namespace debuglet::core
