#include "core/discrimination.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "telemetry/int_header.hpp"
#include "util/rng.hpp"

namespace debuglet::core {

namespace {

constexpr std::uint64_t kTwinPayloadSalt = 0x7719A3ULL;
constexpr std::uint64_t kTwinPacingSalt = 0x7719B4ULL;
// A source port outside every fingerprinted range, shared by both twins so
// the classifier sees it as the same flow origin.
constexpr std::uint16_t kTwinSourcePort = 51217;

// Maps a nonnegative separation score into [0, 1); 4.0 is the score at
// which confidence crosses 0.5. Genuine fault hiding scores far higher.
double score_to_confidence(double score) {
  return score <= 0.0 ? 0.0 : score / (score + 4.0);
}

// Welch-style separation between two sample sets (positive = b slower).
// The standard error is floored at 0.05 ms so jitter-free scenarios
// (sample variance exactly zero) yield a large finite score rather than a
// division by zero.
double separation_score(const SampleSet& a, const SampleSet& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double var_a = a.stddev() * a.stddev();
  const double var_b = b.stddev() * b.stddev();
  double se = std::sqrt(var_a / static_cast<double>(a.count()) +
                        var_b / static_cast<double>(b.count()));
  se = std::max(se, 0.05);
  return (b.mean() - a.mean()) / se;
}

double mean_or_zero(const SampleSet& s) { return s.empty() ? 0.0 : s.mean(); }

// Receiving twin endpoint: tallies per-class one-way delay and, when the
// payload still carries an intact INT stack, per-AS residence and drop
// snapshots.
class TwinCollector final : public simnet::Host {
 public:
  TwinCollector(std::uint16_t probe_port, std::uint16_t data_port,
                TwinClassSummary& probe_like, TwinClassSummary& data_like)
      : probe_port_(probe_port),
        data_port_(data_port),
        probe_like_(probe_like),
        data_like_(data_like) {}

  void on_packet(const simnet::Delivery& delivery) override {
    if (!delivery.packet.udp) return;
    const std::uint16_t port = delivery.packet.udp->destination_port;
    TwinClassSummary* summary = nullptr;
    if (port == probe_port_)
      summary = &probe_like_;
    else if (port == data_port_)
      summary = &data_like_;
    if (summary == nullptr) return;
    summary->received += 1;
    summary->one_way_ms.add(
        duration::to_ms(delivery.received_at - delivery.sent_at));
    record_residence(delivery, *summary);
  }

 private:
  static void record_residence(const simnet::Delivery& delivery,
                               TwinClassSummary& summary) {
    const Bytes& payload = delivery.packet.payload;
    const BytesView view(payload.data(), payload.size());
    if (!telemetry::IntHeader::looks_like_int(view)) return;
    auto header = telemetry::IntHeader::parse(view);
    if (!header) return;  // mangled in flight; the damage shows elsewhere
    for (const telemetry::HopRecord& rec : header->records()) {
      summary.residence_ms[rec.asn].add(
          static_cast<double>(rec.egress_ns - rec.ingress_ns) / 1e6);
      std::uint32_t& seen = summary.drops_seen[rec.asn];
      seen = std::max(seen, rec.drops_seen);
    }
  }

  std::uint16_t probe_port_;
  std::uint16_t data_port_;
  TwinClassSummary& probe_like_;
  TwinClassSummary& data_like_;
};

}  // namespace

std::string DiscriminationReport::trace() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "twins: probe-like %llu/%llu mean %.3f ms | data-like "
                "%llu/%llu mean %.3f ms | delta %.3f ms loss-gap %.4f\n",
                static_cast<unsigned long long>(probe_like.received),
                static_cast<unsigned long long>(probe_like.sent),
                mean_or_zero(probe_like.one_way_ms),
                static_cast<unsigned long long>(data_like.received),
                static_cast<unsigned long long>(data_like.sent),
                mean_or_zero(data_like.one_way_ms), delay_delta_ms,
                loss_delta);
  out += line;
  for (const DiscriminationEvidence& ev : suspects) {
    if (ev.asn == 0)
      std::snprintf(line, sizeof(line),
                    "  end-to-end: confidence %.3f delta %.3f ms score %.2f "
                    "(%s)\n",
                    ev.confidence, ev.residence_delta_ms, ev.score,
                    ev.detail.c_str());
    else
      std::snprintf(line, sizeof(line),
                    "  AS%u: confidence %.3f residence-delta %.3f ms score "
                    "%.2f (%s)\n",
                    ev.asn, ev.confidence, ev.residence_delta_ms, ev.score,
                    ev.detail.c_str());
    out += line;
  }
  if (detected && !suspects.empty() && suspects.front().asn != 0)
    std::snprintf(line, sizeof(line),
                  "discrimination: AS%u named (confidence %.3f)\n",
                  suspects.front().asn, suspects.front().confidence);
  else if (detected)
    std::snprintf(line, sizeof(line),
                  "discrimination: detected end-to-end, not localized "
                  "(confidence %.3f)\n",
                  top_confidence());
  else
    std::snprintf(line, sizeof(line),
                  "discrimination: none (top confidence %.3f)\n",
                  top_confidence());
  out += line;
  return out;
}

DiscriminationDetector::DiscriminationDetector(
    simnet::SimulatedNetwork& network, topology::AsNumber client_as,
    topology::AsNumber server_as, std::uint64_t seed)
    : DiscriminationDetector(network, client_as, server_as, seed, Options{}) {}

DiscriminationDetector::DiscriminationDetector(
    simnet::SimulatedNetwork& network, topology::AsNumber client_as,
    topology::AsNumber server_as, std::uint64_t seed, Options options)
    : network_(network),
      client_as_(client_as),
      server_as_(server_as),
      seed_(seed),
      options_(options) {}

Result<DiscriminationReport> DiscriminationDetector::run() {
  if (options_.rounds == 0) return fail("discrimination: rounds must be > 0");
  if (options_.interval <= 0)
    return fail("discrimination: interval must be positive");
  if (options_.probe_port == options_.data_port)
    return fail("discrimination: twin ports must differ");

  DiscriminationReport report;
  const net::Ipv4Address client = network_.allocate_host_address(client_as_);
  const net::Ipv4Address collector =
      network_.allocate_host_address(server_as_);
  TwinCollector sink(options_.probe_port, options_.data_port,
                     report.probe_like, report.data_like);
  if (auto attached = network_.attach_host(collector, &sink); !attached)
    return fail("discrimination: " + attached.error_message());

  // Twin payloads: both carry the identical INT reservation (when the
  // network forwards with telemetry) plus an identical high-entropy tail,
  // so size and payload statistics give the classifier nothing — the
  // destination port is the only differing bit.
  Rng payload_rng = Rng(seed_).fork(kTwinPayloadSalt);
  Rng pacing_rng = Rng(seed_).fork(kTwinPacingSalt);
  const std::uint32_t domain = network_.domain_of(client);
  const SimTime start = network_.now();
  const std::uint64_t max_jitter =
      static_cast<std::uint64_t>(options_.interval / 5) + 1;

  for (std::uint64_t r = 0; r < options_.rounds; ++r) {
    Bytes payload;
    if (network_.int_enabled())
      payload =
          telemetry::IntHeader::reserve(options_.int_max_hops).serialize();
    const std::size_t base = payload.size();
    payload.resize(base + options_.payload_tail_bytes);
    for (std::size_t i = base; i < payload.size(); ++i)
      payload[i] = static_cast<std::uint8_t>(payload_rng.next_u64() & 0xFF);

    net::ProbeSpec spec;
    spec.protocol = net::Protocol::kUdp;
    spec.source = client;
    spec.destination = collector;
    spec.source_port = kTwinSourcePort;
    spec.sequence = static_cast<std::uint16_t>(r);
    spec.payload = payload;
    spec.destination_port = options_.probe_port;
    auto probe_wire = net::build_probe(spec);
    spec.destination_port = options_.data_port;
    auto data_wire = net::build_probe(spec);
    if (!probe_wire || !data_wire) {
      network_.detach_host(collector);
      return fail("discrimination: " + (probe_wire ? data_wire : probe_wire)
                                           .error_message());
    }

    // Deterministic pacing jitter keeps rounds from phase-locking with
    // periodic network processes; twin order alternates so neither class
    // systematically rides first in the back-to-back pair.
    const SimTime at =
        start + options_.interval * static_cast<SimDuration>(r + 1) +
        static_cast<SimDuration>(pacing_rng.next_below(max_jitter));
    const bool probe_first = (r % 2) == 0;
    Bytes first = probe_first ? std::move(*probe_wire) : std::move(*data_wire);
    Bytes second =
        probe_first ? std::move(*data_wire) : std::move(*probe_wire);
    std::uint64_t* first_sent =
        probe_first ? &report.probe_like.sent : &report.data_like.sent;
    std::uint64_t* second_sent =
        probe_first ? &report.data_like.sent : &report.probe_like.sent;
    network_.queue().schedule_on(
        domain, at, [this, client, wire = std::move(first), first_sent,
                     next = std::move(second), second_sent]() mutable {
          if (network_.send(client, std::move(wire))) *first_sent += 1;
          if (network_.send(client, std::move(next))) *second_sent += 1;
        });
  }

  network_.queue().run();
  network_.detach_host(collector);

  // --- Analysis: a pure function of the delivered samples. ---
  report.delay_delta_ms = mean_or_zero(report.data_like.one_way_ms) -
                          mean_or_zero(report.probe_like.one_way_ms);
  report.loss_delta =
      report.data_like.loss_rate() - report.probe_like.loss_rate();

  // Two-proportion z-score on the loss gap.
  double loss_z = 0.0;
  const double np = static_cast<double>(report.probe_like.sent);
  const double nd = static_cast<double>(report.data_like.sent);
  if (np > 0.0 && nd > 0.0) {
    const double pp = report.probe_like.loss_rate();
    const double pd = report.data_like.loss_rate();
    const double pool = (np * pp + nd * pd) / (np + nd);
    const double se = std::sqrt(pool * (1.0 - pool) * (1.0 / np + 1.0 / nd));
    if (se > 0.0) loss_z = (pd - pp) / se;
  }
  // Drop counters are per-AS self-tallies, so the AS whose counter the
  // surviving data twins saw highest is where the missing ones died.
  topology::AsNumber loss_as = 0;
  std::uint32_t max_drops = 0;
  for (const auto& [asn, drops] : report.data_like.drops_seen) {
    if (drops > max_drops) {
      max_drops = drops;
      loss_as = asn;
    }
  }
  const bool loss_significant = loss_z >= 3.0 && report.loss_delta > 0.0;

  char buf[192];
  for (const auto& [asn, data_set] : report.data_like.residence_ms) {
    auto it = report.probe_like.residence_ms.find(asn);
    if (it == report.probe_like.residence_ms.end()) continue;
    const SampleSet& probe_set = it->second;
    DiscriminationEvidence ev;
    ev.asn = asn;
    ev.residence_delta_ms = mean_or_zero(data_set) - mean_or_zero(probe_set);
    ev.score = separation_score(probe_set, data_set);
    ev.confidence = score_to_confidence(ev.score);
    std::snprintf(buf, sizeof(buf),
                  "residence data %.3f ms vs probe %.3f ms, n=%zu/%zu",
                  mean_or_zero(data_set), mean_or_zero(probe_set),
                  data_set.count(), probe_set.count());
    ev.detail = buf;
    if (loss_significant && asn == loss_as) {
      // Independent loss evidence compounds with the residence evidence.
      const double loss_conf = score_to_confidence(loss_z);
      ev.confidence = 1.0 - (1.0 - ev.confidence) * (1.0 - loss_conf);
      std::snprintf(buf, sizeof(buf), "; loss gap z=%.2f", loss_z);
      ev.detail += buf;
    }
    report.suspects.push_back(std::move(ev));
  }

  if (report.suspects.empty() &&
      (!report.probe_like.one_way_ms.empty() ||
       !report.data_like.one_way_ms.empty())) {
    // No INT evidence survived — fall back to the end-to-end comparison,
    // which still proves discrimination exists, just not where.
    DiscriminationEvidence ev;
    ev.asn = 0;
    ev.residence_delta_ms = report.delay_delta_ms;
    ev.score = separation_score(report.probe_like.one_way_ms,
                                report.data_like.one_way_ms);
    ev.confidence = score_to_confidence(ev.score);
    ev.detail = "one-way delay, no INT evidence";
    if (loss_significant) {
      const double loss_conf = score_to_confidence(loss_z);
      ev.confidence = 1.0 - (1.0 - ev.confidence) * (1.0 - loss_conf);
      std::snprintf(buf, sizeof(buf), "; loss gap z=%.2f", loss_z);
      ev.detail += buf;
    }
    report.suspects.push_back(std::move(ev));
  }

  std::sort(report.suspects.begin(), report.suspects.end(),
            [](const DiscriminationEvidence& a,
               const DiscriminationEvidence& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              return a.asn < b.asn;
            });

  if (!report.suspects.empty()) {
    const DiscriminationEvidence& top = report.suspects.front();
    const bool loss_case =
        loss_significant && (top.asn == loss_as || top.asn == 0);
    report.detected =
        top.confidence >= options_.confidence_threshold &&
        (top.residence_delta_ms >= options_.min_effect_ms || loss_case);
  }
  return report;
}

}  // namespace debuglet::core
