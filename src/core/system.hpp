// DebugletSystem: a fully wired Debuglet deployment.
//
// Owns the simulated network, the blockchain with the marketplace contract,
// and one executor per AS border interface. Each AS runs an ExecutorAgent —
// the control-plane glue the paper assigns to the deploying AS: it
// registers its executor and time slots on-chain, subscribes to deployment
// events keyed by its ⟨AS, intf⟩, pulls purchased applications from the
// chain, runs them on its data-plane ExecutorService, and reports certified
// results back through ResultReady (paper Fig. 7 lifecycle).
#pragma once

#include <map>
#include <memory>

#include "chain/chain.hpp"
#include "executor/executor.hpp"
#include "marketplace/contract.hpp"
#include "marketplace/reputation.hpp"
#include "simnet/scenarios.hpp"

namespace debuglet::core {

/// Per-system economic and scheduling defaults.
struct SystemConfig {
  /// Slot calendar registered by every executor at startup.
  SimTime slot_horizon = duration::hours(48);
  SimDuration slot_length = duration::seconds(20);
  chain::Mist slot_price = 1'000'000;  // 0.001 SUI ≈ 0.1 cents (paper §VI-C)
  /// Funding minted to each AS operator account at startup.
  chain::Mist operator_funding = 2'000'000'000'000;  // 2000 SUI
  executor::ExecutorConfig executor;
  chain::ChainConfig chain;
};

/// How a byzantine executor agent corrupts the results it publishes
/// (chaos mode; exercises the initiator's verification rejections the way
/// §VI-E's fault-hiding ISP would).
enum class ByzantineMode : std::uint8_t {
  kHonest = 0,
  kBadSignature,     // flip a bit in the signature before publishing
  kTamperedOutput,   // mutate the measurement output after signing
};

/// One AS's control-plane agent (operator identity + event handling).
class ExecutorAgent {
 public:
  ExecutorAgent(chain::Blockchain& chain, simnet::SimulatedNetwork& network,
                topology::InterfaceKey key, crypto::KeyPair operator_key,
                const SystemConfig& config);

  /// Registers the executor and its slot calendar on-chain.
  Status bootstrap(SimTime horizon_start);

  executor::ExecutorService& service() { return *service_; }
  const crypto::KeyPair& operator_key() const { return operator_key_; }
  chain::Address address() const {
    return chain::Address::of(operator_key_.public_key());
  }
  topology::InterfaceKey key() const { return key_; }

  /// Chaos: stops participating — unsubscribes from deployment events,
  /// halts the data-plane service and abandons in-flight executions. The
  /// on-chain slot calendar SURVIVES: the chain has no liveness notion,
  /// so purchasers can still buy slots a dead executor will never serve.
  /// That hole is exactly what the initiator-side RetryPolicy covers.
  void kill();

  /// Returns to service after kill(): re-attaches the service,
  /// re-subscribes to deployment events, and tops up the slot calendar
  /// when the registered horizon has passed. Idempotent while alive.
  Status restart();

  bool alive() const { return alive_; }

  /// Chaos: publish results corrupted the chosen way so verification
  /// rejection paths run end-to-end. The data plane stays honest — only
  /// the published control-plane artifact lies. kHonest restores normal
  /// behaviour.
  void set_byzantine_mode(ByzantineMode mode) { byzantine_ = mode; }
  ByzantineMode byzantine_mode() const { return byzantine_; }

 private:
  void subscribe();
  Status register_slots(SimTime from, SimTime until);
  void on_deployment_event(const chain::Event& event);
  void handle_application(chain::ObjectId application_id);
  executor::CertifiedResult corrupt(executor::CertifiedResult result) const;

  chain::Blockchain& chain_;
  simnet::SimulatedNetwork& network_;
  topology::InterfaceKey key_;
  crypto::KeyPair operator_key_;
  const SystemConfig* config_;
  std::unique_ptr<executor::ExecutorService> service_;
  chain::SubscriptionId subscription_ = 0;
  bool alive_ = true;
  ByzantineMode byzantine_ = ByzantineMode::kHonest;
  /// End of the slot calendar registered so far (restart only registers
  /// the tail past this — RegisterTimeSlot rejects overlapping slots).
  SimTime slots_registered_until_ = 0;
};

/// The wired system.
class DebugletSystem {
 public:
  /// Takes ownership of a scenario (network + queue) and deploys executors
  /// at every border interface of every AS, funded and registered on-chain.
  DebugletSystem(simnet::Scenario scenario, SystemConfig config = {},
                 std::uint64_t seed = 0x5eed);

  simnet::EventQueue& queue() { return *scenario_.queue; }
  simnet::SimulatedNetwork& network() { return *scenario_.network; }
  chain::Blockchain& chain() { return chain_; }
  marketplace::MarketplaceContract& marketplace() { return *marketplace_; }
  marketplace::ReputationContract& reputation() { return *reputation_; }
  const SystemConfig& config() const { return config_; }

  /// The agent (and executor) at a border interface.
  Result<ExecutorAgent*> agent(topology::InterfaceKey key);

  /// All executor keys, sorted.
  std::vector<topology::InterfaceKey> executor_keys() const;

  /// The AS operator public key for an AS (all interfaces of an AS share
  /// the operator identity) — third parties verify result signatures
  /// against this.
  Result<crypto::PublicKey> as_public_key(topology::AsNumber asn) const;

 private:
  simnet::Scenario scenario_;
  SystemConfig config_;
  chain::Blockchain chain_;
  marketplace::MarketplaceContract* marketplace_ = nullptr;  // owned by chain_
  marketplace::ReputationContract* reputation_ = nullptr;    // owned by chain_
  std::map<topology::AsNumber, crypto::KeyPair> operator_keys_;
  std::map<topology::InterfaceKey, std::unique_ptr<ExecutorAgent>> agents_;
};

}  // namespace debuglet::core
