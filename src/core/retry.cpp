#include "core/retry.hpp"

#include <cmath>

namespace debuglet::core {

SimDuration RetryPolicy::delay_before(std::uint32_t attempt, Rng& rng) const {
  if (attempt <= 1) return 0;
  double delay = static_cast<double>(base_delay) *
                 std::pow(multiplier, static_cast<double>(attempt - 2));
  if (jitter > 0.0) delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  if (delay < 0.0) delay = 0.0;
  return static_cast<SimDuration>(delay);
}

RetryObs::RetryObs(const std::string& op) {
  obs::MetricsRegistry& reg = obs::registry();
  const obs::Labels labels{{"op", op}};
  attempts_ = &reg.counter("core.retry.attempts", labels);
  retries_ = &reg.counter("core.retry.retries", labels);
  gave_up_ = &reg.counter("core.retry.gave_up", labels);
  backoff_ms_ = &reg.histogram("core.retry.backoff_ms", labels);
}

}  // namespace debuglet::core
