#include "core/discovery.hpp"

#include <memory>

namespace debuglet::core {

DiscoveryGossip::DiscoveryGossip(simnet::SimulatedNetwork& network,
                                 SimDuration per_hop_delay)
    : network_(network), per_hop_delay_(per_hop_delay) {}

void DiscoveryGossip::originate(topology::AsNumber asn) {
  const topology::Topology& topo = network_.topology();
  ExecutorAdvertisement adv;
  adv.origin = asn;
  adv.sequence = next_sequence_++;
  for (topology::InterfaceId intf : topo.interfaces_of(asn)) {
    const topology::InterfaceKey key{asn, intf};
    adv.executors.push_back(key);
    adv.addresses.push_back(topo.address_of(key));
  }
  // The origin knows itself immediately.
  tables_[asn][asn] = adv;
  flood(asn, adv, asn);
}

void DiscoveryGossip::originate_all() {
  for (topology::AsNumber asn : network_.topology().as_numbers())
    originate(asn);
}

void DiscoveryGossip::flood(topology::AsNumber at,
                            const ExecutorAdvertisement& adv,
                            topology::AsNumber from) {
  const topology::Topology& topo = network_.topology();
  for (topology::InterfaceId intf : topo.interfaces_of(at)) {
    auto remote = topo.remote_of({at, intf});
    if (!remote) continue;
    const topology::AsNumber neighbor = remote->asn;
    if (neighbor == from) continue;
    ++messages_;
    // Deliver after the per-hop routing propagation delay; the receiver
    // re-floods if the advertisement is new (or newer).
    network_.queue().schedule_after(
        per_hop_delay_, [this, neighbor, at, adv] {
          auto& table = tables_[neighbor];
          auto it = table.find(adv.origin);
          if (it != table.end() && it->second.sequence >= adv.sequence)
            return;  // already known — stop the flood here
          table[adv.origin] = adv;
          last_arrival_ = network_.queue().now();
          flood(neighbor, adv, at);
        });
  }
}

std::vector<ExecutorAdvertisement> DiscoveryGossip::known_at(
    topology::AsNumber asn) const {
  std::vector<ExecutorAdvertisement> out;
  auto it = tables_.find(asn);
  if (it == tables_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [_, adv] : it->second) out.push_back(adv);
  return out;
}

Result<ExecutorAdvertisement> DiscoveryGossip::lookup(
    topology::AsNumber viewer, topology::AsNumber target) const {
  auto it = tables_.find(viewer);
  if (it == tables_.end())
    return fail("AS" + std::to_string(viewer) + " has learned nothing yet");
  auto ait = it->second.find(target);
  if (ait == it->second.end())
    return fail("AS" + std::to_string(viewer) +
                " has no advertisement from AS" + std::to_string(target));
  return ait->second;
}

bool DiscoveryGossip::converged() const {
  const auto ases = network_.topology().as_numbers();
  for (topology::AsNumber viewer : ases) {
    auto it = tables_.find(viewer);
    if (it == tables_.end()) return false;
    for (topology::AsNumber origin : ases) {
      if (!it->second.contains(origin)) return false;
    }
  }
  return true;
}

Status run_bilateral(executor::ExecutorService& client_executor,
                     executor::ExecutorService& server_executor,
                     executor::DebugletApp client_app,
                     executor::DebugletApp server_app, SimTime start,
                     std::function<void(const BilateralOutcome&)> on_done) {
  struct Shared {
    std::optional<executor::CertifiedResult> client;
    std::optional<executor::CertifiedResult> server;
    std::function<void(const BilateralOutcome&)> on_done;
  };
  auto shared = std::make_shared<Shared>();
  shared->on_done = std::move(on_done);

  auto fire_if_complete = [shared] {
    if (shared->client && shared->server && shared->on_done)
      shared->on_done(BilateralOutcome{*shared->client, *shared->server});
  };

  auto server_id = server_executor.deploy_and_schedule(
      std::move(server_app), start,
      [shared, fire_if_complete](const executor::CertifiedResult& r) {
        shared->server = r;
        fire_if_complete();
      });
  if (!server_id) return fail("server: " + server_id.error_message());

  auto client_id = client_executor.deploy_and_schedule(
      std::move(client_app), start,
      [shared, fire_if_complete](const executor::CertifiedResult& r) {
        shared->client = r;
        fire_if_complete();
      });
  if (!client_id) return fail("client: " + client_id.error_message());
  return ok_status();
}

}  // namespace debuglet::core
