// Shared retry/backoff policy for control-plane operations.
//
// One backoff implementation for everything that re-tries over the
// simulated network — resilient measurement collection, remote-stats
// chunk requests, and whatever comes next. All delays are SIMULATED
// time and jitter draws from the caller's seeded Rng, so runs with
// equal seeds produce bit-identical retry schedules (the chaos suite's
// determinism acceptance check).
//
// RetryObs is the matching observability shape: every retried operation
// counts attempts / retries / give-ups under one metric family keyed by
// an `op` label, so a chaos run's retry pressure is visible through the
// ordinary stats and remote-scrape pipelines (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace debuglet::core {

/// Exponential backoff with jitter. Attempts are 1-based and
/// `max_attempts` counts the first try: max_attempts = 4 means one
/// initial attempt plus up to three retries.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  SimDuration base_delay = duration::milliseconds(400);
  double multiplier = 2.0;
  /// Relative jitter: the delay is scaled by uniform(1 - j, 1 + j).
  /// Zero keeps the schedule exact AND skips the RNG draw, so callers
  /// that disable jitter do not perturb their RNG stream.
  double jitter = 0.1;

  /// The backoff to wait before issuing attempt `attempt` (1-based).
  /// Attempt 1 is free; attempt n waits base_delay * multiplier^(n-2),
  /// jittered. Never negative.
  SimDuration delay_before(std::uint32_t attempt, Rng& rng) const;
};

/// Cached counters for one retried operation, labelled {op=<name>}:
///   core.retry.attempts   — every attempt, including the first
///   core.retry.retries    — attempts after the first
///   core.retry.gave_up    — operations that exhausted max_attempts
///   core.retry.backoff_ms — histogram of waited backoffs
class RetryObs {
 public:
  explicit RetryObs(const std::string& op);

  void attempt() { attempts_->add(); }
  void retry(SimDuration backoff) {
    retries_->add();
    backoff_ms_->record(duration::to_ms(backoff));
  }
  void gave_up() { gave_up_->add(); }

 private:
  obs::Counter* attempts_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* gave_up_ = nullptr;
  obs::Histogram* backoff_ms_ = nullptr;
};

}  // namespace debuglet::core
