// The measurement initiator.
//
// Drives the paper's five-step process (§IV-A): look up slots on-chain,
// purchase a pair (client + server Debuglet), then collect and verify the
// certified results that the executors publish through ResultReady.
#pragma once

#include <optional>

#include "apps/debuglets.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"

namespace debuglet::core {

/// A purchased measurement awaiting results.
struct MeasurementHandle {
  chain::ObjectId client_application = 0;
  chain::ObjectId server_application = 0;
  /// The executor pair the measurement was purchased for; results must be
  /// certified by these ASes' keys.
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  SimTime window_start = 0;
  SimTime window_end = 0;
  chain::Mist price_paid = 0;
};

/// Both certified results of one measurement, verified.
struct MeasurementOutcome {
  executor::CertifiedResult client;
  executor::CertifiedResult server;
};

/// Everything needed to purchase one measurement.
struct MeasurementRequest {
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  marketplace::ApplicationPayload client_app;
  marketplace::ApplicationPayload server_app;
  SimTime earliest_start = 0;
  std::uint32_t cores = 1;
  std::uint64_t memory_bytes = 64 * 1024;
  std::uint64_t bandwidth_bps = 1'000'000;
  /// Private results (§IV-C): executors seal the outputs for the
  /// initiator's key; on-chain copies become unreadable to third parties.
  bool seal_results = false;
};

/// Summary statistics of an RTT measurement (from client samples).
struct RttSummary {
  std::size_t probes_sent = 0;
  std::size_t probes_answered = 0;
  double mean_ms = 0.0;
  double std_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;

  double loss_rate() const {
    return probes_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(probes_answered) /
                           static_cast<double>(probes_sent);
  }
};

/// Computes the summary from a client Debuglet's certified result.
Result<RttSummary> summarize_rtt(const executor::CertifiedResult& client,
                                 std::size_t probes_sent);

/// An initiator identity: a funded chain account that purchases
/// measurements and verifies published results.
class Initiator {
 public:
  /// Creates an initiator with a fresh key, funded with `funding` MIST.
  Initiator(DebugletSystem& system, std::uint64_t seed, chain::Mist funding);

  chain::Address address() const {
    return chain::Address::of(key_.public_key());
  }
  chain::Mist balance() const { return system_.chain().balance(address()); }

  /// Steps 1–3 of §IV-A: quote, purchase, and let the chain notify the
  /// executors. Returns immediately (in simulated time the measurement
  /// runs later); collect results after running the event queue.
  Result<MeasurementHandle> purchase(const MeasurementRequest& request);

  /// Retrieves and verifies both certified results of a measurement from
  /// the chain. Fails if either result is missing (run the queue further)
  /// or fails signature/AS-key verification.
  Result<MeasurementOutcome> collect(const MeasurementHandle& handle);

  /// Convenience for the common RTT measurement: builds the probe-client /
  /// echo-server pair from apps::, purchases it, and returns the handle.
  Result<MeasurementHandle> purchase_rtt_measurement(
      topology::InterfaceKey client_key, topology::InterfaceKey server_key,
      net::Protocol protocol, std::int64_t probe_count,
      std::int64_t interval_ms, SimTime earliest_start = 0,
      bool seal_results = false);

  /// The public key executors seal private results for.
  const crypto::PublicKey& public_key() const { return key_.public_key(); }

  /// Opens a sealed result's output with this initiator's key. Fails if
  /// the output was not sealed for this initiator or was tampered with.
  Result<Bytes> open_result(const executor::CertifiedResult& result) const;

  /// Frees both application objects after their results were reported,
  /// collecting the storage rebates (Table II's refund column). Returns
  /// the total rebate credited.
  Result<chain::Mist> reclaim(const MeasurementHandle& handle);

  chain::Mist total_spent() const { return total_spent_; }

 private:
  Result<executor::CertifiedResult> fetch_result(chain::ObjectId application,
                                                 topology::InterfaceKey key);

  DebugletSystem& system_;
  crypto::KeyPair key_;
  chain::Mist total_spent_ = 0;
  std::uint16_t next_rendezvous_port_ = 40000;
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* purchased = nullptr;
    obs::Counter* collected = nullptr;
    obs::Counter* spent = nullptr;  // MIST: gas + slot prices
  };
  ObsHandles obs_;
};

}  // namespace debuglet::core
